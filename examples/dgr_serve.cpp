// dgr_serve — drive the RealizationService with a synthetic request trace.
//
//   dgr_serve [--requests=N] [--distinct=K] [--n=M] [--seed=S]
//             [--drivers=D] [--net-threads=T] [--batch-max=B]
//             [--cache=C] [--queue=Q] [--require-hits=H] [--quiet]
//
// The trace models a realistic serving mix: K distinct graphic degree
// sequences (G(n, p) samples at varying p), requested N times in waves,
// each repeat under a fresh random PERMUTATION of the degrees. Since the
// service canonicalizes, permuted repeats are cache hits — the trace
// exercises admission, batching, cold runs, canonicalization, and the hit
// path all at once.
//
// Every response is checked: the service must report it validated, and
// repeats must be byte-identical to the first answer for their sequence
// (the cache-hit == cold-run contract). Exit code 0 iff all requests
// validated AND the service recorded at least --require-hits cache hits
// (default 1), so the binary doubles as the CI serve smoke.
#include <algorithm>
#include <cstdlib>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "obs/rows.h"
#include "serve/service.h"
#include "util/rng.h"

namespace {

int usage() {
  std::cerr << "usage: dgr_serve [--requests=N] [--distinct=K] [--n=M]\n"
               "                 [--seed=S] [--drivers=D] [--net-threads=T]\n"
               "                 [--batch-max=B] [--cache=C] [--queue=Q]\n"
               "                 [--require-hits=H] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 64;
  std::size_t distinct = 8;
  std::size_t n = 64;
  std::uint64_t seed = 1;
  std::uint64_t require_hits = 1;
  dgr::serve::ServiceConfig cfg;
  cfg.drivers = 4;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto starts = [&](const char* p) { return a.rfind(p, 0) == 0; };
    auto num = [&](std::size_t skip) {
      return std::strtoull(a.c_str() + skip, nullptr, 10);
    };
    if (starts("--requests=")) {
      requests = num(11);
    } else if (starts("--distinct=")) {
      distinct = num(11);
    } else if (starts("--n=")) {
      n = num(4);
    } else if (starts("--seed=")) {
      seed = num(7);
    } else if (starts("--drivers=")) {
      cfg.drivers = static_cast<unsigned>(num(10));
    } else if (starts("--net-threads=")) {
      cfg.net_threads = static_cast<unsigned>(num(14));
    } else if (starts("--batch-max=")) {
      cfg.batch_max = num(12);
    } else if (starts("--cache=")) {
      cfg.cache_capacity = num(8);
    } else if (starts("--queue=")) {
      cfg.queue_capacity = num(8);
    } else if (starts("--require-hits=")) {
      require_hits = num(15);
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return usage();
    }
  }
  if (requests == 0 || distinct == 0 || n < 2) return usage();

  dgr::Rng rng(dgr::hash_mix(seed, 0x5E27E));

  // K distinct graphic sequences at spread-out densities.
  std::vector<std::vector<std::uint64_t>> families;
  families.reserve(distinct);
  for (std::size_t k = 0; k < distinct; ++k) {
    const double p = 0.1 + 0.8 * static_cast<double>(k) /
                               static_cast<double>(std::max<std::size_t>(
                                   distinct - 1, 1));
    families.push_back(dgr::graph::gnp_sequence(n, p, rng));
  }

  dgr::serve::RealizationService service(cfg);

  // Submit the whole trace: wave after wave over the families, each
  // request a fresh permutation of its family's degrees.
  std::vector<std::future<dgr::serve::RealizationService::Result>> futures;
  futures.reserve(requests);
  std::vector<std::size_t> family_of;
  family_of.reserve(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    const std::size_t k = r % distinct;
    dgr::serve::Request req;
    req.degrees = families[k];
    std::shuffle(req.degrees.begin(), req.degrees.end(), rng);
    req.seed = dgr::hash_mix(seed, k);  // per-family seed, stable per family
    futures.push_back(service.submit(std::move(req)));
    family_of.push_back(k);
  }

  // Collect and cross-check: all validated, and every repeat of a family
  // byte-identical to the family's first answer.
  std::size_t failed = 0;
  std::map<std::size_t, dgr::serve::Realization> first_answer;
  for (std::size_t r = 0; r < requests; ++r) {
    const auto result = futures[r].get();
    if (!result->validated) {
      ++failed;
      std::cerr << "FAIL request " << r << " (family " << family_of[r]
                << "): " << result->message << "\n";
      continue;
    }
    auto [it, inserted] = first_answer.emplace(family_of[r], *result);
    if (!inserted && !(it->second == *result)) {
      ++failed;
      std::cerr << "FAIL request " << r << ": repeat answer diverged from "
                   "first answer for family "
                << family_of[r] << "\n";
    }
  }

  // Warm wave: with every family now resident, one more permuted request
  // per family must be answered straight from the cache at submit time —
  // the steady-state serving path, and the smoke's guaranteed hits.
  for (std::size_t k = 0; k < distinct && k < requests; ++k) {
    dgr::serve::Request req;
    req.degrees = families[k];
    std::shuffle(req.degrees.begin(), req.degrees.end(), rng);
    req.seed = dgr::hash_mix(seed, k);
    const auto result = service.submit(std::move(req)).get();
    if (!result->validated || !(first_answer.at(k) == *result)) {
      ++failed;
      std::cerr << "FAIL warm request for family " << k
                << ": not byte-identical to the cold answer\n";
    }
  }

  const auto st = service.stats();
  const auto cs = service.cache_stats();
  const std::uint64_t hits = st.submit_hits + st.run_hits;
  if (!quiet) {
    // One obs-rows dump per stats struct (the shared snapshot path —
    // identical shape in dgr_top and the exporter's JSON).
    std::ostringstream out;
    out << "service (" << failed << " failed):\n"
        << dgr::obs::rows_to_text(dgr::obs::rows(st)) << "cache:\n"
        << dgr::obs::rows_to_text(dgr::obs::rows(cs));
    std::cout << out.str();
  }

  if (failed != 0) return 1;
  if (hits < require_hits) {
    std::cerr << "expected >= " << require_hits << " cache hits, saw "
              << hits << "\n";
    return 1;
  }
  return 0;
}
