// Overlay construction over unreliable links (§8 robustness extension).
//
//   $ ./lossy_swarm [n] [drop_percent]
//
// Builds a 8-regular overlay's implicit realization over reliable links,
// then switches the network to a lossy regime and finishes the
// explicitization twice: once with the plain fire-and-forget exchange
// (messages silently vanish) and once with the ACK-based exactly-once
// exchange. Prints how many edges each endpoint actually learned — the
// motivation for reliability machinery in real P2P deployments.
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "ncc/network.h"
#include "realization/explicit_degree.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const double drop =
      (argc > 2 ? std::strtod(argv[2], nullptr) : 30.0) / 100.0;
  const auto d = dgr::graph::regular_sequence(n, 8);

  auto run = [&](bool reliable) {
    dgr::ncc::Config cfg;
    cfg.seed = 17;
    dgr::ncc::Network net(n, cfg);
    const auto implicit_result =
        dgr::realize::realize_degrees_implicit(net, d);
    if (!implicit_result.realizable) std::abort();
    net.set_drop_probability(drop);
    const auto result =
        reliable ? dgr::realize::make_explicit_reliable(net, implicit_result)
                 : dgr::realize::make_explicit(net, implicit_result);
    std::size_t complete_nodes = 0;
    std::size_t learned_edges = 0;
    for (dgr::ncc::Slot s = 0; s < net.n(); ++s) {
      learned_edges += result.adjacency[s].size();
      if (result.adjacency[s].size() == d[s]) ++complete_nodes;
    }
    struct Out {
      std::size_t complete;
      std::size_t learned;
      std::uint64_t rounds;
      std::uint64_t dropped;
    };
    return Out{complete_nodes, learned_edges, result.explicit_rounds,
               net.stats().messages_dropped};
  };

  std::cout << n << "-peer swarm, 8-regular overlay, "
            << static_cast<int>(drop * 100) << "% link loss during "
            << "explicitization\n\n";

  const auto naive = run(false);
  const auto acked = run(true);
  const std::size_t want_edges = 8 * n;

  dgr::Table t("explicitization under loss");
  t.header({"exchange", "nodes w/ complete view", "edge endpoints learned",
            "rounds", "msgs dropped"});
  t.row({"fire-and-forget",
         dgr::Table::num(std::uint64_t{naive.complete}) + "/" +
             dgr::Table::num(std::uint64_t{n}),
         dgr::Table::num(std::uint64_t{naive.learned}) + "/" +
             dgr::Table::num(std::uint64_t{want_edges}),
         dgr::Table::num(naive.rounds), dgr::Table::num(naive.dropped)});
  t.row({"ACK + retransmit (exactly-once)",
         dgr::Table::num(std::uint64_t{acked.complete}) + "/" +
             dgr::Table::num(std::uint64_t{n}),
         dgr::Table::num(std::uint64_t{acked.learned}) + "/" +
             dgr::Table::num(std::uint64_t{want_edges}),
         dgr::Table::num(acked.rounds), dgr::Table::num(acked.dropped)});
  t.print(std::cout);

  return acked.complete == n ? 0 : 1;
}
