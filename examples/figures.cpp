// Reproduces the paper's Figures 1 and 2 on the canonical 8-node path.
//
//   $ ./figures
//
// Figure 1: the warm-up balanced binary tree built by recursive
// head-extraction and odd/even decomposition.
// Figure 2: the level structure L (levels L0..L3 of the pointer-doubling
// construction) and the balanced binary *search* tree produced by the
// controlled BFS (Algorithm 1) — its inorder traversal is the original
// path 1..8.
#include <functional>
#include <iostream>
#include <string>

#include "ncc/network.h"
#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"

namespace {

using dgr::ncc::kNoNode;

void print_tree(const dgr::ncc::Network& net,
                const dgr::prim::TreeOverlay& tree) {
  std::function<void(dgr::ncc::Slot, std::string, bool, bool)> rec =
      [&](dgr::ncc::Slot s, std::string prefix, bool last, bool root) {
        const auto& nd = tree.nodes[s];
        std::cout << prefix << (root ? "" : (last ? "`-- " : "|-- "))
                  << net.id_of(s) << "\n";
        const std::string child_prefix =
            prefix + (root ? "" : (last ? "    " : "|   "));
        if (nd.left != kNoNode && nd.right != kNoNode) {
          rec(net.slot_of(nd.left), child_prefix, false, false);
          rec(net.slot_of(nd.right), child_prefix, true, false);
        } else if (nd.left != kNoNode) {
          rec(net.slot_of(nd.left), child_prefix, true, false);
        } else if (nd.right != kNoNode) {
          rec(net.slot_of(nd.right), child_prefix, true, false);
        }
      };
  rec(tree.root, "", true, true);
}

dgr::ncc::Network make_fixed_net() {
  dgr::ncc::Config cfg;
  cfg.shuffle_path = false;  // path order 1..8 as in the paper
  cfg.random_ids = false;
  cfg.overflow = dgr::ncc::OverflowPolicy::kStrict;
  return dgr::ncc::Network(8, cfg);
}

}  // namespace

int main() {
  // ---- Figure 1: warm-up balanced binary tree -------------------------
  {
    auto net = make_fixed_net();
    auto path = dgr::prim::undirect_initial_path(net);
    const auto tree = dgr::prim::build_warmup_tree(net, path);
    std::cout << "Figure 1 — warm-up balanced binary tree on Gk = 1..8\n";
    std::cout << "(r takes its neighbour a as left child and a's other\n"
                 " neighbour b as right child, then the path splits)\n\n";
    print_tree(net, tree);
    std::cout << "\nheight = " << tree.height << " (bound ceil(log 8)+1 = 4)\n\n";
  }

  // ---- Figure 2: level structure L + BBST -----------------------------
  {
    auto net = make_fixed_net();
    auto path = dgr::prim::undirect_initial_path(net);
    // The level structure is exactly the skip overlay: level k links pair
    // nodes 2^k apart. Print each level's paths.
    auto tree = dgr::prim::build_bbst(net, path);
    const auto skip = dgr::prim::build_skiplinks(net, path);

    std::cout << "Figure 2 — level structure L on Gk = 1..8\n";
    for (int k = 0; k < skip.levels(); ++k) {
      const std::size_t step = std::size_t{1} << k;
      std::cout << "  L" << k << ": ";
      for (std::size_t start = 0; start < step && start < 8; ++start) {
        std::cout << "[";
        for (std::size_t p = start; p < 8; p += step) {
          std::cout << net.id_of(path.order[p]);
          if (p + step < 8) std::cout << "-";
        }
        std::cout << "] ";
      }
      std::cout << "\n";
    }

    std::cout << "\nBalanced binary search tree (controlled BFS output):\n\n";
    print_tree(net, tree);
    std::cout << "\ninorder traversal:";
    // Inorder = sorted by the computed positions.
    std::vector<dgr::ncc::NodeId> inorder(8);
    for (dgr::ncc::Slot s = 0; s < 8; ++s)
      inorder[static_cast<std::size_t>(path.pos[s])] = net.id_of(s);
    for (const auto id : inorder) std::cout << ' ' << id;
    std::cout << "  (= the original path: Theorem 1)\n";
    std::cout << "height = " << tree.height << " (bound 4)\n";
  }
  return 0;
}
