// P2P swarm overlay: heterogeneous peers with capacity-driven degrees.
//
//   $ ./p2p_overlay [n]
//
// The paper's motivating scenario (§1): a peer-to-peer swarm must build an
// overlay where each peer's degree matches its bandwidth class — a few
// super-peers take many connections, most take few. We draw a power-law
// degree profile, realize it with Algorithm 3 + Theorem 12, and verify that
// the overlay is exact, simple and (as power-law profiles typically are)
// connected enough to gossip over.
#include <cstdlib>
#include <iostream>

#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "ncc/network.h"
#include "realization/explicit_degree.h"
#include "realization/validate.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;

  dgr::Rng rng(2026);
  const auto d = dgr::graph::powerlaw_sequence(
      n, dgr::isqrt(n) * 3, 2.1, rng);
  const std::uint64_t m = dgr::graph::degree_sum(d) / 2;
  std::uint64_t delta = 0;
  for (const auto x : d) delta = std::max(delta, x);

  std::cout << "P2P swarm: " << n << " peers, power-law degree profile "
            << "(max degree " << delta << ", " << m << " edges)\n\n";

  dgr::ncc::Config cfg;
  cfg.seed = 11;
  dgr::ncc::Network net(n, cfg);
  const auto result = dgr::realize::realize_degrees_explicit(net, d);
  if (!result.realizable) {
    std::cout << "profile not graphic (generator bug?)\n";
    return 1;
  }

  const auto g = dgr::realize::graph_from_stored(net, result.adjacency);
  bool exact = true;
  for (dgr::ncc::Slot s = 0; s < net.n(); ++s)
    exact &= g.degree(static_cast<dgr::graph::Vertex>(s)) == d[s];

  // How much of the swarm can a super-peer reach? (gossip reachability)
  dgr::graph::Vertex hub = 0;
  for (dgr::graph::Vertex v = 0; v < g.n(); ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;
  const auto dist = g.bfs_distances(hub);
  std::size_t reached = 0;
  std::int64_t max_dist = 0;
  for (const auto x : dist) {
    if (x >= 0) {
      ++reached;
      max_dist = std::max(max_dist, x);
    }
  }

  dgr::Table t("p2p overlay");
  t.header({"metric", "value"});
  t.row({"peers", dgr::Table::num(std::uint64_t{n})});
  t.row({"edges", dgr::Table::num(std::uint64_t{g.m()})});
  t.row({"max degree (super-peer)", dgr::Table::num(delta)});
  t.row({"degrees exact", exact ? "yes" : "NO"});
  t.row({"HH phases (bound min{2Δ,O(√m)})", dgr::Table::num(result.phases)});
  t.row({"min{√m, Δ}", dgr::Table::num(std::min<std::uint64_t>(
                           dgr::isqrt(m), delta))});
  t.row({"total rounds", dgr::Table::num(net.stats().rounds)});
  t.row({"peers reachable from super-peer",
         dgr::Table::num(std::uint64_t{reached})});
  t.row({"gossip radius", dgr::Table::num(std::uint64_t(max_dist))});
  t.print(std::cout);
  return exact ? 0 : 1;
}
