// Resilient backbone: tiered edge-connectivity thresholds (paper §6).
//
//   $ ./resilient_backbone [n]
//
// A three-tier network — core routers that must survive many link
// failures, relays with moderate requirements, and edge devices that just
// need to stay attached. Each node v demands edge connectivity
// Conn(u, v) >= min(rho(u), rho(v)). We run the paper's Algorithm 6 in
// NCC0, verify every sampled pair with max-flow (Menger), and print the
// 2-approximation certificate.
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "ncc/network.h"
#include "realization/connectivity.h"
#include "realization/validate.h"
#include "seq/connectivity_baseline.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 96;
  const std::size_t n_core = std::max<std::size_t>(2, n / 16);
  const std::size_t n_relay = n / 4;
  const std::uint64_t rho_core = std::min<std::uint64_t>(n - 1, 12);
  const std::uint64_t rho_relay = 5;
  const std::uint64_t rho_edge = 2;

  const auto rho = dgr::graph::tiered_thresholds(
      n, n_core, rho_core, n_relay, rho_relay, rho_edge);

  std::cout << "Backbone: " << n_core << " core (rho=" << rho_core << "), "
            << n_relay << " relay (rho=" << rho_relay << "), "
            << n - n_core - n_relay << " edge (rho=" << rho_edge << ")\n\n";

  dgr::ncc::Config cfg;
  cfg.seed = 5;
  dgr::ncc::Network net(n, cfg);
  const auto result = dgr::realize::realize_connectivity_ncc0(net, rho);
  if (!result.realizable) {
    std::cout << "thresholds infeasible (rho > n-1 somewhere)\n";
    return 1;
  }

  const auto g = dgr::realize::graph_from_stored(net, result.stored);
  const std::uint64_t opt_lb =
      dgr::seq::connectivity_edge_lower_bound(rho);

  dgr::Rng vrng(99);
  const auto violation = dgr::seq::find_threshold_violation(g, rho, vrng);

  dgr::Table t("resilient backbone (Algorithm 6, NCC0, explicit)");
  t.header({"metric", "value"});
  t.row({"nodes", dgr::Table::num(std::uint64_t{n})});
  t.row({"edges built", dgr::Table::num(std::uint64_t{g.m()})});
  t.row({"edge lower bound ceil(sum rho/2)", dgr::Table::num(opt_lb)});
  t.row({"approximation ratio (bound 2)",
         dgr::Table::num(static_cast<double>(g.m()) /
                             static_cast<double>(opt_lb),
                         3)});
  t.row({"all sampled pairs meet thresholds",
         violation ? "NO — VIOLATION" : "yes (max-flow verified)"});
  t.row({"rounds", dgr::Table::num(result.rounds)});
  t.print(std::cout);

  if (violation) {
    std::cout << "violated pair: " << violation->first << ", "
              << violation->second << "\n";
    return 1;
  }
  return 0;
}
