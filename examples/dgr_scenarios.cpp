// dgr_scenarios — the §8 robustness harness CLI.
//
//   dgr_scenarios list
//   dgr_scenarios run [--scenario=a,b,...] [--algos=implicit,tree,...]
//                     [--n=32,64,...] [--threads=N] [--jobs=N] [--seed=N]
//                     [--dense] [--json=path] [--csv=path] [--no-intervals]
//                     [--telemetry-socket=PATH] [--progress] [--quiet]
//
// `run` executes the named scenarios (default: the whole built-in library)
// across the selected realization algorithms and n sweep, validates every
// completed output against realization/validate, prints one summary table
// per scenario, and optionally writes the deterministic JSON/CSV report
// (same seed => byte-identical file at any --threads, any --jobs, and
// with/without --dense). --jobs=N runs the matrix N-way concurrent on the
// process-wide executor; --progress prints one whole line per completed
// run (the runner serializes the callback, so lines never interleave).
// Exit code 0 iff every run validated.
//
// --telemetry-socket=PATH turns on the live observability plane: an
// obs::Exporter is bound at PATH (scrape it with `dgr_top --socket=PATH`
// or `scripts/obs_tail.sh PATH`), every run's Network feeds the process
// metrics registry through an obs::NetMetrics sink, and each completed
// round publishes one NDJSON event to "stream" subscribers. Pure
// observation: the report bytes are identical with or without the flag.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ncc/telemetry.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/net_metrics.h"
#include "scenario/library.h"
#include "scenario/report.h"
#include "scenario/runner.h"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage() {
  std::cerr
      << "usage: dgr_scenarios list\n"
         "       dgr_scenarios run [--scenario=a,b,...] [--algos=csv]\n"
         "                         [--n=csv] [--threads=N] [--jobs=N]\n"
         "                         [--seed=N] [--dense] [--json=path]\n"
         "                         [--csv=path] [--no-intervals]\n"
         "                         [--telemetry-socket=PATH]\n"
         "                         [--progress] [--quiet]\n";
  return 2;
}

int list_scenarios() {
  for (const auto& s : dgr::scenario::builtin_scenarios()) {
    std::cout << s.name << " — " << s.description << "\n";
  }
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  f << content;
  return true;
}

/// One NDJSON "round" event for stream subscribers. Scenario/algo names
/// come from the built-in library (identifier-shaped), so no escaping.
std::string round_event(const std::string& scenario, const std::string& algo,
                        std::uint64_t n, const dgr::ncc::RoundSample& s) {
  std::ostringstream ev;
  ev << "{\"event\":\"round\",\"scenario\":\"" << scenario << "\",\"algo\":\""
     << algo << "\",\"n\":" << n << ",\"round\":" << s.round
     << ",\"sent\":" << s.sent << ",\"delivered\":" << s.delivered
     << ",\"bounced\":" << s.bounced << ",\"dropped\":" << s.dropped
     << ",\"frontier\":" << s.frontier << ",\"crashed\":" << s.crashed
     << ",\"phase_ns\":{\"body\":" << s.phase_ns.body
     << ",\"sort\":" << s.phase_ns.sort << ",\"rng\":" << s.phase_ns.rng
     << ",\"placement\":" << s.phase_ns.placement
     << ",\"learn\":" << s.phase_ns.learn << "}}";
  return ev.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "list") return list_scenarios();
  if (command != "run") return usage();

  dgr::scenario::RunnerOptions opt;
  std::vector<dgr::scenario::ScenarioSpec> specs;
  std::string json_path;
  std::string csv_path;
  std::string socket_path;
  bool quiet = false;
  bool progress = false;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto starts = [&](const char* p) { return a.rfind(p, 0) == 0; };
    if (starts("--scenario=")) {
      for (const auto& name : split_csv(a.substr(11))) {
        const auto* s = dgr::scenario::find_scenario(name);
        if (!s) {
          std::cerr << "unknown scenario: " << name
                    << " (see `dgr_scenarios list`)\n";
          return 2;
        }
        specs.push_back(*s);
      }
    } else if (starts("--algos=")) {
      opt.algos.clear();
      for (const auto& name : split_csv(a.substr(8))) {
        dgr::scenario::Algo algo;
        if (!dgr::scenario::algo_from_string(name, algo)) {
          std::cerr << "unknown algorithm: " << name
                    << " (approx|implicit|explicit|tree|connectivity)\n";
          return 2;
        }
        opt.algos.push_back(algo);
      }
    } else if (starts("--n=")) {
      opt.n_override.clear();
      for (const auto& v : split_csv(a.substr(4))) {
        const std::size_t n = std::strtoull(v.c_str(), nullptr, 10);
        // The harness floor mirrors check_spec: below 8 nodes there is no
        // room for trees and crash waves (and 0 means "not a number").
        if (n < 8) {
          std::cerr << "bad --n value '" << v << "' (need integers >= 8)\n";
          return 2;
        }
        opt.n_override.push_back(n);
      }
    } else if (starts("--threads=")) {
      opt.threads = static_cast<unsigned>(
          std::strtoul(a.c_str() + 10, nullptr, 10));
    } else if (starts("--jobs=")) {
      opt.jobs = static_cast<unsigned>(
          std::strtoul(a.c_str() + 7, nullptr, 10));
    } else if (starts("--seed=")) {
      opt.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (a == "--dense") {
      opt.sparse_rounds = false;
    } else if (starts("--json=")) {
      json_path = a.substr(7);
    } else if (starts("--csv=")) {
      csv_path = a.substr(6);
    } else if (starts("--telemetry-socket=")) {
      socket_path = a.substr(19);
    } else if (a == "--no-intervals") {
      opt.keep_intervals = false;
    } else if (a == "--progress") {
      progress = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return usage();
    }
  }
  if (specs.empty()) specs = dgr::scenario::builtin_scenarios();

  if (progress) {
    // One fully-formed line per completed run. The runner already
    // serializes progress callbacks, so concurrent jobs cannot interleave
    // output; building the line in one string and writing it in a single
    // insertion keeps it whole even if other stderr writers exist.
    opt.progress = [](std::size_t done, std::size_t total,
                      const dgr::scenario::RunRecord& r) {
      std::ostringstream line;
      line << "[" << done << "/" << total << "] " << r.scenario << " / "
           << r.algo << " / n=" << r.n << ": " << r.outcome
           << (r.validated ? "" : " (NOT VALIDATED)") << "\n";
      std::cerr << line.str();
    };
  }

  // Live observability plane (--telemetry-socket): exporter + metrics sink
  // + per-round NDJSON events. Constructed before run_matrix so an external
  // watcher can connect first; destroyed after, which closes subscribers
  // and unlinks the socket.
  std::unique_ptr<dgr::obs::Exporter> exporter;
  std::unique_ptr<dgr::obs::NetMetrics> net_metrics;
  if (!socket_path.empty()) {
    try {
      exporter = std::make_unique<dgr::obs::Exporter>(socket_path);
    } catch (const std::exception& e) {
      std::cerr << "cannot bind telemetry socket: " << e.what() << "\n";
      return 1;
    }
    // Timing on: phase nanos in round events, queue-wait histograms in the
    // scraped registry. Observability only — never in the report bytes.
    dgr::obs::Registry::set_timing(true);
    net_metrics = std::make_unique<dgr::obs::NetMetrics>();
    opt.metrics = net_metrics.get();
    opt.on_sample = [&exporter](const std::string& scenario,
                                const std::string& algo, std::uint64_t n,
                                const dgr::ncc::RoundSample& s) {
      exporter->publish(round_event(scenario, algo, n, s));
    };
    auto inner_progress = opt.progress;
    opt.progress = [&exporter, inner_progress](
                       std::size_t done, std::size_t total,
                       const dgr::scenario::RunRecord& r) {
      std::ostringstream ev;
      ev << "{\"event\":\"run_end\",\"scenario\":\"" << r.scenario
         << "\",\"algo\":\"" << r.algo << "\",\"n\":" << r.n
         << ",\"outcome\":\"" << r.outcome
         << "\",\"validated\":" << (r.validated ? "true" : "false")
         << ",\"done\":" << done << ",\"total\":" << total << "}";
      exporter->publish(ev.str());
      if (inner_progress) inner_progress(done, total, r);
    };
  }

  const auto report = dgr::scenario::run_matrix(specs, opt);

  if (!quiet) std::cout << dgr::scenario::to_table(report);
  if (!json_path.empty() &&
      !write_file(json_path, dgr::scenario::to_json(report)))
    return 1;
  if (!csv_path.empty() &&
      !write_file(csv_path, dgr::scenario::to_csv(report)))
    return 1;

  std::size_t failed = 0;
  for (const auto& s : report.scenarios) {
    for (const auto& r : s.runs) {
      if (!r.validated) {
        ++failed;
        std::cerr << "FAIL " << s.name << " / " << r.algo << " / n=" << r.n
                  << ": " << r.outcome << " — " << r.validation << "\n";
      }
    }
  }
  std::cout << report.run_count() - failed << "/" << report.run_count()
            << " runs validated\n";
  return failed == 0 ? 0 : 1;
}
