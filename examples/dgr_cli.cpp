// dgr_cli — run the paper's realization algorithms on your own inputs.
//
//   dgr_cli degrees 3,3,2,2,2 [--model=ncc0|ncc1] [--seed=N] [--envelope]
//   dgr_cli tree 3,2,1,1,1 [--max-diameter]
//   dgr_cli thresholds 4,2,2,1,1 [--model=ncc0|ncc1]
//
// Prints the realized overlay (per-node neighbour lists), verification
// results and simulator statistics.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/degree_sequence.h"
#include "graph/tree_metrics.h"
#include "ncc/network.h"
#include "realization/approx_degree.h"
#include "realization/connectivity.h"
#include "realization/explicit_degree.h"
#include "realization/tree_realization.h"
#include "realization/validate.h"
#include "seq/connectivity_baseline.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<std::uint64_t> parse_sequence(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
  }
  return out;
}

struct Options {
  bool ncc1 = false;
  bool envelope = false;
  bool max_diameter = false;
  std::uint64_t seed = 1;
};

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--model=ncc1") opt.ncc1 = true;
    else if (a == "--model=ncc0") opt.ncc1 = false;
    else if (a == "--envelope") opt.envelope = true;
    else if (a == "--max-diameter") opt.max_diameter = true;
    else if (a.rfind("--seed=", 0) == 0)
      opt.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    else {
      std::cerr << "unknown option: " << a << "\n";
      std::exit(2);
    }
  }
  return opt;
}

dgr::ncc::Network make_network(std::size_t n, const Options& opt) {
  dgr::ncc::Config cfg;
  cfg.seed = opt.seed;
  if (opt.ncc1) cfg.initial = dgr::ncc::InitialKnowledge::kClique;
  return dgr::ncc::Network(n, cfg);
}

void print_overlay(const dgr::ncc::Network& net,
                   const std::vector<std::vector<dgr::ncc::NodeId>>& adj) {
  std::cout << "\noverlay (node: neighbours):\n";
  const std::size_t show = std::min<std::size_t>(net.n(), 16);
  for (dgr::ncc::Slot s = 0; s < show; ++s) {
    std::cout << "  " << net.id_of(s) << ":";
    for (const auto v : adj[s]) std::cout << ' ' << v;
    std::cout << '\n';
  }
  if (show < net.n())
    std::cout << "  ... (" << net.n() - show << " more nodes)\n";
}

void print_stats(const dgr::ncc::Network& net) {
  std::cout << "\nrounds: " << net.stats().rounds
            << ", messages: " << net.stats().messages_sent
            << ", capacity/round: " << net.capacity() << "\n";
}

int run_degrees(const std::vector<std::uint64_t>& d, const Options& opt) {
  auto net = make_network(d.size(), opt);
  const auto mode = opt.envelope ? dgr::realize::DegreeMode::kEnvelope
                                 : dgr::realize::DegreeMode::kExact;
  const auto result = dgr::realize::realize_degrees_explicit(net, d, mode);
  if (!result.realizable) {
    std::cout << "UNREALIZABLE (not a graphic sequence)";
    if (!opt.envelope) std::cout << " — try --envelope";
    std::cout << "\n";
    return 1;
  }
  print_overlay(net, result.adjacency);
  bool exact = true;
  for (dgr::ncc::Slot s = 0; s < net.n(); ++s) {
    if (opt.envelope ? result.adjacency[s].size() < d[s]
                     : result.adjacency[s].size() != d[s])
      exact = false;
  }
  std::cout << "\nverified: "
            << (exact ? (opt.envelope ? "envelope (deg >= requested)"
                                      : "exact degrees")
                      : "FAILED")
            << ", phases: " << result.phases;
  print_stats(net);
  return exact ? 0 : 1;
}

int run_tree(const std::vector<std::uint64_t>& d, const Options& opt) {
  auto net = make_network(d.size(), opt);
  const auto result =
      opt.max_diameter ? dgr::realize::realize_tree_caterpillar(net, d)
                       : dgr::realize::realize_tree_greedy(net, d);
  if (!result.realizable) {
    std::cout << "UNREALIZABLE as a tree (need sum d = 2(n-1), all d >= 1)\n";
    return 1;
  }
  const auto g = dgr::realize::graph_from_stored(net, result.stored);
  print_overlay(net, result.stored);
  std::cout << "\nverified: " << (g.is_tree() ? "tree" : "NOT A TREE")
            << ", diameter: " << dgr::graph::tree_diameter(g)
            << (opt.max_diameter ? " (maximized)" : " (minimized, Lemma 15)");
  print_stats(net);
  return g.is_tree() ? 0 : 1;
}

int run_thresholds(const std::vector<std::uint64_t>& rho,
                   const Options& opt) {
  auto net = make_network(rho.size(), opt);
  const auto result =
      opt.ncc1 ? dgr::realize::realize_connectivity_ncc1(net, rho)
               : dgr::realize::realize_connectivity_ncc0(net, rho);
  if (!result.realizable) {
    std::cout << "INFEASIBLE (some rho > n-1)\n";
    return 1;
  }
  const auto g = dgr::realize::graph_from_stored(net, result.stored);
  print_overlay(net, result.stored);
  dgr::Rng vrng(99);
  const auto violation =
      dgr::seq::find_threshold_violation(g, rho, vrng);
  const auto lb = dgr::seq::connectivity_edge_lower_bound(rho);
  std::cout << "\nverified: "
            << (violation ? "VIOLATION FOUND" : "thresholds met (max-flow)")
            << ", edges: " << g.m() << " (lower bound " << lb
            << ", ratio "
            << dgr::Table::num(static_cast<double>(g.m()) /
                                   static_cast<double>(std::max<std::uint64_t>(
                                       lb, 1)),
                               2)
            << ", bound 2)";
  print_stats(net);
  return violation ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: dgr_cli degrees|tree|thresholds <csv sequence> "
                 "[--model=ncc0|ncc1] [--seed=N] [--envelope] "
                 "[--max-diameter]\n";
    return 2;
  }
  const std::string command = argv[1];
  const auto sequence = parse_sequence(argv[2]);
  if (sequence.empty()) {
    std::cerr << "empty sequence\n";
    return 2;
  }
  const Options opt = parse_options(argc, argv, 3);

  if (command == "degrees") return run_degrees(sequence, opt);
  if (command == "tree") return run_tree(sequence, opt);
  if (command == "thresholds") return run_thresholds(sequence, opt);
  std::cerr << "unknown command: " << command << "\n";
  return 2;
}
