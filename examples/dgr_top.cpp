// dgr_top — tiny observability client for the obs::Exporter socket.
//
//   dgr_top --socket=PATH            live: stream round events, one
//                                    pretty-printed line per round, with a
//                                    registry summary (cache hit ratio,
//                                    executor occupancy) every few rounds
//   dgr_top --socket=PATH --once     scrape one Prometheus snapshot, print
//                                    it raw, exit
//   dgr_top --socket=PATH --json     scrape one JSON snapshot, exit
//
// Start the producer side with `dgr_scenarios run --telemetry-socket=PATH`
// (any extra flags you like). This client doubles as the manual smoke test
// for the socket protocol: if `--once` prints HELP/TYPE lines and the
// default mode prints rounds, both formats and the stream path work.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

namespace {

int usage() {
  std::cerr << "usage: dgr_top --socket=PATH [--once|--json] [--lines=N]\n";
  return 2;
}

/// Connect to the exporter and send one request line; -1 on failure.
int dial(const std::string& path, const char* request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const std::size_t len = std::strlen(request);
  if (::send(fd, request, len, 0) != static_cast<ssize_t>(len)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Drain a snapshot-style connection (server closes when done) to stdout.
int dump_connection(int fd) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    std::cout.write(buf, n);
  }
  ::close(fd);
  std::cout.flush();
  return 0;
}

/// Extract `"key":<number>` from one NDJSON event (enough JSON for our own
/// exporter's output; not a general parser).
std::uint64_t num_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

/// Extract `"key":"value"` from one NDJSON event.
std::string str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "?";
  const std::size_t from = at + needle.size();
  const std::size_t to = line.find('"', from);
  return line.substr(from, to - from);
}

/// One registry summary line from a fresh "json" scrape: cache hit ratio
/// and executor occupancy — the numbers a stream subscriber cannot derive
/// from round events alone.
void print_summary(const std::string& path) {
  const int fd = dial(path, "json\n");
  if (fd < 0) return;
  std::string snap;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    snap.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::uint64_t hits = num_field(snap, "dgr_cache_hits_total");
  const std::uint64_t misses = num_field(snap, "dgr_cache_misses_total");
  const std::uint64_t busy = num_field(snap, "dgr_exec_busy_workers");
  const std::uint64_t workers = num_field(snap, "dgr_exec_workers");
  const std::uint64_t ewma =
      num_field(snap, "dgr_net_delivered_per_round_ewma_x1000");
  std::cout << "-- registry: cache hit ratio ";
  if (hits + misses == 0) {
    std::cout << "n/a";
  } else {
    std::cout << (100 * hits) / (hits + misses) << "% (" << hits << "/"
              << (hits + misses) << ")";
  }
  std::cout << ", executor " << busy << "/" << workers << " busy"
            << ", delivery ewma " << ewma / 1000 << " msg/round\n";
}

/// Pretty-print one streamed event; returns false for lines to skip.
bool print_event(const std::string& line) {
  const std::string event = str_field(line, "event");
  if (event == "run_end") {
    std::cout << "== " << str_field(line, "scenario") << "/"
              << str_field(line, "algo") << " n=" << num_field(line, "n")
              << " finished: " << str_field(line, "outcome") << " ["
              << num_field(line, "done") << "/" << num_field(line, "total")
              << "]\n";
    return true;
  }
  if (event != "round") return false;
  const std::uint64_t body = num_field(line, "body");
  const std::uint64_t sort = num_field(line, "sort");
  const std::uint64_t rng = num_field(line, "rng");
  const std::uint64_t placement = num_field(line, "placement");
  const std::uint64_t learn = num_field(line, "learn");
  const std::uint64_t total = body + sort + rng + placement + learn;
  std::cout << str_field(line, "scenario") << "/" << str_field(line, "algo")
            << " n=" << num_field(line, "n") << " r=" << num_field(line, "round")
            << " sent=" << num_field(line, "sent")
            << " dlv=" << num_field(line, "delivered")
            << " bounce=" << num_field(line, "bounced")
            << " drop=" << num_field(line, "dropped")
            << " frontier=" << num_field(line, "frontier");
  if (total > 0) {
    std::cout << " | body " << (100 * body) / total << "% sort "
              << (100 * sort) / total << "% place " << (100 * placement) / total
              << "% learn " << (100 * learn) / total << "%";
  }
  std::cout << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool once = false;
  bool json = false;
  std::uint64_t max_lines = 0;  // 0 = until the producer closes
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto starts = [&](const char* p) { return a.rfind(p, 0) == 0; };
    if (starts("--socket=")) {
      path = a.substr(9);
    } else if (a == "--once") {
      once = true;
    } else if (a == "--json") {
      json = true;
    } else if (starts("--lines=")) {
      max_lines = std::strtoull(a.c_str() + 8, nullptr, 10);
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  if (once || json) {
    const int fd = dial(path, json ? "json\n" : "metrics\n");
    if (fd < 0) {
      std::cerr << "cannot connect to " << path << "\n";
      return 1;
    }
    return dump_connection(fd);
  }

  const int fd = dial(path, "stream\n");
  if (fd < 0) {
    std::cerr << "cannot connect to " << path << "\n";
    return 1;
  }
  std::string carry;
  char buf[4096];
  std::uint64_t printed = 0;
  std::uint64_t since_summary = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    carry.append(buf, static_cast<std::size_t>(n));
    std::size_t nl = 0;
    while ((nl = carry.find('\n')) != std::string::npos) {
      const std::string line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      if (!print_event(line)) continue;
      ++printed;
      if (++since_summary >= 16) {
        since_summary = 0;
        print_summary(path);
      }
      if (max_lines != 0 && printed >= max_lines) {
        ::close(fd);
        return 0;
      }
    }
  }
  ::close(fd);
  return 0;
}
