// Streaming multicast tree: minimum-diameter tree realization (paper §5).
//
//   $ ./multicast_tree [n]
//
// A media source streams to n peers; each peer declares how many downstream
// connections it can relay (its tree degree). The diameter of the tree is
// the worst-case relay latency. We realize the same degree profile twice —
// Algorithm 4's caterpillar (maximum diameter) and Algorithm 5's greedy
// tree (minimum diameter, Lemma 15) — and compare latencies.
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "graph/tree_metrics.h"
#include "ncc/network.h"
#include "realization/tree_realization.h"
#include "realization/validate.h"
#include "seq/greedy_tree.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;

  dgr::Rng rng(314);
  const auto d = dgr::graph::random_tree_sequence(n, rng);

  std::cout << "Multicast tree for " << n
            << " peers (degree = relay fan-in/out budget)\n\n";

  dgr::ncc::Config cfg;
  cfg.seed = 8;
  dgr::ncc::Network net_cat(n, cfg);
  const auto cat = dgr::realize::realize_tree_caterpillar(net_cat, d);
  cfg.seed = 9;
  dgr::ncc::Network net_greedy(n, cfg);
  const auto greedy = dgr::realize::realize_tree_greedy(net_greedy, d);
  if (!cat.realizable || !greedy.realizable) {
    std::cout << "degree profile not tree-realizable\n";
    return 1;
  }

  const auto g_cat = dgr::realize::graph_from_stored(net_cat, cat.stored);
  const auto g_greedy =
      dgr::realize::graph_from_stored(net_greedy, greedy.stored);
  const auto diam_cat = dgr::graph::tree_diameter(g_cat);
  const auto diam_greedy = dgr::graph::tree_diameter(g_greedy);
  const auto optimal = dgr::seq::min_tree_diameter(d);

  dgr::Table t("multicast tree realizations");
  t.header({"algorithm", "tree?", "diameter (latency)", "rounds"});
  t.row({"Algorithm 4 (caterpillar)", g_cat.is_tree() ? "yes" : "NO",
         dgr::Table::num(diam_cat), dgr::Table::num(cat.rounds)});
  t.row({"Algorithm 5 (greedy, min diameter)",
         g_greedy.is_tree() ? "yes" : "NO", dgr::Table::num(diam_greedy),
         dgr::Table::num(greedy.rounds)});
  t.row({"sequential optimum (Lemma 15)", "-",
         dgr::Table::num(optimal.value()), "-"});
  t.print(std::cout);

  std::cout << "\nlatency saved by the greedy tree: "
            << (diam_cat - diam_greedy) << " hops ("
            << dgr::Table::num(
                   100.0 * static_cast<double>(diam_cat - diam_greedy) /
                       static_cast<double>(diam_cat),
                   1)
            << "%)\n";
  return diam_greedy == optimal.value() ? 0 : 1;
}
