// Quickstart: realize a degree sequence as a P2P overlay in the NCC model.
//
//   $ ./quickstart [n] [degree]
//
// Builds an NCC0 network of n nodes (each initially knowing only one other
// ID), runs the distributed Havel–Hakimi algorithm (paper Algorithm 3) to
// realize a d-regular overlay, makes it explicit (Theorem 12), verifies the
// result, and prints the round/message statistics.
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "ncc/network.h"
#include "realization/explicit_degree.h"
#include "realization/validate.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::uint64_t degree =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  std::cout << "Realizing a " << degree << "-regular overlay on " << n
            << " nodes (NCC0, initial knowledge = a directed path)\n\n";

  dgr::ncc::Config cfg;
  cfg.seed = 7;
  dgr::ncc::Network net(n, cfg);

  const auto d = dgr::graph::regular_sequence(n, degree);
  const auto result = dgr::realize::realize_degrees_explicit(net, d);
  if (!result.realizable) {
    std::cout << "UNREALIZABLE: no simple graph has this degree sequence\n";
    return 1;
  }

  // Referee verification.
  const auto g = dgr::realize::graph_from_stored(net, result.adjacency);
  bool degrees_ok = true;
  for (dgr::ncc::Slot s = 0; s < net.n(); ++s)
    degrees_ok &= result.adjacency[s].size() == d[s];

  dgr::Table t("overlay construction summary");
  t.header({"metric", "value"});
  t.row({"nodes", dgr::Table::num(std::uint64_t{n})});
  t.row({"requested degree", dgr::Table::num(degree)});
  t.row({"edges realized", dgr::Table::num(std::uint64_t{g.m()})});
  t.row({"degrees exact", degrees_ok ? "yes" : "NO"});
  t.row({"Havel-Hakimi phases", dgr::Table::num(result.phases)});
  t.row({"implicit rounds", dgr::Table::num(result.implicit_rounds)});
  t.row({"explicitization rounds", dgr::Table::num(result.explicit_rounds)});
  t.row({"total rounds", dgr::Table::num(net.stats().rounds)});
  t.row({"messages sent", dgr::Table::num(net.stats().messages_sent)});
  t.row({"per-round capacity", dgr::Table::num(
                                   std::uint64_t(net.capacity()))});
  t.print(std::cout);

  std::cout << "\nFirst node's neighbour list (explicit overlay): ";
  for (const auto id : result.adjacency[0]) std::cout << id << ' ';
  std::cout << "\n";
  return degrees_ok ? 0 : 1;
}
