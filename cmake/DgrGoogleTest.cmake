# Resolve GoogleTest: prefer the system package, fall back to a pinned
# FetchContent download so a bare container can still build the suite.
#
# Provides GTest::gtest and GTest::gtest_main either way.

# No version constraint: FindGTest in module mode does not report a version
# before CMake 3.23, so a constraint here would be silently ignored.
find_package(GTest QUIET)
if(GTest_FOUND)
  if(DEFINED GTest_VERSION)
    message(STATUS "dgr: using system GoogleTest ${GTest_VERSION}")
  else()
    message(STATUS "dgr: using system GoogleTest")
  endif()
else()
  message(STATUS "dgr: system GoogleTest not found, fetching pinned v1.14.0")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
  # Keep gtest out of the install set and off MSVC's static CRT mismatch.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()
