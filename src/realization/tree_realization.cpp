#include "realization/tree_realization.h"

#include <algorithm>

#include "primitives/bbst.h"
#include "primitives/broadcast.h"
#include "primitives/path.h"
#include "primitives/range_cast.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "util/check.h"

namespace dgr::realize {

namespace {

constexpr std::uint32_t kTagTreeEdge = 0x120;  // payload = parent/spine ID

using prim::PathOverlay;
using prim::SkipOverlay;
using prim::TreeOverlay;

struct TreeSetup {
  bool realizable = true;
  PathOverlay sorted_path;      // sorted non-increasing by degree
  SkipOverlay sorted_skip;
  TreeOverlay agg_tree;         // spans everyone; reused for aggregation
  TreeOverlay sorted_bbst;      // BBST over the sorted path (prefix sums)
};

// Shared preamble of Algorithms 4 and 5: undirect Gk, build structures,
// verify Σd = 2(n-1) and min degree >= 1 (for n >= 2), sort by degree.
// The primitives composed here drive the engine's active-set rounds; the
// preamble starts from a clean frontier so stray referee wakes left by a
// caller cannot leak into the first wave.
TreeSetup tree_setup(ncc::Network& net,
                     const std::vector<std::uint64_t>& degree) {
  const std::size_t n = net.n();
  DGR_CHECK(degree.size() == n);
  net.clear_active();

  TreeSetup setup;
  PathOverlay path = prim::undirect_initial_path(net);
  setup.agg_tree = prim::build_bbst(net, path);
  SkipOverlay skip = prim::build_skiplinks(net, path);

  // Realizability test (aggregate + broadcast, Theorem 4).
  const std::uint64_t sum = prim::aggregate_and_broadcast(
      net, setup.agg_tree, degree, prim::comb_sum);
  std::vector<std::uint64_t> zero_flag(n, 0);
  for (ncc::Slot s = 0; s < n; ++s) zero_flag[s] = degree[s] == 0 ? 1 : 0;
  const std::uint64_t any_zero = prim::aggregate_and_broadcast(
      net, setup.agg_tree, zero_flag, prim::comb_or);
  const bool ok = n == 1 ? degree[0] == 0
                         : (sum == 2 * (static_cast<std::uint64_t>(n) - 1) &&
                            any_zero == 0);
  if (!ok) {
    setup.realizable = false;
    return setup;
  }

  prim::SortResult sorted =
      prim::distributed_sort(net, path, skip, degree, /*descending=*/true);
  setup.sorted_path = std::move(sorted.path);
  setup.sorted_skip = std::move(sorted.skip);
  // Prefix sums follow sorted order, so they need a BBST whose inorder is
  // the sorted path.
  setup.sorted_bbst = prim::build_bbst(net, setup.sorted_path);
  return setup;
}

}  // namespace

TreeRealizationResult realize_tree_caterpillar(
    ncc::Network& net, const std::vector<std::uint64_t>& degree) {
  ncc::ScopedRounds scope(net, "tree_caterpillar");
  const std::uint64_t start = net.stats().rounds;
  const std::size_t n = net.n();
  TreeRealizationResult result;
  result.stored.assign(n, {});

  TreeSetup setup = tree_setup(net, degree);
  if (!setup.realizable) {
    result.realizable = false;
    result.rounds = net.stats().rounds - start;
    return result;
  }
  if (n == 1) {
    result.rounds = net.stats().rounds - start;
    return result;
  }

  const PathOverlay& sp = setup.sorted_path;

  // k = number of non-leaves (degree > 1), made common knowledge.
  std::vector<std::uint64_t> nonleaf(n, 0);
  for (ncc::Slot s = 0; s < n; ++s) nonleaf[s] = degree[s] > 1 ? 1 : 0;
  const std::uint64_t k = prim::aggregate_and_broadcast(
      net, setup.agg_tree, nonleaf, prim::comb_sum);

  if (k == 0) {
    // Only n == 2 reaches here (two degree-1 nodes): join the path ends.
    DGR_CHECK(n == 2);
    for (ncc::Slot s = 0; s < n; ++s)
      if (sp.pos[s] == 0) result.stored[s].push_back(sp.succ[s]);
    result.rounds = net.stats().rounds - start;
    return result;
  }

  // Spine: positions 0..k (position k is the first leaf). The lower side
  // stores each spine edge; neighbours' IDs are already known from the path.
  for (ncc::Slot s = 0; s < n; ++s) {
    const auto pos = static_cast<std::uint64_t>(sp.pos[s]);
    if (pos < k) result.stored[s].push_back(sp.succ[s]);
  }

  // Exclusive prefix sums of (d - 2) over non-leaf positions give each
  // non-leaf its leaf block: x_0 takes [k+1, k+d_0-1]; x_i (i>=1) takes
  // [k+2+E_i, k+2+E_i+d_i-3] where E_i = Σ_{j<i}(d_j - 2).
  std::vector<std::uint64_t> excess(n, 0);
  for (ncc::Slot s = 0; s < n; ++s) {
    const auto pos = static_cast<std::uint64_t>(sp.pos[s]);
    if (pos < k) excess[s] = degree[s] - 2;
  }
  const prim::PrefixSums ps =
      prim::tree_prefix_sum(net, setup.sorted_bbst, excess);

  std::vector<std::vector<prim::RangeCastTask>> tasks(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    const auto pos = static_cast<std::uint64_t>(sp.pos[s]);
    if (pos >= k) continue;
    std::uint64_t lo, count;
    if (pos == 0) {
      lo = k + 1;
      count = degree[s] - 1;
    } else {
      lo = k + 2 + ps.exclusive[s];
      count = degree[s] - 2;
    }
    if (count == 0) continue;
    prim::RangeCastTask t;
    t.lo = static_cast<prim::Position>(lo);
    t.hi = static_cast<prim::Position>(lo + count - 1);
    DGR_CHECK_MSG(t.hi < static_cast<prim::Position>(n),
                  "caterpillar leaf block out of range");
    t.user_tag = kTagTreeEdge;
    t.payload = net.id_of(s);
    t.payload_is_id = true;
    tasks[s].push_back(t);
  }
  prim::range_multicast(net, sp, setup.sorted_skip, tasks,
                        [&](prim::Slot receiver, std::uint32_t user_tag,
                            std::uint64_t payload) {
                          if (user_tag == kTagTreeEdge)
                            result.stored[receiver].push_back(
                                static_cast<ncc::NodeId>(payload));
                        });

  result.rounds = net.stats().rounds - start;
  return result;
}

TreeRealizationResult realize_tree_greedy(
    ncc::Network& net, const std::vector<std::uint64_t>& degree) {
  ncc::ScopedRounds scope(net, "tree_greedy");
  const std::uint64_t start = net.stats().rounds;
  const std::size_t n = net.n();
  TreeRealizationResult result;
  result.stored.assign(n, {});

  TreeSetup setup = tree_setup(net, degree);
  if (!setup.realizable) {
    result.realizable = false;
    result.rounds = net.stats().rounds - start;
    return result;
  }
  if (n == 1) {
    result.rounds = net.stats().rounds - start;
    return result;
  }

  const PathOverlay& sp = setup.sorted_path;

  // Exclusive prefix sums of (d - 1): x_0's children are positions
  // [1, d_0]; x_i (i >= 1) adopts [E_i + 2, E_i + d_i] where
  // E_i = Σ_{j<i}(d_j - 1). Leaves adopt nothing (d_i - 1 = 0).
  std::vector<std::uint64_t> excess(n, 0);
  for (ncc::Slot s = 0; s < n; ++s) excess[s] = degree[s] - 1;
  const prim::PrefixSums ps =
      prim::tree_prefix_sum(net, setup.sorted_bbst, excess);

  std::vector<std::vector<prim::RangeCastTask>> tasks(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    const auto pos = static_cast<std::uint64_t>(sp.pos[s]);
    std::uint64_t lo, count;
    if (pos == 0) {
      lo = 1;
      count = degree[s];
    } else {
      lo = ps.exclusive[s] + 2;
      count = degree[s] - 1;
    }
    if (count == 0) continue;
    prim::RangeCastTask t;
    t.lo = static_cast<prim::Position>(lo);
    t.hi = static_cast<prim::Position>(lo + count - 1);
    DGR_CHECK_MSG(t.hi < static_cast<prim::Position>(n),
                  "greedy child block out of range");
    t.user_tag = kTagTreeEdge;
    t.payload = net.id_of(s);
    t.payload_is_id = true;
    tasks[s].push_back(t);
  }
  prim::range_multicast(net, sp, setup.sorted_skip, tasks,
                        [&](prim::Slot receiver, std::uint32_t user_tag,
                            std::uint64_t payload) {
                          if (user_tag == kTagTreeEdge)
                            result.stored[receiver].push_back(
                                static_cast<ncc::NodeId>(payload));
                        });

  result.rounds = net.stats().rounds - start;
  return result;
}

}  // namespace dgr::realize
