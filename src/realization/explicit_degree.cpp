#include "realization/explicit_degree.h"

#include "primitives/collection.h"
#include "primitives/reliable.h"
#include "util/check.h"

namespace dgr::realize {

namespace {
constexpr std::uint32_t kTagEdgeNotify = 0x110;
}  // namespace

ExplicitDegreeResult make_explicit(
    ncc::Network& net, const ImplicitDegreeResult& implicit_result) {
  ExplicitDegreeResult out;
  out.realizable = implicit_result.realizable;
  out.implicit_rounds = implicit_result.rounds;
  out.phases = implicit_result.phases;
  const std::size_t n = net.n();
  out.adjacency.assign(n, {});
  if (!out.realizable) return out;

  // Aware endpoints start with their stored neighbours; the other side
  // learns each edge from the notification's sender ID.
  std::vector<std::vector<prim::DirectSend>> batch(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    out.adjacency[s] = implicit_result.stored[s];
    for (const ncc::NodeId v : implicit_result.stored[s])
      batch[s].push_back({v, kTagEdgeNotify, 0, false});
  }
  out.explicit_rounds = prim::direct_exchange(
      net, batch,
      [&](prim::Slot receiver, ncc::NodeId src, std::uint32_t user_tag,
          std::uint64_t) {
        if (user_tag == kTagEdgeNotify)
          out.adjacency[receiver].push_back(src);
      });
  return out;
}

ExplicitDegreeResult realize_degrees_explicit(
    ncc::Network& net, const std::vector<std::uint64_t>& degree,
    DegreeMode mode) {
  const ImplicitDegreeResult implicit_result =
      realize_degrees_implicit(net, degree, mode);
  return make_explicit(net, implicit_result);
}

ExplicitDegreeResult make_explicit_reliable(
    ncc::Network& net, const ImplicitDegreeResult& implicit_result) {
  ExplicitDegreeResult out;
  out.realizable = implicit_result.realizable;
  out.implicit_rounds = implicit_result.rounds;
  out.phases = implicit_result.phases;
  const std::size_t n = net.n();
  out.adjacency.assign(n, {});
  if (!out.realizable) return out;

  std::vector<std::vector<prim::DirectSend>> batch(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    out.adjacency[s] = implicit_result.stored[s];
    for (const ncc::NodeId v : implicit_result.stored[s])
      batch[s].push_back({v, kTagEdgeNotify, 0, false});
  }
  out.explicit_rounds = prim::reliable_exchange(
      net, batch,
      [&](prim::Slot receiver, ncc::NodeId src, std::uint32_t user_tag,
          std::uint64_t) {
        if (user_tag == kTagEdgeNotify)
          out.adjacency[receiver].push_back(src);
      });
  return out;
}

ResilientExplicitResult make_explicit_resilient(
    ncc::Network& net, const ImplicitDegreeResult& implicit_result,
    std::uint64_t retransmit_after, std::uint64_t max_attempts) {
  ResilientExplicitResult res;
  ExplicitDegreeResult& out = res.result;
  out.realizable = implicit_result.realizable;
  out.implicit_rounds = implicit_result.rounds;
  out.phases = implicit_result.phases;
  const std::size_t n = net.n();
  out.adjacency.assign(n, {});
  if (!out.realizable) return res;

  std::vector<std::vector<prim::DirectSend>> batch(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    out.adjacency[s] = implicit_result.stored[s];
    for (const ncc::NodeId v : implicit_result.stored[s])
      batch[s].push_back({v, kTagEdgeNotify, 0, false});
  }
  const prim::ReliableResult xc = prim::reliable_exchange_bounded(
      net, batch,
      [&](prim::Slot receiver, ncc::NodeId src, std::uint32_t user_tag,
          std::uint64_t) {
        if (user_tag == kTagEdgeNotify)
          out.adjacency[receiver].push_back(src);
      },
      retransmit_after, max_attempts);
  out.explicit_rounds = xc.rounds;
  res.given_up = xc.given_up;
  return res;
}

}  // namespace dgr::realize
