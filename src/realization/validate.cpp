#include "realization/validate.h"

#include <sstream>

#include "util/check.h"

namespace dgr::realize {

graph::Graph graph_from_stored(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  graph::Graph g(net.n());
  for (ncc::Slot s = 0; s < stored.size(); ++s) {
    for (const ncc::NodeId id : stored[s]) {
      g.add_edge(static_cast<graph::Vertex>(s),
                 static_cast<graph::Vertex>(net.slot_of(id)));
    }
  }
  return g;
}

Validation validate_degree_realization(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  DGR_CHECK(degree.size() == net.n() && stored.size() == net.n());
  // No edge may be stored twice (once per side or twice on one side).
  std::size_t stored_count = 0;
  for (const auto& lst : stored) stored_count += lst.size();
  const graph::Graph g = graph_from_stored(net, stored);
  if (g.m() != stored_count) {
    std::ostringstream os;
    os << "duplicate or self edges: " << stored_count << " stored vs "
       << g.m() << " distinct";
    return Validation::fail(os.str());
  }
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    if (g.degree(static_cast<graph::Vertex>(s)) != degree[s]) {
      std::ostringstream os;
      os << "slot " << s << " realized degree "
         << g.degree(static_cast<graph::Vertex>(s)) << " != requested "
         << degree[s];
      return Validation::fail(os.str());
    }
  }
  return Validation::pass();
}

Validation validate_explicit_adjacency(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored,
    const std::vector<std::vector<ncc::NodeId>>& adjacency) {
  DGR_CHECK(adjacency.size() == net.n());
  const graph::Graph implicit = graph_from_stored(net, stored);
  const graph::Graph explicit_g = graph_from_stored(net, adjacency);
  if (implicit.m() != explicit_g.m())
    return Validation::fail("explicit edge set differs from implicit");

  // Symmetry: u lists v iff v lists u; and matches the implicit edges.
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    const auto v = static_cast<graph::Vertex>(s);
    if (adjacency[s].size() != implicit.degree(v))
      return Validation::fail("adjacency list length != implicit degree");
    for (const ncc::NodeId id : adjacency[s]) {
      const auto u = static_cast<graph::Vertex>(net.slot_of(id));
      if (!implicit.has_edge(v, u))
        return Validation::fail("explicit edge absent from implicit set");
    }
  }
  return Validation::pass();
}

Validation validate_upper_envelope(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  DGR_CHECK(degree.size() == net.n() && stored.size() == net.n());
  const graph::Graph g = graph_from_stored(net, stored);
  std::uint64_t total_req = 0;
  std::uint64_t total_real = 0;
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    const auto dv = g.degree(static_cast<graph::Vertex>(s));
    if (dv < degree[s]) {
      std::ostringstream os;
      os << "slot " << s << " envelope violated: " << dv << " < " << degree[s];
      return Validation::fail(os.str());
    }
    total_req += degree[s];
    total_real += dv;
  }
  if (total_real > 2 * total_req)
    return Validation::fail("discrepancy exceeds sum of degrees");
  return Validation::pass();
}

}  // namespace dgr::realize
