#include "realization/validate.h"

#include <algorithm>
#include <sstream>

#include "seq/connectivity_baseline.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr::realize {

graph::Graph graph_from_stored(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  graph::Graph g(net.n());
  for (ncc::Slot s = 0; s < stored.size(); ++s) {
    for (const ncc::NodeId id : stored[s]) {
      g.add_edge(static_cast<graph::Vertex>(s),
                 static_cast<graph::Vertex>(net.slot_of(id)));
    }
  }
  return g;
}

Validation validate_degree_realization(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  DGR_CHECK(degree.size() == net.n() && stored.size() == net.n());
  // No edge may be stored twice (once per side or twice on one side).
  std::size_t stored_count = 0;
  for (const auto& lst : stored) stored_count += lst.size();
  const graph::Graph g = graph_from_stored(net, stored);
  if (g.m() != stored_count) {
    std::ostringstream os;
    os << "duplicate or self edges: " << stored_count << " stored vs "
       << g.m() << " distinct";
    return Validation::fail(os.str());
  }
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    if (g.degree(static_cast<graph::Vertex>(s)) != degree[s]) {
      std::ostringstream os;
      os << "slot " << s << " realized degree "
         << g.degree(static_cast<graph::Vertex>(s)) << " != requested "
         << degree[s];
      return Validation::fail(os.str());
    }
  }
  return Validation::pass();
}

Validation validate_explicit_adjacency(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored,
    const std::vector<std::vector<ncc::NodeId>>& adjacency) {
  DGR_CHECK(adjacency.size() == net.n());
  const graph::Graph implicit = graph_from_stored(net, stored);
  const graph::Graph explicit_g = graph_from_stored(net, adjacency);
  if (implicit.m() != explicit_g.m())
    return Validation::fail("explicit edge set differs from implicit");

  // Symmetry: u lists v iff v lists u; and matches the implicit edges.
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    const auto v = static_cast<graph::Vertex>(s);
    if (adjacency[s].size() != implicit.degree(v))
      return Validation::fail("adjacency list length != implicit degree");
    for (const ncc::NodeId id : adjacency[s]) {
      const auto u = static_cast<graph::Vertex>(net.slot_of(id));
      if (!implicit.has_edge(v, u))
        return Validation::fail("explicit edge absent from implicit set");
    }
  }
  return Validation::pass();
}

Validation validate_upper_envelope(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  DGR_CHECK(degree.size() == net.n() && stored.size() == net.n());
  const graph::Graph g = graph_from_stored(net, stored);
  std::uint64_t total_req = 0;
  std::uint64_t total_real = 0;
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    const auto dv = g.degree(static_cast<graph::Vertex>(s));
    if (dv < degree[s]) {
      std::ostringstream os;
      os << "slot " << s << " envelope violated: " << dv << " < " << degree[s];
      return Validation::fail(os.str());
    }
    total_req += degree[s];
    total_real += dv;
  }
  if (total_real > 2 * total_req)
    return Validation::fail("discrepancy exceeds sum of degrees");
  return Validation::pass();
}

Validation validate_tree_realization(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  const Validation deg = validate_degree_realization(net, degree, stored);
  if (!deg.ok) return deg;
  const graph::Graph g = graph_from_stored(net, stored);
  if (!g.is_tree()) {
    std::ostringstream os;
    os << "realization is not a tree (" << g.m() << " edges, connected="
       << (g.connected() ? "yes" : "no") << ")";
    return Validation::fail(os.str());
  }
  return Validation::pass();
}

Validation validate_explicit_survivors(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored,
    const std::vector<std::vector<ncc::NodeId>>& adjacency) {
  DGR_CHECK(stored.size() == net.n() && adjacency.size() == net.n());
  const graph::Graph implicit = graph_from_stored(net, stored);
  std::vector<graph::Vertex> listed;  // slot s's adjacency, sorted; reused
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    const auto v = static_cast<graph::Vertex>(s);
    // (i) No phantom or duplicate entries — checked for crashed nodes
    // too: whatever landed in their lists before the crash must still be
    // real edges, delivered at most once.
    listed.clear();
    for (const ncc::NodeId id : adjacency[s]) {
      const auto u = static_cast<graph::Vertex>(net.slot_of(id));
      if (!implicit.has_edge(v, u)) {
        std::ostringstream os;
        os << "surviving slot " << s << " lists phantom edge to " << id;
        return Validation::fail(os.str());
      }
      listed.push_back(u);
    }
    std::sort(listed.begin(), listed.end());
    if (std::adjacent_find(listed.begin(), listed.end()) != listed.end()) {
      std::ostringstream os;
      os << "surviving slot " << s << " lists an edge twice";
      return Validation::fail(os.str());
    }
    // (ii) Completeness among survivors: both sides of every
    // survivor–survivor implicit edge know it. The implicit graph's
    // neighbor list covers both the edges s stored itself and the edges
    // whose aware side is the (surviving) peer — either way both
    // endpoints survived, so the notification must have landed.
    if (net.is_crashed(s)) continue;
    for (const auto u : implicit.neighbors(v)) {
      const auto t = static_cast<ncc::Slot>(u);
      if (net.is_crashed(t)) continue;
      if (!std::binary_search(listed.begin(), listed.end(), u)) {
        std::ostringstream os;
        os << "surviving slot " << s << " never learned its edge to slot "
           << t;
        return Validation::fail(os.str());
      }
    }
  }
  return Validation::pass();
}

Validation validate_connectivity_thresholds(
    const ncc::Network& net, const std::vector<std::uint64_t>& rho,
    const std::vector<std::vector<ncc::NodeId>>& stored,
    std::uint64_t seed) {
  DGR_CHECK(rho.size() == net.n() && stored.size() == net.n());
  const graph::Graph g = graph_from_stored(net, stored);
  std::uint64_t sum_rho = 0;
  for (const auto r : rho) sum_rho += r;
  // deg(v) >= rho(v) forces OPT >= ceil(sum/2); both §6 algorithms emit at
  // most sum(rho) edges — the 2-approximation certificate.
  if (g.m() > sum_rho) {
    std::ostringstream os;
    os << "edge count " << g.m() << " exceeds the 2-approximation bound "
       << sum_rho;
    return Validation::fail(os.str());
  }
  Rng vrng(hash_mix(seed, 0x5A11FABULL));
  const auto violation = seq::find_threshold_violation(g, rho, vrng);
  if (violation) {
    std::ostringstream os;
    os << "threshold violated for pair (" << violation->first << ", "
       << violation->second << ")";
    return Validation::fail(os.str());
  }
  return Validation::pass();
}

}  // namespace dgr::realize
