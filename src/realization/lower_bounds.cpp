#include "realization/lower_bounds.h"

#include <algorithm>

#include "ncc/message.h"
#include "util/math_util.h"

namespace dgr::realize {

std::uint64_t ids_per_message() { return ncc::kMaxWords + 1; }

std::uint64_t knowledge_round_lower_bound(const ncc::Network& net) {
  const std::uint64_t intake =
      static_cast<std::uint64_t>(net.capacity()) * ids_per_message();
  std::uint64_t best = 0;
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    const std::uint64_t known = net.knowledge_size(s);
    // Initial knowledge: self plus at most one path successor.
    const std::uint64_t learned = known > 2 ? known - 2 : 0;
    best = std::max(best, ceil_div(learned, intake));
  }
  return best;
}

std::uint64_t explicit_info_bound(std::uint64_t max_degree, int capacity) {
  const std::uint64_t intake =
      static_cast<std::uint64_t>(capacity) * ids_per_message();
  return ceil_div(max_degree, intake);
}

std::uint64_t sqrt_m_info_bound(std::uint64_t m, int capacity) {
  const std::uint64_t intake =
      static_cast<std::uint64_t>(capacity) * ids_per_message();
  return ceil_div(isqrt(m), intake);
}

}  // namespace dgr::realize
