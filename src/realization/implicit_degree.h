// Distributed degree-sequence realization (paper §4.1, Algorithm 3,
// Theorem 11; §4.3 Theorem 13 for the approximate variant).
//
// The algorithm is a parallel Havel–Hakimi: each phase sorts the path by
// residual degree, broadcasts the maximum δ and the count N of nodes at the
// maximum, forms q = max(1, ⌊N/(δ+1)⌋) star groups over the first q(δ+1)
// sorted positions, and satisfies the q sources simultaneously (each source
// multicasts its ID to the next δ positions, which store the implicit edge
// and decrement). Lemma 10 bounds the phase count by O(min{√m, Δ}); a phase
// costs O~(1) rounds, giving Theorem 11's O~(min{√m, Δ}).
//
// kExact mode: a residual going negative means the sequence is not graphic —
// every node learns Unrealizable and the algorithm stops.
// kEnvelope mode (Theorem 13): negative residuals clamp to zero instead; the
// output realizes an upper envelope D' >= D with sum(D') <= 2 sum(D).
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"
#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"

namespace dgr::realize {

enum class DegreeMode {
  kExact,     ///< fail on non-graphic input (Theorem 11)
  kEnvelope,  ///< realize an upper envelope (Theorem 13)
};

struct ImplicitDegreeResult {
  bool realizable = true;     ///< false only in kExact mode
  /// Per-slot neighbour IDs on the aware side (implicit realization).
  std::vector<std::vector<ncc::NodeId>> stored;
  std::uint64_t phases = 0;
  std::uint64_t rounds = 0;   ///< simulator rounds consumed by this call
  /// Referee diagnostic: edges created twice (once per side). Conjectured
  /// (and empirically validated) to be zero thanks to the retired-last sort
  /// key; see DESIGN.md on the Theorem 13 corner case.
  std::uint64_t duplicate_edges = 0;
};

/// Runs Algorithm 3 from the initial NCC0 path. degree[s] is node s's
/// locally-known requested degree; any entry > n-1 makes the input
/// trivially unrealizable (reported, not thrown).
ImplicitDegreeResult realize_degrees_implicit(
    ncc::Network& net, const std::vector<std::uint64_t>& degree,
    DegreeMode mode = DegreeMode::kExact);

/// Core used by Algorithm 6 phase 1: runs on an existing (sub-)path with its
/// skip overlay and a spanning aggregation tree (which may span more nodes
/// than the path — non-members contribute identity values). Degrees of
/// non-members are ignored; results are confined to members.
ImplicitDegreeResult realize_degrees_on_path(
    ncc::Network& net, const prim::PathOverlay& path,
    const prim::SkipOverlay& skip, const prim::TreeOverlay& agg_tree,
    const std::vector<std::uint64_t>& degree, DegreeMode mode);

}  // namespace dgr::realize
