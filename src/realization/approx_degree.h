// Approximate realization of (possibly) non-graphic sequences
// (paper §4.3, Theorem 13): a thin, documented entry point around
// realize_degrees_explicit in envelope mode.
//
// Output graph G realizes an upper envelope D' of the requested D:
//   (i)  deg_G(v) >= d(v) for every v, and
//   (ii) sum(D') <= 2 sum(D)   (discrepancy at most sum d_i).
// Runs in O~(Δ) rounds. Requires d(v) <= n-1 (otherwise even the envelope
// guarantee is impossible in a simple graph; reported as unrealizable).
#pragma once

#include "realization/explicit_degree.h"
#include "realization/implicit_degree.h"

namespace dgr::realize {

/// Explicit upper-envelope realization (Theorem 13).
ExplicitDegreeResult realize_upper_envelope(
    ncc::Network& net, const std::vector<std::uint64_t>& degree);

/// The abstract's O~(1) approximate degree realization, in NCC1: after one
/// feasibility aggregate (d <= n-1 everywhere), every node v locally picks
/// the d(v) cyclically-next IDs in the common-knowledge sorted ID list as
/// its stored edges — zero communication. The union graph is an upper
/// envelope: deg(v) >= d(v) (v's own picks are distinct) and the edge count
/// is at most sum(d), so sum(D') <= 2 sum(D). Implicit by nature.
ImplicitDegreeResult realize_upper_envelope_ncc1(
    ncc::Network& net, const std::vector<std::uint64_t>& degree);

}  // namespace dgr::realize
