#include "realization/connectivity.h"

#include <algorithm>
#include <unordered_set>

#include "primitives/bbst.h"
#include "primitives/broadcast.h"
#include "primitives/collection.h"
#include "primitives/ncc1.h"
#include "primitives/path.h"
#include "primitives/range_cast.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "realization/implicit_degree.h"
#include "util/check.h"

namespace dgr::realize {

namespace {

constexpr std::uint32_t kTagConnEdge = 0x130;    // payload = source ID
constexpr std::uint32_t kTagConnNotify = 0x131;  // explicitization

using prim::PathOverlay;
using prim::SkipOverlay;
using prim::TreeOverlay;

/// Shared ρ <= n-1 feasibility test (aggregate-OR + broadcast).
bool thresholds_feasible(ncc::Network& net, const TreeOverlay& tree,
                         const std::vector<std::uint64_t>& rho) {
  const std::size_t n = net.n();
  std::vector<std::uint64_t> flag(n, 0);
  for (ncc::Slot s = 0; s < n; ++s) flag[s] = rho[s] + 1 > n ? 1 : 0;
  return prim::aggregate_and_broadcast(net, tree, flag, prim::comb_or) == 0;
}

}  // namespace

ConnectivityResult realize_connectivity_ncc1(
    ncc::Network& net, const std::vector<std::uint64_t>& rho) {
  ncc::ScopedRounds scope(net, "connectivity_ncc1");
  const std::uint64_t start = net.stats().rounds;
  const std::size_t n = net.n();
  DGR_CHECK(rho.size() == n);

  ConnectivityResult result;
  result.stored.assign(n, {});
  net.clear_active();  // frontier hygiene: the waves below seed their own
  const TreeOverlay tree = prim::common_knowledge_tree(net);

  if (!thresholds_feasible(net, tree, rho)) {
    result.realizable = false;
    result.rounds = net.stats().rounds - start;
    return result;
  }
  if (n == 1) {
    result.rounds = net.stats().rounds - start;
    return result;
  }

  // Step 1: find the hub w of maximum ρ (everyone learns w's ID).
  const prim::ArgmaxResult w = prim::aggregate_argmax(net, tree, rho);
  result.hub = w.id;

  // Step 2 (zero rounds): every v != w locally picks
  // X_v = {w} ∪ {ρ(v)-1 smallest IDs != v, w}, using the common-knowledge
  // sorted ID list (Ctx::all_ids in NCC1).
  std::vector<ncc::NodeId> sorted_ids;
  sorted_ids.reserve(n);
  for (ncc::Slot s = 0; s < n; ++s) sorted_ids.push_back(net.id_of(s));
  std::sort(sorted_ids.begin(), sorted_ids.end());
  for (ncc::Slot s = 0; s < n; ++s) {
    const ncc::NodeId me = net.id_of(s);
    if (me == w.id || rho[s] == 0) continue;
    auto& edges = result.stored[s];
    edges.push_back(w.id);
    std::uint64_t need = rho[s] - 1;
    for (std::size_t i = 0; i < n && need > 0; ++i) {
      const ncc::NodeId cand = sorted_ids[i];
      if (cand == me || cand == w.id) continue;
      edges.push_back(cand);
      --need;
    }
    DGR_CHECK_MSG(need == 0, "ρ(v) <= n-1 guarantees enough partners");
  }

  result.rounds = net.stats().rounds - start;
  return result;
}

ConnectivityResult realize_connectivity_ncc0(
    ncc::Network& net, const std::vector<std::uint64_t>& rho) {
  ncc::ScopedRounds scope(net, "connectivity_ncc0");
  const std::uint64_t start = net.stats().rounds;
  const std::size_t n = net.n();
  DGR_CHECK(rho.size() == n);

  ConnectivityResult result;
  result.stored.assign(n, {});
  result.adjacency.assign(n, {});
  net.clear_active();  // frontier hygiene: the waves below seed their own

  // Bootstrap structures on Gk.
  PathOverlay path = prim::undirect_initial_path(net);
  TreeOverlay agg_tree = prim::build_bbst(net, path);
  SkipOverlay skip = prim::build_skiplinks(net, path);

  if (!thresholds_feasible(net, agg_tree, rho)) {
    result.realizable = false;
    result.rounds = net.stats().rounds - start;
    return result;
  }
  if (n == 1) {
    result.rounds = net.stats().rounds - start;
    return result;
  }

  // Step 1: sort by ρ, non-increasing; broadcast d0 = ρ(x_0).
  prim::SortResult sorted =
      prim::distributed_sort(net, path, skip, rho, /*descending=*/true);
  const PathOverlay& sp = sorted.path;
  const std::uint64_t d0 =
      prim::aggregate_and_broadcast(net, agg_tree, rho, prim::comb_max);

  // Step 2 (phase 1): the first d0+1 sorted nodes satisfy their ρ values
  // with a hub-and-window construction. x_0 (max ρ) floods its ID; every
  // member x_i (1 <= i <= d0) links to x_0 plus a cyclic window of ρ_i - 1
  // further members. deg(x_i) >= ρ_i holds by construction, every window
  // member is adjacent to x_0, so Conn(x_i, x_0) >= ρ_i by ρ_i disjoint
  // paths (direct edge + 2-hop paths through the window, as in §6.1's NCC1
  // argument — realized here in NCC0 via positions). Bidirectional window
  // overlaps may double-store an edge; explicitization dedupes (the degree
  // guarantee is unaffected: a node's own window is always distinct).
  const std::uint64_t member_count = std::min<std::uint64_t>(d0 + 1, n);
  const ncc::Slot hub_slot = sp.order.front();
  prim::broadcast_from_leader(net, agg_tree, hub_slot, net.id_of(hub_slot),
                              /*value_is_id=*/true);
  const ncc::NodeId hub_id = net.id_of(hub_slot);
  std::vector<std::vector<prim::RangeCastTask>> win_tasks(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    const auto pos = static_cast<std::uint64_t>(sp.pos[s]);
    if (pos < 1 || pos >= member_count || rho[s] == 0) continue;
    result.stored[s].push_back(hub_id);
    if (rho[s] < 2) continue;
    // Cyclic window over member positions [1, d0]: raw span
    // [pos+1, pos+rho-1], wrapped back into [1, d0].
    const std::uint64_t raw_hi = pos + rho[s] - 1;
    const std::uint64_t hi_a = std::min<std::uint64_t>(raw_hi, d0);
    if (hi_a >= pos + 1) {
      prim::RangeCastTask t;
      t.lo = static_cast<prim::Position>(pos + 1);
      t.hi = static_cast<prim::Position>(hi_a);
      t.user_tag = kTagConnEdge;
      t.payload = net.id_of(s);
      t.payload_is_id = true;
      win_tasks[s].push_back(t);
    }
    if (raw_hi > d0) {
      const std::uint64_t wrap_hi = raw_hi - d0;
      DGR_CHECK_MSG(wrap_hi < pos, "window wraps past itself");
      prim::RangeCastTask t;
      t.lo = 1;
      t.hi = static_cast<prim::Position>(wrap_hi);
      t.user_tag = kTagConnEdge;
      t.payload = net.id_of(s);
      t.payload_is_id = true;
      win_tasks[s].push_back(t);
    }
  }
  prim::range_multicast(net, sp, sorted.skip, win_tasks,
                        [&](prim::Slot receiver, std::uint32_t user_tag,
                            std::uint64_t payload) {
                          if (user_tag == kTagConnEdge)
                            result.stored[receiver].push_back(
                                static_cast<ncc::NodeId>(payload));
                        });

  // Step 3 (phase 2): every x_i with i >= d0+1 multicasts its ID to its
  // ρ(x_i) immediate predecessors on the sorted path.
  std::vector<std::vector<prim::RangeCastTask>> tasks(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    const auto pos = static_cast<std::uint64_t>(sp.pos[s]);
    if (pos < member_count || rho[s] == 0) continue;
    prim::RangeCastTask t;
    t.lo = static_cast<prim::Position>(pos - rho[s]);
    t.hi = static_cast<prim::Position>(pos - 1);
    t.user_tag = kTagConnEdge;
    t.payload = net.id_of(s);
    t.payload_is_id = true;
    tasks[s].push_back(t);
  }
  prim::range_multicast(net, sp, sorted.skip, tasks,
                        [&](prim::Slot receiver, std::uint32_t user_tag,
                            std::uint64_t payload) {
                          if (user_tag == kTagConnEdge)
                            result.stored[receiver].push_back(
                                static_cast<ncc::NodeId>(payload));
                        });

  // Step 4: make everything explicit — each aware side notifies the other
  // (this subsumes the predecessors' reply broadcasts in Algorithm 6).
  // Window overlaps can have stored the same edge on both sides; after the
  // exchange, both endpoints see both directions (incoming src ∈ my stored
  // list), and the larger-ID endpoint silently drops its copy so the
  // implicit edge set is canonical. Purely local, zero extra rounds.
  std::vector<std::vector<prim::DirectSend>> batch(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    for (const ncc::NodeId v : result.stored[s])
      batch[s].push_back({v, kTagConnNotify, 0, false});
  }
  std::vector<std::vector<ncc::NodeId>> incoming(n);
  prim::direct_exchange(net, batch,
                        [&](prim::Slot receiver, ncc::NodeId src,
                            std::uint32_t user_tag, std::uint64_t) {
                          if (user_tag == kTagConnNotify)
                            incoming[receiver].push_back(src);
                        });
  for (ncc::Slot s = 0; s < n; ++s) {
    const ncc::NodeId me = net.id_of(s);
    // Membership probe only (contains). det-ok: unordered_set
    std::unordered_set<ncc::NodeId> in_set(incoming[s].begin(),
                                           incoming[s].end());
    // Drop my copy of double-stored edges when I have the larger ID.
    auto& mine = result.stored[s];
    mine.erase(std::remove_if(mine.begin(), mine.end(),
                              [&](ncc::NodeId u) {
                                return in_set.contains(u) && me > u;
                              }),
               mine.end());
    // Explicit adjacency = full neighbour set (each neighbour once).
    // Dedupe bag; the extraction below is sorted before anyone reads it,
    // so hash order dies right here. det-ok: unordered_set
    std::unordered_set<ncc::NodeId> adj(mine.begin(), mine.end());
    adj.insert(in_set.begin(), in_set.end());
    result.adjacency[s].assign(adj.begin(), adj.end());
    std::sort(result.adjacency[s].begin(), result.adjacency[s].end());
  }

  result.rounds = net.stats().rounds - start;
  return result;
}

std::vector<std::uint64_t> rho_from_sigma(
    const std::vector<std::vector<std::uint64_t>>& sigma) {
  const std::size_t n = sigma.size();
  std::vector<std::uint64_t> rho(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    DGR_CHECK(sigma[v].size() == n);
    for (std::size_t u = 0; u < n; ++u) {
      if (u == v) continue;
      DGR_CHECK_MSG(sigma[v][u] == sigma[u][v], "σ must be symmetric");
      rho[v] = std::max(rho[v], sigma[v][u]);
    }
  }
  return rho;
}

ConnectivityResult realize_connectivity_matrix_ncc0(
    ncc::Network& net, const std::vector<std::vector<std::uint64_t>>& sigma) {
  // The ρ reduction is node-local (each node holds its own σ vector).
  return realize_connectivity_ncc0(net, rho_from_sigma(sigma));
}

ConnectivityResult realize_connectivity_matrix_ncc1(
    ncc::Network& net, const std::vector<std::vector<std::uint64_t>>& sigma) {
  return realize_connectivity_ncc1(net, rho_from_sigma(sigma));
}

}  // namespace dgr::realize
