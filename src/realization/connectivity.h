// Connectivity-threshold realization (paper §6).
//
// Every node v holds a threshold ρ(v) = max_u σ(u, v); the output overlay G
// must satisfy Conn_G(u, v) >= min(ρ(u), ρ(v)) with at most twice the
// optimal number of edges (OPT >= ceil(Σρ / 2) since deg(v) >= ρ(v)).
//
// realize_connectivity_ncc1 (§6.1, Theorem 17): O~(1) rounds, implicit.
//   In NCC1 all IDs are common knowledge, so nodes agree on a complete
//   binary tree over the ID-sorted order with zero communication; one
//   argmax aggregation finds the hub w (max ρ), and every v != w locally
//   picks X_v = {w} ∪ {ρ(v)-1 smallest other IDs} as its stored edges.
//
// realize_connectivity_ncc0 (§6.2, Algorithm 6, Theorem 18): O~(Δ) rounds,
//   explicit, works in NCC0 (and NCC1). Sorts by ρ, realizes the top
//   d0+1 = ρ_max+1 nodes as a degree sequence via the Theorem 13 envelope
//   algorithm, then each later node x_i links to its ρ(x_i) predecessors;
//   finally every implicit edge is made explicit by direct exchange.
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"

namespace dgr::realize {

struct ConnectivityResult {
  bool realizable = true;  ///< false iff some ρ(v) > n-1
  /// Aware-side edges (implicit realization).
  std::vector<std::vector<ncc::NodeId>> stored;
  /// Both-sides adjacency; filled by the explicit algorithm only.
  std::vector<std::vector<ncc::NodeId>> adjacency;
  ncc::NodeId hub = ncc::kNoNode;  ///< NCC1 hub w (max ρ)
  std::uint64_t rounds = 0;
};

/// Theorem 17. Requires an NCC1 network (net.is_clique()).
ConnectivityResult realize_connectivity_ncc1(
    ncc::Network& net, const std::vector<std::uint64_t>& rho);

/// Theorem 18 / Algorithm 6. Works in NCC0 and NCC1.
ConnectivityResult realize_connectivity_ncc0(
    ncc::Network& net, const std::vector<std::uint64_t>& rho);

/// The paper's full problem statement: node v holds the length-n vector
/// sigma[v] with σ(v, u) for every u (symmetric). Each node reduces its
/// vector to ρ(v) = max_u σ(v, u) locally (§6: the algorithms guarantee the
/// stronger Conn(u,v) >= min(ρ(u), ρ(v)) >= σ(u,v)) and runs the ρ
/// algorithm. sigma[v][u] is indexed by slot; sigma[v][v] is ignored.
ConnectivityResult realize_connectivity_matrix_ncc0(
    ncc::Network& net, const std::vector<std::vector<std::uint64_t>>& sigma);
ConnectivityResult realize_connectivity_matrix_ncc1(
    ncc::Network& net, const std::vector<std::vector<std::uint64_t>>& sigma);

/// Referee helper for tests: ρ reduction of a σ matrix.
std::vector<std::uint64_t> rho_from_sigma(
    const std::vector<std::vector<std::uint64_t>>& sigma);

}  // namespace dgr::realize
