#include "realization/approx_degree.h"

#include <algorithm>

#include "util/check.h"

namespace dgr::realize {

ExplicitDegreeResult realize_upper_envelope(
    ncc::Network& net, const std::vector<std::uint64_t>& degree) {
  return realize_degrees_explicit(net, degree, DegreeMode::kEnvelope);
}

ImplicitDegreeResult realize_upper_envelope_ncc1(
    ncc::Network& net, const std::vector<std::uint64_t>& degree) {
  ncc::ScopedRounds scope(net, "envelope_ncc1");
  DGR_CHECK_MSG(net.is_clique(), "requires NCC1");
  const std::uint64_t start = net.stats().rounds;
  const std::size_t n = net.n();
  DGR_CHECK(degree.size() == n);

  ImplicitDegreeResult result;
  result.stored.assign(n, {});
  result.phases = 0;

  // Feasibility is locally checkable in NCC1 (n is common knowledge):
  // d(v) > n-1 admits no simple realization, envelope or otherwise.
  for (ncc::Slot s = 0; s < n; ++s) {
    if (degree[s] + 1 > n) {
      result.realizable = false;
      result.rounds = net.stats().rounds - start;
      return result;
    }
  }
  if (n <= 1) {
    result.rounds = 0;
    return result;
  }

  // Zero-round selection: v takes the d(v) IDs cyclically following its own
  // position in the common-knowledge sorted ID list.
  std::vector<ncc::NodeId> sorted_ids(n);
  for (ncc::Slot s = 0; s < n; ++s) sorted_ids[s] = net.id_of(s);
  std::sort(sorted_ids.begin(), sorted_ids.end());
  std::vector<std::size_t> rank_of_slot(n);
  for (std::size_t r = 0; r < n; ++r)
    rank_of_slot[net.slot_of(sorted_ids[r])] = r;

  for (ncc::Slot s = 0; s < n; ++s) {
    const std::size_t my_rank = rank_of_slot[s];
    for (std::uint64_t t = 1; t <= degree[s]; ++t) {
      result.stored[s].push_back(sorted_ids[(my_rank + t) % n]);
    }
  }
  result.rounds = net.stats().rounds - start;
  return result;
}

}  // namespace dgr::realize
