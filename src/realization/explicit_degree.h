// Explicit degree realization (paper §4.2, Theorem 12).
//
// After the implicit phase, each edge (u, v) is known only to one endpoint
// (say u, which stores v's ID). u simply tells v: the aware sides stream
// their notifications at Θ(log n)/round with bounce-driven retry, draining
// in O(m/n + Δ/log n + log n) rounds w.h.p. — Theorem 12's bound.
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"
#include "realization/implicit_degree.h"

namespace dgr::realize {

struct ExplicitDegreeResult {
  bool realizable = true;
  /// Per-slot full adjacency (both endpoints list every incident edge).
  std::vector<std::vector<ncc::NodeId>> adjacency;
  std::uint64_t implicit_rounds = 0;
  std::uint64_t explicit_rounds = 0;
  std::uint64_t phases = 0;
};

/// Converts an implicit realization into an explicit one.
ExplicitDegreeResult make_explicit(
    ncc::Network& net, const ImplicitDegreeResult& implicit_result);

/// Convenience: Algorithm 3 + explicitization end-to-end (Theorem 12).
ExplicitDegreeResult realize_degrees_explicit(
    ncc::Network& net, const std::vector<std::uint64_t>& degree,
    DegreeMode mode = DegreeMode::kExact);

/// Loss-tolerant explicitization (§8 robustness extension): identical
/// contract to make_explicit but transported over reliable_exchange, so it
/// completes exactly-once even when Config::drop_probability > 0.
ExplicitDegreeResult make_explicit_reliable(
    ncc::Network& net, const ImplicitDegreeResult& implicit_result);

/// Crash-and-loss-tolerant explicitization (§8): transported over
/// reliable_exchange_bounded, so notifications to crashed endpoints are
/// abandoned after `max_attempts` unacknowledged transmissions instead of
/// livelocking. Delivered notifications remain exactly-once; survivors'
/// adjacency satisfies realize::validate_explicit_survivors. `given_up`
/// reports the abandoned notification count.
struct ResilientExplicitResult {
  ExplicitDegreeResult result;
  std::uint64_t given_up = 0;
};
ResilientExplicitResult make_explicit_resilient(
    ncc::Network& net, const ImplicitDegreeResult& implicit_result,
    std::uint64_t retransmit_after = 4, std::uint64_t max_attempts = 48);

}  // namespace dgr::realize
