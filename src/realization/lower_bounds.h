// §7 lower-bound machinery (Theorems 19 and 20).
//
// The paper's lower bounds are information-theoretic: in NCC0 a node starts
// knowing O(1) IDs and can learn only O(log n)-many per round (capacity ×
// IDs-per-message), so any run whose output obliges some node to know K IDs
// took Ω(K / log n) rounds. The simulator tracks exact knowledge sets, which
// lets the benches report, for every instance family, the measured round
// count next to the information bound the run itself certifies — the
// tightness ("up to log factors") claim of §7.
#pragma once

#include <cstdint>

#include "ncc/network.h"

namespace dgr::realize {

/// IDs a single message can convey: its payload ID words plus the sender.
std::uint64_t ids_per_message();

/// Information lower bound certified by a finished run: the maximum over
/// nodes of (IDs known - initial knowledge) divided by the per-round intake
/// (capacity × ids_per_message), rounded up.
std::uint64_t knowledge_round_lower_bound(const ncc::Network& net);

/// Closed-form Theorem 19 bound for explicit realization: Δ IDs must enter
/// one node ⇒ Ω(Δ / log n) rounds (log n ≈ intake per round).
std::uint64_t explicit_info_bound(std::uint64_t max_degree, int capacity);

/// Closed-form Theorem 20 bound for the star-heavy family D*(n, m):
/// some node learns Ω(√m) IDs ⇒ Ω(√m / log n) rounds.
std::uint64_t sqrt_m_info_bound(std::uint64_t m, int capacity);

}  // namespace dgr::realize
