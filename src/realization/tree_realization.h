// Tree realization of degree sequences (paper §5).
//
// realize_tree_caterpillar — Algorithm 4: non-leaves form a spine in sorted
// order; every non-leaf attaches its leaves from a contiguous block computed
// by a distributed prefix sum. O(polylog n) rounds; maximum-diameter
// realization. (The paper's line 2 tests Σd ≠ 2(n−2); the correct tree
// condition is Σd = 2(n−1) — we implement the correct test, see DESIGN.md.)
//
// realize_tree_greedy — Algorithm 5: the distributed greedy tree T_G of
// [Smith–Székely–Wang]; Lemma 15/Theorem 16: minimum-diameter realization.
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"

namespace dgr::realize {

struct TreeRealizationResult {
  bool realizable = true;
  /// Per-slot neighbour IDs on the aware side (implicit tree realization).
  std::vector<std::vector<ncc::NodeId>> stored;
  std::uint64_t rounds = 0;
};

/// Algorithm 4 (maximum-diameter caterpillar).
TreeRealizationResult realize_tree_caterpillar(
    ncc::Network& net, const std::vector<std::uint64_t>& degree);

/// Algorithm 5 (minimum-diameter greedy tree).
TreeRealizationResult realize_tree_greedy(
    ncc::Network& net, const std::vector<std::uint64_t>& degree);

}  // namespace dgr::realize
