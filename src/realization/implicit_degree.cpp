#include "realization/implicit_degree.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_set>

#include "primitives/broadcast.h"
#include "primitives/range_cast.h"
#include "primitives/sort.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dgr::realize {

namespace {

constexpr std::uint32_t kTagStarEdge = 0x100;  // payload = source ID

using prim::PathOverlay;
using prim::SkipOverlay;
using prim::TreeOverlay;

}  // namespace

ImplicitDegreeResult realize_degrees_on_path(
    ncc::Network& net, const prim::PathOverlay& path,
    const prim::SkipOverlay& skip, const prim::TreeOverlay& agg_tree,
    const std::vector<std::uint64_t>& degree, DegreeMode mode) {
  ncc::ScopedRounds total_scope(net, "degree_realization");
  const std::uint64_t start_rounds = net.stats().rounds;
  const std::size_t n = net.n();
  DGR_CHECK(degree.size() == n);
  const std::size_t members = path.order.size();

  ImplicitDegreeResult result;
  result.stored.assign(n, {});
  // The §3 primitives composed below are frontier-driven (active-set
  // rounds); start from a clean frontier so a caller's stray wakes cannot
  // perturb the first wave.
  net.clear_active();

  // Residual degrees; non-members carry 0 so shared aggregations see
  // identity values.
  std::vector<std::uint64_t> residual(n, 0);
  std::uint64_t degree_sum = 0;
  bool too_large = false;
  for (const ncc::Slot s : path.order) {
    residual[s] = degree[s];
    degree_sum += degree[s];
    if (degree[s] + 1 > members) too_large = true;
  }
  // d_i > |path|-1 can never be met by a simple graph on the members; in
  // exact mode this is Unrealizable, and the envelope guarantee is equally
  // impossible, so both modes report failure. In-model every node can test
  // its own degree against the (common-knowledge) member count; one
  // aggregate-OR + broadcast informs everyone. We charge those rounds.
  {
    std::vector<std::uint64_t> flag(n, 0);
    for (const ncc::Slot s : path.order)
      flag[s] = residual[s] + 1 > members ? 1 : 0;
    const std::uint64_t any = prim::aggregate_and_broadcast(
        net, agg_tree, flag, prim::comb_or);
    DGR_CHECK(static_cast<bool>(any) == too_large);
    if (any != 0) {
      result.realizable = false;
      result.rounds = net.stats().rounds - start_rounds;
      return result;
    }
  }

  // Lemma 10 guard: generous multiple of min{√(2m), 2Δ} phases.
  std::uint64_t max_deg = 0;
  for (const ncc::Slot s : path.order)
    max_deg = std::max(max_deg, residual[s]);
  const std::uint64_t phase_guard =
      8 + 4 * std::min<std::uint64_t>(2 * max_deg + 2,
                                      2 * isqrt(degree_sum) + 2);

  PathOverlay cur_path = path;
  SkipOverlay cur_skip = skip;
  // Node-local underflow flags ("my residual would go negative").
  std::vector<std::uint64_t> underflow(n, 0);
  // Per-phase scratch, hoisted out of the phase loop: each phase rewrites
  // these in full, so reallocating n-sized vectors every phase only churned
  // the allocator.
  std::vector<std::uint64_t> sort_key(n, 0);
  std::vector<std::uint64_t> indicator(n, 0);
  std::vector<std::vector<prim::RangeCastTask>> tasks(n);
  // Retired sources must sort after everything else with the same residual
  // (in particular after never-sourced zero-residual nodes). Otherwise an
  // envelope-mode member range can contain a retired source that is already
  // the new source's neighbour, recreating the edge — a corner the paper's
  // Theorem 13 alteration leaves open. Sorting key: 2·residual + fresh bit.
  std::vector<std::uint8_t> has_sourced(n, 0);
  // Referee edge set for the duplicate diagnostic (mutex: deliveries can
  // run from parallel round-body threads). Insert-dedupe only, never
  // iterated. det-ok: unordered_set
  std::unordered_set<std::uint64_t> referee_edges;
  std::mutex referee_mu;

  while (true) {
    DGR_CHECK_MSG(result.phases <= phase_guard,
                  "phase budget exceeded — Lemma 10 violated?");
    ++result.phases;

    // Step 1: sort by residual degree, non-increasing (retired last).
    std::fill(sort_key.begin(), sort_key.end(), 0);
    for (const ncc::Slot s : cur_path.order)
      sort_key[s] = 2 * residual[s] + (has_sourced[s] ? 0 : 1);
    prim::SortResult sorted =
        prim::distributed_sort(net, cur_path, cur_skip, sort_key,
                               /*descending=*/true);
    cur_path = std::move(sorted.path);
    cur_skip = std::move(sorted.skip);

    // Step 2: broadcast δ = current maximum degree.
    const std::uint64_t delta = prim::aggregate_and_broadcast(
        net, agg_tree, residual, prim::comb_max);
    if (delta == 0) break;  // everyone satisfied

    // Step 3: broadcast N = number of nodes with degree δ.
    std::fill(indicator.begin(), indicator.end(), 0);
    for (const ncc::Slot s : cur_path.order)
      indicator[s] = residual[s] == delta ? 1 : 0;
    const std::uint64_t big_n = prim::aggregate_and_broadcast(
        net, agg_tree, indicator, prim::comb_sum);
    const std::uint64_t q =
        std::max<std::uint64_t>(1, big_n / (delta + 1));

    // Step 4: q parallel star groups. Group α (0-based) has its source at
    // position α(δ+1) and members at the next δ positions. Every node
    // derives its role from its own position and the broadcast (δ, N).
    for (auto& t : tasks) t.clear();
    for (const ncc::Slot s : cur_path.order) {
      const auto pos = static_cast<std::uint64_t>(cur_path.pos[s]);
      if (pos % (delta + 1) != 0) continue;
      if (pos / (delta + 1) >= q) continue;
      // Source: multicast my ID to my δ successors, then retire.
      prim::RangeCastTask t;
      t.lo = static_cast<prim::Position>(pos + 1);
      t.hi = static_cast<prim::Position>(pos + delta);
      DGR_CHECK_MSG(t.hi < static_cast<prim::Position>(members),
                    "star group exceeds path (degree too large)");
      t.user_tag = kTagStarEdge;
      t.payload = net.id_of(s);
      t.payload_is_id = true;
      tasks[s].push_back(t);
      residual[s] = 0;  // NIL: the source is satisfied by construction
      has_sourced[s] = 1;
    }

    prim::range_multicast(
        net, cur_path, cur_skip, tasks,
        [&](prim::Slot receiver, std::uint32_t user_tag,
            std::uint64_t payload) {
          if (user_tag != kTagStarEdge) return;
          result.stored[receiver].push_back(static_cast<ncc::NodeId>(payload));
          if (residual[receiver] == 0) {
            // Would go negative: not graphic (exact) / absorb (envelope).
            if (mode == DegreeMode::kExact) underflow[receiver] = 1;
          } else {
            --residual[receiver];
          }
          // Referee diagnostic (not visible to nodes): duplicate creation.
          const ncc::Slot src = net.slot_of(payload);
          const std::uint64_t lo = std::min<std::uint64_t>(src, receiver);
          const std::uint64_t hi = std::max<std::uint64_t>(src, receiver);
          std::scoped_lock lk(referee_mu);
          if (!referee_edges.insert((lo << 32) | hi).second)
            ++result.duplicate_edges;
        });

    // Step 5: one aggregate-OR tells everyone whether any residual went
    // negative (the paper's Unrealizable broadcast).
    if (mode == DegreeMode::kExact) {
      const std::uint64_t any = prim::aggregate_and_broadcast(
          net, agg_tree, underflow, prim::comb_or);
      if (any != 0) {
        result.realizable = false;
        break;
      }
    }
  }

  result.rounds = net.stats().rounds - start_rounds;
  return result;
}

ImplicitDegreeResult realize_degrees_implicit(
    ncc::Network& net, const std::vector<std::uint64_t>& degree,
    DegreeMode mode) {
  // Bootstrap: undirect Gk, build the BBST (positions), skip links.
  PathOverlay path = prim::undirect_initial_path(net);
  TreeOverlay tree = prim::build_bbst(net, path);
  SkipOverlay skip = prim::build_skiplinks(net, path);
  return realize_degrees_on_path(net, path, skip, tree, degree, mode);
}

}  // namespace dgr::realize
