// Referee-side validation of realization outputs against their
// specifications. Everything here reads global state and is never part of
// the distributed protocols.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "ncc/network.h"

namespace dgr::realize {

/// Outcome of a validation; `ok` plus a human-readable reason on failure.
struct Validation {
  bool ok = true;
  std::string message;

  static Validation pass() { return {}; }
  static Validation fail(std::string msg) { return {false, std::move(msg)}; }
};

/// Builds the realized graph from per-slot neighbour-ID lists (the "aware"
/// side of each implicit edge). Vertex i of the result is slot i.
graph::Graph graph_from_stored(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored);

/// Implicit degree realization: every slot's realized degree equals
/// degree[slot], the graph is simple (enforced by construction, re-checked),
/// and no edge is stored twice.
Validation validate_degree_realization(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored);

/// Explicit realization: adjacency lists are symmetric (u lists v iff v
/// lists u) and match the implicit edge set.
Validation validate_explicit_adjacency(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored,
    const std::vector<std::vector<ncc::NodeId>>& adjacency);

/// Upper-envelope realization (Theorem 13): realized degree >= requested
/// everywhere and total realized degree <= 2 * total requested.
Validation validate_upper_envelope(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored);

}  // namespace dgr::realize
