// Referee-side validation of realization outputs against their
// specifications. Everything here reads global state and is never part of
// the distributed protocols.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "ncc/network.h"

namespace dgr::realize {

/// Outcome of a validation; `ok` plus a human-readable reason on failure.
struct Validation {
  bool ok = true;
  std::string message;

  static Validation pass() { return {}; }
  static Validation fail(std::string msg) { return {false, std::move(msg)}; }
};

/// Builds the realized graph from per-slot neighbour-ID lists (the "aware"
/// side of each implicit edge). Vertex i of the result is slot i.
graph::Graph graph_from_stored(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored);

/// Implicit degree realization: every slot's realized degree equals
/// degree[slot], the graph is simple (enforced by construction, re-checked),
/// and no edge is stored twice.
Validation validate_degree_realization(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored);

/// Explicit realization: adjacency lists are symmetric (u lists v iff v
/// lists u) and match the implicit edge set.
Validation validate_explicit_adjacency(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored,
    const std::vector<std::vector<ncc::NodeId>>& adjacency);

/// Upper-envelope realization (Theorem 13): realized degree >= requested
/// everywhere and total realized degree <= 2 * total requested.
Validation validate_upper_envelope(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored);

/// Tree realization (paper §5): the stored edges form a tree on all n
/// nodes and every realized degree equals degree[slot] exactly.
Validation validate_tree_realization(
    const ncc::Network& net, const std::vector<std::uint64_t>& degree,
    const std::vector<std::vector<ncc::NodeId>>& stored);

/// Survivor-scope explicit validation (§8 crash experiments): the implicit
/// realization completed before a crash wave hit the explicitization, so
/// full symmetry is impossible — crashed nodes hold partial adjacency and
/// their notifications may never have been streamed. What must still hold:
///   (i)  no phantom edges: every adjacency entry of a surviving node is an
///        endpoint of a real implicit edge, listed at most once;
///   (ii) completeness among survivors: for every implicit edge whose BOTH
///        endpoints survived, both sides list it (the crash-tolerant
///        transport only abandons messages to crashed destinations).
/// Crashed nodes' lists are ignored beyond check (i)'s edge-existence.
Validation validate_explicit_survivors(
    const ncc::Network& net,
    const std::vector<std::vector<ncc::NodeId>>& stored,
    const std::vector<std::vector<ncc::NodeId>>& adjacency);

/// Connectivity-threshold realization (paper §6): realized edge count is
/// within the 2-approximation bound (m <= sum rho <= 2 OPT) and sampled
/// pairs meet Conn(u, v) >= min(rho(u), rho(v)) by max-flow (Menger),
/// seeded deterministically from `seed`.
Validation validate_connectivity_thresholds(
    const ncc::Network& net, const std::vector<std::uint64_t>& rho,
    const std::vector<std::vector<ncc::NodeId>>& stored, std::uint64_t seed);

}  // namespace dgr::realize
