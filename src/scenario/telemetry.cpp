#include "scenario/telemetry.h"

#include <algorithm>

#include "util/check.h"

namespace dgr::scenario {

Telemetry::Telemetry(std::uint64_t interval_rounds, std::size_t ring_capacity)
    : interval_rounds_(std::max<std::uint64_t>(interval_rounds, 1)),
      cap_(std::max<std::size_t>(ring_capacity, 1)) {
  ring_.reserve(cap_);
}

void Telemetry::fold(IntervalRecord& r, const ncc::RoundSample& s) {
  if (r.rounds == 0) r.first_round = s.round;
  ++r.rounds;
  r.sent += s.sent;
  r.delivered += s.delivered;
  r.bounced += s.bounced;
  r.dropped += s.dropped;
  r.max_send = std::max(r.max_send, s.max_send);
  r.max_recv = std::max(r.max_recv, s.max_recv);
  r.max_touched = std::max(r.max_touched, s.touched_dests);
  r.max_frontier = std::max(r.max_frontier, s.frontier);
  r.inbox_words_peak = std::max(r.inbox_words_peak, s.inbox_words);
  r.crashed_end = s.crashed;
  r.dense_fast_rounds += s.dense_fast_path ? 1 : 0;
  r.dense_sweep_rounds += s.dense_sweep ? 1 : 0;
  r.sparse_dispatch_rounds += s.sparse_dispatch ? 1 : 0;
}

void Telemetry::on_round(const ncc::RoundSample& s) {
  fold(totals_, s);
  if (!open_) {
    cur_ = IntervalRecord{};
    open_ = true;
  }
  fold(cur_, s);
  if (cur_.rounds >= interval_rounds_) flush();
}

void Telemetry::flush() {
  if (!open_ || cur_.rounds == 0) return;
  if (ring_.size() < cap_) {
    ring_.push_back(cur_);
  } else {
    ring_[closed_ % cap_] = cur_;
  }
  ++closed_;
  open_ = false;
}

std::size_t Telemetry::intervals() const { return ring_.size(); }

const IntervalRecord& Telemetry::interval(std::size_t i) const {
  DGR_CHECK(i < ring_.size());
  if (closed_ <= cap_) return ring_[i];
  // Ring wrapped: slot closed_ % cap_ holds the oldest retained interval.
  return ring_[(closed_ + i) % cap_];
}

std::vector<IntervalRecord> Telemetry::snapshot() const {
  std::vector<IntervalRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(interval(i));
  return out;
}

std::uint64_t Telemetry::evicted() const {
  return closed_ > cap_ ? closed_ - cap_ : 0;
}

}  // namespace dgr::scenario
