// The named scenario library — the shipped §8 robustness matrix.
//
// Ten scenarios spanning the axes the ROADMAP's "as many scenarios as you
// can imagine" demands: input family (regular, power-law, bimodal,
// star-heavy, caterpillar/tree, tiered), initial knowledge (NCC0 path vs
// NCC1 clique), capacity pressure (tiny budgets, strict-adjacent flood),
// link loss (ramps, bursts, mid-run flips), and crash waves. Every
// scenario runs all five realization algorithms; every completed output
// validates against realization/validate (crash scenarios at survivor
// scope). See EXPERIMENTS.md for the observed matrix.
#pragma once

#include <vector>

#include "scenario/scenario.h"

namespace dgr::scenario {

/// The shipped scenarios (stable order; >= 8 by the harness contract).
const std::vector<ScenarioSpec>& builtin_scenarios();

/// Lookup by ScenarioSpec::name; nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

}  // namespace dgr::scenario
