// Declarative scenario specs for the §8 robustness harness.
//
// A ScenarioSpec names everything a robustness experiment varies — the
// degree/threshold family, the n sweep, engine knobs (capacity, overflow
// policy, NCC0/NCC1 start), and a seeded FaultPlan of timed events (crash
// waves, loss bursts and ramps, raw drop-probability flips). compile_plan
// lowers the plan for one concrete (n, seed) into a deterministic
// per-round action schedule: which slots crash and what the link-loss rate
// becomes at the start of each round. The orchestrator in runner.cpp
// replays that schedule through the engine's telemetry hook, so the same
// spec + seed reproduces the same faults, transcript, and report at any
// thread count and under either round scheduler.
//
// Stages: every run is a build stage (the realization algorithm; it must
// complete for the output to be validated) followed by an exchange stage
// (the explicitization for the explicit algorithm, an overlay ping sweep
// for the others) transported loss/crash-tolerantly (primitives/reliable).
// Fault events name the stage they target; event rounds are relative to
// the stage's first round, so one plan applies across algorithms whose
// build lengths differ.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ncc/config.h"
#include "ncc/ids.h"

namespace dgr::scenario {

/// Input family: what the per-node demands look like. Degree families feed
/// the degree/tree algorithms directly; for the connectivity algorithms
/// the same values are clamped into a threshold vector (and conversely the
/// threshold families are repaired into graphic sequences), so every
/// scenario exercises every algorithm on the family's shape.
enum class Family {
  kRegular,    ///< (d, d, ..., d)
  kPowerlaw,   ///< Zipf-ish heavy tail in [1, dmax]
  kBimodal,    ///< half d_low, half d_high
  kStarHeavy,  ///< §7 lower-bound family D*(n, m): hubs + zeros
  kRandomTree, ///< tree-realizable, sum d = 2(n-1)
  kTiered,     ///< core/relay/edge thresholds (resilient-backbone shape)
};

/// The five realization algorithms the runner drives.
enum class Algo {
  kApproxDegree,    ///< Theorem 13 upper envelope (NCC1: the O~(1) variant)
  kImplicitDegree,  ///< Algorithm 3 exact implicit realization
  kExplicitDegree,  ///< Theorem 12: implicit + explicitization exchange
  kTree,            ///< Algorithm 4/5 tree realization
  kConnectivity,    ///< §6 thresholds (Theorem 17 NCC1 / Algorithm 6 NCC0)
};

inline constexpr std::array<Algo, 5> kAllAlgos = {
    Algo::kApproxDegree, Algo::kImplicitDegree, Algo::kExplicitDegree,
    Algo::kTree, Algo::kConnectivity};

const char* to_string(Family f);
const char* to_string(Algo a);
/// Parses the to_string form; returns false on unknown names.
bool algo_from_string(const std::string& s, Algo& out);

/// Which stage of a run a fault event targets.
enum class Stage { kBuild, kExchange };

/// One timed fault event. Rounds are relative to the target stage's first
/// round. Loss levels are permille (integer, so reports serialize without
/// floating-point formatting); crash waves name a permille share of the
/// nodes the plan has not yet crashed.
struct FaultEvent {
  enum class Kind {
    kLossSet,    ///< at_round: drop probability := loss_permille
    kLossBurst,  ///< at_round..+duration: loss_permille, then back to 0
    kLossRamp,   ///< linear 0 -> loss_permille over duration, then hold
    kCrashWave,  ///< at_round: crash crash_permille of surviving nodes
  };
  Kind kind = Kind::kLossSet;
  Stage stage = Stage::kExchange;
  std::uint64_t at_round = 0;
  std::uint64_t duration = 0;
  std::uint32_t loss_permille = 0;
  std::uint32_t crash_permille = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool crashes(Stage stage) const;
  bool loses(Stage stage) const;
  bool empty() const { return events.empty(); }
};

/// A declarative robustness scenario; see library.h for the named set.
struct ScenarioSpec {
  std::string name;
  std::string description;

  Family family = Family::kRegular;
  std::uint64_t degree = 8;     ///< regular d / bimodal low / star-heavy m/n
  std::uint64_t degree_hi = 0;  ///< powerlaw dmax / bimodal high (0 = derive)
  double alpha = 2.0;           ///< powerlaw exponent

  std::vector<std::size_t> n_sweep = {48, 96};

  ncc::InitialKnowledge initial = ncc::InitialKnowledge::kPath;
  ncc::OverflowPolicy overflow = ncc::OverflowPolicy::kBounce;
  int capacity_factor = 4;
  int min_capacity = 8;
  std::uint64_t max_rounds = 500'000;  ///< per-run stall bound
  bool caterpillar = false;  ///< tree algo: Algorithm 4 (max diameter)
  /// Exchange-stage ping tokens per stored edge (non-explicit algorithms):
  /// > 1 stretches the §8 traffic stage across enough rounds for timed
  /// fault events to land mid-flight instead of after the last ack.
  std::uint64_t exchange_tokens = 1;

  FaultPlan plan;
};

/// One round's compiled actions, stage-relative. Applied before the round
/// with that index executes (round 0 = the stage's first round).
struct RoundAction {
  std::uint64_t round = 0;
  std::int32_t set_loss_permille = -1;  ///< -1 = leave the loss rate alone
  std::vector<ncc::Slot> crash;         ///< slots to crash, ascending
};

struct CompiledSchedule {
  std::vector<RoundAction> build;     ///< sorted by round
  std::vector<RoundAction> exchange;  ///< sorted by round
  std::uint32_t planned_crashes = 0;  ///< total slots named across waves
};

/// Lower the plan for one (n, seed). Crash-wave membership is drawn here
/// from a stream derived only from (seed, event order), so the schedule —
/// and everything downstream of it — is a pure function of (spec, n, seed).
CompiledSchedule compile_plan(const ScenarioSpec& spec, std::size_t n,
                              std::uint64_t seed);

// --- Per-algorithm input adapters (deterministic in (spec, n, seed)) ----

/// Graphic degree sequence in the spec's family shape.
std::vector<std::uint64_t> degrees_for(const ScenarioSpec& spec,
                                       std::size_t n, std::uint64_t seed);
/// Tree-realizable variant of the family (sum = 2(n-1), all >= 1).
std::vector<std::uint64_t> tree_degrees_for(const ScenarioSpec& spec,
                                            std::size_t n,
                                            std::uint64_t seed);
/// Connectivity thresholds in the family shape, clamped so the max-flow
/// validator stays cheap.
std::vector<std::uint64_t> thresholds_for(const ScenarioSpec& spec,
                                          std::size_t n, std::uint64_t seed);

/// Spec sanity: empty string when runnable, else a human-readable reason.
std::string check_spec(const ScenarioSpec& spec);

}  // namespace dgr::scenario
