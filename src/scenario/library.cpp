#include "scenario/library.h"

namespace dgr::scenario {

namespace {

std::vector<ScenarioSpec> make_library() {
  std::vector<ScenarioSpec> lib;

  {
    ScenarioSpec s;
    s.name = "clean-regular";
    s.description =
        "Baseline: 8-regular sequence, NCC0 path start, reliable links";
    s.family = Family::kRegular;
    s.degree = 8;
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "clean-ncc1";
    s.description =
        "NCC1 clique start on the same 8-regular family (the O~(1) "
        "approx and Theorem 17 connectivity variants)";
    s.family = Family::kRegular;
    s.degree = 8;
    s.initial = ncc::InitialKnowledge::kClique;
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "powerlaw-heavytail";
    s.description = "Power-law degrees (hubs + long tail), NCC0";
    s.family = Family::kPowerlaw;
    s.degree = 4;
    s.alpha = 2.0;
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "bimodal-split";
    s.description = "Half low-degree, half high-degree nodes";
    s.family = Family::kBimodal;
    s.degree = 3;
    s.degree_hi = 12;
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "star-heavy-hubs";
    s.description =
        "The §7 lower-bound family D*(n, m): ~2n edges concentrated on "
        "Theta(sqrt(m)) hubs, zeros elsewhere";
    s.family = Family::kStarHeavy;
    s.degree = 2;  // m = 2n
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "caterpillar-chain";
    s.description =
        "Tree-realizable family realized as the maximum-diameter "
        "caterpillar (Algorithm 4)";
    s.family = Family::kRandomTree;
    s.caterpillar = true;
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "tiny-capacity-flood";
    s.description =
        "Capacity squeezed to the floor (factor 1): every fan-in "
        "oversubscribes, the bounce/retry machinery carries the build";
    s.family = Family::kRegular;
    s.degree = 12;
    s.capacity_factor = 1;
    s.min_capacity = 8;
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "tiered-backbone";
    s.description =
        "Core/relay/edge threshold tiers (the resilient-backbone shape)";
    s.family = Family::kTiered;
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "lossy-ramp";
    s.description =
        "Link loss ramps 0 -> 30% across the exchange stage, then a flip "
        "back to lossless; ACK+retransmit transport carries it";
    s.family = Family::kRegular;
    s.degree = 8;
    s.exchange_tokens = 6;
    FaultEvent ramp;
    ramp.kind = FaultEvent::Kind::kLossRamp;
    ramp.stage = Stage::kExchange;
    ramp.at_round = 0;
    ramp.duration = 12;
    ramp.loss_permille = 300;
    s.plan.events.push_back(ramp);
    FaultEvent off;
    off.kind = FaultEvent::Kind::kLossSet;
    off.stage = Stage::kExchange;
    off.at_round = 48;
    off.loss_permille = 0;
    s.plan.events.push_back(off);
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "lossy-burst-flips";
    s.description =
        "Two mid-run drop-probability flips on a power-law overlay: a 40% "
        "burst, quiet, then a 15% aftershock";
    s.family = Family::kPowerlaw;
    s.degree = 4;
    s.alpha = 2.2;
    s.exchange_tokens = 6;
    FaultEvent burst;
    burst.kind = FaultEvent::Kind::kLossBurst;
    burst.stage = Stage::kExchange;
    burst.at_round = 1;
    burst.duration = 8;
    burst.loss_permille = 400;
    s.plan.events.push_back(burst);
    FaultEvent after;
    after.kind = FaultEvent::Kind::kLossBurst;
    after.stage = Stage::kExchange;
    after.at_round = 14;
    after.duration = 6;
    after.loss_permille = 150;
    s.plan.events.push_back(after);
    lib.push_back(s);
  }
  {
    ScenarioSpec s;
    s.name = "crash-wave-mid-build";
    s.description =
        "Two crash waves (15% then 15% of survivors) hit while the "
        "explicitization / overlay exchange is in flight; the bounded "
        "ACK transport abandons crashed peers, survivors stay consistent";
    s.family = Family::kRegular;
    s.degree = 6;
    s.exchange_tokens = 6;
    FaultEvent w1;
    w1.kind = FaultEvent::Kind::kCrashWave;
    w1.stage = Stage::kExchange;
    w1.at_round = 1;
    w1.crash_permille = 150;
    s.plan.events.push_back(w1);
    FaultEvent w2;
    w2.kind = FaultEvent::Kind::kCrashWave;
    w2.stage = Stage::kExchange;
    w2.at_round = 5;
    w2.crash_permille = 150;
    s.plan.events.push_back(w2);
    lib.push_back(s);
  }

  return lib;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> lib = make_library();
  return lib;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const auto& s : builtin_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace dgr::scenario
