#include "scenario/scenario.h"

#include <algorithm>
#include <map>

#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr::scenario {

const char* to_string(Family f) {
  switch (f) {
    case Family::kRegular: return "regular";
    case Family::kPowerlaw: return "powerlaw";
    case Family::kBimodal: return "bimodal";
    case Family::kStarHeavy: return "star-heavy";
    case Family::kRandomTree: return "random-tree";
    case Family::kTiered: return "tiered";
  }
  return "?";
}

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kApproxDegree: return "approx";
    case Algo::kImplicitDegree: return "implicit";
    case Algo::kExplicitDegree: return "explicit";
    case Algo::kTree: return "tree";
    case Algo::kConnectivity: return "connectivity";
  }
  return "?";
}

bool algo_from_string(const std::string& s, Algo& out) {
  for (const Algo a : kAllAlgos) {
    if (s == to_string(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

bool FaultPlan::crashes(Stage stage) const {
  return std::any_of(events.begin(), events.end(), [&](const FaultEvent& e) {
    return e.stage == stage && e.kind == FaultEvent::Kind::kCrashWave &&
           e.crash_permille > 0;
  });
}

bool FaultPlan::loses(Stage stage) const {
  return std::any_of(events.begin(), events.end(), [&](const FaultEvent& e) {
    return e.stage == stage && e.kind != FaultEvent::Kind::kCrashWave &&
           e.loss_permille > 0;
  });
}

namespace {

/// Ordered accumulation point for one stage's actions: later writers win
/// per round, which makes event composition (a burst ending inside a ramp,
/// two waves on one round) deterministic regardless of plan order.
using StageActions = std::map<std::uint64_t, RoundAction>;

RoundAction& at(StageActions& m, std::uint64_t round) {
  RoundAction& a = m[round];
  a.round = round;
  return a;
}

void compile_event(const FaultEvent& e, StageActions& m, std::size_t n,
                   std::vector<std::uint8_t>& planned_crashed,
                   std::size_t& plan_alive, Rng& rng,
                   std::uint32_t& planned_total) {
  switch (e.kind) {
    case FaultEvent::Kind::kLossSet:
      at(m, e.at_round).set_loss_permille =
          static_cast<std::int32_t>(e.loss_permille);
      break;
    case FaultEvent::Kind::kLossBurst:
      at(m, e.at_round).set_loss_permille =
          static_cast<std::int32_t>(e.loss_permille);
      at(m, e.at_round + std::max<std::uint64_t>(e.duration, 1))
          .set_loss_permille = 0;
      break;
    case FaultEvent::Kind::kLossRamp: {
      const std::uint64_t dur = std::max<std::uint64_t>(e.duration, 1);
      for (std::uint64_t r = 0; r <= dur; ++r) {
        at(m, e.at_round + r).set_loss_permille =
            static_cast<std::int32_t>(e.loss_permille * r / dur);
      }
      break;
    }
    case FaultEvent::Kind::kCrashWave: {
      // Crash a permille share of the nodes the plan still counts alive
      // (waves compose: a second wave draws from the first's survivors).
      std::size_t count = plan_alive * e.crash_permille / 1000;
      count = std::min(count, plan_alive);
      if (e.crash_permille > 0 && count == 0 && plan_alive > 0) count = 1;
      RoundAction& a = at(m, e.at_round);
      for (std::size_t k = 0; k < count; ++k) {
        ncc::Slot s;
        do {
          s = static_cast<ncc::Slot>(rng.below(n));
        } while (planned_crashed[s]);
        planned_crashed[s] = 1;
        --plan_alive;
        a.crash.push_back(s);
      }
      std::sort(a.crash.begin(), a.crash.end());
      planned_total += static_cast<std::uint32_t>(count);
      break;
    }
  }
}

}  // namespace

CompiledSchedule compile_plan(const ScenarioSpec& spec, std::size_t n,
                              std::uint64_t seed) {
  CompiledSchedule out;
  std::vector<std::uint8_t> planned_crashed(n, 0);
  std::size_t plan_alive = n;
  Rng rng(hash_mix(seed, 0xFA017C0DEULL, n));

  // Deterministic event order: by (stage, trigger round, plan position).
  std::vector<const FaultEvent*> order;
  order.reserve(spec.plan.events.size());
  for (const auto& e : spec.plan.events) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     if (a->stage != b->stage) return a->stage < b->stage;
                     return a->at_round < b->at_round;
                   });

  StageActions build_m, exchange_m;
  for (const FaultEvent* e : order) {
    StageActions& m = e->stage == Stage::kBuild ? build_m : exchange_m;
    compile_event(*e, m, n, planned_crashed, plan_alive, rng,
                  out.planned_crashes);
  }
  for (auto& [r, a] : build_m) out.build.push_back(std::move(a));
  for (auto& [r, a] : exchange_m) out.exchange.push_back(std::move(a));
  return out;
}

namespace {

std::uint64_t clamp_deg(std::uint64_t d, std::size_t n) {
  return std::min<std::uint64_t>(d, n > 0 ? n - 1 : 0);
}

}  // namespace

std::vector<std::uint64_t> degrees_for(const ScenarioSpec& spec,
                                       std::size_t n, std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xDE62EE5ULL, n));
  switch (spec.family) {
    case Family::kRegular:
      return graph::regular_sequence(n, clamp_deg(spec.degree, n));
    case Family::kPowerlaw: {
      const std::uint64_t dmax = clamp_deg(
          spec.degree_hi != 0 ? spec.degree_hi
                              : std::max<std::uint64_t>(spec.degree * 4, 8),
          n);
      return graph::powerlaw_sequence(n, dmax, spec.alpha, rng);
    }
    case Family::kBimodal: {
      const std::uint64_t hi = clamp_deg(
          spec.degree_hi != 0 ? spec.degree_hi : spec.degree * 3, n);
      return graph::bimodal_sequence(n, clamp_deg(spec.degree, n), hi);
    }
    case Family::kStarHeavy:
      return graph::star_heavy_sequence(n, spec.degree * n);
    case Family::kRandomTree:
      return graph::random_tree_sequence(n, rng);
    case Family::kTiered:
      return graph::make_graphic(thresholds_for(spec, n, seed));
  }
  DGR_CHECK_MSG(false, "unknown family");
  return {};
}

std::vector<std::uint64_t> tree_degrees_for(const ScenarioSpec& spec,
                                            std::size_t n,
                                            std::uint64_t seed) {
  if (spec.family == Family::kRandomTree) {
    Rng rng(hash_mix(seed, 0xDE62EE5ULL, n));
    return graph::random_tree_sequence(n, rng);
  }
  return graph::make_tree_realizable(degrees_for(spec, n, seed));
}

std::vector<std::uint64_t> thresholds_for(const ScenarioSpec& spec,
                                          std::size_t n,
                                          std::uint64_t seed) {
  // Cap thresholds low enough that the max-flow validator (O(m * flow) per
  // sampled pair) stays cheap at harness sizes.
  const std::uint64_t rmax = std::min<std::uint64_t>(12, n - 1);
  if (spec.family == Family::kTiered) {
    const std::size_t n_core = std::max<std::size_t>(2, n / 16);
    const std::size_t n_relay = n / 4;
    return graph::tiered_thresholds(
        n, n_core, std::min<std::uint64_t>(rmax, n - 1), n_relay,
        std::min<std::uint64_t>(5, rmax), std::min<std::uint64_t>(2, rmax));
  }
  std::vector<std::uint64_t> rho = degrees_for(spec, n, seed);
  for (auto& r : rho) r = std::clamp<std::uint64_t>(r, 1, rmax);
  return rho;
}

std::string check_spec(const ScenarioSpec& spec) {
  if (spec.name.empty()) return "scenario has no name";
  if (spec.n_sweep.empty()) return "empty n sweep";
  for (const std::size_t n : spec.n_sweep) {
    if (n < 8) return "n < 8 leaves no room for waves and trees";
  }
  if (spec.capacity_factor < 1 || spec.min_capacity < 1)
    return "capacity knobs must be >= 1";
  if (spec.exchange_tokens < 1 || spec.exchange_tokens > 64)
    return "exchange_tokens outside [1, 64]";
  for (const auto& e : spec.plan.events) {
    if (e.loss_permille > 1000) return "loss_permille > 1000";
    if (e.crash_permille > 1000) return "crash_permille > 1000";
    if (e.kind == FaultEvent::Kind::kCrashWave && e.stage == Stage::kBuild)
      return "crash waves during the build stage would stall the wave "
             "primitives; target the exchange stage";
    if (e.kind != FaultEvent::Kind::kCrashWave && e.stage == Stage::kBuild &&
        e.loss_permille > 0)
      return "link loss during the build stage breaks the fire-and-forget "
             "primitives; target the exchange stage (reliable transport)";
  }
  return {};
}

}  // namespace dgr::scenario
