#include "scenario/report.h"

#include <cstdio>
#include <sstream>

#include "util/table.h"

namespace dgr::scenario {

namespace {

/// Minimal JSON string escaping — report strings are ASCII identifiers and
/// validator diagnostics, so quotes/backslashes/control bytes cover it.
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Json {
 public:
  explicit Json(std::string& out) : out_(out) {}

  void open(char b) {
    out_ += b;
    ++depth_;
    first_ = true;
  }
  void close(char b) {
    --depth_;
    out_ += '\n';
    indent();
    out_ += b;
    first_ = false;
  }
  void key(const std::string& k) {
    sep();
    append_escaped(out_, k);
    out_ += ": ";
  }
  void value(const std::string& v) { append_escaped(out_, v); }
  void value(std::uint64_t v) { out_ += std::to_string(v); }
  void value(bool v) { out_ += v ? "true" : "false"; }
  template <typename V>
  void kv(const std::string& k, const V& v) {
    key(k);
    value(v);
  }
  /// Array-element separator (for elements that are objects/arrays).
  void elem() { sep(); }

 private:
  void sep() {
    if (!first_) out_ += ',';
    out_ += '\n';
    indent();
    first_ = false;
  }
  void indent() {
    for (int i = 0; i < depth_; ++i) out_ += "  ";
  }
  std::string& out_;
  int depth_ = 0;
  bool first_ = true;
};

void write_interval(Json& j, const IntervalRecord& iv) {
  j.open('{');
  j.kv("first_round", iv.first_round);
  j.kv("rounds", iv.rounds);
  j.kv("sent", iv.sent);
  j.kv("delivered", iv.delivered);
  j.kv("bounced", iv.bounced);
  j.kv("dropped", iv.dropped);
  j.kv("max_send", std::uint64_t{iv.max_send});
  j.kv("max_recv", std::uint64_t{iv.max_recv});
  j.kv("max_touched", std::uint64_t{iv.max_touched});
  j.kv("max_frontier", std::uint64_t{iv.max_frontier});
  j.kv("inbox_words_peak", iv.inbox_words_peak);
  j.kv("crashed_end", std::uint64_t{iv.crashed_end});
  // Execution-strategy counters intentionally omitted: the report promises
  // byte-identical output across thread counts and round schedulers.
  j.close('}');
}

void write_run(Json& j, const RunRecord& r) {
  j.open('{');
  j.kv("algo", r.algo);
  j.kv("n", r.n);
  j.kv("outcome", r.outcome);
  j.kv("validated", r.validated);
  j.kv("validation", r.validation);
  j.kv("build_rounds", r.build_rounds);
  j.kv("exchange_rounds", r.exchange_rounds);
  j.kv("total_rounds", r.total_rounds);
  j.kv("sent", r.sent);
  j.kv("delivered", r.delivered);
  j.kv("bounced", r.bounced);
  j.kv("dropped", r.dropped);
  j.kv("max_send", r.max_send);
  j.kv("max_recv", r.max_recv);
  j.kv("max_frontier", r.max_frontier);
  j.kv("inbox_words_peak", r.inbox_words_peak);
  j.kv("crashed", r.crashed);
  j.kv("edges", r.edges);
  j.kv("exchange_total", r.exchange_total);
  j.kv("exchange_given_up", r.exchange_given_up);
  j.key("telemetry");
  j.open('[');
  for (const auto& iv : r.intervals) {
    j.elem();
    write_interval(j, iv);
  }
  j.close(']');
  j.close('}');
}

}  // namespace

std::string to_json(const MatrixReport& report) {
  std::string out;
  out.reserve(1 << 16);
  Json j(out);
  j.open('{');
  j.kv("schema", std::string("dgr-scenario-report-v1"));
  j.kv("seed", report.seed);
  j.kv("runs", static_cast<std::uint64_t>(report.run_count()));
  j.kv("all_validated", report.all_validated());
  j.key("scenarios");
  j.open('[');
  for (const auto& s : report.scenarios) {
    j.elem();
    j.open('{');
    j.kv("name", s.name);
    j.kv("description", s.description);
    j.key("runs");
    j.open('[');
    for (const auto& r : s.runs) {
      j.elem();
      write_run(j, r);
    }
    j.close(']');
    j.close('}');
  }
  j.close(']');
  j.close('}');
  out += '\n';
  return out;
}

std::string to_csv(const MatrixReport& report) {
  std::ostringstream os;
  os << "scenario,algo,n,outcome,validated,build_rounds,exchange_rounds,"
        "total_rounds,sent,delivered,bounced,dropped,max_send,max_recv,"
        "max_frontier,crashed,edges,exchange_total,exchange_given_up\n";
  for (const auto& s : report.scenarios) {
    for (const auto& r : s.runs) {
      os << s.name << ',' << r.algo << ',' << r.n << ',' << r.outcome << ','
         << (r.validated ? 1 : 0) << ',' << r.build_rounds << ','
         << r.exchange_rounds << ',' << r.total_rounds << ',' << r.sent
         << ',' << r.delivered << ',' << r.bounced << ',' << r.dropped << ','
         << r.max_send << ',' << r.max_recv << ',' << r.max_frontier << ','
         << r.crashed << ',' << r.edges << ',' << r.exchange_total << ','
         << r.exchange_given_up << '\n';
    }
  }
  return os.str();
}

std::string to_table(const MatrixReport& report) {
  std::ostringstream os;
  for (const auto& s : report.scenarios) {
    Table t(s.name + " — " + s.description);
    t.header({"algo", "n", "outcome", "valid", "rounds", "msgs", "bounced",
              "dropped", "crashed", "edges"});
    for (const auto& r : s.runs) {
      t.row({r.algo, Table::num(r.n), r.outcome,
             r.validated ? "pass" : r.validation, Table::num(r.total_rounds),
             Table::num(r.sent), Table::num(r.bounced),
             Table::num(r.dropped), Table::num(r.crashed),
             Table::num(r.edges)});
    }
    t.print(os);
    os << '\n';
  }
  return os.str();
}

}  // namespace dgr::scenario
