// Scenario runner: executes realization algorithms over a scenario matrix
// with orchestrated faults, validates every completed output against
// realization/validate, and assembles deterministic reports.
//
// Run anatomy (one RunRecord per (scenario, algorithm, n)):
//   1. build stage — the realization algorithm runs start-to-finish on a
//      fresh Network (seeded from (runner seed, scenario, algorithm, n));
//      the compiled fault schedule's build-stage actions replay through
//      the telemetry hook.
//   2. exchange stage — §8 robustness traffic over the realized overlay,
//      under the schedule's exchange-stage actions. For the explicit
//      algorithm this IS the explicitization (fire-and-forget when the
//      stage is clean, ACK+retransmit under loss, bounded-retry under
//      crash waves); for every other algorithm it is an overlay ping
//      sweep: each aware endpoint delivers one token per stored edge over
//      the same transports.
//   3. validation — the per-algorithm realize::validate_* check; crash
//      scenarios validate the explicit output at survivor scope
//      (validate_explicit_survivors).
//
// Determinism contract (tested): with a fixed options.seed, the assembled
// MatrixReport — and its JSON/CSV serialization — is byte-for-byte
// identical for any worker-thread count and under either round scheduler
// (Config::sparse_rounds true/false). Execution-strategy telemetry is
// therefore excluded from RunRecord (see scenario/telemetry.h).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "scenario/telemetry.h"

namespace dgr::ncc {
class ArenaPool;
class TelemetrySink;
struct RoundSample;
}  // namespace dgr::ncc

namespace dgr::scenario {

struct RunRecord;

struct RunnerOptions {
  std::uint64_t seed = 1;
  unsigned threads = 1;          ///< execution detail; not in reports
  bool sparse_rounds = true;     ///< execution detail; not in reports
  /// Concurrent runs (1 = the serial loop). Execution detail: the matrix
  /// is dispatched as indexed tasks on the process-wide Executor and
  /// merged back in declarative (spec x algo x n) order, so the assembled
  /// report is byte-identical for any jobs value. Composes with `threads`:
  /// each in-flight run may itself fan its rounds out over the executor.
  unsigned jobs = 1;
  std::vector<std::size_t> n_override;  ///< empty = spec.n_sweep
  std::vector<Algo> algos{kAllAlgos.begin(), kAllAlgos.end()};
  /// Round-scratch pool shared by every run's Network (execution detail;
  /// not in reports — transcripts are bit-identical with reuse on or off).
  /// Null lets run_matrix create one internally, so a matrix sweep reuses
  /// warm wire arenas and histograms across all its algorithms and sizes
  /// by default; run_one only pools when a pool is supplied. Non-owning;
  /// must outlive the call.
  ncc::ArenaPool* arena_pool = nullptr;
  std::uint64_t telemetry_interval = 8;
  std::size_t telemetry_ring = 64;
  bool keep_intervals = true;  ///< include interval series in records
  /// Completion hook: called once per finished run with (done, total,
  /// record), where done counts COMPLETED runs (atomic; completion order,
  /// not declarative order, under jobs > 1). Calls are serialized — a
  /// progress printer needs no locking of its own.
  std::function<void(std::size_t, std::size_t, const RunRecord&)> progress;
  /// Metrics sink attached to every run's Network on its set_metrics slot
  /// (obs::NetMetrics shape; composes with the runner's own orchestrator
  /// on the telemetry slot). Execution detail, never in reports —
  /// transcripts are bit-identical attached or detached. Non-owning; must
  /// outlive the call. Under jobs > 1 the sink sees concurrent runs'
  /// rounds, so it must be thread-safe (obs::NetMetrics is).
  ncc::TelemetrySink* metrics = nullptr;
  /// Live per-round hook: (scenario, algo, n, sample) in referee context —
  /// this is what `dgr_scenarios --telemetry-socket` feeds NDJSON events
  /// from. Same caveats as `metrics`: execution detail, and under jobs > 1
  /// it is called concurrently from different runs (obs::Exporter::publish
  /// serializes internally).
  std::function<void(const std::string&, const std::string&, std::uint64_t,
                     const ncc::RoundSample&)>
      on_sample;
};

/// Everything one run produced. All counters are engine-transcript values.
struct RunRecord {
  std::string scenario;
  std::string algo;
  std::uint64_t n = 0;

  /// "ok" — algorithm completed; "unrealizable" — input correctly reported
  /// unrealizable (star-heavy tree repairs etc. never produce this in the
  /// shipped library); "stalled" — a wave died or the round budget fired
  /// (recorded, not thrown).
  std::string outcome;
  bool validated = false;
  std::string validation;  ///< "pass", "skipped (<why>)", or failure text

  std::uint64_t build_rounds = 0;
  std::uint64_t exchange_rounds = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bounced = 0;
  std::uint64_t dropped = 0;
  std::uint64_t max_send = 0;
  std::uint64_t max_recv = 0;
  std::uint64_t max_frontier = 0;
  std::uint64_t inbox_words_peak = 0;
  std::uint64_t crashed = 0;          ///< crashed nodes at run end
  std::uint64_t edges = 0;            ///< realized aware-side edges
  std::uint64_t exchange_total = 0;   ///< exchange-stage tokens offered
  std::uint64_t exchange_given_up = 0;  ///< abandoned (crashed peers)

  std::vector<IntervalRecord> intervals;  ///< telemetry ring snapshot
};

struct ScenarioReport {
  std::string name;
  std::string description;
  std::vector<RunRecord> runs;
};

struct MatrixReport {
  std::uint64_t seed = 0;
  std::vector<ScenarioReport> scenarios;

  std::size_t run_count() const;
  /// True when every run completed and validated ("pass").
  bool all_validated() const;
};

/// One (scenario, algorithm, n) run; throws CheckError only on spec
/// errors, never on in-run faults (those become outcome codes).
RunRecord run_one(const ScenarioSpec& spec, Algo algo, std::size_t n,
                  const RunnerOptions& opt);

/// The full matrix: every spec x opt.algos x n sweep.
MatrixReport run_matrix(std::span<const ScenarioSpec> specs,
                        const RunnerOptions& opt);

}  // namespace dgr::scenario
