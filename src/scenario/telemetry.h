// Interval-folding telemetry collector for scenario runs.
//
// Attached to a Network (ncc/telemetry.h), it folds each RoundSample into
// the open interval record; every `interval_rounds` rounds the record is
// closed into a fixed-capacity ring buffer (oldest intervals overwritten),
// so a million-round run costs a constant memory footprint while the tail
// — where fault plans usually bite — stays inspectable. Run-wide totals
// are maintained independently of the ring, so nothing about the totals is
// lost to overwrites.
//
// Determinism: every folded field is transcript content (invariant across
// thread counts and sparse/dense scheduling). The execution-strategy
// counters (dense_fast_rounds, dense_sweep_rounds, sparse_dispatch_rounds)
// describe how the engine chose to run and are deliberately kept OUT of
// the scenario reports (report.cpp), which promise byte-identical output
// across schedulers; they remain queryable here for perf forensics.
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/telemetry.h"

namespace dgr::scenario {

/// Per-round counters folded over one interval of rounds.
struct IntervalRecord {
  std::uint64_t first_round = 0;  ///< engine round index the interval opened
  std::uint64_t rounds = 0;       ///< rounds folded (== interval, or the tail)
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bounced = 0;
  std::uint64_t dropped = 0;
  std::uint32_t max_send = 0;      ///< max per-node sends in any round
  std::uint32_t max_recv = 0;      ///< max per-node arrivals in any round
  std::uint32_t max_touched = 0;   ///< max destinations touched in any round
  std::uint32_t max_frontier = 0;  ///< max active-set size in any round
  std::uint64_t inbox_words_peak = 0;
  std::uint32_t crashed_end = 0;   ///< crashed count after the last round
  // Execution strategy (not part of the report surface).
  std::uint32_t dense_fast_rounds = 0;
  std::uint32_t dense_sweep_rounds = 0;
  std::uint32_t sparse_dispatch_rounds = 0;
};

class Telemetry : public ncc::TelemetrySink {
 public:
  explicit Telemetry(std::uint64_t interval_rounds = 8,
                     std::size_t ring_capacity = 64);

  void on_round(const ncc::RoundSample& s) override;

  /// Close the open partial interval (if any) into the ring. Call once the
  /// run ends; on_round keeps working afterwards (a new interval opens).
  void flush();

  /// Closed intervals still retained, oldest first.
  std::size_t intervals() const;
  const IntervalRecord& interval(std::size_t i) const;
  std::vector<IntervalRecord> snapshot() const;
  /// Intervals lost to ring overwrite.
  std::uint64_t evicted() const;

  /// Run-wide totals (never evicted). `rounds` counts every sample seen.
  const IntervalRecord& totals() const { return totals_; }

 private:
  void fold(IntervalRecord& r, const ncc::RoundSample& s);

  std::uint64_t interval_rounds_;
  std::size_t cap_;
  IntervalRecord cur_;
  bool open_ = false;
  std::vector<IntervalRecord> ring_;
  std::uint64_t closed_ = 0;  ///< total intervals ever closed
  IntervalRecord totals_;
};

}  // namespace dgr::scenario
