#include "scenario/runner.h"

#include <algorithm>
#include <mutex>

#include "ncc/arena.h"
#include "ncc/executor.h"
#include "ncc/network.h"
#include "primitives/collection.h"
#include "primitives/reliable.h"
#include "realization/approx_degree.h"
#include "realization/connectivity.h"
#include "realization/explicit_degree.h"
#include "realization/implicit_degree.h"
#include "realization/tree_realization.h"
#include "realization/validate.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr::scenario {

namespace {

constexpr std::uint32_t kTagPing = 0x7A0;

/// Attempt budget for crash-tolerant transports: generous enough that a
/// message to a LIVE peer is effectively never abandoned (give-ups mean
/// "peer crashed"), small enough that crashed peers cost bounded rounds.
constexpr std::uint64_t kMaxAttempts = 48;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Replays a compiled stage schedule through the engine's telemetry hook
/// (referee context — see ncc/telemetry.h) and forwards every sample to
/// the interval collector. Action semantics: an action with stage-relative
/// round r is applied before the stage's r-th round executes.
class Orchestrator : public ncc::TelemetrySink {
 public:
  Orchestrator(ncc::Network& net, Telemetry& collect, const RunRecord& rec,
               const RunnerOptions& opt)
      : net_(net), collect_(collect), rec_(rec), opt_(opt) {}

  void arm(const std::vector<RoundAction>& actions) {
    actions_ = &actions;
    next_ = 0;
    base_ = net_.stats().rounds;
    apply_due(0);
  }

  void on_round(const ncc::RoundSample& s) override {
    collect_.on_round(s);
    if (opt_.on_sample) opt_.on_sample(rec_.scenario, rec_.algo, rec_.n, s);
    if (actions_) apply_due(s.round + 1 - base_);
  }

 private:
  void apply_due(std::uint64_t rel) {
    while (next_ < actions_->size() && (*actions_)[next_].round <= rel) {
      const RoundAction& a = (*actions_)[next_++];
      if (a.set_loss_permille >= 0)
        net_.set_drop_probability(
            static_cast<double>(a.set_loss_permille) / 1000.0);
      for (const ncc::Slot s : a.crash) net_.crash(s);
    }
  }

  ncc::Network& net_;
  Telemetry& collect_;
  const RunRecord& rec_;      // run tag for on_sample (scenario/algo/n)
  const RunnerOptions& opt_;  // hooks only; never steers the run
  const std::vector<RoundAction>* actions_ = nullptr;
  std::size_t next_ = 0;
  std::uint64_t base_ = 0;
};

std::uint64_t stored_edge_count(
    const std::vector<std::vector<ncc::NodeId>>& stored) {
  std::uint64_t total = 0;
  for (const auto& lst : stored) total += lst.size();
  return total;
}

struct BuildOutput {
  bool realizable = true;
  std::vector<std::vector<ncc::NodeId>> stored;    ///< aware-side edges
  std::vector<std::vector<ncc::NodeId>> adjacency; ///< explicit algo only
  realize::ImplicitDegreeResult implicit;          ///< explicit algo carry
  std::vector<std::uint64_t> input;                ///< degrees or rho
};

/// §8 exchange traffic for the non-explicit algorithms: `tokens` pings per
/// aware-side stored edge, transported to match the stage's fault profile.
void ping_sweep(ncc::Network& net, const BuildOutput& b,
                std::uint64_t tokens, bool crashes, bool loses,
                RunRecord& rec) {
  const std::size_t n = net.n();
  std::vector<std::vector<prim::DirectSend>> batch(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    for (const ncc::NodeId v : b.stored[s]) {
      for (std::uint64_t k = 0; k < tokens; ++k)
        batch[s].push_back({v, kTagPing, k, false});
    }
  }
  rec.exchange_total = stored_edge_count(b.stored) * tokens;
  // Delivery is accounted by the transports themselves (exchange_total -
  // given_up, and the engine's delivered counter); the sink needs no body.
  const prim::DirectDeliver sink = [](prim::Slot, ncc::NodeId,
                                      std::uint32_t, std::uint64_t) {};
  if (crashes) {
    const auto xc = prim::reliable_exchange_bounded(
        net, batch, sink, /*retransmit_after=*/4, kMaxAttempts);
    rec.exchange_given_up = xc.given_up;
  } else if (loses) {
    prim::reliable_exchange(net, batch, sink);
  } else {
    prim::direct_exchange(net, batch, sink);
  }
}

realize::Validation validate_run(const ncc::Network& net, Algo algo,
                                 const BuildOutput& b, bool crashed_exchange,
                                 std::uint64_t seed) {
  switch (algo) {
    case Algo::kApproxDegree:
      return realize::validate_upper_envelope(net, b.input, b.stored);
    case Algo::kImplicitDegree:
      return realize::validate_degree_realization(net, b.input, b.stored);
    case Algo::kExplicitDegree:
      return crashed_exchange
                 ? realize::validate_explicit_survivors(net, b.stored,
                                                        b.adjacency)
                 : realize::validate_explicit_adjacency(net, b.stored,
                                                        b.adjacency);
    case Algo::kTree:
      return realize::validate_tree_realization(net, b.input, b.stored);
    case Algo::kConnectivity:
      return realize::validate_connectivity_thresholds(net, b.input,
                                                       b.stored, seed);
  }
  return realize::Validation::fail("unknown algorithm");
}

}  // namespace

std::size_t MatrixReport::run_count() const {
  std::size_t total = 0;
  for (const auto& s : scenarios) total += s.runs.size();
  return total;
}

bool MatrixReport::all_validated() const {
  for (const auto& s : scenarios) {
    for (const auto& r : s.runs) {
      if (!r.validated) return false;
    }
  }
  return true;
}

RunRecord run_one(const ScenarioSpec& spec, Algo algo, std::size_t n,
                  const RunnerOptions& opt) {
  RunRecord rec;
  rec.scenario = spec.name;
  rec.algo = to_string(algo);
  rec.n = n;
  {
    const std::string err = check_spec(spec);
    DGR_CHECK_MSG(err.empty(),
                  "bad scenario spec '" << spec.name << "': " << err);
    // n may come from RunnerOptions::n_override, which check_spec (a pure
    // spec predicate) never sees — hold it to the same floor.
    DGR_CHECK_MSG(n >= 8, "scenario n = " << n
                              << " below the harness floor of 8");
  }

  // Every run gets its own seed stream, derived only from declarative
  // inputs — never from thread count or scheduling.
  const std::uint64_t run_seed =
      hash_mix(opt.seed, fnv1a(spec.name),
               hash_mix(static_cast<std::uint64_t>(algo) + 1, n));

  ncc::Config cfg;
  cfg.seed = run_seed;
  cfg.threads = opt.threads;
  cfg.sparse_rounds = opt.sparse_rounds;
  cfg.initial = spec.initial;
  cfg.overflow = spec.overflow;
  cfg.capacity_factor = spec.capacity_factor;
  cfg.min_capacity = spec.min_capacity;
  cfg.max_rounds = spec.max_rounds;
  cfg.arena_pool = opt.arena_pool;
  ncc::Network net(n, cfg);

  const CompiledSchedule sched = compile_plan(spec, n, run_seed);
  Telemetry tel(opt.telemetry_interval, opt.telemetry_ring);
  Orchestrator orch(net, tel, rec, opt);
  net.set_telemetry(&orch);
  if (opt.metrics) net.set_metrics(opt.metrics);

  const bool crashes_x = spec.plan.crashes(Stage::kExchange);
  const bool loses_x = spec.plan.loses(Stage::kExchange);

  BuildOutput b;
  auto finish = [&](const char* outcome, std::string validation,
                    bool validated) {
    rec.outcome = outcome;
    rec.validation = std::move(validation);
    rec.validated = validated;
    net.set_telemetry(nullptr);
    net.set_metrics(nullptr);
    tel.flush();
    const ncc::NetStats& st = net.stats();
    rec.total_rounds = st.rounds;
    rec.sent = st.messages_sent;
    rec.delivered = st.messages_delivered;
    rec.bounced = st.messages_bounced;
    rec.dropped = st.messages_dropped;
    rec.max_send = st.max_send_in_round;
    rec.max_recv = st.max_recv_in_round;
    rec.max_frontier = tel.totals().max_frontier;
    rec.inbox_words_peak = tel.totals().inbox_words_peak;
    rec.crashed = net.crashed_count();
    rec.edges = stored_edge_count(b.stored);
    if (opt.keep_intervals) rec.intervals = tel.snapshot();
    return rec;
  };

  // --- Build stage -------------------------------------------------------
  orch.arm(sched.build);
  try {
    switch (algo) {
      case Algo::kApproxDegree: {
        b.input = degrees_for(spec, n, run_seed);
        if (net.is_clique()) {
          auto r = realize::realize_upper_envelope_ncc1(net, b.input);
          b.realizable = r.realizable;
          b.stored = std::move(r.stored);
        } else {
          auto r = realize::realize_degrees_implicit(
              net, b.input, realize::DegreeMode::kEnvelope);
          b.realizable = r.realizable;
          b.stored = std::move(r.stored);
        }
        break;
      }
      case Algo::kImplicitDegree: {
        b.input = degrees_for(spec, n, run_seed);
        auto r = realize::realize_degrees_implicit(
            net, b.input, realize::DegreeMode::kExact);
        b.realizable = r.realizable;
        b.stored = std::move(r.stored);
        break;
      }
      case Algo::kExplicitDegree: {
        b.input = degrees_for(spec, n, run_seed);
        b.implicit = realize::realize_degrees_implicit(
            net, b.input, realize::DegreeMode::kExact);
        b.realizable = b.implicit.realizable;
        b.stored = b.implicit.stored;
        break;
      }
      case Algo::kTree: {
        b.input = tree_degrees_for(spec, n, run_seed);
        auto r = spec.caterpillar
                     ? realize::realize_tree_caterpillar(net, b.input)
                     : realize::realize_tree_greedy(net, b.input);
        b.realizable = r.realizable;
        b.stored = std::move(r.stored);
        break;
      }
      case Algo::kConnectivity: {
        b.input = thresholds_for(spec, n, run_seed);
        auto r = net.is_clique()
                     ? realize::realize_connectivity_ncc1(net, b.input)
                     : realize::realize_connectivity_ncc0(net, b.input);
        b.realizable = r.realizable;
        b.stored = std::move(r.stored);
        break;
      }
    }
  } catch (const CheckError& e) {
    return finish("stalled", std::string("skipped (build: ") + e.what() + ")",
                  false);
  }
  rec.build_rounds = net.stats().rounds;
  if (!b.realizable)
    return finish("unrealizable", "skipped (input unrealizable)", false);

  // --- Exchange stage ----------------------------------------------------
  orch.arm(sched.exchange);
  try {
    if (algo == Algo::kExplicitDegree) {
      rec.exchange_total = stored_edge_count(b.stored);
      if (crashes_x) {
        auto rx = realize::make_explicit_resilient(
            net, b.implicit, /*retransmit_after=*/4, kMaxAttempts);
        b.adjacency = std::move(rx.result.adjacency);
        rec.exchange_given_up = rx.given_up;
      } else if (loses_x) {
        auto r = realize::make_explicit_reliable(net, b.implicit);
        b.adjacency = std::move(r.adjacency);
      } else {
        auto r = realize::make_explicit(net, b.implicit);
        b.adjacency = std::move(r.adjacency);
      }
    } else {
      ping_sweep(net, b, spec.exchange_tokens, crashes_x, loses_x, rec);
    }
  } catch (const CheckError& e) {
    return finish("stalled",
                  std::string("skipped (exchange: ") + e.what() + ")", false);
  }
  rec.exchange_rounds = net.stats().rounds - rec.build_rounds;

  // --- Validation --------------------------------------------------------
  // Validators walk referee state and may themselves throw (e.g. slot_of
  // on a NodeId a buggy realization invented); record that as a failed
  // run rather than aborting the whole matrix.
  try {
    const realize::Validation v =
        validate_run(net, algo, b, crashes_x, run_seed);
    return finish("ok", v.ok ? "pass" : v.message, v.ok);
  } catch (const CheckError& e) {
    return finish("ok", std::string("validator threw: ") + e.what(), false);
  }
}

MatrixReport run_matrix(std::span<const ScenarioSpec> specs,
                        const RunnerOptions& opt) {
  MatrixReport report;
  report.seed = opt.seed;

  // One scratch pool for the whole matrix (unless the caller supplied
  // one): consecutive runs — across all 5 realization algorithms and the
  // full n sweep — reuse warm wire arenas and histograms instead of
  // re-resizing per Network. Sized so every concurrent run can hold a
  // bundle and still return it to the free list. Allocation strategy only;
  // the report bytes are identical with or without it (tested).
  const unsigned jobs_for_pool = std::max(1u, opt.jobs);
  ncc::ArenaPool local_pool(jobs_for_pool);
  RunnerOptions opt_pooled = opt;
  if (opt_pooled.arena_pool == nullptr) opt_pooled.arena_pool = &local_pool;
  const RunnerOptions& opt_run = opt_pooled;

  // Flatten the matrix into an indexed task list in declarative
  // (spec x algo x n) order. Every run's seed derives only from these
  // declarative inputs (see run_one), and results land at their task
  // index, so the merged report is byte-identical no matter which order —
  // or on which thread — the runs actually execute.
  struct Task {
    const ScenarioSpec* spec;
    Algo algo;
    std::size_t n;
  };
  std::vector<Task> tasks;
  for (const ScenarioSpec& spec : specs) {
    const auto& sweep = opt.n_override.empty() ? spec.n_sweep : opt.n_override;
    for (const Algo algo : opt.algos) {
      for (const std::size_t n : sweep) tasks.push_back({&spec, algo, n});
    }
  }

  std::vector<RunRecord> results(tasks.size());
  std::size_t done = 0;  // guarded by progress_mu
  std::mutex progress_mu;
  auto run_task = [&](std::size_t i) {
    results[i] = run_one(*tasks[i].spec, tasks[i].algo, tasks[i].n, opt_run);
    // Serialize callbacks so a stderr progress printer never interleaves
    // lines from concurrent runs. The completion count is claimed INSIDE
    // the lock: incrementing it before acquiring would let a later
    // finisher report first, so the printer could see 7/12 then 6/12.
    // Under the lock the d values each callback observes are strictly
    // increasing.
    std::scoped_lock lk(progress_mu);
    const std::size_t d = ++done;
    if (opt.progress) opt.progress(d, tasks.size(), results[i]);
  };

  const unsigned jobs = std::max(1u, opt.jobs);
  if (jobs == 1 || tasks.size() <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_task(i);
  } else {
    auto& exec = ncc::Executor::instance();
    const auto lease = exec.lease(jobs);
    exec.parallel_for(lease, tasks.size(), run_task);
  }

  // Merge at task order — declarative order by construction.
  std::size_t idx = 0;
  for (const ScenarioSpec& spec : specs) {
    ScenarioReport sr;
    sr.name = spec.name;
    sr.description = spec.description;
    const auto& sweep = opt.n_override.empty() ? spec.n_sweep : opt.n_override;
    sr.runs.reserve(opt.algos.size() * sweep.size());
    for (std::size_t k = 0; k < opt.algos.size() * sweep.size(); ++k) {
      sr.runs.push_back(std::move(results[idx++]));
    }
    report.scenarios.push_back(std::move(sr));
  }
  return report;
}

}  // namespace dgr::scenario
