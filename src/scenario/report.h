// Deterministic JSON / CSV serialization of scenario reports.
//
// The serializers are byte-exact functions of the MatrixReport: fixed key
// order, integer-only numbers (loss levels are permille, never floats),
// LF newlines, no locale dependence. Combined with the runner's
// determinism contract this makes `same seed => byte-identical file` hold
// at any thread count and under either round scheduler — which is exactly
// what the determinism tests diff. Execution-strategy telemetry
// (dense/sparse round counts) is deliberately absent from the surface.
#pragma once

#include <string>

#include "scenario/runner.h"

namespace dgr::scenario {

/// Pretty-printed JSON (2-space indent), schema "dgr-scenario-report-v1".
std::string to_json(const MatrixReport& report);

/// One CSV row per run (no telemetry intervals); header row first.
std::string to_csv(const MatrixReport& report);

/// Human-oriented per-run summary table (util/table); one line per run.
std::string to_table(const MatrixReport& report);

}  // namespace dgr::scenario
