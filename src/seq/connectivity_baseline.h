// Sequential baseline for the §6 connectivity-threshold problem, in the
// style of Frank–Chou [15]: a hub construction that 2-approximates the
// minimum edge count, plus the lower bound and an independent max-flow
// verifier used by tests and benches.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace dgr::seq {

/// Any graph meeting the thresholds has at least ceil(sum rho / 2) edges
/// (every v needs degree >= rho(v)).
std::uint64_t connectivity_edge_lower_bound(
    const graph::ThresholdVector& rho);

/// Hub construction: w = argmax rho; every other v connects to w plus
/// rho(v)-1 further nodes. Satisfies Conn(u,v) >= min(rho(u), rho(v)) with
/// at most sum(rho) <= 2*OPT edges. Requires rho(v) <= n-1 for all v.
graph::Graph connectivity_baseline(const graph::ThresholdVector& rho);

/// Independent verifier: checks Conn(u, v) >= min(rho(u), rho(v)) by
/// max-flow. Checks all pairs when n <= pair_exhaustive_limit, otherwise
/// `samples` random pairs plus the extremal ones. Returns the first failing
/// pair, or nullopt if everything holds.
std::optional<std::pair<graph::Vertex, graph::Vertex>> find_threshold_violation(
    const graph::Graph& g, const graph::ThresholdVector& rho, Rng& rng,
    std::size_t pair_exhaustive_limit = 64, std::size_t samples = 256);

}  // namespace dgr::seq
