#include "seq/havel_hakimi.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace dgr::seq {

namespace {

// Core loop shared by the test and the builder. Repeatedly satisfies a
// vertex of maximum residual degree by connecting it to the next-largest
// residuals (Theorem 9). `connect` receives each edge; return false from the
// loop means not graphic.
template <typename OnEdge>
bool hh_run(const graph::DegreeSequence& d, OnEdge&& connect) {
  using Entry = std::pair<std::uint64_t, std::uint32_t>;  // (residual, vertex)
  std::priority_queue<Entry> pq;
  const std::size_t n = d.size();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (d[v] + 1 > n) return false;  // degree too large for a simple graph
    if (d[v] > 0) pq.push({d[v], v});
  }
  std::vector<Entry> taken;
  while (!pq.empty()) {
    const auto [dv, v] = pq.top();
    pq.pop();
    if (pq.size() < dv) return false;  // not enough partners left
    taken.clear();
    taken.reserve(dv);
    for (std::uint64_t i = 0; i < dv; ++i) {
      taken.push_back(pq.top());
      pq.pop();
    }
    for (auto& [du, u] : taken) {
      connect(v, u);
      if (--du > 0) pq.push({du, u});
    }
  }
  return true;
}

}  // namespace

bool hh_graphic(graph::DegreeSequence d) {
  return hh_run(d, [](std::uint32_t, std::uint32_t) {});
}

std::optional<graph::Graph> hh_realize(const graph::DegreeSequence& d) {
  graph::Graph g(d.size());
  const bool ok = hh_run(d, [&g](std::uint32_t v, std::uint32_t u) {
    g.add_edge(v, u);
  });
  if (!ok) return std::nullopt;
  return g;
}

}  // namespace dgr::seq
