#include "seq/greedy_tree.h"

#include <algorithm>
#include <functional>

#include "graph/tree_metrics.h"
#include "util/check.h"

namespace dgr::seq {

std::optional<graph::Graph> greedy_tree(graph::DegreeSequence d) {
  if (!graph::tree_realizable(d)) return std::nullopt;
  std::sort(d.begin(), d.end(), std::greater<>());
  const std::size_t n = d.size();
  graph::Graph g(n);
  if (n == 1) return g;

  // BFS-order attachment: vertex i (in sorted order) adopts the next
  // unattached vertices as children; the root adopts d[0], everyone else
  // d[i] - 1 (one edge goes to the parent).
  std::size_t next_child = 1;
  for (std::size_t i = 0; i < n && next_child < n; ++i) {
    const std::uint64_t want = d[i] - (i == 0 ? 0 : 1);
    for (std::uint64_t c = 0; c < want; ++c) {
      DGR_CHECK_MSG(next_child < n, "greedy tree ran out of vertices");
      g.add_edge(static_cast<graph::Vertex>(i),
                 static_cast<graph::Vertex>(next_child++));
    }
  }
  DGR_CHECK_MSG(next_child == n, "greedy tree left vertices unattached");
  return g;
}

std::optional<std::uint64_t> min_tree_diameter(
    const graph::DegreeSequence& d) {
  auto t = greedy_tree(d);
  if (!t) return std::nullopt;
  return graph::tree_diameter(*t);
}

}  // namespace dgr::seq
