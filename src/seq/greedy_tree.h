// Sequential greedy tree T_G of Smith–Székely–Wang [30] (paper §5,
// Algorithm 5's sequential ancestor): place high-degree vertices as close to
// the root as possible. Lemma 15: T_G attains the minimum diameter over all
// trees realizing the degree sequence.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/degree_sequence.h"
#include "graph/graph.h"

namespace dgr::seq {

/// Builds T_G for a tree-realizable sequence (vertex labels are positions in
/// the *sorted non-increasing* order, matching the distributed output);
/// nullopt if not tree-realizable.
std::optional<graph::Graph> greedy_tree(graph::DegreeSequence d);

/// Minimum possible diameter for the sequence = diameter of T_G;
/// nullopt if not tree-realizable.
std::optional<std::uint64_t> min_tree_diameter(
    const graph::DegreeSequence& d);

}  // namespace dgr::seq
