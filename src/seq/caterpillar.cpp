#include "seq/caterpillar.h"

#include <algorithm>
#include <functional>

#include "util/check.h"

namespace dgr::seq {

std::optional<graph::Graph> caterpillar_tree(graph::DegreeSequence d) {
  if (!graph::tree_realizable(d)) return std::nullopt;
  std::sort(d.begin(), d.end(), std::greater<>());
  const std::size_t n = d.size();
  graph::Graph g(n);
  if (n == 1) return g;

  // k non-leaves occupy positions [0, k); the spine is x_0 .. x_k (the last
  // spine vertex is the first leaf). Each x_i then takes d_i - 2 leaves
  // (d_0 - 1 for the head), matching Algorithm 4's prefix-sum layout.
  const std::size_t k = static_cast<std::size_t>(
      std::count_if(d.begin(), d.end(),
                    [](std::uint64_t di) { return di > 1; }));
  if (k == 0) {
    // Only possible for n == 2 (two degree-1 vertices).
    DGR_CHECK(n == 2);
    g.add_edge(0, 1);
    return g;
  }
  for (std::size_t i = 0; i < k; ++i)
    g.add_edge(static_cast<graph::Vertex>(i),
               static_cast<graph::Vertex>(i + 1));

  std::size_t next_leaf = k + 1;  // position k is spine-attached already
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t want = d[i] - (i == 0 ? 1 : 2);
    for (std::uint64_t c = 0; c < want; ++c) {
      DGR_CHECK_MSG(next_leaf < n, "caterpillar ran out of leaves");
      g.add_edge(static_cast<graph::Vertex>(i),
                 static_cast<graph::Vertex>(next_leaf++));
    }
  }
  DGR_CHECK_MSG(next_leaf == n, "caterpillar left leaves unattached");
  return g;
}

}  // namespace dgr::seq
