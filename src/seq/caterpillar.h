// Sequential caterpillar construction — the baseline for the paper's first
// tree-realization algorithm (Algorithm 4): non-leaf vertices form a spine
// in non-increasing degree order; leaves hang off the spine. Produces the
// *maximum*-diameter realization of the sequence.
#pragma once

#include <optional>

#include "graph/degree_sequence.h"
#include "graph/graph.h"

namespace dgr::seq {

/// Builds the caterpillar for a tree-realizable sequence (vertex labels are
/// positions in the sorted non-increasing order); nullopt otherwise.
std::optional<graph::Graph> caterpillar_tree(graph::DegreeSequence d);

}  // namespace dgr::seq
