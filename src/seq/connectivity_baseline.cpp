#include "seq/connectivity_baseline.h"

#include <algorithm>
#include <numeric>

#include "graph/maxflow.h"
#include "util/check.h"

namespace dgr::seq {

std::uint64_t connectivity_edge_lower_bound(
    const graph::ThresholdVector& rho) {
  const std::uint64_t sum =
      std::accumulate(rho.begin(), rho.end(), std::uint64_t{0});
  return (sum + 1) / 2;
}

graph::Graph connectivity_baseline(const graph::ThresholdVector& rho) {
  const std::size_t n = rho.size();
  graph::Graph g(n);
  if (n <= 1) return g;
  const auto w = static_cast<graph::Vertex>(
      std::max_element(rho.begin(), rho.end()) - rho.begin());
  for (graph::Vertex v = 0; v < n; ++v) {
    if (v == w) continue;
    DGR_CHECK_MSG(rho[v] + 1 <= n, "rho(v) must be <= n-1");
    g.add_edge(v, w);
    // rho(v) - 1 further partners: the lowest-numbered vertices != v, w.
    std::uint64_t added = 0;
    for (graph::Vertex u = 0; u < n && added + 1 < rho[v]; ++u) {
      if (u == v || u == w) continue;
      if (g.add_edge(v, u)) ++added;
      else if (g.has_edge(v, u)) ++added;  // already built from the far side
    }
  }
  return g;
}

std::optional<std::pair<graph::Vertex, graph::Vertex>> find_threshold_violation(
    const graph::Graph& g, const graph::ThresholdVector& rho, Rng& rng,
    std::size_t pair_exhaustive_limit, std::size_t samples) {
  const std::size_t n = g.n();
  DGR_CHECK(rho.size() == n);
  if (n < 2) return std::nullopt;
  graph::EdgeConnectivity solver(g);

  auto violates = [&](graph::Vertex a, graph::Vertex b) {
    const std::uint64_t need = std::min(rho[a], rho[b]);
    return solver.query(a, b) < need;
  };

  if (n <= pair_exhaustive_limit) {
    for (graph::Vertex a = 0; a < n; ++a)
      for (graph::Vertex b = a + 1; b < n; ++b)
        if (violates(a, b)) return std::make_pair(a, b);
    return std::nullopt;
  }

  // Extremal pair: the two largest thresholds are the hardest to satisfy.
  std::vector<graph::Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](graph::Vertex a, graph::Vertex b) { return rho[a] > rho[b]; });
  if (violates(order[0], order[1])) return std::make_pair(order[0], order[1]);

  for (std::size_t s = 0; s < samples; ++s) {
    const auto a = static_cast<graph::Vertex>(rng.below(n));
    auto b = static_cast<graph::Vertex>(rng.below(n));
    if (a == b) b = (b + 1) % static_cast<graph::Vertex>(n);
    if (violates(a, b)) return std::make_pair(a, b);
  }
  return std::nullopt;
}

}  // namespace dgr::seq
