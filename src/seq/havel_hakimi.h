// The classical sequential Havel–Hakimi algorithm (paper §3.3) — both the
// graphic test and a realizing-graph construction. Serves as the baseline
// the distributed algorithms are derived from and as a correctness oracle.
#pragma once

#include <optional>

#include "graph/degree_sequence.h"
#include "graph/graph.h"

namespace dgr::seq {

/// Havel–Hakimi graphic test (independent of the Erdős–Gallai test in
/// graph/degree_sequence.h; tests cross-check them). O(m log n).
bool hh_graphic(graph::DegreeSequence d);

/// Builds a graph realizing d (vertex i has degree d[i]) or nullopt if d is
/// not graphic. O(m log n) via a max-heap of residual degrees.
std::optional<graph::Graph> hh_realize(const graph::DegreeSequence& d);

}  // namespace dgr::seq
