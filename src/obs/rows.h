// One name->value snapshot shape for every stats struct in the stack.
//
// Before this layer, NetStats, ServiceStats/CacheStats, and the bench/
// example binaries each reinvented "dump my counters": hand-rolled
// ostringstream JSON in dgr_serve, Table rows in dgr_scenarios, benchmark
// counter maps in bench_common. A Row is the common currency: each stats
// struct gets one rows() adapter, and the serializers (rows_to_json,
// rows_to_text) and consumers (benchmark counters, the exporter's JSON
// snapshot) are written once against std::vector<Row>.
//
// serve's adapters are declared here against forward declarations and
// defined in serve/service.cpp, so obs never links against serve headers
// and the dependency arrow stays serve -> obs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ncc/arena.h"
#include "ncc/executor.h"
#include "ncc/stats.h"

namespace dgr::serve {
struct ServiceStats;
struct CacheStats;
}  // namespace dgr::serve

namespace dgr::obs {

struct Row {
  std::string name;
  std::int64_t value = 0;
};

/// NetStats counters, phase nanos (only when nonzero), and scope_rounds
/// entries as "scope_rounds.<name>".
std::vector<Row> rows(const ncc::NetStats& s);
std::vector<Row> rows(const ncc::Executor::Stats& s);
std::vector<Row> rows(const ncc::ArenaPool::Stats& s);
// Defined in serve/service.cpp (see header comment).
std::vector<Row> rows(const serve::ServiceStats& s);
std::vector<Row> rows(const serve::CacheStats& s);

/// `{"a":1,"b":2}` — names are identifier-shaped by construction, so no
/// escaping; byte-stable for fixed values.
std::string rows_to_json(const std::vector<Row>& rows);

/// Aligned two-column text ("  name  value\n" lines) for CLI dumps.
std::string rows_to_text(const std::vector<Row>& rows);

}  // namespace dgr::obs
