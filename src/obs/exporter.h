// obs::Exporter — live telemetry export over a unix-domain socket.
//
// Serves the process-wide metrics registry to external observers without a
// rebuild, in the CCP datapath shape: a scrape interface for snapshots and
// a subscription stream the simulation publishes per-round events into.
//
// Protocol (line-oriented; deliberately curl/`dgr_top`-friendly):
//   client connects and sends one request line:
//     "metrics\n" -> one Prometheus text exposition of the registry, close.
//     "json\n"    -> one JSON snapshot of the registry, close.
//     "stream\n"  -> subscribe: every publish()ed NDJSON line is forwarded
//                    until either side closes.
//   Anything else (including an empty line) is answered with the
//   Prometheus exposition, so `curl --unix-socket PATH http://x/` works.
//
// Never perturbs the simulation: publish() is called from the hot
// publisher thread (the scenario runner's referee context), so it must not
// block — subscriber sockets are non-blocking, and a subscriber that can't
// keep up (full send buffer) is disconnected and counted
// (dgr_obs_stream_dropped_total) rather than waited on. Snapshot requests
// are served entirely on the exporter's own accept thread.
//
// Lifecycle: the constructor binds and starts the accept thread; the
// destructor wakes it over a self-pipe, closes every client, and unlinks
// the socket path. Connect/disconnect at any point must not affect a
// running simulation's transcript (tested in tests/test_obs.cpp).
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"

namespace dgr::obs {

class Exporter {
 public:
  /// Binds a listening unix socket at `path` (an existing socket file is
  /// replaced) and starts serving `reg`. Throws std::system_error when the
  /// bind fails.
  explicit Exporter(std::string path, Registry& reg = Registry::instance());
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Forward one event line to every live "stream" subscriber; a trailing
  /// '\n' is appended. Non-blocking: lagging subscribers are dropped, and
  /// with no subscribers this is one mutex acquire on an empty list.
  void publish(const std::string& line);

  const std::string& path() const { return path_; }

 private:
  struct Impl;
  void serve_main();

  std::string path_;
  Registry& reg_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dgr::obs
