#include "obs/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace dgr::obs {

// ---------------------------------------------------------------------------
// Thread shard assignment.
//
// A free-list of exclusive shard indices [0, kShards-1) guarded by a mutex.
// Each thread claims a slot the first time it touches any metric and holds
// it until thread exit, where the slot returns to the free list. Handoff
// safety: the releasing thread's last relaxed store to a cell and the
// acquiring thread's first access are separated by the slot mutex
// (release-side unlock happens-before acquire-side lock), so a recycled
// slot never loses an update. If all exclusive slots are taken the thread
// shares the overflow shard (kShards - 1) and cell_add falls back to
// fetch_add there.
// ---------------------------------------------------------------------------
namespace {

struct ShardSlots {
  std::mutex mu;
  bool taken[kShards - 1] = {};
};

ShardSlots& slots() {
  // Immortal: thread_local SlotLease destructors of late-exiting threads
  // (pooled executor workers joined after main()) must still find a live
  // mutex here, so this is never destroyed.
  static ShardSlots* s = new ShardSlots;
  return *s;
}

struct SlotLease {
  std::size_t idx;
  SlotLease() {
    ShardSlots& s = slots();
    std::lock_guard<std::mutex> lock(s.mu);
    for (std::size_t i = 0; i < kShards - 1; ++i) {
      if (!s.taken[i]) {
        s.taken[i] = true;
        idx = i;
        return;
      }
    }
    idx = kShards - 1;  // overflow shard, shared
  }
  ~SlotLease() {
    if (idx + 1 == kShards) return;
    ShardSlots& s = slots();
    std::lock_guard<std::mutex> lock(s.mu);
    s.taken[idx] = false;
  }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;
};

}  // namespace

std::size_t thread_shard() {
  thread_local SlotLease lease;
  return lease.idx;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      cells_(new Cell[(bounds_.size() + 1) * kShards]),
      sum_(new Cell[kShards]) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("histogram bounds must strictly increase");
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t b = 0; b < out.size(); ++b)
    out[b] = detail::cell_sum(&cells_[b * kShards]);
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= bounds_.size(); ++b)
    total += detail::cell_sum(&cells_[b * kShards]);
  return total;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::atomic<bool> Registry::timing_{false};

Registry& Registry::instance() {
  // Immortal (never destroyed): resolved Counter*/Gauge* pointers are held
  // by process-lifetime services (the executor, arena pools) that may fold
  // a last update during static destruction after main().
  static Registry* r = new Registry;
  return *r;
}

Registry::Entry& Registry::entry_of(const std::string& name, MetricType type) {
  auto [it, inserted] = metrics_.try_emplace(name);
  if (!inserted && it->second.type != type)
    throw std::logic_error("metric '" + name + "' re-registered with a different type");
  if (inserted) it->second.type = type;
  return it->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_of(name, MetricType::kCounter);
  if (!e.counter) {
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_of(name, MetricType::kGauge);
  if (!e.gauge && !e.callback) {
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  if (!e.gauge)
    throw std::logic_error("metric '" + name + "' is a callback gauge");
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_of(name, MetricType::kHistogram);
  if (!e.histogram) {
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

void Registry::gauge_callback(const std::string& name, const std::string& help,
                              std::function<std::int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_of(name, MetricType::kGauge);
  if (e.gauge)
    throw std::logic_error("metric '" + name + "' is a stored gauge");
  e.help = help;
  e.callback = std::move(fn);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.samples.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    Sample s;
    s.name = name;
    s.help = e.help;
    s.type = e.type;
    switch (e.type) {
      case MetricType::kCounter:
        s.value = static_cast<std::int64_t>(e.counter->value());
        break;
      case MetricType::kGauge:
        s.value = e.callback ? e.callback() : e.gauge->value();
        break;
      case MetricType::kHistogram:
        s.bounds = e.histogram->bounds();
        s.buckets = e.histogram->bucket_counts();
        s.sum = e.histogram->sum();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Exposition formats
// ---------------------------------------------------------------------------

namespace {

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const Sample& s : snap.samples) {
    out += "# HELP " + s.name + " " + s.help + "\n";
    out += "# TYPE " + s.name + " ";
    out += type_name(s.type);
    out += "\n";
    if (s.type != MetricType::kHistogram) {
      out += s.name + " ";
      append_i64(out, s.value);
      out += "\n";
      continue;
    }
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      cum += s.buckets[b];
      out += s.name + "_bucket{le=\"";
      if (b < s.bounds.size())
        append_u64(out, s.bounds[b]);
      else
        out += "+Inf";
      out += "\"} ";
      append_u64(out, cum);
      out += "\n";
    }
    out += s.name + "_sum ";
    append_u64(out, s.sum);
    out += "\n";
    out += s.name + "_count ";
    append_u64(out, cum);
    out += "\n";
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const Sample& s : snap.samples) {
    if (!first) out += ",";
    first = false;
    // Metric names are [a-zA-Z0-9_:] by construction; no escaping needed.
    out += "\"" + s.name + "\":";
    if (s.type != MetricType::kHistogram) {
      append_i64(out, s.value);
      continue;
    }
    out += "{\"bounds\":[";
    for (std::size_t b = 0; b < s.bounds.size(); ++b) {
      if (b) out += ",";
      append_u64(out, s.bounds[b]);
    }
    out += "],\"buckets\":[";
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (b) out += ",";
      append_u64(out, s.buckets[b]);
      count += s.buckets[b];
    }
    out += "],\"sum\":";
    append_u64(out, s.sum);
    out += ",\"count\":";
    append_u64(out, count);
    out += "}";
  }
  out += "}";
  return out;
}

std::uint64_t mono_time_ns() {
  // Feeds latency metrics only, never a transcript; call sites gate on
  // Registry::timing_enabled(). det-ok: clock
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace dgr::obs
