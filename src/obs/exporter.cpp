#include "obs/exporter.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

namespace dgr::obs {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Blocking full write with EINTR retry; returns false on any other error
/// (the caller closes the socket — a scrape client that died mid-response
/// is not our problem).
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one request line (up to '\n' or EOF) with a short poll timeout so
/// a silent client cannot park the accept thread.
std::string read_request_line(int fd) {
  std::string line;
  char c = 0;
  for (int i = 0; i < 256; ++i) {
    struct pollfd pfd {fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/500) <= 0) break;
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) break;
    if (c == '\n') break;
    if (c != '\r') line.push_back(c);
  }
  return line;
}

}  // namespace

struct Exporter::Impl {
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};  // self-pipe: destructor -> accept thread
  std::thread thread;

  std::mutex mu;  // guards subscribers + counters below
  std::vector<int> subscribers;
  bool stopping = false;

  // Served over the same registry as everything else.
  Counter* scrapes = nullptr;
  Counter* stream_lines = nullptr;
  Counter* stream_dropped = nullptr;
};

Exporter::Exporter(std::string path, Registry& reg)
    : path_(std::move(path)), reg_(reg), impl_(std::make_unique<Impl>()) {
  impl_->scrapes = &reg_.counter("dgr_obs_scrapes_total",
                                 "Snapshot requests served by the exporter");
  impl_->stream_lines = &reg_.counter(
      "dgr_obs_stream_lines_total", "Event lines fanned out to subscribers");
  impl_->stream_dropped =
      &reg_.counter("dgr_obs_stream_dropped_total",
                    "Subscribers disconnected for falling behind");

  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0)
    throw std::system_error(errno, std::generic_category(), "socket");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    ::close(impl_->listen_fd);
    throw std::system_error(ENAMETOOLONG, std::generic_category(), path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  ::unlink(path_.c_str());
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl_->listen_fd, 8) != 0) {
    const int err = errno;
    ::close(impl_->listen_fd);
    throw std::system_error(err, std::generic_category(), "bind " + path_);
  }

  if (::pipe(impl_->wake_pipe) != 0) {
    const int err = errno;
    ::close(impl_->listen_fd);
    ::unlink(path_.c_str());
    throw std::system_error(err, std::generic_category(), "pipe");
  }

  impl_->thread = std::thread([this] { serve_main(); });
}

Exporter::~Exporter() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  // Wake the accept thread's poll; content is irrelevant.
  const char byte = 0;
  (void)!::write(impl_->wake_pipe[1], &byte, 1);
  impl_->thread.join();

  std::lock_guard<std::mutex> lock(impl_->mu);
  for (int fd : impl_->subscribers) ::close(fd);
  impl_->subscribers.clear();
  ::close(impl_->listen_fd);
  ::close(impl_->wake_pipe[0]);
  ::close(impl_->wake_pipe[1]);
  ::unlink(path_.c_str());
}

void Exporter::serve_main() {
  for (;;) {
    struct pollfd pfds[2] = {{impl_->listen_fd, POLLIN, 0},
                             {impl_->wake_pipe[0], POLLIN, 0}};
    if (::poll(pfds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      if (impl_->stopping) return;
    }
    if (!(pfds[0].revents & POLLIN)) continue;

    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (fd < 0) continue;

    const std::string req = read_request_line(fd);
    if (req == "stream") {
      set_nonblocking(fd);
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->subscribers.push_back(fd);
      continue;  // kept open; publish() feeds it
    }

    // Snapshot request: serialize outside any Impl lock (registry has its
    // own), answer, close. "json" gets the JSON snapshot; everything else
    // (including HTTP-ish lines from curl) gets the Prometheus text.
    const Snapshot snap = reg_.snapshot();
    const std::string body =
        req == "json" ? to_json(snap) + "\n" : to_prometheus(snap);
    impl_->scrapes->add(1);
    write_all(fd, body.data(), body.size());
    ::close(fd);
  }
}

void Exporter::publish(const std::string& line) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->subscribers.empty()) return;
  std::vector<int> live;
  live.reserve(impl_->subscribers.size());
  for (int fd : impl_->subscribers) {
    // Two non-blocking sends (line + '\n'); any failure — including a full
    // send buffer — drops the subscriber rather than stalling the caller.
    bool ok = true;
    ssize_t n = ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
    ok = n == static_cast<ssize_t>(line.size());
    if (ok) {
      n = ::send(fd, "\n", 1, MSG_NOSIGNAL);
      ok = n == 1;
    }
    if (ok) {
      live.push_back(fd);
      impl_->stream_lines->add(1);
    } else {
      ::close(fd);
      impl_->stream_dropped->add(1);
    }
  }
  impl_->subscribers.swap(live);
}

}  // namespace dgr::obs
