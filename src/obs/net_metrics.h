// obs::NetMetrics — a TelemetrySink that folds the engine's per-round
// RoundSamples into the process-wide metrics registry, giving the CCP-style
// datapath export shape: cumulative message counters, drop events, and an
// EWMA'd delivery rate an external controller can steer from.
//
// Attach with Network::set_metrics(&m) (the dedicated metrics slot, so it
// composes with a scenario orchestrator on the set_telemetry slot). on_round
// runs in referee context — single-threaded per Network — so the EWMA state
// needs no synchronization; the registry cells it writes are sharded and
// safe against concurrent Networks sharing one registry.
#pragma once

#include <cstdint>

#include "ncc/telemetry.h"
#include "obs/metrics.h"

namespace dgr::obs {

class NetMetrics : public ncc::TelemetrySink {
 public:
  /// Resolves (get-or-create) the dgr_net_* metrics in `reg`. Multiple
  /// NetMetrics instances aggregate into the same counters; the EWMA gauges
  /// are exported as signed deltas so concurrent instances sum sensibly.
  explicit NetMetrics(Registry& reg = Registry::instance());
  ~NetMetrics() override;

  void on_round(const ncc::RoundSample& smp) override;

  /// EWMA (alpha = 1/8) of per-round delivered messages, fixed-point x1000.
  std::uint64_t delivered_per_round_ewma_x1000() const { return ewma_x1000_; }
  /// EWMA (alpha = 1/8) of delivered/sent per round, parts-per-million.
  std::uint64_t delivery_ratio_ewma_ppm() const { return ratio_ppm_; }

 private:
  // Cumulative counters (shared across instances).
  Counter* rounds_;
  Counter* sent_;
  Counter* delivered_;
  Counter* bounced_;
  Counter* dropped_;
  Counter* drop_events_;  ///< rounds with >= 1 dropped message
  Counter* phase_body_ns_;
  Counter* phase_sort_ns_;
  Counter* phase_rng_ns_;
  Counter* phase_placement_ns_;
  Counter* phase_learn_ns_;
  Histogram* round_sent_;  ///< per-round sent-message distribution

  // Instance-local smoothed state, exported to shared gauges as deltas
  // against the last exported value (so teardown subtracts cleanly).
  Gauge* ewma_gauge_;
  Gauge* ratio_gauge_;
  Gauge* frontier_gauge_;
  Gauge* crashed_gauge_;
  std::uint64_t ewma_x1000_ = 0;
  std::uint64_t ratio_ppm_ = 0;
  std::int64_t exported_ewma_ = 0;
  std::int64_t exported_ratio_ = 0;
  std::int64_t exported_frontier_ = 0;
  std::int64_t exported_crashed_ = 0;
  bool primed_ = false;
};

}  // namespace dgr::obs
