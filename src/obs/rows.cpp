#include "obs/rows.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dgr::obs {

namespace {
void push(std::vector<Row>& out, const char* name, std::uint64_t v) {
  out.push_back(Row{name, static_cast<std::int64_t>(v)});
}
}  // namespace

std::vector<Row> rows(const ncc::NetStats& s) {
  std::vector<Row> out;
  push(out, "rounds", s.rounds);
  push(out, "messages_sent", s.messages_sent);
  push(out, "messages_delivered", s.messages_delivered);
  push(out, "messages_bounced", s.messages_bounced);
  push(out, "messages_dropped", s.messages_dropped);
  push(out, "max_send_in_round", s.max_send_in_round);
  push(out, "max_recv_in_round", s.max_recv_in_round);
  if (s.phase_ns.total() > 0) {
    push(out, "phase_body_ns", s.phase_ns.body);
    push(out, "phase_sort_ns", s.phase_ns.sort);
    push(out, "phase_rng_ns", s.phase_ns.rng);
    push(out, "phase_placement_ns", s.phase_ns.placement);
    push(out, "phase_learn_ns", s.phase_ns.learn);
  }
  for (const auto& [scope, rounds] : s.scope_rounds)
    out.push_back(Row{"scope_rounds." + scope,
                      static_cast<std::int64_t>(rounds)});
  return out;
}

std::vector<Row> rows(const ncc::Executor::Stats& s) {
  std::vector<Row> out;
  push(out, "jobs", s.jobs);
  push(out, "tasks", s.tasks);
  push(out, "caller_tasks", s.caller_tasks);
  push(out, "worker_tasks", s.worker_tasks);
  push(out, "workers", s.workers);
  push(out, "clients", s.clients);
  return out;
}

std::vector<Row> rows(const ncc::ArenaPool::Stats& s) {
  std::vector<Row> out;
  push(out, "acquires", s.acquires);
  push(out, "reuses", s.reuses);
  push(out, "dropped", s.dropped);
  return out;
}

std::string rows_to_json(const std::vector<Row>& rows) {
  std::string out = "{";
  bool first = true;
  for (const Row& r : rows) {
    if (!first) out += ",";
    first = false;
    out += "\"" + r.name + "\":";
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, r.value);
    out += buf;
  }
  out += "}";
  return out;
}

std::string rows_to_text(const std::vector<Row>& rows) {
  std::size_t width = 0;
  for (const Row& r : rows) width = std::max(width, r.name.size());
  std::string out;
  for (const Row& r : rows) {
    out += "  " + r.name;
    out.append(width - r.name.size() + 2, ' ');
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, r.value);
    out += buf;
    out += "\n";
  }
  return out;
}

}  // namespace dgr::obs
