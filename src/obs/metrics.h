// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with per-thread sharded cells, snapshotted on demand.
//
// Design goals, in order:
//   1. Hot-path cost: an increment on an exclusively-owned shard is one
//      relaxed atomic load + one relaxed atomic store on a cache line no
//      other thread writes — no lock prefix, no fence, no false sharing.
//      Each OS thread is assigned a stable shard index on first use
//      (thread_shard()); shards are recycled when threads exit, and the
//      mutex-guarded assignment happens once per thread, never per update.
//      Threads beyond the shard table share one overflow cell and fall
//      back to fetch_add there, trading a lock prefix for correctness.
//   2. Snapshot on demand: value() sums the shards with relaxed loads.
//      Concurrent updates may or may not be included — a snapshot is a
//      point-in-time observation, not a barrier — but every update is
//      eventually visible and nothing is ever lost or double-counted.
//   3. Determinism: nothing here feeds a transcript. Metrics are written
//      from referee context or from cold control paths; the engine's
//      bit-identical-transcript contract is tested with the whole registry
//      attached and detached (tests/test_obs.cpp).
//
// Registration is get-or-create by name (mutex-guarded, cold): call sites
// resolve a Counter*/Gauge*/Histogram* once and keep the pointer. Metrics
// live for the registry's lifetime — the process, for instance() — so the
// pointers never dangle. Names follow the Prometheus convention
// (dgr_<subsystem>_<what>_<unit>[_total]); snapshot() returns metrics in
// lexicographic name order, so both exposition formats are byte-stable for
// a fixed set of values.
//
// Wall-clock inputs (latency histograms) are gated process-wide behind
// set_timing(true) — mirroring the engine's phase-timing rule that a
// detached run reads no clocks at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dgr::obs {

/// Shards per metric. 31 exclusive cells + 1 shared overflow cell: wider
/// than any sane worker-pool width in this codebase (Config::threads plus
/// a handful of driver/exporter threads), while keeping a histogram's
/// footprint modest (shards x buckets x 8 B).
inline constexpr std::size_t kShards = 32;

/// This thread's stable shard index in [0, kShards). Indices below
/// kShards - 1 are exclusively owned while the thread lives (released for
/// reuse at thread exit); kShards - 1 is the shared overflow shard.
std::size_t thread_shard();

/// One padded counter cell. Alignment keeps each shard on its own cache
/// line so two threads' increments never ping-pong a line.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};

namespace detail {
/// Sharded add: exclusive shards take the single relaxed load+store fast
/// path (one writer per cell by construction); the overflow shard is
/// shared, so it pays a fetch_add.
inline void cell_add(Cell* cells, std::uint64_t d) {
  const std::size_t s = thread_shard();
  std::atomic<std::uint64_t>& c = cells[s].v;
  if (s + 1 == kShards) [[unlikely]] {
    c.fetch_add(d, std::memory_order_relaxed);
  } else {
    c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
}

inline std::uint64_t cell_sum(const Cell* cells) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kShards; ++i)
    total += cells[i].v.load(std::memory_order_relaxed);
  return total;
}
}  // namespace detail

/// Monotone counter. add() is wait-free; value() is a relaxed sum.
class Counter {
 public:
  void add(std::uint64_t d = 1) { detail::cell_add(cells_, d); }
  std::uint64_t value() const { return detail::cell_sum(cells_); }

 private:
  Cell cells_[kShards];
};

/// Up/down gauge, held as a signed sum of sharded deltas so concurrent
/// instances (several ArenaPools, several caches) aggregate correctly:
/// each instance adds its deltas and subtracts them on teardown, and the
/// gauge reads as the live total. set() is intentionally absent — a
/// last-writer-wins store per instance would make the exported value
/// depend on teardown order.
class Gauge {
 public:
  void add(std::int64_t d) {
    detail::cell_add(cells_, static_cast<std::uint64_t>(d));
  }
  void sub(std::int64_t d) { add(-d); }
  /// Signed sum (unsigned wraparound is two's-complement exact).
  std::int64_t value() const {
    return static_cast<std::int64_t>(detail::cell_sum(cells_));
  }

 private:
  Cell cells_[kShards];
};

/// Fixed-bucket histogram: cumulative-on-read counts for `bounds` upper
/// bucket edges (a value lands in the first bucket whose bound is >= it),
/// one implicit +inf bucket, and a running sum. Bucket edges are fixed at
/// registration; observe() is a linear scan over them (bucket counts here
/// are small — latency decades, batch sizes) plus two sharded adds.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v) {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    detail::cell_add(&cells_[b * kShards], 1);
    detail::cell_add(sum_.get(), v);
  }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds().size() is +inf.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  std::uint64_t sum() const { return detail::cell_sum(sum_.get()); }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<Cell[]> cells_;  // (bounds + 1) x kShards, bucket-major
  std::unique_ptr<Cell[]> sum_;    // kShards
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time reading of one metric (see Registry::snapshot).
struct Sample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::int64_t value = 0;  ///< counter/gauge reading
  // Histogram payload (empty otherwise).
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts, +inf last
  std::uint64_t sum = 0;
};

struct Snapshot {
  std::vector<Sample> samples;  ///< lexicographic by name
};

/// Prometheus text exposition (HELP/TYPE lines, histogram as cumulative
/// _bucket{le=...}/_sum/_count series). Byte-stable for fixed values.
std::string to_prometheus(const Snapshot& snap);

/// One JSON object keyed by metric name; histograms nest bounds/buckets/
/// sum/count. Byte-stable for fixed values.
std::string to_json(const Snapshot& snap);

/// Name -> metric registry. get-or-create calls are mutex-guarded and
/// idempotent (same name must keep the same type — a mismatch throws);
/// resolve once, keep the pointer. Metrics are never unregistered.
class Registry {
 public:
  /// The process-wide registry (what the exporter serves).
  static Registry& instance();

  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<std::uint64_t> bounds);

  /// Poll-on-snapshot gauge: `fn` is invoked (under no registry lock
  /// ordering guarantees beyond "during snapshot()") to produce the value.
  /// The callback must stay valid for the registry's lifetime — use only
  /// for process-lifetime sources (Executor::instance() stats).
  void gauge_callback(const std::string& name, const std::string& help,
                      std::function<std::int64_t()> fn);

  Snapshot snapshot() const;

  /// Process-wide gate for wall-clock observability inputs (latency
  /// histograms). Off by default: a run that never enables it reads no
  /// clocks at all, mirroring the engine's phase-timing contract.
  static bool timing_enabled() {
    return timing_.load(std::memory_order_relaxed);
  }
  static void set_timing(bool on) {
    timing_.store(on, std::memory_order_relaxed);
  }

  // Public constructor so tests can exercise a private registry (golden
  // exposition output needs controlled contents); production code uses
  // instance().
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Entry {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::int64_t()> callback;
  };

  Entry& entry_of(const std::string& name, MetricType type);

  static std::atomic<bool> timing_;

  mutable std::mutex mu_;
  // Ordered by name so snapshots (and both exposition formats) are
  // byte-stable without a sort at read time.
  std::map<std::string, Entry> metrics_;
};

/// Monotonic nanoseconds for latency observations. Call sites must be
/// gated on Registry::timing_enabled(); readings feed metrics only, never
/// a transcript. det-ok: clock
std::uint64_t mono_time_ns();

}  // namespace dgr::obs
