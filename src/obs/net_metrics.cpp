#include "obs/net_metrics.h"

namespace dgr::obs {

namespace {

/// One EWMA step with alpha = 1/8 on a fixed-point value: the CCP-kernel
/// convention (shift by 3) — cheap, monotone-converging, and integer-exact.
std::uint64_t ewma_step(std::uint64_t prev, std::uint64_t sample) {
  return prev - (prev >> 3) + (sample >> 3);
}

/// Re-export an instance-local reading into a shared gauge as a delta
/// against what this instance last exported.
void export_delta(Gauge* g, std::int64_t& exported, std::int64_t now) {
  g->add(now - exported);
  exported = now;
}

}  // namespace

NetMetrics::NetMetrics(Registry& reg)
    : rounds_(&reg.counter("dgr_net_rounds_total", "Completed delivery rounds")),
      sent_(&reg.counter("dgr_net_messages_sent_total",
                         "Messages accepted by Ctx::send")),
      delivered_(&reg.counter("dgr_net_messages_delivered_total",
                              "Messages that reached an inbox")),
      bounced_(&reg.counter("dgr_net_messages_bounced_total",
                            "Messages returned to sender (capacity overflow)")),
      dropped_(&reg.counter("dgr_net_messages_dropped_total",
                            "Messages lost to link loss or crashed receiver")),
      drop_events_(&reg.counter("dgr_net_drop_events_total",
                                "Rounds with at least one dropped message")),
      phase_body_ns_(&reg.counter("dgr_net_phase_body_ns_total",
                                  "Round-body dispatch wall nanoseconds")),
      phase_sort_ns_(&reg.counter("dgr_net_phase_sort_ns_total",
                                  "Drop-filter/counting-sort wall nanoseconds")),
      phase_rng_ns_(&reg.counter("dgr_net_phase_rng_ns_total",
                                 "Overflow RNG pre-draw wall nanoseconds")),
      phase_placement_ns_(&reg.counter("dgr_net_phase_placement_ns_total",
                                       "Inbox record placement wall nanoseconds")),
      phase_learn_ns_(&reg.counter("dgr_net_phase_learn_ns_total",
                                   "Knowledge learn pass wall nanoseconds")),
      round_sent_(&reg.histogram(
          "dgr_net_round_sent_messages", "Per-round sent-message distribution",
          {0, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})),
      ewma_gauge_(&reg.gauge("dgr_net_delivered_per_round_ewma_x1000",
                             "EWMA (alpha 1/8) of delivered msgs per round, "
                             "fixed-point x1000")),
      ratio_gauge_(&reg.gauge("dgr_net_delivery_ratio_ewma_ppm",
                              "EWMA (alpha 1/8) of delivered/sent per round, "
                              "parts per million")),
      frontier_gauge_(&reg.gauge("dgr_net_frontier_nodes",
                                 "Active-set size entering the next round")),
      crashed_gauge_(&reg.gauge("dgr_net_crashed_nodes",
                                "Nodes currently crashed")) {}

NetMetrics::~NetMetrics() {
  // Withdraw this instance's contribution to the shared gauges so the
  // exported totals reflect live Networks only.
  export_delta(ewma_gauge_, exported_ewma_, 0);
  export_delta(ratio_gauge_, exported_ratio_, 0);
  export_delta(frontier_gauge_, exported_frontier_, 0);
  export_delta(crashed_gauge_, exported_crashed_, 0);
}

void NetMetrics::on_round(const ncc::RoundSample& smp) {
  rounds_->add(1);
  sent_->add(smp.sent);
  delivered_->add(smp.delivered);
  bounced_->add(smp.bounced);
  dropped_->add(smp.dropped);
  if (smp.dropped > 0) drop_events_->add(1);
  round_sent_->observe(smp.sent);

  if (smp.phase_ns.total() > 0) {
    phase_body_ns_->add(smp.phase_ns.body);
    phase_sort_ns_->add(smp.phase_ns.sort);
    phase_rng_ns_->add(smp.phase_ns.rng);
    phase_placement_ns_->add(smp.phase_ns.placement);
    phase_learn_ns_->add(smp.phase_ns.learn);
  }

  const std::uint64_t delivered_x1000 = smp.delivered * 1000;
  const std::uint64_t ratio_ppm =
      smp.sent > 0 ? smp.delivered * 1000000 / smp.sent : 0;
  if (!primed_) {
    // Seed the filters with the first observation instead of decaying up
    // from zero (the ccp convention for a cold rate estimator).
    ewma_x1000_ = delivered_x1000;
    ratio_ppm_ = ratio_ppm;
    primed_ = true;
  } else {
    ewma_x1000_ = ewma_step(ewma_x1000_, delivered_x1000);
    ratio_ppm_ = ewma_step(ratio_ppm_, ratio_ppm);
  }

  export_delta(ewma_gauge_, exported_ewma_,
               static_cast<std::int64_t>(ewma_x1000_));
  export_delta(ratio_gauge_, exported_ratio_,
               static_cast<std::int64_t>(ratio_ppm_));
  export_delta(frontier_gauge_, exported_frontier_,
               smp.frontier_tracked ? static_cast<std::int64_t>(smp.frontier)
                                    : 0);
  export_delta(crashed_gauge_, exported_crashed_,
               static_cast<std::int64_t>(smp.crashed));
}

}  // namespace dgr::obs
