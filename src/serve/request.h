// Request/response types for realization-as-a-service.
//
// A Request names a degree MULTISET, not an ordered sequence: the service
// canonicalizes to sorted-descending order before running or caching, so
// two permutations of the same degrees are the same request, share one
// cache entry, and receive the same Realization. Responses are therefore
// expressed in canonical slot indices — edge (u, v) means "the node holding
// the u-th largest degree is adjacent to the node holding the v-th
// largest" — which is exactly the quotient under which the answer is
// permutation-invariant.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dgr::serve {

/// Which realization contract the request asks for (mirrors
/// realize::DegreeMode; redeclared so serve/ headers stay free of the
/// engine's heavyweight includes).
enum class Mode : std::uint8_t {
  kExact,     ///< realize exactly, or report the sequence non-graphic
  kEnvelope,  ///< realize an upper envelope D' >= D, sum(D') <= 2 sum(D)
};

/// One realization request. `degrees` may arrive in any order.
struct Request {
  std::vector<std::uint64_t> degrees;
  std::uint64_t seed = 1;
  Mode mode = Mode::kExact;
};

/// An undirected edge in canonical slot indices, u < v.
struct Edge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// The service's answer. For a cache hit this is byte-identical to what a
/// cold run at the same canonical request (degrees, seed, mode) produces.
struct Realization {
  bool realizable = false;  ///< kExact only: false = correctly non-graphic
  bool validated = false;   ///< referee verdict on this response
  std::string message;      ///< validation failure reason (empty when ok)
  std::vector<Edge> edges;  ///< canonical-slot edges, sorted ascending
  std::uint64_t phases = 0;
  std::uint64_t rounds = 0;

  friend bool operator==(const Realization&, const Realization&) = default;
};

/// Sorted-descending copy — the canonical representative of the multiset.
inline std::vector<std::uint64_t> canonical_degrees(
    std::vector<std::uint64_t> d) {
  std::sort(d.begin(), d.end(), std::greater<>());
  return d;
}

/// Identity of a cacheable unit of work: canonical degrees + seed + mode.
/// The seed is part of the key because the service promises hit responses
/// byte-identical to a cold run *at the same seed*; distinct seeds are
/// distinct (differently-randomized) realizations.
struct CacheKey {
  std::vector<std::uint64_t> degrees;  ///< canonical (sorted descending)
  std::uint64_t seed = 1;
  Mode mode = Mode::kExact;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    std::uint64_t h = hash_mix(k.seed, static_cast<std::uint64_t>(k.mode),
                               k.degrees.size());
    for (const std::uint64_t d : k.degrees) h = hash_mix(h, d);
    return static_cast<std::size_t>(h);
  }
};

inline CacheKey key_of(const Request& req) {
  return CacheKey{canonical_degrees(req.degrees), req.seed, req.mode};
}

}  // namespace dgr::serve
