#include "serve/service.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "graph/degree_sequence.h"
#include "ncc/config.h"
#include "ncc/network.h"
#include "obs/metrics.h"
#include "obs/rows.h"
#include "realization/implicit_degree.h"
#include "realization/validate.h"
#include "util/check.h"

namespace dgr::serve {

namespace {
/// Process-wide serve metrics (all RealizationService instances fold into
/// the same aggregates). Counter updates ride the existing mu_ critical
/// sections; the latency histograms read clocks only while obs timing is
/// enabled (Registry::set_timing), matching the engine's detached-runs-
/// read-no-clocks rule.
struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& submit_hits;
  obs::Counter& run_hits;
  obs::Counter& cold_runs;
  obs::Counter& batches;
  obs::Counter& coalesced;
  obs::Counter& admission_waits;
  obs::Histogram& batch_size;
  obs::Histogram& admission_wait_ns;
  obs::Histogram& hit_ns;
  obs::Histogram& cold_ns;

  ServeMetrics()
      : submitted(obs::Registry::instance().counter(
            "dgr_serve_submitted_total", "Requests submitted")),
        completed(obs::Registry::instance().counter(
            "dgr_serve_completed_total", "Responses delivered (any path)")),
        submit_hits(obs::Registry::instance().counter(
            "dgr_serve_submit_hits_total",
            "Requests answered from cache at submit time")),
        run_hits(obs::Registry::instance().counter(
            "dgr_serve_run_hits_total",
            "Requests answered by a driver's cache re-probe")),
        cold_runs(obs::Registry::instance().counter(
            "dgr_serve_cold_runs_total", "Full simulations executed")),
        batches(obs::Registry::instance().counter(
            "dgr_serve_batches_total", "Driver claims from the queue")),
        coalesced(obs::Registry::instance().counter(
            "dgr_serve_coalesced_total",
            "Same-key twins answered by a batchmate's run")),
        admission_waits(obs::Registry::instance().counter(
            "dgr_serve_admission_waits_total",
            "submit() calls that blocked on a full queue")),
        batch_size(obs::Registry::instance().histogram(
            "dgr_serve_batch_size", "Requests claimed per driver batch",
            {1, 2, 4, 8, 16, 32})),
        admission_wait_ns(obs::Registry::instance().histogram(
            "dgr_serve_admission_wait_ns",
            "Nanoseconds submit() blocked on a full admission queue "
            "(populated only while obs timing is enabled)",
            {10000, 100000, 1000000, 10000000, 100000000, 1000000000})),
        hit_ns(obs::Registry::instance().histogram(
            "dgr_serve_hit_ns",
            "Cache-hit answer latency in nanoseconds (populated only while "
            "obs timing is enabled)",
            {1000, 10000, 100000, 1000000, 10000000})),
        cold_ns(obs::Registry::instance().histogram(
            "dgr_serve_cold_ns",
            "Cold-run (full simulation) latency in nanoseconds (populated "
            "only while obs timing is enabled)",
            {100000, 1000000, 10000000, 100000000, 1000000000,
             10000000000})) {}
};

ServeMetrics& serve_metrics() {
  static ServeMetrics* m = new ServeMetrics;  // immortal (late completions)
  return *m;
}
}  // namespace

RealizationService::RealizationService(ServiceConfig cfg)
    : cfg_(cfg),
      cache_(cfg.cache_capacity, cfg.cache_byte_budget),
      pool_(std::max(1u, cfg.drivers)) {
  if (cfg_.drivers == 0) cfg_.drivers = 1;
  if (cfg_.batch_max == 0) cfg_.batch_max = 1;
  drivers_.reserve(cfg_.drivers);
  for (unsigned i = 0; i < cfg_.drivers; ++i) {
    drivers_.emplace_back([this] { driver_main(); });
  }
}

RealizationService::~RealizationService() {
  {
    std::scoped_lock lk(mu_);
    stop_ = true;
  }
  // Drivers keep claiming while the queue is non-empty, so setting stop_
  // first still drains every admitted request before the threads exit.
  cv_work_.notify_all();
  for (auto& th : drivers_) th.join();
}

std::future<RealizationService::Result> RealizationService::submit(
    Request req) {
  DGR_CHECK_MSG(!req.degrees.empty(), "empty degree sequence");
  CacheKey key = key_of(req);

  std::promise<Result> promise;
  std::future<Result> future = promise.get_future();

  // Submit-time probe: a hit never touches the queue at all.
  const bool timing = obs::Registry::timing_enabled();
  const std::uint64_t t_probe = timing ? obs::mono_time_ns() : 0;
  if (Result hit = cache_.get(key)) {
    {
      std::scoped_lock lk(mu_);
      ++stats_.submitted;
      ++stats_.submit_hits;
      ++stats_.completed;
    }
    serve_metrics().submitted.add(1);
    serve_metrics().submit_hits.add(1);
    serve_metrics().completed.add(1);
    if (timing) serve_metrics().hit_ns.observe(obs::mono_time_ns() - t_probe);
    promise.set_value(std::move(hit));
    return future;
  }

  std::unique_lock lk(mu_);
  ++stats_.submitted;
  serve_metrics().submitted.add(1);
  if (queue_.size() >= cfg_.queue_capacity) {
    ++stats_.admission_waits;
    serve_metrics().admission_waits.add(1);
    const std::uint64_t t_wait = timing ? obs::mono_time_ns() : 0;
    cv_space_.wait(lk, [&] { return queue_.size() < cfg_.queue_capacity; });
    if (timing)
      serve_metrics().admission_wait_ns.observe(obs::mono_time_ns() - t_wait);
  }
  queue_.push_back(Pending{std::move(key), std::move(promise)});
  lk.unlock();
  cv_work_.notify_one();
  return future;
}

void RealizationService::driver_main() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and fully drained

    // Claim a batch: the head unconditionally, then more small requests up
    // to batch_max. A large head (n > batch_small_n) travels alone so one
    // driver never sits on a pile of cheap requests behind a big one.
    std::vector<Pending> batch;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (batch.front().key.degrees.size() <= cfg_.batch_small_n) {
      while (batch.size() < cfg_.batch_max && !queue_.empty() &&
             queue_.front().key.degrees.size() <= cfg_.batch_small_n) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ++stats_.batches;
    stats_.batched_requests += batch.size();
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch,
                                               batch.size());
    serve_metrics().batches.add(1);
    serve_metrics().batch_size.observe(batch.size());
    lk.unlock();
    cv_space_.notify_all();

    // Coalesce within the batch: identical keys (permutations of one
    // multiset at one seed collapse to one key) are computed once and the
    // single immutable result answers every twin.
    std::vector<bool> served(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (served[i]) continue;
      serve_group(batch, served, i);
    }
    lk.lock();
  }
}

void RealizationService::serve_group(std::vector<Pending>& batch,
                                     std::vector<bool>& served,
                                     std::size_t lead) {
  Result result;
  std::exception_ptr error;
  bool was_hit = false;

  // Re-probe: an identical request may have been computed (by this or
  // another driver) after this one was admitted.
  const bool timing = obs::Registry::timing_enabled();
  const std::uint64_t t0 = timing ? obs::mono_time_ns() : 0;
  if ((result = cache_.get(batch[lead].key))) {
    was_hit = true;
    if (timing) serve_metrics().hit_ns.observe(obs::mono_time_ns() - t0);
  } else {
    try {
      result = std::make_shared<const Realization>(
          cold_run(batch[lead].key, cfg_.net_threads, &pool_));
      cache_.put(batch[lead].key, result);
      if (timing) serve_metrics().cold_ns.observe(obs::mono_time_ns() - t0);
    } catch (...) {
      error = std::current_exception();
    }
  }

  std::vector<std::size_t> group;
  for (std::size_t j = lead; j < batch.size(); ++j) {
    if (!served[j] && batch[j].key == batch[lead].key) {
      served[j] = true;
      group.push_back(j);
    }
  }

  // Count before fulfilling: a client that just observed its future
  // resolve must already see this group in stats().
  {
    std::scoped_lock lk(mu_);
    stats_.completed += group.size();
    stats_.coalesced += group.size() - 1;
    if (was_hit) {
      ++stats_.run_hits;
    } else if (!error) {
      ++stats_.cold_runs;
    }
  }
  serve_metrics().completed.add(group.size());
  serve_metrics().coalesced.add(group.size() - 1);
  if (was_hit) {
    serve_metrics().run_hits.add(1);
  } else if (!error) {
    serve_metrics().cold_runs.add(1);
  }

  for (const std::size_t j : group) {
    if (error) {
      batch[j].promise.set_exception(error);
    } else {
      batch[j].promise.set_value(result);
    }
  }
}

Realization RealizationService::cold_run(const CacheKey& key,
                                         unsigned net_threads,
                                         ncc::ArenaPool* pool) {
  const std::size_t n = key.degrees.size();
  DGR_CHECK_MSG(n >= 1, "empty degree sequence");

  ncc::Config cfg;
  cfg.seed = key.seed;
  cfg.threads = net_threads;
  cfg.arena_pool = pool;
  ncc::Network net(n, cfg);

  const auto mode = key.mode == Mode::kExact ? realize::DegreeMode::kExact
                                             : realize::DegreeMode::kEnvelope;
  // Canonical slot s asks for the s-th largest degree; the Network's own
  // (seeded) path shuffle and ID draw supply the randomness, so the whole
  // run is a function of (degrees, seed, mode) only.
  const auto res = realize_degrees_implicit(net, key.degrees, mode);

  Realization out;
  out.realizable = res.realizable;
  out.phases = res.phases;
  out.rounds = res.rounds;

  if (!res.realizable) {
    // The distributed verdict "not graphic" is validated by the referee's
    // sequential Erdős–Gallai check.
    if (graph::erdos_gallai_graphic(key.degrees)) {
      out.message = "engine reported a graphic sequence unrealizable";
    } else {
      out.validated = true;
    }
    return out;
  }

  const auto v = key.mode == Mode::kExact
                     ? realize::validate_degree_realization(net, key.degrees,
                                                            res.stored)
                     : realize::validate_upper_envelope(net, key.degrees,
                                                       res.stored);
  out.validated = v.ok;
  out.message = v.message;

  // Slot-index edge list in canonical order: stored[s] holds the aware
  // side's neighbour IDs, each implicit edge exactly once.
  out.edges.reserve(64);
  for (std::size_t s = 0; s < n; ++s) {
    for (const ncc::NodeId id : res.stored[s]) {
      const ncc::Slot t = net.slot_of(id);
      Edge e{static_cast<std::uint32_t>(std::min<std::size_t>(s, t)),
             static_cast<std::uint32_t>(std::max<std::size_t>(s, t))};
      out.edges.push_back(e);
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

ServiceStats RealizationService::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

}  // namespace dgr::serve

// Row adapters declared in obs/rows.h; defined here so obs never includes
// serve headers (the dependency arrow stays serve -> obs).
namespace dgr::obs {

std::vector<Row> rows(const serve::ServiceStats& s) {
  std::vector<Row> out;
  const auto push = [&](const char* name, std::uint64_t v) {
    out.push_back(Row{name, static_cast<std::int64_t>(v)});
  };
  push("submitted", s.submitted);
  push("completed", s.completed);
  push("submit_hits", s.submit_hits);
  push("run_hits", s.run_hits);
  push("cold_runs", s.cold_runs);
  push("batches", s.batches);
  push("batched_requests", s.batched_requests);
  push("max_batch", s.max_batch);
  push("coalesced", s.coalesced);
  push("admission_waits", s.admission_waits);
  return out;
}

std::vector<Row> rows(const serve::CacheStats& s) {
  std::vector<Row> out;
  const auto push = [&](const char* name, std::uint64_t v) {
    out.push_back(Row{name, static_cast<std::int64_t>(v)});
  };
  push("hits", s.hits);
  push("misses", s.misses);
  push("evictions", s.evictions);
  push("size", s.size);
  push("capacity", s.capacity);
  push("bytes", s.bytes);
  push("byte_budget", s.byte_budget);
  return out;
}

}  // namespace dgr::obs
