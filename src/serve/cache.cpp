#include "serve/cache.h"

namespace dgr::serve {

std::shared_ptr<const Realization> ResultCache::get(const CacheKey& key) {
  std::scoped_lock lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::put(const CacheKey& key,
                      std::shared_ptr<const Realization> value) {
  if (capacity_ == 0) return;
  std::scoped_lock lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(lru_.front().first, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::scoped_lock lk(mu_);
  CacheStats st;
  st.hits = hits_;
  st.misses = misses_;
  st.evictions = evictions_;
  st.size = lru_.size();
  st.capacity = capacity_;
  return st;
}

}  // namespace dgr::serve
