#include "serve/cache.h"

#include "obs/metrics.h"

namespace dgr::serve {

namespace {
/// Process-wide cache metrics: every ResultCache folds into the same
/// aggregates; the live-entries/bytes gauges move by per-instance deltas
/// (put adds, evict/destructor subtracts), so concurrent caches sum. All
/// updates sit inside the cache's existing mu_ critical sections.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& entries;
  obs::Gauge& bytes;

  CacheMetrics()
      : hits(obs::Registry::instance().counter("dgr_cache_hits_total",
                                               "Result-cache lookup hits")),
        misses(obs::Registry::instance().counter(
            "dgr_cache_misses_total", "Result-cache lookup misses")),
        evictions(obs::Registry::instance().counter(
            "dgr_cache_evictions_total", "Entries evicted from the LRU tail")),
        entries(obs::Registry::instance().gauge(
            "dgr_cache_entries", "Live result-cache entries across caches")),
        bytes(obs::Registry::instance().gauge(
            "dgr_cache_bytes",
            "Approximate retained heap bytes across caches")) {}
};

CacheMetrics& cache_metrics() {
  static CacheMetrics* m = new CacheMetrics;  // immortal (late teardown)
  return *m;
}
}  // namespace

ResultCache::~ResultCache() {
  std::scoped_lock lk(mu_);
  cache_metrics().entries.sub(static_cast<std::int64_t>(lru_.size()));
  cache_metrics().bytes.sub(static_cast<std::int64_t>(bytes_));
}

std::size_t ResultCache::entry_bytes(const CacheKey& key,
                                     const Realization& r) {
  // Approximate, capacity-based (what the entry RETAINS, not what it uses):
  // the canonical degree sequence is duplicated into the key, and the
  // realization's edge list dominates for any realized instance — 8 bytes
  // per edge, i.e. O(sum of degrees). The constant covers the list node,
  // index slot, and control blocks; precision is not the point, bounding
  // the retained heap is.
  return key.degrees.capacity() * sizeof(std::uint64_t) +
         r.edges.capacity() * sizeof(Edge) + r.message.capacity() +
         sizeof(Entry) + sizeof(Realization) + 128;
}

std::shared_ptr<const Realization> ResultCache::get(const CacheKey& key) {
  std::scoped_lock lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    cache_metrics().misses.add(1);
    return nullptr;
  }
  ++hits_;
  cache_metrics().hits.add(1);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::put(const CacheKey& key,
                      std::shared_ptr<const Realization> value) {
  if (capacity_ == 0) return;
  const std::size_t cost = entry_bytes(key, *value);
  std::scoped_lock lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    cache_metrics().bytes.add(static_cast<std::int64_t>(cost) -
                              static_cast<std::int64_t>(it->second->bytes));
    bytes_ -= it->second->bytes;
    bytes_ += cost;
    it->second->value = std::move(value);
    it->second->bytes = cost;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value), cost});
  index_.emplace(lru_.front().key, lru_.begin());
  bytes_ += cost;
  cache_metrics().entries.add(1);
  cache_metrics().bytes.add(static_cast<std::int64_t>(cost));
  // Entry-count capacity and (when configured) the byte budget both evict
  // from the LRU tail. The newest entry always survives — an oversized
  // single result is served and retained rather than thrashed, and the
  // budget re-asserts itself on the next insert.
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ ||
          (byte_budget_ != 0 && bytes_ > byte_budget_))) {
    bytes_ -= lru_.back().bytes;
    cache_metrics().entries.sub(1);
    cache_metrics().bytes.sub(static_cast<std::int64_t>(lru_.back().bytes));
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    cache_metrics().evictions.add(1);
  }
}

CacheStats ResultCache::stats() const {
  std::scoped_lock lk(mu_);
  CacheStats st;
  st.hits = hits_;
  st.misses = misses_;
  st.evictions = evictions_;
  st.size = lru_.size();
  st.capacity = capacity_;
  st.bytes = bytes_;
  st.byte_budget = byte_budget_;
  return st;
}

}  // namespace dgr::serve
