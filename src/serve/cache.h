// LRU result cache: canonical request -> realization.
//
// Results are immutable once computed (shared_ptr<const Realization>), so
// a hit hands back the exact object a previous cold run produced — the
// byte-identical-to-cold-run guarantee costs nothing beyond keeping the
// entry alive. Thread-safe; all counters are process-lifetime monotone.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "serve/request.h"

namespace dgr::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;      ///< live entries
  std::size_t capacity = 0;  ///< eviction threshold
};

class ResultCache {
 public:
  /// capacity 0 disables caching entirely (every get misses, puts no-op).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// nullptr on miss; a hit moves the entry to the front of the LRU order.
  std::shared_ptr<const Realization> get(const CacheKey& key);

  /// Insert (or refresh) an entry, evicting from the LRU tail past
  /// capacity. Concurrent double-insert of the same key keeps the newer
  /// value — callers compute deterministically, so both are identical.
  void put(const CacheKey& key, std::shared_ptr<const Realization> value);

  CacheStats stats() const;

 private:
  using Entry = std::pair<CacheKey, std::shared_ptr<const Realization>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dgr::serve
