// LRU result cache: canonical request -> realization.
//
// Results are immutable once computed (shared_ptr<const Realization>), so
// a hit hands back the exact object a previous cold run produced — the
// byte-identical-to-cold-run guarantee costs nothing beyond keeping the
// entry alive. Thread-safe; all counters are process-lifetime monotone.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "serve/request.h"

namespace dgr::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;         ///< live entries
  std::size_t capacity = 0;     ///< eviction threshold (entries)
  std::size_t bytes = 0;        ///< approx retained heap bytes
  std::size_t byte_budget = 0;  ///< eviction threshold (bytes; 0 = off)
};

class ResultCache {
 public:
  /// capacity 0 disables caching entirely (every get misses, puts no-op).
  /// byte_budget bounds the cache's approximate retained heap as well:
  /// entries are charged their key + edge-list + message footprint, and
  /// the LRU tail is evicted past the budget. 0 disables byte accounting
  /// (entry-count capacity only — the historical behavior). The budget
  /// matters at scale: 128 entries of n=256 realizations is ~1 MB, but 128
  /// entries of n=10^6 realizations is ~10 GB, so entry-count capacity
  /// alone stops meaning anything once request sizes grow.
  explicit ResultCache(std::size_t capacity, std::size_t byte_budget = 0)
      : capacity_(capacity), byte_budget_(byte_budget) {}
  /// Withdraws this cache's live entries/bytes from the process-wide obs
  /// gauges (defined in cache.cpp with the metric bindings).
  ~ResultCache();
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// nullptr on miss; a hit moves the entry to the front of the LRU order.
  std::shared_ptr<const Realization> get(const CacheKey& key);

  /// Insert (or refresh) an entry, evicting from the LRU tail past
  /// capacity. Concurrent double-insert of the same key keeps the newer
  /// value — callers compute deterministically, so both are identical.
  void put(const CacheKey& key, std::shared_ptr<const Realization> value);

  CacheStats stats() const;

  /// Approximate heap footprint one (key, realization) entry retains;
  /// exposed so callers (and tests) can budget without private math.
  static std::size_t entry_bytes(const CacheKey& key, const Realization& r);

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const Realization> value;
    std::size_t bytes = 0;  // entry_bytes at insert, folded into bytes_
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t byte_budget_;
  std::size_t bytes_ = 0;  // sum of live entries' bytes
  std::list<Entry> lru_;   // front = most recent
  // Lookup-only index (find/emplace/erase); recency order lives in lru_,
  // so hash layout never decides an eviction. det-ok: unordered_map
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dgr::serve
