// RealizationService: many independent realization requests served
// concurrently over the process-wide Executor.
//
// Pipeline shape (the classic serve-loop):
//
//   submit(Request)                          driver threads (cfg.drivers)
//     | canonicalize -> CacheKey               |
//     | cache probe: hit -> answer now         | claim a BATCH from the
//     | miss -> bounded admission queue  ----> | admission queue, then per
//       (blocks when full: backpressure)       | request: re-probe cache
//                                              | (another driver may have
//                                              | just computed it), else
//                                              | cold-run a Network over
//                                              | the shared Executor,
//                                              | validate, cache, answer.
//
// Batching is the bounded-admission-queue variant: a driver claims up to
// `batch_max` queued requests in one go as long as they are small
// (n <= batch_small_n); a large request always travels alone. Batches are
// observable in ServiceStats (batches, batched_requests, max_batch).
//
// Determinism: a cold run is a pure function of the canonical request
// (degrees sorted descending, seed, mode) — the Network is seeded from the
// request seed and per-slot RNG streams do the rest — so cache hits return
// results byte-identical to a cold run at the same seed, and concurrent
// serving never changes any individual answer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ncc/arena.h"
#include "serve/cache.h"
#include "serve/request.h"

namespace dgr::serve {

struct ServiceConfig {
  /// Driver threads = request-level concurrency (how many simulations can
  /// be in flight at once). Each driver runs whole simulations; slot-level
  /// parallelism inside one simulation comes from net_threads.
  unsigned drivers = 2;
  /// Config::threads for each cold-run Network (its Executor lease width).
  unsigned net_threads = 1;
  std::size_t cache_capacity = 128;
  /// Byte bound on the result cache's retained heap (0 = entry-count
  /// capacity only). Entry-count capacity stops meaning anything once
  /// request sizes grow — see ResultCache's constructor comment.
  std::size_t cache_byte_budget = 0;
  /// Admission queue bound; submit() blocks while the queue is full.
  std::size_t queue_capacity = 64;
  /// Max requests one driver claims per batch (>= 1).
  std::size_t batch_max = 8;
  /// Only requests with n <= batch_small_n ride in a shared batch; larger
  /// ones always travel alone.
  std::size_t batch_small_n = 256;
};

/// Process-lifetime monotone counters (snapshot via stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;    ///< responses delivered (any path)
  std::uint64_t submit_hits = 0;  ///< answered from cache at submit time
  std::uint64_t run_hits = 0;     ///< answered by a driver's cache re-probe
  std::uint64_t cold_runs = 0;    ///< full simulations executed
  std::uint64_t batches = 0;      ///< driver claims from the queue
  std::uint64_t batched_requests = 0;  ///< requests claimed across batches
  std::uint64_t max_batch = 0;         ///< largest single claim
  std::uint64_t coalesced = 0;  ///< same-key twins answered by a batchmate
  std::uint64_t admission_waits = 0;   ///< submit() calls that blocked
};

class RealizationService {
 public:
  using Result = std::shared_ptr<const Realization>;

  explicit RealizationService(ServiceConfig cfg = {});
  /// Drains the admission queue (every submitted request is answered),
  /// then joins the drivers.
  ~RealizationService();
  RealizationService(const RealizationService&) = delete;
  RealizationService& operator=(const RealizationService&) = delete;

  /// Submit one request; the future resolves to the (cached or computed)
  /// realization. Blocks while the admission queue is full. Throws
  /// CheckError for an empty degree sequence.
  std::future<Result> submit(Request req);

  ServiceStats stats() const;
  CacheStats cache_stats() const { return cache_.stats(); }

  /// The deterministic cold path, exposed for tests and benches: run one
  /// Network for the canonical request and validate the outcome. Pure
  /// function of (key); net_threads and pool are transcript-neutral. A
  /// non-null pool recycles the Network's round scratch (wire arenas,
  /// histograms) across runs — the service passes its own pool so back-to-
  /// back cold runs on a driver stop re-faulting warm buffers.
  static Realization cold_run(const CacheKey& key, unsigned net_threads,
                              ncc::ArenaPool* pool = nullptr);

 private:
  struct Pending {
    CacheKey key;
    std::promise<Result> promise;
  };

  void driver_main();
  /// Compute-or-hit for batch[lead] and fulfill it plus every unserved
  /// same-key twin later in the batch (intra-batch coalescing).
  void serve_group(std::vector<Pending>& batch, std::vector<bool>& served,
                   std::size_t lead);

  ServiceConfig cfg_;
  ResultCache cache_;
  ncc::ArenaPool pool_;  // round-scratch reuse across driver cold runs

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // queue became non-empty / stopping
  std::condition_variable cv_space_;  // queue has room again
  std::deque<Pending> queue_;
  bool stop_ = false;
  ServiceStats stats_;
  std::vector<std::thread> drivers_;
};

}  // namespace dgr::serve
