#include "util/rng.h"

#include <cmath>

namespace dgr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t s = a;
  std::uint64_t h = splitmix64(s);
  s ^= b;
  h ^= splitmix64(s);
  s ^= c;
  h ^= splitmix64(s);
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split(std::uint64_t index) const {
  return Rng(hash_mix(s_[0] ^ s_[2], s_[1] ^ s_[3], index));
}

}  // namespace dgr
