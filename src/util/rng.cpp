#include "util/rng.h"

namespace dgr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t s = a;
  std::uint64_t h = splitmix64(s);
  s ^= b;
  h ^= splitmix64(s);
  s ^= c;
  h ^= splitmix64(s);
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::split(std::uint64_t index) const {
  return Rng(hash_mix(s_[0] ^ s_[2], s_[1] ^ s_[3], index));
}

}  // namespace dgr
