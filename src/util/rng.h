// Deterministic, splittable pseudo-random generator.
//
// The simulator needs reproducible randomness that is independent of
// execution order: each node owns its own stream derived from
// (master seed, node slot), and the delivery layer derives per-round streams
// from (master seed, round). We use SplitMix64 for seeding and xoshiro256**
// for the streams — fast, high-quality, and trivially splittable.
#pragma once

#include <cstdint>
#include <vector>

namespace dgr {

/// SplitMix64 step; used for seeding and hashing small tuples.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of up to three words into one; used to derive stream seeds.
std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                       std::uint64_t c = 0xbf58476d1ce4e5b9ULL);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound) using Lemire's method; bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli(p).
  bool chance(double p);

  /// Derive an independent child stream (stable for the same index).
  Rng split(std::uint64_t index) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dgr
