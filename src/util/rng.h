// Deterministic, splittable pseudo-random generator.
//
// The simulator needs reproducible randomness that is independent of
// execution order: each node owns its own stream derived from
// (master seed, node slot), and the delivery layer derives per-round streams
// from (master seed, round). We use SplitMix64 for seeding and xoshiro256**
// for the streams — fast, high-quality, and trivially splittable.
#pragma once

#include <cstdint>
#include <vector>

namespace dgr {

/// SplitMix64 step; used for seeding and hashing small tuples.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of up to three words into one; used to derive stream seeds.
std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                       std::uint64_t c = 0xbf58476d1ce4e5b9ULL);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  // The draw operations are header-inline: they sit on the simulator's
  // per-message datapath (node bodies and the delivery stream), where a
  // cross-TU call per draw is measurable.
  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's method; bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) [[unlikely]] {
      const std::uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (stable for the same index).
  Rng split(std::uint64_t index) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace dgr
