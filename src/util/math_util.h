// Small integer math helpers shared by the simulator and the algorithms.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace dgr {

/// ceil(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr int ceil_log2(std::uint64_t x) {
  if (x <= 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

/// floor(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr int floor_log2(std::uint64_t x) {
  if (x <= 1) return 0;
  return 63 - std::countl_zero(x);
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return std::uint64_t{1} << ceil_log2(x < 1 ? 1 : x);
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Integer square root: largest r with r*r <= x.
constexpr std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  // Newton from above is monotone decreasing until it reaches the floor,
  // where it can two-cycle — stop at the first non-decrease.
  std::uint64_t r = static_cast<std::uint64_t>(1)
                    << ((floor_log2(x) / 2) + 1);
  while (true) {
    const std::uint64_t next = (r + x / r) / 2;
    if (next >= r) break;
    r = next;
  }
  // Final adjustment via division (overflow-safe for the full u64 range).
  while (r > 1 && r > x / r) --r;
  while ((r + 1) <= x / (r + 1)) ++r;
  return r;
}

}  // namespace dgr
