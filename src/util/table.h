// ASCII + CSV table printer used by benches and examples to emit the
// paper-style result rows (EXPERIMENTS.md is assembled from these).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dgr {

/// Column-aligned ASCII table with an optional title; also serializes to CSV.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  void header(std::vector<std::string> cols);

  /// Appends a data row (stringified by the caller or via the helper).
  void row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with sensible precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  void print(std::ostream& os) const;
  std::string csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dgr
