// Lightweight runtime-check macros used across the library.
//
// DGR_CHECK fires in every build type: the simulator uses it to enforce model
// rules (knowledge, capacity), where silently continuing would invalidate a
// simulation. Failures throw dgr::CheckError so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dgr {

/// Thrown when a DGR_CHECK fails. Carries the failing expression and context.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DGR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace dgr

#define DGR_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::dgr::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define DGR_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg; /* NOLINT */                                         \
      ::dgr::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                  \
  } while (false)
