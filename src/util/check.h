// Lightweight runtime-check macros used across the library.
//
// Two tiers, one failure type (dgr::CheckError, so tests can assert on
// either):
//
//   DGR_CHECK / DGR_CHECK_MSG — model rules and API contracts. Fire in
//   every build type: the simulator uses them to enforce knowledge and
//   capacity rules, where silently continuing would invalidate a
//   simulation, and user input validation belongs here too.
//
//   NCC_ASSERT / NCC_ASSERT_MSG / NCC_INVARIANT — internal debug
//   contracts: executor claim accounting, DestHist epoch invariants,
//   RoundScratch between-round cleanliness. Compiled out entirely in
//   Release builds (NDEBUG): the condition expression is NOT evaluated,
//   so an invariant probe may be arbitrarily expensive (a full-table
//   walk) without taxing production rounds. Use them for conditions that
//   are provably true unless the engine itself has a bug — never for
//   conditions a caller could trigger.
//
// NCC_INVARIANT is NCC_ASSERT_MSG under a name that marks data-structure
// invariant probes (the msg should say which invariant and who restores
// it); the distinction is documentation, not mechanics.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dgr {

/// Thrown when a DGR_CHECK fails. Carries the failing expression and context.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DGR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace dgr

#define DGR_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::dgr::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define DGR_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      /* msg is a stream chain by contract; parens would break it. */  \
      /* NOLINTNEXTLINE(bugprone-macro-parentheses) -- stream chain */ \
      os_ << msg;                                                      \
      ::dgr::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                  \
  } while (false)

// --- Debug-only contract layer ------------------------------------------
// See the file comment: internal engine contracts, zero Release cost (the
// condition is not evaluated when NDEBUG is defined).

#ifndef NDEBUG
#define NCC_ASSERT(expr) DGR_CHECK(expr)
#define NCC_ASSERT_MSG(expr, msg) DGR_CHECK_MSG(expr, msg)
#define NCC_INVARIANT(expr, msg) DGR_CHECK_MSG(expr, msg)
#else
#define NCC_ASSERT(expr) \
  do {                   \
  } while (false)
#define NCC_ASSERT_MSG(expr, msg) \
  do {                            \
  } while (false)
#define NCC_INVARIANT(expr, msg) \
  do {                           \
  } while (false)
#endif
