// Streaming statistics accumulator (Welford) plus simple percentile support.
// Used by the benchmark harness to summarize round counts across trials.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dgr {

/// Accumulates samples and reports count/mean/stddev/min/max/percentiles.
class StatsAccum {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const { return mean_; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// p in [0, 100]; nearest-rank on the sorted sample set.
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dgr
