#include "util/stats_accum.h"

#include <algorithm>
#include <cmath>

namespace dgr {

void StatsAccum::add(double x) {
  if (samples_.empty()) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  samples_.push_back(x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double StatsAccum::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double StatsAccum::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace dgr
