#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dgr {

void Table::header(std::vector<std::string> cols) { header_ = std::move(cols); }

void Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  if (std::abs(v - std::round(v)) < 1e-9 && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(std::llround(v));
  } else {
    os << std::fixed << std::setprecision(precision) << v;
  }
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << c;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace dgr
