// Global computational primitives over a tree overlay (paper §3.2.1,
// Theorem 4): broadcast from the root or from an arbitrary leader, and
// aggregation of a distributive function to the root (optionally echoed back
// to everyone). All run in O(height) = O(log n) rounds, deterministically.
//
// Every primitive here is frontier-driven: it seeds the engine's active set
// (net.wake) with the slots that act first — the root for a broadcast, the
// ready leaves for an aggregation — and then drives net.round_active until
// the frontier drains. A wave therefore costs O(members) total slot
// activations instead of O(members · height) dense dispatches, while the
// transcript stays identical to a dense run (see network.h).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "ncc/network.h"
#include "primitives/bbst.h"
#include "util/check.h"

namespace dgr::prim {

/// Type-erased distributive aggregate combiner (the model allows unbounded
/// local computation). Kept for stored/polymorphic combiners and ABI
/// compatibility; internal callers use the templated overloads below, which
/// inline the combine instead of paying an indirect call per message.
using Combiner = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

/// Ready-made combiners. Each is a distinct empty function-object type so
/// the templated aggregation paths devirtualize and inline the combine;
/// call sites (`prim::comb_sum(a, b)`, `Combiner f = prim::comb_sum`) read
/// exactly as the old free functions did.
struct CombSum {
  std::uint64_t operator()(std::uint64_t a, std::uint64_t b) const noexcept {
    return a + b;
  }
};
struct CombMax {
  std::uint64_t operator()(std::uint64_t a, std::uint64_t b) const noexcept {
    return a > b ? a : b;
  }
};
struct CombMin {
  std::uint64_t operator()(std::uint64_t a, std::uint64_t b) const noexcept {
    return a < b ? a : b;
  }
};
struct CombOr {
  std::uint64_t operator()(std::uint64_t a, std::uint64_t b) const noexcept {
    return a | b;
  }
};
inline constexpr CombSum comb_sum{};
inline constexpr CombMax comb_max{};
inline constexpr CombMin comb_min{};
inline constexpr CombOr comb_or{};

/// Root floods `value` (one word; flag it as an ID with value_is_id so
/// receivers learn it). Returns the per-slot received value (members only).
std::vector<std::uint64_t> broadcast_from_root(ncc::Network& net,
                                               const TreeOverlay& tree,
                                               std::uint64_t value,
                                               bool value_is_id = false);

/// Convergecast of f over per-slot values; the root ends up with
/// f(all member values), which is returned. The templated form inlines the
/// combiner; the Combiner overload is the stored/polymorphic API.
template <typename F>
std::uint64_t aggregate_to_root(ncc::Network& net, const TreeOverlay& tree,
                                const std::vector<std::uint64_t>& value,
                                F&& f);
std::uint64_t aggregate_to_root(ncc::Network& net, const TreeOverlay& tree,
                                const std::vector<std::uint64_t>& value,
                                const Combiner& f);

/// Aggregation followed by a root broadcast: every member learns f(all).
/// Returns the aggregate. O(log n) rounds total.
template <typename F>
std::uint64_t aggregate_and_broadcast(ncc::Network& net,
                                      const TreeOverlay& tree,
                                      const std::vector<std::uint64_t>& value,
                                      F&& f, bool value_is_id = false);
std::uint64_t aggregate_and_broadcast(ncc::Network& net,
                                      const TreeOverlay& tree,
                                      const std::vector<std::uint64_t>& value,
                                      const Combiner& f,
                                      bool value_is_id = false);

/// Theorem 4's designated-leader broadcast: the leader's token climbs to the
/// root along parent pointers, then floods down. 2·height rounds.
std::vector<std::uint64_t> broadcast_from_leader(ncc::Network& net,
                                                 const TreeOverlay& tree,
                                                 Slot leader,
                                                 std::uint64_t value,
                                                 bool value_is_id = false);

/// Argmax aggregation: every member contributes (key, its own ID); the root
/// learns the ID of a node with the maximum key (smallest ID on ties) and
/// floods it. Every member ends up knowing the winner's ID and key.
struct ArgmaxResult {
  std::uint64_t key = 0;
  ncc::NodeId id = ncc::kNoNode;  ///< winner (learned by every member)
};
ArgmaxResult aggregate_argmax(ncc::Network& net, const TreeOverlay& tree,
                              const std::vector<std::uint64_t>& key);

/// Corollary 2's second half: the median node of the path announces itself,
/// and its ID becomes common knowledge in O(log n) rounds. The median knows
/// it is the median from its position and the (common knowledge) length.
ncc::NodeId announce_median(ncc::Network& net, const TreeOverlay& tree,
                            const PathOverlay& path);

// --- templated implementation -------------------------------------------

namespace detail {
/// Wire tag of the convergecast payload (word0 = partial aggregate).
inline constexpr std::uint32_t kTagAgg = 0x51;
}  // namespace detail

// Frontier-driven convergecast: the wave starts at the ready leaves and a
// node climbs onto it the round after its last child reports. Termination
// is "active set empty" — no spin counter, no per-round full-slot rescans.
template <typename F>
std::uint64_t aggregate_to_root(ncc::Network& net, const TreeOverlay& tree,
                                const std::vector<std::uint64_t>& value,
                                F&& f) {
  ncc::ScopedRounds scope(net, "aggregate");
  const std::size_t n = net.n();
  DGR_CHECK(value.size() == n);
  if (tree.size() == 0) return 0;

  std::vector<std::uint64_t> partial(n, 0);
  std::vector<std::uint8_t> left_done(n, 0), right_done(n, 0), sent(n, 0);
  net.clear_active();
  for (Slot s = 0; s < n; ++s) {
    if (!tree.member(s)) continue;
    partial[s] = value[s];
    if (tree.nodes[s].left == kNoNode) left_done[s] = 1;
    if (tree.nodes[s].right == kNoNode) right_done[s] = 1;
    // Leaves know they start the wave (their state says "all children
    // reported"); the referee wake is the in-model self-start.
    if (left_done[s] && right_done[s]) net.wake(s);
  }

  net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!tree.member(s) || sent[s]) return;
    const auto& nd = tree.nodes[s];
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != detail::kTagAgg) continue;
      if (m.src() == nd.left) {
        partial[s] = f(partial[s], m.word(0));
        left_done[s] = 1;
      } else if (m.src() == nd.right) {
        partial[s] = f(partial[s], m.word(0));
        right_done[s] = 1;
      }
    }
    if (left_done[s] && right_done[s]) {
      sent[s] = 1;
      if (nd.parent != kNoNode)
        ctx.send(nd.parent, ncc::make_msg(detail::kTagAgg).push(partial[s]));
    }
  });
  DGR_CHECK_MSG(sent[tree.root],
                "aggregation wave stalled before reaching the root");
  return partial[tree.root];
}

template <typename F>
std::uint64_t aggregate_and_broadcast(ncc::Network& net,
                                      const TreeOverlay& tree,
                                      const std::vector<std::uint64_t>& value,
                                      F&& f, bool value_is_id) {
  const std::uint64_t agg =
      aggregate_to_root(net, tree, value, std::forward<F>(f));
  broadcast_from_root(net, tree, agg, value_is_id);
  return agg;
}

}  // namespace dgr::prim
