// Global computational primitives over a tree overlay (paper §3.2.1,
// Theorem 4): broadcast from the root or from an arbitrary leader, and
// aggregation of a distributive function to the root (optionally echoed back
// to everyone). All run in O(height) = O(log n) rounds, deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ncc/network.h"
#include "primitives/bbst.h"

namespace dgr::prim {

/// Distributive aggregate combiner; plain word-level function (the model
/// allows unbounded local computation).
using Combiner = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

/// Ready-made combiners.
std::uint64_t comb_sum(std::uint64_t a, std::uint64_t b);
std::uint64_t comb_max(std::uint64_t a, std::uint64_t b);
std::uint64_t comb_min(std::uint64_t a, std::uint64_t b);
std::uint64_t comb_or(std::uint64_t a, std::uint64_t b);

/// Root floods `value` (one word; flag it as an ID with value_is_id so
/// receivers learn it). Returns the per-slot received value (members only).
std::vector<std::uint64_t> broadcast_from_root(ncc::Network& net,
                                               const TreeOverlay& tree,
                                               std::uint64_t value,
                                               bool value_is_id = false);

/// Convergecast of f over per-slot values; the root ends up with
/// f(all member values), which is returned.
std::uint64_t aggregate_to_root(ncc::Network& net, const TreeOverlay& tree,
                                const std::vector<std::uint64_t>& value,
                                const Combiner& f);

/// Aggregation followed by a root broadcast: every member learns f(all).
/// Returns the aggregate. O(log n) rounds total.
std::uint64_t aggregate_and_broadcast(ncc::Network& net,
                                      const TreeOverlay& tree,
                                      const std::vector<std::uint64_t>& value,
                                      const Combiner& f,
                                      bool value_is_id = false);

/// Theorem 4's designated-leader broadcast: the leader's token climbs to the
/// root along parent pointers, then floods down. 2·height rounds.
std::vector<std::uint64_t> broadcast_from_leader(ncc::Network& net,
                                                 const TreeOverlay& tree,
                                                 Slot leader,
                                                 std::uint64_t value,
                                                 bool value_is_id = false);

/// Argmax aggregation: every member contributes (key, its own ID); the root
/// learns the ID of a node with the maximum key (smallest ID on ties) and
/// floods it. Every member ends up knowing the winner's ID and key.
struct ArgmaxResult {
  std::uint64_t key = 0;
  ncc::NodeId id = ncc::kNoNode;  ///< winner (learned by every member)
};
ArgmaxResult aggregate_argmax(ncc::Network& net, const TreeOverlay& tree,
                              const std::vector<std::uint64_t>& key);

/// Corollary 2's second half: the median node of the path announces itself,
/// and its ID becomes common knowledge in O(log n) rounds. The median knows
/// it is the median from its position and the (common knowledge) length.
ncc::NodeId announce_median(ncc::Network& net, const TreeOverlay& tree,
                            const PathOverlay& path);

}  // namespace dgr::prim
