#include "primitives/bbst.h"

#include <algorithm>
#include <functional>

#include "util/check.h"
#include "util/math_util.h"

namespace dgr::prim {

namespace {

enum Tag : std::uint32_t {
  kTagGrandPred = 0x20,  // word0 = receiver's new level predecessor (ID)
  kTagGrandSucc = 0x21,  // word0 = receiver's new level successor (ID)
  kTagInviteLeft = 0x22,
  kTagInviteRight = 0x23,
  kTagAccept = 0x24,
  kTagUp = 0x25,    // word0 = subtree sum
  kTagDown = 0x26,  // word0 = prefix base for the receiver's subtree
  kTagWarmNoN = 0x27,   // word0 = my pred id or kNoNode, word1 = my succ id
  kTagWarmLeft = 0x28,  // "be my left child"
  kTagWarmRight = 0x29, // "be my right child (and your pred is gone)"
};

std::size_t member_count(const PathOverlay& path) { return path.order.size(); }

}  // namespace

std::size_t TreeOverlay::size() const {
  std::size_t c = 0;
  for (const auto& nd : nodes) c += nd.in_tree ? 1 : 0;
  return c;
}

// ------------------------------------------------------------------------
// Theorem 1: level structure + controlled BFS.
// ------------------------------------------------------------------------

TreeOverlay build_bbst(ncc::Network& net, PathOverlay& path) {
  ncc::ScopedRounds scope(net, "bbst/build");
  const std::size_t n = net.n();
  const std::size_t members = member_count(path);
  TreeOverlay tree;
  tree.nodes.assign(n, {});
  if (members == 0) return tree;

  const int levels = ceil_log2(members);  // L_0 .. L_levels

  // Per-node, per-level path links. lpred[k][s] / lsucc[k][s].
  std::vector<std::vector<NodeId>> lpred(
      static_cast<std::size_t>(levels) + 1, std::vector<NodeId>(n, kNoNode));
  auto lsucc = lpred;
  for (Slot s = 0; s < n; ++s) {
    if (!path.member(s)) continue;
    lpred[0][s] = path.pred[s];
    lsucc[0][s] = path.succ[s];
  }

  // Build L: level k links are the grand-links of level k-1. Each round
  // first ingests the grand-link announcements of the previous round, then
  // sends the next level's. One trailing round drains the last level.
  // Frontier: every member starts (level-0 links are initial knowledge);
  // from then on a node is active exactly when an announcement reached it —
  // nodes that fell off the ends of a level stop receiving and drop out.
  wake_members(net, path);
  for (int k = 1; k <= levels + 1; ++k) {
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!path.member(s)) return;
      // Ingest announcements for level k-1 (sent last round).
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() == kTagGrandPred) lpred[k - 1][s] = m.id_word(0);
        else if (m.tag() == kTagGrandSucc) lsucc[k - 1][s] = m.id_word(0);
      }
      if (k > levels) return;  // drain-only round
      // Announce grand links for level k.
      const NodeId p = lpred[k - 1][s];
      const NodeId q = lsucc[k - 1][s];
      if (q != kNoNode && p != kNoNode)
        ctx.send1_id(q, kTagGrandPred, p);
      if (p != kNoNode && q != kNoNode)
        ctx.send1_id(p, kTagGrandSucc, q);
    });
  }

  // Controlled BFS (Algorithm 1). The head of the path is the root.
  std::vector<std::uint8_t> in_sp(n, 0), in_ss(n, 0);
  std::vector<NodeId> invited_left(n, kNoNode), invited_right(n, kNoNode);

  for (Slot s = 0; s < n; ++s) {
    if (path.member(s) && path.pred[s] == kNoNode) {
      tree.nodes[s].in_tree = true;
      in_sp[s] = in_ss[s] = 1;
      tree.root = s;
    }
  }
  DGR_CHECK_MSG(tree.root != kNoSlot, "path has no head");

  auto ingest_accepts = [&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagAccept) continue;
      if (m.src() == invited_left[s]) tree.nodes[s].left = m.src();
      else if (m.src() == invited_right[s]) tree.nodes[s].right = m.src();
    }
  };

  // Frontier: the BFS wave carries itself (invitees and accept-receivers
  // are message recipients), plus a self-wake for every tree member that
  // still holds an unspent invitation flag — a node whose level-i link was
  // missing retries at lower levels, so it must stay on the frontier even
  // across rounds in which it neither sends nor receives.
  net.clear_active();
  net.wake(tree.root);
  for (int i = levels - 1; i >= 0; --i) {
    // Invite round.
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!path.member(s)) return;
      ingest_accepts(ctx);
      if (in_sp[s] && lpred[i][s] != kNoNode) {
        invited_left[s] = lpred[i][s];
        ctx.send(lpred[i][s], ncc::make_msg(kTagInviteLeft));
        in_sp[s] = 0;
      }
      if (in_ss[s] && lsucc[i][s] != kNoNode) {
        invited_right[s] = lsucc[i][s];
        ctx.send(lsucc[i][s], ncc::make_msg(kTagInviteRight));
        in_ss[s] = 0;
      }
      if (in_sp[s] || in_ss[s]) ctx.wake();
    });
    // Accept round.
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!path.member(s)) return;
      if (tree.nodes[s].in_tree) {
        if (in_sp[s] || in_ss[s]) ctx.wake();  // invite again next level
        return;
      }
      NodeId chosen = kNoNode;
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() != kTagInviteLeft && m.tag() != kTagInviteRight) continue;
        if (chosen == kNoNode || m.src() < chosen) chosen = m.src();
      }
      if (chosen == kNoNode) return;
      tree.nodes[s].in_tree = true;
      tree.nodes[s].parent = chosen;
      ctx.send(chosen, ncc::make_msg(kTagAccept));
      in_sp[s] = in_ss[s] = 1;
      ctx.wake();  // newly joined: invite at the next level down
    });
  }
  // Drain the final accepts.
  net.round_active([&](ncc::Ctx& ctx) {
    if (path.member(ctx.slot())) ingest_accepts(ctx);
  });

  DGR_CHECK_MSG(tree.size() == members, "BFS tree does not span the path");

  // Referee: height (for assertions).
  {
    std::function<int(Slot)> depth_of = [&](Slot s) -> int {
      const auto& nd = tree.nodes[s];
      int d = 1;
      if (nd.left != kNoNode)
        d = std::max(d, 1 + depth_of(net.slot_of(nd.left)));
      if (nd.right != kNoNode)
        d = std::max(d, 1 + depth_of(net.slot_of(nd.right)));
      return d;
    };
    tree.height = depth_of(tree.root);
  }

  // Corollary 2: inorder numbering = exclusive prefix sum of ones.
  std::vector<std::uint64_t> ones(n, 0);
  for (Slot s = 0; s < n; ++s) ones[s] = path.member(s) ? 1 : 0;
  const PrefixSums ps = tree_prefix_sum(net, tree, ones);
  for (Slot s = 0; s < n; ++s) {
    if (!path.member(s)) continue;
    tree.nodes[s].inorder = static_cast<Position>(ps.exclusive[s]);
    tree.nodes[s].subtree_size = ps.subtree[s];
    path.pos[s] = tree.nodes[s].inorder;
  }
  return tree;
}

// ------------------------------------------------------------------------
// Two-phase prefix sums (convergecast + top-down distribution).
// ------------------------------------------------------------------------

PrefixSums tree_prefix_sum(ncc::Network& net, const TreeOverlay& tree,
                           const std::vector<std::uint64_t>& value) {
  ncc::ScopedRounds scope(net, "bbst/prefix_sum");
  const std::size_t n = net.n();
  DGR_CHECK(value.size() == n);

  PrefixSums out;
  out.exclusive.assign(n, 0);
  out.subtree.assign(n, 0);

  std::vector<std::uint64_t> left_sum(n, 0), right_sum(n, 0);
  std::vector<std::uint8_t> left_done(n, 0), right_done(n, 0), sent_up(n, 0),
      got_base(n, 0);
  std::size_t members = 0;
  net.clear_active();
  for (Slot s = 0; s < n; ++s) {
    if (!tree.member(s)) continue;
    ++members;
    if (tree.nodes[s].left == kNoNode) left_done[s] = 1;
    if (tree.nodes[s].right == kNoNode) right_done[s] = 1;
    if (left_done[s] && right_done[s]) net.wake(s);  // leaves start the wave
  }
  if (members == 0) return out;

  // Phase 1: subtree sums climb to the root. A node joins the frontier the
  // round its last child's sum arrives; the wave drains when the root sent
  // (total activations O(members), rounds O(height)).
  net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!tree.member(s) || sent_up[s]) return;
    const auto& nd = tree.nodes[s];
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagUp) continue;
      if (m.src() == nd.left) {
        left_sum[s] = m.word(0);
        left_done[s] = 1;
      } else if (m.src() == nd.right) {
        right_sum[s] = m.word(0);
        right_done[s] = 1;
      }
    }
    if (left_done[s] && right_done[s]) {
      out.subtree[s] = value[s] + left_sum[s] + right_sum[s];
      sent_up[s] = 1;
      if (nd.parent != kNoNode)
        ctx.send(nd.parent, ncc::make_msg(kTagUp).push(out.subtree[s]));
    }
  });
  DGR_CHECK_MSG(sent_up[tree.root], "prefix-sum convergecast stalled");

  // Phase 2: prefix bases descend from the root.
  net.clear_active();
  net.wake(tree.root);
  net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!tree.member(s) || got_base[s]) return;
    const auto& nd = tree.nodes[s];
    std::uint64_t base = 0;
    bool have = false;
    if (s == tree.root) {
      have = true;
    } else {
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() == kTagDown && m.src() == nd.parent) {
          base = m.word(0);
          have = true;
        }
      }
    }
    if (!have) return;
    got_base[s] = 1;
    out.exclusive[s] = base + left_sum[s];
    if (nd.left != kNoNode) ctx.send1(nd.left, kTagDown, base);
    if (nd.right != kNoNode)
      ctx.send1(nd.right, kTagDown, base + left_sum[s] + value[s]);
  });
  for (Slot s = 0; s < n; ++s)
    DGR_CHECK_MSG(!tree.member(s) || got_base[s],
                  "prefix-sum distribution stalled");
  return out;
}

// ------------------------------------------------------------------------
// Warm-up tree (Figure 1).
// ------------------------------------------------------------------------

TreeOverlay build_warmup_tree(ncc::Network& net, const PathOverlay& path) {
  ncc::ScopedRounds scope(net, "bbst/warmup");
  const std::size_t n = net.n();
  TreeOverlay tree;
  tree.nodes.assign(n, {});
  const std::size_t members = member_count(path);
  if (members == 0) return tree;

  std::vector<NodeId> cur_pred = path.pred;
  std::vector<NodeId> cur_succ = path.succ;
  std::vector<NodeId> gp(n, kNoNode), gs(n, kNoNode);
  std::vector<std::uint8_t> active(n, 0);
  for (Slot s = 0; s < n; ++s) {
    if (path.member(s)) {
      active[s] = 1;
      tree.nodes[s].in_tree = true;
      if (path.pred[s] == kNoNode) tree.root = s;
    }
  }

  // Frontier: a node stays on it (self-wake) for as long as its own
  // `active` flag holds — heads retire in round B and stop waking, and the
  // whole construction ends when the frontier drains. The old atomic
  // active-node counter is gone.
  wake_members(net, path);
  const std::size_t iter_budget = 2 * ceil_log2(members) + 4;
  std::size_t iter = 0;
  while (net.has_active()) {
    DGR_CHECK_MSG(iter++ <= iter_budget, "warm-up tree stalled");
    // Round A: neighbour-of-neighbour exchange.
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!active[s]) return;
      gp[s] = gs[s] = kNoNode;
      auto m = ncc::make_msg(kTagWarmNoN);
      // Always two words; kNoNode is encoded as a plain word.
      if (cur_pred[s] != kNoNode) m.push_id(cur_pred[s]); else m.push(kNoNode);
      if (cur_succ[s] != kNoNode) m.push_id(cur_succ[s]); else m.push(kNoNode);
      if (cur_pred[s] != kNoNode) ctx.send(cur_pred[s], m);
      if (cur_succ[s] != kNoNode) ctx.send(cur_succ[s], m);
      ctx.wake();
    });
    // Round B: heads adopt children and retire; everyone rewires.
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!active[s]) return;
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() != kTagWarmNoN) continue;
        if (m.src() == cur_pred[s]) gp[s] = static_cast<NodeId>(m.word(0));
        else if (m.src() == cur_succ[s]) gs[s] = static_cast<NodeId>(m.word(1));
      }
      if (cur_pred[s] == kNoNode) {
        // Head: left child = successor, right child = grand-successor.
        if (cur_succ[s] != kNoNode) {
          tree.nodes[s].left = cur_succ[s];
          ctx.send(cur_succ[s], ncc::make_msg(kTagWarmLeft));
        }
        if (gs[s] != kNoNode) {
          tree.nodes[s].right = gs[s];
          ctx.send(gs[s], ncc::make_msg(kTagWarmRight));
        }
        active[s] = 0;  // retires: no self-wake, drops off the frontier
      } else {
        cur_pred[s] = gp[s];
        cur_succ[s] = gs[s];
        ctx.wake();
      }
    });
    // Round C: children record their parent; new heads drop dead preds.
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!active[s]) return;
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() == kTagWarmLeft || m.tag() == kTagWarmRight) {
          tree.nodes[s].parent = m.src();
          cur_pred[s] = kNoNode;
        }
      }
      ctx.wake();
    });
  }

  std::function<int(Slot)> depth_of = [&](Slot s) -> int {
    const auto& nd = tree.nodes[s];
    int d = 1;
    if (nd.left != kNoNode) d = std::max(d, 1 + depth_of(net.slot_of(nd.left)));
    if (nd.right != kNoNode)
      d = std::max(d, 1 + depth_of(net.slot_of(nd.right)));
    return d;
  };
  if (tree.root != kNoSlot) tree.height = depth_of(tree.root);
  return tree;
}

// ------------------------------------------------------------------------
// Referee validation.
// ------------------------------------------------------------------------

bool validate_tree(const ncc::Network& net, const TreeOverlay& tree,
                   const PathOverlay& path, bool require_search_order) {
  const std::size_t members = member_count(path);
  if (tree.size() != members) return false;
  if (members == 0) return true;
  if (tree.root == kNoSlot) return false;

  // Parent/child pointers must be mutually consistent and acyclic, and the
  // height must satisfy Theorem 1's bound.
  std::size_t visited = 0;
  bool ok = true;
  std::vector<Slot> inorder_slots;
  std::function<void(Slot, int)> walk = [&](Slot s, int depth) {
    if (!ok) return;
    ++visited;
    if (visited > members) {  // cycle guard
      ok = false;
      return;
    }
    const auto& nd = tree.nodes[s];
    if (nd.left != kNoNode) {
      const Slot l = net.slot_of(nd.left);
      if (tree.nodes[l].parent != net.id_of(s)) ok = false;
      walk(l, depth + 1);
    }
    inorder_slots.push_back(s);
    if (nd.right != kNoNode) {
      const Slot r = net.slot_of(nd.right);
      if (tree.nodes[r].parent != net.id_of(s)) ok = false;
      walk(r, depth + 1);
    }
  };
  walk(tree.root, 1);
  if (!ok || visited != members) return false;
  if (tree.height > ceil_log2(members) + 1) return false;
  if (require_search_order && inorder_slots != path.order) return false;
  return true;
}

}  // namespace dgr::prim
