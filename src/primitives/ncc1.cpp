#include "primitives/ncc1.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace dgr::prim {

namespace {

std::vector<Slot> slots_by_id(const ncc::Network& net) {
  std::vector<Slot> by_id(net.n());
  std::iota(by_id.begin(), by_id.end(), Slot{0});
  std::sort(by_id.begin(), by_id.end(), [&](Slot a, Slot b) {
    return net.id_of(a) < net.id_of(b);
  });
  return by_id;
}

}  // namespace

TreeOverlay common_knowledge_tree(const ncc::Network& net) {
  DGR_CHECK_MSG(net.is_clique(), "requires NCC1 (common ID knowledge)");
  const std::size_t n = net.n();
  const auto by_id = slots_by_id(net);
  TreeOverlay tree;
  tree.nodes.assign(n, {});
  for (std::size_t r = 0; r < n; ++r) {
    const Slot s = by_id[r];
    auto& nd = tree.nodes[s];
    nd.in_tree = true;
    if (r > 0) nd.parent = net.id_of(by_id[(r - 1) / 2]);
    if (2 * r + 1 < n) nd.left = net.id_of(by_id[2 * r + 1]);
    if (2 * r + 2 < n) nd.right = net.id_of(by_id[2 * r + 2]);
  }
  tree.root = by_id[0];
  int h = 0;
  for (std::size_t c = n; c > 0; c /= 2) ++h;
  tree.height = h;
  return tree;
}

PathOverlay common_knowledge_path(const ncc::Network& net) {
  DGR_CHECK_MSG(net.is_clique(), "requires NCC1 (common ID knowledge)");
  const std::size_t n = net.n();
  const auto by_id = slots_by_id(net);
  PathOverlay path;
  path.pred.assign(n, kNoNode);
  path.succ.assign(n, kNoNode);
  path.pos.assign(n, kNoPosition);
  path.is_member.assign(n, 1);
  path.order = by_id;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot s = by_id[i];
    path.pos[s] = static_cast<Position>(i);
    if (i > 0) path.pred[s] = net.id_of(by_id[i - 1]);
    if (i + 1 < n) path.succ[s] = net.id_of(by_id[i + 1]);
  }
  return path;
}

}  // namespace dgr::prim
