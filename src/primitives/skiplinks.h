// Skip-link (hyperring) overlay over a path with known positions.
//
// After positions are known (Corollary 2), pointer doubling gives every
// member the IDs of the members 2^k positions ahead/behind, for all k, in
// O(log n) rounds — these are exactly the level links of the paper's level
// structure L (level-k paths connect nodes 2^k apart). The overlay is the
// substrate for range multicast (range_cast.h), our realization of the
// paper's §3.2.3 group-communication primitives.
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"
#include "primitives/path.h"

namespace dgr::prim {

struct SkipOverlay {
  /// fwd[k][s] = ID of the member 2^k positions after s (kNoNode if none);
  /// bwd[k][s] symmetrically behind. Level count = max(1, ceil_log2(len)).
  std::vector<std::vector<NodeId>> fwd;
  std::vector<std::vector<NodeId>> bwd;

  int levels() const { return static_cast<int>(fwd.size()); }
};

/// Builds the skip overlay by pointer doubling; deterministic, O(log n)
/// rounds, capacity-safe (runs under OverflowPolicy::kStrict).
SkipOverlay build_skiplinks(ncc::Network& net, const PathOverlay& path);

/// Referee check: every link points to the member exactly 2^k away.
bool validate_skiplinks(const ncc::Network& net, const PathOverlay& path,
                        const SkipOverlay& skip);

}  // namespace dgr::prim
