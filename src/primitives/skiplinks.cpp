#include "primitives/skiplinks.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace dgr::prim {

namespace {
enum Tag : std::uint32_t {
  kTagSkipFwd = 0x30,  // word0 = receiver's new forward link
  kTagSkipBwd = 0x31,  // word0 = receiver's new backward link
};
}  // namespace

SkipOverlay build_skiplinks(ncc::Network& net, const PathOverlay& path) {
  ncc::ScopedRounds scope(net, "skiplinks/build");
  const std::size_t n = net.n();
  const std::size_t members = path.order.size();
  SkipOverlay skip;
  const int levels = std::max(1, ceil_log2(std::max<std::size_t>(members, 2)));
  skip.fwd.assign(static_cast<std::size_t>(levels),
                  std::vector<NodeId>(n, kNoNode));
  skip.bwd = skip.fwd;
  if (members == 0) return skip;

  for (Slot s = 0; s < n; ++s) {
    if (!path.member(s)) continue;
    skip.fwd[0][s] = path.succ[s];
    skip.bwd[0][s] = path.pred[s];
  }

  // Level k from level k-1: my 2^k-ahead is my 2^(k-1)-ahead's 2^(k-1)-ahead;
  // that node pushes the link to me (and symmetrically for behind). One send
  // round per level plus a trailing drain round.
  //
  // Frontier: every member starts (level-0 links are initial path
  // knowledge); afterwards a node sends at level k only if both its level
  // k-1 links exist, which for k >= 2 means both announcements reached it
  // last round — so receipt keeps exactly the needed nodes active, and the
  // 2^k nodes that fell off the path ends drop out of the frontier.
  wake_members(net, path);
  for (int k = 1; k <= levels; ++k) {
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!path.member(s)) return;
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() == kTagSkipFwd) skip.fwd[k - 1][s] = m.id_word(0);
        else if (m.tag() == kTagSkipBwd) skip.bwd[k - 1][s] = m.id_word(0);
      }
      if (k >= levels) return;  // final iteration only drains
      const NodeId ahead = skip.fwd[k - 1][s];
      const NodeId behind = skip.bwd[k - 1][s];
      if (behind != kNoNode && ahead != kNoNode)
        ctx.send1_id(behind, kTagSkipFwd, ahead);
      if (ahead != kNoNode && behind != kNoNode)
        ctx.send1_id(ahead, kTagSkipBwd, behind);
    });
  }
  return skip;
}

bool validate_skiplinks(const ncc::Network& net, const PathOverlay& path,
                        const SkipOverlay& skip) {
  const auto& order = path.order;
  const std::size_t len = order.size();
  for (int k = 0; k < skip.levels(); ++k) {
    const std::size_t d = std::size_t{1} << k;
    for (std::size_t i = 0; i < len; ++i) {
      const Slot s = order[i];
      const NodeId want_fwd =
          i + d < len ? net.id_of(order[i + d]) : kNoNode;
      const NodeId want_bwd = i >= d ? net.id_of(order[i - d]) : kNoNode;
      if (skip.fwd[static_cast<std::size_t>(k)][s] != want_fwd) return false;
      if (skip.bwd[static_cast<std::size_t>(k)][s] != want_bwd) return false;
    }
  }
  return true;
}

}  // namespace dgr::prim
