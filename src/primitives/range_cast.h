// Range multicast over the skip overlay — our realization of the paper's
// §3.2.3 group multicast (Theorem 7) for the group shapes its algorithms
// actually use: contiguous position ranges of a path.
//
// A task multicasts one payload word to every member whose position lies in
// [lo, hi]. The token first routes greedily toward the range (halving the
// distance each hop, O(log n) hops), then disseminates by binary splitting
// (each holder hands coverage halves to its skip neighbours, O(log range)
// rounds). Total messages per task = O(range + log n); each node relays at
// most O(log n) messages per task it participates in. Concurrent tasks
// share the round budget; oversubscription is absorbed by bounce + retry
// (Las-Vegas, like the paper's randomized primitives).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ncc/network.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"

namespace dgr::prim {

struct RangeCastTask {
  Position lo = 0;   ///< first target position (inclusive)
  Position hi = 0;   ///< last target position (inclusive)
  std::uint32_t user_tag = 0;
  std::uint64_t payload = 0;
  bool payload_is_id = false;  ///< receivers learn the payload as an ID
};

/// Delivery callback: invoked once per (member-of-range, task) pair, inside
/// that member's round body.
using RangeDeliver =
    std::function<void(Slot receiver, std::uint32_t user_tag,
                       std::uint64_t payload)>;

/// Runs all tasks to completion. tasks[s] are the tasks initiated by the
/// node in slot s (it must know its own position; lo/hi/payload are
/// node-local knowledge). Returns the number of rounds consumed.
std::uint64_t range_multicast(ncc::Network& net, const PathOverlay& path,
                              const SkipOverlay& skip,
                              const std::vector<std::vector<RangeCastTask>>& tasks,
                              const RangeDeliver& on_deliver);

}  // namespace dgr::prim
