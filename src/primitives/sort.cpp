#include "primitives/sort.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace dgr::prim {

namespace {

enum Tag : std::uint32_t {
  kTagSortRec = 0x70,   // words = [key, id] — compare-exchange payload
  kTagNeighRec = 0x71,  // words = [key, id] — post-sort neighbour exchange
  kTagNewPos = 0x72,    // words = [rank, pred, succ, flags]
};

struct Record {
  std::uint64_t key = 0;
  NodeId id = kNoNode;
};

struct Stage {
  std::uint64_t p;  // merge block size parameter
  std::uint64_t k;  // comparator stride (power of two)
};

/// Batcher odd-even merge-sort stage list for N = 2^levels elements.
std::vector<Stage> batcher_stages(std::uint64_t n_pow2) {
  std::vector<Stage> stages;
  for (std::uint64_t p = 1; p < n_pow2; p *= 2)
    for (std::uint64_t k = p; k >= 1; k /= 2) stages.push_back({p, k});
  return stages;
}

/// Is position x the lower end of a comparator in stage (p, k) of the
/// power-of-two network? (Standard iterative Batcher formulation: pairs
/// (j+i, j+i+k) with j ≡ k mod p (mod 2k), i in [0, k), constrained to a
/// common 2p-block.)
bool is_lower_end(std::uint64_t x, const Stage& st, std::uint64_t n_pow2) {
  const std::uint64_t k = st.k, p = st.p;
  if (x + k >= n_pow2) return false;
  const std::uint64_t r = x % (2 * k);
  const std::uint64_t j0 = k % p;
  if (r < j0 || r >= j0 + k) return false;
  return (x / (2 * p)) == ((x + k) / (2 * p));
}

// Defined below; shared tail of both sorting networks.
void finish_rewire(ncc::Network& net, const PathOverlay& path,
                   const std::vector<Record>& rec, SortResult& out);

}  // namespace

SortResult distributed_sort(ncc::Network& net, const PathOverlay& path,
                            const SkipOverlay& skip,
                            const std::vector<std::uint64_t>& key,
                            bool descending) {
  ncc::ScopedRounds scope(net, "sort");
  const std::size_t n = net.n();
  DGR_CHECK(key.size() == n);
  const std::size_t members = path.order.size();

  SortResult out;
  out.path.pred.assign(n, kNoNode);
  out.path.succ.assign(n, kNoNode);
  out.path.pos.assign(n, kNoPosition);
  out.path.is_member = path.is_member;
  out.path.order.assign(members, kNoSlot);
  if (members == 0) {
    out.skip = build_skiplinks(net, out.path);
    return out;
  }

  // records[s] = the (key, id) record currently held by the node at slot s;
  // the sorting network permutes records across position-holders.
  std::vector<Record> rec(n);
  for (Slot s = 0; s < n; ++s) {
    if (path.member(s)) rec[s] = {key[s], net.id_of(s)};
  }

  // `first` orders records; the lower comparator end keeps the first.
  auto first_of = [descending](const Record& a, const Record& b) {
    if (a.key != b.key) return descending ? a.key > b.key : a.key < b.key;
    return a.id < b.id;
  };

  const std::uint64_t n_pow2 = next_pow2(members);
  const auto stages = batcher_stages(n_pow2);

  // One round per stage: ingest the previous stage's exchange, then send
  // this stage's. pending_role[s]: 0 = idle, 1 = lower end, 2 = upper end.
  std::vector<std::uint8_t> pending_role(n, 0);
  auto ingest = [&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagSortRec) continue;
      const Record other{m.word(0), m.id_word(1)};
      if (pending_role[s] == 1) {
        if (first_of(other, rec[s])) rec[s] = other;
      } else if (pending_role[s] == 2) {
        if (first_of(other, rec[s])) {
          // other is the "first": the upper end keeps the later record,
          // which is its own — nothing to do.
        } else {
          rec[s] = other;
        }
      }
    }
    pending_role[s] = 0;
  };

  // Frontier: a Batcher stage involves nearly every position, and a node
  // idle at stage k can be a comparator end at stage k+1, so members hold
  // themselves active (self-wake) through the stage schedule — the stage
  // count is common knowledge — and release at the drain round, which ends
  // the wave. The engine still owes us the win that matters here: inboxes,
  // histograms, and frontier bookkeeping all scale with the traffic.
  wake_members(net, path);
  for (std::size_t si = 0; si <= stages.size(); ++si) {
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!path.member(s)) return;
      ingest(ctx);
      if (si == stages.size()) return;  // drain-only round
      ctx.wake();
      const Stage st = stages[si];
      const auto pos = static_cast<std::uint64_t>(path.pos[s]);
      NodeId partner = kNoNode;
      if (is_lower_end(pos, st, n_pow2) && pos + st.k < members) {
        pending_role[s] = 1;
        partner = skip.fwd[static_cast<std::size_t>(floor_log2(st.k))][s];
      } else if (pos >= st.k && is_lower_end(pos - st.k, st, n_pow2)) {
        pending_role[s] = 2;
        partner = skip.bwd[static_cast<std::size_t>(floor_log2(st.k))][s];
      }
      if (pending_role[s] != 0) {
        DGR_CHECK(partner != kNoNode);
        ctx.send(partner, ncc::make_msg(kTagSortRec)
                              .push(rec[s].key)
                              .push_id(rec[s].id));
      }
    });
  }

  finish_rewire(net, path, rec, out);
  return out;
}

namespace {
// Rewiring shared by both sorting networks. R1: each holder shows its final
// record to its original path neighbours. R2: each holder tells the
// record's owner its rank and new neighbours. R3: owners ingest. Fills
// out.path and builds the sorted skip overlay. R1 seeds the frontier with
// every member; R2 and R3 ride on receipt.
void finish_rewire(ncc::Network& net, const PathOverlay& path,
                   const std::vector<Record>& rec, SortResult& out) {
  const std::size_t n = net.n();
  std::vector<Record> nb_pred(n), nb_succ(n);
  wake_members(net, path);
  net.round_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!path.member(s)) return;
    auto m = ncc::make_msg(kTagNeighRec).push(rec[s].key).push_id(rec[s].id);
    if (path.pred[s] != kNoNode) ctx.send(path.pred[s], m);
    if (path.succ[s] != kNoNode) ctx.send(path.succ[s], m);
    ctx.wake();  // R2 runs for every member, even neighbourless singletons
  });
  net.round_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!path.member(s)) return;
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagNeighRec) continue;
      const Record r{m.word(0), m.id_word(1)};
      if (m.src() == path.pred[s]) nb_pred[s] = r;
      else if (m.src() == path.succ[s]) nb_succ[s] = r;
    }
    // Tell the owner of my record its rank and sorted-path neighbours.
    const auto rank = static_cast<std::uint64_t>(path.pos[s]);
    auto m = ncc::make_msg(kTagNewPos).push(rank);
    std::uint64_t flags = 0;
    if (nb_pred[s].id != kNoNode) {
      m.push_id(nb_pred[s].id);
      flags |= 1;
    } else {
      m.push(0);
    }
    if (nb_succ[s].id != kNoNode) {
      m.push_id(nb_succ[s].id);
      flags |= 2;
    } else {
      m.push(0);
    }
    m.push(flags);
    ctx.send(rec[s].id, m);
  });
  net.round_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!path.member(s)) return;
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagNewPos) continue;
      out.path.pos[s] = static_cast<Position>(m.word(0));
      const std::uint64_t flags = m.word(3);
      out.path.pred[s] = (flags & 1) ? m.id_word(1) : kNoNode;
      out.path.succ[s] = (flags & 2) ? m.id_word(2) : kNoNode;
    }
  });

  // Referee bookkeeping: the new order is read off the final records.
  for (Slot s = 0; s < n; ++s) {
    if (!path.member(s)) continue;
    const auto rank = static_cast<std::size_t>(path.pos[s]);
    out.path.order[rank] = net.slot_of(rec[s].id);
  }
  for (const Slot s : out.path.order) DGR_CHECK(s != kNoSlot);

  out.skip = build_skiplinks(net, out.path);
}
}  // namespace

SortResult transposition_sort(ncc::Network& net, const PathOverlay& path,
                              const std::vector<std::uint64_t>& key,
                              bool descending) {
  ncc::ScopedRounds scope(net, "sort_transposition");
  const std::size_t n = net.n();
  DGR_CHECK(key.size() == n);
  const std::size_t members = path.order.size();

  SortResult out;
  out.path.pred.assign(n, kNoNode);
  out.path.succ.assign(n, kNoNode);
  out.path.pos.assign(n, kNoPosition);
  out.path.is_member = path.is_member;
  out.path.order.assign(members, kNoSlot);
  if (members == 0) {
    out.skip = build_skiplinks(net, out.path);
    return out;
  }

  std::vector<Record> rec(n);
  for (Slot s = 0; s < n; ++s) {
    if (path.member(s)) rec[s] = {key[s], net.id_of(s)};
  }
  auto first_of = [descending](const Record& a, const Record& b) {
    if (a.key != b.key) return descending ? a.key > b.key : a.key < b.key;
    return a.id < b.id;
  };

  // Stage t compares pairs (i, i+1) with i ≡ t (mod 2); `members` stages
  // suffice (0-1 principle). pending_role: 1 = lower end, 2 = upper end.
  // Frontier: as in the Batcher network, members self-wake through the
  // (common knowledge) stage schedule and release at the drain round.
  std::vector<std::uint8_t> pending_role(n, 0);
  wake_members(net, path);
  for (std::size_t t = 0; t <= members; ++t) {
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!path.member(s)) return;
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() != kTagSortRec) continue;
        const Record other{m.word(0), m.id_word(1)};
        const bool other_first = first_of(other, rec[s]);
        if ((pending_role[s] == 1 && other_first) ||
            (pending_role[s] == 2 && !other_first)) {
          rec[s] = other;
        }
      }
      pending_role[s] = 0;
      if (t == members) return;  // drain-only round
      ctx.wake();
      const auto pos = static_cast<std::uint64_t>(path.pos[s]);
      NodeId partner = kNoNode;
      if (pos % 2 == t % 2 && path.succ[s] != kNoNode) {
        pending_role[s] = 1;
        partner = path.succ[s];
      } else if (pos >= 1 && (pos - 1) % 2 == t % 2) {
        pending_role[s] = 2;
        partner = path.pred[s];
      }
      if (pending_role[s] != 0) {
        DGR_CHECK(partner != kNoNode);
        ctx.send(partner, ncc::make_msg(kTagSortRec)
                              .push(rec[s].key)
                              .push_id(rec[s].id));
      }
    });
  }

  finish_rewire(net, path, rec, out);
  return out;
}

}  // namespace dgr::prim
