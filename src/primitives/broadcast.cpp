#include "primitives/broadcast.h"

#include "util/check.h"

namespace dgr::prim {

namespace {
enum Tag : std::uint32_t {
  kTagBcast = 0x50,     // word0 = value
  // 0x51 is detail::kTagAgg (broadcast.h — templated convergecast)
  kTagLeaderUp = 0x52,  // word0 = leader's token climbing to the root
  kTagArgmax = 0x53,    // word0 = best key, word1 = best node's ID
};
}  // namespace

std::vector<std::uint64_t> broadcast_from_root(ncc::Network& net,
                                               const TreeOverlay& tree,
                                               std::uint64_t value,
                                               bool value_is_id) {
  ncc::ScopedRounds scope(net, "broadcast");
  const std::size_t n = net.n();
  std::vector<std::uint64_t> out(n, 0);
  std::vector<std::uint8_t> got(n, 0);
  const std::size_t members = tree.size();
  if (members == 0) return out;

  // One-word wave payloads ride the wire-level fast path (Ctx::send1);
  // transcripts are identical to the Message path by contract.
  auto forward = [&](ncc::Ctx& ctx, std::uint64_t v) {
    const auto& nd = tree.nodes[ctx.slot()];
    auto fwd = [&](ncc::NodeId to) {
      if (value_is_id) ctx.send1_id(to, kTagBcast, v);
      else ctx.send1(to, kTagBcast, v);
    };
    if (nd.left != kNoNode) fwd(nd.left);
    if (nd.right != kNoNode) fwd(nd.right);
  };

  // The wave: the root starts; every other member joins the frontier the
  // round its parent's message arrives, forwards, and drops out. Total
  // activations = members, and the drain of the active set is the
  // termination signal (the old per-round full-slot rescan with an atomic
  // `reached` counter is gone).
  net.clear_active();
  net.wake(tree.root);
  net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!tree.member(s) || got[s]) return;
    if (s == tree.root) {
      out[s] = value;
      got[s] = 1;
      forward(ctx, value);
      return;
    }
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagBcast || m.src() != tree.nodes[s].parent) continue;
      out[s] = m.word(0);
      got[s] = 1;
      forward(ctx, out[s]);
      break;
    }
  });
  for (Slot s = 0; s < n; ++s)
    DGR_CHECK_MSG(!tree.member(s) || got[s], "broadcast wave stalled");
  return out;
}

std::uint64_t aggregate_to_root(ncc::Network& net, const TreeOverlay& tree,
                                const std::vector<std::uint64_t>& value,
                                const Combiner& f) {
  // Forward the type-erased combiner through the templated wave.
  return aggregate_to_root<const Combiner&>(net, tree, value, f);
}

std::uint64_t aggregate_and_broadcast(ncc::Network& net,
                                      const TreeOverlay& tree,
                                      const std::vector<std::uint64_t>& value,
                                      const Combiner& f, bool value_is_id) {
  const std::uint64_t agg = aggregate_to_root(net, tree, value, f);
  broadcast_from_root(net, tree, agg, value_is_id);
  return agg;
}

std::vector<std::uint64_t> broadcast_from_leader(ncc::Network& net,
                                                 const TreeOverlay& tree,
                                                 Slot leader,
                                                 std::uint64_t value,
                                                 bool value_is_id) {
  ncc::ScopedRounds scope(net, "broadcast");
  DGR_CHECK(tree.member(leader));
  // Up phase: the token climbs from the leader to the root — a frontier of
  // exactly one node per round.
  bool root_has = leader == tree.root;
  std::uint64_t at_root = value;
  bool leader_sent = false;
  net.clear_active();
  if (!root_has) net.wake(leader);
  while (!root_has) {
    net.round_active([&](ncc::Ctx& ctx) {
      const Slot s = ctx.slot();
      if (!tree.member(s)) return;
      std::uint64_t v = 0;
      bool have = false;
      if (s == leader && !leader_sent) {
        v = value;
        have = true;
        leader_sent = true;
      }
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() == kTagLeaderUp) {
          v = m.word(0);
          have = true;
        }
      }
      if (!have) return;
      if (s == tree.root) {
        at_root = v;
        root_has = true;  // workers sync on the round barrier before reads
        return;
      }
      if (value_is_id) ctx.send1_id(tree.nodes[s].parent, kTagLeaderUp, v);
      else ctx.send1(tree.nodes[s].parent, kTagLeaderUp, v);
    });
  }
  return broadcast_from_root(net, tree, at_root, value_is_id);
}

ArgmaxResult aggregate_argmax(ncc::Network& net, const TreeOverlay& tree,
                              const std::vector<std::uint64_t>& key) {
  ncc::ScopedRounds scope(net, "aggregate");
  const std::size_t n = net.n();
  DGR_CHECK(key.size() == n);
  const std::size_t members = tree.size();
  ArgmaxResult result;
  if (members == 0) return result;

  struct Best {
    std::uint64_t key = 0;
    NodeId id = kNoNode;
  };
  std::vector<Best> best(n);
  std::vector<std::uint8_t> left_done(n, 0), right_done(n, 0), sent(n, 0);
  net.clear_active();
  for (Slot s = 0; s < n; ++s) {
    if (!tree.member(s)) continue;
    best[s] = {key[s], net.id_of(s)};
    if (tree.nodes[s].left == kNoNode) left_done[s] = 1;
    if (tree.nodes[s].right == kNoNode) right_done[s] = 1;
    if (left_done[s] && right_done[s]) net.wake(s);  // leaves start
  }
  auto better = [](const Best& a, const Best& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id < b.id;
  };

  net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (!tree.member(s) || sent[s]) return;
    const auto& nd = tree.nodes[s];
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagArgmax) continue;
      const Best cand{m.word(0), m.id_word(1)};
      if (m.src() == nd.left) left_done[s] = 1;
      else if (m.src() == nd.right) right_done[s] = 1;
      else continue;
      if (better(cand, best[s])) best[s] = cand;
    }
    if (left_done[s] && right_done[s]) {
      sent[s] = 1;
      if (nd.parent != kNoNode) {
        ctx.send(nd.parent, ncc::make_msg(kTagArgmax)
                                .push(best[s].key)
                                .push_id(best[s].id));
      }
    }
  });
  DGR_CHECK_MSG(sent[tree.root], "argmax wave stalled");
  result.key = best[tree.root].key;
  result.id = best[tree.root].id;
  // Flood the winner: first its ID, then its key.
  broadcast_from_root(net, tree, result.id, /*value_is_id=*/true);
  broadcast_from_root(net, tree, result.key, /*value_is_id=*/false);
  return result;
}

ncc::NodeId announce_median(ncc::Network& net, const TreeOverlay& tree,
                            const PathOverlay& path) {
  const std::size_t members = path.order.size();
  DGR_CHECK(members > 0);
  const auto median_pos = static_cast<Position>((members - 1) / 2);
  // path.order is the referee's position -> slot table, so the median is a
  // direct lookup (the old code linearly scanned order for the slot whose
  // pos matched). The check still pins that positions were computed.
  const Slot median = path.order[static_cast<std::size_t>(median_pos)];
  DGR_CHECK_MSG(median != kNoSlot && path.pos[median] == median_pos,
                "positions not computed (run build_bbst)");
  broadcast_from_leader(net, tree, median, net.id_of(median),
                        /*value_is_id=*/true);
  return net.id_of(median);
}

}  // namespace dgr::prim
