// Path overlays (paper §3.1).
//
// A PathOverlay is the distributed "linear arrangement" the paper's
// algorithms march over: each member node knows the IDs of its predecessor
// and successor, and (after a BBST build) its 0-based position. The overlay
// struct stores that per-node state indexed by simulator slot, plus a
// referee-side `order` vector used only for verification.
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"

namespace dgr::prim {

using ncc::kNoNode;
using ncc::kNoPosition;
using ncc::kNoSlot;
using ncc::NodeId;
using ncc::Position;
using ncc::Slot;

struct PathOverlay {
  // --- node-local state (entry s belongs to the node in slot s) ---
  std::vector<NodeId> pred;        ///< predecessor ID (kNoNode at the head)
  std::vector<NodeId> succ;        ///< successor ID (kNoNode at the tail)
  std::vector<Position> pos;       ///< 0-based position; kNoPosition = unset
  std::vector<std::uint8_t> is_member;  ///< membership flag (sub-paths)

  // --- referee-side (verification only; nodes never read this) ---
  std::vector<Slot> order;         ///< position -> slot

  std::size_t length() const { return order.size(); }
  bool member(Slot s) const { return is_member[s] != 0; }
};

/// Converts the directed initial knowledge path Gk into an undirected,
/// ordered path in one round (each node sends its ID to its successor;
/// paper §3.1). The head is the node that receives no message.
PathOverlay undirect_initial_path(ncc::Network& net);

/// Referee helper: builds the overlay bookkeeping for a path whose order is
/// already known to the orchestrator (e.g. after a distributed sort). The
/// per-node pred/succ/pos fields must have been established in-protocol; this
/// only fills the referee `order`/membership vectors for verification.
PathOverlay referee_path(const ncc::Network& net,
                         const std::vector<Slot>& order);

/// Referee check: pred/succ/pos are mutually consistent with `order`.
bool validate_path(const ncc::Network& net, const PathOverlay& path);

/// Seed the engine's active set with every path member, dropping whatever
/// frontier a previous phase left behind (the in-model reading: each member
/// knows from its own state that the phase starts now). The standard
/// preamble of every frontier-driven primitive that begins with an
/// all-member round.
inline void wake_members(ncc::Network& net, const PathOverlay& path) {
  net.clear_active();
  for (const Slot s : path.order) net.wake(s);
}

}  // namespace dgr::prim
