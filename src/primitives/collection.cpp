#include "primitives/collection.h"

#include "ncc/send_queue.h"
#include "primitives/broadcast.h"
#include "util/check.h"

namespace dgr::prim {

namespace {
enum Tag : std::uint32_t {
  kTagCollect = 0x60,  // word0 = token
  kTagDirect = 0x61,   // word0 = payload, word1 = user tag
};
}  // namespace

std::vector<std::uint64_t> global_collect(
    ncc::Network& net, const TreeOverlay& tree, Slot leader,
    const std::vector<std::uint8_t>& has,
    const std::vector<std::uint64_t>& token) {
  ncc::ScopedRounds scope(net, "global_collect");
  const std::size_t n = net.n();
  DGR_CHECK(has.size() == n && token.size() == n);
  DGR_CHECK(tree.member(leader));

  // Make the leader's ID common knowledge over the tree (leader announces
  // itself; the token climbs to the root and floods down).
  broadcast_from_leader(net, tree, leader, net.id_of(leader),
                        /*value_is_id=*/true);

  std::vector<ncc::SendQueue> queues;
  queues.reserve(n);
  for (std::size_t s = 0; s < n; ++s) queues.emplace_back(kTagCollect);
  const NodeId leader_id = net.id_of(leader);
  for (Slot s = 0; s < n; ++s) {
    if (!has[s]) continue;
    queues[s].push(leader_id, ncc::make_msg(kTagCollect).push(token[s]));
  }

  // Frontier: token holders seed it (they know they contribute), receipt
  // keeps the leader on it, and queue backlog / in-flight sends hold a
  // contributor on it until its token is known-delivered.
  net.clear_active();
  for (Slot s = 0; s < n; ++s) {
    if (has[s]) net.wake(s);
  }
  // Only the leader's body appends, and a slot's body runs on exactly one
  // worker per round, so no synchronization is needed.
  std::vector<std::uint64_t> collected;
  net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (s == leader) {
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() != kTagCollect) continue;
        collected.push_back(m.word(0));
      }
    }
    queues[s].pump(ctx);
    if (!queues[s].idle()) ctx.wake();
  });
  return collected;
}

std::uint64_t direct_exchange(ncc::Network& net,
                              const std::vector<std::vector<DirectSend>>& batch,
                              const DirectDeliver& on_deliver) {
  ncc::ScopedRounds scope(net, "direct_exchange");
  const std::size_t n = net.n();
  DGR_CHECK(batch.size() == n);

  std::vector<ncc::SendQueue> queues;
  queues.reserve(n);
  for (std::size_t s = 0; s < n; ++s) queues.emplace_back(kTagDirect);
  for (Slot s = 0; s < n; ++s) {
    for (const auto& d : batch[s]) {
      auto m = ncc::make_msg(kTagDirect);
      if (d.payload_is_id) m.push_id(d.payload); else m.push(d.payload);
      m.push(d.user_tag);
      queues[s].push(d.dst, m);
    }
  }

  // Frontier: senders seed it, receipt carries delivery, backlog holds a
  // sender on it until its batch is known-delivered.
  net.clear_active();
  for (Slot s = 0; s < n; ++s) {
    if (!batch[s].empty()) net.wake(s);
  }
  return net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagDirect) continue;
      on_deliver(s, m.src(), static_cast<std::uint32_t>(m.word(1)), m.word(0));
    }
    queues[s].pump(ctx);
    if (!queues[s].idle()) ctx.wake();
  });
}

}  // namespace dgr::prim
