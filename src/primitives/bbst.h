// Balanced binary (search) trees over a path overlay (paper §3.1.1).
//
// build_bbst implements Theorem 1: the level structure L (each level keeps
// the odd/even-position subpaths of its parent level) followed by the
// controlled BFS of Algorithm 1. The result is a binary tree of height at
// most ceil(log2 n) + 1 whose inorder traversal is exactly the input path —
// so inorder numbering (computed here with a distributed prefix-sum pass)
// gives every node its path position (Corollary 2).
//
// build_warmup_tree implements the paper's warm-up construction (Figure 1):
// balanced and spanning, but not a search tree.
//
// All constructions are deterministic and respect the NCC capacities (they
// run unchanged under OverflowPolicy::kStrict).
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"
#include "primitives/path.h"

namespace dgr::prim {

struct TreeOverlay {
  struct Node {
    bool in_tree = false;
    NodeId parent = kNoNode;
    NodeId left = kNoNode;
    NodeId right = kNoNode;
    std::uint64_t subtree_size = 0;
    Position inorder = kNoPosition;
  };
  std::vector<Node> nodes;  ///< per slot
  Slot root = kNoSlot;      ///< referee convenience (the root also knows)
  int height = 0;           ///< referee-computed, for assertions

  bool member(Slot s) const { return nodes[s].in_tree; }
  std::size_t size() const;
};

/// Theorem 1 + Corollary 2: builds the balanced binary search tree over the
/// path members in O(log n) rounds and fills path.pos with each member's
/// 0-based path position.
TreeOverlay build_bbst(ncc::Network& net, PathOverlay& path);

/// Warm-up balanced binary tree (Figure 1): recursive head-extraction and
/// odd/even decomposition. Spanning + balanced, not a search tree.
TreeOverlay build_warmup_tree(ncc::Network& net, const PathOverlay& path);

/// Distributed two-phase prefix sums over the tree's inorder (= path) order.
struct PrefixSums {
  /// exclusive[s] = sum of value[t] over members t strictly before s.
  std::vector<std::uint64_t> exclusive;
  /// subtree[s] = sum of value[t] over the subtree rooted at s.
  std::vector<std::uint64_t> subtree;
};
PrefixSums tree_prefix_sum(ncc::Network& net, const TreeOverlay& tree,
                           const std::vector<std::uint64_t>& value);

/// Referee checks used by tests: binary/spanning/balanced (+ search-order on
/// request: inorder traversal equals path order).
bool validate_tree(const ncc::Network& net, const TreeOverlay& tree,
                   const PathOverlay& path, bool require_search_order);

}  // namespace dgr::prim
