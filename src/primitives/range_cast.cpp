#include "primitives/range_cast.h"

#include "ncc/send_queue.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dgr::prim {

namespace {

constexpr std::uint32_t kTagRangeToken = 0x40;

// Token wire format: words = [lo, hi, payload, user_tag]; the payload word
// carries the id flag when the task says so.
ncc::Message encode(Position lo, Position hi, const RangeCastTask& t) {
  auto m = ncc::make_msg(kTagRangeToken);
  m.push(static_cast<std::uint64_t>(lo));
  m.push(static_cast<std::uint64_t>(hi));
  if (t.payload_is_id) m.push_id(t.payload); else m.push(t.payload);
  m.push(t.user_tag);
  return m;
}

}  // namespace

std::uint64_t range_multicast(ncc::Network& net, const PathOverlay& path,
                              const SkipOverlay& skip,
                              const std::vector<std::vector<RangeCastTask>>& tasks,
                              const RangeDeliver& on_deliver) {
  ncc::ScopedRounds scope(net, "range_cast");
  const std::size_t n = net.n();
  DGR_CHECK(tasks.size() == n);
  const auto members = static_cast<Position>(path.order.size());

  std::vector<ncc::SendQueue> queues;
  queues.reserve(n);
  for (std::size_t s = 0; s < n; ++s) queues.emplace_back(kTagRangeToken);

  // Resolve a token held at position p covering [lo, hi]: deliver locally if
  // in range, then hand off coverage pieces along skip links. Every emitted
  // piece is self-describing, so relays need no per-task state.
  auto resolve = [&](ncc::Ctx& ctx, Position lo, Position hi,
                     const RangeCastTask& t) {
    const Slot s = ctx.slot();
    const Position p = path.pos[s];
    DGR_CHECK(p != kNoPosition && lo <= hi && hi < members && lo >= 0);
    auto link_fwd = [&](int k) { return skip.fwd[static_cast<std::size_t>(k)][s]; };
    auto link_bwd = [&](int k) { return skip.bwd[static_cast<std::size_t>(k)][s]; };

    if (p < lo) {
      // Route toward the range head, halving the remaining distance.
      const int k = floor_log2(static_cast<std::uint64_t>(lo - p));
      const NodeId via = link_fwd(k);
      DGR_CHECK(via != kNoNode);
      queues[s].push(via, encode(lo, hi, t));
      return;
    }
    if (p > hi) {
      const int k = floor_log2(static_cast<std::uint64_t>(p - hi));
      const NodeId via = link_bwd(k);
      DGR_CHECK(via != kNoNode);
      queues[s].push(via, encode(lo, hi, t));
      return;
    }

    // In range: deliver, then split both sides into power-of-two handoffs.
    on_deliver(s, t.user_tag, t.payload);
    Position c = hi;
    while (c > p) {  // right side (p, c]
      const int k = floor_log2(static_cast<std::uint64_t>(c - p));
      const Position q = p + (Position{1} << k);
      const NodeId via = link_fwd(k);
      DGR_CHECK(via != kNoNode);
      queues[s].push(via, encode(q, c, t));
      c = q - 1;
    }
    c = lo;
    while (c < p) {  // left side [c, p)
      const int k = floor_log2(static_cast<std::uint64_t>(p - c));
      const Position r = p - (Position{1} << k);
      const NodeId via = link_bwd(k);
      DGR_CHECK(via != kNoNode);
      queues[s].push(via, encode(c, r, t));
      c = r + 1;
    }
  };

  // Frontier: the initiators seed it (they know they hold tasks); token
  // receipt carries it; a node with queue backlog or in-flight sends holds
  // itself on it. The route drains when no token is anywhere in motion —
  // "active set empty" replaces the old atomic busy counter and its
  // all-slot rescans.
  net.clear_active();
  for (Slot s = 0; s < n; ++s) {
    if (!tasks[s].empty()) net.wake(s);
  }
  const std::uint64_t start = net.stats().rounds;
  return net.run_active([&](ncc::Ctx& ctx) {
    const Slot s = ctx.slot();
    if (net.stats().rounds == start) {
      for (const auto& t : tasks[s]) resolve(ctx, t.lo, t.hi, t);
    }
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() != kTagRangeToken) continue;
      RangeCastTask t;
      t.lo = m.sword(0);
      t.hi = m.sword(1);
      t.payload = m.word(2);
      t.payload_is_id = (m.id_mask() & (1u << 2)) != 0;
      t.user_tag = static_cast<std::uint32_t>(m.word(3));
      resolve(ctx, t.lo, t.hi, t);
    }
    queues[s].pump(ctx);
    if (!queues[s].idle()) ctx.wake();
  });
}

}  // namespace dgr::prim
