#include "primitives/reliable.h"

#include <atomic>
#include <deque>
#include <map>
#include <unordered_set>

#include "util/check.h"

namespace dgr::prim {

namespace {
enum Tag : std::uint32_t {
  kTagData = 0x80,  // words = [payload, user_tag, seq]
  kTagAck = 0x81,   // words = [seq]
};
}  // namespace

namespace {

ReliableResult reliable_exchange_impl(
    ncc::Network& net, const std::vector<std::vector<DirectSend>>& batch,
    const DirectDeliver& on_deliver, std::uint64_t retransmit_after,
    std::uint64_t max_attempts) {
  ncc::ScopedRounds scope(net, "reliable_exchange");
  const std::size_t n = net.n();
  DGR_CHECK(batch.size() == n);
  DGR_CHECK(retransmit_after >= 2);

  struct Entry {
    ncc::NodeId dst;
    DirectSend payload;
    std::uint64_t seq;
    std::uint64_t last_sent = 0;
    std::uint64_t attempts = 0;
  };
  struct SenderState {
    std::deque<std::size_t> fresh;  // indexes into entries
    // seq -> index. An ordered map on purpose: the retransmit loop below
    // iterates this container and SENDS under a per-round budget with an
    // early break, so iteration order is transcript-visible. An unordered
    // map would make which entries win the budget depend on the stdlib's
    // hash layout — ascending seq is the deterministic, oldest-first order.
    std::map<std::uint64_t, std::size_t> unacked;
    std::vector<Entry> entries;
  };
  struct ReceiverState {
    // Membership-only (insert + contains); iteration never happens, so
    // hash order can't leak into the transcript. det-ok: unordered_set
    std::unordered_set<std::uint64_t> seen;  // (src slot << 32) | seq
    std::deque<std::pair<ncc::NodeId, std::uint64_t>> acks_to_send;
  };

  std::vector<SenderState> send_state(n);
  std::vector<ReceiverState> recv_state(n);
  for (ncc::Slot s = 0; s < n; ++s) {
    auto& st = send_state[s];
    st.entries.reserve(batch[s].size());
    std::uint64_t seq = 0;
    for (const auto& d : batch[s]) {
      st.entries.push_back({d.dst, d, seq, 0, 0});
      st.fresh.push_back(st.entries.size() - 1);
      ++seq;
    }
  }

  auto make_data = [](const Entry& e) {
    auto m = ncc::make_msg(kTagData);
    if (e.payload.payload_is_id) m.push_id(e.payload.payload);
    else m.push(e.payload.payload);
    m.push(e.payload.user_tag);
    m.push(e.seq);
    return m;
  };

  const std::uint64_t start = net.stats().rounds;
  std::atomic<std::uint64_t> acked_total{0};
  std::atomic<std::uint64_t> given_up_total{0};
  std::atomic<std::size_t> busy{1};
  while (busy.load() != 0) {
    busy.store(0);
    net.round([&](ncc::Ctx& ctx) {
      const ncc::Slot s = ctx.slot();
      auto& snd = send_state[s];
      auto& rcv = recv_state[s];
      const std::uint64_t now = ctx.round();

      // Ingest: data -> (dedupe, deliver once, queue ack); acks -> settle.
      for (const auto m : ctx.inbox_view()) {
        if (m.tag() == kTagData) {
          const std::uint64_t seq = m.word(2);
          const std::uint64_t key =
              (static_cast<std::uint64_t>(net.slot_of(m.src())) << 32) | seq;
          if (rcv.seen.insert(key).second) {
            on_deliver(s, m.src(), static_cast<std::uint32_t>(m.word(1)),
                       m.word(0));
          }
          // Always (re-)ack — the previous ack may have been lost.
          rcv.acks_to_send.emplace_back(m.src(), seq);
        } else if (m.tag() == kTagAck) {
          if (snd.unacked.erase(m.word(0)) > 0) acked_total.fetch_add(1);
        }
      }

      // Acks first: they unblock the other side's retransmission budget.
      while (!rcv.acks_to_send.empty() && ctx.sends_left() > 0) {
        const auto [dst, seq] = rcv.acks_to_send.front();
        rcv.acks_to_send.pop_front();
        ctx.send1(dst, kTagAck, seq);
      }

      // Retransmit timed-out entries (bounces and drops look identical);
      // abandon entries that exhausted their attempt budget.
      for (auto it = snd.unacked.begin(); it != snd.unacked.end();) {
        Entry& e = snd.entries[it->second];
        if (now - e.last_sent < retransmit_after) {
          ++it;
          continue;
        }
        if (max_attempts > 0 && e.attempts >= max_attempts) {
          it = snd.unacked.erase(it);
          given_up_total.fetch_add(1);
          continue;
        }
        if (ctx.sends_left() <= 0) break;
        e.last_sent = now;
        ++e.attempts;
        ctx.send(e.dst, make_data(e));
        ++it;
      }

      // Fresh sends with the remaining budget.
      while (!snd.fresh.empty() && ctx.sends_left() > 0) {
        const std::size_t idx = snd.fresh.front();
        snd.fresh.pop_front();
        Entry& e = snd.entries[idx];
        e.last_sent = now;
        e.attempts = 1;
        snd.unacked.emplace(e.seq, idx);
        ctx.send(e.dst, make_data(e));
      }

      if (!snd.fresh.empty() || !snd.unacked.empty() ||
          !rcv.acks_to_send.empty()) {
        busy.fetch_add(1);
      }
    });
  }
  ReliableResult result;
  result.rounds = net.stats().rounds - start;
  result.delivered = acked_total.load();
  result.given_up = given_up_total.load();
  return result;
}

}  // namespace

std::uint64_t reliable_exchange(
    ncc::Network& net, const std::vector<std::vector<DirectSend>>& batch,
    const DirectDeliver& on_deliver, std::uint64_t retransmit_after) {
  return reliable_exchange_impl(net, batch, on_deliver, retransmit_after,
                                /*max_attempts=*/0)
      .rounds;
}

ReliableResult reliable_exchange_bounded(
    ncc::Network& net, const std::vector<std::vector<DirectSend>>& batch,
    const DirectDeliver& on_deliver, std::uint64_t retransmit_after,
    std::uint64_t max_attempts) {
  DGR_CHECK(max_attempts >= 1);
  return reliable_exchange_impl(net, batch, on_deliver, retransmit_after,
                                max_attempts);
}

}  // namespace dgr::prim
