#include "primitives/path.h"

#include "util/check.h"

namespace dgr::prim {

namespace {
constexpr std::uint32_t kTagUndirect = 0x10;
}  // namespace

PathOverlay undirect_initial_path(ncc::Network& net) {
  ncc::ScopedRounds scope(net, "path/undirect");
  const std::size_t n = net.n();
  PathOverlay path;
  path.pred.assign(n, kNoNode);
  path.succ.assign(n, kNoNode);
  path.pos.assign(n, kNoPosition);
  path.is_member.assign(n, 1);
  path.order = net.path_order();

  // Round 1: every node introduces itself to its initial successor.
  net.round([&](ncc::Ctx& ctx) {
    const NodeId s = ctx.initial_successor();
    path.succ[ctx.slot()] = s;
    if (s != kNoNode) ctx.send(s, ncc::make_msg(kTagUndirect));
  });
  // Round 2 (processing only): learn the predecessor from the inbox.
  net.round([&](ncc::Ctx& ctx) {
    for (const auto m : ctx.inbox_view()) {
      if (m.tag() == kTagUndirect) path.pred[ctx.slot()] = m.src();
    }
  });
  return path;
}

PathOverlay referee_path(const ncc::Network& net,
                         const std::vector<Slot>& order) {
  PathOverlay path;
  const std::size_t n = net.n();
  path.pred.assign(n, kNoNode);
  path.succ.assign(n, kNoNode);
  path.pos.assign(n, kNoPosition);
  path.is_member.assign(n, 0);
  path.order = order;
  for (const Slot s : order) path.is_member[s] = 1;
  return path;
}

bool validate_path(const ncc::Network& net, const PathOverlay& path) {
  const auto& order = path.order;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Slot s = order[i];
    if (!path.member(s)) return false;
    const NodeId want_pred = i == 0 ? kNoNode : net.id_of(order[i - 1]);
    const NodeId want_succ =
        i + 1 == order.size() ? kNoNode : net.id_of(order[i + 1]);
    if (path.pred[s] != want_pred) return false;
    if (path.succ[s] != want_succ) return false;
    if (path.pos[s] != kNoPosition &&
        path.pos[s] != static_cast<Position>(i))
      return false;
  }
  return true;
}

}  // namespace dgr::prim
