// Token collection primitives (paper §3.2.2 Theorem 5 and §3.2.3
// Theorem 8, as the algorithms use them).
//
// global_collect: a leader gathers one token from each node of a subset A.
// The leader's ID is first flooded over the tree (O(log n)); holders then
// send directly, paced by SendQueue back-pressure — O(|A|/log n + log n)
// rounds w.h.p., matching Theorem 5's O(k + log n) budget.
//
// direct_exchange: every node delivers a private batch of messages to
// destinations whose IDs it already knows (the Theorem 8 / Theorem 12
// pattern: one token per implicit edge). Rounds = O(max load / log n +
// log n) w.h.p.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "ncc/network.h"
#include "primitives/bbst.h"

namespace dgr::prim {

/// tokens[s] = the token node s contributes (nullopt encoded as has[s]=0).
/// Returns the multiset of tokens the leader collected (its local state).
std::vector<std::uint64_t> global_collect(
    ncc::Network& net, const TreeOverlay& tree, Slot leader,
    const std::vector<std::uint8_t>& has,
    const std::vector<std::uint64_t>& token);

/// One private message batch per node. on_deliver runs in the receiver's
/// round body. Returns rounds consumed.
struct DirectSend {
  NodeId dst;
  std::uint32_t user_tag = 0;
  std::uint64_t payload = 0;
  bool payload_is_id = false;
};
using DirectDeliver = std::function<void(
    Slot receiver, NodeId src, std::uint32_t user_tag, std::uint64_t payload)>;

std::uint64_t direct_exchange(ncc::Network& net,
                              const std::vector<std::vector<DirectSend>>& batch,
                              const DirectDeliver& on_deliver);

}  // namespace dgr::prim
