// Distributed sorting of a path by locally-known keys (paper §3.1.2,
// Theorem 3).
//
// The paper sorts in O(log^3 n) rounds by merging sorted sub-paths over the
// BBST. We realize the same interface with a Batcher odd-even merge-sort
// network executed on the position space: every comparator of the network
// pairs positions exactly 2^k apart, so partners are reachable over the skip
// overlay; each stage is one compare-exchange round. The network is padded
// to the next power of two with virtual +inf records — an easy invariant
// shows those never move, so comparators touching them are skipped. Total:
// O(log^2 n) deterministic rounds + O(1) rewiring rounds, strictly within
// the paper's O~(1)-per-phase budget (see DESIGN.md substitutions).
//
// Output: every node knows its rank (position in sorted order) and the IDs
// of its sorted-path neighbours; a fresh skip overlay is built on the new
// path for follow-up range operations.
#pragma once

#include <cstdint>
#include <vector>

#include "ncc/network.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"

namespace dgr::prim {

struct SortResult {
  PathOverlay path;  ///< sorted path (pred/succ/pos per node + referee order)
  SkipOverlay skip;  ///< skip links over the sorted path
};

/// Sorts the members of `path` by (key, ID) — ascending, or descending keys
/// with ascending-ID tie-break when `descending` is set. `key[s]` is node
/// s's locally-known key. Requires path.pos filled (build_bbst) and the
/// matching skip overlay. Deterministic and capacity-safe.
SortResult distributed_sort(ncc::Network& net, const PathOverlay& path,
                            const SkipOverlay& skip,
                            const std::vector<std::uint64_t>& key,
                            bool descending);

/// Ablation baseline: odd-even *transposition* sort. Uses only the path
/// neighbours (no skip links), which is the naive thing to do in NCC0 —
/// and costs Θ(n) rounds instead of polylog. Same output contract as
/// distributed_sort; kept for the E2 ablation experiment.
SortResult transposition_sort(ncc::Network& net, const PathOverlay& path,
                              const std::vector<std::uint64_t>& key,
                              bool descending);

}  // namespace dgr::prim
