// Zero-communication structures available in NCC1 (paper §2: KT1-style
// common knowledge of all IDs).
//
// Because every node holds the same sorted ID list, all nodes can agree on
// any deterministic structure over it without exchanging a single message.
// The paper's §6.1 algorithm implicitly uses this ("this step is done in
// O(1) time in the NCC1-model"); we expose the two structures the library
// needs.
#pragma once

#include "ncc/network.h"
#include "primitives/bbst.h"
#include "primitives/path.h"

namespace dgr::prim {

/// Complete binary tree (heap layout) over the ID-sorted order; suitable
/// for all tree primitives that don't need the search/inorder property
/// (broadcast, aggregation, argmax). Zero rounds.
TreeOverlay common_knowledge_tree(const ncc::Network& net);

/// Path overlay in ascending-ID order with positions filled — the NCC1
/// analogue of undirect+BBST+positions, in zero rounds. Supports skip-link
/// construction and sorting on top.
PathOverlay common_knowledge_path(const ncc::Network& net);

}  // namespace dgr::prim
