// Reliable exactly-once exchange over lossy links (§8 robustness
// extension).
//
// The paper's model assumes reliable links; real P2P networks drop packets.
// reliable_exchange delivers a private batch of messages per node with
// exactly-once semantics under independent per-message loss
// (Config::drop_probability): every data message carries a per-sender
// sequence number, receivers acknowledge and deduplicate, senders
// retransmit unacknowledged messages after a fixed timeout. Capacity
// bounces are treated uniformly as loss (the timeout recovers both), so the
// same code path handles congestion and link failure.
//
// Expected cost: O(load / ((1-p)^2 · log n) + log n) rounds for loss rate
// p — each attempt succeeds with probability (1-p) for the data and (1-p)
// for the ack.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ncc/network.h"
#include "primitives/collection.h"

namespace dgr::prim {

/// Runs until every message in `batch` has been delivered and acknowledged.
/// on_deliver fires exactly once per message, inside the receiver's round
/// body. Returns rounds consumed. Livelocks (until the round budget guard
/// fires) if a destination has crashed — use the bounded variant when
/// peers may be faulty.
std::uint64_t reliable_exchange(
    ncc::Network& net, const std::vector<std::vector<DirectSend>>& batch,
    const DirectDeliver& on_deliver, std::uint64_t retransmit_after = 4);

/// Crash-tolerant variant: a sender abandons a message after
/// `max_attempts` unacknowledged transmissions (so crashed destinations
/// cost bounded time instead of livelock). Delivered messages are still
/// exactly-once.
struct ReliableResult {
  std::uint64_t rounds = 0;
  std::uint64_t delivered = 0;  ///< acknowledged messages
  std::uint64_t given_up = 0;   ///< abandoned after max_attempts
};
ReliableResult reliable_exchange_bounded(
    ncc::Network& net, const std::vector<std::vector<DirectSend>>& batch,
    const DirectDeliver& on_deliver, std::uint64_t retransmit_after = 4,
    std::uint64_t max_attempts = 8);

}  // namespace dgr::prim
