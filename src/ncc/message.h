// NCC message: a tag plus at most four words, each standing for one
// O(log n)-bit field (an ID, a position, a degree, ...). Words flagged in
// id_mask are node IDs: delivering the message teaches them to the receiver,
// exactly like carrying an address inside a packet.
#pragma once

#include <array>
#include <cstdint>

#include "ncc/ids.h"
#include "util/check.h"

namespace dgr::ncc {

/// Maximum payload words per message (message size O(log n) bits).
inline constexpr std::size_t kMaxWords = 4;

struct Message {
  std::uint32_t tag = 0;
  std::uint8_t size = 0;      ///< number of words in use
  std::uint8_t id_mask = 0;   ///< bit i set => words[i] is a NodeId
  std::array<std::uint64_t, kMaxWords> words{};
  NodeId src = kNoNode;       ///< filled in by the engine on send

  /// Appends a plain word; returns *this for chaining.
  Message& push(std::uint64_t w) {
    DGR_CHECK_MSG(size < kMaxWords, "message payload overflow");
    words[size++] = w;
    return *this;
  }

  /// Appends a NodeId word; the receiver will learn this ID on delivery.
  Message& push_id(NodeId id) {
    DGR_CHECK_MSG(size < kMaxWords, "message payload overflow");
    id_mask = static_cast<std::uint8_t>(id_mask | (1u << size));
    words[size++] = id;
    return *this;
  }

  std::uint64_t word(std::size_t i) const {
    DGR_CHECK(i < size);
    return words[i];
  }

  /// Signed view of a word (positions may be sentinel -1).
  std::int64_t sword(std::size_t i) const {
    return static_cast<std::int64_t>(word(i));
  }

  NodeId id_word(std::size_t i) const {
    DGR_CHECK(i < size && (id_mask & (1u << i)));
    return static_cast<NodeId>(words[i]);
  }
};

/// Convenience constructor.
inline Message make_msg(std::uint32_t tag) {
  Message m;
  m.tag = tag;
  return m;
}

}  // namespace dgr::ncc
