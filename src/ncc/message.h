// NCC message: a tag plus at most four words, each standing for one
// O(log n)-bit field (an ID, a position, a degree, ...). Words flagged in
// id_mask are node IDs: delivering the message teaches them to the receiver,
// exactly like carrying an address inside a packet.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "ncc/ids.h"
#include "util/check.h"

namespace dgr::ncc {

/// Maximum payload words per message (message size O(log n) bits).
inline constexpr std::size_t kMaxWords = 4;

struct Message {
  std::uint32_t tag = 0;
  std::uint8_t size = 0;      ///< number of words in use
  std::uint8_t id_mask = 0;   ///< bit i set => words[i] is a NodeId
  std::array<std::uint64_t, kMaxWords> words{};
  NodeId src = kNoNode;       ///< filled in by the engine on send

  /// Appends a plain word; returns *this for chaining.
  Message& push(std::uint64_t w) {
    DGR_CHECK_MSG(size < kMaxWords, "message payload overflow");
    words[size++] = w;
    return *this;
  }

  /// Appends a NodeId word; the receiver will learn this ID on delivery.
  Message& push_id(NodeId id) {
    DGR_CHECK_MSG(size < kMaxWords, "message payload overflow");
    id_mask = static_cast<std::uint8_t>(id_mask | (1u << size));
    words[size++] = id;
    return *this;
  }

  std::uint64_t word(std::size_t i) const {
    DGR_CHECK(i < size);
    return words[i];
  }

  /// Signed view of a word (positions may be sentinel -1).
  std::int64_t sword(std::size_t i) const {
    return static_cast<std::int64_t>(word(i));
  }

  NodeId id_word(std::size_t i) const {
    DGR_CHECK(i < size && (id_mask & (1u << i)));
    return static_cast<NodeId>(words[i]);
  }
};

/// Convenience constructor.
inline Message make_msg(std::uint32_t tag) {
  Message m;
  m.tag = tag;
  return m;
}

/// The wire-record codec shared by the outbox arenas, the delivery
/// pipeline, and the inbox arena (the receive side stores records verbatim;
/// see InboxView in network.h). A record is `2 + size (+ trailer)` 64-bit
/// words:
///   word 0 — routing: src slot | dst slot << 32
///   word 1 — payload header: tag | size << 32 | id_mask << 40
///   words 2 .. 2+size-1 — the payload words actually in use
///   then, on learning (non-clique) networks only, one trailer word per
///   id_mask bit: that payload ID's slot, resolved at send time so the
///   delivery-side learn pass never touches the IdMap.
/// A one-word message costs 24 bytes instead of sizeof(Message) == 48, and
/// records are written and re-read strictly sequentially — no per-record
/// offsets exist anywhere; every consumer walks a cursor.
namespace wire {

inline constexpr std::size_t kHeaderWords = 2;

inline std::uint64_t routing_word(Slot src, Slot dst) {
  return static_cast<std::uint64_t>(src) | (static_cast<std::uint64_t>(dst) << 32);
}
inline std::uint64_t header_word(const Message& m) {
  return static_cast<std::uint64_t>(m.tag) |
         (static_cast<std::uint64_t>(m.size) << 32) |
         (static_cast<std::uint64_t>(m.id_mask) << 40);
}
/// Header for the one-word fast path (Ctx::send1 / send1_id): size == 1 and
/// id_mask == (is_id ? 1 : 0), precomputed so the encoder is three stores.
inline std::uint64_t header1_word(std::uint32_t tag, bool is_id) {
  return static_cast<std::uint64_t>(tag) | (std::uint64_t{1} << 32) |
         (static_cast<std::uint64_t>(is_id ? 1u : 0u) << 40);
}

inline Slot src(const std::uint64_t* rec) { return static_cast<Slot>(rec[0]); }
inline Slot dst(const std::uint64_t* rec) {
  return static_cast<Slot>(rec[0] >> 32);
}
/// Rewrite the destination in place (deliver() tombstones dropped records
/// with kNoSlot).
inline void retarget(std::uint64_t* rec, Slot dst) {
  rec[0] = (rec[0] & 0xffffffffULL) | (static_cast<std::uint64_t>(dst) << 32);
}
inline std::uint32_t tag(const std::uint64_t* rec) {
  return static_cast<std::uint32_t>(rec[1]);
}
inline std::uint8_t size(const std::uint64_t* rec) {
  return static_cast<std::uint8_t>(rec[1] >> 32);
}
inline std::uint8_t id_mask(const std::uint64_t* rec) {
  return static_cast<std::uint8_t>(rec[1] >> 40);
}
inline std::size_t trailer_words(std::uint8_t id_mask) {
  return static_cast<std::size_t>(std::popcount(static_cast<unsigned>(id_mask)));
}
/// Total 64-bit words the record occupies; `trailered` says whether this
/// network's records carry the ID-slot trailer (learning networks do,
/// clique networks skip learning and stay trailerless).
inline std::size_t record_words(const std::uint64_t* rec, bool trailered) {
  const std::uint64_t h = rec[1];
  std::size_t w = kHeaderWords + ((h >> 32) & 0xffu);
  if (trailered)
    w += trailer_words(static_cast<std::uint8_t>((h >> 40) & 0xffu));
  return w;
}
/// The ID-word slot trailer (valid only on trailered records).
inline const std::uint64_t* trailer(const std::uint64_t* rec) {
  return rec + kHeaderWords + ((rec[1] >> 32) & 0xffu);
}

/// Materialize a full Message from its record. Only the `size` payload
/// words in use are written; Message::word()/id_word() bound every read by
/// size, so the bytes past it are never observable — skipping the zero-fill
/// keeps 24B of stores per one-word message off the delivery path.
inline void decode(const std::uint64_t* rec, NodeId src_id, Message& out) {
  const std::uint64_t h = rec[1];
  out.tag = static_cast<std::uint32_t>(h);
  const auto sz = static_cast<std::uint8_t>(h >> 32);
  out.size = sz;
  out.id_mask = static_cast<std::uint8_t>(h >> 40);
  for (std::uint8_t w = 0; w < sz; ++w) out.words[w] = rec[kHeaderWords + w];
  out.src = src_id;
}

}  // namespace wire

}  // namespace dgr::ncc
