#include "ncc/knowledge.h"

// Header-only today; the translation unit anchors the target and leaves room
// for heavier knowledge representations (bitsets, bloom filters) later.
