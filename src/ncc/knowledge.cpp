#include "ncc/knowledge.h"

// The hot membership/insert paths are header-inline; only table growth and
// the sparse -> dense promotion live here (cold by construction: a node
// pays them O(log known) times over a whole simulation).

namespace dgr::ncc {

void Knowledge::grow() {
  const std::size_t next = tab_.size() * 2;
  const std::size_t bitset_words = (n_ + 63) / 64;
  if (next * sizeof(std::uint32_t) >= bitset_words * sizeof(std::uint64_t)) {
    // Promote: the doubled table would use at least the bitset's memory.
    words_.assign(bitset_words, 0);
    for (const std::uint32_t v : tab_) {
      if (v != kEmpty) words_[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
    tab_.clear();
    tab_.shrink_to_fit();
    dense_ = true;
    return;
  }
  std::vector<std::uint32_t> old = std::move(tab_);
  tab_.assign(next, kEmpty);
  const std::size_t mask = next - 1;
  for (const std::uint32_t v : old) {
    if (v == kEmpty) continue;
    std::size_t i = probe_start(v, mask);
    while (tab_[i] != kEmpty) i = (i + 1) & mask;
    tab_[i] = v;
  }
}

}  // namespace dgr::ncc
