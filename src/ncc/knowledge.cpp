#include "ncc/knowledge.h"

// Header-only (the bitset operations must inline into the engine datapath);
// the translation unit anchors the target.
