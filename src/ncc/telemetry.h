// Per-round telemetry hook for the round engine (§8 robustness harness).
//
// A TelemetrySink attached with Network::set_telemetry receives one
// RoundSample at the end of every delivery — after the round's frontier has
// been rebuilt and all statistics folded, but before the next round starts.
// The sample carries this round's deltas (not cumulative totals), so a
// collector can fold intervals without differencing NetStats snapshots.
//
// The hook is referee context: the engine guarantees no round body is
// executing when on_round fires, so a sink may legally steer the
// simulation — net.crash(s), net.set_drop_probability(p) — and the change
// takes effect from the next round. This is exactly how the scenario
// orchestrator (src/scenario/) injects its compiled fault schedule.
//
// Cost when detached: a handful of predictable branches per round (the
// sink-null check plus one per phase-timer boundary, all on the same cached
// flag) and no per-message work; none of the sample fields require extra
// bookkeeping on the hot path (every value is already computed by the
// delivery pipeline), and no clock is read while detached. bench_engine's
// flood A/B pins the detached overhead at threads=1.
#pragma once

#include <cstdint>

#include "ncc/stats.h"

namespace dgr::ncc {

/// One completed round's engine-visible activity. Every field is invariant
/// across worker-thread counts and across sparse/dense scheduling of the
/// same bodies (the transcript contract), EXCEPT the execution-strategy
/// flags at the bottom, which describe how the engine chose to run the
/// round — consumers that promise byte-identical output across schedulers
/// (e.g. scenario reports) must not serialize those.
struct RoundSample {
  std::uint64_t round = 0;       ///< index of the round that just completed
  std::uint64_t sent = 0;        ///< messages accepted by Ctx::send
  std::uint64_t delivered = 0;   ///< reached an inbox
  std::uint64_t bounced = 0;     ///< returned to sender (overflow)
  std::uint64_t dropped = 0;     ///< lost to link loss or crashed receiver
  std::uint32_t max_send = 0;    ///< max per-node sends this round
  std::uint32_t max_recv = 0;    ///< max per-node arrivals this round
  std::uint32_t touched_dests = 0;  ///< destinations with >= 1 arrival
  std::uint64_t inbox_words = 0;    ///< inbox arena extent this round (words)
  std::uint32_t frontier = 0;    ///< next round's active-set size
  bool frontier_tracked = false; ///< frontier == 0 means "untracked" if false
  std::uint32_t crashed = 0;     ///< total crashed nodes after this round

  // Execution strategy (bookkeeping choices, not transcript content).
  bool dense_fast_path = false;  ///< send-side histogram upkeep was bypassed
  bool dense_sweep = false;      ///< delivery used sequential O(n) sweeps
  bool sparse_dispatch = false;  ///< bodies ran on the active list only

  /// This round's per-phase wall time (body / sort / rng / placement /
  /// learn; ncc/stats.h). Wall-clock measurement, NOT transcript content —
  /// values vary run to run and with the thread count, so byte-determinism
  /// consumers must not serialize them (same rule as the strategy flags).
  PhaseNanos phase_ns;
};

/// Attach with Network::set_telemetry(&sink); detach with nullptr. The
/// Network does not own the sink; it must outlive the attachment.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_round(const RoundSample& sample) = 0;
};

}  // namespace dgr::ncc
