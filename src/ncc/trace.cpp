#include "ncc/trace.h"

#include <algorithm>
#include <ostream>

namespace dgr::ncc {

void Trace::record(const TraceEvent& e) {
  ++total_;
  ++per_tag_[e.tag];
  ++per_round_[e.round];
  switch (e.outcome) {
    case MessageOutcome::kDelivered: ++delivered_; break;
    case MessageOutcome::kBounced: ++bounced_; break;
    case MessageOutcome::kDropped: ++dropped_; break;
  }
  if (events_.size() < max_events_) events_.push_back(e);
}

std::pair<std::uint64_t, std::uint64_t> Trace::busiest_round() const {
  std::pair<std::uint64_t, std::uint64_t> best{0, 0};
  for (const auto& [round, count] : per_round_) {
    if (count > best.second) best = {round, count};
  }
  return best;
}

void Trace::write_csv(std::ostream& os) const {
  os << "round,src,dst,tag,outcome\n";
  for (const auto& e : events_) {
    const char* outcome = e.outcome == MessageOutcome::kDelivered ? "delivered"
                          : e.outcome == MessageOutcome::kBounced ? "bounced"
                                                                  : "dropped";
    os << e.round << ',' << e.src << ',' << e.dst << ',' << e.tag << ','
       << outcome << '\n';
  }
}

void Trace::clear() {
  events_.clear();
  per_tag_.clear();
  per_round_.clear();
  total_ = 0;
  delivered_ = bounced_ = dropped_ = 0;
}

}  // namespace dgr::ncc
