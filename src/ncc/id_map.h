// O(1) NodeId -> Slot resolution for the round-engine hot path.
//
// Ctx::send resolves the destination ID (and re-checks every forwarded ID
// word) on every message, so this lookup sits on the innermost datapath.
// Two layouts:
//   - dense: when IDs are exactly 1..n in slot order (Config::random_ids ==
//     false, and any future contiguous assignment), find() is a subtraction;
//   - hashed: otherwise an open-addressing table with linear probing and a
//     Fibonacci multiply-shift hash, sized to a power of two at load factor
//     <= 0.5. Lookups touch one cache line in the common case — no pointer
//     chasing, no modulo, no std::hash indirection.
// The table is built once at Network construction and never mutated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ncc/ids.h"

namespace dgr::ncc {

class IdMap {
 public:
  /// (Re)build from the slot -> ID table. IDs must be unique and non-zero.
  void build(const std::vector<NodeId>& ids) {
    n_ = ids.size();
    dense_ = true;
    for (std::size_t s = 0; s < n_; ++s) {
      if (ids[s] != static_cast<NodeId>(s + 1)) {
        dense_ = false;
        break;
      }
    }
    if (dense_) {
      table_.clear();
      shift_ = 64;
      return;
    }
    std::size_t cap = 16;
    shift_ = 60;
    while (cap < 2 * n_) {
      cap <<= 1;
      --shift_;
    }
    table_.assign(cap, Entry{kNoNode, kNoSlot});
    const std::size_t mask = cap - 1;
    for (std::size_t s = 0; s < n_; ++s) {
      std::size_t h = probe_start(ids[s]);
      while (table_[h].key != kNoNode) h = (h + 1) & mask;
      table_[h] = {ids[s], static_cast<Slot>(s)};
    }
  }

  /// Slot holding `id`, or kNoSlot when no node has that ID.
  Slot find(NodeId id) const {
    if (id == kNoNode) return kNoSlot;
    if (dense_) {
      return id <= n_ ? static_cast<Slot>(id - 1) : kNoSlot;
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t h = probe_start(id);
    while (table_[h].key != kNoNode) {
      if (table_[h].key == id) return table_[h].slot;
      h = (h + 1) & mask;
    }
    return kNoSlot;
  }

 private:
  // Key and slot share an entry so a hit costs a single cache-line touch.
  struct Entry {
    NodeId key;  // kNoNode == empty
    Slot slot;
  };

  std::size_t probe_start(NodeId id) const {
    return static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ULL) >> shift_);
  }

  std::size_t n_ = 0;
  bool dense_ = true;
  unsigned shift_ = 64;           // 64 - log2(table size)
  std::vector<Entry> table_;
};

}  // namespace dgr::ncc
