// O(1) NodeId -> Slot resolution for the round-engine hot path.
//
// Ctx::send resolves the destination ID (and re-checks every forwarded ID
// word) on every message, so this lookup sits on the innermost datapath.
// Two layouts:
//   - dense: when IDs are exactly 1..n in slot order (Config::random_ids ==
//     false, and any future contiguous assignment), find() is a subtraction;
//   - hashed: otherwise an open-addressing table with linear probing and a
//     Fibonacci multiply-shift hash, sized to a power of two at load factor
//     <= 0.5. Entries are 8 bytes — a truncated 32-bit key tag plus the
//     slot — so the whole table is half the size of a (u64 key, slot)
//     layout and stays cache-resident far longer; a tag match is verified
//     against the authoritative slot -> ID array (a dense, slot-indexed
//     lookup) before it is trusted, which also disambiguates genuine
//     32-bit tag collisions.
// The table is built once at Network construction and never mutated. find()
// sits on the engine's innermost loop (every send resolves its destination
// and every forwarded-ID check resolves the ID), so its footprint is the
// datapath's footprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ncc/ids.h"

namespace dgr::ncc {

class IdMap {
 public:
  /// (Re)build from the slot -> ID table. IDs must be unique and non-zero.
  /// `ids` must stay alive and unchanged for the lifetime of the map (the
  /// Network owns both and never mutates the ID assignment).
  void build(const std::vector<NodeId>& ids) {
    ids_ = &ids;
    n_ = ids.size();
    dense_ = true;
    for (std::size_t s = 0; s < n_; ++s) {
      if (ids[s] != static_cast<NodeId>(s + 1)) {
        dense_ = false;
        break;
      }
    }
    if (dense_) {
      table_.clear();
      shift_ = 64;
      return;
    }
    std::size_t cap = 16;
    shift_ = 60;
    while (cap < 2 * n_) {
      cap <<= 1;
      --shift_;
    }
    table_.assign(cap, Entry{0, kNoSlot});
    const std::size_t mask = cap - 1;
    for (std::size_t s = 0; s < n_; ++s) {
      std::size_t h = probe_start(ids[s]);
      while (table_[h].slot != kNoSlot) h = (h + 1) & mask;
      table_[h] = {static_cast<std::uint32_t>(ids[s]), static_cast<Slot>(s)};
    }
  }

  /// Slot holding `id`, or kNoSlot when no node has that ID.
  Slot find(NodeId id) const {
    if (id == kNoNode) return kNoSlot;
    if (dense_) {
      return id <= n_ ? static_cast<Slot>(id - 1) : kNoSlot;
    }
    const std::vector<NodeId>& ids = *ids_;
    const std::uint32_t tag = static_cast<std::uint32_t>(id);
    const std::size_t mask = table_.size() - 1;
    std::size_t h = probe_start(id);
    while (table_[h].slot != kNoSlot) {
      // Tag hit: confirm against the authoritative slot -> ID array (two
      // known IDs may share the low 32 bits; a wrong slot must not leak).
      if (table_[h].tag == tag && ids[table_[h].slot] == id)
        return table_[h].slot;
      h = (h + 1) & mask;
    }
    return kNoSlot;
  }

 private:
  // Truncated key + slot in 8 bytes; kNoSlot marks an empty entry.
  struct Entry {
    std::uint32_t tag;  // low 32 bits of the NodeId
    Slot slot;
  };

  std::size_t probe_start(NodeId id) const {
    return static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ULL) >> shift_);
  }

  const std::vector<NodeId>* ids_ = nullptr;
  std::size_t n_ = 0;
  bool dense_ = true;
  unsigned shift_ = 64;           // 64 - log2(table size)
  std::vector<Entry> table_;
};

}  // namespace dgr::ncc
