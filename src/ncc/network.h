// The NCC round engine (paper §2).
//
// A Network owns n nodes with unique IDs, their knowledge sets, and the
// synchronous round loop. All protocol communication flows through
// Ctx::send, which enforces the two model rules:
//   1. the sender must know the destination's ID (KT0 knowledge), and
//   2. a node sends at most `capacity()` messages per round.
// Receive capacity is enforced at delivery; see OverflowPolicy.
//
// Protocol style: orchestration code calls net.round(body) once per
// synchronous round; `body` runs once per node and must use only that node's
// local state plus ctx.inbox(). Messages sent in round t are visible in
// inboxes during round t+1. Referee-side accessors (slot_of, path_order, ...)
// exist for verification and test assertions only.
//
// Datapath layout (perf-critical, see EXPERIMENTS.md for the benchmarks):
//   - round bodies run on a persistent worker pool (Config::threads), woken
//     by a generation barrier — no thread spawn/join per round;
//   - each worker wire-encodes sends into a private flat outbox arena of
//     variable-length records (a one-word message costs 24 bytes, not
//     sizeof(Message)); arenas concatenate to global source-slot order,
//     making the transcript identical for any thread count;
//   - deliver() counting-sorts messages by destination and copies each
//     payload exactly once, straight to its final position in a shared flat
//     inbox arena that per-node inbox spans point into — no vector-of-
//     vectors churn (with a Trace attached, a reference-sorting path
//     reproduces the seed engine's exact event order for completed rounds;
//     a strict-mode overflow now throws before any delivery events);
//   - ID -> slot resolution is O(1) (IdMap) and knowledge is a slot-indexed
//     bitset (Knowledge), so the send path does no hashing of std::unordered
//     containers and no binary search; Ctx::send is header-inline (the build
//     has no LTO) with its failure diagnostics outlined to Network::send_fail
//     so round bodies pay one lean inlined path per message.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "ncc/config.h"
#include "ncc/id_map.h"
#include "ncc/ids.h"
#include "ncc/knowledge.h"
#include "ncc/message.h"
#include "ncc/stats.h"
#include "ncc/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr::ncc {

class Network;

/// A message returned to its sender because the receiver was oversubscribed.
struct Bounced {
  NodeId dst = kNoNode;
  Message msg;
};

/// Per-node view handed to the round body. Only node-local information is
/// reachable through it.
class Ctx {
 public:
  NodeId id() const;
  Slot slot() const { return slot_; }
  /// n is common knowledge in the model (paper §3.1.1 assumes it).
  std::size_t n() const;
  /// Global synchronous round number (common knowledge: nodes count rounds).
  std::uint64_t round() const;
  /// Per-round send/receive budget, Theta(log n) messages.
  int capacity() const;
  /// Send budget still available to this node in the current round.
  int sends_left() const;

  bool knows(NodeId id) const;
  /// Initial knowledge: ID of this node's successor in the directed path Gk
  /// (kNoNode for the last node, or in clique mode).
  NodeId initial_successor() const;
  /// NCC1 only: the sorted list of all IDs (common knowledge in KT1).
  std::span<const NodeId> all_ids() const;

  /// Queue a message for delivery next round. Enforces knowledge + send cap.
  void send(NodeId to, Message m);

  /// Messages delivered to this node at the start of the current round.
  std::span<const Message> inbox() const;
  /// This node's sends from the previous round that were bounced.
  std::span<const Bounced> bounced() const;

  /// Node-private random stream (stable across runs and thread counts).
  Rng& rng();

 private:
  friend class Network;
  struct OutArena;
  Ctx(Network& net, Slot slot, OutArena* out)
      : net_(net), slot_(slot), out_(out) {}
  Network& net_;
  Slot slot_;
  OutArena* out_;  // this worker's flat outbox arena
  int sends_ = 0;  // this node's sends this round (engine copies it out)
};

/// One worker's outbox: a single flat stream of variable-length wire
/// records, each `2 + size` 64-bit words:
///   word 0 — routing header: src slot | dst slot << 32
///   word 1 — payload header: tag | size << 32 | id_mask << 40
///   then only the `size` payload words actually in use.
/// A one-word message costs 24 bytes instead of sizeof(Message) == 48, and
/// appending costs one bounds check and three sequential stores. The stream
/// is written and re-read strictly sequentially, so no per-record offsets
/// exist; deliver() walks it with a cursor and materializes full Message
/// structs only at their final inbox position.
struct Ctx::OutArena {
  std::unique_ptr<std::uint64_t[]> buf;
  std::size_t len = 0;  // words used
  std::size_t cap = 0;  // words allocated
  // Per-destination send counts, maintained by Ctx::send so the reliable-
  // network fast path in deliver() never has to re-stream the records just
  // to build its counting-sort histogram. Zeroed per round in run_slots.
  // Maintained even on lossy networks (where deliver() rebuilds counts
  // post-drop and ignores this): set_drop_probability is a live knob, and
  // gating the upkeep would put a branch on the reliable send path.
  std::vector<std::uint32_t> hist;

  void clear() { len = 0; }

  std::uint64_t* append(std::size_t words) {
    if (len + words > cap) [[unlikely]] grow(words);
    std::uint64_t* p = buf.get() + len;
    len += words;
    return p;
  }

 private:
  void grow(std::size_t need);  // cold: doubles capacity
};

class Network {
 public:
  Network(std::size_t n, Config cfg = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t n() const { return n_; }
  const Config& config() const { return cfg_; }
  int capacity() const { return capacity_; }
  bool is_clique() const { return cfg_.initial == InitialKnowledge::kClique; }

  /// Execute one synchronous round: run `body` once per node, then deliver.
  /// The templated overload dispatches the body through a direct call (no
  /// std::function type erasure) — use it in tight loops; the std::function
  /// overload remains for stored/polymorphic bodies.
  template <typename Body,
            typename = std::enable_if_t<std::is_invocable_v<Body&, Ctx&>>>
  void round(Body&& body) {
    using B = std::remove_reference_t<Body>;
    round_raw(const_cast<void*>(static_cast<const void*>(std::addressof(body))),
              [](void* b, Ctx& ctx) { (*static_cast<B*>(b))(ctx); });
  }
  void round(const std::function<void(Ctx&)>& body);

  /// Run `body` every round until `done()` (referee-side predicate) returns
  /// true, checking before each round. Returns rounds executed.
  std::uint64_t run_until(const std::function<bool()>& done,
                          const std::function<void(Ctx&)>& body);

  const NetStats& stats() const { return stats_; }
  void add_scope_rounds(const std::string& name, std::uint64_t r) {
    stats_.scope_rounds[name] += r;
  }

  /// Adjust the link-loss rate mid-simulation (referee-side experiment
  /// control; e.g. run a lossless build phase, then a lossy exchange).
  void set_drop_probability(double p) { cfg_.drop_probability = p; }

  /// Attach (or detach with nullptr) a message-level trace. The Network
  /// does not own the trace; it must outlive the attachment.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Crash-fault injection (§8 robustness experiments): a crashed node
  /// stops executing round bodies and every message addressed to it is
  /// lost (senders get no feedback — a crash is indistinguishable from
  /// loss, which is what makes it interesting).
  void crash(Slot s) {
    if (!crashed_[s]) {
      crashed_[s] = 1;
      ++crashed_n_;
    }
  }
  bool is_crashed(Slot s) const { return crashed_[s] != 0; }
  std::size_t crashed_count() const { return crashed_n_; }

  // --- Referee-side accessors (verification / test assertions only) ---
  NodeId id_of(Slot s) const { return ids_[s]; }
  Slot slot_of(NodeId id) const;
  /// Path order of Gk: path_order()[i] is the slot at path position i.
  const std::vector<Slot>& path_order() const { return path_order_; }
  /// Number of distinct IDs node `s` currently knows.
  std::size_t knowledge_size(Slot s) const { return know_[s].size(n_); }
  bool node_knows(Slot s, NodeId id) const {
    if (id == kNoNode) return false;
    if (know_[s].knows_all()) return true;
    const Slot t = id_map_.find(id);
    return t != kNoSlot && know_[s].knows_slot(t);
  }
  /// Maximum knowledge-set size over all nodes (information accounting for
  /// the §7 lower-bound experiments).
  std::size_t max_knowledge() const;
  std::size_t total_knowledge() const;

 private:
  friend class Ctx;

  using RoundThunk = void (*)(void*, Ctx&);
  struct WorkerPool;

  void round_raw(void* body, RoundThunk thunk);
  void run_slots(Slot lo, Slot hi, unsigned arena, void* body,
                 RoundThunk thunk);
  void deliver();
  void learn_from(Slot dst, Slot src, const Message& msg);
  /// Cold path: re-runs the send checks in their documented order to throw
  /// the exact diagnostic; called only when the inlined fast checks failed.
  /// Takes the wire-encoded record so the hot path never spills the Message.
  [[noreturn]] void send_fail(Slot s, NodeId to, const std::uint64_t* rec,
                              int sends) const;

  std::size_t n_;
  Config cfg_;
  int capacity_;
  unsigned threads_;  // effective worker count, min(cfg.threads, n)

  std::vector<NodeId> ids_;               // slot -> ID
  std::vector<NodeId> sorted_ids_;        // ascending (NCC1 common knowledge)
  std::vector<Slot> path_order_;          // position -> slot
  std::vector<NodeId> initial_succ_;      // slot -> successor ID in Gk
  std::vector<Knowledge> know_;
  IdMap id_map_;                          // O(1) NodeId -> Slot

  // Round-transient state, all flat and reused across rounds: after the
  // first few rounds the steady-state datapath performs no allocation.
  std::vector<Ctx::OutArena> outboxes_;   // one arena per worker
  std::vector<int> sends_this_round_;
  /// Reference to a wire record in a worker outbox arena; used by both the
  /// traced-path reference sort and the bounce spill.
  struct EncodedRef {
    const std::uint64_t* enc;
    Slot src;
  };
  std::vector<std::uint32_t> dest_count_;   // counting-sort histogram
  std::vector<std::size_t> dest_off_;       // destination offsets, n+1
  std::vector<std::size_t> dest_cursor_;    // scatter cursors
  std::vector<EncodedRef> arena_;           // traced-path reference sort
  std::unique_ptr<Message[]> inbox_arena_;  // accepted messages, dest-major
  std::size_t inbox_cap_ = 0;
  std::vector<std::size_t> inbox_off_;      // per-node inbox offsets, n+1
  // Per-node inbox write cursors; bit 31 flags an oversubscribed
  // destination so the placement pass needs no second table lookup.
  std::vector<std::uint32_t> inbox_cur_;
  // Oversubscription bookkeeping (only entries for overflowing destinations
  // are (re)initialized each round; see deliver()).
  std::vector<Slot> ovf_dests_;                  // this round's overflowers
  std::vector<std::uint8_t> ovf_bitmap_;         // accept flags by arrival
  std::vector<std::uint32_t> bitmap_off_;        // dest -> ovf_bitmap_ base
  std::vector<const std::uint8_t*> ovf_cursor_;  // dest -> next accept flag
  std::vector<std::uint32_t> bounce_base_;       // dest -> bounce_refs_ base
  std::vector<std::uint32_t> bounce_cursor_;     // dest -> bounce_refs_ cursor
  std::unique_ptr<EncodedRef[]> bounce_refs_;    // bounced msgs, dest-major
  std::size_t bounce_cap_ = 0;
  std::vector<std::uint32_t> overflow_idx_;      // Fisher-Yates scratch
  std::vector<std::vector<Bounced>> bounced_;    // per source slot

  std::vector<Rng> node_rng_;
  std::vector<std::uint8_t> crashed_;
  std::size_t crashed_n_ = 0;
  Trace* trace_ = nullptr;

  std::unique_ptr<WorkerPool> pool_;  // lazily started on first parallel round

  NetStats stats_;
};

// --- Ctx inline datapath -----------------------------------------------
// These sit on the innermost loop of every simulation; defining them here
// (the build does not use LTO) lets round bodies inline the whole send path.

inline NodeId Ctx::id() const { return net_.ids_[slot_]; }
inline std::size_t Ctx::n() const { return net_.n_; }
inline std::uint64_t Ctx::round() const { return net_.stats_.rounds; }
inline int Ctx::capacity() const { return net_.capacity_; }
inline int Ctx::sends_left() const { return net_.capacity_ - sends_; }

inline bool Ctx::knows(NodeId id) const { return net_.node_knows(slot_, id); }

inline NodeId Ctx::initial_successor() const {
  return net_.initial_succ_[slot_];
}

inline std::span<const NodeId> Ctx::all_ids() const {
  DGR_CHECK_MSG(net_.is_clique(),
                "all_ids() is common knowledge only in the NCC1 model");
  return net_.sorted_ids_;
}

inline void Ctx::send(NodeId to, Message m) {
  const Knowledge& kn = net_.know_[slot_];
  const Slot dst = net_.id_map_.find(to);
  // A Message is a plain aggregate, so a hand-corrupted size could drive
  // the encode loop out of bounds; reject it before touching the arena.
  if (m.size > kMaxWords) [[unlikely]] {
    DGR_CHECK_MSG(false, "message size " << static_cast<int>(m.size)
                                         << " exceeds kMaxWords");
  }
  // Wire-encode speculatively, before validating: this way the cold failure
  // path only needs the record pointer, the Message never has its address
  // taken, and the compiler keeps it in registers. A failed check pops the
  // record (the bytes stay intact for the diagnostic) before throwing, so a
  // body that catches the CheckError leaves no trace of the rejected send.
  // The sender's ID is stamped from the routing word at delivery, so it is
  // not transmitted.
  const std::size_t nw = m.size;
  std::uint64_t* p = out_->append(2 + nw);
  p[0] = static_cast<std::uint64_t>(slot_) |
         (static_cast<std::uint64_t>(dst) << 32);
  p[1] = static_cast<std::uint64_t>(m.tag) |
         (static_cast<std::uint64_t>(m.size) << 32) |
         (static_cast<std::uint64_t>(m.id_mask) << 40);
  for (std::size_t w = 0; w < nw; ++w) p[2 + w] = m.words[w];
  // Model rules 1 (sender knows destination) and 2 (send budget); see
  // Network::send_fail for the individual diagnostics.
  if (to == kNoNode || dst == kNoSlot ||
      !(kn.knows_all() || kn.knows_slot(dst)) ||
      sends_ >= net_.capacity_) [[unlikely]] {
    out_->len -= 2 + nw;  // pop the rejected record
    net_.send_fail(slot_, to, p, sends_);
  }
  // A node can only transmit IDs it actually knows (no referee leakage).
  if (m.id_mask) {
    for (std::size_t w = 0; w < m.size; ++w) {
      if ((m.id_mask & (1u << w)) && !knows(m.words[w])) [[unlikely]] {
        out_->len -= 2 + nw;  // pop the rejected record
        net_.send_fail(slot_, to, p, sends_);
      }
    }
  }
  ++out_->hist[dst];
  ++sends_;
}

inline std::span<const Message> Ctx::inbox() const {
  const std::size_t lo = net_.inbox_off_[slot_];
  const std::size_t hi = net_.inbox_off_[slot_ + 1];
  return {net_.inbox_arena_.get() + lo, hi - lo};
}

inline std::span<const Bounced> Ctx::bounced() const {
  return net_.bounced_[slot_];
}

inline Rng& Ctx::rng() { return net_.node_rng_[slot_]; }

/// RAII helper attributing rounds to a named phase in NetStats::scope_rounds.
class ScopedRounds {
 public:
  ScopedRounds(Network& net, std::string name)
      : net_(net), name_(std::move(name)), start_(net.stats().rounds) {}
  ~ScopedRounds() { net_.add_scope_rounds(name_, net_.stats().rounds - start_); }
  ScopedRounds(const ScopedRounds&) = delete;
  ScopedRounds& operator=(const ScopedRounds&) = delete;

 private:
  Network& net_;
  std::string name_;
  std::uint64_t start_;
};

}  // namespace dgr::ncc
