// The NCC round engine (paper §2).
//
// A Network owns n nodes with unique IDs, their knowledge sets, and the
// synchronous round loop. All protocol communication flows through
// Ctx::send, which enforces the two model rules:
//   1. the sender must know the destination's ID (KT0 knowledge), and
//   2. a node sends at most `capacity()` messages per round.
// Receive capacity is enforced at delivery; see OverflowPolicy.
//
// Protocol style: orchestration code calls net.round(body) once per
// synchronous round; `body` runs once per node and must use only that node's
// local state plus ctx.inbox(). Messages sent in round t are visible in
// inboxes during round t+1. Referee-side accessors (slot_of, path_order, ...)
// exist for verification and test assertions only.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ncc/config.h"
#include "ncc/ids.h"
#include "ncc/knowledge.h"
#include "ncc/message.h"
#include "ncc/stats.h"
#include "ncc/trace.h"
#include "util/rng.h"

namespace dgr::ncc {

class Network;

/// A message returned to its sender because the receiver was oversubscribed.
struct Bounced {
  NodeId dst = kNoNode;
  Message msg;
};

/// Per-node view handed to the round body. Only node-local information is
/// reachable through it.
class Ctx {
 public:
  NodeId id() const;
  Slot slot() const { return slot_; }
  /// n is common knowledge in the model (paper §3.1.1 assumes it).
  std::size_t n() const;
  /// Global synchronous round number (common knowledge: nodes count rounds).
  std::uint64_t round() const;
  /// Per-round send/receive budget, Theta(log n) messages.
  int capacity() const;
  /// Send budget still available to this node in the current round.
  int sends_left() const;

  bool knows(NodeId id) const;
  /// Initial knowledge: ID of this node's successor in the directed path Gk
  /// (kNoNode for the last node, or in clique mode).
  NodeId initial_successor() const;
  /// NCC1 only: the sorted list of all IDs (common knowledge in KT1).
  std::span<const NodeId> all_ids() const;

  /// Queue a message for delivery next round. Enforces knowledge + send cap.
  void send(NodeId to, Message m);

  /// Messages delivered to this node at the start of the current round.
  std::span<const Message> inbox() const;
  /// This node's sends from the previous round that were bounced.
  std::span<const Bounced> bounced() const;

  /// Node-private random stream (stable across runs and thread counts).
  Rng& rng();

 private:
  friend class Network;
  Ctx(Network& net, Slot slot) : net_(net), slot_(slot) {}
  Network& net_;
  Slot slot_;
};

class Network {
 public:
  Network(std::size_t n, Config cfg = {});

  std::size_t n() const { return n_; }
  const Config& config() const { return cfg_; }
  int capacity() const { return capacity_; }
  bool is_clique() const { return cfg_.initial == InitialKnowledge::kClique; }

  /// Execute one synchronous round: run `body` once per node, then deliver.
  void round(const std::function<void(Ctx&)>& body);

  /// Run `body` every round until `done()` (referee-side predicate) returns
  /// true, checking before each round. Returns rounds executed.
  std::uint64_t run_until(const std::function<bool()>& done,
                          const std::function<void(Ctx&)>& body);

  const NetStats& stats() const { return stats_; }
  void add_scope_rounds(const std::string& name, std::uint64_t r) {
    stats_.scope_rounds[name] += r;
  }

  /// Adjust the link-loss rate mid-simulation (referee-side experiment
  /// control; e.g. run a lossless build phase, then a lossy exchange).
  void set_drop_probability(double p) { cfg_.drop_probability = p; }

  /// Attach (or detach with nullptr) a message-level trace. The Network
  /// does not own the trace; it must outlive the attachment.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Crash-fault injection (§8 robustness experiments): a crashed node
  /// stops executing round bodies and every message addressed to it is
  /// lost (senders get no feedback — a crash is indistinguishable from
  /// loss, which is what makes it interesting).
  void crash(Slot s) { crashed_[s] = 1; }
  bool is_crashed(Slot s) const { return crashed_[s] != 0; }
  std::size_t crashed_count() const;

  // --- Referee-side accessors (verification / test assertions only) ---
  NodeId id_of(Slot s) const { return ids_[s]; }
  Slot slot_of(NodeId id) const;
  /// Path order of Gk: path_order()[i] is the slot at path position i.
  const std::vector<Slot>& path_order() const { return path_order_; }
  /// Number of distinct IDs node `s` currently knows.
  std::size_t knowledge_size(Slot s) const { return know_[s].size(n_); }
  bool node_knows(Slot s, NodeId id) const { return know_[s].knows(id); }
  /// Maximum knowledge-set size over all nodes (information accounting for
  /// the §7 lower-bound experiments).
  std::size_t max_knowledge() const;
  std::size_t total_knowledge() const;

 private:
  friend class Ctx;

  void deliver();

  std::size_t n_;
  Config cfg_;
  int capacity_;

  std::vector<NodeId> ids_;               // slot -> ID
  std::vector<NodeId> sorted_ids_;        // ascending (NCC1 common knowledge)
  std::vector<Slot> path_order_;          // position -> slot
  std::vector<NodeId> initial_succ_;      // slot -> successor ID in Gk
  std::vector<Knowledge> know_;

  // Round-transient state.
  struct Outgoing {
    Slot dst;
    Message msg;
  };
  std::vector<std::vector<Outgoing>> outbox_;   // per source slot
  std::vector<int> sends_this_round_;
  std::vector<std::vector<Message>> inbox_;     // delivered last round
  std::vector<std::vector<Bounced>> bounced_;
  std::vector<std::vector<std::pair<Slot, Message>>> delivery_buckets_;

  std::vector<Rng> node_rng_;
  std::vector<std::uint8_t> crashed_;
  Trace* trace_ = nullptr;

  NetStats stats_;

  // ID -> slot lookup.
  std::vector<std::pair<NodeId, Slot>> id_index_;  // sorted by id
};

/// RAII helper attributing rounds to a named phase in NetStats::scope_rounds.
class ScopedRounds {
 public:
  ScopedRounds(Network& net, std::string name)
      : net_(net), name_(std::move(name)), start_(net.stats().rounds) {}
  ~ScopedRounds() { net_.add_scope_rounds(name_, net_.stats().rounds - start_); }
  ScopedRounds(const ScopedRounds&) = delete;
  ScopedRounds& operator=(const ScopedRounds&) = delete;

 private:
  Network& net_;
  std::string name_;
  std::uint64_t start_;
};

}  // namespace dgr::ncc
