// The NCC round engine (paper §2).
//
// A Network owns n nodes with unique IDs, their knowledge sets, and the
// synchronous round loop. All protocol communication flows through
// Ctx::send, which enforces the two model rules:
//   1. the sender must know the destination's ID (KT0 knowledge), and
//   2. a node sends at most `capacity()` messages per round.
// Receive capacity is enforced at delivery; see OverflowPolicy.
//
// Protocol style: orchestration code calls net.round(body) once per
// synchronous round; `body` runs once per node and must use only that node's
// local state plus ctx.inbox(). Messages sent in round t are visible in
// inboxes during round t+1. Referee-side accessors (slot_of, path_order, ...)
// exist for verification and test assertions only.
//
// Active-set (sparse) rounds: net.round_active(body) runs the body only for
// the round's *active* slots — slots that received a message or a bounce in
// the previous round, slots whose body called ctx.wake() last round, and
// slots woken referee-side with net.wake(s). Frontier-style primitives (a
// broadcast wave, a convergecast, a token route) touch O(frontier) CPU per
// round instead of O(n), and terminate when the active set drains
// (net.has_active()). Contract for bodies driven this way: a slot that the
// frontier would not cover must be *silent* — no sends, no RNG draws, no
// observable state change — so that a dense dispatch of the same body
// (Config::sparse_rounds = false, or plain net.round) produces a bit-for-bit
// identical transcript. The active list is kept sorted by slot and is
// partitioned across the worker pool in contiguous slices, so the outbox
// arena concatenation order — the determinism contract — is the same as a
// dense round's for any thread count.
//
// Datapath layout (perf-critical, see EXPERIMENTS.md for the benchmarks):
//   - round bodies run on the process-wide Executor (executor.h): the
//     Network holds a lease sized by Config::threads and dispatches each
//     round as one parallel-for over its contiguous slot slices — no thread
//     spawn/join per round, and concurrent Networks share one pool;
//   - each worker wire-encodes sends into a private flat outbox arena of
//     variable-length records (a one-word message costs 24 bytes, not
//     sizeof(Message)); arenas concatenate to global source-slot order,
//     making the transcript identical for any thread count;
//   - deliver() counting-sorts messages by destination and copies each wire
//     record exactly once, verbatim, straight to its final position in a
//     shared flat dest-major inbox arena of variable-length records — the
//     receive side is zero-copy end to end: no 48B Message materialization,
//     no per-message metadata sidecar. Ctx::inbox_view() hands bodies an
//     InboxView whose MessageRef elements decode fields lazily from the
//     records in place; Ctx::inbox() remains as a compat shim that decodes
//     the slot's records into a per-worker Message scratch on first use
//     (with a Trace attached, a reference-sorting path reproduces the seed
//     engine's exact event order for completed rounds; a strict-mode
//     overflow throws before any delivery events). The delivery-time learn
//     pass runs dest-major over the records' contiguous ID-slot trailers
//     (Knowledge::learn_trailer), never touching the IdMap;
//   - the delivery tail itself parallelizes across the executor once a
//     round carries enough traffic (threads > 1): the placement pass runs
//     as per-worker jobs over contiguous destination ranges cut from the
//     counting-sort prefix sums (each worker re-streams the outbox headers
//     but copies only its range's records, so every per-destination cursor
//     and inbox slice has exactly one writer and per-destination arrival
//     order — global source-slot order — is preserved verbatim); the learn
//     pass fans out one task per touched destination, claimed in chunks
//     (knowledge tables are per-destination, so tasks never share state);
//     and the overflow-acceptance bitmap pre-draw snapshots the delivery
//     RNG at each overflowing destination's draw block in a cheap serial
//     prefix scan, then per-worker jobs replay their destinations' draws
//     from the snapshots — bit-identical to the serial stream. Traced runs
//     keep the serial reference-sort compat path for placement. All three
//     are scheduling choices only: transcripts stay bit-identical at any
//     thread count (tests/test_parallel_deliver.cpp pins this);
//   - every per-round sweep is list-driven: touched destinations, bounce
//     sources, and the active frontier name exactly the entries to visit
//     and re-zero, so a round costs O(traffic + frontier), not O(n) (near-
//     dense rounds fall back to sequential sweeps, which are cheaper than
//     scattering at that density). Rounds predicted dense — the previous
//     delivery touched at least 1/16th of all destinations — additionally
//     run a dense-round fast path: Ctx::send skips the per-send histogram
//     and first-touch upkeep entirely and deliver() rebuilds the counting-
//     sort histogram with a PR2-style sequential re-stream of the record
//     headers, recovering the all-dense workloads' list-upkeep tax. The
//     mode is pure bookkeeping strategy: transcripts are bit-identical
//     either way, and a misprediction only costs one round of the slower
//     bookkeeping;
//   - datapath memory is O(traffic), not O(threads·n): the per-worker send
//     histograms are epoch-stamped sparse tables (DestHist, ncc/arena.h)
//     sized by the destinations a worker actually touches, and the trace
//     reference-sort and overflow/bounce cursor tables materialize lazily
//     on first use. The whole round-transient bundle (RoundScratch) can be
//     borrowed from a cross-Network ArenaPool (Config::arena_pool) so
//     consecutive simulations reuse warm arenas — an allocation strategy
//     only; transcripts are bit-identical with reuse on or off;
//   - ID -> slot resolution is O(1) (IdMap) and knowledge is a slot-indexed
//     sparse-to-dense hybrid (Knowledge), so the send path does no hashing
//     of std::unordered containers and no binary search; Ctx::send is
//     header-inline (the build has no LTO) with its failure diagnostics
//     outlined to Network::send_fail so round bodies pay one lean inlined
//     path per message.
#pragma once

#include <bit>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ncc/arena.h"
#include "ncc/config.h"
#include "ncc/executor.h"
#include "ncc/id_map.h"
#include "ncc/ids.h"
#include "ncc/knowledge.h"
#include "ncc/message.h"
#include "ncc/stats.h"
#include "ncc/telemetry.h"
#include "ncc/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr::ncc {

class Network;

/// Lazily-decoding reference to one delivered message, backed directly by
/// its wire record in the engine's inbox arena (see ncc::wire in message.h
/// for the layout). Field accessors read straight from the record — nothing
/// is materialized until materialize() is called — so iterating an inbox
/// and switching on tag() costs two loads per message, not a 48B copy.
/// Validity: like the spans Ctx::inbox() returns, a MessageRef aliases
/// engine-owned memory that the next round's delivery repacks; do not hold
/// one across the end of the round body (debug builds diagnose stale
/// dereferences, see InboxView).
class MessageRef {
 public:
  std::uint32_t tag() const { return wire::tag(rec_); }
  std::uint8_t size() const { return wire::size(rec_); }
  std::uint8_t id_mask() const { return wire::id_mask(rec_); }
  /// Sender's ID (the engine stamps it from the routing word; it is never
  /// transmitted on the wire).
  NodeId src() const { return ids_[wire::src(rec_)]; }

  std::uint64_t word(std::size_t i) const {
    DGR_CHECK(i < size());
    return rec_[wire::kHeaderWords + i];
  }
  /// Signed view of a word (positions may be sentinel -1).
  std::int64_t sword(std::size_t i) const {
    return static_cast<std::int64_t>(word(i));
  }
  NodeId id_word(std::size_t i) const {
    DGR_CHECK(i < size() && (id_mask() & (1u << i)));
    return static_cast<NodeId>(rec_[wire::kHeaderWords + i]);
  }

  /// Full decode into an owning Message (for code that stores or re-sends
  /// delivered messages, e.g. a forwarding queue).
  Message materialize() const {
    Message m;
    wire::decode(rec_, src(), m);
    return m;
  }

 private:
  friend class InboxView;
  MessageRef(const std::uint64_t* rec, const NodeId* ids)
      : rec_(rec), ids_(ids) {}
  const std::uint64_t* rec_;
  const NodeId* ids_;
};

/// Zero-copy view of one node's inbox for the current round: an input range
/// of MessageRef over the node's contiguous slice of the wire-record inbox
/// arena. Obtained from Ctx::inbox_view(); prefer it over the legacy
/// Ctx::inbox() span, which decodes every record into a Message scratch.
///
/// Lifetime: the view aliases engine-owned arenas that the next round's
/// delivery repacks, so it is only valid inside the round body that created
/// it. Debug builds (NDEBUG not defined) stamp each view with the delivery
/// generation and fail a DGR_CHECK with a clear diagnostic if a stale view
/// is dereferenced after the round ends; release builds pay nothing.
class InboxView {
 public:
  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = MessageRef;
    using difference_type = std::ptrdiff_t;

    MessageRef operator*() const {
      // NCC_* so the check (and its operands — the gen fields only exist
      // in debug layouts) vanishes entirely under NDEBUG.
      NCC_ASSERT_MSG(*live_gen_ == gen_,
                     "stale InboxView dereferenced: the view was created in "
                     "an earlier round and its arena has been repacked (views "
                     "are only valid inside the round body that created "
                     "them)");
      return MessageRef(p_, ids_);
    }
    iterator& operator++() {
      p_ += wire::record_words(p_, trailered_);
      --left_;
      return *this;
    }
    bool operator==(const iterator& o) const { return left_ == o.left_; }
    bool operator!=(const iterator& o) const { return left_ != o.left_; }

   private:
    friend class InboxView;
    const std::uint64_t* p_ = nullptr;
    const NodeId* ids_ = nullptr;
    std::uint32_t left_ = 0;
    bool trailered_ = false;
#ifndef NDEBUG
    const std::uint64_t* live_gen_ = nullptr;
    std::uint64_t gen_ = 0;
#endif
  };

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  iterator begin() const {
    iterator it;
    it.p_ = base_;
    it.ids_ = ids_;
    it.left_ = len_;
    it.trailered_ = trailered_;
#ifndef NDEBUG
    it.live_gen_ = live_gen_;
    it.gen_ = gen_;
    if (len_ != 0) (void)*it;  // surface a stale view at first touch
#endif
    return it;
  }
  iterator end() const { return iterator{}; }

 private:
  friend class Network;
#ifndef NDEBUG
  InboxView(const std::uint64_t* base, std::uint32_t len, const NodeId* ids,
            bool trailered, const std::uint64_t* live_gen)
      : base_(base), len_(len), ids_(ids), trailered_(trailered),
        live_gen_(live_gen), gen_(*live_gen) {}
#else
  InboxView(const std::uint64_t* base, std::uint32_t len, const NodeId* ids,
            bool trailered, const std::uint64_t* /*live_gen*/)
      : base_(base), len_(len), ids_(ids), trailered_(trailered) {}
#endif
  const std::uint64_t* base_;
  std::uint32_t len_;
  const NodeId* ids_;
  bool trailered_;
#ifndef NDEBUG
  const std::uint64_t* live_gen_;  // &Network::inbox_gen_
  std::uint64_t gen_;              // generation at creation
#endif
};

/// Per-node view handed to the round body. Only node-local information is
/// reachable through it.
class Ctx {
 public:
  NodeId id() const;
  Slot slot() const { return slot_; }
  /// n is common knowledge in the model (paper §3.1.1 assumes it).
  std::size_t n() const;
  /// Global synchronous round number (common knowledge: nodes count rounds).
  std::uint64_t round() const;
  /// Per-round send/receive budget, Theta(log n) messages.
  int capacity() const;
  /// Send budget still available to this node in the current round.
  int sends_left() const;

  bool knows(NodeId id) const;
  /// Initial knowledge: ID of this node's successor in the directed path Gk
  /// (kNoNode for the last node, or in clique mode).
  NodeId initial_successor() const;
  /// NCC1 only: the sorted list of all IDs (common knowledge in KT1).
  std::span<const NodeId> all_ids() const;

  /// Queue a message for delivery next round. Enforces knowledge + send cap.
  /// Forced inline: the definition has grown past the compilers' inlining
  /// budget, and an outlined call here means copying the 48-byte Message
  /// through the stack once per message — measurably (~3x) slower on the
  /// all-dense engine microbenches.
#if defined(__GNUC__) || defined(__clang__)
  [[gnu::always_inline]]
#endif
  inline void send(NodeId to, Message m);

  /// Wire-level fast path for the dominant record shape: a one-word
  /// message. Encodes the 3-word record (no trailer) with straight-line
  /// stores — no 48-byte Message aggregate is ever built, copied, or
  /// looped over — and performs exactly the checks send() would, in the
  /// same order, so the transcript (and every failure diagnostic) is
  /// bit-identical to send(to, make_msg(tag).push(word)).
#if defined(__GNUC__) || defined(__clang__)
  [[gnu::always_inline]]
#endif
  inline void send1(NodeId to, std::uint32_t tag, std::uint64_t word);

  /// One-word fast path where the word is a forwarded NodeId (the receiver
  /// learns it on delivery). Equivalent to send(to, make_msg(tag)
  /// .push_id(id)); on learning networks the record carries the resolved
  /// slot trailer exactly as send() would have written it.
#if defined(__GNUC__) || defined(__clang__)
  [[gnu::always_inline]]
#endif
  inline void send1_id(NodeId to, std::uint32_t tag, NodeId id);

  /// Zero-copy view of the messages delivered to this node at the start of
  /// the current round: MessageRefs decode fields lazily from the wire
  /// records in place. Valid only inside this round body (see InboxView).
  InboxView inbox_view() const;
  /// Legacy accessor: the same messages, decoded into a per-worker Message
  /// scratch on first call (compat shim; costs a full decode of the inbox).
  /// Lifetime: the span is valid only within this slot's body invocation —
  /// the scratch is reused as soon as another slot on the same worker calls
  /// inbox() (single-threaded runs put every slot on one worker). That is
  /// the same "do not hold across bodies" rule InboxView documents, only
  /// without the debug diagnostic; code that needs messages later must copy
  /// them. Prefer inbox_view() in new and hot code.
  std::span<const Message> inbox() const;
  /// This node's sends from the previous round that were bounced.
  std::span<const Bounced> bounced() const;

  /// Keep this node in the next round's active set even if it receives
  /// nothing (active-set scheduling; e.g. "my send queue has backlog").
  /// A node may only wake itself — waking another node takes a message.
  void wake();

  /// Node-private random stream (stable across runs and thread counts).
  Rng& rng();

 private:
  friend class Network;
  Ctx(Network& net, Slot slot, OutArena* out)
      : net_(net), slot_(slot), out_(out) {}
  Network& net_;
  Slot slot_;
  OutArena* out_;  // this worker's flat outbox arena
  int sends_ = 0;  // this node's sends this round (engine copies it out)
};

class Network {
 public:
  Network(std::size_t n, Config cfg = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t n() const { return n_; }
  const Config& config() const { return cfg_; }
  int capacity() const { return capacity_; }
  bool is_clique() const { return cfg_.initial == InitialKnowledge::kClique; }

  /// Execute one synchronous round: run `body` once per node, then deliver.
  /// The templated overload dispatches the body through a direct call (no
  /// std::function type erasure) — use it in tight loops; the std::function
  /// overload remains for stored/polymorphic bodies.
  template <typename Body,
            typename = std::enable_if_t<std::is_invocable_v<Body&, Ctx&>>>
  void round(Body&& body) {
    using B = std::remove_reference_t<Body>;
    round_raw(const_cast<void*>(static_cast<const void*>(std::addressof(body))),
              [](void* b, Ctx& ctx) { (*static_cast<B*>(b))(ctx); });
  }
  void round(const std::function<void(Ctx&)>& body);

  /// Active-set round: run `body` only for this round's active slots (see
  /// the file comment), then deliver. The active set is the sorted union of
  /// last round's message recipients, bounce holders, self-wakes, and
  /// referee wakes. With Config::sparse_rounds == false this dispatches
  /// densely (body runs for every slot) but keeps identical bookkeeping —
  /// the reference mode for transcript-equivalence tests.
  template <typename Body,
            typename = std::enable_if_t<std::is_invocable_v<Body&, Ctx&>>>
  void round_active(Body&& body) {
    using B = std::remove_reference_t<Body>;
    round_active_raw(
        const_cast<void*>(static_cast<const void*>(std::addressof(body))),
        [](void* b, Ctx& ctx) { (*static_cast<B*>(b))(ctx); });
  }
  void round_active(const std::function<void(Ctx&)>& body);

  /// Drive active-set rounds until the frontier drains. Returns rounds
  /// executed. Seed the frontier first (wake / a preceding round's traffic).
  template <typename Body,
            typename = std::enable_if_t<std::is_invocable_v<Body&, Ctx&>>>
  std::uint64_t run_active(Body&& body) {
    std::uint64_t executed = 0;
    while (has_active()) {
      round_active(body);
      ++executed;
    }
    return executed;
  }

  /// Referee/orchestrator-side wake: slot `s` joins the next active round's
  /// frontier (primitives use this to seed initiators — the in-model
  /// equivalent is "every node knows from its own state that it starts").
  void wake(Slot s) {
    DGR_CHECK_MSG(s < n_, "wake of invalid slot " << s);
    ensure_frontier();
    active_.push_back(s);
    active_dirty_ = true;
  }
  /// Wake every slot (a dense round's frontier, as an active-set seed).
  void wake_all() {
    ensure_frontier();
    for (Slot s = 0; s < static_cast<Slot>(n_); ++s) active_.push_back(s);
    active_dirty_ = true;
  }
  /// Drop all pending activations and wakes. Primitives call this at phase
  /// boundaries so a predecessor's unconsumed deliveries cannot leak into
  /// their frontier.
  void clear_active() {
    frontier_track_ = true;  // an explicit clear means "empty frontier now"
    active_.clear();
    active_dirty_ = false;
  }
  /// Slots in the next active round's frontier (after folding wakes).
  std::size_t active_count() {
    ensure_frontier();
    flush_active();
    return active_.size();
  }
  bool has_active() { return active_count() != 0; }

  /// Run `body` every round until `done()` (referee-side predicate) returns
  /// true, checking before each round. Returns rounds executed.
  std::uint64_t run_until(const std::function<bool()>& done,
                          const std::function<void(Ctx&)>& body);

  const NetStats& stats() const { return stats_; }
  void add_scope_rounds(const std::string& name, std::uint64_t r) {
    stats_.scope_rounds[name] += r;
  }

  /// Adjust the link-loss rate mid-simulation (referee-side experiment
  /// control; e.g. run a lossless build phase, then a lossy exchange).
  /// Referee context only: calling this from inside a round body is a
  /// checked error — the round's drop draws happen at delivery, so a
  /// mid-body flip would make the current round's loss rate depend on
  /// which slots ran before the flip (and, with threads > 1, on worker
  /// interleaving). Change it between rounds, or from a TelemetrySink
  /// (which the engine invokes in referee context).
  void set_drop_probability(double p) {
    DGR_CHECK_MSG(!in_body_,
                  "set_drop_probability called from inside a round body; "
                  "the loss rate may only change between rounds (referee "
                  "code or a telemetry hook)");
    DGR_CHECK_MSG(p >= 0.0 && p <= 1.0,
                  "drop probability " << p << " outside [0, 1]");
    cfg_.drop_probability = p;
  }

  /// Attach (or detach with nullptr) a per-round telemetry sink; see
  /// ncc/telemetry.h for the sample contract and steering guarantees.
  /// The Network does not own the sink; it must outlive the attachment.
  void set_telemetry(TelemetrySink* sink) { telemetry_ = sink; }
  TelemetrySink* telemetry() const { return telemetry_; }

  /// Second, independent sink slot reserved for metrics collectors
  /// (obs::NetMetrics), so attaching process-wide observability never
  /// displaces a scenario orchestrator on the set_telemetry slot. Same
  /// contract as set_telemetry: referee context, same RoundSample, fired
  /// after the telemetry sink. The engine stays obs-agnostic — this slot
  /// only knows the TelemetrySink interface.
  void set_metrics(TelemetrySink* sink) { metrics_ = sink; }
  TelemetrySink* metrics() const { return metrics_; }

  /// Per-phase wall-time breakdown (NetStats::phase_ns, RoundSample::
  /// phase_ns) without attaching a telemetry sink — the thread-scaling
  /// bench uses this. Timing is otherwise on exactly while a sink is
  /// attached; when both are off the engine reads no clocks at all
  /// (detached cost: a few predictable branches per round).
  void set_phase_timing(bool on) { phase_timing_ = on; }
  bool phase_timing() const { return phase_timing_; }

  /// Attach (or detach with nullptr) a message-level trace. The Network
  /// does not own the trace; it must outlive the attachment.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Crash-fault injection (§8 robustness experiments): a crashed node
  /// stops executing round bodies and every message addressed to it is
  /// lost (senders get no feedback — a crash is indistinguishable from
  /// loss, which is what makes it interesting). Idempotent by contract:
  /// crashing an already-crashed slot is a no-op and leaves
  /// crashed_count() — and therefore every telemetry crashed counter —
  /// unchanged (fault plans may legitimately hit the same slot twice,
  /// e.g. overlapping crash waves).
  void crash(Slot s) {
    DGR_CHECK_MSG(s < n_, "crash of invalid slot " << s);
    if (!crashed_[s]) {
      crashed_[s] = 1;
      ++crashed_n_;
    }
  }
  bool is_crashed(Slot s) const { return crashed_[s] != 0; }
  std::size_t crashed_count() const { return crashed_n_; }

  // --- Referee-side accessors (verification / test assertions only) ---
  NodeId id_of(Slot s) const { return ids_[s]; }
  Slot slot_of(NodeId id) const;
  /// Path order of Gk: path_order()[i] is the slot at path position i.
  const std::vector<Slot>& path_order() const { return path_order_; }
  /// Number of distinct IDs node `s` currently knows.
  std::size_t knowledge_size(Slot s) const { return know_[s].size(n_); }
  /// The slot of `id` if node `s` verifiably knows that ID, else kNoSlot.
  /// One-entry (ID, slot) cache first — monotone knowledge keeps it valid
  /// forever — then the IdMap + membership probe.
  Slot known_slot_of(Slot s, NodeId id) const {
    if (id == kNoNode) return kNoSlot;
    const Knowledge& k = know_[s];
    if (k.hot_id_is(id)) return k.hot_slot();
    const Slot t = id_map_.find(id);
    if (t == kNoSlot || !(k.knows_all() || k.knows_slot(t))) return kNoSlot;
    k.set_hot(id, t);
    return t;
  }
  bool node_knows(Slot s, NodeId id) const {
    if (id == kNoNode) return false;
    // NCC1: common knowledge covers every ID; no resolution, no probe (and
    // a payload word that is not a real node ID is not a KT0 violation).
    if (know_[s].knows_all()) return true;
    return known_slot_of(s, id) != kNoSlot;
  }
  /// Maximum knowledge-set size over all nodes (information accounting for
  /// the §7 lower-bound experiments).
  std::size_t max_knowledge() const;
  std::size_t total_knowledge() const;

 private:
  friend class Ctx;

  using RoundThunk = void (*)(void*, Ctx&);

  void round_raw(void* body, RoundThunk thunk);
  void round_active_raw(void* body, RoundThunk thunk);
  /// Shared round driver: dispatch `items` work units (slots when
  /// round_list_ is null, active-list entries otherwise) across the pool,
  /// deliver, and count the round.
  void execute_round(std::size_t items, void* body, RoundThunk thunk);
  /// Fold referee wakes into a sorted, deduped active list.
  void flush_active();
  /// Turn frontier tracking on; on the first use, reconstruct the frontier
  /// the last delivery would have produced (its recipient and bounce lists
  /// are still at hand), so dense rounds run before any frontier use still
  /// feed the first active round.
  void ensure_frontier();
  void run_slots(std::size_t lo, std::size_t hi, unsigned arena, void* body,
                 RoundThunk thunk);
  void deliver();
  /// Parallel-placement worker: walk every outbox arena in global source
  /// order and place only the records whose destination slot falls in
  /// [dst_lo, dst_hi) — each destination's cursors and inbox slice have
  /// exactly one writer, and per-destination arrival order is preserved.
  void place_dest_range(Slot dst_lo, Slot dst_hi, bool trailered);
  /// Overflow bitmap fill for one destination: the partial Fisher-Yates
  /// subset draw from `rng` (caller positions it — the shared delivery
  /// stream serially, or a per-destination snapshot on the parallel path).
  void draw_overflow_bitmap(Slot d, Rng& rng,
                            std::vector<std::uint32_t>& idx_scratch);
  /// Learn pass for one destination's contiguous inbox slice.
  void learn_dest(Slot d, const std::uint64_t* inbox);
  /// Compat path behind Ctx::inbox(): decode slot `s`'s wire records into
  /// the worker arena's Message scratch (cached per slot and round).
  std::span<const Message> legacy_inbox(Slot s, OutArena& out);
  InboxView make_inbox_view(Slot s) const {
    const std::uint32_t len = scr_->inbox_len[s];
    const std::uint64_t* base =
        len != 0 ? scr_->inbox_words.get() + scr_->inbox_lo[s] : nullptr;
    return InboxView(base, len, ids_.data(), !is_clique(), &inbox_gen_);
  }
  /// Cold path: re-runs the send checks in their documented order to throw
  /// the exact diagnostic; called only when the inlined fast checks failed.
  /// Takes the wire-encoded record so the hot path never spills the Message.
  [[noreturn]] void send_fail(Slot s, NodeId to, const std::uint64_t* rec,
                              int sends) const;

  std::size_t n_;
  Config cfg_;
  int capacity_;
  unsigned threads_;  // effective worker count, min(cfg.threads, n)

  std::vector<NodeId> ids_;               // slot -> ID
  std::vector<NodeId> sorted_ids_;        // ascending (NCC1 common knowledge)
  std::vector<Slot> path_order_;          // position -> slot
  std::vector<NodeId> initial_succ_;      // slot -> successor ID in Gk
  std::vector<Knowledge> know_;
  IdMap id_map_;                          // O(1) NodeId -> Slot

  // Round-transient state, all flat and reused across rounds: after the
  // first few rounds the steady-state datapath performs no allocation, and
  // per-round cost is O(traffic + frontier) — every dense O(n) sweep has
  // been replaced by touched/active lists that name exactly the entries to
  // visit and re-zero. The whole bundle lives behind one indirection
  // (RoundScratch, ncc/arena.h) so it can be borrowed from a cross-Network
  // ArenaPool (Config::arena_pool) and returned at destruction; pooling is
  // pure allocation strategy — every buffer is either rewritten each round
  // or held to an explicit between-round invariant, so transcripts are
  // bit-identical with reuse on or off.
  std::unique_ptr<RoundScratch> scr_;
  ArenaPool* pool_ = nullptr;  // where scr_ returns at destruction, if set
  // Delivery generation; bumped every deliver() when the inbox arena is
  // repacked. Debug InboxViews stamp it to diagnose stale dereferences.
  std::uint64_t inbox_gen_ = 0;
  // Dense-round fast path (see the file comment): when the previous
  // delivery touched >= n/16 destinations, the next round skips send-side
  // histogram/first-touch upkeep and deliver() re-streams the headers.
  bool dense_round_ = false;
  bool last_dense_ = false;
  // Active-set scheduling state. active_ is the next round_active frontier
  // (sorted + deduped once flushed); run_list_ is the round-owned copy the
  // workers read; round_list_ aliases it while a sparse round executes.
  std::vector<Slot> active_;
  std::vector<Slot> run_list_;
  std::vector<Slot> active_scratch_;  // set_union spare
  std::vector<Slot> wake_scratch_;    // concatenated per-arena wakes
  bool active_dirty_ = false;
  // Frontier maintenance is lazy: a simulation that only ever calls the
  // dense round() never pays for building next-round active sets. The flag
  // latches on the first wake (referee- or body-side) or active round.
  bool frontier_track_ = false;
  const Slot* round_list_ = nullptr;
  // Per-round worker slices (indices into run_list_, or raw slots when
  // dense); written by execute_round before the job is submitted.
  std::vector<std::pair<std::size_t, std::size_t>> worker_span_;

  // Parallel-delivery scratch (threads_ > 1 only). ovf_rng_ holds the
  // delivery-stream snapshot at each overflowing destination's draw block
  // (the seeded skip-ahead the parallel pre-draw replays from); ovf_part_
  // and place_part_ are the per-task partition boundaries; ovf_idx_w_ is
  // the per-task Fisher-Yates index scratch (worker-private, O(max m)).
  std::vector<Rng> ovf_rng_;
  std::vector<std::size_t> ovf_part_;
  std::vector<Slot> place_part_;
  std::vector<std::vector<std::uint32_t>> ovf_idx_w_;
  // Per-round phase times (written only while timing is on; see
  // set_phase_timing). Folded into stats_.phase_ns and the RoundSample.
  PhaseNanos round_ns_;
  bool phase_timing_ = false;

  std::vector<Rng> node_rng_;
  std::vector<std::uint8_t> crashed_;
  std::size_t crashed_n_ = 0;
  Trace* trace_ = nullptr;
  TelemetrySink* telemetry_ = nullptr;
  TelemetrySink* metrics_ = nullptr;  // see set_metrics
  // True exactly while round bodies may be executing (set before the
  // dispatch in execute_round, cleared before deliver()). Guards the
  // referee-only knobs above; the write happens-before the worker kick and
  // the clear happens-after the join barrier, so worker reads are ordered.
  bool in_body_ = false;
  // Whether the round being delivered was dispatched on the active list
  // (RoundSample::sparse_dispatch; execution strategy, not transcript).
  bool sparse_dispatch_ = false;

  // Registration with the process-wide Executor, width = threads_. The
  // executor starts workers lazily on the first parallel round; this
  // Network no longer owns any threads of its own.
  Executor::Lease lease_;

  NetStats stats_;
};

// --- Ctx inline datapath -----------------------------------------------
// These sit on the innermost loop of every simulation; defining them here
// (the build does not use LTO) lets round bodies inline the whole send path.

inline NodeId Ctx::id() const { return net_.ids_[slot_]; }
inline std::size_t Ctx::n() const { return net_.n_; }
inline std::uint64_t Ctx::round() const { return net_.stats_.rounds; }
inline int Ctx::capacity() const { return net_.capacity_; }
inline int Ctx::sends_left() const { return net_.capacity_ - sends_; }

inline bool Ctx::knows(NodeId id) const { return net_.node_knows(slot_, id); }

inline NodeId Ctx::initial_successor() const {
  return net_.initial_succ_[slot_];
}

inline std::span<const NodeId> Ctx::all_ids() const {
  DGR_CHECK_MSG(net_.is_clique(),
                "all_ids() is common knowledge only in the NCC1 model");
  return net_.sorted_ids_;
}

inline void Ctx::send(NodeId to, Message m) {
  const Slot dst = net_.id_map_.find(to);
  // A Message is a plain aggregate, so a hand-corrupted size could drive
  // the encode loop out of bounds; reject it before touching the arena.
  if (m.size > kMaxWords) [[unlikely]] {
    DGR_CHECK_MSG(false, "message size " << static_cast<int>(m.size)
                                         << " exceeds kMaxWords");
  }
  // Same input class for id_mask: push_id can only set bits below size, so
  // a bit at or above size is a direct field write. The trailer is sized by
  // popcount of the whole mask but the KT0 checks and the trailer fill loop
  // only cover bits below size — an out-of-range bit would ship a trailer
  // word of uninitialized arena memory straight into the delivery-side
  // learn pass. Reject before encoding.
  if ((m.id_mask >> m.size) != 0) [[unlikely]] {
    DGR_CHECK_MSG(false, "id_mask bit set at or above message size "
                             << static_cast<int>(m.size));
  }
  // Wire-encode speculatively, before validating: this way the cold failure
  // path only needs the record pointer, the Message never has its address
  // taken, and the compiler keeps it in registers. A failed check pops the
  // record (the bytes stay intact for the diagnostic) before throwing, so a
  // body that catches the CheckError leaves no trace of the rejected send.
  // The sender's ID is stamped from the routing word at delivery, so it is
  // not transmitted.
  //
  // Forwarded-ID trailer: the KT0 check below must resolve every ID word's
  // slot anyway, so on learning networks the record carries those slots
  // after the payload and the delivery-side learn pass never touches the
  // IdMap. Clique networks skip learning, so their records stay trailerless
  // (wire::record_words mirrors this split).
  const std::size_t nw = m.size;
  const bool trailered = m.id_mask != 0 && !net_.is_clique();
  const std::size_t tw = trailered ? wire::trailer_words(m.id_mask) : 0;
  const std::size_t rec_len = wire::kHeaderWords + nw + tw;
  std::uint64_t* p = out_->append(rec_len);
  p[0] = wire::routing_word(slot_, dst);
  p[1] = wire::header_word(m);
  for (std::size_t w = 0; w < nw; ++w) p[wire::kHeaderWords + w] = m.words[w];
  // Model rules 1 (sender knows destination) and 2 (send budget); see
  // Network::send_fail for the individual diagnostics.
  const Knowledge& kn = net_.know_[slot_];
  if (to == kNoNode || dst == kNoSlot ||
      !(kn.knows_all() || kn.knows_slot(dst)) ||
      sends_ >= net_.capacity_) [[unlikely]] {
    out_->len -= rec_len;  // pop the rejected record
    net_.send_fail(slot_, to, p, sends_);
  }
  // A node can only transmit IDs it actually knows (no referee leakage).
  // The trailered (learning-network) branch resolves each ID's slot for
  // the trailer as a side effect of the check; the clique branch keeps the
  // knows_all short-circuit — no resolution, no probe.
  if (m.id_mask) {
    if (trailered) {
      std::uint64_t* tp = p + wire::kHeaderWords + nw;
      for (std::size_t w = 0; w < m.size; ++w) {
        if ((m.id_mask & (1u << w)) == 0) continue;
        const Slot ws = net_.known_slot_of(slot_, m.words[w]);
        if (ws == kNoSlot) [[unlikely]] {
          out_->len -= rec_len;  // pop the rejected record
          net_.send_fail(slot_, to, p, sends_);
        }
        *tp++ = ws;
      }
    } else {
      for (std::size_t w = 0; w < m.size; ++w) {
        if ((m.id_mask & (1u << w)) && !knows(m.words[w])) [[unlikely]] {
          out_->len -= rec_len;  // pop the rejected record
          net_.send_fail(slot_, to, p, sends_);
        }
      }
    }
  }
  // Dense-round fast path: deliver() re-streams the record headers
  // sequentially, so the per-send histogram and first-touch upkeep would be
  // dead work — skip them behind one predictable branch. The histogram is
  // an epoch-stamped sparse table (DestHist): at() hands back a zeroed
  // counter on a destination's first touch of the round, so the first-touch
  // test below stays one compare and the table's memory stays O(touched),
  // never O(n) per worker.
  if (!net_.dense_round_) {
    std::uint64_t& h = out_->hist.at(dst);
    if (h == 0) out_->touched.push_back(dst);
    h += std::uint64_t{1} | (static_cast<std::uint64_t>(rec_len) << 32);
  }
  ++sends_;
}

inline void Ctx::send1(NodeId to, std::uint32_t tag, std::uint64_t word) {
  const Slot dst = net_.id_map_.find(to);
  // Encode speculatively like send(): three straight-line stores, then the
  // combined validity check with the cold diagnostics outlined. The record
  // bytes are exactly what send(to, make_msg(tag).push(word)) writes.
  constexpr std::size_t rec_len = wire::kHeaderWords + 1;
  std::uint64_t* p = out_->append(rec_len);
  p[0] = wire::routing_word(slot_, dst);
  p[1] = wire::header1_word(tag, /*is_id=*/false);
  p[2] = word;
  const Knowledge& kn = net_.know_[slot_];
  if (to == kNoNode || dst == kNoSlot ||
      !(kn.knows_all() || kn.knows_slot(dst)) ||
      sends_ >= net_.capacity_) [[unlikely]] {
    out_->len -= rec_len;  // pop the rejected record
    net_.send_fail(slot_, to, p, sends_);
  }
  if (!net_.dense_round_) {
    std::uint64_t& h = out_->hist.at(dst);
    if (h == 0) out_->touched.push_back(dst);
    h += std::uint64_t{1} | (std::uint64_t{rec_len} << 32);
  }
  ++sends_;
}

inline void Ctx::send1_id(NodeId to, std::uint32_t tag, NodeId id) {
  const Slot dst = net_.id_map_.find(to);
  const bool trailered = !net_.is_clique();
  const std::size_t rec_len = wire::kHeaderWords + 1 + (trailered ? 1 : 0);
  std::uint64_t* p = out_->append(rec_len);
  p[0] = wire::routing_word(slot_, dst);
  p[1] = wire::header1_word(tag, /*is_id=*/true);
  p[2] = id;
  const Knowledge& kn = net_.know_[slot_];
  if (to == kNoNode || dst == kNoSlot ||
      !(kn.knows_all() || kn.knows_slot(dst)) ||
      sends_ >= net_.capacity_) [[unlikely]] {
    out_->len -= rec_len;  // pop the rejected record
    net_.send_fail(slot_, to, p, sends_);
  }
  if (trailered) {
    // Learning network: the forwarded-ID KT0 check resolves the slot, and
    // the record carries it as the trailer word — same as send().
    const Slot ws = net_.known_slot_of(slot_, id);
    if (ws == kNoSlot) [[unlikely]] {
      out_->len -= rec_len;  // pop the rejected record
      net_.send_fail(slot_, to, p, sends_);
    }
    p[3] = ws;
  } else if (id == kNoNode) [[unlikely]] {
    // Clique network: common knowledge covers every real ID (send()'s
    // knows_all short-circuit — no resolution, no trailer), but a null
    // ID is still rejected exactly as send()'s forwarded-ID loop does.
    out_->len -= rec_len;  // pop the rejected record
    net_.send_fail(slot_, to, p, sends_);
  }
  if (!net_.dense_round_) {
    std::uint64_t& h = out_->hist.at(dst);
    if (h == 0) out_->touched.push_back(dst);
    h += std::uint64_t{1} | (static_cast<std::uint64_t>(rec_len) << 32);
  }
  ++sends_;
}

inline InboxView Ctx::inbox_view() const {
  return net_.make_inbox_view(slot_);
}

inline std::span<const Message> Ctx::inbox() const {
  return net_.legacy_inbox(slot_, *out_);
}

inline std::span<const Bounced> Ctx::bounced() const {
  // The per-slot bounce tables are lazy — materialized by the first round
  // that actually overflows a receiver — so a clean run answers from the
  // empty-table branch without ever allocating O(n) vectors.
  const auto& b = net_.scr_->bounced;
  if (slot_ >= b.size()) return {};
  return b[slot_];
}

inline void Ctx::wake() {
  auto& w = out_->wake;
  if (w.empty() || w.back() != slot_) w.push_back(slot_);
}

inline Rng& Ctx::rng() { return net_.node_rng_[slot_]; }

/// RAII helper attributing rounds to a named phase in NetStats::scope_rounds.
class ScopedRounds {
 public:
  ScopedRounds(Network& net, std::string name)
      : net_(net), name_(std::move(name)), start_(net.stats().rounds) {}
  ~ScopedRounds() { net_.add_scope_rounds(name_, net_.stats().rounds - start_); }
  ScopedRounds(const ScopedRounds&) = delete;
  ScopedRounds& operator=(const ScopedRounds&) = delete;

 private:
  Network& net_;
  std::string name_;
  std::uint64_t start_;
};

}  // namespace dgr::ncc
