#include "ncc/network.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <iterator>
#include <numeric>

#include "ncc/arena.h"
#include "ncc/executor.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dgr::ncc {

namespace {

// The wire-record codec lives in ncc::wire (message.h); deliver() below
// walks records with wire::record_words cursors exactly as Ctx::send wrote
// them, and the inbox arena stores accepted records verbatim.

/// High bit of an inbox cursor: the destination is oversubscribed this
/// round, so acceptance consults its overflow-bitmap cursor.
constexpr std::uint32_t kOvfBit = 0x80000000u;

// Packed per-destination accounting (OutArena::hist / RoundScratch::
// dest_count): message count in the low 32 bits, record words in the high
// 32. One add maintains both.
inline std::uint64_t pack_one(std::size_t rec_words) {
  return std::uint64_t{1} | (static_cast<std::uint64_t>(rec_words) << 32);
}
inline std::size_t pk_count(std::uint64_t packed) {
  return static_cast<std::size_t>(static_cast<std::uint32_t>(packed));
}
inline std::size_t pk_words(std::uint64_t packed) {
  return static_cast<std::size_t>(packed >> 32);
}

/// Rounds touching at least n/kDenseSweep slots switch from list-driven
/// scatters (sort the touched list, zero entries one by one) to sequential
/// full sweeps — at that density the O(n) streaming pass is cheaper than
/// k log k sorting and cache-random stores.
constexpr std::size_t kDenseSweep = 16;

/// Monotonic timestamp for the per-phase round breakdown (ncc/stats.h).
/// Only called while phase timing is on (a telemetry sink attached, or
/// Network::set_phase_timing); detached rounds never read a clock. The
/// reading feeds telemetry only, never a transcript. det-ok: clock
inline std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Delivery-tail parallelism grains. Below these the executor dispatch
/// overhead dwarfs the pass itself, so the serial path runs: placement and
/// the learn pass go parallel from ~2048 inbox words, the overflow
/// acceptance pre-draw from ~512 oversubscribed arrivals.
constexpr std::size_t kParallelDeliverWords = 2048;
constexpr std::size_t kParallelOvfArrivals = 512;

/// Grow-by-doubling for the round-scratch buffers whose contents are fully
/// rewritten every round — old contents are deliberately discarded.
template <typename T>
void grow_discard(std::unique_ptr<T[]>& buf, std::size_t& cap,
                  std::size_t need, std::size_t floor) {
  std::size_t next = cap == 0 ? floor : cap;
  while (next < need) next *= 2;
  buf = std::make_unique<T[]>(next);
  cap = next;
}

/// dst = dst ∪ src for sorted unique slot lists; no-ops skip the copy, so
/// the common case (one nonempty contributor) costs a single assign.
void sorted_union_into(std::vector<Slot>& dst, const std::vector<Slot>& src,
                       std::vector<Slot>& scratch) {
  if (src.empty()) return;
  if (dst.empty()) {
    dst = src;
    return;
  }
  scratch.clear();
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                 std::back_inserter(scratch));
  dst.swap(scratch);
}

}  // namespace

// ------------------------------------------------------------ Network ----

Network::Network(std::size_t n, Config cfg) : n_(n), cfg_(cfg) {
  DGR_CHECK_MSG(n >= 1, "network needs at least one node");
  capacity_ = std::max(cfg_.min_capacity,
                       cfg_.capacity_factor * ceil_log2(std::max<std::size_t>(n, 2)));
  threads_ = std::min<unsigned>(std::max(1u, cfg_.threads),
                                static_cast<unsigned>(n_));
  // Single-threaded networks never touch the executor at all; everyone
  // else registers up front so the lease width (the Config::threads cap)
  // is fixed for the network's lifetime.
  if (threads_ > 1) lease_ = Executor::instance().lease(threads_);

  Rng seeder(hash_mix(cfg_.seed, 0xA11CE5ULL));

  // Assign unique IDs.
  ids_.resize(n);
  if (cfg_.random_ids) {
    // Draw from [1, max(16 n^2, 1024)]: collisions are rare; re-draw on hit.
    const std::uint64_t space =
        std::max<std::uint64_t>(16ULL * n * n, 1024ULL);
    std::vector<NodeId> drawn;
    drawn.reserve(n);
    for (std::size_t i = 0; i < n; ++i) drawn.push_back(1 + seeder.below(space));
    std::sort(drawn.begin(), drawn.end());
    bool dup = std::adjacent_find(drawn.begin(), drawn.end()) != drawn.end();
    while (dup) {
      for (std::size_t i = 0; i + 1 < n; ++i)
        if (drawn[i] == drawn[i + 1]) drawn[i + 1] = 1 + seeder.below(space);
      std::sort(drawn.begin(), drawn.end());
      dup = std::adjacent_find(drawn.begin(), drawn.end()) != drawn.end();
    }
    // Scatter sorted IDs over slots so slot order carries no information.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    seeder.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i) ids_[perm[i]] = drawn[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<NodeId>(i + 1);
  }

  sorted_ids_ = ids_;
  std::sort(sorted_ids_.begin(), sorted_ids_.end());

  id_map_.build(ids_);

  // Initial knowledge graph Gk.
  path_order_.resize(n);
  std::iota(path_order_.begin(), path_order_.end(), Slot{0});
  if (cfg_.shuffle_path) seeder.shuffle(path_order_);

  know_.resize(n);
  for (auto& k : know_) k.init(n);
  initial_succ_.assign(n, kNoNode);
  // The path hints exist in both variants: NCC1 knowledge strictly contains
  // NCC0's, so NCC0 algorithms run unchanged on an NCC1 network (paper §2).
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Slot u = path_order_[i];
    const Slot v = path_order_[i + 1];
    initial_succ_[u] = ids_[v];
    know_[u].learn_slot(v);
  }
  if (cfg_.initial == InitialKnowledge::kClique) {
    for (auto& k : know_) k.set_all();
  }
  // Every node knows its own ID.
  for (Slot s = 0; s < n; ++s) know_[s].learn_slot(s);

  // Round-transient buffers: borrowed from the configured pool (warm from
  // a previous Network's run — a Runner matrix reuses one bundle across
  // all its realization algorithms) or freshly default-constructed.
  // prepare() sizes only the slim always-touched per-destination indices
  // (24 B/node, independent of the thread count); the per-worker
  // histograms are sparse (DestHist) and the trace/overflow tables stay
  // absent until a round actually needs them, so constructing a
  // million-node Network costs O(n) for the model state (IDs, knowledge,
  // RNG streams) and O(1) per worker for the datapath.
  if (cfg_.arena_pool) {
    pool_ = cfg_.arena_pool;
    scr_ = pool_->acquire();
  } else {
    scr_ = std::make_unique<RoundScratch>();
  }
  scr_->prepare(n_, threads_);
  // Acquire-side half of the pool contract: whatever bundle we got (fresh
  // or warm) must present the between-round invariants; release() checks
  // the producer side, this checks the consumer side.
  NCC_INVARIANT(scr_->invariants_clean(),
                "RoundScratch acquired with dirty between-round state");
  worker_span_.resize(threads_);

  node_rng_.reserve(n);
  for (Slot s = 0; s < n; ++s)
    node_rng_.push_back(Rng(hash_mix(cfg_.seed, 0x0DE5EED5ULL, s)));

  crashed_.assign(n, 0);
}

Network::~Network() {
  // Return the round scratch to its pool (release() sanitizes it back to
  // the between-round invariants); without a pool it frees with us.
  if (pool_) pool_->release(std::move(scr_));
}

Slot Network::slot_of(NodeId id) const {
  const Slot s = id_map_.find(id);
  DGR_CHECK_MSG(s != kNoSlot, "unknown NodeId " << id);
  return s;
}

std::size_t Network::max_knowledge() const {
  std::size_t best = 0;
  for (const auto& k : know_) best = std::max(best, k.size(n_));
  return best;
}

std::size_t Network::total_knowledge() const {
  std::size_t total = 0;
  for (const auto& k : know_) total += k.size(n_);
  return total;
}

void Network::send_fail(Slot s, NodeId to, const std::uint64_t* rec,
                        int sends) const {
  // Re-run the checks in their documented order so the thrown diagnostic is
  // the same one the checks would have produced inline.
  Message m;
  wire::decode(rec, kNoNode, m);
  DGR_CHECK_MSG(to != kNoNode, "send to null ID");
  const Knowledge& kn = know_[s];
  const Slot dst = id_map_.find(to);
  if (kn.knows_all()) {
    DGR_CHECK_MSG(dst != kNoSlot, "unknown NodeId " << to);
  } else {
    DGR_CHECK_MSG(dst != kNoSlot && kn.knows_slot(dst),
                  "node " << ids_[s] << " does not know ID " << to
                          << " (KT0 violation)");
  }
  for (std::size_t w = 0; w < m.size; ++w) {
    if (m.id_mask & (1u << w)) {
      DGR_CHECK_MSG(node_knows(s, m.words[w]),
                    "node " << ids_[s] << " forwards unknown ID "
                            << m.words[w]);
    }
  }
  DGR_CHECK_MSG(sends < capacity_,
                "send capacity exceeded at node " << ids_[s]);
  DGR_CHECK_MSG(false, "unreachable: send_fail called with passing checks");
  std::abort();  // silence [[noreturn]] warnings; DGR_CHECK above throws
}

void Network::run_slots(std::size_t lo, std::size_t hi, unsigned arena,
                        void* body, RoundThunk thunk) {
  auto* out = &scr_->outboxes[arena];
  const Slot* list = round_list_;  // null => dense: index i IS the slot
  for (std::size_t i = lo; i < hi; ++i) {
    const Slot s = list ? list[i] : static_cast<Slot>(i);
    if (crashed_[s]) continue;
    Ctx ctx(*this, s, out);
    thunk(body, ctx);
    // The send budget is tracked in the (register-resident) Ctx; fold it
    // into the per-arena max for the max_send statistic.
    if (ctx.sends_ > out->max_send) out->max_send = ctx.sends_;
  }
}

void Network::round(const std::function<void(Ctx&)>& body) {
  round_raw(const_cast<void*>(static_cast<const void*>(&body)),
            [](void* b, Ctx& ctx) {
              (*static_cast<const std::function<void(Ctx&)>*>(b))(ctx);
            });
}

void Network::round_active(const std::function<void(Ctx&)>& body) {
  round_active_raw(const_cast<void*>(static_cast<const void*>(&body)),
                   [](void* b, Ctx& ctx) {
                     (*static_cast<const std::function<void(Ctx&)>*>(b))(ctx);
                   });
}

void Network::round_raw(void* body, RoundThunk thunk) {
  round_list_ = nullptr;
  execute_round(n_, body, thunk);
}

void Network::round_active_raw(void* body, RoundThunk thunk) {
  ensure_frontier();
  flush_active();
  // The frontier becomes round-owned: deliver() rebuilds active_ for the
  // next round while the workers read this one's list.
  run_list_.swap(active_);
  active_.clear();
  if (cfg_.sparse_rounds) {
    round_list_ = run_list_.data();
    execute_round(run_list_.size(), body, thunk);
    round_list_ = nullptr;
  } else {
    // Dense reference mode: bodies are inactive-silent by contract, so
    // dispatching every slot must yield a bit-identical transcript.
    round_list_ = nullptr;
    execute_round(n_, body, thunk);
  }
}

void Network::ensure_frontier() {
  if (frontier_track_) return;
  frontier_track_ = true;
  std::sort(scr_->bounce_srcs.begin(), scr_->bounce_srcs.end());
  flush_active();
  sorted_union_into(active_, scr_->inbox_dests, active_scratch_);
  sorted_union_into(active_, scr_->bounce_srcs, active_scratch_);
}

void Network::flush_active() {
  if (!active_dirty_) return;
  if (!std::is_sorted(active_.begin(), active_.end()))
    std::sort(active_.begin(), active_.end());
  active_.erase(std::unique(active_.begin(), active_.end()), active_.end());
  active_dirty_ = false;
}

// The per-worker-grain below which a sparse round skips the executor
// dispatch and runs on the calling thread. Arena placement does not affect the
// transcript (slices stay in slot order either way), so this is a pure
// scheduling choice.
namespace {
constexpr std::size_t kSparseParallelGrain = 2048;
}  // namespace

void Network::execute_round(std::size_t items, void* body, RoundThunk thunk) {
  DGR_CHECK_MSG(stats_.rounds < cfg_.max_rounds,
                "round budget exhausted (" << cfg_.max_rounds << ")");
  RoundScratch& sc = *scr_;

  // Reset per-round arena state. The touched/count lists are normally empty
  // here (deliver() consumed them); after a round aborted by a body or
  // strict-mode exception they heal the partial state, keeping the
  // between-rounds invariants (hist, dest_count, inbox_len all zero —
  // advance_epoch retires any live histogram entries in O(1) regardless of
  // how the previous round ended).
  for (auto& out : sc.outboxes) {
    out.clear();
    out.max_send = 0;
    out.hist.advance_epoch();
    out.touched.clear();
    out.wake.clear();
  }
  for (const Slot d : sc.touched_dests) {
    sc.dest_count[d] = 0;
    sc.inbox_len[d] = 0;
  }
  sc.touched_dests.clear();

  // Dense-round fast path: when the previous delivery touched at least
  // n/kDenseSweep destinations, predict this round dense too — Ctx::send
  // skips histogram/first-touch upkeep and deliver() rebuilds the counts
  // with a sequential header re-stream. Pure bookkeeping strategy (the
  // transcript is identical either way), so a misprediction only costs one
  // round of the slower variant.
  dense_round_ = last_dense_;

  // Run the per-node body. Nodes are independent by contract, so slots can
  // be processed in parallel; all randomness is per-slot, so the transcript
  // is identical for any thread count. Tiny active sets skip the barrier.
  sparse_dispatch_ = round_list_ != nullptr;
  // Per-phase timing (RoundSample::phase_ns / NetStats::phase_ns): one
  // cached-flag branch per phase boundary when detached, no clock reads.
  const bool timed =
      telemetry_ != nullptr || metrics_ != nullptr || phase_timing_;
  if (!timed) round_ns_ = PhaseNanos{};
  const std::uint64_t t_body = timed ? mono_ns() : 0;
  {
    // in_body_ guards the referee-only knobs (set_drop_probability)
    // against mid-body flips: it must read true exactly while bodies may
    // run, and must reset on every exit path including body exceptions —
    // hence RAII, not manual clears. The set happens-before the job
    // submission (executor mutex) and the reset happens-after run()
    // returns, which waits for every task.
    const struct BodyScope {
      bool& flag;
      explicit BodyScope(bool& f) : flag(f) { flag = true; }
      ~BodyScope() { flag = false; }
    } body_scope(in_body_);
    const bool parallel =
        threads_ > 1 && (!round_list_ || items >= kSparseParallelGrain);
    if (!parallel) {
      run_slots(0, items, 0, body, thunk);
    } else {
      // One executor task per contiguous slice. Task index t maps to
      // worker_span_[t] and outbox arena t, so WHICH thread claims a task
      // never affects the transcript (arenas still concatenate in global
      // slot order); see deliver(). run() rethrows the first body
      // exception after all tasks drain — same contract the old
      // per-Network pool had.
      const std::size_t chunk = (items + threads_ - 1) / threads_;
      for (unsigned t = 0; t < threads_; ++t) {
        worker_span_[t] = {std::min<std::size_t>(t * chunk, items),
                           std::min<std::size_t>((t + 1) * chunk, items)};
      }
      struct RoundJob {
        Network* net;
        void* body;
        RoundThunk thunk;
      } job{this, body, thunk};
      Executor::instance().run(
          lease_, threads_, &job, [](void* c, std::size_t t) {
            auto* rj = static_cast<RoundJob*>(c);
            rj->net->run_slots(rj->net->worker_span_[t].first,
                               rj->net->worker_span_[t].second,
                               static_cast<unsigned>(t), rj->body, rj->thunk);
          });
    }
  }
  if (timed) round_ns_.body = mono_ns() - t_body;

  deliver();
  ++stats_.rounds;
}

// The delivery pipeline. RNG-stream contract (the transcript): the per-round
// delivery stream is consumed first by per-message drop draws in global
// source-slot order, then by the oversubscription Fisher-Yates draws in
// destination-slot order — exactly the order the seed engine used, so a
// fixed seed reproduces the seed engine's outcomes regardless of the thread
// count or of which internal path below runs.
//
// Sparse datapath: every pass below walks lists that name exactly the slots
// involved this round (touched destinations, bounce sources, wakes), so a
// round's delivery cost is O(messages + slots touched), independent of n.
// Destination iteration sorts touched_dests first, which keeps the
// oversubscription draws in destination-slot order — the same order the
// dense full-range sweep produced.
void Network::deliver() {
  RoundScratch& sc = *scr_;
  Rng delivery_rng(hash_mix(cfg_.seed, 0xDE11FE12ULL, stats_.rounds));
  const bool timed =
      telemetry_ != nullptr || metrics_ != nullptr || phase_timing_;
  std::uint64_t tmark = timed ? mono_ns() : 0;

  // The inbox arena is about to be repacked: every InboxView handed out for
  // the finished round is now stale (debug builds diagnose dereferences).
  ++inbox_gen_;

  // O(last round's frontier) cleanup of the per-slot state the previous
  // delivery wrote: inbox extents and bounce lists. Near-dense lists use a
  // sequential fill instead of a scatter (kDenseSweep below).
  if (sc.inbox_dests.size() >= n_ / kDenseSweep) {
    std::fill(sc.inbox_len.begin(), sc.inbox_len.end(), 0u);
  } else {
    for (const Slot d : sc.inbox_dests) sc.inbox_len[d] = 0;
  }
  sc.inbox_dests.clear();
  for (const Slot s : sc.bounce_srcs) sc.bounced[s].clear();
  sc.bounce_srcs.clear();

  // Pass 1 — drop/crash filtering and the counting-sort histogram. On the
  // reliable fast path (no loss, no crashes, no trace) nothing can be
  // dropped: the per-worker histograms Ctx::send maintained already hold the
  // final counts, and folding their touched lists yields the destination
  // set — no header re-stream at all. Otherwise the headers are walked in
  // global source-slot order (worker arenas in slice order), consuming the
  // delivery stream exactly as the serial seed engine did.
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  const bool lossy = cfg_.drop_probability > 0.0;
  const bool fast = !lossy && crashed_n_ == 0 && !trace_;
  const bool trailered = !is_clique();  // records carry ID-slot trailers
  // Near-dense rounds run the O(n) sequential variants of the passes below
  // (ordered-destination rebuild, zeroing): at that density streaming beats
  // list-driven scatters. Sparse rounds touch only the lists.
  bool dense_sweep = false;
  // Whether the fold below consumed (and re-zeroed) the per-worker
  // histogram entries — the debug all-zero invariant only holds then.
  bool hist_consumed = false;
  if (!fast) {
    // dest_count is all-zero between rounds; only survivors count.
    for (auto& out : sc.outboxes) {
      std::uint64_t* p = out.buf.get();
      std::uint64_t* const end = p + out.len;
      while (p < end) {
        ++sent;
        const std::size_t rl = wire::record_words(p, trailered);
        const Slot dst = wire::dst(p);
        // Link loss: the message silently disappears; the sender learns
        // nothing (unlike a capacity bounce). A crashed destination behaves
        // identically — the sender cannot tell the difference.
        if (crashed_[dst] ||
            (lossy && delivery_rng.chance(cfg_.drop_probability))) {
          ++dropped;
          if (trace_)
            trace_->record({stats_.rounds, wire::src(p), dst, wire::tag(p),
                            MessageOutcome::kDropped});
          wire::retarget(p, kNoSlot);  // tombstone: placement skips it
        } else {
          std::uint64_t& c = sc.dest_count[dst];
          if (c == 0) sc.touched_dests.push_back(dst);
          c += pack_one(rl);
        }
        p += rl;
      }
    }
    dense_sweep = dense_round_ || sc.touched_dests.size() >= n_ / kDenseSweep;
  } else if (dense_round_) {
    // Dense-round fast path: Ctx::send maintained no histograms this round.
    // Re-stream the headers sequentially (the PR2 shape) — at this density
    // the streaming pass beats per-send scattered upkeep — and rebuild the
    // ordered destination list with the O(n) sweep below.
    for (const auto& out : sc.outboxes) {
      const std::uint64_t* p = out.buf.get();
      const std::uint64_t* const end = p + out.len;
      while (p < end) {
        const std::size_t rl = wire::record_words(p, trailered);
        sc.dest_count[wire::dst(p)] += pack_one(rl);
        p += rl;
      }
    }
    dense_sweep = true;
  } else {
    std::size_t touched_total = 0;
    for (const auto& out : sc.outboxes) touched_total += out.touched.size();
    dense_sweep = touched_total >= n_ / kDenseSweep;
    hist_consumed = true;
    // Fold only the destinations each worker actually sent to, consuming
    // (and re-zeroing) each sparse histogram entry as it folds. The
    // near-dense case used to stream whole dense histograms here; with
    // O(touched) tables the touched lists ARE the histogram's extent, and
    // the ordered destination list is rebuilt by the O(n) sweep below.
    if (dense_sweep) {
      for (auto& out : sc.outboxes) {
        for (const Slot d : out.touched) {
          std::uint64_t& h = out.hist.at(d);
          sc.dest_count[d] += h;
          h = 0;
        }
      }
    } else {
      for (auto& out : sc.outboxes) {
        for (const Slot d : out.touched) {
          std::uint64_t& h = out.hist.at(d);
          if (sc.dest_count[d] == 0) sc.touched_dests.push_back(d);
          sc.dest_count[d] += h;
          h = 0;
        }
      }
    }
  }
  std::uint64_t round_max_send = 0;
  for (const auto& out : sc.outboxes)
    round_max_send = std::max<std::uint64_t>(
        round_max_send, static_cast<std::uint64_t>(out.max_send));
  stats_.max_send_in_round =
      std::max(stats_.max_send_in_round, round_max_send);

  // Pass 2 — per-destination layout and oversubscription draws, in
  // destination-slot order. For each overflowing destination, draw the
  // accepted capacity-sized subset now (partial Fisher-Yates over arrival
  // indices) and record it as a bitmap so the placement pass can route each
  // arrival in O(1). Near-dense rounds rebuild the ordered list with a
  // sequential sweep instead of sorting it.
  if (dense_sweep) {
    sc.touched_dests.clear();
    for (Slot d = 0; d < static_cast<Slot>(n_); ++d) {
      if (sc.dest_count[d] != 0) sc.touched_dests.push_back(d);
    }
  } else {
    std::sort(sc.touched_dests.begin(), sc.touched_dests.end());
  }
  const auto cap = static_cast<std::size_t>(capacity_);
  sc.ovf_dests.clear();
  sc.ovf_bitmap.clear();
  std::size_t accept_msgs = 0;    // accepted messages (stats, trace order)
  std::size_t layout_words = 0;   // inbox arena extent, incl. overflow slack
  std::size_t bounce_total = 0;
  std::uint64_t round_max_recv = 0;
  for (const Slot d : sc.touched_dests) {
    const std::uint64_t dc = sc.dest_count[d];
    const std::size_t m = pk_count(dc);
    const std::size_t w = pk_words(dc);
    round_max_recv = std::max<std::uint64_t>(round_max_recv, m);
    // kOvfBit guard: the word cursor lives in the low 31 bits of
    // inbox_cur and bit 31 is the oversubscription flag. Reject the round
    // BEFORE stamping any cursor whose arithmetic could reach the flag bit,
    // so a per-destination count near the flag can never alias it — not
    // even transiently mid-pass (placement advances the cursor by this
    // destination's words at most, which the extent below already covers).
    DGR_CHECK_MSG(layout_words + w < kOvfBit,
                  "round too large for 32-bit delivery cursors ("
                      << layout_words + w << " inbox words would reach the "
                      << "kOvfBit oversubscription flag)");
    sc.inbox_lo[d] = layout_words;
    sc.inbox_cur[d] = static_cast<std::uint32_t>(layout_words);
    if (m <= cap) {
      sc.inbox_len[d] = static_cast<std::uint32_t>(m);
      accept_msgs += m;
      layout_words += w;
      continue;
    }
    DGR_CHECK_MSG(cfg_.overflow == OverflowPolicy::kBounce,
                  "receive capacity exceeded at node "
                      << ids_[d] << " (" << m << " > " << cap
                      << ") in strict mode");
    // First overflow on this scratch materializes the O(n) cursor tables;
    // a run that never oversubscribes a receiver never allocates them.
    sc.ensure_overflow(n_);
    // Reserve this destination's acceptance-bitmap region. The actual
    // subset draws are deferred to the pre-draw step below so worker
    // threads can replay them without perturbing the stream; deferral is
    // stream-equivalent because this layout loop consumes no randomness.
    sc.bitmap_off[d] = static_cast<std::uint32_t>(sc.ovf_bitmap.size());
    sc.ovf_bitmap.resize(sc.ovf_bitmap.size() + m);  // value-initializes to 0
    sc.bounce_base[d] = static_cast<std::uint32_t>(bounce_total);
    sc.bounce_cursor[d] = static_cast<std::uint32_t>(bounce_total);
    bounce_total += m - cap;
    sc.ovf_dests.push_back(d);
    sc.inbox_cur[d] |= kOvfBit;
    sc.inbox_len[d] = static_cast<std::uint32_t>(cap);
    accept_msgs += cap;
    // The full pre-overflow word extent: accepted records pack at its
    // front, the bounced records' words are slack the next round reclaims.
    layout_words += w;
  }
  stats_.max_recv_in_round =
      std::max(stats_.max_recv_in_round, round_max_recv);
  // bounce_refs cursors are 32-bit message indices.
  DGR_CHECK_MSG(bounce_total < kOvfBit,
                "round too large for 32-bit delivery cursors ("
                    << bounce_total << " bounced)");
  if (fast) sent = accept_msgs + bounce_total;  // nothing was dropped
  stats_.messages_sent += sent;
  stats_.messages_dropped += dropped;
  // The bitmap buffer has its final size now; plant the per-destination
  // accept-flag cursors the placement pass consumes in arrival order.
  for (const Slot d : sc.ovf_dests)
    sc.ovf_cursor[d] = sc.ovf_bitmap.data() + sc.bitmap_off[d];

  if (sc.bounce_cap < bounce_total)
    grow_discard(sc.bounce_refs, sc.bounce_cap, bounce_total, 256);
  if (sc.inbox_cap < layout_words)
    grow_discard(sc.inbox_words, sc.inbox_cap, layout_words, 2048);
  if (timed) {
    round_ns_.sort = mono_ns() - tmark;
    tmark = mono_ns();
  }

  // Overflow-acceptance pre-draw (the "rng" phase): one partial
  // Fisher-Yates per oversubscribed destination, in destination-slot order
  // — the same draws, in the same stream positions, the seed engine made
  // inline during layout. Small rounds draw serially. Large rounds
  // snapshot the stream per destination with a serial prefix scan that
  // advances delivery_rng through exactly the draw sequence the serial
  // path would consume (below() rejects and redraws, so the raw-word count
  // is data-dependent — the skip-ahead must execute the draw arithmetic,
  // not jump), then replay the snapshots on worker tasks over contiguous
  // destination ranges with disjoint bitmap regions. Bit-identical at any
  // thread count by construction.
  if (!sc.ovf_dests.empty()) {
    const std::size_t ovf_n = sc.ovf_dests.size();
    const bool par_rng = threads_ > 1 && ovf_n > 1 &&
                         sc.ovf_bitmap.size() >= kParallelOvfArrivals;
    if (!par_rng) {
      for (const Slot d : sc.ovf_dests)
        draw_overflow_bitmap(d, delivery_rng, sc.overflow_idx);
    } else {
      ovf_rng_.clear();
      for (const Slot d : sc.ovf_dests) {
        ovf_rng_.push_back(delivery_rng);
        const std::size_t m = pk_count(sc.dest_count[d]);
        for (std::size_t i = 0; i < cap; ++i) delivery_rng.below(m - i);
      }
      // Contiguous destination ranges of ~equal arrival totals (the draw
      // and the bitmap fill are O(arrivals)); one range per executor task.
      const auto tasks = std::min<std::size_t>(threads_, ovf_n);
      const std::size_t total = sc.ovf_bitmap.size();
      ovf_part_.assign(tasks + 1, ovf_n);
      ovf_part_[0] = 0;
      std::size_t acc = 0;
      for (std::size_t i = 0, t = 1; i < ovf_n && t < tasks; ++i) {
        acc += pk_count(sc.dest_count[sc.ovf_dests[i]]);
        while (t < tasks && acc * tasks >= t * total) ovf_part_[t++] = i + 1;
      }
      if (ovf_idx_w_.size() < tasks) ovf_idx_w_.resize(tasks);
      Executor::instance().parallel_for(lease_, tasks, [&](std::size_t tk) {
        std::vector<std::uint32_t>& idx = ovf_idx_w_[tk];
        for (std::size_t i = ovf_part_[tk]; i < ovf_part_[tk + 1]; ++i) {
          Rng r = ovf_rng_[i];
          draw_overflow_bitmap(sc.ovf_dests[i], r, idx);
        }
      });
    }
  }
  if (timed) {
    round_ns_.rng = mono_ns() - tmark;
    tmark = mono_ns();
  }
  // In clique mode every node already knows every ID: skip the per-message
  // knowledge update (and its random access into know_) entirely.
  const bool learning = !is_clique();
  std::uint64_t* const inbox = sc.inbox_words.get();

  // Pass 3 — placement. Without a trace each accepted record is copied
  // exactly once, verbatim, from its outbox arena straight to its final
  // dest-major inbox position, streaming sources in slot order — nothing is
  // decoded; InboxView reads the records in place and the learn pass below
  // consumes their trailers. Bounces are spilled as references and returned
  // dest-major below, the order Ctx::bounced() has always exposed. With a
  // trace attached, messages are reference-sorted per destination first so
  // trace events keep the seed engine's exact dest-major order.
  if (!trace_) {
    // Parallel placement: each task owns a contiguous destination-slot
    // range, so every destination's cursor and inbox slice has exactly one
    // writer. Tasks re-stream all outbox headers and place only their own
    // range, which preserves each destination's arrival order (global
    // source order) — the transcript is bit-identical to the serial walk.
    // Ranges are cut at ~equal inbox-word shares from the layout prefix
    // sums, so the re-stream is the only duplicated work.
    const bool par_place = threads_ > 1 && sc.touched_dests.size() > 1 &&
                           layout_words >= kParallelDeliverWords;
    if (!par_place) {
      for (const auto& out : sc.outboxes) {
        const std::uint64_t* p = out.buf.get();
        const std::uint64_t* const end = p + out.len;
        while (p < end) {
          const std::uint64_t* rec = p;
          const std::size_t rl = wire::record_words(p, trailered);
          p += rl;
          const Slot dst = wire::dst(rec);
          if (dst == kNoSlot) continue;
          const std::uint32_t cur = sc.inbox_cur[dst];
          if (cur & kOvfBit) {
            if (*sc.ovf_cursor[dst]++ == 0) {
              sc.bounce_refs[sc.bounce_cursor[dst]++] = {rec, wire::src(rec)};
              continue;
            }
          }
          sc.inbox_cur[dst] = cur + static_cast<std::uint32_t>(rl);
          std::uint64_t* q = inbox + (cur & ~kOvfBit);
          for (std::size_t i = 0; i < rl; ++i) q[i] = rec[i];
        }
      }
    } else {
      const std::size_t tasks = threads_;
      place_part_.assign(tasks + 1, static_cast<Slot>(n_));
      place_part_[0] = 0;
      for (std::size_t t = 1; t < tasks; ++t) {
        const std::size_t target = layout_words * t / tasks;
        const auto it = std::lower_bound(
            sc.touched_dests.begin(), sc.touched_dests.end(), target,
            [&](Slot d, std::size_t tgt) { return sc.inbox_lo[d] < tgt; });
        place_part_[t] =
            it == sc.touched_dests.end() ? static_cast<Slot>(n_) : *it;
      }
      Executor::instance().parallel_for(lease_, tasks, [&](std::size_t t) {
        place_dest_range(place_part_[t], place_part_[t + 1], trailered);
      });
    }
    for (const Slot d : sc.ovf_dests) {
      const std::size_t lo = sc.bounce_base[d];
      const std::size_t hi = lo + pk_count(sc.dest_count[d]) - cap;
      for (std::size_t k = lo; k < hi; ++k) {
        const auto& r = sc.bounce_refs[k];
        if (sc.bounced[r.src].empty()) sc.bounce_srcs.push_back(r.src);
        Bounced& b = sc.bounced[r.src].emplace_back();
        b.dst = ids_[d];
        wire::decode(r.enc, ids_[r.src], b.msg);
      }
    }
  } else {
    // First trace on this scratch materializes the reference-sort tables.
    sc.ensure_trace(n_);
    // Stable counting-sort of references by destination...
    std::size_t total = 0;
    for (const Slot d : sc.touched_dests) {
      sc.dest_off[d] = total;
      sc.dest_cursor[d] = total;
      total += pk_count(sc.dest_count[d]);
    }
    sc.arena.resize(total);
    for (const auto& out : sc.outboxes) {
      const std::uint64_t* p = out.buf.get();
      const std::uint64_t* const end = p + out.len;
      while (p < end) {
        const std::uint64_t* rec = p;
        p += wire::record_words(p, trailered);
        const Slot dst = wire::dst(rec);
        if (dst == kNoSlot) continue;
        sc.arena[sc.dest_cursor[dst]++] = {rec, wire::src(rec)};
      }
    }
    // ...then per-destination delivery in arrival order.
    for (const Slot d : sc.touched_dests) {
      const std::size_t lo = sc.dest_off[d];
      const std::size_t m = pk_count(sc.dest_count[d]);
      const bool over = m > cap;
      std::uint32_t cur = sc.inbox_cur[d] & ~kOvfBit;
      for (std::size_t i = 0; i < m; ++i) {
        const auto [enc, src] = sc.arena[lo + i];
        const bool accept = !over || sc.ovf_bitmap[sc.bitmap_off[d] + i] != 0;
        if (trace_)
          trace_->record({stats_.rounds, src, d, wire::tag(enc),
                          accept ? MessageOutcome::kDelivered
                                 : MessageOutcome::kBounced});
        if (accept) {
          const std::size_t rl = wire::record_words(enc, trailered);
          std::uint64_t* q = inbox + cur;
          for (std::size_t w = 0; w < rl; ++w) q[w] = enc[w];
          cur += static_cast<std::uint32_t>(rl);
        } else {
          if (sc.bounced[src].empty()) sc.bounce_srcs.push_back(src);
          Bounced& b = sc.bounced[src].emplace_back();
          b.dst = ids_[d];
          wire::decode(enc, ids_[src], b.msg);
        }
      }
      sc.inbox_cur[d] = cur;
    }
  }
  stats_.messages_delivered += accept_msgs;
  stats_.messages_bounced += bounce_total;
  if (timed) {
    round_ns_.placement = mono_ns() - tmark;
    tmark = mono_ns();
  }

  // Knowledge post-pass, dest-major over the contiguous inbox arena:
  // delivery teaches the receiver the sender's ID plus every ID word in the
  // payload (the packet-header analogy from message.h). Running it here —
  // instead of inline during source-order placement — loads each receiver's
  // knowledge table once per round rather than once per message in source
  // order, which at large n is the difference between streaming and
  // DRAM-random learns. Knowledge updates are idempotent and commutative,
  // so the reordering cannot change any observable state. The batch runs
  // straight over the records' contiguous ID-slot trailers
  // (Knowledge::learn_trailer) — send-side checks resolved every forwarded
  // ID's slot already, so the pass never touches the IdMap.
  if (learning) {
    // Knowledge is per-destination state, so per-destination tasks are
    // race-free. The chunked claim keeps a skewed fan-in (one destination
    // holding most of the traffic) from serializing the pass behind one
    // fat static slice: tasks that finish their light destinations early
    // keep claiming more from the shared queue.
    const bool par_learn = threads_ > 1 && sc.touched_dests.size() > 1 &&
                           layout_words >= kParallelDeliverWords;
    if (!par_learn) {
      for (const Slot d : sc.touched_dests) learn_dest(d, inbox);
    } else {
      const std::size_t cnt = sc.touched_dests.size();
      const std::size_t chunk =
          std::max<std::size_t>(1, cnt / (std::size_t{threads_} * 8));
      Executor::instance().parallel_for(
          lease_, cnt,
          [&](std::size_t i) { learn_dest(sc.touched_dests[i], inbox); },
          chunk);
    }
  }
  if (timed) {
    // A skipped pass (clique mode) reports zero, not the branch overhead.
    round_ns_.learn = learning ? mono_ns() - tmark : 0;
    stats_.phase_ns.body += round_ns_.body;
    stats_.phase_ns.sort += round_ns_.sort;
    stats_.phase_ns.rng += round_ns_.rng;
    stats_.phase_ns.placement += round_ns_.placement;
    stats_.phase_ns.learn += round_ns_.learn;
  }

  // Tail — compute the next round's frontier and restore the between-round
  // invariants (dest_count and the worker histograms return to all-zero;
  // touched_dests hands the recipient list to the next cleanup).
  wake_scratch_.clear();
  for (auto& out : sc.outboxes) {
    // Worker slices are contiguous and ascending, so concatenating the
    // per-arena wake lists in arena order yields a sorted list.
    if (!out.wake.empty()) {
      frontier_track_ = true;  // a body self-wake turns tracking on
      wake_scratch_.insert(wake_scratch_.end(), out.wake.begin(),
                           out.wake.end());
      out.wake.clear();
    }
    // The fold above consumed every live histogram entry: between rounds
    // no destination may carry a nonzero count. (Paths that never read the
    // histograms — lossy/traced re-streams, dense-round re-streams — leave
    // their entries live; advance_epoch retires those wholesale.)
    NCC_INVARIANT(!hist_consumed || out.hist.all_zero(),
                  "per-worker histogram not all-zero after the delivery "
                  "fold (between-round invariant violated; deliver()'s "
                  "fold re-zeroes every entry it consumes)");
    (void)hist_consumed;
    out.hist.advance_epoch();
    out.touched.clear();
  }
  if (frontier_track_) {
    std::sort(sc.bounce_srcs.begin(), sc.bounce_srcs.end());
    // frontier = recipients ∪ self-wakes ∪ bounce holders ∪ any referee
    // wakes already queued for the next round (kept across dense rounds).
    flush_active();
    sorted_union_into(active_, sc.touched_dests, active_scratch_);
    sorted_union_into(active_, wake_scratch_, active_scratch_);
    sorted_union_into(active_, sc.bounce_srcs, active_scratch_);
  }
  if (dense_sweep) {
    std::fill(sc.dest_count.begin(), sc.dest_count.end(), 0u);
  } else {
    for (const Slot d : sc.touched_dests) sc.dest_count[d] = 0;
  }
  // Next round's dense-fast-path prediction: this round's actual touched-
  // destination density against the sweep threshold. (Deliberately NOT
  // triggered by raw traffic: a hot-spot fan-in like the overflow bench
  // moves n·cap/2 messages to 8 destinations, and there the per-worker
  // histogram fold is 8 entries — far cheaper than re-streaming every
  // record header.)
  last_dense_ = sc.touched_dests.size() >= n_ / kDenseSweep;
  sc.inbox_dests.swap(sc.touched_dests);
  sc.touched_dests.clear();

  // Telemetry hook, referee context (in_body_ is false, the frontier is
  // rebuilt, all statistics folded): hand the sinks this round's deltas. A
  // sink may steer the simulation from here — crash(), a drop-probability
  // flip — and the change applies from the next round; the metrics slot
  // fires after the telemetry slot on the same sample. Detached cost: this
  // one predictable branch.
  if (telemetry_ || metrics_) [[unlikely]] {
    RoundSample smp;
    smp.round = stats_.rounds;
    smp.sent = sent;
    smp.delivered = accept_msgs;
    smp.bounced = bounce_total;
    smp.dropped = dropped;
    smp.max_send = static_cast<std::uint32_t>(round_max_send);
    smp.max_recv = static_cast<std::uint32_t>(round_max_recv);
    smp.touched_dests = static_cast<std::uint32_t>(sc.inbox_dests.size());
    smp.inbox_words = layout_words;
    smp.frontier =
        frontier_track_ ? static_cast<std::uint32_t>(active_.size()) : 0;
    smp.frontier_tracked = frontier_track_;
    smp.crashed = static_cast<std::uint32_t>(crashed_n_);
    smp.dense_fast_path = dense_round_;
    smp.dense_sweep = dense_sweep;
    smp.sparse_dispatch = sparse_dispatch_;
    smp.phase_ns = round_ns_;
    if (telemetry_) telemetry_->on_round(smp);
    if (metrics_) metrics_->on_round(smp);
  }
}

// One parallel-placement task: re-stream every outbox arena in global
// source order, placing only the records whose destination falls in
// [dst_lo, dst_hi). Tombstoned records (dst == kNoSlot) fail the range
// check for every task, since ranges never extend past n_. Each
// destination's inbox_cur / ovf_cursor / bounce_cursor has exactly one
// writing task, so no synchronization is needed and per-destination
// arrival order matches the serial walk exactly.
void Network::place_dest_range(Slot dst_lo, Slot dst_hi, bool trailered) {
  RoundScratch& sc = *scr_;
  std::uint64_t* const inbox = sc.inbox_words.get();
  for (const auto& out : sc.outboxes) {
    const std::uint64_t* p = out.buf.get();
    const std::uint64_t* const end = p + out.len;
    while (p < end) {
      const std::uint64_t* rec = p;
      const std::size_t rl = wire::record_words(p, trailered);
      p += rl;
      const Slot dst = wire::dst(rec);
      if (dst < dst_lo || dst >= dst_hi) continue;
      const std::uint32_t cur = sc.inbox_cur[dst];
      if (cur & kOvfBit) {
        if (*sc.ovf_cursor[dst]++ == 0) {
          sc.bounce_refs[sc.bounce_cursor[dst]++] = {rec, wire::src(rec)};
          continue;
        }
      }
      sc.inbox_cur[dst] = cur + static_cast<std::uint32_t>(rl);
      std::uint64_t* q = inbox + (cur & ~kOvfBit);
      for (std::size_t i = 0; i < rl; ++i) q[i] = rec[i];
    }
  }
}

// Draw destination d's accepted capacity-sized subset (uniform via partial
// Fisher-Yates over arrival indices, preserving source order among the
// accepted) and mark it in d's region of the acceptance bitmap. `rng` is
// either the live delivery stream (serial path) or a snapshot of it taken
// at exactly this destination's draw position (parallel replay) — both
// consume the identical below() sequence.
void Network::draw_overflow_bitmap(Slot d, Rng& rng,
                                   std::vector<std::uint32_t>& idx_scratch) {
  RoundScratch& sc = *scr_;
  const auto cap = static_cast<std::size_t>(capacity_);
  const std::size_t m = pk_count(sc.dest_count[d]);
  idx_scratch.resize(m);
  std::iota(idx_scratch.begin(), idx_scratch.end(), 0u);
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(m - i));
    std::swap(idx_scratch[i], idx_scratch[j]);
  }
  const std::size_t boff = sc.bitmap_off[d];
  for (std::size_t i = 0; i < cap; ++i) sc.ovf_bitmap[boff + idx_scratch[i]] = 1;
}

// One destination's slice of the knowledge learn pass: walk its contiguous
// inbox records, teaching it each sender's ID plus every ID word carried in
// a payload trailer. Touches only know_[d], so per-destination tasks are
// race-free.
void Network::learn_dest(Slot d, const std::uint64_t* inbox) {
  RoundScratch& sc = *scr_;
  Knowledge& k = know_[d];
  const std::uint64_t* p = inbox + sc.inbox_lo[d];
  const std::uint32_t len = sc.inbox_len[d];
  for (std::uint32_t i = 0; i < len; ++i) {
    k.learn_slot(wire::src(p));
    const unsigned mask = wire::id_mask(p);
    const std::size_t nw = wire::size(p);
    std::size_t tw = 0;
    if (mask) {
      const std::uint64_t* tp = p + wire::kHeaderWords + nw;
      tw = wire::trailer_words(static_cast<std::uint8_t>(mask));
      k.learn_trailer(tp, tw);
      // Refresh the (ID, slot) hot cache with the record's last ID word
      // — the common re-verified case is "the ID I just received".
      const auto last = static_cast<std::size_t>(std::bit_width(mask)) - 1;
      k.set_hot(static_cast<NodeId>(p[wire::kHeaderWords + last]),
                static_cast<Slot>(tp[tw - 1]));
    }
    p += wire::kHeaderWords + nw + tw;
  }
}

std::span<const Message> Network::legacy_inbox(Slot s, OutArena& out) {
  // Cache key: (slot, round). A slot's body runs exactly once per round on
  // one worker, so the worker-private scratch only ever serves one slot at
  // a time and repeated inbox() calls within a body reuse the decode.
  if (out.legacy_slot != s || out.legacy_round != stats_.rounds) {
    out.legacy_slot = s;
    out.legacy_round = stats_.rounds;
    const std::uint32_t len = scr_->inbox_len[s];
    out.legacy_inbox.clear();
    out.legacy_inbox.resize(len);
    if (len != 0) {
      const bool trailered = !is_clique();
      const std::uint64_t* p = scr_->inbox_words.get() + scr_->inbox_lo[s];
      for (std::uint32_t i = 0; i < len; ++i) {
        wire::decode(p, ids_[wire::src(p)], out.legacy_inbox[i]);
        p += wire::record_words(p, trailered);
      }
    }
  }

  return {out.legacy_inbox.data(), out.legacy_inbox.size()};
}

std::uint64_t Network::run_until(const std::function<bool()>& done,
                                 const std::function<void(Ctx&)>& body) {
  std::uint64_t executed = 0;
  while (!done()) {
    round(body);
    ++executed;
  }
  return executed;
}

}  // namespace dgr::ncc
