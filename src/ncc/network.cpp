#include "ncc/network.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>

#include "util/check.h"
#include "util/math_util.h"

namespace dgr::ncc {

// ------------------------------------------------------------ OutArena ----

void Ctx::OutArena::grow(std::size_t need) {
  std::size_t next = cap == 0 ? 256 : cap * 2;
  while (next < len + need) next *= 2;
  auto nb = std::make_unique<std::uint64_t[]>(next);
  std::copy(buf.get(), buf.get() + len, nb.get());
  buf = std::move(nb);
  cap = next;
}

namespace {

// Accessors for the wire records described in Ctx::OutArena: word 0 routes
// (src | dst << 32), word 1 heads the payload (tag | size << 32 |
// id_mask << 40), then `size` payload words.
inline Slot rec_src(const std::uint64_t* p) {
  return static_cast<Slot>(p[0]);
}
inline Slot rec_dst(const std::uint64_t* p) {
  return static_cast<Slot>(p[0] >> 32);
}
inline void rec_set_dst(std::uint64_t* p, Slot dst) {
  p[0] = (p[0] & 0xffffffffULL) | (static_cast<std::uint64_t>(dst) << 32);
}
inline std::uint32_t rec_tag(const std::uint64_t* p) {
  return static_cast<std::uint32_t>(p[1]);
}
/// Total 64-bit words the record at `p` occupies.
inline std::size_t rec_words(const std::uint64_t* p) {
  return 2 + ((p[1] >> 32) & 0xffu);
}

/// High bit of an inbox cursor: the destination is oversubscribed this
/// round, so acceptance consults its overflow-bitmap cursor.
constexpr std::uint32_t kOvfBit = 0x80000000u;

/// Grow-by-doubling for the round-scratch buffers whose contents are fully
/// rewritten every round — old contents are deliberately discarded.
template <typename T>
void grow_discard(std::unique_ptr<T[]>& buf, std::size_t& cap,
                  std::size_t need, std::size_t floor) {
  std::size_t next = cap == 0 ? floor : cap;
  while (next < need) next *= 2;
  buf = std::make_unique<T[]>(next);
  cap = next;
}

/// Materialize a full Message from its wire record; unused payload words
/// are zeroed, matching what the pre-encoding engine delivered.
inline void decode(const std::uint64_t* p, NodeId src, Message& out) {
  const std::uint64_t h = p[1];
  out.tag = static_cast<std::uint32_t>(h);
  const auto size = static_cast<std::uint8_t>(h >> 32);
  out.size = size;
  out.id_mask = static_cast<std::uint8_t>(h >> 40);
  out.words = {};
  for (std::uint8_t w = 0; w < size; ++w) out.words[w] = p[2 + w];
  out.src = src;
}

}  // namespace

// ----------------------------------------------------------- WorkerPool ----

// Persistent round-body workers, woken by a generation barrier. The pool
// owns threads for slices 1..threads_-1; the caller's thread always runs
// slice 0, so threads_ == 1 never touches the pool at all. Slot slices are
// fixed at construction, which both avoids rebalancing bookkeeping and keeps
// the slice -> outbox-arena mapping stable (arena concatenation order is the
// determinism contract; see deliver()).
struct Network::WorkerPool {
  WorkerPool(Network& net, unsigned nworkers, std::size_t chunk)
      : net_(net) {
    threads_.reserve(nworkers);
    for (unsigned t = 1; t <= nworkers; ++t) {
      const Slot lo =
          static_cast<Slot>(std::min<std::size_t>(t * chunk, net.n_));
      const Slot hi =
          static_cast<Slot>(std::min<std::size_t>((t + 1) * chunk, net.n_));
      threads_.emplace_back([this, t, lo, hi] { worker_main(t, lo, hi); });
    }
  }

  ~WorkerPool() {
    {
      std::scoped_lock lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& th : threads_) th.join();
  }

  /// Publish one round of work to every worker; returns immediately.
  /// Pair with wait().
  void kick(void* body, RoundThunk thunk, unsigned nworkers) {
    {
      std::scoped_lock lk(mu_);
      body_ = body;
      thunk_ = thunk;
      pending_ = nworkers;
      error_ = nullptr;
      ++generation_;
    }
    cv_work_.notify_all();
  }

  /// Block until every worker finished the current round; rethrows the
  /// first body exception observed on a worker thread.
  void wait() {
    std::exception_ptr err;
    {
      std::unique_lock lk(mu_);
      cv_done_.wait(lk, [&] { return pending_ == 0; });
      err = error_;
      error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }

 private:
  void worker_main(unsigned t, Slot lo, Slot hi) {
    std::uint64_t seen = 0;
    for (;;) {
      void* body = nullptr;
      RoundThunk thunk = nullptr;
      {
        std::unique_lock lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        body = body_;
        thunk = thunk_;
      }
      try {
        net_.run_slots(lo, hi, t, body, thunk);
      } catch (...) {
        std::scoped_lock lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      {
        std::scoped_lock lk(mu_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  Network& net_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  void* body_ = nullptr;
  RoundThunk thunk_ = nullptr;
  std::exception_ptr error_;
};

// ------------------------------------------------------------ Network ----

Network::Network(std::size_t n, Config cfg) : n_(n), cfg_(cfg) {
  DGR_CHECK_MSG(n >= 1, "network needs at least one node");
  capacity_ = std::max(cfg_.min_capacity,
                       cfg_.capacity_factor * ceil_log2(std::max<std::size_t>(n, 2)));
  threads_ = std::min<unsigned>(std::max(1u, cfg_.threads),
                                static_cast<unsigned>(n_));

  Rng seeder(hash_mix(cfg_.seed, 0xA11CE5ULL));

  // Assign unique IDs.
  ids_.resize(n);
  if (cfg_.random_ids) {
    // Draw from [1, max(16 n^2, 1024)]: collisions are rare; re-draw on hit.
    const std::uint64_t space =
        std::max<std::uint64_t>(16ULL * n * n, 1024ULL);
    std::vector<NodeId> drawn;
    drawn.reserve(n);
    for (std::size_t i = 0; i < n; ++i) drawn.push_back(1 + seeder.below(space));
    std::sort(drawn.begin(), drawn.end());
    bool dup = std::adjacent_find(drawn.begin(), drawn.end()) != drawn.end();
    while (dup) {
      for (std::size_t i = 0; i + 1 < n; ++i)
        if (drawn[i] == drawn[i + 1]) drawn[i + 1] = 1 + seeder.below(space);
      std::sort(drawn.begin(), drawn.end());
      dup = std::adjacent_find(drawn.begin(), drawn.end()) != drawn.end();
    }
    // Scatter sorted IDs over slots so slot order carries no information.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    seeder.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i) ids_[perm[i]] = drawn[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<NodeId>(i + 1);
  }

  sorted_ids_ = ids_;
  std::sort(sorted_ids_.begin(), sorted_ids_.end());

  id_map_.build(ids_);

  // Initial knowledge graph Gk.
  path_order_.resize(n);
  std::iota(path_order_.begin(), path_order_.end(), Slot{0});
  if (cfg_.shuffle_path) seeder.shuffle(path_order_);

  know_.resize(n);
  for (auto& k : know_) k.init(n);
  initial_succ_.assign(n, kNoNode);
  // The path hints exist in both variants: NCC1 knowledge strictly contains
  // NCC0's, so NCC0 algorithms run unchanged on an NCC1 network (paper §2).
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Slot u = path_order_[i];
    const Slot v = path_order_[i + 1];
    initial_succ_[u] = ids_[v];
    know_[u].learn_slot(v);
  }
  if (cfg_.initial == InitialKnowledge::kClique) {
    for (auto& k : know_) k.set_all();
  }
  // Every node knows its own ID.
  for (Slot s = 0; s < n; ++s) know_[s].learn_slot(s);

  outboxes_.resize(threads_);
  for (auto& out : outboxes_) out.hist.assign(n, 0);
  dest_count_.resize(n);
  sends_this_round_.assign(n, 0);
  inbox_off_.assign(n + 1, 0);
  inbox_cur_.resize(n);
  bitmap_off_.resize(n);
  ovf_cursor_.resize(n);
  bounce_base_.resize(n);
  bounce_cursor_.resize(n);
  bounced_.resize(n);

  node_rng_.reserve(n);
  for (Slot s = 0; s < n; ++s)
    node_rng_.push_back(Rng(hash_mix(cfg_.seed, 0x0DE5EED5ULL, s)));

  crashed_.assign(n, 0);
}

Network::~Network() = default;

Slot Network::slot_of(NodeId id) const {
  const Slot s = id_map_.find(id);
  DGR_CHECK_MSG(s != kNoSlot, "unknown NodeId " << id);
  return s;
}

std::size_t Network::max_knowledge() const {
  std::size_t best = 0;
  for (const auto& k : know_) best = std::max(best, k.size(n_));
  return best;
}

std::size_t Network::total_knowledge() const {
  std::size_t total = 0;
  for (const auto& k : know_) total += k.size(n_);
  return total;
}

void Network::send_fail(Slot s, NodeId to, const std::uint64_t* rec,
                        int sends) const {
  // Re-run the checks in their documented order so the thrown diagnostic is
  // the same one the checks would have produced inline.
  Message m;
  decode(rec, kNoNode, m);
  DGR_CHECK_MSG(to != kNoNode, "send to null ID");
  const Knowledge& kn = know_[s];
  const Slot dst = id_map_.find(to);
  if (kn.knows_all()) {
    DGR_CHECK_MSG(dst != kNoSlot, "unknown NodeId " << to);
  } else {
    DGR_CHECK_MSG(dst != kNoSlot && kn.knows_slot(dst),
                  "node " << ids_[s] << " does not know ID " << to
                          << " (KT0 violation)");
  }
  for (std::size_t w = 0; w < m.size; ++w) {
    if (m.id_mask & (1u << w)) {
      DGR_CHECK_MSG(node_knows(s, m.words[w]),
                    "node " << ids_[s] << " forwards unknown ID "
                            << m.words[w]);
    }
  }
  DGR_CHECK_MSG(sends < capacity_,
                "send capacity exceeded at node " << ids_[s]);
  DGR_CHECK_MSG(false, "unreachable: send_fail called with passing checks");
  std::abort();  // silence [[noreturn]] warnings; DGR_CHECK above throws
}

// Delivery teaches the receiver the sender's ID plus every ID word in the
// payload (the packet-header analogy from message.h). Send-side checks
// guarantee every forwarded ID names a real node whenever the receiver
// actually materializes a set, so the find() cannot miss on that path.
void Network::learn_from(Slot dst, Slot src, const Message& msg) {
  Knowledge& k = know_[dst];
  if (k.knows_all()) return;
  k.learn_slot(src);
  for (std::size_t w = 0; w < msg.size; ++w) {
    if (msg.id_mask & (1u << w)) {
      const Slot ws = id_map_.find(msg.words[w]);
      if (ws != kNoSlot) k.learn_slot(ws);
    }
  }
}

void Network::run_slots(Slot lo, Slot hi, unsigned arena, void* body,
                        RoundThunk thunk) {
  auto* out = &outboxes_[arena];
  std::fill(out->hist.begin(), out->hist.end(), 0u);
  for (Slot s = lo; s < hi; ++s) {
    if (crashed_[s]) continue;
    Ctx ctx(*this, s, out);
    thunk(body, ctx);
    // The send budget is tracked in the (register-resident) Ctx; persist it
    // for the max_send statistic and the cold-path diagnostics.
    sends_this_round_[s] = ctx.sends_;
  }
}

void Network::round(const std::function<void(Ctx&)>& body) {
  round_raw(const_cast<void*>(static_cast<const void*>(&body)),
            [](void* b, Ctx& ctx) {
              (*static_cast<const std::function<void(Ctx&)>*>(b))(ctx);
            });
}

void Network::round_raw(void* body, RoundThunk thunk) {
  DGR_CHECK_MSG(stats_.rounds < cfg_.max_rounds,
                "round budget exhausted (" << cfg_.max_rounds << ")");

  std::fill(sends_this_round_.begin(), sends_this_round_.end(), 0);
  for (auto& out : outboxes_) out.clear();

  // Run the per-node body. Nodes are independent by contract, so slots can
  // be processed in parallel; all randomness is per-slot, so the transcript
  // is identical for any thread count.
  if (threads_ <= 1) {
    run_slots(0, static_cast<Slot>(n_), 0, body, thunk);
  } else {
    const std::size_t chunk = (n_ + threads_ - 1) / threads_;
    if (!pool_)
      pool_ = std::make_unique<WorkerPool>(*this, threads_ - 1, chunk);
    pool_->kick(body, thunk, threads_ - 1);
    // The calling thread is worker 0; run its slice before blocking.
    std::exception_ptr main_err;
    try {
      run_slots(0, static_cast<Slot>(std::min(chunk, n_)), 0, body, thunk);
    } catch (...) {
      main_err = std::current_exception();
    }
    try {
      pool_->wait();
    } catch (...) {
      if (!main_err) main_err = std::current_exception();
    }
    if (main_err) std::rethrow_exception(main_err);
  }

  deliver();
  ++stats_.rounds;
}

// The delivery pipeline. RNG-stream contract (the transcript): the per-round
// delivery stream is consumed first by per-message drop draws in global
// source-slot order, then by the oversubscription Fisher-Yates draws in
// destination-slot order — exactly the order the seed engine used, so a
// fixed seed reproduces the seed engine's outcomes regardless of the thread
// count or of which internal path below runs.
void Network::deliver() {
  Rng delivery_rng(hash_mix(cfg_.seed, 0xDE11FE12ULL, stats_.rounds));

  // Pass 1 — drop/crash filtering and the counting-sort histogram. On the
  // reliable fast path (no loss, no crashes, no trace) nothing can be
  // dropped: the per-worker histograms Ctx::send maintained already hold the
  // final counts, and they are folded during the layout pass below — no
  // header re-stream at all. Otherwise the headers are walked in global
  // source-slot order (worker arenas in slice order), consuming the delivery
  // stream exactly as the serial seed engine did.
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  const bool lossy = cfg_.drop_probability > 0.0;
  const bool fast = !lossy && crashed_n_ == 0 && !trace_;
  if (!fast) {
    dest_count_.assign(n_, 0);
    for (auto& out : outboxes_) {
      std::uint64_t* p = out.buf.get();
      std::uint64_t* const end = p + out.len;
      while (p < end) {
        ++sent;
        const Slot dst = rec_dst(p);
        // Link loss: the message silently disappears; the sender learns
        // nothing (unlike a capacity bounce). A crashed destination behaves
        // identically — the sender cannot tell the difference.
        if (crashed_[dst] ||
            (lossy && delivery_rng.chance(cfg_.drop_probability))) {
          ++dropped;
          if (trace_)
            trace_->record({stats_.rounds, rec_src(p), dst, rec_tag(p),
                            MessageOutcome::kDropped});
          rec_set_dst(p, kNoSlot);  // tombstone: placement skips it
        } else {
          ++dest_count_[dst];
        }
        p += rec_words(p);
      }
    }
  }
  std::uint64_t max_send = 0;
  for (const int c : sends_this_round_)
    max_send = std::max<std::uint64_t>(max_send, static_cast<std::uint64_t>(c));
  stats_.max_send_in_round = std::max(stats_.max_send_in_round, max_send);

  // Pass 2 — per-destination layout and oversubscription draws, in
  // destination-slot order. For each overflowing destination, draw the
  // accepted capacity-sized subset now (partial Fisher-Yates over arrival
  // indices) and record it as a bitmap so the placement pass can route each
  // arrival in O(1).
  const auto cap = static_cast<std::size_t>(capacity_);
  if (fast) {
    // Fold the per-worker send-time histograms into the final counts.
    std::copy(outboxes_[0].hist.begin(), outboxes_[0].hist.end(),
              dest_count_.begin());
    for (unsigned t = 1; t < threads_; ++t) {
      const auto& hist = outboxes_[t].hist;
      for (std::size_t d = 0; d < n_; ++d) dest_count_[d] += hist[d];
    }
  }
  ovf_dests_.clear();
  ovf_bitmap_.clear();
  std::size_t accept_total = 0;
  std::size_t bounce_total = 0;
  std::uint64_t max_recv = stats_.max_recv_in_round;
  for (Slot d = 0; d < n_; ++d) {
    const std::size_t m = dest_count_[d];
    max_recv = std::max<std::uint64_t>(max_recv, m);
    inbox_off_[d] = accept_total;
    inbox_cur_[d] = static_cast<std::uint32_t>(accept_total);
    if (m <= cap) {
      accept_total += m;
      continue;
    }
    DGR_CHECK_MSG(cfg_.overflow == OverflowPolicy::kBounce,
                  "receive capacity exceeded at node "
                      << ids_[d] << " (" << m << " > " << cap
                      << ") in strict mode");
    // Accept a uniformly random cap-sized subset, preserving source order
    // among the accepted. The scratch is reused across destinations/rounds.
    overflow_idx_.resize(m);
    std::iota(overflow_idx_.begin(), overflow_idx_.end(), 0u);
    for (std::size_t i = 0; i < cap; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(delivery_rng.below(m - i));
      std::swap(overflow_idx_[i], overflow_idx_[j]);
    }
    const std::size_t boff = ovf_bitmap_.size();
    bitmap_off_[d] = static_cast<std::uint32_t>(boff);
    ovf_bitmap_.resize(boff + m);  // new bytes value-initialize to 0
    for (std::size_t i = 0; i < cap; ++i)
      ovf_bitmap_[boff + overflow_idx_[i]] = 1;
    bounce_base_[d] = static_cast<std::uint32_t>(bounce_total);
    bounce_cursor_[d] = static_cast<std::uint32_t>(bounce_total);
    bounce_total += m - cap;
    ovf_dests_.push_back(d);
    inbox_cur_[d] |= kOvfBit;
    accept_total += cap;
  }
  inbox_off_[n_] = accept_total;
  stats_.max_recv_in_round = max_recv;
  // The per-destination cursors are 32-bit (bit 31 of an inbox cursor is
  // the overflow flag); a round this large would corrupt them silently.
  DGR_CHECK_MSG(accept_total < kOvfBit && bounce_total < kOvfBit,
                "round too large for 32-bit delivery cursors ("
                    << accept_total << " accepted, " << bounce_total
                    << " bounced)");
  if (fast) sent = accept_total + bounce_total;  // nothing was dropped
  stats_.messages_sent += sent;
  stats_.messages_dropped += dropped;
  // The bitmap buffer has its final size now; plant the per-destination
  // accept-flag cursors the placement pass consumes in arrival order.
  for (const Slot d : ovf_dests_)
    ovf_cursor_[d] = ovf_bitmap_.data() + bitmap_off_[d];

  if (bounce_cap_ < bounce_total)
    grow_discard(bounce_refs_, bounce_cap_, bounce_total, 256);
  if (inbox_cap_ < accept_total)
    grow_discard(inbox_arena_, inbox_cap_, accept_total, 1024);
  for (auto& b : bounced_) b.clear();
  // In clique mode every node already knows every ID: skip the per-message
  // knowledge update (and its random access into know_) entirely.
  const bool learning = !is_clique();
  Message* const inbox = inbox_arena_.get();

  // Pass 3 — placement. Without a trace each payload is copied exactly once,
  // from its outbox arena straight to its final inbox position, streaming
  // sources in slot order; bounces are spilled as references and returned
  // dest-major below, the order Ctx::bounced() has always exposed. With a
  // trace attached, messages are reference-sorted per destination first so
  // trace events keep the seed engine's exact dest-major order.
  if (!trace_) {
    for (const auto& out : outboxes_) {
      const std::uint64_t* p = out.buf.get();
      const std::uint64_t* const end = p + out.len;
      while (p < end) {
        const std::uint64_t* rec = p;
        p += rec_words(p);
        const Slot dst = rec_dst(rec);
        if (dst == kNoSlot) continue;
        const Slot src = rec_src(rec);
        const std::uint32_t cur = inbox_cur_[dst];
        if (cur & kOvfBit) {
          if (*ovf_cursor_[dst]++ == 0) {
            bounce_refs_[bounce_cursor_[dst]++] = {rec, src};
            continue;
          }
        }
        inbox_cur_[dst] = cur + 1;
        Message& slot = inbox[cur & ~kOvfBit];
        decode(rec, ids_[src], slot);
        if (learning) learn_from(dst, src, slot);
      }
    }
    for (const Slot d : ovf_dests_) {
      const std::size_t lo = bounce_base_[d];
      const std::size_t hi = lo + dest_count_[d] - cap;
      for (std::size_t k = lo; k < hi; ++k) {
        const auto& r = bounce_refs_[k];
        Bounced& b = bounced_[r.src].emplace_back();
        b.dst = ids_[d];
        decode(r.enc, ids_[r.src], b.msg);
      }
    }
  } else {
    // Stable counting-sort of references by destination...
    dest_off_.resize(n_ + 1);
    dest_cursor_.resize(n_);
    std::size_t total = 0;
    for (Slot d = 0; d < n_; ++d) {
      dest_off_[d] = total;
      dest_cursor_[d] = total;
      total += dest_count_[d];
    }
    dest_off_[n_] = total;
    arena_.resize(total);
    for (const auto& out : outboxes_) {
      const std::uint64_t* p = out.buf.get();
      const std::uint64_t* const end = p + out.len;
      while (p < end) {
        const std::uint64_t* rec = p;
        p += rec_words(p);
        const Slot dst = rec_dst(rec);
        if (dst == kNoSlot) continue;
        arena_[dest_cursor_[dst]++] = {rec, rec_src(rec)};
      }
    }
    // ...then per-destination delivery in arrival order.
    for (Slot d = 0; d < n_; ++d) {
      const std::size_t lo = dest_off_[d];
      const std::size_t m = dest_off_[d + 1] - lo;
      const bool over = m > cap;
      std::uint32_t cur = inbox_cur_[d] & ~kOvfBit;
      for (std::size_t i = 0; i < m; ++i) {
        const auto [enc, src] = arena_[lo + i];
        Message msg;
        decode(enc, ids_[src], msg);
        const bool accept = !over || ovf_bitmap_[bitmap_off_[d] + i] != 0;
        if (trace_)
          trace_->record({stats_.rounds, src, d, msg.tag,
                          accept ? MessageOutcome::kDelivered
                                 : MessageOutcome::kBounced});
        if (accept) {
          if (learning) learn_from(d, src, msg);
          inbox[cur++] = msg;
        } else {
          bounced_[src].push_back({ids_[d], msg});
        }
      }
      inbox_cur_[d] = cur;
    }
  }
  stats_.messages_delivered += accept_total;
  stats_.messages_bounced += bounce_total;
}

std::uint64_t Network::run_until(const std::function<bool()>& done,
                                 const std::function<void(Ctx&)>& body) {
  std::uint64_t executed = 0;
  while (!done()) {
    round(body);
    ++executed;
  }
  return executed;
}

}  // namespace dgr::ncc
