#include "ncc/network.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <thread>

#include "util/check.h"
#include "util/math_util.h"

namespace dgr::ncc {

// ---------------------------------------------------------------- Ctx ----

NodeId Ctx::id() const { return net_.ids_[slot_]; }
std::size_t Ctx::n() const { return net_.n_; }
std::uint64_t Ctx::round() const { return net_.stats_.rounds; }
int Ctx::capacity() const { return net_.capacity_; }
int Ctx::sends_left() const {
  return net_.capacity_ - net_.sends_this_round_[slot_];
}

bool Ctx::knows(NodeId id) const { return net_.know_[slot_].knows(id); }

NodeId Ctx::initial_successor() const { return net_.initial_succ_[slot_]; }

std::span<const NodeId> Ctx::all_ids() const {
  DGR_CHECK_MSG(net_.is_clique(),
                "all_ids() is common knowledge only in the NCC1 model");
  return net_.sorted_ids_;
}

void Ctx::send(NodeId to, Message m) {
  DGR_CHECK_MSG(to != kNoNode, "send to null ID");
  DGR_CHECK_MSG(knows(to), "node " << id() << " does not know ID " << to
                                   << " (KT0 violation)");
  // A node can only transmit IDs it actually knows (no referee leakage).
  for (std::size_t w = 0; w < m.size; ++w) {
    if (m.id_mask & (1u << w)) {
      DGR_CHECK_MSG(knows(m.words[w]),
                    "node " << id() << " forwards unknown ID " << m.words[w]);
    }
  }
  DGR_CHECK_MSG(net_.sends_this_round_[slot_] < net_.capacity_,
                "send capacity exceeded at node " << id());
  const Slot dst = net_.slot_of(to);
  m.src = id();
  net_.outbox_[slot_].push_back({dst, std::move(m)});
  ++net_.sends_this_round_[slot_];
}

std::span<const Message> Ctx::inbox() const { return net_.inbox_[slot_]; }
std::span<const Bounced> Ctx::bounced() const { return net_.bounced_[slot_]; }

Rng& Ctx::rng() { return net_.node_rng_[slot_]; }

// ------------------------------------------------------------ Network ----

Network::Network(std::size_t n, Config cfg) : n_(n), cfg_(cfg) {
  DGR_CHECK_MSG(n >= 1, "network needs at least one node");
  capacity_ = std::max(cfg_.min_capacity,
                       cfg_.capacity_factor * ceil_log2(std::max<std::size_t>(n, 2)));

  Rng seeder(hash_mix(cfg_.seed, 0xA11CE5ULL));

  // Assign unique IDs.
  ids_.resize(n);
  if (cfg_.random_ids) {
    // Draw from [1, max(16 n^2, 1024)]: collisions are rare; re-draw on hit.
    const std::uint64_t space =
        std::max<std::uint64_t>(16ULL * n * n, 1024ULL);
    std::vector<NodeId> drawn;
    drawn.reserve(n);
    for (std::size_t i = 0; i < n; ++i) drawn.push_back(1 + seeder.below(space));
    std::sort(drawn.begin(), drawn.end());
    bool dup = std::adjacent_find(drawn.begin(), drawn.end()) != drawn.end();
    while (dup) {
      for (std::size_t i = 0; i + 1 < n; ++i)
        if (drawn[i] == drawn[i + 1]) drawn[i + 1] = 1 + seeder.below(space);
      std::sort(drawn.begin(), drawn.end());
      dup = std::adjacent_find(drawn.begin(), drawn.end()) != drawn.end();
    }
    // Scatter sorted IDs over slots so slot order carries no information.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    seeder.shuffle(perm);
    for (std::size_t i = 0; i < n; ++i) ids_[perm[i]] = drawn[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<NodeId>(i + 1);
  }

  sorted_ids_ = ids_;
  std::sort(sorted_ids_.begin(), sorted_ids_.end());

  id_index_.reserve(n);
  for (Slot s = 0; s < n; ++s) id_index_.emplace_back(ids_[s], s);
  std::sort(id_index_.begin(), id_index_.end());

  // Initial knowledge graph Gk.
  path_order_.resize(n);
  std::iota(path_order_.begin(), path_order_.end(), Slot{0});
  if (cfg_.shuffle_path) seeder.shuffle(path_order_);

  know_.resize(n);
  initial_succ_.assign(n, kNoNode);
  // The path hints exist in both variants: NCC1 knowledge strictly contains
  // NCC0's, so NCC0 algorithms run unchanged on an NCC1 network (paper §2).
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Slot u = path_order_[i];
    const Slot v = path_order_[i + 1];
    initial_succ_[u] = ids_[v];
    know_[u].learn(ids_[v]);
  }
  if (cfg_.initial == InitialKnowledge::kClique) {
    for (auto& k : know_) k.set_all();
  }
  // Every node knows its own ID.
  for (Slot s = 0; s < n; ++s) know_[s].learn(ids_[s]);

  outbox_.resize(n);
  sends_this_round_.assign(n, 0);
  inbox_.resize(n);
  bounced_.resize(n);

  node_rng_.reserve(n);
  for (Slot s = 0; s < n; ++s)
    node_rng_.push_back(Rng(hash_mix(cfg_.seed, 0x0DE5EED5ULL, s)));

  crashed_.assign(n, 0);
}

std::size_t Network::crashed_count() const {
  std::size_t c = 0;
  for (const auto x : crashed_) c += x;
  return c;
}

Slot Network::slot_of(NodeId id) const {
  auto it = std::lower_bound(id_index_.begin(), id_index_.end(),
                             std::make_pair(id, Slot{0}));
  DGR_CHECK_MSG(it != id_index_.end() && it->first == id,
                "unknown NodeId " << id);
  return it->second;
}

std::size_t Network::max_knowledge() const {
  std::size_t best = 0;
  for (const auto& k : know_) best = std::max(best, k.size(n_));
  return best;
}

std::size_t Network::total_knowledge() const {
  std::size_t total = 0;
  for (const auto& k : know_) total += k.size(n_);
  return total;
}

void Network::round(const std::function<void(Ctx&)>& body) {
  DGR_CHECK_MSG(stats_.rounds < cfg_.max_rounds,
                "round budget exhausted (" << cfg_.max_rounds << ")");

  std::fill(sends_this_round_.begin(), sends_this_round_.end(), 0);
  for (auto& out : outbox_) out.clear();

  // Run the per-node body. Nodes are independent by contract, so slots can
  // be processed in parallel; all randomness is per-slot, so the transcript
  // is identical for any thread count.
  const unsigned threads =
      std::min<unsigned>(std::max(1u, cfg_.threads),
                         static_cast<unsigned>(n_));
  if (threads <= 1) {
    for (Slot s = 0; s < n_; ++s) {
      if (crashed_[s]) continue;
      Ctx ctx(*this, s);
      body(ctx);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    std::exception_ptr first_error;
    std::mutex err_mu;
    const std::size_t chunk = (n_ + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const Slot lo = static_cast<Slot>(std::min<std::size_t>(t * chunk, n_));
      const Slot hi =
          static_cast<Slot>(std::min<std::size_t>((t + 1) * chunk, n_));
      pool.emplace_back([&, lo, hi] {
        try {
          for (Slot s = lo; s < hi; ++s) {
            if (crashed_[s]) continue;
            Ctx ctx(*this, s);
            body(ctx);
          }
        } catch (...) {
          std::scoped_lock lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  deliver();
  ++stats_.rounds;
}

void Network::deliver() {
  // Gather per-destination, iterating sources in slot order so delivery is
  // deterministic regardless of execution threading.
  auto& buckets = delivery_buckets_;
  if (buckets.size() < n_) buckets.resize(n_);
  for (auto& b : buckets) b.clear();

  Rng delivery_rng(hash_mix(cfg_.seed, 0xDE11FE12ULL, stats_.rounds));

  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t max_send = 0;
  for (Slot s = 0; s < n_; ++s) {
    max_send = std::max<std::uint64_t>(max_send, outbox_[s].size());
    for (auto& out : outbox_[s]) {
      ++sent;
      // Link loss: the message silently disappears; the sender learns
      // nothing (unlike a capacity bounce). A crashed destination behaves
      // identically — the sender cannot tell the difference.
      if (crashed_[out.dst] ||
          (cfg_.drop_probability > 0.0 &&
           delivery_rng.chance(cfg_.drop_probability))) {
        ++dropped;
        if (trace_)
          trace_->record({stats_.rounds, s, out.dst, out.msg.tag,
                          MessageOutcome::kDropped});
        continue;
      }
      buckets[out.dst].emplace_back(s, std::move(out.msg));
    }
  }
  stats_.messages_sent += sent;
  stats_.messages_dropped += dropped;
  stats_.max_send_in_round = std::max(stats_.max_send_in_round, max_send);

  for (auto& b : bounced_) b.clear();

  const auto cap = static_cast<std::size_t>(capacity_);
  std::uint64_t delivered = 0;
  std::uint64_t bounced = 0;
  for (Slot d = 0; d < n_; ++d) {
    auto& incoming = buckets[d];
    auto& box = inbox_[d];
    box.clear();
    stats_.max_recv_in_round =
        std::max<std::uint64_t>(stats_.max_recv_in_round, incoming.size());

    if (incoming.size() > cap) {
      DGR_CHECK_MSG(cfg_.overflow == OverflowPolicy::kBounce,
                    "receive capacity exceeded at node "
                        << ids_[d] << " (" << incoming.size() << " > " << cap
                        << ") in strict mode");
      // Accept a uniformly random cap-sized subset, preserving source order
      // among the accepted (partial Fisher-Yates on indices).
      std::vector<std::size_t> idx(incoming.size());
      std::iota(idx.begin(), idx.end(), 0);
      for (std::size_t i = 0; i < cap; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(delivery_rng.below(idx.size() - i));
        std::swap(idx[i], idx[j]);
      }
      std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(cap));
      std::vector<bool> accepted(incoming.size(), false);
      for (std::size_t i = 0; i < cap; ++i) accepted[idx[i]] = true;
      for (std::size_t i = 0; i < incoming.size(); ++i) {
        auto& [src, msg] = incoming[i];
        if (trace_)
          trace_->record({stats_.rounds, src, d, msg.tag,
                          accepted[i] ? MessageOutcome::kDelivered
                                      : MessageOutcome::kBounced});
        if (accepted[i]) {
          know_[d].learn(msg.src);
          for (std::size_t w = 0; w < msg.size; ++w)
            if (msg.id_mask & (1u << w)) know_[d].learn(msg.words[w]);
          box.push_back(std::move(msg));
          ++delivered;
        } else {
          bounced_[src].push_back({ids_[d], std::move(msg)});
          ++bounced;
        }
      }
    } else {
      for (auto& [src, msg] : incoming) {
        if (trace_)
          trace_->record({stats_.rounds, src, d, msg.tag,
                          MessageOutcome::kDelivered});
        know_[d].learn(msg.src);
        for (std::size_t w = 0; w < msg.size; ++w)
          if (msg.id_mask & (1u << w)) know_[d].learn(msg.words[w]);
        box.push_back(std::move(msg));
        ++delivered;
      }
    }
  }
  stats_.messages_delivered += delivered;
  stats_.messages_bounced += bounced;
}

std::uint64_t Network::run_until(const std::function<bool()>& done,
                                 const std::function<void(Ctx&)>& body) {
  std::uint64_t executed = 0;
  while (!done()) {
    round(body);
    ++executed;
  }
  return executed;
}

}  // namespace dgr::ncc
