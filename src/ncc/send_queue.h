// SendQueue: paces an arbitrarily large set of outgoing messages under the
// per-round send cap and transparently retries bounced messages.
//
// This is the Las-Vegas workhorse behind the paper's Theorem 12 (making a
// realization explicit) and Algorithm 6 phase 2: a node with deg(v) pending
// notifications drips them out at Theta(log n) per round; oversubscribed
// receivers bounce the excess, and bounces are retried until everything
// drains — w.h.p. within O(load/log n + log n) rounds.
//
// Usage inside a round body (one queue per node, owned by the algorithm):
//   queues[ctx.slot()].pump(ctx);
// pump() first re-ingests this node's bounces from the previous round (only
// those whose tag passes the filter), then sends as much of the backlog as
// the remaining round budget allows.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "ncc/network.h"

namespace dgr::ncc {

class SendQueue {
 public:
  SendQueue() = default;

  /// Restrict bounce re-ingestion to messages with this tag (a node may run
  /// several utilities; each must only retry its own traffic).
  explicit SendQueue(std::uint32_t tag_filter)
      : has_filter_(true), tag_filter_(tag_filter) {}

  void push(NodeId dst, Message m) { queue_.push_back({dst, std::move(m)}); }
  /// Forwarding ingest straight from an inbox view: the queue owns its
  /// backlog across rounds, so this is the one place a zero-copy MessageRef
  /// must be materialized (the view's arena is repacked next round).
  void push(NodeId dst, const MessageRef& m) {
    queue_.push_back({dst, m.materialize()});
  }

  /// Re-ingest bounces, then send while budget remains. Call at most once
  /// per node per round.
  void pump(Ctx& ctx);

  bool idle() const { return queue_.empty() && in_flight_ == 0; }
  std::size_t backlog() const { return queue_.size(); }
  std::uint64_t in_flight() const { return in_flight_; }

 private:
  struct Pending {
    NodeId dst;
    Message msg;
  };
  std::deque<Pending> queue_;
  std::uint64_t in_flight_ = 0;       // sent, not yet known-delivered
  std::uint64_t last_pump_round_ = ~std::uint64_t{0};
  bool has_filter_ = false;
  std::uint32_t tag_filter_ = 0;
};

}  // namespace dgr::ncc
