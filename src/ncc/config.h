// Simulation configuration for the NCC model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dgr::ncc {

class ArenaPool;

/// What happens when more messages target a node in one round than its
/// receive capacity allows.
enum class OverflowPolicy {
  /// Las-Vegas mode (default): the receiver accepts a uniformly random
  /// capacity-sized subset; the rest bounce back to their senders, who see
  /// them in Ctx::bounced() next round and may retry. Models back-pressure.
  kBounce,
  /// Strict mode: oversubscription throws. Used in tests to prove that the
  /// deterministic primitives never exceed the model's capacity.
  kStrict,
};

/// Initial knowledge graph Gk (paper §2).
enum class InitialKnowledge {
  /// NCC0: Gk is a directed path over the nodes in an arbitrary order; each
  /// node initially knows only its path successor's ID.
  kPath,
  /// NCC1: every node knows every ID (KT1 analogue).
  kClique,
};

struct Config {
  std::uint64_t seed = 1;

  /// Per-round send and receive budget is
  /// max(min_capacity, capacity_factor * ceil(log2 n)) messages.
  int capacity_factor = 4;
  int min_capacity = 8;

  OverflowPolicy overflow = OverflowPolicy::kBounce;
  InitialKnowledge initial = InitialKnowledge::kPath;

  /// Hard stop: a simulation exceeding this many rounds throws (guards
  /// against livelock in experimental code).
  std::size_t max_rounds = 5'000'000;

  /// Worker threads for the per-node round body (1 = serial; effective
  /// count is min(threads, n)). Threads > 1 registers the Network with the
  /// process-wide Executor (ncc/executor.h), which lazily starts shared
  /// workers on the first parallel round — workers park between rounds, so
  /// there is no per-round spawn/join cost, and concurrent Networks share
  /// one pool. The cap is honored via slice partitioning: each round is
  /// dispatched as `threads` tasks, task t covering a fixed slot slice and
  /// a private outbox arena; transcripts are bit-for-bit identical for any
  /// thread count and any number of concurrently-running networks.
  unsigned threads = 1;

  /// Independent per-message loss probability (0 = reliable links, the
  /// model's default). Dropped messages vanish without sender feedback —
  /// unlike capacity bounces. Used by the §8 robustness experiments
  /// together with the reliable-exchange primitive.
  double drop_probability = 0.0;

  /// Active-set scheduling for Network::round_active (true, the default):
  /// the round body runs only for slots that received a message, hold a
  /// bounce, or were explicitly woken. With false, round_active falls back
  /// to dense dispatch (the body runs for every slot) while keeping the
  /// same active-set bookkeeping and termination — bodies are required to
  /// be silent for inactive slots, so the transcript is bit-for-bit
  /// identical either way. The dense fallback exists as the reference mode
  /// the EngineDeterminism equivalence tests compare against.
  bool sparse_rounds = true;

  /// Randomly permute the path order (true) or use slot order (false —
  /// convenient for unit tests and for reproducing the paper's figures).
  bool shuffle_path = true;

  /// Draw IDs at random from a large space (true) or use 1..n in slot order
  /// (false — convenient for figures/tests).
  bool random_ids = true;

  /// Optional cross-Network scratch pool (ncc/arena.h). When set, the
  /// Network borrows its round-transient buffers — outbox arenas, sparse
  /// histograms, the inbox arena, overflow scratch — from this pool at
  /// construction and returns them at destruction, so a sequence of
  /// Networks (a Runner matrix over all realization algorithms, a serve
  /// driver's cold runs) reuses warm allocations instead of re-resizing
  /// from scratch each time. Purely an allocation strategy: transcripts
  /// are bit-identical with a pool attached or not, at any thread count.
  /// Non-owning; the pool must outlive every Network configured with it.
  ArenaPool* arena_pool = nullptr;
};

}  // namespace dgr::ncc
