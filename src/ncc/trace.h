// Optional message-level tracing for the NCC engine.
//
// Attach a Trace to a Network to record every message outcome (delivered /
// bounced / dropped) with its round, endpoints and tag. Designed for
// debugging protocols and for message-complexity accounting in experiments;
// tracing is off by default and costs nothing when detached.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "ncc/ids.h"

namespace dgr::ncc {

enum class MessageOutcome : std::uint8_t { kDelivered, kBounced, kDropped };

struct TraceEvent {
  std::uint64_t round;
  Slot src;
  Slot dst;
  std::uint32_t tag;
  MessageOutcome outcome;
};

class Trace {
 public:
  /// Keep at most `max_events` raw events (older ones are discarded);
  /// aggregate counters are always exact.
  explicit Trace(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  void record(const TraceEvent& e);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t total_recorded() const { return total_; }

  /// Messages per tag (exact, across the whole attachment period).
  const std::map<std::uint32_t, std::uint64_t>& per_tag() const {
    return per_tag_;
  }
  /// Delivered / bounced / dropped totals.
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t bounced() const { return bounced_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Busiest round (most messages) seen so far: (round, count).
  std::pair<std::uint64_t, std::uint64_t> busiest_round() const;

  /// CSV dump of retained raw events: round,src,dst,tag,outcome.
  void write_csv(std::ostream& os) const;

  void clear();

 private:
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::size_t total_ = 0;
  std::map<std::uint32_t, std::uint64_t> per_tag_;
  std::map<std::uint64_t, std::uint64_t> per_round_;
  std::uint64_t delivered_ = 0;
  std::uint64_t bounced_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dgr::ncc
