// Process-wide round-body executor (realization-as-a-service substrate).
//
// Before this layer existed every Network owned its own persistent worker
// pool, so N concurrent simulations meant N idle pools' worth of threads
// and there was no way to schedule independent simulations over one set of
// cores. The Executor pulls that pool out of Network into a lazily-started
// process-wide service:
//
//   - Clients (a Network, the scenario Runner, the RealizationService)
//     register by acquiring a Lease whose width says how many tasks wide
//     their jobs run. The pool grows lazily to the widest lease actually
//     dispatching, and never shrinks until process exit.
//   - A job is a parallel-for: `count` independent tasks fn(ctx, 0..count-1).
//     Tasks are claimed dynamically, but WHAT runs is a pure function of the
//     task index — a Network maps index i to its contiguous slot slice i and
//     outbox arena i — so scheduling freedom never touches transcripts: the
//     engine's determinism contract (per-arena outbox concatenation in
//     global slot order) is preserved for any pool size, any claim order,
//     and any number of concurrently-running client jobs.
//   - The submitting thread always participates in its own job, claiming
//     tasks until none remain and then waiting for stragglers. A job
//     therefore completes even when every pooled worker is busy with other
//     clients' work, which makes nested submission (a Runner job whose
//     run_one drives a multi-threaded Network) deadlock-free by
//     construction.
//
// Exception contract (same as the old per-Network pool): every task of a
// job is claimed and executed even after a failure; the first exception
// observed is rethrown on the submitting thread once the job drains.
//
// Happens-before audit (PR 9, verified TSan-clean at threads {2,4,8} over
// the unit shard + the race-stress suite). All cross-thread edges in this
// file are established by exactly one mutex (Impl::mu) and its condition
// variables — there are no atomics and no lock-free paths, so the audit
// is short:
//
//   1. Job publication: run() writes the Job fields (ctx/fn/count/chunk)
//      while NOT holding mu, then pushes &job onto the queue under mu.
//      Workers read those fields only after popping/claiming under the
//      same mu — the lock pair orders the plain writes before every
//      worker read. The client's own pre-round state (worker_span_,
//      partition tables, outbox arenas in Network's case) is published to
//      workers by the same edge.
//   2. Claim accounting: Job::next and Job::done are only ever read or
//      written under mu (worker_main and the caller loop re-acquire it
//      around every claim and every completion fold). A task index is
//      claimed exactly once because the claim (next = hi) and the
//      unqueue-when-exhausted happen in the same critical section.
//   3. Task side effects: a task's writes (into client-owned, task-
//      indexed state) are ordered before the submitter's post-run()
//      reads by the mu acquire/release pair around the worker's `done`
//      fold and the caller's cv_done wait — run() returns only after
//      observing done == count under mu.
//   4. Exceptions: Job::error is written under mu (first writer wins) and
//      read by the submitter under mu after the drain; rethrow happens
//      after the lock is dropped, on the submitting thread only.
//   5. Teardown: ~Executor sets stop under mu, notifies, and joins every
//      worker — thread::join orders all worker effects before impl_
//      deletion. Lease::release touches impl_ under mu; leases must not
//      outlive their executor (the process-wide instance outlives every
//      client by construction; test-local executors own that ordering).
//
// The audit found no missing edge; the NCC_ASSERT claim-accounting
// contracts in executor.cpp pin the invariants the audit relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace dgr::ncc {

class Executor {
 public:
  /// Observability snapshot (monotone process-lifetime counters).
  struct Stats {
    std::uint64_t jobs = 0;          ///< pool-path run() calls
    std::uint64_t tasks = 0;         ///< tasks executed via the pool path
    std::uint64_t caller_tasks = 0;  ///< ... on the submitting thread
    std::uint64_t worker_tasks = 0;  ///< ... on pooled workers
    unsigned workers = 0;            ///< threads currently started
    unsigned clients = 0;            ///< live leases
  };

  /// A client registration: holds the width (max tasks per job) this client
  /// dispatches at. Movable, releases on destruction. A default-constructed
  /// Lease is empty and may not be used with run().
  class Lease {
   public:
    Lease() = default;
    ~Lease() { release(); }
    Lease(Lease&& o) noexcept : exec_(o.exec_), width_(o.width_) {
      o.exec_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        exec_ = o.exec_;
        width_ = o.width_;
        o.exec_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    unsigned width() const { return width_; }
    explicit operator bool() const { return exec_ != nullptr; }
    void release();

   private:
    friend class Executor;
    Lease(Executor* e, unsigned width) : exec_(e), width_(width) {}
    Executor* exec_ = nullptr;
    unsigned width_ = 0;
  };

  /// The process-wide instance (workers started lazily on first wide job).
  static Executor& instance();

  /// Register a client that dispatches jobs up to `width` tasks wide
  /// (width 0 is clamped to 1). Cheap; threads start only when a job needs
  /// them.
  Lease lease(unsigned width);

  using TaskFn = void (*)(void* ctx, std::size_t index);

  /// Run fn(ctx, i) for i in [0, count); blocks until every task finished.
  /// The calling thread participates. Rethrows the first task exception
  /// after the job drains. `lease` must belong to this executor; a job is
  /// never wider than the lease (count above the width still runs — width
  /// only caps how many pooled workers the job may occupy).
  ///
  /// `chunk` is a claim-granularity hint for jobs with many small tasks: a
  /// claimer grabs up to `chunk` consecutive indices per queue access
  /// instead of one, amortizing the mutex over the batch while dynamic
  /// claiming still load-balances skewed task costs (a fat task holds up
  /// one chunk, not a precomputed static slice). chunk == 1 (the default)
  /// preserves the original one-index-per-claim behavior exactly; tasks
  /// are always executed in ascending index order within a chunk.
  void run(const Lease& lease, std::size_t count, void* ctx, TaskFn fn,
           std::size_t chunk = 1);

  /// Type-safe wrapper: f(std::size_t index).
  template <typename F>
  void parallel_for(const Lease& lease, std::size_t count, F&& f,
                    std::size_t chunk = 1) {
    using Fn = std::remove_reference_t<F>;
    run(lease, count, const_cast<void*>(static_cast<const void*>(&f)),
        [](void* c, std::size_t i) { (*static_cast<Fn*>(c))(i); }, chunk);
  }

  Stats stats() const;

  // Public constructor so tests can exercise a private pool; production
  // code uses instance().
  Executor();
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

 private:
  struct Job;
  struct Impl;
  Impl* impl_;  // raw pimpl: executor.h stays light for network.h
};

}  // namespace dgr::ncc
