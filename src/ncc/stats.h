// Round and message accounting for a simulation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dgr::ncc {

/// Monotonic-clock nanoseconds attributed to each delivery-datapath phase:
/// the round bodies, the counting-sort/layout passes, the overflow RNG
/// pre-draw, record placement, and the knowledge learn pass. Only populated
/// while phase timing is on (a telemetry sink attached, or
/// Network::set_phase_timing(true)); otherwise every field stays zero and
/// the engine takes no timestamps at all. Wall-clock measurements, NOT part
/// of the transcript: values differ run to run and across thread counts,
/// so determinism fingerprints must never compare them.
struct PhaseNanos {
  std::uint64_t body = 0;       ///< round-body dispatch (send side)
  std::uint64_t sort = 0;       ///< drop filter + counting sort + layout
  std::uint64_t rng = 0;        ///< overflow-acceptance bitmap pre-draw
  std::uint64_t placement = 0;  ///< record copy into the dest-major inbox
  std::uint64_t learn = 0;      ///< dest-major knowledge learn pass

  std::uint64_t total() const { return body + sort + rng + placement + learn; }
};

struct NetStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages_sent = 0;       ///< accepted by the engine
  std::uint64_t messages_delivered = 0;  ///< reached an inbox
  std::uint64_t messages_bounced = 0;    ///< returned to sender (overflow)
  std::uint64_t messages_dropped = 0;    ///< lost to link failure (no feedback)
  std::uint64_t max_send_in_round = 0;   ///< max per-node sends in any round
  std::uint64_t max_recv_in_round = 0;   ///< max per-node deliveries in any round

  /// Rounds attributed to named phases via ScopedRounds.
  std::map<std::string, std::uint64_t> scope_rounds;

  /// Cumulative per-phase wall time (see PhaseNanos): zero unless phase
  /// timing is on. Excluded from transcript fingerprints by design.
  PhaseNanos phase_ns;
};

}  // namespace dgr::ncc
