// Round and message accounting for a simulation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dgr::ncc {

struct NetStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages_sent = 0;       ///< accepted by the engine
  std::uint64_t messages_delivered = 0;  ///< reached an inbox
  std::uint64_t messages_bounced = 0;    ///< returned to sender (overflow)
  std::uint64_t messages_dropped = 0;    ///< lost to link failure (no feedback)
  std::uint64_t max_send_in_round = 0;   ///< max per-node sends in any round
  std::uint64_t max_recv_in_round = 0;   ///< max per-node deliveries in any round

  /// Rounds attributed to named phases via ScopedRounds.
  std::map<std::string, std::uint64_t> scope_rounds;
};

}  // namespace dgr::ncc
