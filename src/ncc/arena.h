// Round-engine arenas: the per-worker outbox, the sparse per-worker
// destination histogram, the poolable bundle of every round-transient
// buffer a Network owns (RoundScratch), and the cross-Network ArenaPool.
//
// Memory contract (the million-node mode): nothing in this file grows
// O(threads x n), and every eagerly-sized table is one of the four slim
// always-touched per-destination indices (dest_count / inbox_lo /
// inbox_len / inbox_cur, 24 bytes per node, constant in the thread
// count). Everything else is O(traffic + touched destinations):
//   - outbox arenas and the inbox arena grow with the words actually sent;
//   - per-worker histograms are epoch-stamped open-addressing tables sized
//     by the destinations a worker actually touches in a round (DestHist),
//     replacing the dense `hist.assign(n, 0)` that cost O(threads x n)
//     before a single message moved;
//   - the trace reference-sort tables and the overflow/bounce cursor
//     tables are allocated lazily, on the first round that actually
//     attaches a Trace or overflows a receiver — a clean huge-n
//     realization never pays for them.
//
// RoundScratch + ArenaPool: all of the above is bundled so a Network can
// borrow its round-transient state from a pool (Config::arena_pool) and
// return it at destruction, letting wire arenas, histograms, and per-phase
// scratch be reused across the 5 realization algorithms of a Runner matrix
// (or across serve cold runs) instead of being re-resized from scratch per
// Network. Reuse is invisible to the simulation: every buffer here is
// either rewritten each round or held to an explicit between-round
// invariant (all-zero histograms and counts, length tables zero outside
// the touched lists), and sanitize() restores those invariants at release,
// so transcripts are bit-identical with a pool attached or not — at any
// thread count. The pool is mutex-guarded and bounded (max_free); trim()
// reclaims everything it retains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ncc/ids.h"
#include "ncc/message.h"

namespace dgr::ncc {

/// Per-worker destination histogram with O(touched) memory and an O(1)
/// between-round reset. Open-addressing table keyed by destination slot;
/// each entry is stamped with the epoch that wrote it, so advance_epoch()
/// invalidates every entry without touching memory — the dense
/// `assign(n, 0)` clear (and its O(threads x n) footprint) is gone.
/// Values are the engine's packed accounting word: message count in the
/// low 32 bits, record words in the high 32.
class DestHist {
 public:
  /// Reference to the packed counter for `dst`, zero on the first touch
  /// of the current epoch. Hot path of Ctx::send — kept header-inline.
  std::uint64_t& at(Slot dst) {
    if (live_ * 2 >= tab_.size()) [[unlikely]] grow();
    const std::size_t mask = tab_.size() - 1;
    std::size_t i = probe_start(dst, mask);
    for (;;) {
      Ent& e = tab_[i];
      if (e.epoch != epoch_) {
        // Empty or stale slot: claim it for this epoch.
        e.key = dst;
        e.epoch = epoch_;
        e.packed = 0;
        ++live_;
        return e.packed;
      }
      if (e.key == dst) return e.packed;
      i = (i + 1) & mask;
    }
  }

  /// The packed counter for `dst`, or 0 when untouched this epoch.
  std::uint64_t get(Slot dst) const {
    if (tab_.empty()) return 0;
    const std::size_t mask = tab_.size() - 1;
    std::size_t i = probe_start(dst, mask);
    for (;;) {
      const Ent& e = tab_[i];
      if (e.epoch != epoch_) return 0;
      if (e.key == dst) return e.packed;
      i = (i + 1) & mask;
    }
  }

  /// O(1) reset: every live entry becomes stale. Epoch 0 marks
  /// never-written entries, so a wrap re-stamps the table once.
  void advance_epoch() {
    live_ = 0;
    if (++epoch_ == 0) [[unlikely]] {
      for (Ent& e : tab_) e.epoch = 0;
      epoch_ = 1;
    }
  }

  std::size_t live_count() const { return live_; }
  std::size_t footprint_bytes() const { return tab_.capacity() * sizeof(Ent); }

  /// Debug invariant: between rounds no destination may carry a live
  /// nonzero count (deliver() folds and advance_epoch() retires them all).
  bool all_zero() const {
    for (const Ent& e : tab_) {
      if (e.epoch == epoch_ && e.packed != 0) return false;
    }
    return true;
  }

 private:
  struct Ent {
    std::uint64_t packed = 0;
    Slot key = kNoSlot;
    std::uint32_t epoch = 0;  // 0 = never written (epoch_ starts at 1)
  };

  static std::size_t probe_start(Slot s, std::size_t mask) {
    return (static_cast<std::uint32_t>(s) * 2654435761u) & mask;
  }

  void grow();  // cold: doubles the table, re-inserting live entries only

  std::vector<Ent> tab_;
  std::uint32_t epoch_ = 1;
  std::size_t live_ = 0;
};

/// One worker's outbox: a single flat stream of variable-length wire
/// records, each `2 + size (+ trailer)` 64-bit words (see ncc::wire in
/// message.h). A one-word message costs 24 bytes instead of
/// sizeof(Message) == 48, and appending costs one bounds check and three
/// sequential stores. The stream is written and re-read strictly
/// sequentially, so no per-record offsets exist; deliver() walks it with a
/// cursor and copies accepted records verbatim to their final inbox
/// position.
struct OutArena {
  std::unique_ptr<std::uint64_t[]> buf;
  std::size_t len = 0;  // words used
  std::size_t cap = 0;  // words allocated
  // Per-destination send accounting, maintained by Ctx::send so the
  // reliable-network fast path in deliver() never has to re-stream the
  // records just to build its counting-sort histogram. Sparse: O(touched
  // destinations) memory, O(1) epoch reset (see DestHist). Maintained even
  // on lossy networks (where deliver() rebuilds counts post-drop and
  // ignores this): set_drop_probability is a live knob, and gating the
  // upkeep would put a branch on the reliable send path. Rounds predicted
  // dense skip the upkeep entirely (Network::dense_round_) and deliver()
  // re-streams the headers instead.
  DestHist hist;
  // Destinations with hist.at(d) > 0, in first-send order (dedup by hist).
  std::vector<Slot> touched;
  // Slots whose body called Ctx::wake() this round. Ascending by slot: a
  // worker walks its slice in slot order, so per-arena lists concatenate
  // sorted across the pool's contiguous slices.
  std::vector<Slot> wake;
  // Max per-node sends this worker observed this round (NetStats feed;
  // replaces the old O(n) per-round scan of a sends-per-slot array).
  int max_send = 0;
  // Legacy Ctx::inbox() scratch: the calling slot's wire records decoded
  // into Messages, cached per (slot, round). Worker-private, like the rest
  // of the arena, so the span a body receives stays valid for the whole
  // body invocation.
  std::vector<Message> legacy_inbox;
  Slot legacy_slot = kNoSlot;
  std::uint64_t legacy_round = ~std::uint64_t{0};

  void clear() { len = 0; }

  std::uint64_t* append(std::size_t words) {
    if (len + words > cap) [[unlikely]] grow(words);
    std::uint64_t* p = buf.get() + len;
    len += words;
    return p;
  }

  std::size_t footprint_bytes() const;

 private:
  void grow(std::size_t need);  // cold: doubles capacity
};

/// Reference to a wire record in a worker outbox arena; used by both the
/// traced-path reference sort and the bounce spill.
struct EncodedRef {
  const std::uint64_t* enc;
  Slot src;
};

/// A message returned to its sender because the receiver was
/// oversubscribed.
struct Bounced {
  NodeId dst = kNoNode;
  Message msg;
};

/// Every round-transient buffer of a Network, bundled so the whole set can
/// be borrowed from an ArenaPool and returned at Network destruction. The
/// steady-state datapath performs no allocation: buffers grow to the
/// workload's high-water mark and stay there, and with a pool attached
/// they survive the Network itself.
///
/// Between-round invariants (hold on release to the pool, and therefore on
/// acquire from it): every hist is epoch-clean and dest_count is all-zero;
/// inbox_len is nonzero only at slots named by inbox_dests; bounced[s] is
/// nonempty only for slots named by bounce_srcs; every list is consumed by
/// the round that reads it. sanitize() restores all of this in
/// O(last round's touched sets).
struct RoundScratch {
  // --- per-worker arenas (resized to the Network's thread count) --------
  std::vector<OutArena> outboxes;

  // --- always-touched per-destination indices (dense, 24 B/node, x1) ----
  // Kept dense deliberately: deliver() and make_inbox_view index them per
  // touched slot on the hot path, and at 24 bytes per node they are an
  // order of magnitude slimmer than the model state itself (knowledge
  // tables, RNG streams). Zeroing is sparse via the touched lists.
  std::vector<std::uint64_t> dest_count;  // packed counting-sort histogram
  std::vector<std::size_t> inbox_lo;      // per-node inbox word offset
  std::vector<std::uint32_t> inbox_len;   // per-node accepted messages
  std::vector<std::uint32_t> inbox_cur;   // per-node write cursors (kOvfBit)

  // --- O(traffic) round lists ------------------------------------------
  std::vector<Slot> touched_dests;  // dests with dest_count > 0
  std::vector<Slot> inbox_dests;    // slots with inbox_len > 0 (last round)
  std::vector<Slot> bounce_srcs;    // slots with bounces (last round)

  /// The inbox arena: accepted wire records copied verbatim, dest-major —
  /// each destination's records sit contiguously in arrival order, at
  /// variable stride (wire::record_words).
  std::unique_ptr<std::uint64_t[]> inbox_words;
  std::size_t inbox_cap = 0;  // words allocated

  // --- traced-path reference sort (lazy: first deliver() with a Trace) --
  std::vector<std::size_t> dest_off;     // traced-path offsets, by dest
  std::vector<std::size_t> dest_cursor;  // scatter cursors
  std::vector<EncodedRef> arena;         // traced-path reference sort

  // --- oversubscription bookkeeping (lazy: first overflowing round) -----
  // Only entries for overflowing destinations are (re)initialized each
  // round; the O(n) cursor tables exist only once a receiver has actually
  // overflowed (or bounced) on this scratch.
  std::vector<Slot> ovf_dests;                  // this round's overflowers
  std::vector<std::uint8_t> ovf_bitmap;         // accept flags by arrival
  std::vector<std::uint32_t> bitmap_off;        // dest -> ovf_bitmap base
  std::vector<const std::uint8_t*> ovf_cursor;  // dest -> next accept flag
  std::vector<std::uint32_t> bounce_base;       // dest -> bounce_refs base
  std::vector<std::uint32_t> bounce_cursor;     // dest -> bounce_refs cursor
  std::unique_ptr<EncodedRef[]> bounce_refs;    // bounced msgs, dest-major
  std::size_t bounce_cap = 0;
  std::vector<std::uint32_t> overflow_idx;      // Fisher-Yates scratch
  std::vector<std::vector<Bounced>> bounced;    // per source slot (lazy)

  /// Materialize the traced-path reference-sort tables; called by the
  /// first deliver() that runs with a Trace attached. Grow-only no-op once
  /// materialized.
  void ensure_trace(std::size_t n);

  /// Materialize the oversubscription cursor tables; called by the first
  /// round that actually overflows a receiver. Grow-only no-op once
  /// materialized.
  void ensure_overflow(std::size_t n);

  /// Size the always-touched tables for an n-node, `threads`-worker
  /// Network. Reused scratch keeps every capacity; dense tables resize
  /// (value-initializing any new tail, which the invariants require to be
  /// zero anyway). The lazy trace/overflow tables are only re-extended if
  /// a previous owner already materialized them.
  void prepare(std::size_t n, unsigned threads);

  /// Restore every between-round invariant and drop per-Network state
  /// (legacy-inbox decode caches, wake lists) so the next owner starts
  /// clean. O(last touched sets); capacities are retained — that is the
  /// point of pooling.
  void sanitize();

  /// Approximate retained heap footprint (capacity-based; for pool
  /// accounting and the shrink tests).
  std::size_t footprint_bytes() const;

  /// Debug-build invariant probe: histograms and dest_count all-zero,
  /// length tables zero outside their lists' scope.
  bool invariants_clean() const;
};

/// A bounded, mutex-guarded pool of RoundScratch bundles. Attach one via
/// Config::arena_pool and every Network constructed with that config
/// borrows its round-transient buffers here instead of allocating fresh —
/// a Runner matrix run or a serve driver reuses one warm bundle across
/// all 5 realization algorithms. Thread-safe; the pool must outlive every
/// Network using it.
class ArenaPool {
 public:
  /// `max_free` bounds how many idle bundles the pool retains; releases
  /// beyond the bound free their scratch immediately, so pool memory is
  /// bounded by max_free x (largest bundle), not by the number of
  /// Networks ever run.
  explicit ArenaPool(std::size_t max_free = 4) : max_free_(max_free) {}
  /// Withdraws this pool's contribution to the process-wide retained-bytes
  /// gauge (obs) along with the idle bundles themselves.
  ~ArenaPool();
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  std::unique_ptr<RoundScratch> acquire();
  void release(std::unique_ptr<RoundScratch> scratch);

  /// Free every idle bundle now (the reclaim knob for long-lived
  /// processes after a huge-n excursion).
  void trim();

  /// Approximate bytes held by idle bundles (capacity accounting).
  std::size_t retained_bytes() const;
  std::size_t free_count() const;

  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served by a pooled bundle
    std::uint64_t dropped = 0;   ///< releases freed because the pool was full
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::size_t max_free_;
  std::vector<std::unique_ptr<RoundScratch>> free_;
  Stats stats_;
  // Bytes this pool has exported to the shared retained-bytes gauge
  // (guarded by mu_); kept so reuse/trim/destruction withdraw exactly what
  // release deposited.
  std::size_t exported_bytes_ = 0;
};

}  // namespace dgr::ncc
