// Per-node ID-knowledge tracking (the KT0/KT1 distinction).
//
// A node may address a message to v only if it knows v's ID. Knowledge grows
// monotonically: initial knowledge, sender IDs of delivered messages, and ID
// words carried in payloads.
#pragma once

#include <cstddef>
#include <unordered_set>

#include "ncc/ids.h"

namespace dgr::ncc {

class Knowledge {
 public:
  /// NCC1: knows every ID; the set is not materialized.
  void set_all() {
    all_ = true;
    set_.clear();
  }

  bool knows_all() const { return all_; }

  bool knows(NodeId id) const {
    return id != kNoNode && (all_ || set_.contains(id));
  }

  void learn(NodeId id) {
    if (!all_ && id != kNoNode) set_.insert(id);
  }

  /// Number of distinct IDs known; n must be supplied for the NCC1 case.
  std::size_t size(std::size_t n) const { return all_ ? n : set_.size(); }

 private:
  bool all_ = false;
  std::unordered_set<NodeId> set_;
};

}  // namespace dgr::ncc
