// Per-node ID-knowledge tracking (the KT0/KT1 distinction).
//
// A node may address a message to v only if it knows v's ID. Knowledge grows
// monotonically: initial knowledge, sender IDs of delivered messages, and ID
// words carried in payloads.
//
// Representation: a dense bitset indexed by the simulator's Slot (the
// Network translates NodeId <-> Slot with its O(1) IdMap), plus an
// incrementally maintained population count. knows/learn are a shift and a
// mask — no hashing on the datapath — and size() is O(1), so the referee's
// max_knowledge()/total_knowledge() accounting is a linear scan of counters
// rather than n hash-set size calls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ncc/ids.h"

namespace dgr::ncc {

class Knowledge {
 public:
  /// Size the bitset for an n-node network; forgets everything known.
  void init(std::size_t n) {
    words_.assign((n + 63) / 64, 0);
    known_ = 0;
    all_ = false;
  }

  /// NCC1: knows every ID; the set is not materialized.
  void set_all() {
    all_ = true;
    known_ = 0;
    words_.clear();
    words_.shrink_to_fit();
  }

  bool knows_all() const { return all_; }

  bool knows_slot(Slot s) const {
    return all_ || ((words_[s >> 6] >> (s & 63)) & 1u) != 0;
  }

  void learn_slot(Slot s) {
    if (all_) return;
    std::uint64_t& w = words_[s >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (s & 63);
    known_ += static_cast<std::size_t>((w & bit) == 0);
    w |= bit;
  }

  /// Number of distinct IDs known; n must be supplied for the NCC1 case.
  std::size_t size(std::size_t n) const { return all_ ? n : known_; }

 private:
  bool all_ = false;
  std::size_t known_ = 0;
  std::vector<std::uint64_t> words_;  // bit s => knows the node in slot s
};

}  // namespace dgr::ncc
