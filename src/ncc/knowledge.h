// Per-node ID-knowledge tracking (the KT0/KT1 distinction).
//
// A node may address a message to v only if it knows v's ID. Knowledge grows
// monotonically: initial knowledge, sender IDs of delivered messages, and ID
// words carried in payloads.
//
// Representation: a sparse-to-dense hybrid keyed by the simulator's Slot
// (the Network translates NodeId <-> Slot with its O(1) IdMap). Most nodes
// in the NCC protocols only ever learn O(log n) IDs (path neighbours, level
// links, skip links, sort partners), so knowledge starts as a small
// open-addressing slot table — 256 bytes per node (kMinCap entries)
// instead of the n/8-byte bitset, which at n = 64Ki kept a 512MB working
// set and made every delivery-time learn a DRAM miss. A node whose table would outgrow the
// bitset is promoted to the dense form (growth is the cold path, out of
// line in knowledge.cpp). The population count is maintained incrementally,
// so size() stays O(1) and the referee's max_knowledge()/total_knowledge()
// accounting is a linear scan of counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ncc/ids.h"

namespace dgr::ncc {

class Knowledge {
 public:
  /// Size for an n-node network; forgets everything known.
  void init(std::size_t n) {
    n_ = n;
    all_ = false;
    dense_ = false;
    known_ = 0;
    hot_id_ = kNoNode;
    hot_slot_ = kNoSlot;
    tab_.assign(initial_cap(n), kEmpty);
    words_.clear();
    words_.shrink_to_fit();
  }

  /// NCC1: knows every ID; the set is not materialized.
  void set_all() {
    all_ = true;
    known_ = 0;
    tab_.clear();
    tab_.shrink_to_fit();
    words_.clear();
    words_.shrink_to_fit();
  }

  bool knows_all() const { return all_; }

  bool knows_slot(Slot s) const {
    if (all_) return true;
    if (dense_) return ((words_[s >> 6] >> (s & 63)) & 1u) != 0;
    const std::size_t mask = tab_.size() - 1;
    std::size_t i = probe_start(s, mask);
    for (;;) {
      const std::uint32_t v = tab_[i];
      if (v == s) return true;
      if (v == kEmpty) return false;
      i = (i + 1) & mask;
    }
  }

  void learn_slot(Slot s) {
    if (all_) return;
    if (dense_) {
      std::uint64_t& w = words_[s >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (s & 63);
      known_ += static_cast<std::size_t>((w & bit) == 0);
      w |= bit;
      return;
    }
    const std::size_t mask = tab_.size() - 1;
    std::size_t i = probe_start(s, mask);
    for (;;) {
      const std::uint32_t v = tab_[i];
      if (v == s) return;
      if (v == kEmpty) break;
      i = (i + 1) & mask;
    }
    tab_[i] = s;
    ++known_;
    // Keep the load factor under 1/2; growth may promote to the bitset.
    if (known_ * 2 >= tab_.size()) grow();
  }

  /// Batched learn over the contiguous ID-slot trailer of one wire record
  /// (the delivery-side learn pass runs dest-major over these). Hoists the
  /// representation dispatch out of the per-slot loop, so the dense form is
  /// a tight load-or-store loop over sequential trailer words — the shape
  /// the compiler can unroll — instead of a branchy call per slot.
  void learn_trailer(const std::uint64_t* slots, std::size_t cnt) {
    if (all_ || cnt == 0) return;
    if (dense_) {
      // Unrolled 4-wide: four independent loads of the trailer words per
      // iteration, with the read-modify-write of the bitset kept in
      // program order (two trailer slots may land in the same bitset
      // word, so the |= chain and the gained count must stay sequential —
      // the unroll buys ILP on the loads and the bit math, not a
      // reassociation).
      std::uint64_t* const words = words_.data();
      std::size_t gained = 0;
      std::size_t i = 0;
      for (; i + 4 <= cnt; i += 4) {
        const auto s0 = static_cast<Slot>(slots[i]);
        const auto s1 = static_cast<Slot>(slots[i + 1]);
        const auto s2 = static_cast<Slot>(slots[i + 2]);
        const auto s3 = static_cast<Slot>(slots[i + 3]);
        const std::uint64_t b0 = std::uint64_t{1} << (s0 & 63);
        const std::uint64_t b1 = std::uint64_t{1} << (s1 & 63);
        const std::uint64_t b2 = std::uint64_t{1} << (s2 & 63);
        const std::uint64_t b3 = std::uint64_t{1} << (s3 & 63);
        std::uint64_t& w0 = words[s0 >> 6];
        gained += static_cast<std::size_t>((w0 & b0) == 0);
        w0 |= b0;
        std::uint64_t& w1 = words[s1 >> 6];
        gained += static_cast<std::size_t>((w1 & b1) == 0);
        w1 |= b1;
        std::uint64_t& w2 = words[s2 >> 6];
        gained += static_cast<std::size_t>((w2 & b2) == 0);
        w2 |= b2;
        std::uint64_t& w3 = words[s3 >> 6];
        gained += static_cast<std::size_t>((w3 & b3) == 0);
        w3 |= b3;
      }
      for (; i < cnt; ++i) {
        const auto s = static_cast<Slot>(slots[i]);
        std::uint64_t& w = words[s >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (s & 63);
        gained += static_cast<std::size_t>((w & bit) == 0);
        w |= bit;
      }
      known_ += gained;
      return;
    }
    // Sparse: learn_slot handles growth, which may promote to the dense
    // form mid-batch — it re-dispatches per call, so that is safe.
    for (std::size_t i = 0; i < cnt; ++i)
      learn_slot(static_cast<Slot>(slots[i]));
  }

  /// Number of distinct IDs known; n must be supplied for the NCC1 case.
  std::size_t size(std::size_t n) const { return all_ ? n : known_; }

  /// One-entry positive cache over an (ID, slot) pair. Knowledge grows
  /// monotonically and IDs are unique, so "this ID was once verified known
  /// / once learned, and it lives in this slot" can never go stale —
  /// callers use it to skip the NodeId -> Slot resolution plus the table
  /// probe for the common case of the same ID being re-verified round
  /// after round (a sort record forwarded through consecutive stages, a
  /// broadcast value re-flooded). Mutable: it is a cache, updated from
  /// const verification paths; each node's knowledge is only ever touched
  /// by the worker that owns the slot (or by the single-threaded delivery
  /// pass), so there is no race.
  bool hot_id_is(NodeId id) const { return id == hot_id_; }
  Slot hot_slot() const { return hot_slot_; }
  void set_hot(NodeId id, Slot s) const {
    hot_id_ = id;
    hot_slot_ = s;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;  // > any valid Slot
  // 64 entries (256B/node) from the start: the overlay-construction
  // protocols teach a node ~2 log n IDs, and starting smaller made the
  // engine spend measurable time rehashing tables mid-simulation.
  static constexpr std::size_t kMinCap = 64;
  // ...except at huge n, where the eager tables dominate setup RSS (256MB
  // before any message moves at n = 10^6). There bootstrap at 16 entries
  // and let the cold grow path carry a node to 64 by its ~8th learned ID:
  // a couple of extra rehashes per node that actually learns, invisible
  // next to the protocol's own work, and transcript-neutral — table
  // geometry is not observable (membership, size, and learn semantics are
  // identical).
  static constexpr std::size_t kMinCapHuge = 16;
  static constexpr std::size_t kHugeN = std::size_t{1} << 18;

  static std::size_t initial_cap(std::size_t n) {
    return n >= kHugeN ? kMinCapHuge : kMinCap;
  }

  static std::size_t probe_start(Slot s, std::size_t mask) {
    return (static_cast<std::uint32_t>(s) * 2654435761u) & mask;
  }

  /// Cold path: double the table, or promote to the dense bitset once the
  /// doubled table would cost at least as much memory.
  void grow();

  bool all_ = false;
  bool dense_ = false;
  std::size_t known_ = 0;
  std::size_t n_ = 0;
  mutable NodeId hot_id_ = kNoNode;   // see hot_id_is()
  mutable Slot hot_slot_ = kNoSlot;
  std::vector<std::uint32_t> tab_;    // sparse: open-addressing slot table
  std::vector<std::uint64_t> words_;  // dense: bit s => knows slot s
};

}  // namespace dgr::ncc
