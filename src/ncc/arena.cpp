#include "ncc/arena.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

// Cold paths of the arena subsystem: table growth, pool bookkeeping, and
// the sanitize/footprint sweeps. Everything per-send or per-record stays
// header-inline (DestHist::at, OutArena::append).

namespace dgr::ncc {

// ------------------------------------------------------------ DestHist ----

void DestHist::grow() {
  const std::size_t next = tab_.empty() ? 64 : tab_.size() * 2;
  std::vector<Ent> old = std::move(tab_);
  tab_.assign(next, Ent{});
  const std::size_t mask = next - 1;
  // Only this epoch's live entries survive the move; stale ones are the
  // whole point of the epoch scheme and are dropped for free here.
  std::size_t moved = 0;
  for (const Ent& e : old) {
    if (e.epoch != epoch_) continue;
    std::size_t i = probe_start(e.key, mask);
    while (tab_[i].epoch == epoch_) i = (i + 1) & mask;
    tab_[i] = e;
    ++moved;
  }
  NCC_INVARIANT(moved == live_,
                "DestHist::grow lost or duplicated a live entry: moved "
                    << moved << " of " << live_
                    << " (an epoch stamp is corrupt, or at() claimed a slot "
                       "without counting it)");
  (void)moved;
}

// ------------------------------------------------------------ OutArena ----

void OutArena::grow(std::size_t need) {
  std::size_t next = cap == 0 ? 256 : cap * 2;
  while (next < len + need) next *= 2;
  auto nb = std::make_unique<std::uint64_t[]>(next);
  std::copy(buf.get(), buf.get() + len, nb.get());
  buf = std::move(nb);
  cap = next;
}

std::size_t OutArena::footprint_bytes() const {
  return cap * sizeof(std::uint64_t) + hist.footprint_bytes() +
         touched.capacity() * sizeof(Slot) + wake.capacity() * sizeof(Slot) +
         legacy_inbox.capacity() * sizeof(Message);
}

// --------------------------------------------------------- RoundScratch ----

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

void RoundScratch::prepare(std::size_t n, unsigned threads) {
  if (outboxes.size() < threads) outboxes.resize(threads);
  if (dest_count.size() < n) {
    // Grow-only: a pooled bundle keeps the high-water size across owners,
    // and the invariants guarantee the retained prefix is already zero.
    dest_count.resize(n, 0);
    inbox_lo.resize(n, 0);
    inbox_len.resize(n, 0);
    inbox_cur.resize(n, 0);
  }
  // The lazy tables stay absent until a round actually needs them; if a
  // previous owner materialized them, keep them coherent with the new n.
  if (!dest_off.empty() && dest_off.size() < n) ensure_trace(n);
  if (!bitmap_off.empty() && bitmap_off.size() < n) ensure_overflow(n);
}

void RoundScratch::ensure_trace(std::size_t n) {
  if (dest_off.size() >= n) return;
  dest_off.resize(n);
  dest_cursor.resize(n);
}

void RoundScratch::ensure_overflow(std::size_t n) {
  if (bitmap_off.size() >= n) return;
  bitmap_off.resize(n);
  ovf_cursor.resize(n);
  bounce_base.resize(n);
  bounce_cursor.resize(n);
  bounced.resize(n);
}

void RoundScratch::sanitize() {
  for (auto& out : outboxes) {
    out.len = 0;
    out.max_send = 0;
    out.hist.advance_epoch();
    out.touched.clear();
    out.wake.clear();
    out.legacy_inbox.clear();
    out.legacy_slot = kNoSlot;
    out.legacy_round = ~std::uint64_t{0};
  }
  // touched_dests covers a round aborted mid-delivery (counts and inbox
  // extents written, tail cleanup never ran); inbox_dests covers the last
  // completed delivery.
  for (const Slot d : touched_dests) {
    dest_count[d] = 0;
    inbox_len[d] = 0;
  }
  touched_dests.clear();
  for (const Slot d : inbox_dests) inbox_len[d] = 0;
  inbox_dests.clear();
  for (const Slot s : bounce_srcs) bounced[s].clear();
  bounce_srcs.clear();
  ovf_dests.clear();
  ovf_bitmap.clear();
  arena.clear();
}

std::size_t RoundScratch::footprint_bytes() const {
  std::size_t b = 0;
  for (const auto& out : outboxes) b += out.footprint_bytes();
  b += vec_bytes(dest_count) + vec_bytes(inbox_lo) + vec_bytes(inbox_len) +
       vec_bytes(inbox_cur);
  b += vec_bytes(touched_dests) + vec_bytes(inbox_dests) +
       vec_bytes(bounce_srcs);
  b += inbox_cap * sizeof(std::uint64_t);
  b += vec_bytes(dest_off) + vec_bytes(dest_cursor) + vec_bytes(arena);
  b += vec_bytes(ovf_dests) + vec_bytes(ovf_bitmap) + vec_bytes(bitmap_off) +
       vec_bytes(ovf_cursor) + vec_bytes(bounce_base) +
       vec_bytes(bounce_cursor) + vec_bytes(overflow_idx);
  b += bounce_cap * sizeof(EncodedRef);
  b += vec_bytes(bounced);
  for (const auto& v : bounced) b += v.capacity() * sizeof(Bounced);
  return b;
}

bool RoundScratch::invariants_clean() const {
  for (const auto& out : outboxes) {
    if (out.len != 0 || !out.touched.empty() || !out.wake.empty()) return false;
    if (!out.hist.all_zero()) return false;
  }
  if (!touched_dests.empty() || !inbox_dests.empty() || !bounce_srcs.empty())
    return false;
  for (const std::uint64_t c : dest_count)
    if (c != 0) return false;
  for (const std::uint32_t l : inbox_len)
    if (l != 0) return false;
  for (const auto& v : bounced)
    if (!v.empty()) return false;
  return true;
}

// ------------------------------------------------------------ ArenaPool ----

namespace {
/// Process-wide pool metrics shared by every ArenaPool instance; the
/// retained-bytes gauge aggregates deposits/withdrawals across pools (each
/// pool withdraws its own exported_bytes_ on trim/destruction). All
/// updates sit on the pool's cold mutex-guarded paths.
struct PoolMetrics {
  obs::Counter& acquires;
  obs::Counter& reuses;
  obs::Counter& dropped;
  obs::Gauge& retained_bytes;

  PoolMetrics()
      : acquires(obs::Registry::instance().counter(
            "dgr_pool_acquires_total", "RoundScratch bundles requested")),
        reuses(obs::Registry::instance().counter(
            "dgr_pool_reuses_total", "Acquires served by a pooled bundle")),
        dropped(obs::Registry::instance().counter(
            "dgr_pool_dropped_total",
            "Releases freed because the pool was full")),
        retained_bytes(obs::Registry::instance().gauge(
            "dgr_pool_retained_bytes",
            "Approximate bytes held by idle pooled bundles")) {}
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* m = new PoolMetrics;  // immortal (late releases)
  return *m;
}
}  // namespace

ArenaPool::~ArenaPool() {
  std::lock_guard<std::mutex> lk(mu_);
  pool_metrics().retained_bytes.sub(static_cast<std::int64_t>(exported_bytes_));
  exported_bytes_ = 0;
}

std::unique_ptr<RoundScratch> ArenaPool::acquire() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.acquires;
    pool_metrics().acquires.add(1);
    if (!free_.empty()) {
      ++stats_.reuses;
      pool_metrics().reuses.add(1);
      auto s = std::move(free_.back());
      free_.pop_back();
      const std::size_t fp = s->footprint_bytes();
      pool_metrics().retained_bytes.sub(static_cast<std::int64_t>(fp));
      exported_bytes_ -= fp;
      return s;
    }
  }
  return std::make_unique<RoundScratch>();
}

void ArenaPool::release(std::unique_ptr<RoundScratch> scratch) {
  if (!scratch) return;
  scratch->sanitize();
  NCC_INVARIANT(scratch->invariants_clean(),
                "RoundScratch released to the pool with dirty between-round "
                "state (sanitize() failed to restore an invariant)");
  std::lock_guard<std::mutex> lk(mu_);
  if (free_.size() < max_free_) {
    const std::size_t fp = scratch->footprint_bytes();
    pool_metrics().retained_bytes.add(static_cast<std::int64_t>(fp));
    exported_bytes_ += fp;
    free_.push_back(std::move(scratch));
  } else {
    ++stats_.dropped;  // scratch frees on scope exit
    pool_metrics().dropped.add(1);
  }
}

void ArenaPool::trim() {
  std::lock_guard<std::mutex> lk(mu_);
  free_.clear();
  pool_metrics().retained_bytes.sub(static_cast<std::int64_t>(exported_bytes_));
  exported_bytes_ = 0;
}

std::size_t ArenaPool::retained_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t b = 0;
  for (const auto& s : free_) b += s->footprint_bytes();
  return b;
}

std::size_t ArenaPool::free_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return free_.size();
}

ArenaPool::Stats ArenaPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace dgr::ncc
