// Core identifier types for the NCC model.
//
// A NodeId is the node's globally-unique address (the paper's "IP address"),
// drawn from [1, n^c]. A Slot is the simulator's dense internal index; it is
// referee-side bookkeeping that protocols must never treat as knowledge.
#pragma once

#include <cstdint>
#include <limits>

namespace dgr::ncc {

using NodeId = std::uint64_t;
/// Sentinel "no node"; valid IDs are >= 1.
inline constexpr NodeId kNoNode = 0;

using Slot = std::uint32_t;
inline constexpr Slot kNoSlot = std::numeric_limits<Slot>::max();

/// Position of a node along a path overlay (0-based).
using Position = std::int64_t;
inline constexpr Position kNoPosition = -1;

}  // namespace dgr::ncc
