#include "ncc/executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace dgr::ncc {

namespace {
/// Hard ceiling on pooled workers — a backstop against a runaway lease
/// width, far above any sane per-client Config::threads. The pool is sized
/// by demand (widest dispatching lease), not by hardware_concurrency():
/// oversubscription is the client's call (and the bench harness warns about
/// it loudly); silently capping here would change worker-count-dependent
/// behavior the old per-Network pool never had.
constexpr unsigned kMaxPoolThreads = 256;

/// Process-wide executor metrics, resolved once and shared by every
/// Executor instance (test-local pools fold into the same aggregates).
/// Updates happen at job/claim granularity — next to a mutex acquire the
/// pool pays anyway — never per task-index. Immortal by design: pooled
/// workers may still fold counters while function-local statics are being
/// destroyed after main().
struct ExecMetrics {
  obs::Counter& jobs;
  obs::Counter& tasks;
  obs::Counter& caller_tasks;
  obs::Gauge& workers;
  obs::Gauge& busy;
  obs::Gauge& clients;
  obs::Histogram& queue_wait_ns;

  ExecMetrics()
      : jobs(obs::Registry::instance().counter(
            "dgr_exec_jobs_total", "Pool-path parallel-for jobs submitted")),
        tasks(obs::Registry::instance().counter(
            "dgr_exec_tasks_total", "Task indices claimed and executed")),
        caller_tasks(obs::Registry::instance().counter(
            "dgr_exec_caller_tasks_total",
            "Task indices executed on the submitting thread")),
        workers(obs::Registry::instance().gauge(
            "dgr_exec_workers", "Pooled worker threads started")),
        busy(obs::Registry::instance().gauge(
            "dgr_exec_busy_workers",
            "Pooled workers currently executing a claimed batch")),
        clients(obs::Registry::instance().gauge(
            "dgr_exec_clients", "Live executor leases")),
        queue_wait_ns(obs::Registry::instance().histogram(
            "dgr_exec_queue_wait_ns",
            "Nanoseconds from job submission to its first claim "
            "(populated only while obs timing is enabled)",
            {1000, 10000, 100000, 1000000, 10000000, 100000000})) {}
};

ExecMetrics& exec_metrics() {
  static ExecMetrics* m = new ExecMetrics;  // immortal, see struct comment
  return *m;
}
}  // namespace

/// One parallel-for in flight. Stack-allocated by run(); the queue holds a
/// raw pointer only while unclaimed tasks remain, and run() does not return
/// until done == count, so the pointer never outlives the frame.
struct Executor::Job {
  void* ctx = nullptr;
  TaskFn fn = nullptr;
  std::size_t count = 0;
  std::size_t chunk = 1;  // indices claimed per queue access
  std::size_t next = 0;   // tasks claimed (guarded by Impl::mu)
  std::size_t done = 0;   // tasks finished (guarded by Impl::mu)
  // Submission timestamp for the queue-wait metric; 0 unless obs timing
  // was enabled at submit. Written before the job is published, read by
  // whichever thread claims the first batch (ordered by Impl::mu).
  std::uint64_t enq_ns = 0;
  std::exception_ptr error;
  std::condition_variable cv_done;
};

struct Executor::Impl {
  mutable std::mutex mu;
  std::condition_variable cv_work;
  std::vector<std::thread> threads;
  std::deque<Job*> queue;  // jobs with unclaimed tasks, FIFO
  bool stop = false;
  unsigned clients = 0;
  std::uint64_t jobs = 0;
  std::uint64_t tasks = 0;
  std::uint64_t caller_tasks = 0;

  /// Pop `job` from the queue once its last task is claimed. The claimer
  /// holding the lock does this, so a fully-claimed job is never visible to
  /// workers.
  void unqueue(Job* job) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (*it == job) {
        queue.erase(it);
        return;
      }
    }
  }

  static void execute(Job* job, std::size_t index, std::mutex& mu) {
    std::exception_ptr err;
    try {
      job->fn(job->ctx, index);
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      std::scoped_lock lk(mu);
      if (!job->error) job->error = err;
    }
  }

  void worker_main() {
    std::unique_lock lk(mu);
    for (;;) {
      cv_work.wait(lk, [&] { return stop || !queue.empty(); });
      if (stop) return;
      Job* job = queue.front();
      const std::size_t lo = job->next;
      const std::size_t hi = std::min(job->count, lo + job->chunk);
      // Claim accounting: a queued job always has unclaimed tasks (the
      // last claimer unqueues it before releasing the lock), so a worker
      // can never claim an empty batch or run an index twice.
      NCC_ASSERT_MSG(lo < hi, "worker claimed an empty batch from a queued "
                              "job (claim accounting corrupted)");
      job->next = hi;
      if (job->next >= job->count) queue.pop_front();
      if (lo == 0 && job->enq_ns != 0)
        exec_metrics().queue_wait_ns.observe(obs::mono_time_ns() -
                                             job->enq_ns);
      exec_metrics().busy.add(1);
      lk.unlock();
      for (std::size_t i = lo; i < hi; ++i) execute(job, i, mu);
      lk.lock();
      exec_metrics().busy.sub(1);
      exec_metrics().tasks.add(hi - lo);
      tasks += hi - lo;
      NCC_ASSERT_MSG(job->done + (hi - lo) <= job->count,
                     "more task completions than tasks (double claim)");
      if ((job->done += hi - lo) == job->count) job->cv_done.notify_all();
    }
  }

  /// Grow the pool to `need` workers (caller holds mu).
  void ensure_workers(unsigned need) {
    if (need > kMaxPoolThreads) need = kMaxPoolThreads;
    while (threads.size() < need) {
      threads.emplace_back([this] { worker_main(); });
      exec_metrics().workers.add(1);
    }
  }
};

Executor::Executor() : impl_(new Impl) {}

Executor::~Executor() {
  {
    std::scoped_lock lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& th : impl_->threads) th.join();
  exec_metrics().workers.sub(static_cast<std::int64_t>(impl_->threads.size()));
  delete impl_;
}

Executor& Executor::instance() {
  // Function-local static: started on first use, joined after main() exits
  // — later than any Network/Service destructor in well-formed programs.
  static Executor exec;
  return exec;
}

Executor::Lease Executor::lease(unsigned width) {
  if (width == 0) width = 1;
  std::scoped_lock lk(impl_->mu);
  ++impl_->clients;
  exec_metrics().clients.add(1);
  return Lease(this, width);
}

void Executor::Lease::release() {
  if (!exec_) return;
  std::scoped_lock lk(exec_->impl_->mu);
  NCC_ASSERT_MSG(exec_->impl_->clients > 0,
                 "lease released with zero registered clients "
                 "(double release, or a lease outlived its executor)");
  --exec_->impl_->clients;
  exec_metrics().clients.sub(1);
  exec_ = nullptr;
}

void Executor::run(const Lease& lease, std::size_t count, void* ctx,
                   TaskFn fn, std::size_t chunk) {
  DGR_CHECK_MSG(lease.exec_ == this,
                "Executor::run with a lease from a different executor");
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  if (count <= chunk) {
    // One claimer would take the whole job anyway; run it inline.
    for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
    return;
  }

  Job job;
  job.ctx = ctx;
  job.fn = fn;
  job.count = count;
  job.chunk = chunk;
  if (obs::Registry::timing_enabled()) job.enq_ns = obs::mono_time_ns();
  exec_metrics().jobs.add(1);
  Impl& im = *impl_;
  {
    std::scoped_lock lk(im.mu);
    // Workers the job can use beyond the caller itself; sized by the
    // lease's width so a narrow client never forces a wide pool. Chunked
    // jobs have count/chunk claimable batches, not count.
    const std::size_t batches = (count + chunk - 1) / chunk;
    const std::size_t want =
        (batches < lease.width_ ? batches : std::size_t{lease.width_}) - 1;
    im.ensure_workers(static_cast<unsigned>(want));
    ++im.jobs;
    im.queue.push_back(&job);
  }
  im.cv_work.notify_all();

  // The caller claims tasks from its OWN job until none remain — guaranteed
  // forward progress even if every pooled worker is busy elsewhere (and the
  // reason nested run() calls cannot deadlock).
  std::unique_lock lk(im.mu);
  while (job.next < job.count) {
    const std::size_t lo = job.next;
    const std::size_t hi = std::min(job.count, lo + job.chunk);
    job.next = hi;
    if (job.next >= job.count) im.unqueue(&job);
    if (lo == 0 && job.enq_ns != 0)
      exec_metrics().queue_wait_ns.observe(obs::mono_time_ns() - job.enq_ns);
    lk.unlock();
    for (std::size_t i = lo; i < hi; ++i) Impl::execute(&job, i, im.mu);
    lk.lock();
    exec_metrics().tasks.add(hi - lo);
    exec_metrics().caller_tasks.add(hi - lo);
    im.tasks += hi - lo;
    im.caller_tasks += hi - lo;
    NCC_ASSERT_MSG(job.done + (hi - lo) <= job.count,
                   "more task completions than tasks (double claim)");
    job.done += hi - lo;
  }
  job.cv_done.wait(lk, [&] { return job.done == job.count; });
  NCC_ASSERT_MSG(job.done == job.count,
                 "job drained with done != count (lost completion)");
  const std::exception_ptr err = job.error;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

Executor::Stats Executor::stats() const {
  std::scoped_lock lk(impl_->mu);
  Stats st;
  st.jobs = impl_->jobs;
  st.tasks = impl_->tasks;
  st.caller_tasks = impl_->caller_tasks;
  st.worker_tasks = impl_->tasks - impl_->caller_tasks;
  st.workers = static_cast<unsigned>(impl_->threads.size());
  st.clients = impl_->clients;
  return st;
}

}  // namespace dgr::ncc
