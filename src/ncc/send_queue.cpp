#include "ncc/send_queue.h"

namespace dgr::ncc {

void SendQueue::pump(Ctx& ctx) {
  if (last_pump_round_ == ctx.round()) return;  // idempotent within a round
  last_pump_round_ = ctx.round();

  // The fate of every message sent last round is now known: bounces are in
  // ctx.bounced(), everything else was delivered. Retries go to the front of
  // the backlog so no message starves.
  for (const auto& b : ctx.bounced()) {
    if (has_filter_ && b.msg.tag != tag_filter_) continue;
    queue_.push_front({b.dst, b.msg});
  }
  in_flight_ = 0;

  while (!queue_.empty() && ctx.sends_left() > 0) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    ctx.send(p.dst, std::move(p.msg));
    ++in_flight_;
  }
}

}  // namespace dgr::ncc
