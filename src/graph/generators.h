// Input-instance generators for tests, benches and examples.
//
// Every degree-sequence generator returns a *graphic* sequence (verified by
// construction or by Erdős–Gallai repair), so experiments separate "is it
// realizable" from "how fast do we realize it". The star-heavy family
// implements the §7 lower-bound instances D*(n, m); the paper's literal
// k = floor(sqrt(m)) makes the family empty (a k-clique has < m edges), so we
// use the smallest k with k(k-1)/2 >= m — the Θ(√m) regime is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/degree_sequence.h"
#include "util/rng.h"

namespace dgr::graph {

/// (d, d, ..., d); requires d <= n-1; if n*d is odd the last entry is d-1
/// (keeps the sequence graphic).
DegreeSequence regular_sequence(std::size_t n, std::uint64_t d);

/// Degree sequence of an Erdős–Rényi G(n, p) sample — graphic by
/// construction, concentrated around p(n-1).
DegreeSequence gnp_sequence(std::size_t n, double p, Rng& rng);

/// Zipf-ish power-law degrees in [1, dmax] with exponent alpha, repaired to
/// a graphic sequence (parity fix + Erdős–Gallai decrement loop).
DegreeSequence powerlaw_sequence(std::size_t n, std::uint64_t dmax,
                                 double alpha, Rng& rng);

/// Half the nodes of degree d_low, half of degree d_high, repaired to
/// graphic.
DegreeSequence bimodal_sequence(std::size_t n, std::uint64_t d_low,
                                std::uint64_t d_high);

/// §7 lower-bound family D*(n, m): roughly m edges concentrated on
/// k = Θ(√m) nodes, zero elsewhere. Graphic by construction.
DegreeSequence star_heavy_sequence(std::size_t n, std::uint64_t m);

/// Random tree-realizable sequence: d_i = 1 + x_i with sum x_i = n - 2
/// (n - 2 balls into n bins). n >= 2.
DegreeSequence random_tree_sequence(std::size_t n, Rng& rng);

/// Repairs an arbitrary sequence into a graphic one: clamps to n-1, fixes
/// parity, then decrements the largest entries until Erdős–Gallai holds.
DegreeSequence make_graphic(DegreeSequence d);

/// Repairs an arbitrary sequence into a tree-realizable one (Harary: all
/// d_i >= 1, sum d_i = 2(n-1)): clamps to [1, n-1], then walks the entries
/// round-robin, shaving >1 entries while the sum is high and topping up
/// <n-1 entries while it is low — the rough shape of the input (which
/// entries are hubs, which are leaves) survives the repair. Deterministic.
/// The scenario harness uses this so one degree family can feed the tree
/// algorithms alongside the general realizations.
DegreeSequence make_tree_realizable(DegreeSequence d);

// ---- Connectivity-threshold (ρ) generators (paper §6) ----

using ThresholdVector = std::vector<std::uint64_t>;

/// Uniform ρ(v) in [1, rmax]; rmax <= n-1.
ThresholdVector uniform_thresholds(std::size_t n, std::uint64_t rmax,
                                   Rng& rng);

/// Three-tier network: n_core nodes at rho_core, n_relay at rho_relay, the
/// rest at rho_edge (core >= relay >= edge >= 1).
ThresholdVector tiered_thresholds(std::size_t n, std::size_t n_core,
                                  std::uint64_t rho_core,
                                  std::size_t n_relay,
                                  std::uint64_t rho_relay,
                                  std::uint64_t rho_edge);

/// Zipf-distributed thresholds in [1, rmax].
ThresholdVector zipf_thresholds(std::size_t n, std::uint64_t rmax,
                                double alpha, Rng& rng);

}  // namespace dgr::graph
