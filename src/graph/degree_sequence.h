// Degree-sequence theory: handshake lemma, the Erdős–Gallai
// characterization (paper §1), and tree realizability (paper §5).
#pragma once

#include <cstdint>
#include <vector>

namespace dgr::graph {

using DegreeSequence = std::vector<std::uint64_t>;

/// Sum of all degrees.
std::uint64_t degree_sum(const DegreeSequence& d);

/// Handshake lemma necessary condition: even degree sum and every
/// d_i <= n - 1.
bool handshake_ok(const DegreeSequence& d);

/// Erdős–Gallai (1960): non-increasing D is graphic iff for all k,
/// sum_{i<=k} d_i <= k(k-1) + sum_{i>k} min(d_i, k). Input may be unsorted;
/// runs in O(n log n).
bool erdos_gallai_graphic(DegreeSequence d);

/// Tree realizability (Harary): n >= 2, every d_i >= 1 and
/// sum d_i = 2(n-1); the n = 1 case requires d = (0).
bool tree_realizable(const DegreeSequence& d);

/// Multiset equality of two degree sequences.
bool same_multiset(DegreeSequence a, DegreeSequence b);

}  // namespace dgr::graph
