#include "graph/tree_metrics.h"

#include <algorithm>

#include "util/check.h"

namespace dgr::graph {

std::uint64_t tree_diameter(const Graph& g) {
  DGR_CHECK_MSG(g.is_tree(), "tree_diameter requires a tree");
  if (g.n() <= 1) return 0;
  auto dist = g.bfs_distances(0);
  const auto far1 = static_cast<Vertex>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
  dist = g.bfs_distances(far1);
  return static_cast<std::uint64_t>(
      *std::max_element(dist.begin(), dist.end()));
}

std::vector<std::uint64_t> eccentricities(const Graph& g) {
  std::vector<std::uint64_t> ecc(g.n(), 0);
  for (Vertex v = 0; v < g.n(); ++v) {
    const auto dist = g.bfs_distances(v);
    std::int64_t best = 0;
    for (const auto d : dist) best = std::max(best, d);
    ecc[v] = static_cast<std::uint64_t>(best);
  }
  return ecc;
}

}  // namespace dgr::graph
