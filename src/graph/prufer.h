// Prüfer-sequence machinery: an independent oracle for the tree experiments.
//
// A Prüfer sequence of length n-2 over [0, n) encodes a labeled tree where
// vertex v appears exactly deg(v) - 1 times. Enumerating all sequences whose
// occurrence counts match a degree sequence enumerates all labeled trees
// realizing it — used to brute-force the minimum possible diameter for small
// n (validates Lemma 15 / Theorem 16).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/degree_sequence.h"
#include "graph/graph.h"

namespace dgr::graph {

/// Decode a Prüfer sequence into its tree (n = seq.size() + 2).
Graph prufer_decode(const std::vector<std::uint32_t>& seq);

/// Minimum diameter over all labeled trees whose vertex degrees are exactly
/// `d` (vertex i has degree d[i]). Exhaustive; practical for n <= ~9.
/// Returns nullopt if `d` is not tree-realizable.
std::optional<std::uint64_t> min_tree_diameter_bruteforce(
    const DegreeSequence& d);

}  // namespace dgr::graph
