#include "graph/prufer.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "graph/tree_metrics.h"
#include "util/check.h"

namespace dgr::graph {

Graph prufer_decode(const std::vector<std::uint32_t>& seq) {
  const std::size_t n = seq.size() + 2;
  Graph g(n);
  std::vector<std::uint32_t> remaining(n, 1);
  for (const auto v : seq) {
    DGR_CHECK(v < n);
    ++remaining[v];
  }
  // Min-heap of current leaves.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      leaves;
  for (std::uint32_t v = 0; v < n; ++v)
    if (remaining[v] == 1) leaves.push(v);
  for (const auto v : seq) {
    const std::uint32_t leaf = leaves.top();
    leaves.pop();
    g.add_edge(leaf, v);
    if (--remaining[v] == 1) leaves.push(v);
  }
  const std::uint32_t a = leaves.top();
  leaves.pop();
  const std::uint32_t b = leaves.top();
  g.add_edge(a, b);
  return g;
}

namespace {

// Enumerate all distinct multiset permutations of `pool` (sorted), calling
// visit on each; prunes by skipping equal elements at the same depth.
void enumerate(std::vector<std::uint32_t>& pool,
               std::vector<std::uint32_t>& current, std::size_t depth,
               const std::function<void(const std::vector<std::uint32_t>&)>&
                   visit) {
  if (depth == current.size()) {
    visit(current);
    return;
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (i > 0 && pool[i] == pool[i - 1]) continue;  // skip duplicates
    const std::uint32_t v = pool[i];
    current[depth] = v;
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
    enumerate(pool, current, depth + 1, visit);
    pool.insert(pool.begin() + static_cast<std::ptrdiff_t>(i), v);
  }
}

}  // namespace

std::optional<std::uint64_t> min_tree_diameter_bruteforce(
    const DegreeSequence& d) {
  if (!tree_realizable(d)) return std::nullopt;
  const std::size_t n = d.size();
  if (n == 1) return 0;
  if (n == 2) return 1;

  // Build the Prüfer multiset: vertex v appears d[v] - 1 times.
  std::vector<std::uint32_t> pool;
  for (std::uint32_t v = 0; v < n; ++v)
    for (std::uint64_t k = 1; k < d[v]; ++k) pool.push_back(v);
  DGR_CHECK(pool.size() == n - 2);
  std::sort(pool.begin(), pool.end());

  std::uint64_t best = ~std::uint64_t{0};
  std::vector<std::uint32_t> current(n - 2);
  enumerate(pool, current, 0,
            [&](const std::vector<std::uint32_t>& seq) {
              const Graph t = prufer_decode(seq);
              best = std::min(best, tree_diameter(t));
            });
  return best;
}

}  // namespace dgr::graph
