// Tree diameter / eccentricity utilities for the §5 experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dgr::graph {

/// Exact diameter of a tree via double BFS. Requires g.is_tree().
std::uint64_t tree_diameter(const Graph& g);

/// Eccentricity of every vertex (max BFS distance). O(n^2); for trees and
/// small graphs in tests/examples.
std::vector<std::uint64_t> eccentricities(const Graph& g);

}  // namespace dgr::graph
