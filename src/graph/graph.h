// Simple undirected graph used referee-side to verify realizations.
//
// Vertices are dense indices 0..n-1 (simulator slots). The structure keeps
// an edge list plus adjacency; parallel edges and self-loops are rejected at
// insertion unless explicitly allowed (realizations must be simple graphs).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace dgr::graph {

using Vertex = std::uint32_t;

class Graph {
 public:
  explicit Graph(std::size_t n = 0) : adj_(n) {}

  std::size_t n() const { return adj_.size(); }
  std::size_t m() const { return edges_.size(); }

  /// Adds edge {u, v}; returns false (and does nothing) if it is a self-loop
  /// or already present.
  bool add_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;

  const std::vector<Vertex>& neighbors(Vertex v) const { return adj_[v]; }
  const std::vector<std::pair<Vertex, Vertex>>& edges() const { return edges_; }

  std::size_t degree(Vertex v) const { return adj_[v].size(); }

  /// Degree of every vertex, in vertex order.
  std::vector<std::uint64_t> degree_sequence() const;

  /// True if the graph is connected (n = 0 or 1 counts as connected).
  bool connected() const;

  /// True if connected and m == n - 1.
  bool is_tree() const;

  /// BFS distances from src; unreachable = -1.
  std::vector<std::int64_t> bfs_distances(Vertex src) const;

 private:
  static std::uint64_t key(Vertex u, Vertex v) {
    const Vertex lo = u < v ? u : v;
    const Vertex hi = u < v ? v : u;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  std::vector<std::vector<Vertex>> adj_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
  // Membership-only (insert/contains; iteration order never observed —
  // edges_ carries insertion order for traversal). det-ok: unordered_set
  std::unordered_set<std::uint64_t> edge_set_;
};

}  // namespace dgr::graph
