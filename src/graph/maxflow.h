// Dinic's max-flow on unit-capacity undirected graphs, used to verify
// edge-connectivity thresholds (Menger: edge connectivity = max number of
// edge-disjoint paths = s-t max flow with unit capacities).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dgr::graph {

/// Max-flow solver bound to one graph; reusable across (s, t) queries.
class EdgeConnectivity {
 public:
  explicit EdgeConnectivity(const Graph& g);

  /// Edge connectivity between s and t (number of edge-disjoint s-t paths).
  std::uint64_t query(Vertex s, Vertex t);

 private:
  struct Arc {
    Vertex to;
    std::int32_t cap;
    std::size_t rev;  // index of the reverse arc in arcs_[to]
  };

  bool bfs(Vertex s, Vertex t);
  std::int64_t dfs(Vertex v, Vertex t, std::int64_t pushed);
  void reset_caps();

  std::size_t n_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::int32_t> level_;
  std::vector<std::size_t> iter_;
};

/// Convenience one-shot query.
std::uint64_t edge_connectivity(const Graph& g, Vertex s, Vertex t);

}  // namespace dgr::graph
