#include "graph/maxflow.h"

#include <algorithm>
#include <queue>

namespace dgr::graph {

EdgeConnectivity::EdgeConnectivity(const Graph& g) : n_(g.n()), arcs_(g.n()) {
  for (const auto& [u, v] : g.edges()) {
    // Undirected unit edge = antiparallel unit arcs.
    const std::size_t iu = arcs_[u].size();
    const std::size_t iv = arcs_[v].size();
    arcs_[u].push_back({v, 1, iv});
    arcs_[v].push_back({u, 1, iu});
  }
  level_.resize(n_);
  iter_.resize(n_);
}

void EdgeConnectivity::reset_caps() {
  for (auto& list : arcs_)
    for (auto& a : list) a.cap = 1;
}

bool EdgeConnectivity::bfs(Vertex s, Vertex t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<Vertex> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (const auto& a : arcs_[v]) {
      if (a.cap > 0 && level_[a.to] < 0) {
        level_[a.to] = level_[v] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t EdgeConnectivity::dfs(Vertex v, Vertex t, std::int64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < arcs_[v].size(); ++i) {
    Arc& a = arcs_[v][i];
    if (a.cap > 0 && level_[a.to] == level_[v] + 1) {
      const std::int64_t got =
          dfs(a.to, t, std::min<std::int64_t>(pushed, a.cap));
      if (got > 0) {
        a.cap -= static_cast<std::int32_t>(got);
        arcs_[a.to][a.rev].cap += static_cast<std::int32_t>(got);
        return got;
      }
    }
  }
  return 0;
}

std::uint64_t EdgeConnectivity::query(Vertex s, Vertex t) {
  if (s == t) return 0;
  reset_caps();
  std::uint64_t flow = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), std::size_t{0});
    while (std::int64_t pushed = dfs(s, t, 1 << 30)) {
      flow += static_cast<std::uint64_t>(pushed);
    }
  }
  return flow;
}

std::uint64_t edge_connectivity(const Graph& g, Vertex s, Vertex t) {
  EdgeConnectivity solver(g);
  return solver.query(s, t);
}

}  // namespace dgr::graph
