#include "graph/degree_sequence.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace dgr::graph {

std::uint64_t degree_sum(const DegreeSequence& d) {
  return std::accumulate(d.begin(), d.end(), std::uint64_t{0});
}

bool handshake_ok(const DegreeSequence& d) {
  const std::uint64_t n = d.size();
  if (degree_sum(d) % 2 != 0) return false;
  return std::all_of(d.begin(), d.end(),
                     [n](std::uint64_t di) { return di + 1 <= n; });
}

bool erdos_gallai_graphic(DegreeSequence d) {
  if (!handshake_ok(d)) return false;
  std::sort(d.begin(), d.end(), std::greater<>());
  const std::size_t n = d.size();

  // Prefix sums of the sorted sequence.
  std::vector<std::uint64_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + d[i];

  // For the right-hand side, observe that min(d_i, k) = k for the (sorted)
  // head where d_i >= k; binary search for that boundary.
  for (std::size_t k = 1; k <= n; ++k) {
    const std::uint64_t lhs = prefix[k];
    // First index (0-based) with d_i < k, searching in [k, n).
    const auto it =
        std::partition_point(d.begin() + static_cast<std::ptrdiff_t>(k),
                             d.end(),
                             [k](std::uint64_t di) { return di >= k; });
    const auto geq =
        static_cast<std::uint64_t>(it - d.begin() -
                                   static_cast<std::ptrdiff_t>(k));
    const std::uint64_t tail_sum =
        prefix[n] - prefix[k + geq];  // entries with d_i < k
    const std::uint64_t rhs =
        static_cast<std::uint64_t>(k) * (k - 1) + geq * k + tail_sum;
    if (lhs > rhs) return false;
  }
  return true;
}

bool tree_realizable(const DegreeSequence& d) {
  const std::size_t n = d.size();
  if (n == 0) return false;
  if (n == 1) return d[0] == 0;
  if (std::any_of(d.begin(), d.end(),
                  [](std::uint64_t di) { return di == 0; }))
    return false;
  return degree_sum(d) == 2 * (static_cast<std::uint64_t>(n) - 1);
}

bool same_multiset(DegreeSequence a, DegreeSequence b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace dgr::graph
