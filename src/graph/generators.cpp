#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/check.h"
#include "util/math_util.h"

namespace dgr::graph {

DegreeSequence regular_sequence(std::size_t n, std::uint64_t d) {
  DGR_CHECK_MSG(n == 0 || d + 1 <= n, "regular degree must be <= n-1");
  DegreeSequence seq(n, d);
  if (n > 0 && (n * d) % 2 != 0 && d > 0) seq.back() = d - 1;
  return seq;
}

DegreeSequence gnp_sequence(std::size_t n, double p, Rng& rng) {
  // Sample only the degrees, not the full edge set: deg(v) pairs are not
  // independent, so we materialize edges sparsely via geometric skipping.
  DegreeSequence d(n, 0);
  if (p <= 0.0 || n < 2) return d;
  p = std::min(p, 1.0);
  const double log1mp = std::log1p(-std::min(p, 0.999999999999));
  // Iterate over the upper-triangle edge slots with geometric jumps.
  const std::uint64_t slots =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t pos = 0;
  while (pos < slots) {
    std::uint64_t skip = 0;
    if (p < 1.0) {
      const double r = std::max(rng.uniform(), 1e-300);
      skip = static_cast<std::uint64_t>(std::floor(std::log(r) / log1mp));
    }
    pos += skip;
    if (pos >= slots) break;
    // Decode slot index -> (u, v), u < v.
    // Row u occupies slots [u*n - u*(u+1)/2, ...) of length n-1-u.
    std::uint64_t u = 0;
    std::uint64_t acc = 0;
    // Binary search on row.
    std::uint64_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const std::uint64_t mid = (lo + hi) / 2;
      const std::uint64_t before = mid * n - mid * (mid + 1) / 2;
      if (before <= pos)
        lo = mid + 1;
      else
        hi = mid;
    }
    u = lo - 1;
    acc = u * n - u * (u + 1) / 2;
    const std::uint64_t v = u + 1 + (pos - acc);
    ++d[u];
    ++d[v];
    ++pos;
  }
  return d;
}

DegreeSequence make_graphic(DegreeSequence d) {
  const std::size_t n = d.size();
  if (n == 0) return d;
  const std::uint64_t cap = n - 1;
  for (auto& di : d) di = std::min(di, cap);

  auto fix_parity = [&] {
    if (degree_sum(d) % 2 == 0) return;
    // Decrement some positive entry (largest, to also help Erdős–Gallai).
    auto it = std::max_element(d.begin(), d.end());
    DGR_CHECK_MSG(*it > 0, "cannot fix parity of all-zero sequence");
    --*it;
  };
  fix_parity();

  while (!erdos_gallai_graphic(d)) {
    // Shave the two largest positive entries by one each (keeps parity).
    auto first = std::max_element(d.begin(), d.end());
    DGR_CHECK(*first > 0);
    --*first;
    auto second = std::max_element(d.begin(), d.end());
    if (*second > 0) {
      --*second;
    } else {
      fix_parity();
    }
  }
  return d;
}

DegreeSequence make_tree_realizable(DegreeSequence d) {
  const std::size_t n = d.size();
  if (n == 0) return d;
  if (n == 1) {
    d[0] = 0;
    return d;
  }
  const std::uint64_t cap = n - 1;
  for (auto& di : d) di = std::clamp<std::uint64_t>(di, 1, cap);
  const std::uint64_t want = 2 * (static_cast<std::uint64_t>(n) - 1);
  std::uint64_t sum = degree_sum(d);
  // After the clamp, n <= sum <= n(n-1) brackets want = 2n-2, so each
  // round-robin pass below makes progress and the loops terminate.
  while (sum > want) {
    for (std::size_t i = 0; i < n && sum > want; ++i) {
      if (d[i] > 1) {
        --d[i];
        --sum;
      }
    }
  }
  while (sum < want) {
    for (std::size_t i = 0; i < n && sum < want; ++i) {
      if (d[i] < cap) {
        ++d[i];
        ++sum;
      }
    }
  }
  return d;
}

DegreeSequence powerlaw_sequence(std::size_t n, std::uint64_t dmax,
                                 double alpha, Rng& rng) {
  DGR_CHECK(n >= 2 && dmax >= 1);
  dmax = std::min<std::uint64_t>(dmax, n - 1);
  // Inverse-CDF sampling of a truncated Pareto: d = floor(dmax * u^{-1/ (alpha-1)})
  // style tail; clamp into [1, dmax].
  DegreeSequence d(n);
  for (auto& di : d) {
    const double u = std::max(rng.uniform(), 1e-12);
    const double val = std::pow(u, -1.0 / std::max(alpha - 1.0, 0.1));
    di = std::min<std::uint64_t>(
        dmax, std::max<std::uint64_t>(1, static_cast<std::uint64_t>(val)));
  }
  return make_graphic(std::move(d));
}

DegreeSequence bimodal_sequence(std::size_t n, std::uint64_t d_low,
                                std::uint64_t d_high) {
  DegreeSequence d(n, d_low);
  for (std::size_t i = 0; i < n / 2; ++i) d[i] = d_high;
  return make_graphic(std::move(d));
}

DegreeSequence star_heavy_sequence(std::size_t n, std::uint64_t m) {
  DGR_CHECK(n >= 2);
  // Smallest k with k(k-1)/2 >= m, capped at n.
  std::uint64_t k = 2;
  while (k * (k - 1) / 2 < m && k < n) ++k;
  const std::uint64_t usable = std::min<std::uint64_t>(m, k * (k - 1) / 2);
  // Spread 2*usable degree units over the first k nodes as evenly as
  // possible; parity holds since the total is even.
  DegreeSequence d(n, 0);
  const std::uint64_t total = 2 * usable;
  const std::uint64_t base = total / k;
  std::uint64_t extra = total % k;
  for (std::uint64_t i = 0; i < k; ++i) {
    d[i] = base + (i < extra ? 1 : 0);
    d[i] = std::min<std::uint64_t>(d[i], k - 1);
  }
  // The even spread over a k-clique capacity is graphic; repair guards the
  // clamped corner cases.
  return make_graphic(std::move(d));
}

DegreeSequence random_tree_sequence(std::size_t n, Rng& rng) {
  DGR_CHECK(n >= 2);
  DegreeSequence d(n, 1);
  for (std::size_t b = 0; b + 2 < n; ++b) ++d[rng.below(n)];
  DGR_CHECK(tree_realizable(d));
  return d;
}

ThresholdVector uniform_thresholds(std::size_t n, std::uint64_t rmax,
                                   Rng& rng) {
  DGR_CHECK(n >= 2 && rmax >= 1 && rmax <= n - 1);
  ThresholdVector rho(n);
  for (auto& r : rho) r = 1 + rng.below(rmax);
  return rho;
}

ThresholdVector tiered_thresholds(std::size_t n, std::size_t n_core,
                                  std::uint64_t rho_core,
                                  std::size_t n_relay,
                                  std::uint64_t rho_relay,
                                  std::uint64_t rho_edge) {
  DGR_CHECK(n_core + n_relay <= n);
  DGR_CHECK(rho_core >= rho_relay && rho_relay >= rho_edge && rho_edge >= 1);
  DGR_CHECK(rho_core <= n - 1);
  ThresholdVector rho(n, rho_edge);
  for (std::size_t i = 0; i < n_core; ++i) rho[i] = rho_core;
  for (std::size_t i = n_core; i < n_core + n_relay; ++i) rho[i] = rho_relay;
  return rho;
}

ThresholdVector zipf_thresholds(std::size_t n, std::uint64_t rmax,
                                double alpha, Rng& rng) {
  DGR_CHECK(n >= 2 && rmax >= 1 && rmax <= n - 1);
  ThresholdVector rho(n);
  for (auto& r : rho) {
    const double u = std::max(rng.uniform(), 1e-12);
    const double val = std::pow(u, -1.0 / std::max(alpha - 1.0, 0.1));
    r = std::min<std::uint64_t>(rmax,
                                std::max<std::uint64_t>(
                                    1, static_cast<std::uint64_t>(val)));
  }
  return rho;
}

}  // namespace dgr::graph
