#include "graph/graph.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace dgr::graph {

bool Graph::add_edge(Vertex u, Vertex v) {
  DGR_CHECK(u < n() && v < n());
  if (u == v) return false;
  if (!edge_set_.insert(key(u, v)).second) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  return true;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u == v) return false;
  return edge_set_.contains(key(u, v));
}

std::vector<std::uint64_t> Graph::degree_sequence() const {
  std::vector<std::uint64_t> d(n());
  for (std::size_t v = 0; v < n(); ++v) d[v] = adj_[v].size();
  return d;
}

bool Graph::connected() const {
  if (n() <= 1) return true;
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int64_t d) { return d < 0; });
}

bool Graph::is_tree() const { return connected() && m() + 1 == n(); }

std::vector<std::int64_t> Graph::bfs_distances(Vertex src) const {
  std::vector<std::int64_t> dist(n(), -1);
  std::queue<Vertex> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    for (Vertex w : adj_[u]) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

}  // namespace dgr::graph
