// bench_scale: the committed million-node trajectory.
//
// A plain-main driver (no Google Benchmark — one iteration per point is
// the measurement) that runs each of the five realization algorithms at a
// sweep of n up to 10^6+, records wall time, engine transcript counters
// and the peak RSS of the run window, validates every output with the
// referee checks, and emits a JSON report (committed as BENCH_scale.json).
//
// Instances are chosen so traffic is O(n) at every size — the regime the
// O(traffic)-memory datapath is built for:
//   approx        4-uniform request, NCC1 local-pick envelope
//   implicit      4-regular exact realization, NCC0
//   explicit      4-regular + full explicitization, NCC0
//   tree          path degree sequence (max-diameter caterpillar), NCC0
//   connectivity  rho = 2 everywhere, NCC1 hub construction
//
// Budget flags make the same binary the CI scale-smoke gate:
//   --rss-budget-mb M    any completed entry whose peak RSS exceeds M MiB
//                        fails the process (exit 1) after the JSON is out
//   --time-budget-s S    once an algorithm's run exceeds S seconds, its
//                        larger sizes are emitted as {"status":"skipped"}
//                        entries with the reason, instead of silently
//                        missing from the sweep
//   --pool on|off        share one ArenaPool across every run (default on;
//                        off re-allocates per Network, for A/B)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ncc/arena.h"
#include "ncc/config.h"
#include "ncc/network.h"
#include "occupancy.h"
#include "realization/approx_degree.h"
#include "realization/connectivity.h"
#include "realization/explicit_degree.h"
#include "realization/implicit_degree.h"
#include "realization/tree_realization.h"
#include "realization/validate.h"
#include "rss.h"
#include "util/check.h"

namespace {

using dgr::bench::peak_rss_bytes;
using dgr::bench::reset_peak_rss;

struct Options {
  std::vector<std::size_t> sizes{4096, 16384, 65536, 262144, 1048576};
  std::vector<std::string> algos{"approx", "implicit", "explicit", "tree",
                                 "connectivity"};
  std::string json_path;  // empty = stdout
  std::uint64_t seed = 1;
  unsigned threads = 1;
  bool pool = true;
  double rss_budget_mb = 0;  // 0 = off
  double time_budget_s = 0;  // 0 = off
};

struct Entry {
  std::string algo;
  std::size_t n = 0;
  std::string status;  // "ok", "failed", or "skipped"
  std::string reason;  // skip/fail cause ("" when ok)
  double wall_s = 0;
  std::size_t peak_rss = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  bool validated = false;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--n LIST] [--algos LIST] [--json FILE] [--seed S]\n"
      "          [--threads T] [--pool on|off] [--rss-budget-mb M]\n"
      "          [--time-budget-s S]\n"
      "  --n       comma-separated sizes (default "
      "4096,16384,65536,262144,1048576)\n"
      "  --algos   subset of approx,implicit,explicit,tree,connectivity\n"
      "  --json    output file (default stdout)\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_and_exit(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--n") {
      opt.sizes.clear();
      for (const auto& tok : split_csv(need(i)))
        opt.sizes.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    } else if (a == "--algos") {
      opt.algos = split_csv(need(i));
    } else if (a == "--json") {
      opt.json_path = need(i);
    } else if (a == "--seed") {
      opt.seed = std::strtoull(need(i), nullptr, 10);
    } else if (a == "--threads") {
      opt.threads = static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--pool") {
      opt.pool = std::string(need(i)) != "off";
    } else if (a == "--rss-budget-mb") {
      opt.rss_budget_mb = std::strtod(need(i), nullptr);
    } else if (a == "--time-budget-s") {
      opt.time_budget_s = std::strtod(need(i), nullptr);
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.sizes.empty() || opt.algos.empty()) usage_and_exit(argv[0]);
  std::sort(opt.sizes.begin(), opt.sizes.end());
  return opt;
}

dgr::ncc::Network make_net(std::size_t n, const Options& opt, bool clique,
                           dgr::ncc::ArenaPool* pool) {
  dgr::ncc::Config cfg;
  cfg.seed = opt.seed;
  cfg.threads = opt.threads;
  if (clique) cfg.initial = dgr::ncc::InitialKnowledge::kClique;
  cfg.arena_pool = pool;
  return dgr::ncc::Network(n, cfg);
}

/// One measured point: construct, realize, validate. Throws CheckError up
/// to the caller (recorded as a failed entry, never a crash).
Entry run_point(const std::string& algo, std::size_t n, const Options& opt,
                dgr::ncc::ArenaPool* pool) {
  namespace realize = dgr::realize;
  Entry e;
  e.algo = algo;
  e.n = n;
  e.status = "ok";

  reset_peak_rss();
  const auto t0 = std::chrono::steady_clock::now();

  realize::Validation v = realize::Validation::fail("unknown algorithm");
  std::uint64_t rounds = 0, messages = 0;
  if (algo == "approx") {
    const std::vector<std::uint64_t> deg(n, 4);
    auto net = make_net(n, opt, /*clique=*/true, pool);
    const auto r = realize::realize_upper_envelope_ncc1(net, deg);
    DGR_CHECK_MSG(r.realizable, "approx reported unrealizable");
    rounds = net.stats().rounds;
    messages = net.stats().messages_sent;
    v = realize::validate_upper_envelope(net, deg, r.stored);
  } else if (algo == "implicit" || algo == "explicit") {
    const std::vector<std::uint64_t> deg(n, 4);
    auto net = make_net(n, opt, /*clique=*/false, pool);
    auto r = realize::realize_degrees_implicit(net, deg,
                                               realize::DegreeMode::kExact);
    DGR_CHECK_MSG(r.realizable, "4-regular reported unrealizable");
    if (algo == "explicit") {
      const auto x = realize::make_explicit(net, r);
      rounds = net.stats().rounds;
      messages = net.stats().messages_sent;
      v = realize::validate_explicit_adjacency(net, r.stored, x.adjacency);
    } else {
      rounds = net.stats().rounds;
      messages = net.stats().messages_sent;
      v = realize::validate_degree_realization(net, deg, r.stored);
    }
  } else if (algo == "tree") {
    // Path degrees: the extreme caterpillar, sum = 2(n-1).
    std::vector<std::uint64_t> deg(n, 2);
    deg[0] = deg[n - 1] = 1;
    auto net = make_net(n, opt, /*clique=*/false, pool);
    const auto r = realize::realize_tree_caterpillar(net, deg);
    DGR_CHECK_MSG(r.realizable, "tree degrees reported unrealizable");
    rounds = net.stats().rounds;
    messages = net.stats().messages_sent;
    v = realize::validate_tree_realization(net, deg, r.stored);
  } else if (algo == "connectivity") {
    const std::vector<std::uint64_t> rho(n, 2);
    auto net = make_net(n, opt, /*clique=*/true, pool);
    const auto r = realize::realize_connectivity_ncc1(net, rho);
    DGR_CHECK_MSG(r.realizable, "connectivity reported unrealizable");
    rounds = net.stats().rounds;
    messages = net.stats().messages_sent;
    v = realize::validate_connectivity_thresholds(net, rho, r.stored,
                                                  opt.seed);
  } else {
    DGR_CHECK_MSG(false, "unknown algorithm '" << algo << "'");
  }

  const auto t1 = std::chrono::steady_clock::now();
  e.wall_s = std::chrono::duration<double>(t1 - t0).count();
  e.peak_rss = peak_rss_bytes();
  e.rounds = rounds;
  e.messages = messages;
  e.validated = v.ok;
  if (!v.ok) {
    e.status = "failed";
    e.reason = v.message;
  }
  return e;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void emit(std::FILE* f, const Options& opt, const std::vector<Entry>& entries,
          const dgr::ncc::ArenaPool::Stats& ps) {
  std::fprintf(f,
               "{\n  \"generated_by\": \"bench_scale\",\n"
               "  \"seed\": %llu,\n  \"threads\": %u,\n"
               "  \"sparse_rounds\": true,\n  \"pool\": %s,\n"
               "  \"pool_stats\": {\"acquires\": %llu, \"reuses\": %llu, "
               "\"dropped\": %llu},\n  \"entries\": [\n",
               static_cast<unsigned long long>(opt.seed), opt.threads,
               opt.pool ? "true" : "false",
               static_cast<unsigned long long>(ps.acquires),
               static_cast<unsigned long long>(ps.reuses),
               static_cast<unsigned long long>(ps.dropped));
  // Occupancy guard: every entry records the machine's cores and whether
  // this run's thread demand oversubscribed them, so a committed baseline
  // from a degraded run is self-describing.
  const unsigned cores = dgr::bench::hardware_cores();
  const bool over = cores != 0 && opt.threads > cores;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"algo\": \"%s\", \"n\": %zu, \"cores\": %u, "
                 "\"oversubscribed\": %d, \"status\": \"%s\"",
                 e.algo.c_str(), e.n, cores, over ? 1 : 0, e.status.c_str());
    if (e.status == "skipped") {
      std::fprintf(f, ", \"reason\": \"%s\"}", json_escape(e.reason).c_str());
    } else {
      std::fprintf(f,
                   ", \"wall_s\": %.3f, \"peak_rss_bytes\": %zu, "
                   "\"rounds\": %llu, \"messages\": %llu, "
                   "\"validated\": %s",
                   e.wall_s, e.peak_rss,
                   static_cast<unsigned long long>(e.rounds),
                   static_cast<unsigned long long>(e.messages),
                   e.validated ? "true" : "false");
      if (!e.reason.empty())
        std::fprintf(f, ", \"reason\": \"%s\"", json_escape(e.reason).c_str());
      std::fputc('}', f);
    }
    std::fprintf(f, "%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  dgr::ncc::ArenaPool pool(/*max_free=*/2);
  dgr::ncc::ArenaPool* pool_ptr = opt.pool ? &pool : nullptr;

  std::vector<Entry> entries;
  bool budget_breached = false;
  bool any_failed = false;

  for (const std::string& algo : opt.algos) {
    // Sizes run ascending per algorithm so a budget stop at one n can
    // skip the rest of that algorithm's sweep with an explanation.
    std::string skip_reason;
    for (const std::size_t n : opt.sizes) {
      if (!skip_reason.empty()) {
        Entry e;
        e.algo = algo;
        e.n = n;
        e.status = "skipped";
        e.reason = skip_reason;
        entries.push_back(std::move(e));
        continue;
      }
      Entry e;
      const std::string label =
          "bench_scale " + algo + " n=" + std::to_string(n);
      dgr::bench::warn_if_oversubscribed(opt.threads, label.c_str());
      try {
        e = run_point(algo, n, opt, pool_ptr);
      } catch (const dgr::CheckError& ex) {
        e.algo = algo;
        e.n = n;
        e.status = "failed";
        e.reason = ex.what();
      }
      std::fprintf(stderr,
                   "bench_scale: %-12s n=%-8zu %-7s wall=%.3fs "
                   "peak_rss=%.1fMiB rounds=%llu validated=%d\n",
                   e.algo.c_str(), e.n, e.status.c_str(), e.wall_s,
                   static_cast<double>(e.peak_rss) / (1024.0 * 1024.0),
                   static_cast<unsigned long long>(e.rounds),
                   e.validated ? 1 : 0);
      if (e.status == "failed" || !e.validated) any_failed = true;
      if (opt.rss_budget_mb > 0 && e.status == "ok" &&
          static_cast<double>(e.peak_rss) >
              opt.rss_budget_mb * 1024.0 * 1024.0) {
        budget_breached = true;
        skip_reason = "rss budget: n=" + std::to_string(n) + " peaked at " +
                      std::to_string(e.peak_rss / (1024 * 1024)) +
                      " MiB > budget";
      }
      if (opt.time_budget_s > 0 && e.status == "ok" &&
          e.wall_s > opt.time_budget_s) {
        skip_reason = "time budget: n=" + std::to_string(n) + " took " +
                      std::to_string(e.wall_s) + " s > budget";
      }
      entries.push_back(std::move(e));
    }
  }

  std::FILE* out = stdout;
  if (!opt.json_path.empty()) {
    out = std::fopen(opt.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_scale: cannot open %s\n",
                   opt.json_path.c_str());
      return 2;
    }
  }
  emit(out, opt, entries, pool.stats());
  if (out != stdout) std::fclose(out);

  if (any_failed) return 1;
  if (budget_breached) {
    std::fprintf(stderr, "bench_scale: RSS budget (%.0f MiB) breached\n",
                 opt.rss_budget_mb);
    return 1;
  }
  return 0;
}
