// Experiment E13: substrate performance (wall-clock, not rounds) — the
// sequential baselines and the simulator itself.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "seq/greedy_tree.h"
#include "seq/havel_hakimi.h"
#include "util/rng.h"

namespace dgr {
namespace {

void E13_SequentialHavelHakimi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = graph::regular_sequence(n, 16);
  for (auto _ : state) {
    auto g = seq::hh_realize(d);
    benchmark::DoNotOptimize(g->m());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(E13_SequentialHavelHakimi)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity();

void E13_SequentialGreedyTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto d = graph::random_tree_sequence(n, rng);
  for (auto _ : state) {
    auto t = seq::greedy_tree(d);
    benchmark::DoNotOptimize(t->m());
  }
}
BENCHMARK(E13_SequentialGreedyTree)->RangeMultiplier(4)->Range(1024, 65536);

void E13_DinicEdgeConnectivity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto d = graph::regular_sequence(n, 8);
  const auto g = seq::hh_realize(d);
  graph::EdgeConnectivity solver(*g);
  std::uint64_t q = 0;
  for (auto _ : state) {
    const auto s = static_cast<graph::Vertex>(q % n);
    const auto t = static_cast<graph::Vertex>((q * 7 + 1) % n);
    if (s != t) benchmark::DoNotOptimize(solver.query(s, t));
    ++q;
  }
}
BENCHMARK(E13_DinicEdgeConnectivity)->RangeMultiplier(4)->Range(256, 4096);

void E13_SimulatorRoundThroughput(benchmark::State& state) {
  // Cost of an idle-ish synchronous round (each node pings its successor).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto net = bench::make_net(n, 3);
  for (auto _ : state) {
    net.round([](ncc::Ctx& ctx) {
      const auto s = ctx.initial_successor();
      if (s != ncc::kNoNode) ctx.send(s, ncc::make_msg(1));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(E13_SimulatorRoundThroughput)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
