// Raw round-engine throughput (no algorithm work): how many rounds and
// messages per second the NCC simulator core sustains.
//
// Unlike the algorithm benchmarks (which report paper-bound ratios), these
// measure pure simulator overhead — Ctx::send checks, ID->slot resolution,
// knowledge updates, and the gather/deliver pipeline — under three synthetic
// workloads:
//
//   Flood     — every node sends its full capacity() budget to uniformly
//               random targets each round. Maximum datapath pressure; a few
//               destinations oversubscribe, so the bounce path runs too.
//   FloodScan — Flood plus a receive-side scan: every node walks its inbox
//               through the zero-copy InboxView and folds tag + word 0.
//               Measures the end-to-end receive path (lazy wire-record
//               decode in place, no Message materialization).
//   Sparse    — every node sends exactly one message per round. Dominated
//               by per-round fixed costs (body dispatch, buffer resets).
//   Overflow  — every node aims half its budget at 8 hot destinations, so
//               almost everything bounces. Stresses the oversubscription
//               (random-subset selection) path and bounced() bookkeeping.
//
// The all-dense workloads also exercise the engine's dense-round fast path
// (send-side histogram upkeep bypassed, sequential header re-stream in
// deliver) from round 2 on — the density prediction needs one round of
// history.
//
// Counters: "messages/s" (engine-accepted sends per wall second, the headline
// number), "rounds/s", and "msgs/round". Sweeps n in {256..16384} and
// threads in {1, 4, 8}. See EXPERIMENTS.md for how these feed
// BENCH_engine.json and the perf-trajectory workflow.
#include <cstdint>

#include "bench_common.h"
#include "ncc/message.h"
#include "obs/net_metrics.h"

namespace dgr::bench {
namespace {

ncc::Config engine_cfg(unsigned threads) {
  ncc::Config cfg;
  cfg.seed = 42;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  // The throughput loop runs as many rounds as wall-time allows; the
  // livelock guard must not trip.
  cfg.max_rounds = ~std::size_t{0};
  return cfg;
}

void report_throughput(benchmark::State& state, const ncc::Network& net,
                       std::uint64_t rounds0, std::uint64_t msgs0) {
  // Thread demand is arg 1 in every engine sweep; flag oversubscribed runs.
  report_thread_occupancy(state, static_cast<unsigned>(state.range(1)));
  const auto rounds = static_cast<double>(net.stats().rounds - rounds0);
  const auto msgs = static_cast<double>(net.stats().messages_sent - msgs0);
  state.counters["rounds/s"] =
      benchmark::Counter(rounds, benchmark::Counter::kIsRate);
  state.counters["messages/s"] =
      benchmark::Counter(msgs, benchmark::Counter::kIsRate);
  state.counters["msgs/round"] = benchmark::Counter(
      rounds > 0 ? msgs / rounds : 0, benchmark::Counter::kAvgThreads);
}

void BM_EngineFlood(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ncc::Network net(n, engine_cfg(static_cast<unsigned>(state.range(1))));
  const auto cap = static_cast<std::size_t>(net.capacity());
  // Fixed uniform-random target lists, drawn outside the timed region so the
  // measurement is engine datapath, not benchmark-side RNG.
  std::vector<ncc::NodeId> targets(n * cap);
  {
    Rng tr(99);
    for (auto& t : targets) t = net.id_of(static_cast<ncc::Slot>(tr.below(n)));
  }
  const std::uint64_t rounds0 = net.stats().rounds;
  const std::uint64_t msgs0 = net.stats().messages_sent;
  for (auto _ : state) {
    net.round([&](ncc::Ctx& ctx) {
      const ncc::NodeId* t = targets.data() + ctx.slot() * cap;
      for (std::size_t i = 0; i < cap; ++i) {
        ctx.send(t[i], ncc::make_msg(7).push(static_cast<std::uint64_t>(i)));
      }
    });
  }
  report_throughput(state, net, rounds0, msgs0);
}

// Flood with the observability plane attached — an obs::NetMetrics sink on
// the dedicated metrics slot folding every round into a registry (registry
// timing gate off, as in production scraping). The A/B partner of
// BM_EngineFlood for the attached-cost claim: the pair interleaves in
// registration order, and the attached run's cost over the detached one is
// the whole per-round price of live metrics (sink virtual call + a dozen
// sharded adds + EWMA arithmetic). Detached cost is pinned separately: with
// no sink attached BM_EngineFlood itself must stay within noise of the
// pre-observability baseline (EXPERIMENTS.md records the A/B).
void BM_EngineFloodObs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ncc::Network net(n, engine_cfg(static_cast<unsigned>(state.range(1))));
  obs::Registry reg;  // private registry: keep bench reps independent
  obs::NetMetrics metrics(reg);
  net.set_metrics(&metrics);
  const auto cap = static_cast<std::size_t>(net.capacity());
  std::vector<ncc::NodeId> targets(n * cap);
  {
    Rng tr(99);
    for (auto& t : targets) t = net.id_of(static_cast<ncc::Slot>(tr.below(n)));
  }
  const std::uint64_t rounds0 = net.stats().rounds;
  const std::uint64_t msgs0 = net.stats().messages_sent;
  for (auto _ : state) {
    net.round([&](ncc::Ctx& ctx) {
      const ncc::NodeId* t = targets.data() + ctx.slot() * cap;
      for (std::size_t i = 0; i < cap; ++i) {
        ctx.send(t[i], ncc::make_msg(7).push(static_cast<std::uint64_t>(i)));
      }
    });
  }
  net.set_metrics(nullptr);
  report_throughput(state, net, rounds0, msgs0);
  state.counters["ewma_msgs/round"] = benchmark::Counter(
      static_cast<double>(metrics.delivered_per_round_ewma_x1000()) / 1000.0);
}

// Flood with per-phase round timing enabled (Network::set_phase_timing):
// the A/B partner of BM_EngineFlood for the detached-cost claim. With
// timing OFF the engine takes no timestamps at all — the pair interleaves
// in registration order, and at threads=1 the detached run must stay
// within noise (≤1%) of this timed run minus the clock reads. Also the
// per-phase counters land in --benchmark_out JSON ("body_s", "sort_s",
// ...), so the engine's phase split is visible from the GB harness too.
void BM_EngineFloodTimed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ncc::Network net(n, engine_cfg(static_cast<unsigned>(state.range(1))));
  net.set_phase_timing(true);
  const auto cap = static_cast<std::size_t>(net.capacity());
  std::vector<ncc::NodeId> targets(n * cap);
  {
    Rng tr(99);
    for (auto& t : targets) t = net.id_of(static_cast<ncc::Slot>(tr.below(n)));
  }
  const std::uint64_t rounds0 = net.stats().rounds;
  const std::uint64_t msgs0 = net.stats().messages_sent;
  for (auto _ : state) {
    net.round([&](ncc::Ctx& ctx) {
      const ncc::NodeId* t = targets.data() + ctx.slot() * cap;
      for (std::size_t i = 0; i < cap; ++i) {
        ctx.send(t[i], ncc::make_msg(7).push(static_cast<std::uint64_t>(i)));
      }
    });
  }
  report_throughput(state, net, rounds0, msgs0);
  const auto& ph = net.stats().phase_ns;
  constexpr double kNs = 1e-9;
  state.counters["body_s"] =
      benchmark::Counter(static_cast<double>(ph.body) * kNs);
  state.counters["sort_s"] =
      benchmark::Counter(static_cast<double>(ph.sort) * kNs);
  state.counters["rng_s"] =
      benchmark::Counter(static_cast<double>(ph.rng) * kNs);
  state.counters["placement_s"] =
      benchmark::Counter(static_cast<double>(ph.placement) * kNs);
  state.counters["learn_s"] =
      benchmark::Counter(static_cast<double>(ph.learn) * kNs);
}

// Flood via the wire-level one-word fast path (Ctx::send1): identical
// traffic and transcript to BM_EngineFlood, but no 48-byte Message
// aggregate is built per send. The pair is the A/B for the fast path —
// see "One-word send fast path" in EXPERIMENTS.md.
void BM_EngineFlood1Word(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ncc::Network net(n, engine_cfg(static_cast<unsigned>(state.range(1))));
  const auto cap = static_cast<std::size_t>(net.capacity());
  std::vector<ncc::NodeId> targets(n * cap);
  {
    Rng tr(99);
    for (auto& t : targets) t = net.id_of(static_cast<ncc::Slot>(tr.below(n)));
  }
  const std::uint64_t rounds0 = net.stats().rounds;
  const std::uint64_t msgs0 = net.stats().messages_sent;
  for (auto _ : state) {
    net.round([&](ncc::Ctx& ctx) {
      const ncc::NodeId* t = targets.data() + ctx.slot() * cap;
      for (std::size_t i = 0; i < cap; ++i) {
        ctx.send1(t[i], 7, static_cast<std::uint64_t>(i));
      }
    });
  }
  report_throughput(state, net, rounds0, msgs0);
}

void BM_EngineFloodScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ncc::Network net(n, engine_cfg(static_cast<unsigned>(state.range(1))));
  const auto cap = static_cast<std::size_t>(net.capacity());
  std::vector<ncc::NodeId> targets(n * cap);
  {
    Rng tr(99);
    for (auto& t : targets) t = net.id_of(static_cast<ncc::Slot>(tr.below(n)));
  }
  std::vector<std::uint64_t> sink(n, 0);
  const std::uint64_t rounds0 = net.stats().rounds;
  const std::uint64_t msgs0 = net.stats().messages_sent;
  for (auto _ : state) {
    net.round([&](ncc::Ctx& ctx) {
      std::uint64_t acc = 0;
      for (const auto m : ctx.inbox_view()) acc += m.tag() + m.word(0);
      sink[ctx.slot()] += acc;
      const ncc::NodeId* t = targets.data() + ctx.slot() * cap;
      for (std::size_t i = 0; i < cap; ++i) {
        ctx.send(t[i], ncc::make_msg(7).push(static_cast<std::uint64_t>(i)));
      }
    });
  }
  benchmark::DoNotOptimize(sink.data());
  report_throughput(state, net, rounds0, msgs0);
}

void BM_EngineSparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ncc::Network net(n, engine_cfg(static_cast<unsigned>(state.range(1))));
  const std::uint64_t rounds0 = net.stats().rounds;
  const std::uint64_t msgs0 = net.stats().messages_sent;
  for (auto _ : state) {
    net.round([](ncc::Ctx& ctx) {
      const auto ids = ctx.all_ids();
      ctx.send(ids[ctx.rng().below(ids.size())], ncc::make_msg(7).push(1));
    });
  }
  report_throughput(state, net, rounds0, msgs0);
}

void BM_EngineOverflow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ncc::Network net(n, engine_cfg(static_cast<unsigned>(state.range(1))));
  const auto half = static_cast<std::size_t>(net.capacity()) / 2;
  constexpr std::size_t kHot = 8;
  std::vector<ncc::NodeId> targets(n * half);
  {
    Rng tr(7);
    for (auto& t : targets)
      t = net.id_of(static_cast<ncc::Slot>(tr.below(kHot)));
  }
  const std::uint64_t rounds0 = net.stats().rounds;
  const std::uint64_t msgs0 = net.stats().messages_sent;
  for (auto _ : state) {
    net.round([&](ncc::Ctx& ctx) {
      const ncc::NodeId* t = targets.data() + ctx.slot() * half;
      for (std::size_t i = 0; i < half; ++i) {
        ctx.send(t[i], ncc::make_msg(9).push(static_cast<std::uint64_t>(i)));
      }
    });
  }
  report_throughput(state, net, rounds0, msgs0);
}

void EngineArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {256, 1024, 4096, 16384}) {
    for (std::int64_t threads : {1, 4, 8}) {
      b->Args({n, threads});
    }
  }
  b->ArgNames({"n", "threads"});
}

BENCHMARK(BM_EngineFlood)->Apply(EngineArgs)->UseRealTime();
BENCHMARK(BM_EngineFloodObs)->Apply(EngineArgs)->UseRealTime();
BENCHMARK(BM_EngineFloodTimed)->Apply(EngineArgs)->UseRealTime();
BENCHMARK(BM_EngineFlood1Word)->Apply(EngineArgs)->UseRealTime();
BENCHMARK(BM_EngineFloodScan)->Apply(EngineArgs)->UseRealTime();
BENCHMARK(BM_EngineSparse)->Apply(EngineArgs)->UseRealTime();
BENCHMARK(BM_EngineOverflow)->Apply(EngineArgs)->UseRealTime();

}  // namespace
}  // namespace dgr::bench

BENCHMARK_MAIN();
