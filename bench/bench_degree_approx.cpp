// Experiment E7: Theorem 13 — upper-envelope realization of non-graphic
// sequences. Reports the achieved discrepancy ratio sum(D')/sum(D) (bound:
// 2) and the round cost relative to O~(Δ).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "graph/degree_sequence.h"
#include "realization/approx_degree.h"
#include "realization/validate.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

void E7_RandomNonGraphic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(70);
  graph::DegreeSequence d(n);
  for (auto& x : d) x = rng.below(n);  // overwhelmingly non-graphic
  const std::uint64_t requested = graph::degree_sum(d);
  const std::uint64_t max_d = *std::max_element(d.begin(), d.end());

  double rounds = 0;
  double realized_sum = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 71);
    const auto result = realize::realize_upper_envelope(net, d);
    if (!result.realizable) state.SkipWithError("infeasible degree");
    rounds += static_cast<double>(result.implicit_rounds +
                                  result.explicit_rounds);
    std::uint64_t total = 0;
    for (const auto& adj : result.adjacency) total += adj.size();
    realized_sum += static_cast<double>(total);
  }
  const double lg = ceil_log2(n);
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           static_cast<double>(max_d) * lg * lg);
  state.counters["discrepancy_ratio"] = benchmark::Counter(
      realized_sum / (static_cast<double>(requested) *
                      static_cast<double>(state.iterations())),
      benchmark::Counter::kDefaults);
  state.counters["discrepancy_bound"] = 2.0;
}
BENCHMARK(E7_RandomNonGraphic)->RangeMultiplier(2)->Range(128, 512)->Iterations(2);

void E7_OddSumNearGraphic(benchmark::State& state) {
  // Barely non-graphic: a graphic sequence with one degree bumped.
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::DegreeSequence d(n, 4);
  d[0] = 5;  // odd sum — not graphic
  double realized_sum = 0;
  double rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 72);
    const auto result = realize::realize_upper_envelope(net, d);
    rounds += static_cast<double>(result.implicit_rounds +
                                  result.explicit_rounds);
    std::uint64_t total = 0;
    for (const auto& adj : result.adjacency) total += adj.size();
    realized_sum += static_cast<double>(total);
  }
  state.counters["discrepancy_ratio"] =
      realized_sum / (static_cast<double>(graph::degree_sum(d)) *
                      static_cast<double>(state.iterations()));
  state.counters["discrepancy_bound"] = 2.0;
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) * 4 *
                           ceil_log2(n) * ceil_log2(n));
}
BENCHMARK(E7_OddSumNearGraphic)->RangeMultiplier(4)->Range(128, 2048)
    ->Iterations(2);

void E7_Ncc1ZeroRoundEnvelope(benchmark::State& state) {
  // The abstract's O~(1) approximate realization (NCC1): literally zero
  // communication rounds after local computation, for any feasible input.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(73);
  graph::DegreeSequence d(n);
  for (auto& x : d) x = rng.below(n);
  double rounds = 0;
  double realized_sum = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 74, /*clique=*/true);
    const auto result = realize::realize_upper_envelope_ncc1(net, d);
    if (!result.realizable) state.SkipWithError("infeasible degree");
    rounds += static_cast<double>(result.rounds);
    const auto g = realize::graph_from_stored(net, result.stored);
    realized_sum += static_cast<double>(2 * g.m());
  }
  state.counters["rounds"] = benchmark::Counter(
      rounds, benchmark::Counter::kAvgIterations);
  state.counters["discrepancy_ratio"] =
      realized_sum / (static_cast<double>(graph::degree_sum(d)) *
                      static_cast<double>(state.iterations()));
  state.counters["discrepancy_bound"] = 2.0;
}
BENCHMARK(E7_Ncc1ZeroRoundEnvelope)->RangeMultiplier(4)->Range(256, 16384)
    ->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
