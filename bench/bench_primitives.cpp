// Experiments E1–E3: the §3 primitives.
//   E1 (Thm 1 / Cor 2): BBST construction + positions in O(log n) rounds.
//   E2 (Thm 3): distributed sorting in polylog rounds (ours: O(log^2 n)).
//   E3 (Thms 4, 5): broadcast/aggregation O(log n); collection O(k+log n).
//
// Timing discipline: every benchmark uses manual timing scoped to the
// primitive under test. The fixtures (network construction, undirecting Gk,
// the BBST/skip-link overlays a primitive runs on) execute inside the
// iteration but outside the clock — E3's aggregation wave is ~20ms of work
// behind ~350ms of tree-building fixture at n = 64Ki, and wall-clocking the
// fixture would drown the subject. Committed baseline: BENCH_primitives.json
// (see EXPERIMENTS.md for before/after history and methodology).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "primitives/bbst.h"
#include "primitives/broadcast.h"
#include "primitives/collection.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void E1_BbstConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double rounds = 0;
  int height = 0;
  bench::reset_peak_rss();
  for (auto _ : state) {
    auto net = bench::make_net(n, 42);
    prim::PathOverlay path = prim::undirect_initial_path(net);
    const std::uint64_t before = net.stats().rounds;
    const auto t0 = Clock::now();
    const prim::TreeOverlay tree = prim::build_bbst(net, path);
    state.SetIterationTime(seconds_since(t0));
    rounds += static_cast<double>(net.stats().rounds - before);
    height = tree.height;
  }
  bench::report_rounds(state, rounds, static_cast<double>(state.iterations()) *
                                          ceil_log2(n));
  bench::report_peak_rss(state);
  state.counters["height"] = static_cast<double>(height);
  state.counters["height_bound"] = static_cast<double>(ceil_log2(n) + 1);
}
BENCHMARK(E1_BbstConstruction)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 20)
    ->Iterations(2)
    ->UseManualTime();

void E2_DistributedSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double rounds = 0;
  bench::reset_peak_rss();
  for (auto _ : state) {
    auto net = bench::make_net(n, 43);
    prim::PathOverlay path = prim::undirect_initial_path(net);
    prim::build_bbst(net, path);
    const prim::SkipOverlay skip = prim::build_skiplinks(net, path);
    Rng rng(7);
    std::vector<std::uint64_t> key(n);
    for (auto& k : key) k = rng.below(n);
    const std::uint64_t before = net.stats().rounds;
    const auto t0 = Clock::now();
    const auto sorted = prim::distributed_sort(net, path, skip, key, true);
    state.SetIterationTime(seconds_since(t0));
    benchmark::DoNotOptimize(sorted.path.order.data());
    rounds += static_cast<double>(net.stats().rounds - before);
  }
  const double lg = ceil_log2(n);
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) * lg * lg);
  bench::report_peak_rss(state);
}
BENCHMARK(E2_DistributedSort)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 20)
    ->Iterations(2)
    ->UseManualTime();

// Shared by the sparse (production) and dense-reference variants below, so
// the two stay the exact same workload and only the scheduling mode can
// differ between them.
void run_e3_aggregate(benchmark::State& state, bool sparse_rounds) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double rounds = 0;
  bench::reset_peak_rss();
  for (auto _ : state) {
    auto net = bench::make_net(n, 44, /*clique=*/false, sparse_rounds);
    prim::PathOverlay path = prim::undirect_initial_path(net);
    const prim::TreeOverlay tree = prim::build_bbst(net, path);
    std::vector<std::uint64_t> v(n, 1);
    const std::uint64_t before = net.stats().rounds;
    const auto t0 = Clock::now();
    const std::uint64_t total =
        prim::aggregate_and_broadcast(net, tree, v, prim::comb_sum);
    state.SetIterationTime(seconds_since(t0));
    benchmark::DoNotOptimize(total);
    rounds += static_cast<double>(net.stats().rounds - before);
  }
  bench::report_rounds(state, rounds, static_cast<double>(state.iterations()) *
                                          ceil_log2(n));
  bench::report_peak_rss(state);
}

void E3_AggregateAndBroadcast(benchmark::State& state) {
  run_e3_aggregate(state, /*sparse_rounds=*/true);
}
BENCHMARK(E3_AggregateAndBroadcast)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 20)
    ->Iterations(2)
    ->UseManualTime();

// The same aggregation wave under the dense reference dispatch
// (Config::sparse_rounds = false): round_active runs every slot, which is
// the transcript-equivalence reference mode for the ActiveSetEquivalence
// suite. Benchmarked (and CI-smoked) so the dense reference path cannot
// silently rot while all production primitives drive sparse scheduling.
void E3_AggregateAndBroadcastDense(benchmark::State& state) {
  run_e3_aggregate(state, /*sparse_rounds=*/false);
}
BENCHMARK(E3_AggregateAndBroadcastDense)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Iterations(2)
    ->UseManualTime();

void E3_GlobalCollection(benchmark::State& state) {
  const std::size_t n = 4096;
  const auto k = static_cast<std::size_t>(state.range(0));
  double rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 45);
    prim::PathOverlay path = prim::undirect_initial_path(net);
    const prim::TreeOverlay tree = prim::build_bbst(net, path);
    std::vector<std::uint8_t> has(n, 0);
    std::vector<std::uint64_t> token(n, 0);
    for (std::size_t i = 0; i < k; ++i) {
      has[i] = 1;
      token[i] = i;
    }
    const ncc::Slot leader = path.order.back();
    bench::reset_peak_rss();
    const std::uint64_t before = net.stats().rounds;
    const auto t0 = Clock::now();
    auto collected = prim::global_collect(net, tree, leader, has, token);
    state.SetIterationTime(seconds_since(t0));
    benchmark::DoNotOptimize(collected.data());
    rounds += static_cast<double>(net.stats().rounds - before);
  }
  // Theorem 5 budget: O(k + log n); ours drains at capacity/round.
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           (static_cast<double>(k) + ceil_log2(n)));
  bench::report_peak_rss(state);
}
BENCHMARK(E3_GlobalCollection)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Iterations(2)
    ->UseManualTime();

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
