// Experiments E10, E11: §6 connectivity-threshold realization.
//   E10 (Thm 17): NCC1 implicit in O~(1) rounds (flat in n up to log).
//   E11 (Thm 18): NCC0 explicit in O~(Δ) rounds; both ≤ 2·OPT edges.
// Edge ratios are verified against the ceil(Σρ/2) lower bound; threshold
// satisfaction is spot-checked by max-flow on the smaller instances.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/generators.h"
#include "realization/connectivity.h"
#include "realization/validate.h"
#include "seq/connectivity_baseline.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

void E10_Ncc1Implicit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(90);
  const auto rho = graph::uniform_thresholds(
      n, std::min<std::uint64_t>(n - 1, 16), rng);
  double rounds = 0;
  double edges = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 91, /*clique=*/true);
    const auto result = realize::realize_connectivity_ncc1(net, rho);
    if (!result.realizable) state.SkipWithError("infeasible rho");
    rounds += static_cast<double>(result.rounds);
    edges = static_cast<double>(
        realize::graph_from_stored(net, result.stored).m());
  }
  bench::report_rounds(state, rounds, static_cast<double>(state.iterations()) *
                                          ceil_log2(n));
  state.counters["edges"] = edges;
  state.counters["edge_ratio_vs_opt_lb"] =
      edges / static_cast<double>(seq::connectivity_edge_lower_bound(rho));
}
BENCHMARK(E10_Ncc1Implicit)->RangeMultiplier(4)->Range(256, 16384)->Iterations(2);

void E11_Ncc0Explicit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rmax = static_cast<std::uint64_t>(state.range(1));
  Rng rng(92);
  const auto rho = graph::uniform_thresholds(
      n, std::min<std::uint64_t>(n - 1, rmax), rng);
  double rounds = 0;
  double edges = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 93);
    const auto result = realize::realize_connectivity_ncc0(net, rho);
    if (!result.realizable) state.SkipWithError("infeasible rho");
    rounds += static_cast<double>(result.rounds);
    edges = static_cast<double>(
        realize::graph_from_stored(net, result.stored).m());
  }
  const double lg = ceil_log2(n);
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           static_cast<double>(rmax) * lg);
  state.counters["edges"] = edges;
  state.counters["edge_ratio_vs_opt_lb"] =
      edges / static_cast<double>(seq::connectivity_edge_lower_bound(rho));
  state.counters["delta"] = static_cast<double>(rmax);
}
BENCHMARK(E11_Ncc0Explicit)
    ->ArgsProduct({{512, 2048}, {4, 16, 64, 128}})->Iterations(2);

void E11_TieredBackbone(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rho = graph::tiered_thresholds(n, n / 32 + 1, 24, n / 8, 8, 2);
  double rounds = 0;
  double edges = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 94);
    const auto result = realize::realize_connectivity_ncc0(net, rho);
    if (!result.realizable) state.SkipWithError("infeasible rho");
    rounds += static_cast<double>(result.rounds);
    edges = static_cast<double>(
        realize::graph_from_stored(net, result.stored).m());
  }
  bench::report_rounds(state, rounds, static_cast<double>(state.iterations()) *
                                          24 * ceil_log2(n));
  state.counters["edge_ratio_vs_opt_lb"] =
      edges / static_cast<double>(seq::connectivity_edge_lower_bound(rho));
}
BENCHMARK(E11_TieredBackbone)->RangeMultiplier(4)->Range(512, 4096)->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
