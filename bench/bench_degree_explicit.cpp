// Experiment E6: Theorem 12 — explicit realization in
// O(m/n + Δ/log n + log n) rounds. Sweeps Δ at fixed n (rounds should grow
// linearly in Δ/log n) and n at fixed Δ (rounds should stay flat-ish).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/generators.h"
#include "realization/explicit_degree.h"
#include "util/math_util.h"

namespace dgr {
namespace {

void run_explicit(benchmark::State& state, std::size_t n, std::uint64_t deg) {
  const auto d = graph::regular_sequence(n, deg);
  double conv_rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 60 + deg);
    const auto result = realize::realize_degrees_explicit(net, d);
    if (!result.realizable) state.SkipWithError("not graphic");
    conv_rounds += static_cast<double>(result.explicit_rounds);
  }
  const double cap = bench::capacity_of(n);
  const double m_over_n = static_cast<double>(deg) / 2.0;
  const double bound =
      m_over_n / cap + static_cast<double>(deg) / cap + ceil_log2(n) + 1;
  bench::report_rounds(state, conv_rounds,
                       static_cast<double>(state.iterations()) * bound);
  state.counters["delta"] = static_cast<double>(deg);
}

void E6_DeltaSweep(benchmark::State& state) {
  run_explicit(state, 1024, static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(E6_DeltaSweep)->RangeMultiplier(2)->Range(4, 256)->Iterations(2);

void E6_NSweepFixedDelta(benchmark::State& state) {
  run_explicit(state, static_cast<std::size_t>(state.range(0)), 32);
}
BENCHMARK(E6_NSweepFixedDelta)->RangeMultiplier(4)->Range(512, 4096)->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
