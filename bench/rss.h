// Peak-RSS probing for the bench harness (Linux).
//
// ru_maxrss is a process-lifetime high-water mark, so a naive read after a
// benchmark reports the peak of EVERYTHING that ran before it. Linux lets
// us re-arm the mark by writing "5" to /proc/self/clear_refs; each probe
// window is then reset_peak_rss() -> run -> peak_rss_bytes(). When the
// reset file is unavailable (non-Linux, locked-down container) the reset
// is a no-op and readings degrade to the monotone high-water mark — still
// an upper bound, never an undercount.
#pragma once

#include <cstddef>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace dgr::bench {

/// Current peak resident set size in bytes (0 where unsupported).
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Re-arm the peak-RSS high-water mark to the current RSS. Returns true if
/// the kernel accepted the reset (Linux with clear_refs support).
inline bool reset_peak_rss() {
#if defined(__GLIBC__)
  // Hand freed heap back to the kernel first: without this the new "peak"
  // floor is whatever the allocator retained from earlier runs in the same
  // process, and small-n measurements inherit a big-n floor.
  malloc_trim(0);
#endif
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  std::fclose(f);
  return ok;
#else
  return false;
#endif
}

}  // namespace dgr::bench
