#!/usr/bin/env sh
# Regenerate the engine-throughput baseline committed at the repo root.
#
#   bench/export_bench_json.sh [build-dir] [min-time-seconds]
#
# Runs the raw round-engine benchmarks (bench_engine) with JSON output and
# writes BENCH_engine.json next to this repo's README. Future PRs that touch
# the engine datapath should re-run this on comparable hardware and eyeball
# the messages/s counters against the committed baseline — see EXPERIMENTS.md
# for how to read the file. CI runs the same binary with a tiny min-time as a
# smoke test and uploads its JSON as an artifact.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
min_time=${2:-0.1}

bench_bin="$build_dir/bench/bench_engine"
if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Configure and build first:  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

out="$repo_root/BENCH_engine.json"
"$bench_bin" \
  --benchmark_format=json \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  > /dev/null

echo "wrote $out"
