#!/usr/bin/env sh
# Regenerate the perf baselines committed at the repo root.
#
#   bench/export_bench_json.sh [build-dir] [min-time-seconds]
#
# Runs the raw round-engine benchmarks (bench_engine), the §3-primitives
# benchmarks (bench_primitives), the serving-stack benchmarks
# (bench_serve), the million-node scale trajectory (bench_scale), and the
# thread-scaling sweep (bench_scaling) with JSON output and writes
# BENCH_engine.json / BENCH_primitives.json / BENCH_serve.json /
# BENCH_scale.json / BENCH_scaling.json next to this repo's README. Every
# entry carries "cores" and "oversubscribed" fields — a baseline produced
# on a machine with fewer cores than the requested thread count is flagged,
# not silently wrong.
# Future PRs that touch the engine datapath or the primitives should re-run
# this on comparable hardware and eyeball the messages/s (engine) and
# real_time (primitives) counters against the committed baselines — see
# EXPERIMENTS.md for how to read the files. CI runs the same binaries with a
# tiny min-time as a smoke test and uploads their JSON as artifacts.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
min_time=${2:-0.1}

run_bench() {
  bench_bin="$build_dir/bench/$1"
  out="$repo_root/$2"
  if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Configure and build first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
  "$bench_bin" \
    --benchmark_format=json \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    > /dev/null
  echo "wrote $out"
}

run_bench bench_engine BENCH_engine.json
run_bench bench_primitives BENCH_primitives.json
run_bench bench_serve BENCH_serve.json

# bench_scale is a plain-main driver (not Google Benchmark): one run per
# (algorithm, n) point up to 10^6 nodes, threads=1, sparse scheduler.
scale_bin="$build_dir/bench/bench_scale"
if [ ! -x "$scale_bin" ]; then
  echo "error: $scale_bin not found or not executable." >&2
  exit 1
fi
"$scale_bin" --json "$repo_root/BENCH_scale.json"
echo "wrote $repo_root/BENCH_scale.json"

# bench_scaling is also plain-main: threads x {flood,sparse,overflow} x n
# with per-phase round times, speedup, and parallel efficiency. --check
# keeps the export honest (per-phase fields populated + transcript
# determinism across thread counts).
scaling_bin="$build_dir/bench/bench_scaling"
if [ ! -x "$scaling_bin" ]; then
  echo "error: $scaling_bin not found or not executable." >&2
  exit 1
fi
"$scaling_bin" --check --json "$repo_root/BENCH_scaling.json"
echo "wrote $repo_root/BENCH_scaling.json"
