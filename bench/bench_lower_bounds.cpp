// Experiment E12: §7 lower bounds (Theorems 19, 20) — tightness up to logs.
//
// For each instance family we run the matching upper-bound algorithm and
// report three numbers:
//   rounds       — measured round count of our algorithm,
//   certificate  — the information lower bound the finished run itself
//                  certifies (max IDs learned / per-round intake),
//   theory       — the closed-form Ω(·) bound for the family.
// Tightness (Thm 19/20) shows as rounds/theory staying polylog.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "realization/explicit_degree.h"
#include "realization/implicit_degree.h"
#include "realization/lower_bounds.h"
#include "util/math_util.h"

namespace dgr {
namespace {

void E12_SqrtM_StarHeavyImplicit(benchmark::State& state) {
  const std::size_t n = 4096;
  const auto m = static_cast<std::uint64_t>(state.range(0));
  const auto d = graph::star_heavy_sequence(n, m);
  double rounds = 0;
  double certificate = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 95);
    const auto result = realize::realize_degrees_implicit(net, d);
    if (!result.realizable) state.SkipWithError("not graphic");
    rounds += static_cast<double>(result.rounds);
    certificate = static_cast<double>(
        realize::knowledge_round_lower_bound(net));
  }
  const double theory = static_cast<double>(realize::sqrt_m_info_bound(
      m, static_cast<int>(bench::capacity_of(n))));
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           std::max(theory, 1.0));
  state.counters["certificate"] = certificate;
  state.counters["theory_sqrt_m"] = theory;
}
BENCHMARK(E12_SqrtM_StarHeavyImplicit)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)->Iterations(2);

void E12_Delta_RegularImplicit(benchmark::State& state) {
  // Theorem 20's second family: Δ-regular sequences need Ω(Δ) rounds.
  const std::size_t n = 2048;
  const auto deg = static_cast<std::uint64_t>(state.range(0));
  const auto d = graph::regular_sequence(n, deg);
  double rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 96);
    const auto result = realize::realize_degrees_implicit(net, d);
    if (!result.realizable) state.SkipWithError("not graphic");
    rounds += static_cast<double>(result.rounds);
  }
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           static_cast<double>(deg));
  state.counters["theory_delta"] = static_cast<double>(deg);
}
BENCHMARK(E12_Delta_RegularImplicit)->RangeMultiplier(2)->Range(8, 128)->Iterations(2);

void E12_Delta_Explicit(benchmark::State& state) {
  // Theorem 19: explicit realization needs Ω(Δ / log n) for every instance.
  const std::size_t n = 2048;
  const auto deg = static_cast<std::uint64_t>(state.range(0));
  const auto d = graph::regular_sequence(n, deg);
  double rounds = 0;
  double max_known = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 97);
    const auto result = realize::realize_degrees_explicit(net, d);
    if (!result.realizable) state.SkipWithError("not graphic");
    rounds += static_cast<double>(result.implicit_rounds +
                                  result.explicit_rounds);
    for (ncc::Slot s = 0; s < net.n(); ++s)
      max_known = std::max(max_known,
                           static_cast<double>(net.knowledge_size(s)));
  }
  const double theory = static_cast<double>(realize::explicit_info_bound(
      deg, static_cast<int>(bench::capacity_of(n))));
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           std::max(theory, 1.0));
  state.counters["theory_delta_over_log"] = theory;
  state.counters["max_ids_known"] = max_known;
}
BENCHMARK(E12_Delta_Explicit)->RangeMultiplier(2)->Range(8, 128)->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
