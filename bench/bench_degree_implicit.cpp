// Experiment E5 (headline): Theorem 11 + Lemma 10 — implicit degree
// realization in O~(min{√m, Δ}) rounds.
//
// Three regimes:
//   * Δ-regime: d-regular sequences (Δ = d constant, m grows) — rounds
//     should track Δ · polylog, independent of n.
//   * √m-regime: star-heavy D*(n, m) sequences (§7 family) — rounds should
//     track √m · polylog.
//   * mixed: power-law and G(n,p) — rounds should track min{√m, Δ}.
// Counters: phases vs. the Lemma 10 phase bound and rounds vs.
// min{√m, Δ} · log²n.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "realization/implicit_degree.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

void run_case(benchmark::State& state, const graph::DegreeSequence& d,
              std::uint64_t seed) {
  const std::size_t n = d.size();
  const std::uint64_t max_d = *std::max_element(d.begin(), d.end());
  const std::uint64_t m = graph::degree_sum(d) / 2;
  double rounds = 0;
  double phases = 0;
  double messages = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, seed);
    const auto result = realize::realize_degrees_implicit(net, d);
    if (!result.realizable) state.SkipWithError("instance not graphic");
    rounds += static_cast<double>(result.rounds);
    phases += static_cast<double>(result.phases);
    messages += static_cast<double>(net.stats().messages_sent);
  }
  const double lg = ceil_log2(n);
  const double min_term = static_cast<double>(
      std::min<std::uint64_t>(isqrt(m) + 1, max_d + 1));
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) * min_term *
                           lg * lg);
  state.counters["phases"] = benchmark::Counter(
      phases, benchmark::Counter::kAvgIterations);
  state.counters["messages"] = benchmark::Counter(
      messages, benchmark::Counter::kAvgIterations);
  state.counters["phase_bound"] = min_term * 2;
  state.counters["delta"] = static_cast<double>(max_d);
  state.counters["sqrt_m"] = static_cast<double>(isqrt(m));
}

void E5_RegularDeltaRegime(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto deg = static_cast<std::uint64_t>(state.range(1));
  run_case(state, graph::regular_sequence(n, deg), 50 + n);
}
BENCHMARK(E5_RegularDeltaRegime)
    ->ArgsProduct({{512, 2048, 4096}, {4, 16, 64}})->Iterations(2);

void E5_StarHeavySqrtMRegime(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::uint64_t>(state.range(1));
  run_case(state, graph::star_heavy_sequence(n, m), 51 + n);
}
BENCHMARK(E5_StarHeavySqrtMRegime)
    ->ArgsProduct({{2048, 4096}, {256, 1024, 4096, 8192}})->Iterations(2);

void E5_PowerLaw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(52);
  run_case(state, graph::powerlaw_sequence(n, isqrt(n) * 2, 2.2, rng),
           52 + n);
}
BENCHMARK(E5_PowerLaw)->RangeMultiplier(4)->Range(512, 4096)->Iterations(2);

void E5_Gnp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(53);
  run_case(state, graph::gnp_sequence(n, 8.0 / static_cast<double>(n), rng),
           53 + n);
}
BENCHMARK(E5_Gnp)->RangeMultiplier(4)->Range(512, 4096)->Iterations(2);

void E5_Bimodal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_case(state, graph::bimodal_sequence(n, 2, 32), 54 + n);
}
BENCHMARK(E5_Bimodal)->RangeMultiplier(4)->Range(512, 4096)->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
