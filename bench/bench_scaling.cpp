// bench_scaling: the committed thread-scaling trajectory of the parallel
// delivery datapath.
//
// A plain-main driver (no Google Benchmark — a fixed round count per point
// is the measurement) that sweeps worker-thread counts across the three
// engine workload shapes, records wall time AND the engine's own per-phase
// round breakdown (body / sort / rng / placement / learn, from
// NetStats::phase_ns), computes speedup and parallel efficiency against
// the threads=1 point of the same (workload, n), and emits a JSON report
// (committed as BENCH_scaling.json).
//
// Workloads (same shapes as bench_engine, one-word fast-path sends, target
// lists pre-drawn outside the timed region):
//   flood     every node sends its full capacity() budget to uniformly
//             random targets; ~half the destinations oversubscribe.
//   sparse    every node sends exactly one message per round (fixed-cost
//             dominated; the parallel tail mostly stays below its grains).
//   overflow  every node aims half its budget at 8 hot destinations, so
//             nearly everything bounces and the RNG pre-draw dominates.
//
// Occupancy guard: every sweep point that requests more threads than the
// machine has cores warns on stderr, and every JSON entry carries "cores"
// and "oversubscribed" — a baseline committed from a 1-core container is
// self-describing, not silently wrong.
//
// --check mode is the CI gate: per-phase fields must be populated for
// every point, and a transcript-determinism canary (per-node inbox digest
// at the smallest n) must be bit-identical across every requested thread
// count. Any violation exits 1 after the JSON is out.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ncc/config.h"
#include "ncc/network.h"
#include "occupancy.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace {

using dgr::ncc::Ctx;
using dgr::ncc::NodeId;
using dgr::ncc::Slot;

struct Options {
  std::vector<unsigned> threads{1, 2, 4, 8};
  std::vector<std::string> workloads{"flood", "sparse", "overflow"};
  std::vector<std::size_t> sizes{4096, 16384};
  std::size_t rounds = 20;
  std::uint64_t seed = 42;
  std::string json_path;  // empty = stdout
  bool check = false;
};

struct Entry {
  std::string workload;
  std::size_t n = 0;
  unsigned threads = 0;
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bounced = 0;
  double wall_s = 0;
  double body_s = 0;
  double sort_s = 0;
  double rng_s = 0;
  double placement_s = 0;
  double learn_s = 0;
  double speedup = 0;     // wall(threads=1) / wall(this)
  double efficiency = 0;  // speedup / threads
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threads LIST] [--workloads LIST] [--n LIST]\n"
      "          [--rounds R] [--seed S] [--json FILE] [--check]\n"
      "  --threads   comma-separated worker counts (default 1,2,4,8)\n"
      "  --workloads subset of flood,sparse,overflow\n"
      "  --n         comma-separated sizes (default 4096,16384)\n"
      "  --rounds    measured rounds per point (default 20)\n"
      "  --check     verify per-phase fields + transcript determinism\n"
      "  --json      output file (default stdout)\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_and_exit(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads") {
      opt.threads.clear();
      for (const auto& tok : split_csv(need(i)))
        opt.threads.push_back(
            static_cast<unsigned>(std::strtoul(tok.c_str(), nullptr, 10)));
    } else if (a == "--workloads") {
      opt.workloads = split_csv(need(i));
    } else if (a == "--n") {
      opt.sizes.clear();
      for (const auto& tok : split_csv(need(i)))
        opt.sizes.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    } else if (a == "--rounds") {
      opt.rounds = std::strtoull(need(i), nullptr, 10);
    } else if (a == "--seed") {
      opt.seed = std::strtoull(need(i), nullptr, 10);
    } else if (a == "--json") {
      opt.json_path = need(i);
    } else if (a == "--check") {
      opt.check = true;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.threads.empty() || opt.workloads.empty() || opt.sizes.empty() ||
      opt.rounds == 0)
    usage_and_exit(argv[0]);
  std::sort(opt.sizes.begin(), opt.sizes.end());
  return opt;
}

dgr::ncc::Network make_net(std::size_t n, unsigned threads,
                           std::uint64_t seed) {
  dgr::ncc::Config cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.initial = dgr::ncc::InitialKnowledge::kClique;
  cfg.max_rounds = ~std::size_t{0};
  return dgr::ncc::Network(n, cfg);
}

/// Pre-drawn target list for one workload (outside the timed region, same
/// recipe as bench_engine so the trajectories are comparable).
std::vector<NodeId> draw_targets(const dgr::ncc::Network& net, std::size_t n,
                                 const std::string& workload,
                                 std::size_t per_node) {
  std::vector<NodeId> targets(n * per_node);
  dgr::Rng tr(workload == "overflow" ? 7 : 99);
  const std::size_t space = workload == "overflow" ? 8 : n;
  for (auto& t : targets)
    t = net.id_of(static_cast<Slot>(tr.below(space)));
  return targets;
}

std::size_t sends_per_node(const dgr::ncc::Network& net,
                           const std::string& workload) {
  const auto cap = static_cast<std::size_t>(net.capacity());
  if (workload == "flood") return cap;
  if (workload == "overflow") return cap / 2;
  return 1;  // sparse
}

/// One measured point. With `digest` non-null, also folds an
/// order-sensitive per-node inbox checksum (the determinism canary) —
/// kept out of normal timing runs so the measurement stays send+deliver.
Entry run_point(const std::string& workload, std::size_t n, unsigned threads,
                const Options& opt, std::vector<std::uint64_t>* digest) {
  Entry e;
  e.workload = workload;
  e.n = n;
  e.threads = threads;
  e.rounds = opt.rounds;

  auto net = make_net(n, threads, opt.seed);
  net.set_phase_timing(true);
  const std::size_t per_node = sends_per_node(net, workload);
  const std::vector<NodeId> targets = draw_targets(net, n, workload, per_node);
  if (digest) digest->assign(n, 0);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < opt.rounds; ++r) {
    net.round([&](Ctx& ctx) {
      if (digest) {
        auto& d = (*digest)[ctx.slot()];
        for (const auto m : ctx.inbox_view())
          d = dgr::hash_mix(d, m.src(), m.word(0));
        for (const auto& b : ctx.bounced())
          d = dgr::hash_mix(d, b.dst, b.msg.tag);
      }
      const NodeId* t = targets.data() + ctx.slot() * per_node;
      for (std::size_t i = 0; i < per_node; ++i)
        ctx.send1(t[i], 7, static_cast<std::uint64_t>(i));
    });
  }
  const auto t1 = std::chrono::steady_clock::now();

  e.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const auto& st = net.stats();
  e.messages = st.messages_sent;
  e.delivered = st.messages_delivered;
  e.bounced = st.messages_bounced;
  constexpr double kNs = 1e-9;
  e.body_s = static_cast<double>(st.phase_ns.body) * kNs;
  e.sort_s = static_cast<double>(st.phase_ns.sort) * kNs;
  e.rng_s = static_cast<double>(st.phase_ns.rng) * kNs;
  e.placement_s = static_cast<double>(st.phase_ns.placement) * kNs;
  e.learn_s = static_cast<double>(st.phase_ns.learn) * kNs;
  return e;
}

void emit(std::FILE* f, const Options& opt,
          const std::vector<Entry>& entries) {
  const unsigned cores = dgr::bench::hardware_cores();
  std::fprintf(f,
               "{\n  \"generated_by\": \"bench_scaling\",\n"
               "  \"seed\": %llu,\n  \"rounds\": %zu,\n  \"cores\": %u,\n"
               "  \"entries\": [\n",
               static_cast<unsigned long long>(opt.seed), opt.rounds, cores);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const bool over = cores != 0 && e.threads > cores;
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"n\": %zu, \"threads\": %u, "
        "\"cores\": %u, \"oversubscribed\": %d, \"rounds\": %zu, "
        "\"messages\": %llu, \"delivered\": %llu, \"bounced\": %llu, "
        "\"wall_s\": %.6f, \"body_s\": %.6f, \"sort_s\": %.6f, "
        "\"rng_s\": %.6f, \"placement_s\": %.6f, \"learn_s\": %.6f, "
        "\"speedup\": %.3f, \"efficiency\": %.3f}%s\n",
        e.workload.c_str(), e.n, e.threads, cores, over ? 1 : 0, e.rounds,
        static_cast<unsigned long long>(e.messages),
        static_cast<unsigned long long>(e.delivered),
        static_cast<unsigned long long>(e.bounced), e.wall_s, e.body_s,
        e.sort_s, e.rng_s, e.placement_s, e.learn_s, e.speedup, e.efficiency,
        i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  std::vector<Entry> entries;
  bool check_failed = false;

  for (const std::string& workload : opt.workloads) {
    for (const std::size_t n : opt.sizes) {
      double wall_t1 = 0;
      for (const unsigned threads : opt.threads) {
        const std::string label = "bench_scaling " + workload +
                                  " n=" + std::to_string(n) +
                                  " threads=" + std::to_string(threads);
        dgr::bench::warn_if_oversubscribed(threads, label.c_str());
        Entry e = run_point(workload, n, threads, opt, nullptr);
        if (threads == 1) wall_t1 = e.wall_s;
        if (wall_t1 > 0 && e.wall_s > 0) {
          e.speedup = wall_t1 / e.wall_s;
          e.efficiency = e.speedup / static_cast<double>(threads);
        }
        std::fprintf(stderr,
                     "bench_scaling: %-8s n=%-6zu threads=%u wall=%.3fs "
                     "[body=%.3f sort=%.3f rng=%.3f place=%.3f learn=%.3f] "
                     "speedup=%.2f\n",
                     workload.c_str(), n, threads, e.wall_s, e.body_s,
                     e.sort_s, e.rng_s, e.placement_s, e.learn_s, e.speedup);
        if (opt.check) {
          // Per-phase fields must be real measurements, not zeros: the
          // phase accumulators are on for every point.
          if (e.body_s <= 0 || e.sort_s <= 0 || e.placement_s <= 0 ||
              (workload == "overflow" && e.rng_s <= 0)) {
            std::fprintf(stderr,
                         "bench_scaling: CHECK FAILED: %s has empty "
                         "per-phase fields\n",
                         label.c_str());
            check_failed = true;
          }
        }
        entries.push_back(std::move(e));
      }
    }

    if (opt.check) {
      // Transcript-determinism canary at the smallest size: the per-node
      // inbox/bounce digests must be bit-identical for every requested
      // thread count.
      const std::size_t n = opt.sizes.front();
      Options canary = opt;
      canary.rounds = std::min<std::size_t>(opt.rounds, 10);
      std::vector<std::uint64_t> ref;
      run_point(workload, n, 1, canary, &ref);
      for (const unsigned threads : opt.threads) {
        std::vector<std::uint64_t> got;
        run_point(workload, n, threads, canary, &got);
        if (got != ref) {
          std::fprintf(stderr,
                       "bench_scaling: CHECK FAILED: %s n=%zu transcript "
                       "differs at threads=%u\n",
                       workload.c_str(), n, threads);
          check_failed = true;
        }
      }
    }
  }

  std::FILE* out = stdout;
  if (!opt.json_path.empty()) {
    out = std::fopen(opt.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_scaling: cannot open %s\n",
                   opt.json_path.c_str());
      return 2;
    }
  }
  emit(out, opt, entries);
  if (out != stdout) std::fclose(out);

  if (check_failed) {
    std::fprintf(stderr, "bench_scaling: checks FAILED\n");
    return 1;
  }
  return 0;
}
