// Thread-occupancy guard shared by every thread-sweeping benchmark —
// including the plain-main JSON drivers (bench_scale, bench_scaling) that
// link without Google Benchmark, which is why this lives outside
// bench_common.h. When a sweep's worker-thread demand exceeds the
// machine's hardware concurrency the timings are wall-clock
// lies-in-waiting (threads time-share cores), so degrade LOUDLY: warn on
// stderr per sweep and stamp "cores" / "oversubscribed" into whatever JSON
// the caller emits, so committed baselines carry the flag and a reviewer
// can tell a degraded run from a real one.
#pragma once

#include <cstdio>
#include <thread>

namespace dgr::bench {

/// The machine's hardware concurrency (0 when unknown).
inline unsigned hardware_cores() { return std::thread::hardware_concurrency(); }

/// Warn (stderr, once per call — i.e. once per sweep point) when `threads`
/// oversubscribes the machine; returns whether it does. `label` names the
/// sweep in the warning.
inline bool warn_if_oversubscribed(unsigned threads, const char* label) {
  const unsigned hw = hardware_cores();
  const bool over = hw != 0 && threads > hw;
  if (over) {
    std::fprintf(stderr,
                 "WARNING: %s requests %u worker threads but the machine "
                 "has %u hardware threads — timings are oversubscribed "
                 "(flagged \"oversubscribed\": 1 in the emitted JSON)\n",
                 label, threads, hw);
  }
  return over;
}

}  // namespace dgr::bench
