// Serving-stack benchmarks: request latency and throughput through the
// RealizationService (submit -> admission -> batch -> cold run or cache
// hit -> future resolution).
//
//   ColdLatency — every request is a fresh key (the seed advances each
//                 iteration), so each measures the full cold path: queue,
//                 driver pickup, Network simulation, validation, caching.
//   HitLatency  — one key, permuted degrees each iteration; after the
//                 (untimed) priming run every request is a submit-time
//                 cache hit. The committed BENCH_serve.json must show this
//                 path >= 10x faster than ColdLatency at the same n — the
//                 PR's headline acceptance number.
//   WarmThroughput — a wave of requests over k families per iteration,
//                 concurrent drivers, warm cache: steady-state requests/s
//                 plus the service's batching/coalescing counters.
//
// Counters include "oversubscribed" (bench_common.h) with the driver
// thread demand, since serve benches spin drivers on top of the timing
// thread.
#include <future>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "serve/service.h"
#include "util/rng.h"

namespace dgr::bench {
namespace {

std::vector<std::uint64_t> family(std::size_t n, std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xFA711));
  return graph::gnp_sequence(n, 0.3, rng);
}

void BM_ServeColdLatency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  serve::ServiceConfig cfg;
  cfg.drivers = 1;
  cfg.net_threads = 1;
  // Every request is distinct; keep them all resident so the bench never
  // measures eviction noise.
  cfg.cache_capacity = 1 << 20;
  serve::RealizationService service(cfg);
  const auto degrees = family(n, 1);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    serve::Request req;
    req.degrees = degrees;
    req.seed = ++seed;  // fresh key -> guaranteed cold run
    const auto result = service.submit(std::move(req)).get();
    benchmark::DoNotOptimize(result->edges.data());
  }
  report_thread_occupancy(state, cfg.drivers);
  report_rows(state, obs::rows(service.stats()), {"cold_runs"});
}

void BM_ServeHitLatency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  serve::ServiceConfig cfg;
  cfg.drivers = 1;
  cfg.net_threads = 1;
  serve::RealizationService service(cfg);
  const auto degrees = family(n, 1);
  {
    serve::Request prime;
    prime.degrees = degrees;
    service.submit(std::move(prime)).get();  // untimed cold run
  }
  // Pre-permuted copies so the timed loop measures canonicalize + probe +
  // resolve, not benchmark-side shuffling.
  Rng rng(7);
  std::vector<std::vector<std::uint64_t>> permuted(16, degrees);
  for (auto& p : permuted) rng.shuffle(p);
  std::size_t i = 0;
  for (auto _ : state) {
    serve::Request req;
    req.degrees = permuted[i++ % permuted.size()];
    const auto result = service.submit(std::move(req)).get();
    benchmark::DoNotOptimize(result->edges.data());
  }
  report_thread_occupancy(state, cfg.drivers);
  report_rows(state, obs::rows(service.stats()), {"submit_hits"});
}

void BM_ServeWarmThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto drivers = static_cast<unsigned>(state.range(1));
  constexpr std::size_t kFamilies = 4;
  constexpr std::size_t kWave = 32;
  serve::ServiceConfig cfg;
  cfg.drivers = drivers;
  cfg.net_threads = 1;
  serve::RealizationService service(cfg);

  std::vector<std::vector<std::uint64_t>> families;
  for (std::size_t k = 0; k < kFamilies; ++k)
    families.push_back(family(n, k + 1));
  Rng rng(7);

  for (auto _ : state) {
    std::vector<std::future<serve::RealizationService::Result>> wave;
    wave.reserve(kWave);
    for (std::size_t r = 0; r < kWave; ++r) {
      serve::Request req;
      req.degrees = families[r % kFamilies];
      rng.shuffle(req.degrees);
      wave.push_back(service.submit(std::move(req)));
    }
    for (auto& f : wave) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWave));
  report_thread_occupancy(state, drivers);
  const auto st = service.stats();
  report_rows(state, obs::rows(st), {"batches", "coalesced"});
  state.counters["hit_share"] = benchmark::Counter(
      st.completed
          ? static_cast<double>(st.submit_hits + st.run_hits + st.coalesced) /
                static_cast<double>(st.completed)
          : 0.0,
      benchmark::Counter::kAvgIterations);
}

void ServeLatencyArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {64, 256, 1024}) b->Args({n});
  b->ArgNames({"n"});
}

void ServeThroughputArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {64, 256}) {
    for (std::int64_t drivers : {1, 2, 4}) b->Args({n, drivers});
  }
  b->ArgNames({"n", "drivers"});
}

BENCHMARK(BM_ServeColdLatency)->Apply(ServeLatencyArgs)->UseRealTime();
BENCHMARK(BM_ServeHitLatency)->Apply(ServeLatencyArgs)->UseRealTime();
BENCHMARK(BM_ServeWarmThroughput)
    ->Apply(ServeThroughputArgs)
    ->UseRealTime();

}  // namespace
}  // namespace dgr::bench

BENCHMARK_MAIN();
