// Experiment E14 (ablations called out in DESIGN.md):
//   A1 — capacity ablation: how the headline algorithm's round count reacts
//        to the per-round message budget c·log n (c = capacity_factor).
//        The model grants Θ(log n); halving/doubling c should shift rounds
//        by roughly the inverse factor in the exchange-bound phases.
//   A2 — sorting-network ablation: Batcher (polylog, Theorem 3 class)
//        vs. odd-even transposition (Θ(n)) as the per-phase sort.
//   A3 — link-loss ablation: reliable exactly-once explicitization rounds
//        as a function of the drop probability p (expected 1/(1-p)^2
//        scaling of the exchange term).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/generators.h"
#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "realization/explicit_degree.h"
#include "realization/implicit_degree.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

void A1_CapacityFactor(benchmark::State& state) {
  const std::size_t n = 1024;
  const auto factor = static_cast<int>(state.range(0));
  // High degree so the capacity-bound explicitization term is visible.
  const auto d = graph::regular_sequence(n, 160);
  double rounds = 0;
  double explicit_rounds = 0;
  for (auto _ : state) {
    ncc::Config cfg;
    cfg.seed = 100;
    cfg.capacity_factor = factor;
    ncc::Network net(n, cfg);
    const auto result = realize::realize_degrees_explicit(net, d);
    if (!result.realizable) state.SkipWithError("not graphic");
    rounds += static_cast<double>(net.stats().rounds);
    explicit_rounds += static_cast<double>(result.explicit_rounds);
  }
  state.counters["rounds"] = benchmark::Counter(
      rounds, benchmark::Counter::kAvgIterations);
  state.counters["explicit_rounds"] = benchmark::Counter(
      explicit_rounds, benchmark::Counter::kAvgIterations);
  state.counters["capacity"] = static_cast<double>(
      std::max(8, factor * ceil_log2(n)));
}
BENCHMARK(A1_CapacityFactor)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(2);

void A2_SortNetwork(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool use_batcher = state.range(1) != 0;
  double rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 101);
    prim::PathOverlay path = prim::undirect_initial_path(net);
    prim::build_bbst(net, path);
    const prim::SkipOverlay skip = prim::build_skiplinks(net, path);
    Rng rng(5);
    std::vector<std::uint64_t> key(n);
    for (auto& k : key) k = rng.below(n);
    const std::uint64_t before = net.stats().rounds;
    const auto sorted =
        use_batcher
            ? prim::distributed_sort(net, path, skip, key, true)
            : prim::transposition_sort(net, path, key, true);
    benchmark::DoNotOptimize(sorted.path.order.data());
    rounds += static_cast<double>(net.stats().rounds - before);
  }
  state.counters["rounds"] = benchmark::Counter(
      rounds, benchmark::Counter::kAvgIterations);
  state.SetLabel(use_batcher ? "batcher" : "transposition");
}
BENCHMARK(A2_SortNetwork)
    ->ArgsProduct({{256, 1024, 4096}, {0, 1}})
    ->Iterations(2);

void A3_LossRate(benchmark::State& state) {
  const std::size_t n = 512;
  const double p = static_cast<double>(state.range(0)) / 100.0;
  const auto d = graph::regular_sequence(n, 16);
  double conv_rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 102);
    const auto implicit_result = realize::realize_degrees_implicit(net, d);
    if (!implicit_result.realizable) state.SkipWithError("not graphic");
    net.set_drop_probability(p);
    const auto result =
        realize::make_explicit_reliable(net, implicit_result);
    conv_rounds += static_cast<double>(result.explicit_rounds);
  }
  state.counters["explicit_rounds"] = benchmark::Counter(
      conv_rounds, benchmark::Counter::kAvgIterations);
  state.counters["drop_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(A3_LossRate)->Arg(0)->Arg(10)->Arg(25)->Arg(50)->Arg(75)
    ->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
