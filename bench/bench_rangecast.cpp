// Experiment E4: range multicast (our Theorem 6/7 substrate).
// Sweeps group count × group width for the two shapes the paper's
// algorithms generate: disjoint consecutive groups (Algorithm 3) and
// heavily-overlapping predecessor windows (Algorithm 6 phase 2).
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_common.h"
#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/range_cast.h"
#include "primitives/skiplinks.h"
#include "util/math_util.h"

namespace dgr {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed)
      : net(bench::make_net(n, seed)),
        path(prim::undirect_initial_path(net)),
        tree(prim::build_bbst(net, path)),
        skip(prim::build_skiplinks(net, path)) {}
  ncc::Network net;
  prim::PathOverlay path;
  prim::TreeOverlay tree;
  prim::SkipOverlay skip;
};

void E4_DisjointGroups(benchmark::State& state) {
  const std::size_t n = 8192;
  const auto width = static_cast<std::size_t>(state.range(0));
  double rounds = 0;
  std::atomic<std::size_t> delivered{0};
  for (auto _ : state) {
    Fixture f(n, 46);
    std::vector<std::vector<prim::RangeCastTask>> tasks(n);
    for (std::size_t g = 0; g + width <= n; g += width) {
      const ncc::Slot src = f.path.order[g];
      tasks[src].push_back({static_cast<prim::Position>(g + 1),
                            static_cast<prim::Position>(g + width - 1), 1,
                            f.net.id_of(src), true});
    }
    const std::uint64_t before = f.net.stats().rounds;
    prim::range_multicast(f.net, f.path, f.skip, tasks,
                          [&](prim::Slot, std::uint32_t, std::uint64_t) {
                            delivered.fetch_add(1);
                          });
    rounds += static_cast<double>(f.net.stats().rounds - before);
  }
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           (ceil_log2(width) + 2));
  state.counters["delivered"] = static_cast<double>(delivered.load());
}
BENCHMARK(E4_DisjointGroups)->RangeMultiplier(4)->Range(4, 4096)->Iterations(2);

void E4_OverlappingWindows(benchmark::State& state) {
  const std::size_t n = 4096;
  const auto rho = static_cast<std::size_t>(state.range(0));
  double rounds = 0;
  for (auto _ : state) {
    Fixture f(n, 47);
    std::vector<std::vector<prim::RangeCastTask>> tasks(n);
    for (std::size_t i = n / 2; i < n; ++i) {
      const ncc::Slot src = f.path.order[i];
      tasks[src].push_back({static_cast<prim::Position>(i - rho),
                            static_cast<prim::Position>(i - 1), 2,
                            f.net.id_of(src), true});
    }
    const std::uint64_t before = f.net.stats().rounds;
    prim::range_multicast(f.net, f.path, f.skip, tasks,
                          [](prim::Slot, std::uint32_t, std::uint64_t) {});
    rounds += static_cast<double>(f.net.stats().rounds - before);
  }
  // Window ρ ⇒ per-node load Θ(ρ) ⇒ Θ(ρ / log n) rounds + polylog.
  const double cap = bench::capacity_of(n);
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) *
                           (static_cast<double>(rho) / cap + ceil_log2(n)));
}
BENCHMARK(E4_OverlappingWindows)->RangeMultiplier(2)->Range(8, 512)->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
