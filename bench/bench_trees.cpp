// Experiments E8, E9: §5 tree realizations.
//   E8 (Thm 14): caterpillar realization in polylog rounds.
//   E9 (Thm 16 / Lemma 15): greedy tree attains the minimum diameter —
//   we report both algorithms' diameters and the sequential optimum.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/tree_metrics.h"
#include "realization/tree_realization.h"
#include "realization/validate.h"
#include "seq/greedy_tree.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

void E8_CaterpillarRounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(80);
  const auto d = graph::random_tree_sequence(n, rng);
  double rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 81);
    const auto result = realize::realize_tree_caterpillar(net, d);
    if (!result.realizable) state.SkipWithError("not tree-realizable");
    rounds += static_cast<double>(result.rounds);
  }
  const double lg = ceil_log2(n);
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) * lg * lg * lg);
}
BENCHMARK(E8_CaterpillarRounds)->RangeMultiplier(4)->Range(256, 8192)->Iterations(2);

void E8_GreedyRounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(82);
  const auto d = graph::random_tree_sequence(n, rng);
  double rounds = 0;
  for (auto _ : state) {
    auto net = bench::make_net(n, 83);
    const auto result = realize::realize_tree_greedy(net, d);
    if (!result.realizable) state.SkipWithError("not tree-realizable");
    rounds += static_cast<double>(result.rounds);
  }
  const double lg = ceil_log2(n);
  bench::report_rounds(state, rounds,
                       static_cast<double>(state.iterations()) * lg * lg * lg);
}
BENCHMARK(E8_GreedyRounds)->RangeMultiplier(4)->Range(256, 8192)->Iterations(2);

void E9_DiameterOptimality(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(84 + n);
  const auto d = graph::random_tree_sequence(n, rng);
  double diam_cat = 0, diam_greedy = 0;
  for (auto _ : state) {
    auto net1 = bench::make_net(n, 85);
    const auto cat = realize::realize_tree_caterpillar(net1, d);
    auto net2 = bench::make_net(n, 86);
    const auto greedy = realize::realize_tree_greedy(net2, d);
    diam_cat = static_cast<double>(graph::tree_diameter(
        realize::graph_from_stored(net1, cat.stored)));
    diam_greedy = static_cast<double>(graph::tree_diameter(
        realize::graph_from_stored(net2, greedy.stored)));
  }
  const auto opt = seq::min_tree_diameter(d);
  state.counters["diam_caterpillar"] = diam_cat;
  state.counters["diam_greedy"] = diam_greedy;
  state.counters["diam_optimal"] = static_cast<double>(opt.value());
}
BENCHMARK(E9_DiameterOptimality)->RangeMultiplier(4)->Range(64, 4096)->Iterations(2);

}  // namespace
}  // namespace dgr

BENCHMARK_MAIN();
