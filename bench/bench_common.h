// Shared helpers for the benchmark harness.
//
// Every benchmark reports simulator *round counts* as custom counters next
// to the wall-clock time: "rounds" (measured), "bound" (the paper's
// closed-form bound for the instance) and "ratio" = rounds / bound. The
// paper's claims are asymptotic, so the experiment series' shape (flat or
// slowly-growing ratio across the sweep) is the reproduction target; see
// EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "occupancy.h"
#include "rss.h"
#include "ncc/config.h"
#include "ncc/network.h"
#include "obs/rows.h"
#include "util/math_util.h"

namespace dgr::bench {

inline ncc::Network make_net(std::size_t n, std::uint64_t seed,
                             bool clique = false, bool sparse_rounds = true) {
  ncc::Config cfg;
  cfg.seed = seed;
  if (clique) cfg.initial = ncc::InitialKnowledge::kClique;
  // sparse_rounds = false is the dense reference dispatch (round_active
  // runs every slot); benchmarked so the reference path can't silently rot.
  cfg.sparse_rounds = sparse_rounds;
  return ncc::Network(n, cfg);
}

/// Per-round message budget a Network of this size gets (default Config).
inline double capacity_of(std::size_t n) {
  const ncc::Config cfg;
  const int lg = dgr::ceil_log2(n < 2 ? 2 : n);
  const int cap = cfg.capacity_factor * lg;
  return static_cast<double>(cap < cfg.min_capacity ? cfg.min_capacity : cap);
}

/// Thread-occupancy reporting: every thread-sweeping benchmark calls this
/// with the worker-thread demand it is about to impose. When that demand
/// exceeds the machine's hardware concurrency the numbers are wall-clock
/// lies-in-waiting (threads time-share cores), so degrade LOUDLY: print a
/// stderr warning per sweep and record "oversubscribed": 1 plus the
/// machine's "cores" as counters — custom counters land in --benchmark_out
/// JSON, so committed baselines carry the flag and a reviewer can tell a
/// degraded run from a real one.
inline void report_thread_occupancy(benchmark::State& state,
                                    unsigned threads) {
  const unsigned hw = hardware_cores();
  // The container's Google Benchmark predates State::name(); the JSON
  // counters carry the per-benchmark attribution, the warning is generic.
  const bool over = warn_if_oversubscribed(threads, "benchmark sweep point");
  // Plain counters (no per-iteration averaging): these are properties of
  // the run, not rates.
  state.counters["threads"] = benchmark::Counter(static_cast<double>(threads));
  state.counters["cores"] = benchmark::Counter(static_cast<double>(hw));
  state.counters["oversubscribed"] = benchmark::Counter(over ? 1.0 : 0.0);
}

/// Record the process's peak RSS (bytes) as a plain counter. Call after
/// the timing loop; pair with reset_peak_rss() before it for a
/// per-benchmark window rather than a process-lifetime high-water mark.
inline void report_peak_rss(benchmark::State& state) {
  state.counters["peak_rss_bytes"] =
      benchmark::Counter(static_cast<double>(peak_rss_bytes()));
}

/// Report a subset of an obs rows snapshot (ServiceStats, CacheStats,
/// NetStats — see obs/rows.h) as benchmark counters. One extraction path
/// shared with dgr_serve and the exporter: benchmarks name which rows they
/// want instead of re-plumbing struct fields into counters by hand.
inline void report_rows(benchmark::State& state,
                        const std::vector<obs::Row>& rows,
                        std::initializer_list<const char*> names,
                        benchmark::Counter::Flags flags =
                            benchmark::Counter::kIsRate) {
  for (const auto& row : rows) {
    for (const char* name : names) {
      if (row.name == name) {
        state.counters[row.name] =
            benchmark::Counter(static_cast<double>(row.value), flags);
      }
    }
  }
}

inline void report_rounds(benchmark::State& state, double rounds,
                          double bound) {
  state.counters["rounds"] =
      benchmark::Counter(rounds, benchmark::Counter::kAvgIterations);
  state.counters["bound"] =
      benchmark::Counter(bound, benchmark::Counter::kAvgIterations);
  if (bound > 0) {
    state.counters["ratio"] = benchmark::Counter(
        rounds / bound, benchmark::Counter::kAvgIterations);
  }
}

}  // namespace dgr::bench
