#!/usr/bin/env bash
# obs_tail.sh — follow a live dgr telemetry socket from the shell.
#
#   scripts/obs_tail.sh SOCKET_PATH [--once|--json]
#
# Default mode subscribes to the NDJSON event stream and pretty-prints it
# via `dgr_top` when a built binary is on PATH or in ./build/examples,
# falling back to raw NDJSON through python3. --once / --json scrape a
# single Prometheus / JSON snapshot instead. Producer side:
#
#   ./build/examples/dgr_scenarios run --telemetry-socket=/tmp/dgr.sock &
#   scripts/obs_tail.sh /tmp/dgr.sock
#
# Doubles as the manual smoke for the socket protocol (all three request
# verbs exercised from outside the process).
set -euo pipefail

sock="${1:-}"
mode="${2:-stream}"
if [[ -z "$sock" ]]; then
  echo "usage: $0 SOCKET_PATH [--once|--json]" >&2
  exit 2
fi

here="$(cd "$(dirname "$0")/.." && pwd)"
dgr_top=""
for cand in "$here/build/examples/dgr_top" "$(command -v dgr_top || true)"; do
  if [[ -n "$cand" && -x "$cand" ]]; then
    dgr_top="$cand"
    break
  fi
done

case "$mode" in
  --once)  [[ -n "$dgr_top" ]] && exec "$dgr_top" --socket="$sock" --once
           req="metrics" ;;
  --json)  [[ -n "$dgr_top" ]] && exec "$dgr_top" --socket="$sock" --json
           req="json" ;;
  stream|--stream)
           [[ -n "$dgr_top" ]] && exec "$dgr_top" --socket="$sock"
           req="stream" ;;
  *) echo "unknown mode: $mode" >&2; exit 2 ;;
esac

# No dgr_top binary: speak the line protocol directly over python3's
# stdlib (the container has no netcat/socat).
exec python3 - "$sock" "$req" <<'PY'
import socket, sys
sock_path, req = sys.argv[1], sys.argv[2]
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)
s.sendall((req + "\n").encode())
try:
    while True:
        chunk = s.recv(4096)
        if not chunk:
            break
        sys.stdout.write(chunk.decode("utf-8", "replace"))
        sys.stdout.flush()
except KeyboardInterrupt:
    pass
PY
