#!/usr/bin/env bash
# Compatibility wrapper. The Ctx::send inline check grew into the general
# hot-op inline-budget gate in scripts/lint/check_inline_budget.sh, which
# derives the op list from the [[gnu::always_inline]] sites in src/ instead
# of hardcoding send/send1/send1_id. Call that directly in new code; this
# name survives for existing CI configs and muscle memory.
exec "$(dirname "$0")/lint/check_inline_budget.sh" "$@"
