#!/usr/bin/env bash
# Guard against Ctx::send (and the one-word fast-path variants) silently
# falling out of the inline budget in Release binaries.
#
# Background (ROADMAP / PR 4): Ctx::send once outgrew the compilers'
# inlining heuristics, leaving an outlined call that copies the 48-byte
# Message through the stack per send — a ~3x slowdown on the all-dense
# engine microbenches, invisible to every correctness test. The fix is
# [[gnu::always_inline]], but a future compiler or refactor could still
# emit an out-of-line definition (e.g. if the attribute is dropped or the
# function's address is taken). An outlined copy shows up as a defined
# function symbol, which is exactly what this script greps for.
#
#   usage: check_send_inline.sh <binary> [<binary> ...]
#
# Exits non-zero if any binary defines a Ctx::send* symbol. CI runs it over
# the bench binaries AND the serving stack (bench_serve, dgr_serve): the
# service cold-runs Networks through the same send hot path, so an inline
# regression there would silently skew the committed serve baselines.
set -euo pipefail

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <binary> [<binary> ...]" >&2
  exit 2
fi

status=0
for bin in "$@"; do
  if [ ! -f "$bin" ]; then
    echo "FAIL: $bin does not exist" >&2
    status=1
    continue
  fi
  # Defined code symbols only (t/T/w/W); undefined refs (U) would already
  # be a link error. Match the call operator '(' so send1/send1_id are
  # covered as distinct patterns and unrelated names (send_fail,
  # send_queue) are not.
  outlined=$(nm -C "$bin" 2>/dev/null \
    | grep -E ' [tTwW] .*dgr::ncc::Ctx::send(1(_id)?)?\(' || true)
  if [ -n "$outlined" ]; then
    echo "FAIL: $bin has outlined Ctx::send symbols (inline budget lost):" >&2
    echo "$outlined" >&2
    status=1
  else
    echo "OK: $bin — Ctx::send fully inlined"
  fi
done
exit $status
