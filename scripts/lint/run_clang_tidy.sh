#!/usr/bin/env bash
# clang-tidy over src/ and tests/ with the project .clang-tidy, zero-
# warning policy (--warnings-as-errors=*). bench/ and examples/ are out of
# scope — see the root CMakeLists comment.
#
# Needs a compile database: configure any build dir first (the project
# always exports compile_commands.json). The containerized dev image may
# not ship clang-tidy; in that case this script SKIPS loudly and exits 0 so
# run_all.sh stays usable locally — CI installs the pinned tool and the
# gate is enforced there (and locally via -DDGR_CLANG_TIDY=ON when the
# binary exists).
#
#   usage: run_clang_tidy.sh [build-dir]   (default: build)
set -euo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"
build="${1:-$root/build}"

tidy=""
# Pinned floor is 14 (the CI toolchain); newer is fine.
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then tidy="$cand"; break; fi
done
if [ -z "$tidy" ]; then
  echo "SKIP: no clang-tidy on PATH — the tidy gate runs in CI (lint job);"
  echo "install clang-tidy >= 14 to run it locally."
  exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
  echo "FAIL: $build/compile_commands.json not found — configure first:" >&2
  echo "  cmake -B $build -S $root" >&2
  exit 2
fi

# The gate's scope: library + tests translation units.
mapfile -t files < <(find "$root/src" "$root/tests" -name '*.cpp' | sort)
echo "$tidy over ${#files[@]} files (config: $root/.clang-tidy)"
"$tidy" -p "$build" --warnings-as-errors='*' --quiet "${files[@]}"
echo "OK: clang-tidy clean"
