#!/usr/bin/env bash
# Determinism lint: grep-level gate for the engine's bit-identical-
# transcript contract (ROADMAP: same seed => same transcript at any thread
# count, on any stdlib). Flags source patterns whose behavior depends on
# something outside the seed:
#
#   1. unordered_map< / unordered_set< — iteration order is
#      implementation-defined; iterating one into sends, RNG draws, or any
#      transcript-visible order is the classic silent nondeterminism bug
#      (PR 9 found exactly this in the reliable-delivery retransmit loop).
#   2. std::random_device — nondeterministic entropy by definition.
#   3. srand( / time-seeded RNG — wall-clock seeds.
#   4. chrono ::now() — clock reads; fine for telemetry, fatal if a
#      transcript ever branches on one.
#   5. pointer-keyed ordered containers (std::map/std::set with a pointer
#      key) — comparison order is the allocator's address layout.
#
# Escape hatch: a site that is genuinely safe (membership-only set,
# sorted-before-read bag, telemetry-only clock) carries a `det-ok: <what>`
# marker in a comment on the flagged line or within the 4 lines above it,
# stating WHY it cannot leak into a transcript. The marker is an audit
# trail, not a mute button — reviewers grep for det-ok to re-check claims.
#
#   usage: determinism_lint.sh [src-dir]
#
# Exits non-zero listing every unannotated site.
set -euo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"
src="${1:-$root/src}"

fail=0
while IFS= read -r file; do
  # awk keeps a 4-line window so a det-ok in the preceding comment block
  # covers a match a few lines into the statement it documents.
  out=$(awk '
    function window_ok(  i) {
      if (index($0, "det-ok:") > 0) return 1
      for (i = 1; i <= 4; i++) if (index(win[i], "det-ok:") > 0) return 1
      return 0
    }
    {
      hit = ""
      if ($0 ~ /unordered_(map|set)</) hit = "unordered container"
      if ($0 ~ /std::random_device/)   hit = "std::random_device"
      if ($0 ~ /[^_[:alnum:]]srand\(/) hit = "srand (wall-clock seed)"
      if ($0 ~ /::now\(\)/)            hit = "clock read"
      if ($0 ~ /std::(map|set)<[^,>]*\*/) hit = "pointer-keyed ordering"
      if (hit != "" && $0 !~ /^[[:space:]]*(\/\/|#include)/ && !window_ok())
        printf "%d: [%s] %s\n", NR, hit, $0
      for (i = 4; i > 1; i--) win[i] = win[i-1]
      win[1] = $0
    }' "$file")
  if [ -n "$out" ]; then
    echo "FAIL: $file"
    echo "$out" | sed 's/^/  /'
    fail=1
  fi
done < <(find "$src" -name '*.h' -o -name '*.cpp' | sort)

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "determinism_lint: unannotated nondeterminism hazards (add the fix," >&2
  echo "or a 'det-ok: <reason>' comment within 4 lines above if provably" >&2
  echo "transcript-invisible)." >&2
  exit 1
fi
echo "OK: determinism lint clean over $src"
