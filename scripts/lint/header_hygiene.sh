#!/usr/bin/env bash
# Header hygiene (IWYU-lite): every header under src/ must
#
#   1. carry #pragma once, and
#   2. be self-contained — compile on its own with only -Isrc, so a header
#      never silently depends on what its includers happened to include
#      before it. (The classic failure: header A uses std::vector but only
#      compiles because header B included <vector> first; reordering
#      includes in a .cpp then breaks the build three files away.)
#
# Self-containment is checked by syntax-only compiling each header as a
# standalone translation unit. That is the cheap 90% of include-what-you-
# use without the tool dependency: it catches missing includes, though not
# over-inclusion.
#
#   usage: header_hygiene.sh [src-dir]
set -euo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"
src="${1:-$root/src}"
cxx="${CXX:-g++}"

fail=0
while IFS= read -r hdr; do
  if ! grep -q '^#pragma once' "$hdr"; then
    echo "FAIL: $hdr missing '#pragma once'"
    fail=1
  fi
  if ! "$cxx" -std=c++20 -fsyntax-only -x c++ -I "$src" "$hdr" 2>/tmp/hh.$$; then
    echo "FAIL: $hdr is not self-contained:"
    sed 's/^/  /' /tmp/hh.$$ | head -15
    fail=1
  fi
done < <(find "$src" -name '*.h' | sort)
rm -f /tmp/hh.$$

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "header_hygiene: fix the headers above (add the missing include or" >&2
  echo "pragma; do not paper over with a lucky include order)." >&2
  exit 1
fi
echo "OK: all headers under $src self-contained with #pragma once"
