#!/usr/bin/env bash
# The whole lint suite, one entry point (what the CI lint job runs):
#
#   determinism_lint   grep gate for transcript-visible nondeterminism
#   nolint_reason      every NOLINT names its check and carries a reason
#   header_hygiene     #pragma once + self-contained headers (IWYU-lite)
#   check_inline_budget [[gnu::always_inline]] hot ops stay inlined
#                      (needs built binaries; skips if none given/found)
#   run_clang_tidy     .clang-tidy zero-warning gate (skips if no tool)
#
#   usage: run_all.sh [build-dir]   (default: build)
#
# Runs everything even after a failure and reports a summary, so one run
# shows every problem.
set -uo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"
here="$root/scripts/lint"
build="${1:-$root/build}"

declare -a names results
run() {
  local name="$1"; shift
  echo "==== $name ===="
  "$@"
  local rc=$?
  names+=("$name"); results+=("$rc")
  echo
}

run determinism_lint "$here/determinism_lint.sh"
run nolint_reason "$here/nolint_reason.sh"
run header_hygiene "$here/header_hygiene.sh"

# Inline budget needs binaries. Prefer the bench binaries (Release codegen
# is the one that matters); fall back to whatever the build dir has.
bins=()
for b in "$build"/bench/bench_engine "$build"/bench/bench_serve \
         "$build"/examples/dgr_serve; do
  [ -f "$b" ] && bins+=("$b")
done
if [ "${#bins[@]}" -gt 0 ]; then
  run check_inline_budget "$here/check_inline_budget.sh" "${bins[@]}"
else
  echo "==== check_inline_budget ===="
  echo "SKIP: no built binaries under $build (build bench/examples first)"
  names+=(check_inline_budget); results+=(0)
  echo
fi

run clang_tidy "$here/run_clang_tidy.sh" "$build"

echo "==== summary ===="
fail=0
for i in "${!names[@]}"; do
  if [ "${results[$i]}" -eq 0 ]; then
    echo "  PASS ${names[$i]}"
  else
    echo "  FAIL ${names[$i]}"
    fail=1
  fi
done
exit $fail
