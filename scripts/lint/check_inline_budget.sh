#!/usr/bin/env bash
# Inline-budget check, generalized over every [[gnu::always_inline]] hot op.
#
# Background (ROADMAP / PR 4): Ctx::send once outgrew the compilers'
# inlining heuristics, leaving an outlined call that copies the 48-byte
# Message through the stack per send — a ~3x slowdown on the all-dense
# engine microbenches, invisible to every correctness test. The fix is
# [[gnu::always_inline]], but a future compiler or refactor can still emit
# an out-of-line definition (attribute dropped, address taken). An outlined
# copy shows up as a DEFINED function symbol in the binary, which is what
# this script greps for.
#
# Unlike the original check_send_inline.sh (now a thin wrapper over this),
# the hot-op list is not hardcoded: it is derived from the source — every
# function declared under a [[gnu::always_inline]] attribute in src/
# headers is budget-checked, so a newly annotated hot op joins the gate
# automatically.
#
#   usage: check_inline_budget.sh <binary> [<binary> ...]
#
# Exits non-zero if any binary defines one of those symbols.
set -euo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <binary> [<binary> ...]" >&2
  exit 2
fi

# Pull the identifier of each function declared within 4 lines after an
# always_inline attribute: the first `name(` on a line that looks like a
# declaration (skips the attribute/#if lines themselves).
ops=$(grep -rhA4 'gnu::always_inline' "$root/src" --include='*.h' \
  | sed -n 's/.*[[:space:]*&]\([A-Za-z_][A-Za-z0-9_]*\)(.*/\1/p' \
  | sort -u)
if [ -z "$ops" ]; then
  echo "FAIL: no [[gnu::always_inline]] ops found under src/ — the hot-path" >&2
  echo "attributes were removed without retiring this check." >&2
  exit 1
fi
# One alternation: ' t .*::(send|send1|send1_id)(' over demangled names.
pattern=" [tTwW] .*::($(echo "$ops" | paste -sd'|' -))\("

status=0
for bin in "$@"; do
  if [ ! -f "$bin" ]; then
    echo "FAIL: $bin does not exist" >&2
    status=1
    continue
  fi
  # Defined code symbols only (t/T/w/W); undefined refs (U) would already
  # be a link error. Matching the call operator '(' keeps unrelated names
  # (send_fail, send_queue) out.
  outlined=$(nm -C "$bin" 2>/dev/null | grep -E "$pattern" || true)
  if [ -n "$outlined" ]; then
    echo "FAIL: $bin has outlined hot-op symbols (inline budget lost):" >&2
    echo "$outlined" >&2
    status=1
  else
    echo "OK: $bin — hot ops ($(echo "$ops" | paste -sd' ' -)) fully inlined"
  fi
done
exit $status
