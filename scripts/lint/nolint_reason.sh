#!/usr/bin/env bash
# Every NOLINT marker must carry a reason. A bare NOLINT tells a reviewer
# nothing and rots into permanent mystery; the project form is
#
#   // NOLINTNEXTLINE(check-name) -- why this is safe here
#
# i.e. a named check (never a blanket NOLINT) followed by ` -- <reason>`.
# This script enforces both halves over src/ and tests/.
#
#   usage: nolint_reason.sh [dir ...]
set -euo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"
dirs=("$@")
if [ "${#dirs[@]}" -eq 0 ]; then dirs=("$root/src" "$root/tests"); fi

# A conforming marker: NOLINT or NOLINTNEXTLINE, a (check-list), then
# ' -- ' and at least one word of reason.
good='NOLINT(NEXTLINE)?\([^)]+\) -- [^ ]'

fail=0
while IFS= read -r line; do
  if ! echo "$line" | grep -qE "$good"; then
    echo "FAIL: $line"
    fail=1
  fi
done < <(grep -rnH 'NOLINT' "${dirs[@]}" \
           --include='*.h' --include='*.cpp' 2>/dev/null || true)

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "nolint_reason: every NOLINT must name its check(s) and a reason:" >&2
  echo "  // NOLINTNEXTLINE(check-name) -- reason" >&2
  exit 1
fi
echo "OK: all NOLINT markers name a check and carry a reason"
