// Theorem 1 / Corollary 2: BBST construction, positions, warm-up tree.
#include <gtest/gtest.h>

#include "primitives/bbst.h"
#include "primitives/path.h"
#include "testing.h"
#include "util/math_util.h"

namespace dgr {
namespace {

class BbstSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BbstSweep, SearchTreeInvariants) {
  const std::size_t n = GetParam();
  auto net = testing::make_strict_ncc0(n, 1000 + n);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const std::uint64_t before = net.stats().rounds;
  const prim::TreeOverlay tree = prim::build_bbst(net, path);
  const std::uint64_t rounds = net.stats().rounds - before;

  // Binary + spanning + balanced + inorder == path order.
  EXPECT_TRUE(prim::validate_tree(net, tree, path, /*search order*/ true));
  EXPECT_LE(tree.height, ceil_log2(n) + 1);

  // Corollary 2: every node knows its position.
  for (std::size_t i = 0; i < path.order.size(); ++i)
    EXPECT_EQ(path.pos[path.order[i]], static_cast<prim::Position>(i));

  // Theorem 1: O(log n) rounds.
  EXPECT_LE(rounds, 10 * static_cast<std::uint64_t>(ceil_log2(n)) + 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BbstSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 31, 33, 64, 100, 127, 128,
                                           129, 500, 1024, 2000));

TEST(Bbst, SubtreeSizesAreConsistent) {
  auto net = testing::make_strict_ncc0(100, 7);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const prim::TreeOverlay tree = prim::build_bbst(net, path);
  EXPECT_EQ(tree.nodes[tree.root].subtree_size, 100u);
  std::uint64_t leaf_total = 0;
  for (ncc::Slot s = 0; s < 100; ++s) {
    const auto& nd = tree.nodes[s];
    std::uint64_t child_sum = 0;
    if (nd.left != ncc::kNoNode)
      child_sum += tree.nodes[net.slot_of(nd.left)].subtree_size;
    if (nd.right != ncc::kNoNode)
      child_sum += tree.nodes[net.slot_of(nd.right)].subtree_size;
    EXPECT_EQ(nd.subtree_size, child_sum + 1);
    if (child_sum == 0) ++leaf_total;
  }
  EXPECT_GE(leaf_total, 25u);  // balanced binary trees are leaf-heavy
}

TEST(Bbst, SubPathBuildsOnlyOverMembers) {
  auto net = testing::make_strict_ncc0(50, 8);
  prim::PathOverlay full = prim::undirect_initial_path(net);
  prim::TreeOverlay ignored = prim::build_bbst(net, full);
  (void)ignored;

  // Restrict to the first 20 positions.
  prim::PathOverlay sub;
  const std::size_t keep = 20;
  sub.pred.assign(50, ncc::kNoNode);
  sub.succ.assign(50, ncc::kNoNode);
  sub.pos.assign(50, ncc::kNoPosition);
  sub.is_member.assign(50, 0);
  sub.order.assign(full.order.begin(), full.order.begin() + keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const ncc::Slot s = sub.order[i];
    sub.is_member[s] = 1;
    sub.pred[s] = full.pred[s];
    sub.succ[s] = i + 1 < keep ? full.succ[s] : ncc::kNoNode;
  }
  prim::TreeOverlay tree = prim::build_bbst(net, sub);
  EXPECT_EQ(tree.size(), keep);
  EXPECT_TRUE(prim::validate_tree(net, tree, sub, true));
  for (std::size_t i = 0; i < keep; ++i)
    EXPECT_EQ(sub.pos[sub.order[i]], static_cast<prim::Position>(i));
}

class WarmupSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WarmupSweep, BalancedSpanningBinary) {
  const std::size_t n = GetParam();
  auto net = testing::make_strict_ncc0(n, 2000 + n);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const prim::TreeOverlay tree = prim::build_warmup_tree(net, path);
  // Spanning + binary + acyclic (not a search tree).
  EXPECT_TRUE(prim::validate_tree(net, tree, path, /*search order*/ false));
  EXPECT_LE(tree.height, ceil_log2(n) + 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WarmupSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33,
                                           100, 256, 999));

TEST(Warmup, MatchesPaperFigure1Shape) {
  // Path 1..8 (no shuffling, sequential IDs) must reproduce Figure 1:
  // 1 -> (2, 3); 2 -> (4, 6); 3 -> (5, 7); 4 -> (8).
  ncc::Config cfg;
  cfg.shuffle_path = false;
  cfg.random_ids = false;
  cfg.overflow = ncc::OverflowPolicy::kStrict;
  ncc::Network net(8, cfg);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const prim::TreeOverlay tree = prim::build_warmup_tree(net, path);
  auto node = [&](ncc::NodeId id) { return tree.nodes[net.slot_of(id)]; };
  EXPECT_EQ(tree.root, net.slot_of(1));
  EXPECT_EQ(node(1).left, 2u);
  EXPECT_EQ(node(1).right, 3u);
  EXPECT_EQ(node(2).left, 4u);
  EXPECT_EQ(node(2).right, 6u);
  EXPECT_EQ(node(3).left, 5u);
  EXPECT_EQ(node(3).right, 7u);
  EXPECT_EQ(node(4).left, 8u);
  EXPECT_EQ(node(4).right, ncc::kNoNode);
}

TEST(Bbst, MatchesPaperFigure2Property) {
  // Figure 2's defining property: the BBST on the path 1..8 has inorder
  // traversal exactly 1..8 and height 4; the root is the path head.
  ncc::Config cfg;
  cfg.shuffle_path = false;
  cfg.random_ids = false;
  cfg.overflow = ncc::OverflowPolicy::kStrict;
  ncc::Network net(8, cfg);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const prim::TreeOverlay tree = prim::build_bbst(net, path);
  EXPECT_TRUE(prim::validate_tree(net, tree, path, true));
  EXPECT_EQ(tree.root, net.slot_of(1));
  EXPECT_LE(tree.height, 4);
}

}  // namespace
}  // namespace dgr
