// Determinism guarantees of the round-engine datapath.
//
// The engine promises bit-for-bit reproducible transcripts: for a fixed
// seed, the delivered/bounced/dropped outcome of every message is identical
// regardless of the worker thread count, and the oversubscription path
// accepts a uniformly random capacity-sized subset drawn from the per-round
// delivery stream in a fixed, documented order. These tests pin both
// properties so engine rewrites cannot silently change the transcript.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "ncc/trace.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::NodeId;
using ncc::Slot;

// Full-fidelity fingerprint of a finished simulation: the shared engine
// fingerprint (every NetStats field + per-node knowledge; see testing.h)
// plus an order-sensitive checksum of every inbox and bounce observed by
// every node.
struct RunFingerprint {
  testing::NetFingerprint net;
  std::vector<std::uint64_t> inbox_digest;
  std::vector<std::uint64_t> bounce_digest;

  const ncc::NetStats& stats() const { return net.stats; }

  bool operator==(const RunFingerprint& o) const {
    return net == o.net && inbox_digest == o.inbox_digest &&
           bounce_digest == o.bounce_digest;
  }
};

// A seeded lossy + crashy workload: clique knowledge, every node floods a
// random half of its budget (some destinations oversubscribe, so the bounce
// path runs), links drop 20% of traffic, and the referee crashes a few nodes
// mid-run. Exercises every branch of deliver(). With `traced` set a Trace is
// attached, which routes delivery through the reference-sorting compat path —
// its outcomes must be identical to the direct placement path.
RunFingerprint run_lossy_crashy(unsigned threads, bool traced = false) {
  constexpr std::size_t kN = 160;
  ncc::Config cfg;
  cfg.seed = 2024;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  cfg.drop_probability = 0.2;
  ncc::Network net(kN, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);

  for (int r = 0; r < 25; ++r) {
    // Referee-side crash schedule (between rounds, like the §8 experiments).
    if (r == 5) net.crash(3);
    if (r == 5) net.crash(70);
    if (r == 12) net.crash(141);
    net.round([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      for (const auto& m : ctx.inbox())
        in = hash_mix(in, m.src, m.word(0));
      auto& bo = fp.bounce_digest[ctx.slot()];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);

      const auto ids = ctx.all_ids();
      const int sends = ctx.capacity() / 2;
      for (int i = 0; i < sends; ++i) {
        // Mostly uniform traffic, with a quarter aimed at a 4-node hot set
        // so some destinations reliably oversubscribe and bounce.
        const std::size_t pick = ctx.rng().chance(0.25)
                                     ? ctx.rng().below(4)
                                     : ctx.rng().below(ids.size());
        ctx.send(ids[pick], make_msg(5).push(ctx.rng().below(1u << 20)));
      }
    });
  }

  fp.net = testing::net_fingerprint(net);
  return fp;
}

TEST(EngineDeterminism, LossyCrashyTranscriptInvariantAcrossThreadCounts) {
  const RunFingerprint serial = run_lossy_crashy(1);
  EXPECT_TRUE(serial == run_lossy_crashy(2));
  EXPECT_TRUE(serial == run_lossy_crashy(8));

  // Attaching a trace switches deliver() onto its event-ordered compat path;
  // the observable transcript must not change.
  EXPECT_TRUE(serial == run_lossy_crashy(1, /*traced=*/true));
  EXPECT_TRUE(serial == run_lossy_crashy(8, /*traced=*/true));

  // Sanity: the workload really exercised every delivery branch.
  EXPECT_GT(serial.stats().messages_dropped, 0u);
  EXPECT_GT(serial.stats().messages_bounced, 0u);
  EXPECT_GT(serial.stats().messages_delivered, 0u);
}

// The oversubscription path must accept exactly the subset selected by a
// partial Fisher-Yates over arrival order, driven by the per-round delivery
// stream Rng(hash_mix(seed, 0xDE11FE12, round)) — the contract the engine
// has had since the seed. Reimplement the draw here and check the engine's
// trace against it message by message.
TEST(EngineDeterminism, OverflowBouncesExactReferenceSubset) {
  constexpr std::size_t kN = 64;
  constexpr std::uint64_t kSeed = 97;
  ncc::Config cfg;
  cfg.seed = kSeed;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(kN, cfg);
  const auto cap = static_cast<std::size_t>(net.capacity());

  ncc::Trace trace;
  net.set_trace(&trace);
  const NodeId target = net.id_of(0);
  // Slots 1..63 each send one message to slot 0: 63 arrivals, capacity 24.
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) ctx.send(target, make_msg(1));
  });
  net.set_trace(nullptr);

  const std::size_t arrivals = kN - 1;
  ASSERT_GT(arrivals, cap);

  // Reference draw. Arrival order is source-slot order (1, 2, ..., 63); no
  // link loss is configured, so the round's delivery stream is consumed only
  // by the subset selection.
  Rng reference(hash_mix(kSeed, 0xDE11FE12ULL, 0));
  std::vector<std::size_t> idx(arrivals);
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(reference.below(idx.size() - i));
    std::swap(idx[i], idx[j]);
  }
  std::vector<bool> accepted(arrivals, false);
  for (std::size_t i = 0; i < cap; ++i) accepted[idx[i]] = true;

  ASSERT_EQ(trace.events().size(), arrivals);
  std::size_t delivered = 0;
  for (const auto& e : trace.events()) {
    ASSERT_GE(e.src, 1u);
    const bool expect_deliver = accepted[e.src - 1];
    EXPECT_EQ(e.outcome, expect_deliver ? ncc::MessageOutcome::kDelivered
                                        : ncc::MessageOutcome::kBounced)
        << "message from slot " << e.src;
    delivered += (e.outcome == ncc::MessageOutcome::kDelivered);
  }
  EXPECT_EQ(delivered, cap);
  EXPECT_EQ(net.stats().messages_bounced, arrivals - cap);
}

// Strict mode: exactly-capacity fan-in is legal, one more message throws.
TEST(EngineDeterminism, StrictModeBoundaryExactCapacity) {
  ncc::Config cfg;
  cfg.seed = 31;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.overflow = ncc::OverflowPolicy::kStrict;

  {
    ncc::Network net(128, cfg);
    const auto cap = static_cast<std::size_t>(net.capacity());
    const NodeId target = net.id_of(0);
    net.round([&](Ctx& ctx) {
      if (ctx.slot() >= 1 && ctx.slot() <= cap) ctx.send(target, make_msg(1));
    });
    std::size_t seen = 0;
    net.round([&](Ctx& ctx) {
      if (ctx.slot() == 0) seen = ctx.inbox().size();
    });
    EXPECT_EQ(seen, cap);
  }
  {
    ncc::Network net(128, cfg);
    const auto cap = static_cast<std::size_t>(net.capacity());
    const NodeId target = net.id_of(0);
    EXPECT_THROW(
        {
          net.round([&](Ctx& ctx) {
            if (ctx.slot() >= 1 && ctx.slot() <= cap + 1)
              ctx.send(target, make_msg(1));
          });
          net.round([](Ctx&) {});
        },
        CheckError);
  }
}

// A body may catch a send's CheckError and carry on (check.h documents the
// throw for exactly that); the rejected message must leave no trace — not in
// the outbox stream, not in the stats, and never in another node's inbox.
TEST(EngineDeterminism, CaughtFailedSendLeavesNoTrace) {
  ncc::Config cfg;
  cfg.seed = 55;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(8, cfg);
  const auto cap = net.capacity();
  const NodeId hot = net.id_of(1);
  const NodeId quiet = net.id_of(2);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 5) {
      for (int i = 0; i < cap; ++i) ctx.send(hot, make_msg(99).push(1));
      EXPECT_THROW(ctx.send(hot, make_msg(99).push(1)), CheckError);
    }
    if (ctx.slot() == 0) ctx.send(quiet, make_msg(7).push(42));
  });
  std::size_t quiet_seen = 0;
  std::size_t hot_seen = 0;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 2) {
      quiet_seen = ctx.inbox().size();
      ASSERT_EQ(quiet_seen, 1u);
      EXPECT_EQ(ctx.inbox()[0].tag, 7u);
      EXPECT_EQ(ctx.inbox()[0].src, net.id_of(0));
    }
    if (ctx.slot() == 1) hot_seen = ctx.inbox().size();
  });
  EXPECT_EQ(quiet_seen, 1u);
  EXPECT_EQ(hot_seen, static_cast<std::size_t>(cap));
  EXPECT_EQ(net.stats().messages_sent, static_cast<std::uint64_t>(cap) + 1);
}

// Same property for the forwarded-ID (KT0 referee-leakage) check, which
// rejects on the second validation branch.
TEST(EngineDeterminism, CaughtUnknownForwardLeavesNoTrace) {
  auto net = testing::make_ncc0(10, 21);
  const auto& order = net.path_order();
  const Slot head = order.front();
  const NodeId succ = net.id_of(order[1]);
  const NodeId stranger = net.id_of(order.back());
  ASSERT_FALSE(net.node_knows(head, stranger));
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != head) return;
    EXPECT_THROW(ctx.send(succ, make_msg(1).push_id(stranger)), CheckError);
    ctx.send(succ, make_msg(2).push(11));
  });
  std::size_t seen = 0;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != order[1]) return;
    seen = ctx.inbox().size();
    ASSERT_EQ(seen, 1u);
    EXPECT_EQ(ctx.inbox()[0].tag, 2u);
  });
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(net.stats().messages_sent, 1u);
}

// NCC1 semantics: common knowledge covers every ID, so a clique node may
// forward an arbitrary handle as an ID word without the engine resolving it
// against the node table (the word may be an application-level value). On
// NCC0 the same send is a KT0 violation (CaughtUnknownForwardLeavesNoTrace
// above); this pins the clique side so datapath rewrites cannot silently
// tighten it.
TEST(EngineDeterminism, CliqueForwardsUnresolvedIdWords) {
  auto net = testing::make_ncc1(4, 44);
  const NodeId handle = 0xDEADBEEFULL;  // no node has this ID
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0) ctx.send(net.id_of(1), make_msg(6).push_id(handle));
  });
  std::uint64_t seen = 0;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 1 && !ctx.inbox().empty())
      seen = ctx.inbox()[0].id_word(0);
  });
  EXPECT_EQ(seen, handle);
}

// A hand-corrupted Message::size (bypassing push()'s guard) must be rejected
// before the wire encoder touches it, not read out of bounds.
TEST(EngineDeterminism, CorruptMessageSizeRejected) {
  auto net = testing::make_ncc1(4, 33);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) return;
    ncc::Message m = make_msg(3);
    m.size = 9;  // > kMaxWords; only possible by direct field writes
    EXPECT_THROW(ctx.send(net.id_of(1), m), CheckError);
  });
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

// Same input class for id_mask: a bit at or above size (only possible by
// direct field writes — push_id can't produce it) would make the trailer
// sizing disagree with the trailer fill and ship an uninitialized trailer
// word into the delivery learn pass. Must be rejected before encoding, on
// learning and clique networks alike.
TEST(EngineDeterminism, CorruptIdMaskBeyondSizeRejected) {
  auto net0 = testing::make_ncc0(4, 34);
  const Slot head = net0.path_order().front();
  const NodeId succ = net0.id_of(net0.path_order()[1]);
  net0.round([&](Ctx& ctx) {
    if (ctx.slot() != head) return;
    ncc::Message m = make_msg(3).push(7);  // size 1
    m.id_mask = 0b10;  // flags words[1], which is not part of the payload
    EXPECT_THROW(ctx.send(succ, m), CheckError);
  });
  EXPECT_EQ(net0.stats().messages_sent, 0u);

  auto net1 = testing::make_ncc1(4, 35);
  net1.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) return;
    ncc::Message m = make_msg(3);  // size 0
    m.id_mask = 0b1;
    EXPECT_THROW(ctx.send(net1.id_of(1), m), CheckError);
  });
  EXPECT_EQ(net1.stats().messages_sent, 0u);
}

// Active-set scheduling: a frontier-driven workload — seeded by a referee
// wake, spread by receipt, sustained by self-wakes and bounce retries, with
// link loss and mid-run crashes — must produce a bit-for-bit identical
// transcript for any thread count, for the dense-dispatch fallback
// (Config::sparse_rounds = false), and under a trace attachment. The body
// honours the inactive-silence contract: a slot acts only on evidence in
// its own state (inbox, bounces, its remembered self-wake, being the
// seeded starter), so dense dispatch runs it as a no-op everywhere else.
RunFingerprint run_active_wave(unsigned threads, bool sparse,
                               bool traced = false) {
  constexpr std::size_t kN = 160;
  ncc::Config cfg;
  cfg.seed = 4040;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  cfg.sparse_rounds = sparse;
  cfg.drop_probability = 0.1;
  ncc::Network net(kN, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);

  std::vector<std::uint8_t> woke(kN, 0);
  net.wake(7);  // referee seed: slot 7 starts the wave
  for (int r = 0; r < 25; ++r) {
    if (r == 6) net.crash(31);
    if (r == 14) net.crash(8);
    net.round_active([&](Ctx& ctx) {
      const Slot s = ctx.slot();
      auto& in = fp.inbox_digest[s];
      for (const auto& m : ctx.inbox()) in = hash_mix(in, m.src, m.word(0));
      auto& bo = fp.bounce_digest[s];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);
      const bool started = r == 0 && s == 7;
      if (!started && ctx.inbox().empty() && ctx.bounced().empty() &&
          !woke[s]) {
        return;  // inactive-silent: no sends, no RNG, no state change
      }
      woke[s] = 0;
      const auto ids = ctx.all_ids();
      const int fan = 2 + static_cast<int>(ctx.rng().below(6));
      for (int i = 0; i < fan; ++i) {
        // Half the traffic hits a 2-slot hot set so receivers oversubscribe
        // and the bounce path keeps feeding the frontier.
        const std::size_t pick = ctx.rng().chance(0.5)
                                     ? ctx.rng().below(2)
                                     : ctx.rng().below(ids.size());
        ctx.send(ids[pick], make_msg(9).push(ctx.rng().below(1u << 16)));
      }
      if (ctx.rng().chance(0.2)) {
        ctx.wake();
        woke[s] = 1;  // node-local memory of the self-wake
      }
    });
  }

  fp.net = testing::net_fingerprint(net);
  return fp;
}

TEST(EngineDeterminism, ActiveWaveTranscriptInvariantAcrossSchedulers) {
  const RunFingerprint ref = run_active_wave(1, /*sparse=*/true);
  // Any thread count, sparse.
  EXPECT_TRUE(ref == run_active_wave(2, true));
  EXPECT_TRUE(ref == run_active_wave(8, true));
  // Dense-dispatch fallback, any thread count.
  EXPECT_TRUE(ref == run_active_wave(1, false));
  EXPECT_TRUE(ref == run_active_wave(8, false));
  // Traced compat path on top of sparse scheduling.
  EXPECT_TRUE(ref == run_active_wave(1, true, /*traced=*/true));
  EXPECT_TRUE(ref == run_active_wave(8, true, /*traced=*/true));

  // The wave genuinely exercised every delivery branch.
  EXPECT_GT(ref.stats().messages_dropped, 0u);
  EXPECT_GT(ref.stats().messages_bounced, 0u);
  EXPECT_GT(ref.stats().messages_delivered, 0u);
}

// The dense-round fast path (deliver() re-streams record headers instead of
// folding send-side histograms once touched density crosses the 1/16 sweep
// threshold) is predicted from the previous round's density, so a workload
// that oscillates between all-dense floods and single-sender trickles
// crosses the mode boundary in both directions — including rounds where the
// prediction is wrong. The mode is bookkeeping strategy only: transcripts
// must stay bit-identical across thread counts, the traced compat path, and
// a lossy variant (which exercises the non-fast streaming pass under a
// dense prediction).
RunFingerprint run_density_oscillation(unsigned threads, bool traced,
                                       double drop) {
  constexpr std::size_t kN = 192;
  ncc::Config cfg;
  cfg.seed = 6060;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  cfg.drop_probability = drop;
  ncc::Network net(kN, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);

  for (int r = 0; r < 24; ++r) {
    net.round([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      for (const auto m : ctx.inbox_view()) in = hash_mix(in, m.src(), m.word(0));
      auto& bo = fp.bounce_digest[ctx.slot()];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);
      const auto ids = ctx.all_ids();
      // 4-round cycle: two flood rounds (dense), two trickle rounds where
      // only slot 0 sends one message (sparse) — each boundary runs one
      // round under a stale density prediction.
      if (r % 4 < 2) {
        const int sends = ctx.capacity() / 2;
        for (int i = 0; i < sends; ++i) {
          const std::size_t pick = ctx.rng().chance(0.2)
                                       ? ctx.rng().below(3)
                                       : ctx.rng().below(ids.size());
          ctx.send(ids[pick], make_msg(11).push(ctx.rng().below(1u << 18)));
        }
      } else if (ctx.slot() == 0) {
        ctx.send(ids[ctx.rng().below(ids.size())], make_msg(12).push(r));
      }
    });
  }

  fp.net = testing::net_fingerprint(net);
  return fp;
}

TEST(EngineDeterminism, DenseFastPathTranscriptInvariant) {
  const RunFingerprint ref = run_density_oscillation(1, false, 0.0);
  EXPECT_TRUE(ref == run_density_oscillation(4, false, 0.0));
  EXPECT_TRUE(ref == run_density_oscillation(8, false, 0.0));
  // Traced compat path: delivery switches to the reference sort while the
  // dense prediction keeps flipping.
  EXPECT_TRUE(ref == run_density_oscillation(1, true, 0.0));
  // The flood rounds genuinely oversubscribed the hot set.
  EXPECT_GT(ref.stats().messages_bounced, 0u);

  const RunFingerprint lossy = run_density_oscillation(1, false, 0.15);
  EXPECT_TRUE(lossy == run_density_oscillation(8, false, 0.15));
  EXPECT_TRUE(lossy == run_density_oscillation(8, true, 0.15));
  EXPECT_GT(lossy.stats().messages_dropped, 0u);
}

TEST(EngineDeterminism, CrashedCountIsIncrementalAndIdempotent) {
  auto net = testing::make_ncc0(50, 8);
  EXPECT_EQ(net.crashed_count(), 0u);
  net.crash(7);
  EXPECT_EQ(net.crashed_count(), 1u);
  net.crash(7);  // crashing a dead node is a no-op
  EXPECT_EQ(net.crashed_count(), 1u);
  net.crash(0);
  net.crash(49);
  EXPECT_EQ(net.crashed_count(), 3u);
  EXPECT_TRUE(net.is_crashed(7));
  EXPECT_FALSE(net.is_crashed(8));
}

}  // namespace
}  // namespace dgr
