// Determinism guarantees of the round-engine datapath.
//
// The engine promises bit-for-bit reproducible transcripts: for a fixed
// seed, the delivered/bounced/dropped outcome of every message is identical
// regardless of the worker thread count, and the oversubscription path
// accepts a uniformly random capacity-sized subset drawn from the per-round
// delivery stream in a fixed, documented order. These tests pin both
// properties so engine rewrites cannot silently change the transcript.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "ncc/trace.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::NodeId;
using ncc::Slot;

// Full-fidelity fingerprint of a finished simulation: every NetStats scalar
// plus per-node knowledge sizes and an order-sensitive checksum of every
// inbox and bounce observed by every node.
struct RunFingerprint {
  ncc::NetStats stats;
  std::vector<std::size_t> knowledge;
  std::vector<std::uint64_t> inbox_digest;
  std::vector<std::uint64_t> bounce_digest;

  bool operator==(const RunFingerprint& o) const {
    return stats.rounds == o.stats.rounds &&
           stats.messages_sent == o.stats.messages_sent &&
           stats.messages_delivered == o.stats.messages_delivered &&
           stats.messages_bounced == o.stats.messages_bounced &&
           stats.messages_dropped == o.stats.messages_dropped &&
           stats.max_send_in_round == o.stats.max_send_in_round &&
           stats.max_recv_in_round == o.stats.max_recv_in_round &&
           knowledge == o.knowledge && inbox_digest == o.inbox_digest &&
           bounce_digest == o.bounce_digest;
  }
};

// A seeded lossy + crashy workload: clique knowledge, every node floods a
// random half of its budget (some destinations oversubscribe, so the bounce
// path runs), links drop 20% of traffic, and the referee crashes a few nodes
// mid-run. Exercises every branch of deliver(). With `traced` set a Trace is
// attached, which routes delivery through the reference-sorting compat path —
// its outcomes must be identical to the direct placement path.
RunFingerprint run_lossy_crashy(unsigned threads, bool traced = false) {
  constexpr std::size_t kN = 160;
  ncc::Config cfg;
  cfg.seed = 2024;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  cfg.drop_probability = 0.2;
  ncc::Network net(kN, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);

  for (int r = 0; r < 25; ++r) {
    // Referee-side crash schedule (between rounds, like the §8 experiments).
    if (r == 5) net.crash(3);
    if (r == 5) net.crash(70);
    if (r == 12) net.crash(141);
    net.round([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      for (const auto& m : ctx.inbox())
        in = hash_mix(in, m.src, m.word(0));
      auto& bo = fp.bounce_digest[ctx.slot()];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);

      const auto ids = ctx.all_ids();
      const int sends = ctx.capacity() / 2;
      for (int i = 0; i < sends; ++i) {
        // Mostly uniform traffic, with a quarter aimed at a 4-node hot set
        // so some destinations reliably oversubscribe and bounce.
        const std::size_t pick = ctx.rng().chance(0.25)
                                     ? ctx.rng().below(4)
                                     : ctx.rng().below(ids.size());
        ctx.send(ids[pick], make_msg(5).push(ctx.rng().below(1u << 20)));
      }
    });
  }

  fp.stats = net.stats();
  for (Slot s = 0; s < kN; ++s) fp.knowledge.push_back(net.knowledge_size(s));
  return fp;
}

TEST(EngineDeterminism, LossyCrashyTranscriptInvariantAcrossThreadCounts) {
  const RunFingerprint serial = run_lossy_crashy(1);
  EXPECT_TRUE(serial == run_lossy_crashy(2));
  EXPECT_TRUE(serial == run_lossy_crashy(8));

  // Attaching a trace switches deliver() onto its event-ordered compat path;
  // the observable transcript must not change.
  EXPECT_TRUE(serial == run_lossy_crashy(1, /*traced=*/true));
  EXPECT_TRUE(serial == run_lossy_crashy(8, /*traced=*/true));

  // Sanity: the workload really exercised every delivery branch.
  EXPECT_GT(serial.stats.messages_dropped, 0u);
  EXPECT_GT(serial.stats.messages_bounced, 0u);
  EXPECT_GT(serial.stats.messages_delivered, 0u);
}

// The oversubscription path must accept exactly the subset selected by a
// partial Fisher-Yates over arrival order, driven by the per-round delivery
// stream Rng(hash_mix(seed, 0xDE11FE12, round)) — the contract the engine
// has had since the seed. Reimplement the draw here and check the engine's
// trace against it message by message.
TEST(EngineDeterminism, OverflowBouncesExactReferenceSubset) {
  constexpr std::size_t kN = 64;
  constexpr std::uint64_t kSeed = 97;
  ncc::Config cfg;
  cfg.seed = kSeed;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(kN, cfg);
  const auto cap = static_cast<std::size_t>(net.capacity());

  ncc::Trace trace;
  net.set_trace(&trace);
  const NodeId target = net.id_of(0);
  // Slots 1..63 each send one message to slot 0: 63 arrivals, capacity 24.
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) ctx.send(target, make_msg(1));
  });
  net.set_trace(nullptr);

  const std::size_t arrivals = kN - 1;
  ASSERT_GT(arrivals, cap);

  // Reference draw. Arrival order is source-slot order (1, 2, ..., 63); no
  // link loss is configured, so the round's delivery stream is consumed only
  // by the subset selection.
  Rng reference(hash_mix(kSeed, 0xDE11FE12ULL, 0));
  std::vector<std::size_t> idx(arrivals);
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(reference.below(idx.size() - i));
    std::swap(idx[i], idx[j]);
  }
  std::vector<bool> accepted(arrivals, false);
  for (std::size_t i = 0; i < cap; ++i) accepted[idx[i]] = true;

  ASSERT_EQ(trace.events().size(), arrivals);
  std::size_t delivered = 0;
  for (const auto& e : trace.events()) {
    ASSERT_GE(e.src, 1u);
    const bool expect_deliver = accepted[e.src - 1];
    EXPECT_EQ(e.outcome, expect_deliver ? ncc::MessageOutcome::kDelivered
                                        : ncc::MessageOutcome::kBounced)
        << "message from slot " << e.src;
    delivered += (e.outcome == ncc::MessageOutcome::kDelivered);
  }
  EXPECT_EQ(delivered, cap);
  EXPECT_EQ(net.stats().messages_bounced, arrivals - cap);
}

// Strict mode: exactly-capacity fan-in is legal, one more message throws.
TEST(EngineDeterminism, StrictModeBoundaryExactCapacity) {
  ncc::Config cfg;
  cfg.seed = 31;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.overflow = ncc::OverflowPolicy::kStrict;

  {
    ncc::Network net(128, cfg);
    const auto cap = static_cast<std::size_t>(net.capacity());
    const NodeId target = net.id_of(0);
    net.round([&](Ctx& ctx) {
      if (ctx.slot() >= 1 && ctx.slot() <= cap) ctx.send(target, make_msg(1));
    });
    std::size_t seen = 0;
    net.round([&](Ctx& ctx) {
      if (ctx.slot() == 0) seen = ctx.inbox().size();
    });
    EXPECT_EQ(seen, cap);
  }
  {
    ncc::Network net(128, cfg);
    const auto cap = static_cast<std::size_t>(net.capacity());
    const NodeId target = net.id_of(0);
    EXPECT_THROW(
        {
          net.round([&](Ctx& ctx) {
            if (ctx.slot() >= 1 && ctx.slot() <= cap + 1)
              ctx.send(target, make_msg(1));
          });
          net.round([](Ctx&) {});
        },
        CheckError);
  }
}

// A body may catch a send's CheckError and carry on (check.h documents the
// throw for exactly that); the rejected message must leave no trace — not in
// the outbox stream, not in the stats, and never in another node's inbox.
TEST(EngineDeterminism, CaughtFailedSendLeavesNoTrace) {
  ncc::Config cfg;
  cfg.seed = 55;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(8, cfg);
  const auto cap = net.capacity();
  const NodeId hot = net.id_of(1);
  const NodeId quiet = net.id_of(2);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 5) {
      for (int i = 0; i < cap; ++i) ctx.send(hot, make_msg(99).push(1));
      EXPECT_THROW(ctx.send(hot, make_msg(99).push(1)), CheckError);
    }
    if (ctx.slot() == 0) ctx.send(quiet, make_msg(7).push(42));
  });
  std::size_t quiet_seen = 0;
  std::size_t hot_seen = 0;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 2) {
      quiet_seen = ctx.inbox().size();
      ASSERT_EQ(quiet_seen, 1u);
      EXPECT_EQ(ctx.inbox()[0].tag, 7u);
      EXPECT_EQ(ctx.inbox()[0].src, net.id_of(0));
    }
    if (ctx.slot() == 1) hot_seen = ctx.inbox().size();
  });
  EXPECT_EQ(quiet_seen, 1u);
  EXPECT_EQ(hot_seen, static_cast<std::size_t>(cap));
  EXPECT_EQ(net.stats().messages_sent, static_cast<std::uint64_t>(cap) + 1);
}

// Same property for the forwarded-ID (KT0 referee-leakage) check, which
// rejects on the second validation branch.
TEST(EngineDeterminism, CaughtUnknownForwardLeavesNoTrace) {
  auto net = testing::make_ncc0(10, 21);
  const auto& order = net.path_order();
  const Slot head = order.front();
  const NodeId succ = net.id_of(order[1]);
  const NodeId stranger = net.id_of(order.back());
  ASSERT_FALSE(net.node_knows(head, stranger));
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != head) return;
    EXPECT_THROW(ctx.send(succ, make_msg(1).push_id(stranger)), CheckError);
    ctx.send(succ, make_msg(2).push(11));
  });
  std::size_t seen = 0;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != order[1]) return;
    seen = ctx.inbox().size();
    ASSERT_EQ(seen, 1u);
    EXPECT_EQ(ctx.inbox()[0].tag, 2u);
  });
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(net.stats().messages_sent, 1u);
}

// A hand-corrupted Message::size (bypassing push()'s guard) must be rejected
// before the wire encoder touches it, not read out of bounds.
TEST(EngineDeterminism, CorruptMessageSizeRejected) {
  auto net = testing::make_ncc1(4, 33);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) return;
    ncc::Message m = make_msg(3);
    m.size = 9;  // > kMaxWords; only possible by direct field writes
    EXPECT_THROW(ctx.send(net.id_of(1), m), CheckError);
  });
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(EngineDeterminism, CrashedCountIsIncrementalAndIdempotent) {
  auto net = testing::make_ncc0(50, 8);
  EXPECT_EQ(net.crashed_count(), 0u);
  net.crash(7);
  EXPECT_EQ(net.crashed_count(), 1u);
  net.crash(7);  // crashing a dead node is a no-op
  EXPECT_EQ(net.crashed_count(), 1u);
  net.crash(0);
  net.crash(49);
  EXPECT_EQ(net.crashed_count(), 3u);
  EXPECT_TRUE(net.is_crashed(7));
  EXPECT_FALSE(net.is_crashed(8));
}

}  // namespace
}  // namespace dgr
