// TSan-targeted race stress for the shared-executor world.
//
// Everything that may legally race on the process-wide Executor does so at
// once here: two Networks (a dense hot-spot flood that overflows receivers
// — exercising the parallel placement, learn, and overflow pre-draw tails —
// and a sparse active-set wave), a RealizationService running cold
// simulations on driver threads, a shared ArenaPool recycling RoundScratch
// bundles between the racing Networks, and a raw executor client hammering
// parallel_for. Many small rounds maximize the cross-client interleavings
// per second of test time.
//
// The assertions are the engine's whole correctness story: after the race,
// every client's transcript fingerprint must be bit-identical to a solo
// serial run. Under -DDGR_TSAN=ON this is also the dynamic-race gate CI
// runs at threads {2,4} — any unsynchronized access in the executor, the
// delivery tail, the pool, or the serve pipeline fires a TSan report even
// when the fingerprints happen to match.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "ncc/arena.h"
#include "ncc/executor.h"
#include "ncc/network.h"
#include "serve/request.h"
#include "serve/service.h"
#include "testing.h"

namespace dgr {
namespace {

constexpr std::size_t kN = 96;
constexpr int kRounds = 30;
constexpr std::size_t kHot = 4;  // fan-in hot spots (forced overflow)

/// Dense hot-spot flood: every node folds its inbox, then splits its burst
/// between kHot fixed destinations (driving them far past capacity — the
/// overflow pre-draw and bounce paths stay busy) and uniformly random
/// targets. Runs with bounce overflow so rounds never throw.
testing::NetFingerprint run_flood(unsigned threads, std::uint64_t seed,
                                  ncc::ArenaPool* pool) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.overflow = ncc::OverflowPolicy::kBounce;
  cfg.arena_pool = pool;
  ncc::Network net(kN, cfg);
  const auto burst = static_cast<std::size_t>(net.capacity()) - 2;
  for (int r = 0; r < kRounds; ++r) {
    net.round([&](ncc::Ctx& ctx) {
      std::uint64_t acc = 0;
      for (const auto m : ctx.inbox_view()) acc += m.word(0);
      for (const auto& b : ctx.bounced()) acc ^= b.msg.words[0];
      const auto ids = ctx.all_ids();
      for (std::size_t i = 0; i < burst; ++i) {
        const bool hot = (i & 1) == 0;
        const std::size_t pick = hot ? ctx.rng().below(kHot)
                                     : ctx.rng().below(ids.size());
        ctx.send1(ids[pick], 7, acc + i);
      }
    });
  }
  return testing::net_fingerprint(net);
}

/// Sparse active-set wave (inactive-silent body): the other scheduler, so
/// the race also covers frontier bookkeeping and sparse dispatch.
testing::NetFingerprint run_wave(unsigned threads, std::uint64_t seed,
                                 ncc::ArenaPool* pool) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.arena_pool = pool;
  ncc::Network net(kN, cfg);
  net.wake(5);
  for (int r = 0; r < kRounds && net.has_active(); ++r) {
    net.round_active([&](ncc::Ctx& ctx) {
      bool token = ctx.slot() == 5 && r == 0;
      for (const auto m : ctx.inbox_view()) token |= m.tag() == 9;
      if (!token) return;
      const auto ids = ctx.all_ids();
      for (int k = 0; k < 3; ++k) {
        ctx.send1(ids[ctx.rng().below(ids.size())], 9,
                  ctx.rng().below(1u << 16));
      }
    });
  }
  return testing::net_fingerprint(net);
}

/// One serve client wave: a handful of small realization requests (three
/// distinct keys, repeated — so the cache hit/coalescing paths race the
/// cold runs). Returns the number of validated answers.
std::size_t run_serve_wave() {
  serve::ServiceConfig cfg;
  cfg.drivers = 2;
  cfg.net_threads = 2;
  serve::RealizationService service(cfg);
  std::vector<std::future<serve::RealizationService::Result>> futures;
  for (int i = 0; i < 12; ++i) {
    serve::Request req;
    // A cycle's degree multiset (all 2s) is always realizable; the size
    // varies by i so three distinct cache keys are in flight at once.
    req.degrees.assign(16 + 4 * static_cast<std::size_t>(i % 3), 2);
    req.seed = 7;
    futures.push_back(service.submit(std::move(req)));
  }
  std::size_t validated = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r && r->validated && r->realizable) ++validated;
  }
  return validated;
}

TEST(RaceStress, NetworksServeAndPoolOnSharedExecutor) {
  // Solo serial references (threads=1 never touches the executor).
  const auto ref_flood = run_flood(1, 101, nullptr);
  const auto ref_wave = run_wave(1, 202, nullptr);
  ASSERT_EQ(run_serve_wave(), 12u);

  for (const unsigned threads : {2u, 4u}) {
    // One pool shared by BOTH racing Networks: acquire/release and the
    // sanitize-on-release sweep race each other and the serve drivers.
    ncc::ArenaPool pool(4);
    testing::NetFingerprint flood_fp, wave_fp;
    std::size_t served = 0;
    std::uint64_t hammered = 0;

    std::thread t_flood([&] { flood_fp = run_flood(threads, 101, &pool); });
    std::thread t_wave([&] { wave_fp = run_wave(threads, 202, &pool); });
    std::thread t_serve([&] { served = run_serve_wave(); });
    std::thread t_hammer([&] {
      // A raw executor client keeps the worker pool saturated with alien
      // tasks so Network jobs always contend for claims.
      auto& exec = ncc::Executor::instance();
      const auto lease = exec.lease(threads);
      for (int rep = 0; rep < 40; ++rep) {
        std::vector<std::uint64_t> cell(64, 0);
        exec.parallel_for(lease, cell.size(),
                          [&](std::size_t i) { cell[i] = i * i; });
        for (const std::uint64_t v : cell) hammered += v;
      }
    });
    t_flood.join();
    t_wave.join();
    t_serve.join();
    t_hammer.join();

    EXPECT_TRUE(ref_flood == flood_fp)
        << "flood transcript changed under contention, threads=" << threads;
    EXPECT_TRUE(ref_wave == wave_fp)
        << "wave transcript changed under contention, threads=" << threads;
    EXPECT_EQ(served, 12u) << "serve wave lost answers, threads=" << threads;
    EXPECT_EQ(hammered, 40u * 85344u);  // 40 * sum(i^2, i<64)
    // The racing Networks returned their bundles; the pool must have
    // retained at most its bound and every bundle must be clean (the
    // release-side NCC_INVARIANT would have thrown otherwise).
    EXPECT_LE(pool.free_count(), 4u);
    EXPECT_GE(pool.stats().acquires, 2u);
  }
}

}  // namespace
}  // namespace dgr
