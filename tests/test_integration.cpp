// Cross-module integration: full pipelines, determinism across thread
// counts, NCC0 vs NCC1 equivalence of results.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "graph/tree_metrics.h"
#include "realization/connectivity.h"
#include "realization/explicit_degree.h"
#include "realization/tree_realization.h"
#include "realization/validate.h"
#include "seq/connectivity_baseline.h"
#include "seq/havel_hakimi.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr::realize {
namespace {

TEST(Integration, DistributedMatchesSequentialVerdicts) {
  Rng rng(21);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 3 + rng.below(48);
    graph::DegreeSequence d(n);
    for (auto& x : d) x = rng.below(n);
    auto net = testing::make_ncc0(n, 100 + trial);
    const auto dist = realize_degrees_implicit(net, d);
    const auto seq_graph = seq::hh_realize(d);
    EXPECT_EQ(dist.realizable, seq_graph.has_value());
    if (dist.realizable) {
      // Both realizations carry the same per-node degrees.
      const auto g = graph_from_stored(net, dist.stored);
      EXPECT_EQ(g.degree_sequence(), seq_graph->degree_sequence());
    }
  }
}

TEST(Integration, SameSeedSameRealization) {
  const auto d = graph::regular_sequence(100, 5);
  auto run = [&](unsigned threads) {
    ncc::Config cfg;
    cfg.seed = 33;
    cfg.threads = threads;
    ncc::Network net(100, cfg);
    const auto r = realize_degrees_implicit(net, d);
    return std::make_pair(r.stored, net.stats().rounds);
  };
  const auto a = run(1);
  const auto b = run(6);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Integration, Ncc1RunsNcc0Algorithms) {
  // Remark in §2: NCC0 algorithms run unchanged in NCC1.
  const auto d = graph::regular_sequence(64, 6);
  auto net = testing::make_ncc1(64, 5);
  const auto r = realize_degrees_explicit(net, d);
  ASSERT_TRUE(r.realizable);
  for (ncc::Slot s = 0; s < net.n(); ++s)
    EXPECT_EQ(r.adjacency[s].size(), 6u);
}

TEST(Integration, OverlayPipelineDegreeThenConnectivityStyle) {
  // A realistic composite: realize a bounded-degree overlay, then check a
  // connectivity overlay built by the other algorithm on the same network
  // instance family.
  const std::size_t n = 48;
  Rng rng(6);
  const auto d = graph::gnp_sequence(n, 0.12, rng);
  auto net = testing::make_ncc0(n, 6);
  const auto deg = realize_degrees_explicit(net, d);
  ASSERT_TRUE(deg.realizable);

  const auto rho = graph::uniform_thresholds(n, 6, rng);
  auto net2 = testing::make_ncc0(n, 7);
  const auto conn = realize_connectivity_ncc0(net2, rho);
  ASSERT_TRUE(conn.realizable);
  const auto g = graph_from_stored(net2, conn.stored);
  Rng vrng(8);
  EXPECT_FALSE(seq::find_threshold_violation(g, rho, vrng).has_value());
}

TEST(Integration, TreePipelineProducesUsableOverlay) {
  const std::size_t n = 64;
  Rng rng(9);
  const auto d = graph::random_tree_sequence(n, rng);
  auto net = testing::make_ncc0(n, 9);
  const auto tree = realize_tree_greedy(net, d);
  ASSERT_TRUE(tree.realizable);
  const auto g = graph_from_stored(net, tree.stored);
  ASSERT_TRUE(g.is_tree());
  // The overlay supports broadcast in diameter rounds — sanity: diameter
  // is at most n-1 and at least log-ish of n for bounded degree.
  const auto diam = graph::tree_diameter(g);
  EXPECT_GE(diam, 1u);
  EXPECT_LE(diam, static_cast<std::uint64_t>(n - 1));
}

}  // namespace
}  // namespace dgr::realize
