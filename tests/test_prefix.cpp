// Distributed prefix sums over the BBST (used by Algorithms 4/5).
#include <gtest/gtest.h>

#include "primitives/bbst.h"
#include "primitives/path.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

class PrefixSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(PrefixSweep, MatchesSequentialPrefix) {
  const auto [n, seed] = GetParam();
  auto net = testing::make_strict_ncc0(n, seed);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const prim::TreeOverlay tree = prim::build_bbst(net, path);

  Rng rng(seed * 31 + 7);
  std::vector<std::uint64_t> value(n);
  for (auto& v : value) v = rng.below(1000);

  const std::uint64_t before = net.stats().rounds;
  const prim::PrefixSums ps = prim::tree_prefix_sum(net, tree, value);
  const std::uint64_t rounds = net.stats().rounds - before;

  std::uint64_t running = 0;
  for (const ncc::Slot s : path.order) {
    EXPECT_EQ(ps.exclusive[s], running) << "at slot " << s;
    running += value[s];
  }
  EXPECT_EQ(ps.subtree[tree.root], running);
  EXPECT_LE(rounds, 4 * static_cast<std::uint64_t>(tree.height) + 8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefixSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 16, 33, 100, 500),
                       ::testing::Values(1, 2, 3)));

TEST(Prefix, AllZeroValues) {
  auto net = testing::make_strict_ncc0(20, 9);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const prim::TreeOverlay tree = prim::build_bbst(net, path);
  const prim::PrefixSums ps =
      prim::tree_prefix_sum(net, tree, std::vector<std::uint64_t>(20, 0));
  for (ncc::Slot s = 0; s < 20; ++s) EXPECT_EQ(ps.exclusive[s], 0u);
}

}  // namespace
}  // namespace dgr
