// §7: information lower bounds and their empirical certificates.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "realization/explicit_degree.h"
#include "realization/implicit_degree.h"
#include "realization/lower_bounds.h"
#include "testing.h"
#include "util/math_util.h"

namespace dgr::realize {
namespace {

TEST(LowerBounds, ClosedForms) {
  EXPECT_EQ(explicit_info_bound(0, 8), 0u);
  EXPECT_EQ(explicit_info_bound(1, 8), 1u);
  EXPECT_EQ(explicit_info_bound(8 * ids_per_message(), 8), 1u);
  EXPECT_EQ(explicit_info_bound(8 * ids_per_message() + 1, 8), 2u);
  EXPECT_EQ(sqrt_m_info_bound(100, 2), ceil_div(10, 2 * ids_per_message()));
}

TEST(LowerBounds, FreshNetworkCertifiesZero) {
  auto net = testing::make_ncc0(64, 1);
  EXPECT_EQ(knowledge_round_lower_bound(net), 0u);
}

TEST(LowerBounds, MeasuredRoundsDominateCertificate) {
  // Run the implicit realization on the §7 star-heavy family: the measured
  // round count must be at least the information bound the run certifies.
  const std::size_t n = 128;
  const std::uint64_t m = 512;
  const auto d = graph::star_heavy_sequence(n, m);
  auto net = testing::make_ncc0(n, 3);
  const auto result = realize_degrees_implicit(net, d);
  ASSERT_TRUE(result.realizable);
  const std::uint64_t certificate = knowledge_round_lower_bound(net);
  EXPECT_GE(result.rounds, certificate);
  EXPECT_GT(certificate, 0u);
}

TEST(LowerBounds, ExplicitRunCertifiesDeltaIntake) {
  // Theorem 19's shape: after an explicit realization, the max-degree node
  // knows at least Δ IDs, certifying Ω(Δ / log n) rounds.
  const std::size_t n = 64;
  const std::uint64_t deg = 32;
  const auto d = graph::regular_sequence(n, deg);
  auto net = testing::make_ncc0(n, 4);
  const auto result = realize_degrees_explicit(net, d);
  ASSERT_TRUE(result.realizable);
  std::uint64_t max_known = 0;
  for (ncc::Slot s = 0; s < net.n(); ++s)
    max_known = std::max<std::uint64_t>(max_known, net.knowledge_size(s));
  EXPECT_GE(max_known, deg);  // every node must know its Δ neighbours
  EXPECT_GE(result.implicit_rounds + result.explicit_rounds,
            explicit_info_bound(deg, net.capacity()));
}

}  // namespace
}  // namespace dgr::realize
