// Wire-codec boundary cases, round-tripped through the full
// encode → deliver → learn datapath (the wire record layout is documented
// at ncc::wire in message.h; the receive side stores records verbatim and
// decodes them lazily, so these tests pin the codec at its edges: maximum
// payload, full ID mask, zero payload, and bounced maximum-size records —
// under both overflow policies).
//
// Also the kOvfBit regression suite: the bit-31 oversubscription flag on
// the engine's inbox cursors shares a 32-bit word with the unflagged word
// cursor; deliver() pass 2 guards the extents before stamping any cursor.
// The tiny-capacity massive-fan-in tests drive that path as hard as a unit
// test can.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ncc/message.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::Message;
using ncc::NodeId;
using ncc::Slot;

ncc::Config codec_cfg(ncc::OverflowPolicy policy, bool clique) {
  ncc::Config cfg;
  cfg.seed = 77;
  cfg.overflow = policy;
  if (clique) cfg.initial = ncc::InitialKnowledge::kClique;
  return cfg;
}

// A max-size, full-id_mask message round-trips with every field intact, on
// a learning (NCC0, trailered records) network: the receiver must observe
// tag, size, id_mask, all four ID words, and the sender ID, and must learn
// every forwarded ID. Checked through both the zero-copy view and the
// legacy span so the two accessors can never drift.
void max_size_full_mask_roundtrip(ncc::OverflowPolicy policy) {
  ncc::Network net(8, codec_cfg(policy, /*clique=*/false));
  const auto& order = net.path_order();
  // Path-initial knowledge: order[i] knows order[i+1]'s ID. The head also
  // knows itself; send a message carrying every ID it legally can.
  const Slot head = order[0];
  const Slot succ = order[1];
  const NodeId head_id = net.id_of(head);
  const NodeId succ_id = net.id_of(succ);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != head) return;
    auto m = make_msg(0xABCD);
    m.push_id(head_id).push_id(succ_id).push_id(head_id).push_id(succ_id);
    ASSERT_EQ(m.size, ncc::kMaxWords);
    ASSERT_EQ(m.id_mask, 0x0Fu);
    ctx.send(succ_id, m);
  });
  bool checked = false;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != succ) return;
    checked = true;
    const auto view = ctx.inbox_view();
    ASSERT_EQ(view.size(), 1u);
    for (const auto m : view) {
      EXPECT_EQ(m.tag(), 0xABCDu);
      EXPECT_EQ(m.size(), ncc::kMaxWords);
      EXPECT_EQ(m.id_mask(), 0x0Fu);
      EXPECT_EQ(m.src(), head_id);
      EXPECT_EQ(m.id_word(0), head_id);
      EXPECT_EQ(m.id_word(1), succ_id);
      EXPECT_EQ(m.id_word(2), head_id);
      EXPECT_EQ(m.id_word(3), succ_id);
      const Message full = m.materialize();
      EXPECT_EQ(full.tag, 0xABCDu);
      EXPECT_EQ(full.src, head_id);
      EXPECT_EQ(full.id_word(3), succ_id);
    }
    const auto legacy = ctx.inbox();
    ASSERT_EQ(legacy.size(), 1u);
    EXPECT_EQ(legacy[0].tag, 0xABCDu);
    EXPECT_EQ(legacy[0].size, ncc::kMaxWords);
    EXPECT_EQ(legacy[0].id_mask, 0x0Fu);
    EXPECT_EQ(legacy[0].src, head_id);
  });
  ASSERT_TRUE(checked);
  // Delivery-time learning consumed the record trailer: the receiver now
  // knows the sender (= head) — it already knew itself.
  EXPECT_TRUE(net.node_knows(succ, head_id));
}

TEST(WireCodec, MaxSizeFullIdMaskRoundTripBounce) {
  max_size_full_mask_roundtrip(ncc::OverflowPolicy::kBounce);
}
TEST(WireCodec, MaxSizeFullIdMaskRoundTripStrict) {
  max_size_full_mask_roundtrip(ncc::OverflowPolicy::kStrict);
}

// Zero-payload messages are legal (a tag is a signal); the record is pure
// header and the variable-stride inbox walk must step over it correctly
// even when it is interleaved with max-size records.
void zero_payload_roundtrip(ncc::OverflowPolicy policy) {
  ncc::Network net(16, codec_cfg(policy, /*clique=*/true));
  const NodeId dst = net.id_of(0);
  net.round([&](Ctx& ctx) {
    // Interleave strides: odd slots send empty records, even slots (but 0)
    // send max-size ones, all to slot 0.
    if (ctx.slot() == 0) return;
    if (ctx.slot() % 2 == 1) {
      ctx.send(dst, make_msg(0xE0 + ctx.slot()));
    } else {
      auto m = make_msg(0xF0 + ctx.slot());
      m.push(1).push(2).push(3).push(4);
      ctx.send(dst, m);
    }
  });
  bool checked = false;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) return;
    checked = true;
    ASSERT_EQ(ctx.inbox_view().size(), 15u);
    std::size_t empties = 0;
    std::size_t fulls = 0;
    for (const auto m : ctx.inbox_view()) {
      if (m.size() == 0) {
        ++empties;
        EXPECT_EQ(m.id_mask(), 0u);
        EXPECT_EQ(m.tag() & ~0xFu, 0xE0u);
      } else {
        ++fulls;
        ASSERT_EQ(m.size(), ncc::kMaxWords);
        EXPECT_EQ(m.word(3), 4u);
      }
    }
    EXPECT_EQ(empties, 8u);
    EXPECT_EQ(fulls, 7u);
  });
  ASSERT_TRUE(checked);
}

TEST(WireCodec, ZeroPayloadRoundTripBounce) {
  zero_payload_roundtrip(ncc::OverflowPolicy::kBounce);
}
TEST(WireCodec, ZeroPayloadRoundTripStrict) {
  // 15 arrivals < capacity 16, so strict mode accepts the same traffic.
  zero_payload_roundtrip(ncc::OverflowPolicy::kStrict);
}

// Bounced max-size messages: the bounce path decodes from the same wire
// records, and Ctx::bounced() must return full-fidelity payloads.
TEST(WireCodec, BouncedMaxSizeMessagesKeepFullPayload) {
  ncc::Network net(64, codec_cfg(ncc::OverflowPolicy::kBounce, true));
  const auto cap = static_cast<std::size_t>(net.capacity());
  const NodeId hot = net.id_of(0);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0) return;
    auto m = make_msg(0xB0);
    // Clique: id-marked words need not resolve to real nodes, so a full
    // mask with payload values exercises the widest bounced record.
    m.push_id(0x1111 * ctx.slot()).push(2).push_id(0x3333).push(ctx.slot());
    ctx.send(hot, m);
  });
  std::size_t bounced_seen = 0;
  net.round([&](Ctx& ctx) {
    for (const auto& b : ctx.bounced()) {
      ++bounced_seen;
      EXPECT_EQ(b.dst, hot);
      EXPECT_EQ(b.msg.tag, 0xB0u);
      ASSERT_EQ(b.msg.size, ncc::kMaxWords);
      EXPECT_EQ(b.msg.id_mask, 0x05u);
      EXPECT_EQ(b.msg.word(1), 2u);
      EXPECT_EQ(b.msg.word(3), static_cast<std::uint64_t>(ctx.slot()));
      EXPECT_EQ(b.msg.src, ctx.id());
    }
  });
  EXPECT_EQ(bounced_seen, 63u - cap);
  EXPECT_EQ(net.stats().messages_bounced, 63u - cap);
  EXPECT_EQ(net.stats().messages_delivered, cap);
}

TEST(WireCodec, StrictModeRejectsMaxSizeOverflow) {
  ncc::Network net(64, codec_cfg(ncc::OverflowPolicy::kStrict, true));
  const NodeId hot = net.id_of(0);
  EXPECT_THROW(
      {
        net.round([&](Ctx& ctx) {
          if (ctx.slot() == 0) return;
          auto m = make_msg(1);
          m.push(1).push(2).push(3).push(4);
          ctx.send(hot, m);
        });
        net.round([](Ctx&) {});
      },
      CheckError);
}

// kOvfBit regression: an artificially tiny receive capacity under massive
// max-size fan-in keeps a destination's cursor flagged with bit 31 for many
// consecutive rounds while the word-granular cursor arithmetic runs right
// next to the flag. The transcript must stay exact (capacity accepted,
// the rest bounced, every bounce full-fidelity) and identical across
// thread counts and scheduling modes.
TEST(WireCodec, TinyCapacityMassiveFanInExactAccounting) {
  constexpr std::size_t kN = 96;
  constexpr int kRounds = 6;
  auto run = [&](unsigned threads, bool sparse) {
    ncc::Config cfg = codec_cfg(ncc::OverflowPolicy::kBounce, true);
    cfg.capacity_factor = 0;  // capacity = min_capacity
    cfg.min_capacity = 1;     // one accepted message per round
    cfg.threads = threads;
    cfg.sparse_rounds = sparse;
    ncc::Network net(kN, cfg);
    EXPECT_EQ(net.capacity(), 1);
    const NodeId hot = net.id_of(0);
    // Per-slot digests: bodies run concurrently, so cross-slot accumulation
    // order is not deterministic — fold slot-major after the run instead.
    std::vector<std::uint64_t> inbox_digest(kN, 0);
    std::vector<std::uint64_t> bounce_digest(kN, 0);
    net.wake_all();
    for (int r = 0; r < kRounds; ++r) {
      net.round_active([&](Ctx& ctx) {
        if (ctx.slot() == 0) {
          auto& in = inbox_digest[0];
          for (const auto m : ctx.inbox_view()) {
            in = hash_mix(hash_mix(in, m.src(), m.word(0)), m.word(3));
          }
        }
        auto& bo = bounce_digest[ctx.slot()];
        for (const auto& b : ctx.bounced()) {
          EXPECT_EQ(b.msg.size, ncc::kMaxWords);
          bo = hash_mix(bo, b.dst, b.msg.word(3));
        }
        ctx.wake();  // every node keeps flooding
        auto m = make_msg(0xF1);
        m.push(ctx.slot()).push(2).push(3).push(0xC0FFEE + ctx.slot());
        ctx.send(hot, m);
      });
      // Every round: kN sends at the hot slot, 1 accepted, kN - 1 bounced.
      EXPECT_EQ(net.stats().messages_delivered,
                static_cast<std::uint64_t>(r + 1));
    }
    EXPECT_EQ(net.stats().messages_sent,
              static_cast<std::uint64_t>(kN) * kRounds);
    EXPECT_EQ(net.stats().messages_bounced,
              static_cast<std::uint64_t>(kN - 1) * kRounds);
    EXPECT_EQ(net.stats().messages_dropped, 0u);
    std::uint64_t digest = 0;
    for (Slot s = 0; s < kN; ++s)
      digest = hash_mix(digest, inbox_digest[s], bounce_digest[s]);
    return digest;
  };
  const std::uint64_t ref = run(1, /*sparse=*/true);
  EXPECT_EQ(ref, run(4, true));
  EXPECT_EQ(ref, run(8, true));
  EXPECT_EQ(ref, run(1, /*sparse=*/false));
  EXPECT_EQ(ref, run(8, false));
}

// Same fan-in shape in strict mode: the engine must throw before any
// delivery event, even at the tiny-capacity boundary.
TEST(WireCodec, TinyCapacityStrictThrowsBeforeDelivery) {
  ncc::Config cfg = codec_cfg(ncc::OverflowPolicy::kStrict, true);
  cfg.capacity_factor = 0;
  cfg.min_capacity = 1;
  ncc::Network net(32, cfg);
  const NodeId hot = net.id_of(5);
  EXPECT_THROW(
      {
        net.round([&](Ctx& ctx) {
          if (ctx.slot() != 5) ctx.send(hot, make_msg(1).push(7));
        });
      },
      CheckError);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

}  // namespace
}  // namespace dgr
