// The scenario harness: library integrity, compiled fault schedules,
// matrix runs (validation under faults), and report determinism across
// thread counts, round schedulers, and re-runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "graph/degree_sequence.h"
#include "scenario/library.h"
#include "scenario/report.h"
#include "scenario/runner.h"

namespace dgr {
namespace {

using scenario::Algo;
using scenario::builtin_scenarios;
using scenario::FaultEvent;
using scenario::MatrixReport;
using scenario::RunnerOptions;
using scenario::ScenarioSpec;
using scenario::Stage;

RunnerOptions small_opts() {
  RunnerOptions opt;
  opt.seed = 1;
  opt.n_override = {32};
  opt.telemetry_interval = 8;
  opt.telemetry_ring = 16;
  return opt;
}

TEST(ScenarioLibrary, HasAtLeastEightValidUniqueScenarios) {
  const auto& lib = builtin_scenarios();
  EXPECT_GE(lib.size(), 8u);
  std::set<std::string> names;
  for (const auto& s : lib) {
    EXPECT_TRUE(scenario::check_spec(s).empty())
        << s.name << ": " << scenario::check_spec(s);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
  }
  // The axes the harness promises are all represented.
  EXPECT_NE(scenario::find_scenario("clean-regular"), nullptr);
  EXPECT_NE(scenario::find_scenario("clean-ncc1"), nullptr);
  EXPECT_NE(scenario::find_scenario("tiny-capacity-flood"), nullptr);
  EXPECT_NE(scenario::find_scenario("lossy-ramp"), nullptr);
  EXPECT_NE(scenario::find_scenario("crash-wave-mid-build"), nullptr);
  EXPECT_EQ(scenario::find_scenario("no-such-scenario"), nullptr);
}

TEST(ScenarioSpecCheck, RejectsBuildStageFaults) {
  ScenarioSpec s = *scenario::find_scenario("clean-regular");
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCrashWave;
  e.stage = Stage::kBuild;
  e.crash_permille = 100;
  s.plan.events.push_back(e);
  EXPECT_FALSE(scenario::check_spec(s).empty());
  s.plan.events.back().kind = FaultEvent::Kind::kLossBurst;
  s.plan.events.back().loss_permille = 100;
  EXPECT_FALSE(scenario::check_spec(s).empty());
}

TEST(ScenarioCompile, ScheduleIsDeterministicAndWellFormed) {
  const ScenarioSpec& s = *scenario::find_scenario("crash-wave-mid-build");
  const auto a = scenario::compile_plan(s, 40, 77);
  const auto b = scenario::compile_plan(s, 40, 77);
  ASSERT_EQ(a.exchange.size(), b.exchange.size());
  std::set<ncc::Slot> crashed;
  std::uint64_t prev_round = 0;
  bool first = true;
  for (std::size_t i = 0; i < a.exchange.size(); ++i) {
    EXPECT_EQ(a.exchange[i].round, b.exchange[i].round);
    EXPECT_EQ(a.exchange[i].crash, b.exchange[i].crash);
    if (!first) {
      EXPECT_GT(a.exchange[i].round, prev_round);
    }
    prev_round = a.exchange[i].round;
    first = false;
    for (const ncc::Slot slot : a.exchange[i].crash) {
      EXPECT_LT(slot, 40u);
      EXPECT_TRUE(crashed.insert(slot).second)
          << "slot " << slot << " crashed by two waves";
    }
  }
  EXPECT_EQ(crashed.size(), a.planned_crashes);
  // Two 15% waves of 40 nodes: 6 + 5 slots.
  EXPECT_EQ(a.planned_crashes, 11u);
  // A different seed draws different waves.
  const auto c = scenario::compile_plan(s, 40, 78);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.exchange.size(); ++i) {
    if (a.exchange[i].crash != c.exchange[i].crash) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioInputs, AdaptersProduceRunnableInstances) {
  for (const auto& s : builtin_scenarios()) {
    for (const std::size_t n : {32ul, 48ul}) {
      const auto deg = scenario::degrees_for(s, n, 9);
      ASSERT_EQ(deg.size(), n) << s.name;
      EXPECT_TRUE(graph::erdos_gallai_graphic(deg)) << s.name;
      const auto td = scenario::tree_degrees_for(s, n, 9);
      EXPECT_TRUE(graph::tree_realizable(td)) << s.name;
      const auto rho = scenario::thresholds_for(s, n, 9);
      ASSERT_EQ(rho.size(), n) << s.name;
      for (const auto r : rho) {
        EXPECT_GE(r, 1u) << s.name;
        EXPECT_LE(r, n - 1) << s.name;
      }
    }
  }
}

TEST(ScenarioRunner, CleanScenarioValidatesAllFiveAlgorithms) {
  const auto opt = small_opts();
  const std::vector<ScenarioSpec> specs = {
      *scenario::find_scenario("clean-regular")};
  const MatrixReport rep = scenario::run_matrix(specs, opt);
  EXPECT_EQ(rep.run_count(), 5u);
  for (const auto& r : rep.scenarios[0].runs) {
    EXPECT_EQ(r.outcome, "ok") << r.algo;
    EXPECT_TRUE(r.validated) << r.algo << ": " << r.validation;
    EXPECT_GT(r.total_rounds, 0u) << r.algo;
    EXPECT_GT(r.edges, 0u) << r.algo;
    EXPECT_EQ(r.crashed, 0u) << r.algo;
    EXPECT_EQ(r.dropped, 0u) << r.algo;
    EXPECT_EQ(r.exchange_given_up, 0u) << r.algo;
    EXPECT_FALSE(r.intervals.empty()) << r.algo;
  }
}

TEST(ScenarioRunner, FaultInterplayLossCrashAndBounceInOneRun) {
  // Loss burst + crash wave + capacity squeeze in a single exchange stage:
  // the §8 trifecta. The build stays clean, so outputs validate (survivor
  // scope for the explicit algorithm).
  ScenarioSpec s = *scenario::find_scenario("clean-regular");
  s.name = "interplay";
  s.degree = 10;
  s.capacity_factor = 1;  // capacity floor: bounce pressure everywhere
  s.min_capacity = 6;
  s.exchange_tokens = 6;
  FaultEvent burst;
  burst.kind = FaultEvent::Kind::kLossBurst;
  burst.stage = Stage::kExchange;
  burst.at_round = 1;
  burst.duration = 12;
  burst.loss_permille = 250;
  s.plan.events.push_back(burst);
  FaultEvent wave;
  wave.kind = FaultEvent::Kind::kCrashWave;
  wave.stage = Stage::kExchange;
  wave.at_round = 3;
  wave.crash_permille = 150;
  s.plan.events.push_back(wave);

  RunnerOptions opt = small_opts();
  opt.n_override = {48};
  const std::vector<ScenarioSpec> specs = {s};
  const MatrixReport rep = scenario::run_matrix(specs, opt);
  ASSERT_EQ(rep.run_count(), 5u);
  bool saw_crashes = false;
  for (const auto& r : rep.scenarios[0].runs) {
    EXPECT_EQ(r.outcome, "ok") << r.algo;
    EXPECT_TRUE(r.validated) << r.algo << ": " << r.validation;
    EXPECT_GT(r.bounced, 0u) << r.algo;  // capacity squeeze bit
    EXPECT_GT(r.dropped, 0u) << r.algo;  // loss or crashed receivers bit
    if (r.crashed > 0) saw_crashes = true;
    // Bounded transport accounting: nothing silently lost — every token
    // was delivered, abandoned (crashed peer), or stranded on a crashed
    // sender.
    EXPECT_LE(r.exchange_given_up, r.exchange_total) << r.algo;
  }
  EXPECT_TRUE(saw_crashes);
}

TEST(ScenarioRunner, StalledBuildIsRecordedNotThrown) {
  ScenarioSpec s = *scenario::find_scenario("clean-regular");
  s.name = "stall-probe";
  s.max_rounds = 3;  // no realization finishes in 3 rounds
  RunnerOptions opt = small_opts();
  opt.algos = {Algo::kImplicitDegree};
  const std::vector<ScenarioSpec> specs = {s};
  const MatrixReport rep = scenario::run_matrix(specs, opt);
  ASSERT_EQ(rep.run_count(), 1u);
  const auto& r = rep.scenarios[0].runs[0];
  EXPECT_EQ(r.outcome, "stalled");
  EXPECT_FALSE(r.validated);
  EXPECT_NE(r.validation.find("skipped"), std::string::npos);
  EXPECT_FALSE(rep.all_validated());
}

// The determinism contract: same seed => byte-identical JSON report, for
// any thread count, under either scheduler, and across re-runs. Exercised
// on the fault-heavy scenarios where divergence would hide.
TEST(ScenarioReport, ByteIdenticalAcrossThreadsSchedulersAndReruns) {
  const std::vector<ScenarioSpec> specs = {
      *scenario::find_scenario("lossy-burst-flips"),
      *scenario::find_scenario("crash-wave-mid-build")};
  RunnerOptions opt = small_opts();
  opt.algos = {Algo::kImplicitDegree, Algo::kExplicitDegree, Algo::kTree};

  const std::string base =
      scenario::to_json(scenario::run_matrix(specs, opt));
  const std::string base_csv =
      scenario::to_csv(scenario::run_matrix(specs, opt));
  EXPECT_EQ(base, scenario::to_json(scenario::run_matrix(specs, opt)))
      << "re-run with identical options diverged";
  EXPECT_EQ(base_csv, scenario::to_csv(scenario::run_matrix(specs, opt)));

  for (const unsigned threads : {4u, 8u}) {
    RunnerOptions t = opt;
    t.threads = threads;
    EXPECT_EQ(base, scenario::to_json(scenario::run_matrix(specs, t)))
        << "threads=" << threads;
  }
  RunnerOptions dense = opt;
  dense.sparse_rounds = false;
  EXPECT_EQ(base, scenario::to_json(scenario::run_matrix(specs, dense)))
      << "dense scheduler diverged";
  RunnerOptions dense_mt = dense;
  dense_mt.threads = 4;
  EXPECT_EQ(base, scenario::to_json(scenario::run_matrix(specs, dense_mt)));

  // And the seed genuinely matters (the contract is not vacuous).
  RunnerOptions other = opt;
  other.seed = 2;
  EXPECT_NE(base, scenario::to_json(scenario::run_matrix(specs, other)));
}

// Concurrent matrix runs (jobs > 1) dispatch run_one over the process-wide
// executor; the merge is by declarative index, so reports stay byte-equal
// to the serial run — including when each run is itself multithreaded.
TEST(ScenarioReport, ByteIdenticalAcrossJobCounts) {
  const std::vector<ScenarioSpec> specs = {
      *scenario::find_scenario("lossy-burst-flips"),
      *scenario::find_scenario("crash-wave-mid-build")};
  RunnerOptions opt = small_opts();
  opt.algos = {Algo::kImplicitDegree, Algo::kTree};

  const std::string base =
      scenario::to_json(scenario::run_matrix(specs, opt));
  const std::string base_csv =
      scenario::to_csv(scenario::run_matrix(specs, opt));
  for (const unsigned jobs : {2u, 4u}) {
    RunnerOptions j = opt;
    j.jobs = jobs;
    EXPECT_EQ(base, scenario::to_json(scenario::run_matrix(specs, j)))
        << "jobs=" << jobs;
    EXPECT_EQ(base_csv, scenario::to_csv(scenario::run_matrix(specs, j)))
        << "jobs=" << jobs;
  }
  // Runner-level and Network-level parallelism composed (nested executor
  // jobs): still the same bytes.
  RunnerOptions both = opt;
  both.jobs = 4;
  both.threads = 4;
  EXPECT_EQ(base, scenario::to_json(scenario::run_matrix(specs, both)));
}

// The progress callback under concurrency: `done` values form exactly the
// sequence 1..total with a constant total, and the callback is serialized
// (the mutex in run_matrix), so counters can't interleave or repeat.
TEST(ScenarioReport, ProgressAccountingExactUnderConcurrency) {
  const std::vector<ScenarioSpec> specs = {
      *scenario::find_scenario("clean-regular"),
      *scenario::find_scenario("lossy-ramp")};
  RunnerOptions opt = small_opts();
  opt.algos = {Algo::kImplicitDegree, Algo::kExplicitDegree};
  opt.jobs = 4;

  std::vector<std::size_t> seen_done;
  std::set<std::string> seen_runs;
  std::size_t expected_total =
      specs.size() * opt.algos.size() * opt.n_override.size();
  bool total_consistent = true;
  bool records_validated = true;
  opt.progress = [&](std::size_t done, std::size_t total,
                     const scenario::RunRecord& rec) {
    seen_done.push_back(done);
    total_consistent = total_consistent && total == expected_total;
    records_validated = records_validated && rec.validated;
    seen_runs.insert(rec.scenario + "/" + rec.algo + "/" +
                     std::to_string(rec.n));
  };
  const MatrixReport rep = scenario::run_matrix(specs, opt);

  ASSERT_EQ(seen_done.size(), expected_total);
  EXPECT_TRUE(total_consistent);
  EXPECT_TRUE(records_validated);
  // Completion order is nondeterministic, but the done counter is issued
  // under the progress mutex: sorted, it must be exactly 1..total.
  std::sort(seen_done.begin(), seen_done.end());
  for (std::size_t i = 0; i < seen_done.size(); ++i) {
    EXPECT_EQ(seen_done[i], i + 1);
  }
  // Every (scenario, algo, n) cell reported exactly once.
  EXPECT_EQ(seen_runs.size(), expected_total);
  EXPECT_EQ(rep.run_count(), expected_total);
}

TEST(ScenarioReport, JsonShapeAndCsvRowCount) {
  RunnerOptions opt = small_opts();
  opt.algos = {Algo::kApproxDegree};
  const std::vector<ScenarioSpec> specs = {
      *scenario::find_scenario("clean-ncc1")};
  const MatrixReport rep = scenario::run_matrix(specs, opt);
  const std::string json = scenario::to_json(rep);
  EXPECT_NE(json.find("\"schema\": \"dgr-scenario-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"all_validated\": true"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  // Execution-strategy fields must never leak into the report surface.
  EXPECT_EQ(json.find("sparse"), std::string::npos);
  EXPECT_EQ(json.find("dense"), std::string::npos);
  EXPECT_EQ(json.find("threads"), std::string::npos);
  const std::string csv = scenario::to_csv(rep);
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1 + rep.run_count());
}

}  // namespace
}  // namespace dgr
