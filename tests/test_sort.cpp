// Theorem 3 (distributed sorting) — our Batcher-network realization.
#include <gtest/gtest.h>

#include <algorithm>

#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "testing.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

struct SortFixture {
  explicit SortFixture(std::size_t n, std::uint64_t seed = 1)
      : net(dgr::testing::make_strict_ncc0(n, seed)),
        path(prim::undirect_initial_path(net)),
        tree(prim::build_bbst(net, path)),
        skip(prim::build_skiplinks(net, path)) {}
  ncc::Network net;
  prim::PathOverlay path;
  prim::TreeOverlay tree;
  prim::SkipOverlay skip;
};

void expect_sorted(const ncc::Network& net, const prim::PathOverlay& sorted,
                   const std::vector<std::uint64_t>& key, bool descending) {
  // The sorted path must be a permutation of the members with monotone keys
  // (ties by ascending ID), and the per-node links must agree.
  ASSERT_TRUE(prim::validate_path(net, sorted));
  for (std::size_t i = 0; i + 1 < sorted.order.size(); ++i) {
    const auto a = sorted.order[i];
    const auto b = sorted.order[i + 1];
    if (key[a] == key[b]) {
      EXPECT_LT(net.id_of(a), net.id_of(b));
    } else if (descending) {
      EXPECT_GT(key[a], key[b]);
    } else {
      EXPECT_LT(key[a], key[b]);
    }
  }
}

class SortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SortSweep, RandomKeysBothDirections) {
  const auto [n, seed] = GetParam();
  for (const bool descending : {false, true}) {
    SortFixture f(n, seed);
    Rng rng(seed * 131 + descending);
    std::vector<std::uint64_t> key(n);
    for (auto& k : key) k = rng.below(50);  // plenty of duplicates

    const std::uint64_t before = f.net.stats().rounds;
    const prim::SortResult sorted =
        prim::distributed_sort(f.net, f.path, f.skip, key, descending);
    const std::uint64_t rounds = f.net.stats().rounds - before;

    expect_sorted(f.net, sorted.path, key, descending);
    EXPECT_TRUE(prim::validate_skiplinks(f.net, sorted.path, sorted.skip));

    // O(log^2 n) + rewiring.
    const std::uint64_t lg = ceil_log2(std::max<std::size_t>(n, 2));
    EXPECT_LE(rounds, 2 * lg * lg + 8 * lg + 16);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SortSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33,
                                         64, 100, 200, 513),
                       ::testing::Values(1, 2)));

TEST(Sort, AlreadySortedAndReversed) {
  for (const bool reversed : {false, true}) {
    SortFixture f(128, 77 + reversed);
    std::vector<std::uint64_t> key(128);
    for (std::size_t i = 0; i < f.path.order.size(); ++i) {
      key[f.path.order[i]] = reversed ? 128 - i : i;
    }
    const auto sorted =
        prim::distributed_sort(f.net, f.path, f.skip, key, false);
    expect_sorted(f.net, sorted.path, key, false);
  }
}

TEST(Sort, AllEqualKeysSortById) {
  SortFixture f(100, 5);
  std::vector<std::uint64_t> key(100, 42);
  const auto sorted = prim::distributed_sort(f.net, f.path, f.skip, key, true);
  expect_sorted(f.net, sorted.path, key, true);
}

TEST(Sort, ResortAfterSortUsesNewOverlay) {
  // Sorting twice with different keys exercises sorting a non-initial path.
  SortFixture f(90, 6);
  Rng rng(999);
  std::vector<std::uint64_t> key1(90), key2(90);
  for (auto& k : key1) k = rng.below(30);
  for (auto& k : key2) k = rng.below(30);

  const auto s1 = prim::distributed_sort(f.net, f.path, f.skip, key1, true);
  expect_sorted(f.net, s1.path, key1, true);
  const auto s2 =
      prim::distributed_sort(f.net, s1.path, s1.skip, key2, false);
  expect_sorted(f.net, s2.path, key2, false);
}

class TranspositionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TranspositionSweep, BaselineSortsCorrectlyButSlowly) {
  const auto [n, seed] = GetParam();
  SortFixture f(n, seed + 500);
  Rng rng(seed * 7 + 1);
  std::vector<std::uint64_t> key(n);
  for (auto& k : key) k = rng.below(40);

  const std::uint64_t before = f.net.stats().rounds;
  const auto sorted = prim::transposition_sort(f.net, f.path, key, true);
  const std::uint64_t rounds = f.net.stats().rounds - before;

  expect_sorted(f.net, sorted.path, key, true);
  EXPECT_TRUE(prim::validate_skiplinks(f.net, sorted.path, sorted.skip));
  // Θ(n) rounds — the ablation point (distributed_sort is polylog).
  EXPECT_GE(rounds, static_cast<std::uint64_t>(n));
  EXPECT_LE(rounds, static_cast<std::uint64_t>(n) + 4 * ceil_log2(n) + 16);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TranspositionSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 8, 33, 100),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(Sort, TranspositionAgreesWithBatcher) {
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    SortFixture fa(120, seed), fb(120, seed);
    Rng rng(seed);
    std::vector<std::uint64_t> key(120);
    for (auto& k : key) k = rng.below(25);
    const auto a = prim::distributed_sort(fa.net, fa.path, fa.skip, key, false);
    const auto b = prim::transposition_sort(fb.net, fb.path, key, false);
    // Same network seed => same IDs => identical sorted orders.
    EXPECT_EQ(a.path.order, b.path.order);
  }
}

TEST(Sort, SubPathSortLeavesOutsidersAlone) {
  SortFixture f(60, 7);
  // Restrict to first 25 positions of the initial path.
  prim::PathOverlay sub;
  const std::size_t keep = 25;
  sub.pred.assign(60, ncc::kNoNode);
  sub.succ.assign(60, ncc::kNoNode);
  sub.pos = f.path.pos;
  sub.is_member.assign(60, 0);
  sub.order.assign(f.path.order.begin(), f.path.order.begin() + keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const ncc::Slot s = sub.order[i];
    sub.is_member[s] = 1;
    sub.pred[s] = f.path.pred[s];
    sub.succ[s] = i + 1 < keep ? f.path.succ[s] : ncc::kNoNode;
  }
  const prim::SkipOverlay sub_skip = prim::build_skiplinks(f.net, sub);

  Rng rng(314);
  std::vector<std::uint64_t> key(60);
  for (auto& k : key) k = rng.below(100);
  const auto sorted = prim::distributed_sort(f.net, sub, sub_skip, key, true);
  EXPECT_EQ(sorted.path.order.size(), keep);
  expect_sorted(f.net, sorted.path, key, true);
  for (ncc::Slot s = 0; s < 60; ++s) {
    if (!sub.member(s)) {
      EXPECT_FALSE(sorted.path.member(s));
    }
  }
}

}  // namespace
}  // namespace dgr
