// Theorem 12: explicit realization via direct exchange.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "realization/explicit_degree.h"
#include "realization/validate.h"
#include "testing.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr::realize {
namespace {

class ExplicitSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(ExplicitSweep, SymmetricAndExact) {
  const auto [n, deg] = GetParam();
  auto net = testing::make_ncc0(n, n + deg);
  const auto d = graph::regular_sequence(n, deg);
  const auto result = realize_degrees_explicit(net, d);
  ASSERT_TRUE(result.realizable);

  // Rebuild the implicit story from the explicit one: degrees + symmetry.
  const auto v = validate_degree_realization(net, d, result.adjacency);
  // validate_degree_realization double-counts both-side lists; instead use
  // the dedicated explicit validator with the implicit side derived from
  // the run. Cheap re-derivation: adjacency halves.
  (void)v;
  // Each node's list length is exactly its degree, and symmetry holds.
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    EXPECT_EQ(result.adjacency[s].size(), d[s]);
    for (const ncc::NodeId id : result.adjacency[s]) {
      const auto& other = result.adjacency[net.slot_of(id)];
      EXPECT_NE(std::find(other.begin(), other.end(), net.id_of(s)),
                other.end())
          << "edge not symmetric";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExplicitSweep,
    ::testing::Combine(::testing::Values<std::size_t>(16, 64, 128),
                       ::testing::Values<std::uint64_t>(1, 3, 8)));

TEST(ExplicitDegree, ValidatorAcceptsRun) {
  auto net = testing::make_ncc0(80, 7);
  Rng rng(7);
  const auto d = graph::gnp_sequence(80, 0.08, rng);
  const auto implicit_result = realize_degrees_implicit(net, d);
  ASSERT_TRUE(implicit_result.realizable);
  const auto result = make_explicit(net, implicit_result);
  const auto v = validate_explicit_adjacency(net, implicit_result.stored,
                                             result.adjacency);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(ExplicitDegree, UnrealizablePropagates) {
  auto net = testing::make_ncc0(4, 8);
  const std::vector<std::uint64_t> d{3, 1, 1, 0};
  const auto result = realize_degrees_explicit(net, d);
  EXPECT_FALSE(result.realizable);
}

TEST(ExplicitDegree, RoundsScaleWithDeltaOverLog) {
  // Theorem 12: explicitization costs O(m/n + Δ/log n + log n).
  const std::size_t n = 128;
  const std::uint64_t deg = 32;
  auto net = testing::make_ncc0(n, 11);
  const auto d = graph::regular_sequence(n, deg);
  const auto result = realize_degrees_explicit(net, d);
  ASSERT_TRUE(result.realizable);
  const std::uint64_t cap = static_cast<std::uint64_t>(net.capacity());
  EXPECT_LE(result.explicit_rounds, 8 * (deg / cap + 1) +
                                        4 * ceil_log2(n) + 16);
}

}  // namespace
}  // namespace dgr::realize
