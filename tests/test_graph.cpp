// Graph substrate: structure, BFS, trees.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/tree_metrics.h"

namespace dgr::graph {
namespace {

TEST(Graph, AddEdgeRejectsLoopsAndDuplicates) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate (reversed)
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_EQ(g.m(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DegreeSequence) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto d = g.degree_sequence();
  EXPECT_EQ(d, (std::vector<std::uint64_t>{3, 1, 1, 1}));
}

TEST(Graph, Connectivity) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(g.is_tree());
  g.add_edge(0, 4);
  EXPECT_FALSE(g.is_tree());
}

TEST(Graph, BfsDistances) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 4);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[4], 1);
  EXPECT_EQ(d[5], -1);
}

TEST(TreeMetrics, PathDiameter) {
  Graph g(6);
  for (Vertex v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1);
  EXPECT_EQ(tree_diameter(g), 5u);
}

TEST(TreeMetrics, StarDiameter) {
  Graph g(7);
  for (Vertex v = 1; v < 7; ++v) g.add_edge(0, v);
  EXPECT_EQ(tree_diameter(g), 2u);
}

TEST(TreeMetrics, SingletonAndEdge) {
  Graph s(1);
  EXPECT_EQ(tree_diameter(s), 0u);
  Graph e(2);
  e.add_edge(0, 1);
  EXPECT_EQ(tree_diameter(e), 1u);
}

TEST(TreeMetrics, Eccentricities) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto ecc = eccentricities(g);
  EXPECT_EQ(ecc, (std::vector<std::uint64_t>{3, 2, 2, 3}));
}

}  // namespace
}  // namespace dgr::graph
