// Fault-hook accounting edges (§8 robustness controls): the
// referee-context guard on set_drop_probability, crash() idempotency, and
// the legality of steering the simulation from a telemetry sink.
#include <gtest/gtest.h>

#include <vector>

#include "ncc/network.h"
#include "ncc/telemetry.h"
#include "testing.h"
#include "util/check.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::Network;
using ncc::RoundSample;
using ncc::Slot;

TEST(FaultHooks, SetDropProbabilityMidBodyThrows) {
  Network net = testing::make_ncc0(8);
  EXPECT_THROW(
      net.round([&](Ctx& ctx) {
        if (ctx.slot() == 0) net.set_drop_probability(0.5);
      }),
      CheckError);
}

TEST(FaultHooks, SetDropProbabilityMidBodyThrowsOnWorkerThreads) {
  ncc::Config cfg;
  cfg.seed = 3;
  cfg.threads = 4;
  Network net(64, cfg);
  EXPECT_THROW(
      net.round([&](Ctx& ctx) {
        if (ctx.slot() == 63) net.set_drop_probability(0.5);
      }),
      CheckError);
}

TEST(FaultHooks, SetDropProbabilityBetweenRoundsOk) {
  Network net = testing::make_ncc0(8);
  net.round([](Ctx&) {});
  EXPECT_NO_THROW(net.set_drop_probability(0.25));
  net.round([](Ctx&) {});
  EXPECT_NO_THROW(net.set_drop_probability(0.0));
}

TEST(FaultHooks, SetDropProbabilityRejectsOutOfRange) {
  Network net = testing::make_ncc0(8);
  EXPECT_THROW(net.set_drop_probability(-0.1), CheckError);
  EXPECT_THROW(net.set_drop_probability(1.5), CheckError);
}

TEST(FaultHooks, SetDropProbabilityWorksAfterBodyException) {
  Network net = testing::make_ncc0(8);
  EXPECT_THROW(net.round([&](Ctx& ctx) {
                 if (ctx.slot() == 2) throw CheckError("boom");
               }),
               CheckError);
  // The in-body guard must have been cleared on the exception path.
  EXPECT_NO_THROW(net.set_drop_probability(0.5));
}

TEST(FaultHooks, CrashIsIdempotent) {
  Network net = testing::make_ncc0(8);
  net.crash(3);
  EXPECT_EQ(net.crashed_count(), 1u);
  EXPECT_TRUE(net.is_crashed(3));
  net.crash(3);  // double crash: counters must not move
  EXPECT_EQ(net.crashed_count(), 1u);
  net.crash(5);
  EXPECT_EQ(net.crashed_count(), 2u);
  net.crash(3);
  net.crash(5);
  EXPECT_EQ(net.crashed_count(), 2u);
}

TEST(FaultHooks, CrashRejectsInvalidSlot) {
  Network net = testing::make_ncc0(8);
  EXPECT_THROW(net.crash(8), CheckError);
  EXPECT_THROW(net.crash(1000), CheckError);
}

/// Sink that records samples and optionally steers the run.
struct SteeringSink : ncc::TelemetrySink {
  Network& net;
  std::vector<RoundSample> samples;
  Slot crash_slot = ncc::kNoSlot;
  std::uint64_t crash_at = 0;    ///< crash (again) on every round >= this
  double set_loss = -1.0;        ///< applied once, on the first sample
  explicit SteeringSink(Network& n) : net(n) {}
  void on_round(const RoundSample& s) override {
    samples.push_back(s);
    if (set_loss >= 0.0 && samples.size() == 1)
      net.set_drop_probability(set_loss);
    if (crash_slot != ncc::kNoSlot && s.round >= crash_at)
      net.crash(crash_slot);  // deliberately re-crashes on later rounds
  }
};

TEST(FaultHooks, TelemetrySinkMaySetDropProbability) {
  Network net = testing::make_ncc0(16);
  SteeringSink sink(net);
  sink.set_loss = 1.0;  // from round 1 on, every message drops
  net.set_telemetry(&sink);
  for (int r = 0; r < 4; ++r) {
    net.round([](Ctx& ctx) {
      const ncc::NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode) ctx.send(succ, ncc::make_msg(1).push(7));
    });
  }
  net.set_telemetry(nullptr);
  ASSERT_EQ(sink.samples.size(), 4u);
  EXPECT_EQ(sink.samples[0].dropped, 0u);  // loss flips after round 0
  EXPECT_GT(sink.samples[1].dropped, 0u);
  EXPECT_GT(net.stats().messages_dropped, 0u);
}

TEST(FaultHooks, TelemetrySinkCrashAppliesNextRoundAndStaysStable) {
  Network net = testing::make_ncc0(8);
  SteeringSink sink(net);
  sink.crash_slot = 4;
  sink.crash_at = 0;  // crash slot 4 after round 0, re-crash every round
  net.set_telemetry(&sink);
  std::vector<int> ran(8, 0);
  for (int r = 0; r < 4; ++r) {
    net.round([&](Ctx& ctx) { ++ran[ctx.slot()]; });
  }
  net.set_telemetry(nullptr);
  EXPECT_EQ(ran[4], 1);  // ran round 0 only; crashed before round 1
  EXPECT_EQ(ran[0], 4);
  ASSERT_EQ(sink.samples.size(), 4u);
  EXPECT_EQ(sink.samples[0].crashed, 0u);
  // Re-crashing the same slot from the hook must not inflate any counter.
  EXPECT_EQ(sink.samples[1].crashed, 1u);
  EXPECT_EQ(sink.samples[2].crashed, 1u);
  EXPECT_EQ(sink.samples[3].crashed, 1u);
  EXPECT_EQ(net.crashed_count(), 1u);
}

TEST(FaultHooks, CrashedDestinationCountsAsDropNotDelivery) {
  ncc::Config cfg;
  cfg.seed = 11;
  cfg.shuffle_path = false;  // slot 0's successor is slot 1
  Network net(2, cfg);
  net.crash(1);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0)
      ctx.send(ctx.initial_successor(), ncc::make_msg(9).push(1));
  });
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

}  // namespace
}  // namespace dgr
