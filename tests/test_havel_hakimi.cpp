// Sequential Havel–Hakimi vs. Erdős–Gallai cross-validation + realization.
#include <gtest/gtest.h>

#include "graph/degree_sequence.h"
#include "seq/havel_hakimi.h"
#include "util/rng.h"

namespace dgr::seq {
namespace {

using graph::DegreeSequence;

TEST(HavelHakimi, ClassicCases) {
  EXPECT_TRUE(hh_graphic({}));
  EXPECT_TRUE(hh_graphic({0, 0}));
  EXPECT_TRUE(hh_graphic({1, 1}));
  EXPECT_FALSE(hh_graphic({1}));
  EXPECT_TRUE(hh_graphic({2, 2, 2}));
  EXPECT_FALSE(hh_graphic({3, 3, 1, 1}));
  EXPECT_TRUE(hh_graphic({3, 3, 3, 3}));
}

TEST(HavelHakimi, RealizationMatchesRequest) {
  const DegreeSequence d{3, 3, 2, 2, 2, 2};
  const auto g = hh_realize(d);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->degree_sequence(), d);
}

TEST(HavelHakimi, NonGraphicReturnsNullopt) {
  EXPECT_FALSE(hh_realize({3, 1, 1}).has_value());
  EXPECT_TRUE(hh_realize({5, 1, 1, 1, 1, 1}).has_value());  // star K_{1,5}
}

class HhEgCross : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HhEgCross, AgreeOnRandomSequences) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(24);
    DegreeSequence d(n);
    for (auto& x : d) x = rng.below(n + 2);  // sometimes > n-1 (never graphic)
    const bool eg = graph::erdos_gallai_graphic(d);
    const bool hh = hh_graphic(d);
    EXPECT_EQ(eg, hh) << "n=" << n << " trial=" << trial;
    if (eg) {
      const auto g = hh_realize(d);
      ASSERT_TRUE(g.has_value());
      EXPECT_EQ(g->degree_sequence(), d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HhEgCross,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(HavelHakimi, LargeRegular) {
  const DegreeSequence d(1000, 6);
  const auto g = hh_realize(d);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->degree_sequence(), d);
  EXPECT_EQ(g->m(), 3000u);
}

}  // namespace
}  // namespace dgr::seq
