// Theorem 13: upper-envelope realization of non-graphic sequences.
#include <gtest/gtest.h>

#include "graph/degree_sequence.h"
#include "realization/approx_degree.h"
#include "realization/validate.h"
#include "testing.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr::realize {
namespace {

class EnvelopeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvelopeSweep, EnvelopeDominatesAndAtMostDoubles) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + rng.below(60);
    std::vector<std::uint64_t> d(n);
    for (auto& x : d) x = rng.below(n);  // often non-graphic

    auto net = testing::make_ncc0(n, GetParam() * 50 + trial);
    const auto implicit_result =
        realize_degrees_implicit(net, d, DegreeMode::kEnvelope);
    ASSERT_TRUE(implicit_result.realizable)
        << "envelope mode never fails for d<=n-1";
    // Retired-last ordering must prevent edge re-creation (DESIGN.md).
    EXPECT_EQ(implicit_result.duplicate_edges, 0u);
    const auto result = make_explicit(net, implicit_result);

    // Build the implicit stored lists from one side of the adjacency: use
    // the validator on the full adjacency via the envelope rules.
    // adjacency double-lists edges; validate on the half where id > mine to
    // count each edge once.
    std::vector<std::vector<ncc::NodeId>> half(n);
    for (ncc::Slot s = 0; s < n; ++s)
      for (const auto id : result.adjacency[s])
        if (id > net.id_of(s)) half[s].push_back(id);
    const auto v = validate_upper_envelope(net, d, half);
    EXPECT_TRUE(v.ok) << v.message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Envelope, GraphicInputIsRealizedExactly) {
  // On graphic input the envelope algorithm must add nothing.
  auto net = testing::make_ncc0(30, 3);
  const std::vector<std::uint64_t> d(30, 4);
  const auto result = realize_upper_envelope(net, d);
  ASSERT_TRUE(result.realizable);
  for (ncc::Slot s = 0; s < 30; ++s)
    EXPECT_EQ(result.adjacency[s].size(), 4u);
}

TEST(Envelope, DegreeAboveNMinus1StillRejected) {
  auto net = testing::make_ncc0(4, 4);
  const std::vector<std::uint64_t> d{9, 1, 1, 1};
  const auto result = realize_upper_envelope(net, d);
  EXPECT_FALSE(result.realizable);
}

class Ncc1EnvelopeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ncc1EnvelopeSweep, ZeroRoundsAndValidEnvelope) {
  Rng rng(GetParam() + 400);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.below(100);
    std::vector<std::uint64_t> d(n);
    for (auto& x : d) x = rng.below(n);
    auto net = testing::make_ncc1(n, GetParam() * 31 + trial);
    const auto result = realize_upper_envelope_ncc1(net, d);
    ASSERT_TRUE(result.realizable);
    // The abstract's O~(1): here literally zero communication rounds.
    EXPECT_EQ(result.rounds, 0u);
    const auto v = validate_upper_envelope(net, d, result.stored);
    EXPECT_TRUE(v.ok) << v.message << " (n=" << n << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ncc1EnvelopeSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Ncc1Envelope, RequiresClique) {
  auto net = testing::make_ncc0(8, 5);
  EXPECT_THROW(realize_upper_envelope_ncc1(
                   net, std::vector<std::uint64_t>(8, 2)),
               CheckError);
}

}  // namespace
}  // namespace dgr::realize
