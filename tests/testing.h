// Shared helpers for the dgr test suite.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ncc/config.h"
#include "ncc/network.h"

namespace dgr::testing {

/// Engine-visible end state of a finished simulation, shared by the
/// determinism/equivalence suites so the list of compared NetStats fields
/// lives in exactly one place: a new counter added here is covered by every
/// transcript-invariance test at once.
struct NetFingerprint {
  ncc::NetStats stats;
  std::vector<std::size_t> knowledge;

  bool operator==(const NetFingerprint& o) const {
    return stats.rounds == o.stats.rounds &&
           stats.messages_sent == o.stats.messages_sent &&
           stats.messages_delivered == o.stats.messages_delivered &&
           stats.messages_bounced == o.stats.messages_bounced &&
           stats.messages_dropped == o.stats.messages_dropped &&
           stats.max_send_in_round == o.stats.max_send_in_round &&
           stats.max_recv_in_round == o.stats.max_recv_in_round &&
           stats.scope_rounds == o.stats.scope_rounds &&
           knowledge == o.knowledge;
  }
};

inline NetFingerprint net_fingerprint(const ncc::Network& net) {
  NetFingerprint fp;
  fp.stats = net.stats();
  fp.knowledge.reserve(net.n());
  for (ncc::Slot s = 0; s < net.n(); ++s)
    fp.knowledge.push_back(net.knowledge_size(s));
  return fp;
}

/// NCC0 network with bounce overflow (the default production setup).
inline ncc::Network make_ncc0(std::size_t n, std::uint64_t seed = 1) {
  ncc::Config cfg;
  cfg.seed = seed;
  return ncc::Network(n, cfg);
}

/// NCC0 network in strict mode: any capacity overflow throws — used to
/// prove the deterministic primitives stay within the model budget.
inline ncc::Network make_strict_ncc0(std::size_t n, std::uint64_t seed = 1) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.overflow = ncc::OverflowPolicy::kStrict;
  return ncc::Network(n, cfg);
}

/// NCC1 network (full knowledge).
inline ncc::Network make_ncc1(std::size_t n, std::uint64_t seed = 1) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.initial = ncc::InitialKnowledge::kClique;
  return ncc::Network(n, cfg);
}

}  // namespace dgr::testing
