// Shared helpers for the dgr test suite.
#pragma once

#include <memory>

#include "ncc/config.h"
#include "ncc/network.h"

namespace dgr::testing {

/// NCC0 network with bounce overflow (the default production setup).
inline ncc::Network make_ncc0(std::size_t n, std::uint64_t seed = 1) {
  ncc::Config cfg;
  cfg.seed = seed;
  return ncc::Network(n, cfg);
}

/// NCC0 network in strict mode: any capacity overflow throws — used to
/// prove the deterministic primitives stay within the model budget.
inline ncc::Network make_strict_ncc0(std::size_t n, std::uint64_t seed = 1) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.overflow = ncc::OverflowPolicy::kStrict;
  return ncc::Network(n, cfg);
}

/// NCC1 network (full knowledge).
inline ncc::Network make_ncc1(std::size_t n, std::uint64_t seed = 1) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.initial = ncc::InitialKnowledge::kClique;
  return ncc::Network(n, cfg);
}

}  // namespace dgr::testing
