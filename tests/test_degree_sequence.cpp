// Erdős–Gallai, handshake, and tree realizability.
#include <gtest/gtest.h>

#include "graph/degree_sequence.h"

namespace dgr::graph {
namespace {

TEST(Handshake, OddSumFails) {
  EXPECT_FALSE(handshake_ok({3, 2, 2}));
  EXPECT_TRUE(handshake_ok({2, 2, 2}));
}

TEST(Handshake, DegreeTooLargeFails) {
  EXPECT_TRUE(handshake_ok({3, 1, 1, 1, 0}));  // 3 <= n-1 = 4
  EXPECT_FALSE(handshake_ok({4, 2, 1, 1}));    // 4 > n-1 = 3
}

TEST(ErdosGallai, ClassicCases) {
  EXPECT_TRUE(erdos_gallai_graphic({}));
  EXPECT_TRUE(erdos_gallai_graphic({0}));
  EXPECT_TRUE(erdos_gallai_graphic({1, 1}));
  EXPECT_FALSE(erdos_gallai_graphic({1, 0}));
  EXPECT_TRUE(erdos_gallai_graphic({2, 2, 2}));          // triangle
  EXPECT_TRUE(erdos_gallai_graphic({3, 3, 3, 3}));       // K4
  EXPECT_FALSE(erdos_gallai_graphic({3, 3, 1, 1}));      // fails EG at k=2
  EXPECT_TRUE(erdos_gallai_graphic({3, 2, 2, 2, 1}));
  EXPECT_FALSE(erdos_gallai_graphic({4, 4, 4, 1, 1}));   // not graphic
  EXPECT_TRUE(erdos_gallai_graphic({5, 5, 5, 5, 5, 5}));  // K6
}

TEST(ErdosGallai, UnsortedInputAccepted) {
  EXPECT_TRUE(erdos_gallai_graphic({1, 3, 2, 2, 2}));
  EXPECT_FALSE(erdos_gallai_graphic({1, 3, 3, 1}));
}

TEST(TreeRealizable, Conditions) {
  EXPECT_TRUE(tree_realizable({0}));            // n = 1
  EXPECT_FALSE(tree_realizable({1}));
  EXPECT_TRUE(tree_realizable({1, 1}));         // single edge
  EXPECT_TRUE(tree_realizable({2, 1, 1}));      // path
  EXPECT_TRUE(tree_realizable({3, 1, 1, 1}));   // star
  EXPECT_TRUE(tree_realizable({2, 2, 1, 1}));   // path on 4 nodes
  EXPECT_FALSE(tree_realizable({1, 1, 0}));     // zero degree
  EXPECT_FALSE(tree_realizable({2, 2, 2}));     // cycle, sum = 2n
}

TEST(TreeRealizable, PathAndCaterpillar) {
  EXPECT_TRUE(tree_realizable({2, 2, 2, 1, 1}));           // path on 5
  EXPECT_TRUE(tree_realizable({4, 2, 2, 1, 1, 1, 1}));     // caterpillar
  EXPECT_FALSE(tree_realizable({4, 2, 1, 1, 1, 1, 1, 1})); // sum 12 != 14
}

TEST(SameMultiset, Works) {
  EXPECT_TRUE(same_multiset({1, 2, 3}, {3, 1, 2}));
  EXPECT_FALSE(same_multiset({1, 2, 3}, {1, 2, 2}));
  EXPECT_FALSE(same_multiset({1, 2}, {1, 2, 3}));
}

}  // namespace
}  // namespace dgr::graph
