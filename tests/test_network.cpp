// Model-rule enforcement and determinism of the NCC engine.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "testing.h"
#include "util/check.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::NodeId;
using ncc::Slot;

TEST(Network, IdsAreUniqueAndResolvable) {
  auto net = testing::make_ncc0(100, 3);
  std::set<NodeId> ids;
  for (Slot s = 0; s < 100; ++s) {
    ids.insert(net.id_of(s));
    EXPECT_EQ(net.slot_of(net.id_of(s)), s);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(Network, InitialKnowledgeIsPathSuccessor) {
  auto net = testing::make_ncc0(50, 4);
  const auto& order = net.path_order();
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_TRUE(net.node_knows(order[i], net.id_of(order[i + 1])));
  }
  // The tail knows nobody but itself; knowledge size 1.
  EXPECT_EQ(net.knowledge_size(order.back()), 1u);
  EXPECT_EQ(net.knowledge_size(order.front()), 2u);
}

TEST(Network, SendToUnknownIdThrows) {
  auto net = testing::make_ncc0(10, 5);
  // Find a node and an ID it does not know.
  const auto& order = net.path_order();
  const Slot tail = order.back();
  const NodeId stranger = net.id_of(order.front());
  ASSERT_FALSE(net.node_knows(tail, stranger));
  EXPECT_THROW(net.round([&](Ctx& ctx) {
    if (ctx.slot() == tail) ctx.send(stranger, make_msg(1));
  }),
               CheckError);
}

TEST(Network, SendCapEnforced) {
  auto net = testing::make_ncc0(4, 6);
  const auto& order = net.path_order();
  const Slot head = order.front();
  const NodeId succ = net.id_of(order[1]);
  EXPECT_THROW(net.round([&](Ctx& ctx) {
    if (ctx.slot() != head) return;
    for (int i = 0; i <= net.capacity(); ++i) ctx.send(succ, make_msg(1));
  }),
               CheckError);
}

TEST(Network, ForwardingUnknownIdInPayloadThrows) {
  auto net = testing::make_ncc0(10, 7);
  const auto& order = net.path_order();
  const Slot head = order.front();
  const NodeId succ = net.id_of(order[1]);
  const NodeId stranger = net.id_of(order.back());
  ASSERT_FALSE(net.node_knows(head, stranger));
  EXPECT_THROW(net.round([&](Ctx& ctx) {
    if (ctx.slot() == head) ctx.send(succ, make_msg(1).push_id(stranger));
  }),
               CheckError);
}

TEST(Network, MessageDeliveryNextRound) {
  auto net = testing::make_ncc0(3, 8);
  const auto& order = net.path_order();
  const Slot head = order.front();
  const Slot second = order[1];
  int seen = 0;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == head)
      ctx.send(ctx.initial_successor(), make_msg(99).push(1234));
  });
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != second) return;
    for (const auto& m : ctx.inbox()) {
      if (m.tag == 99) {
        EXPECT_EQ(m.word(0), 1234u);
        EXPECT_EQ(m.src, net.id_of(head));
        ++seen;
      }
    }
  });
  EXPECT_EQ(seen, 1);
}

TEST(Network, ReceiverLearnsSenderAndIdWords) {
  auto net = testing::make_ncc0(4, 9);
  const auto& order = net.path_order();
  const Slot a = order[0];
  const Slot b = order[1];
  const Slot c = order[2];
  // a knows b; b knows c. a -> b: just the src. b -> a is impossible until
  // b learns a's ID from the delivery.
  EXPECT_FALSE(net.node_knows(b, net.id_of(a)));
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == a) ctx.send(net.id_of(b), make_msg(1));
  });
  net.round([](Ctx&) {});
  EXPECT_TRUE(net.node_knows(b, net.id_of(a)));

  // b forwards c's ID to a (b knows both); a learns c.
  EXPECT_FALSE(net.node_knows(a, net.id_of(c)));
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == b)
      ctx.send(net.id_of(a), make_msg(2).push_id(net.id_of(c)));
  });
  net.round([](Ctx&) {});
  EXPECT_TRUE(net.node_knows(a, net.id_of(c)));
}

TEST(Network, StrictModeThrowsOnOverflow) {
  auto net = testing::make_strict_ncc0(64, 10);
  // Everyone floods the path head's successor... instead: all nodes that
  // know someone send to their successor — at most 1 each, fine. To force
  // overflow we need many-to-one: teach everyone one target via a chain is
  // long; simpler: use NCC1 strict.
  ncc::Config cfg;
  cfg.seed = 11;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.overflow = ncc::OverflowPolicy::kStrict;
  ncc::Network clique(256, cfg);
  const NodeId target = clique.id_of(0);
  EXPECT_THROW(
      {
        clique.round([&](Ctx& ctx) { ctx.send(target, make_msg(1)); });
        clique.round([](Ctx&) {});
      },
      CheckError);
}

TEST(Network, BounceModeReturnsExcessToSenders) {
  ncc::Config cfg;
  cfg.seed = 12;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(200, cfg);
  const NodeId target = net.id_of(0);
  std::atomic<int> bounced{0};
  std::atomic<int> delivered{0};
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) ctx.send(target, make_msg(1));
  });
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0) delivered += static_cast<int>(ctx.inbox().size());
    bounced += static_cast<int>(ctx.bounced().size());
  });
  EXPECT_EQ(delivered.load(), net.capacity());
  EXPECT_EQ(bounced.load(), 199 - net.capacity());
  EXPECT_EQ(net.stats().messages_bounced, static_cast<std::uint64_t>(199 - net.capacity()));
}

TEST(Network, DeterministicTranscriptAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    ncc::Config cfg;
    cfg.seed = 77;
    cfg.threads = threads;
    ncc::Network net(300, cfg);
    // A randomized gossip: each node with knowledge forwards a token coin.
    std::vector<std::uint64_t> acc(net.n(), 0);
    for (int r = 0; r < 20; ++r) {
      net.round([&](Ctx& ctx) {
        for (const auto& m : ctx.inbox()) acc[ctx.slot()] += m.word(0);
        const NodeId s = ctx.initial_successor();
        if (s != ncc::kNoNode && ctx.rng().chance(0.5))
          ctx.send(s, make_msg(1).push(ctx.rng().below(1000)));
      });
    }
    return acc;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(Network, RoundBudgetGuard) {
  ncc::Config cfg;
  cfg.max_rounds = 5;
  ncc::Network net(4, cfg);
  for (int i = 0; i < 5; ++i) net.round([](Ctx&) {});
  EXPECT_THROW(net.round([](Ctx&) {}), CheckError);
}

TEST(Network, Ncc1KnowsEverything) {
  auto net = testing::make_ncc1(30, 13);
  for (Slot s = 0; s < 30; ++s)
    EXPECT_EQ(net.knowledge_size(s), 30u);
  net.round([&](Ctx& ctx) {
    EXPECT_EQ(ctx.all_ids().size(), 30u);
    // Any node can message any other directly.
    ctx.send(ctx.all_ids().front(), make_msg(1));
  });
}

TEST(Network, ScopedRoundsAttribution) {
  auto net = testing::make_ncc0(8, 14);
  {
    ncc::ScopedRounds scope(net, "phase-a");
    net.round([](Ctx&) {});
    net.round([](Ctx&) {});
  }
  EXPECT_EQ(net.stats().scope_rounds.at("phase-a"), 2u);
}

TEST(Network, StatsCountMessages) {
  auto net = testing::make_ncc0(10, 15);
  net.round([&](Ctx& ctx) {
    const NodeId s = ctx.initial_successor();
    if (s != ncc::kNoNode) ctx.send(s, make_msg(1));
  });
  EXPECT_EQ(net.stats().messages_sent, 9u);
  net.round([](Ctx&) {});
  EXPECT_EQ(net.stats().messages_delivered, 9u);
  EXPECT_EQ(net.stats().rounds, 2u);
}

}  // namespace
}  // namespace dgr
