// Scale, fuzz and accounting stress tests.
#include <gtest/gtest.h>

#include <atomic>

#include "graph/generators.h"
#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "realization/implicit_degree.h"
#include "realization/validate.h"
#include "testing.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

TEST(Stress, LargeStrictPrimitivesPipeline) {
  // n = 20k under *strict* capacity enforcement: the deterministic
  // primitives must never exceed the model budget at scale.
  const std::size_t n = 20'000;
  auto net = testing::make_strict_ncc0(n, 2024);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  const prim::TreeOverlay tree = prim::build_bbst(net, path);
  EXPECT_TRUE(prim::validate_tree(net, tree, path, true));
  const prim::SkipOverlay skip = prim::build_skiplinks(net, path);
  EXPECT_TRUE(prim::validate_skiplinks(net, path, skip));

  Rng rng(9);
  std::vector<std::uint64_t> key(n);
  for (auto& k : key) k = rng.below(n);
  const auto sorted = prim::distributed_sort(net, path, skip, key, true);
  ASSERT_TRUE(prim::validate_path(net, sorted.path));
  for (std::size_t i = 0; i + 1 < sorted.path.order.size(); ++i) {
    const auto a = sorted.path.order[i];
    const auto b = sorted.path.order[i + 1];
    EXPECT_TRUE(key[a] > key[b] ||
                (key[a] == key[b] && net.id_of(a) < net.id_of(b)));
  }
  // Entire pipeline stayed polylog.
  EXPECT_LE(net.stats().rounds,
            6ull * ceil_log2(n) * ceil_log2(n) + 40ull * ceil_log2(n));
}

TEST(Stress, MidScaleRealizationEndToEnd) {
  const std::size_t n = 3000;
  Rng rng(77);
  const auto d = graph::gnp_sequence(n, 6.0 / static_cast<double>(n), rng);
  auto net = testing::make_ncc0(n, 77);
  const auto result = realize::realize_degrees_implicit(net, d);
  ASSERT_TRUE(result.realizable);
  const auto v = realize::validate_degree_realization(net, d, result.stored);
  EXPECT_TRUE(v.ok) << v.message;
  EXPECT_EQ(result.duplicate_edges, 0u);
}

TEST(Stress, EnvelopeDuplicateFreeAcrossManyInstances) {
  // Heavy empirical validation of the DESIGN.md erratum-2 fix: random
  // non-graphic sequences must never re-create an edge.
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + rng.below(80);
    std::vector<std::uint64_t> d(n);
    for (auto& x : d) x = rng.below(n);
    auto net = testing::make_ncc0(n, 9000 + trial);
    const auto result = realize::realize_degrees_implicit(
        net, d, realize::DegreeMode::kEnvelope);
    ASSERT_TRUE(result.realizable);
    EXPECT_EQ(result.duplicate_edges, 0u) << "n=" << n << " trial=" << trial;
    const auto v = realize::validate_upper_envelope(net, d, result.stored);
    EXPECT_TRUE(v.ok) << v.message;
  }
}

TEST(Stress, ImplicitRealizationIsStrictCapacitySafe) {
  // At moderate degrees the whole Algorithm-3 pipeline (sort + aggregates +
  // disjoint star groups) keeps every per-round load within the model's
  // Θ(log n) budget *deterministically* — no bounces needed. (High-Δ
  // instances lean on the Las-Vegas bounce machinery instead.)
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto net = testing::make_strict_ncc0(256, seed);
    const auto d = graph::regular_sequence(256, 8);
    const auto result = realize::realize_degrees_implicit(net, d);
    ASSERT_TRUE(result.realizable);
    EXPECT_EQ(net.stats().messages_bounced, 0u);
  }
}

TEST(Stress, EngineAccountingInvariant) {
  // Fuzz: random sends within caps; sent == delivered + bounced + dropped.
  ncc::Config cfg;
  cfg.seed = 55;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.drop_probability = 0.15;
  ncc::Network net(200, cfg);
  for (int r = 0; r < 50; ++r) {
    net.round([&](ncc::Ctx& ctx) {
      const int burst = static_cast<int>(ctx.rng().below(
          static_cast<std::uint64_t>(ctx.capacity()) + 1));
      for (int i = 0; i < burst; ++i) {
        const auto target = static_cast<ncc::Slot>(ctx.rng().below(net.n()));
        ctx.send(net.id_of(target), ncc::make_msg(1).push(i));
      }
    });
  }
  net.round([](ncc::Ctx&) {});
  const auto& st = net.stats();
  EXPECT_EQ(st.messages_sent,
            st.messages_delivered + st.messages_bounced +
                st.messages_dropped);
  EXPECT_GT(st.messages_dropped, 0u);
  EXPECT_LE(st.max_send_in_round,
            static_cast<std::uint64_t>(net.capacity()));
}

TEST(Stress, ScopeAccountingCoversWholeRun) {
  const std::size_t n = 128;
  auto net = testing::make_ncc0(n, 3);
  const auto d = graph::regular_sequence(n, 4);
  const auto result = realize::realize_degrees_implicit(net, d);
  ASSERT_TRUE(result.realizable);
  // All rounds are attributed to the top-level scope.
  const auto& scopes = net.stats().scope_rounds;
  ASSERT_TRUE(scopes.contains("degree_realization"));
  EXPECT_GE(scopes.at("degree_realization") + 64, net.stats().rounds);
  // And the sub-scopes (sort, aggregates, range cast) exist.
  EXPECT_TRUE(scopes.contains("sort"));
  EXPECT_TRUE(scopes.contains("aggregate"));
  EXPECT_TRUE(scopes.contains("range_cast"));
}

TEST(Stress, ManySeedsSameVerdict) {
  // Las-Vegas: the verdict and the realized degree profile are
  // seed-independent even though transcripts differ.
  const auto d = graph::bimodal_sequence(60, 2, 10);
  std::vector<std::uint64_t> profile0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto net = testing::make_ncc0(60, seed);
    const auto result = realize::realize_degrees_implicit(net, d);
    ASSERT_TRUE(result.realizable);
    const auto g = realize::graph_from_stored(net, result.stored);
    auto profile = g.degree_sequence();
    if (seed == 1) profile0 = profile;
    else EXPECT_EQ(profile, profile0);
  }
}

}  // namespace
}  // namespace dgr
