#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/math_util.h"
#include "util/rng.h"
#include "util/stats_accum.h"
#include "util/table.h"

namespace dgr {
namespace {

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2((1ULL << 40) + 17), 40);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

class IsqrtSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsqrtSweep, RoundTrip) {
  const std::uint64_t x = GetParam();
  const std::uint64_t r = isqrt(x);
  EXPECT_LE(r * r, x);
  EXPECT_GT((r + 1) * (r + 1), x);
}

INSTANTIATE_TEST_SUITE_P(Values, IsqrtSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 8, 9, 15, 16, 17,
                                           99, 100, 101, 65535, 65536,
                                           1ULL << 40, (1ULL << 40) + 1,
                                           999999999999ULL));

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng base(5);
  Rng c1 = base.split(1);
  Rng c2 = base.split(2);
  Rng c1b = base.split(1);
  EXPECT_EQ(c1(), c1b());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c1() == c2() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, ShufflePermutes) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(StatsAccum, Moments) {
  StatsAccum s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.percentile(50), 4.5, 1e-9);
}

TEST(Table, PrintAndCsv) {
  Table t("demo");
  t.header({"a", "b"});
  t.row({"1", "x"});
  t.row({"22", "yy"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("22"), std::string::npos);
  EXPECT_EQ(t.csv(), "a,b\n1,x\n22,yy\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.0), "3");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace dgr
