// Reliable exactly-once exchange under link loss (§8 robustness).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "graph/generators.h"
#include "primitives/path.h"
#include "primitives/reliable.h"
#include "realization/explicit_degree.h"
#include "testing.h"
#include "util/math_util.h"

namespace dgr {
namespace {

using prim::DirectSend;

// Runs an all-to-one + ring exchange at loss rate p; asserts exactly-once.
void run_exchange(double p, std::size_t n, std::uint64_t seed) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.drop_probability = p;
  ncc::Network net(n, cfg);

  std::vector<std::vector<DirectSend>> batch(n);
  std::size_t expected = 0;
  for (ncc::Slot s = 1; s < n; ++s) {
    // Everyone sends two tokens to node 0 and one to a peer.
    batch[s].push_back({net.id_of(0), 1, s * 10 + 1, false});
    batch[s].push_back({net.id_of(0), 1, s * 10 + 2, false});
    batch[s].push_back({net.id_of((s + 1) % n), 2, s, false});
    expected += 3;
  }

  std::mutex mu;
  std::map<std::tuple<ncc::Slot, ncc::NodeId, std::uint64_t>, int> seen;
  std::atomic<std::size_t> delivered{0};
  prim::reliable_exchange(
      net, batch,
      [&](prim::Slot receiver, ncc::NodeId src, std::uint32_t,
          std::uint64_t payload) {
        delivered.fetch_add(1);
        std::scoped_lock lk(mu);
        ++seen[{receiver, src, payload}];
      });

  EXPECT_EQ(delivered.load(), expected) << "p=" << p;
  for (const auto& [key, count] : seen)
    EXPECT_EQ(count, 1) << "duplicate delivery at p=" << p;
  if (p > 0) {
    EXPECT_GT(net.stats().messages_dropped, 0u);
  }
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, ExactlyOnceUnderLoss) { run_exchange(GetParam(), 64, 3); }

INSTANTIATE_TEST_SUITE_P(DropRates, LossSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6));

TEST(Reliable, HeavyContentionAndLoss) {
  // All nodes target one receiver with several messages at 30% loss.
  ncc::Config cfg;
  cfg.seed = 9;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.drop_probability = 0.3;
  ncc::Network net(96, cfg);
  std::vector<std::vector<DirectSend>> batch(net.n());
  std::size_t expected = 0;
  for (ncc::Slot s = 1; s < net.n(); ++s) {
    for (int i = 0; i < 4; ++i) {
      batch[s].push_back({net.id_of(0), 7, static_cast<std::uint64_t>(i),
                          false});
      ++expected;
    }
  }
  std::atomic<std::size_t> delivered{0};
  prim::reliable_exchange(net, batch,
                          [&](prim::Slot, ncc::NodeId, std::uint32_t,
                              std::uint64_t) { delivered.fetch_add(1); });
  EXPECT_EQ(delivered.load(), expected);
}

TEST(Reliable, LossyExplicitizationStillExact) {
  // Build the implicit realization over reliable links, then flip on 25%
  // loss for the explicitization — the overlay must still come out exact.
  const std::size_t n = 80;
  auto net = testing::make_ncc0(n, 5);
  const auto d = graph::regular_sequence(n, 6);
  const auto implicit_result = realize::realize_degrees_implicit(net, d);
  ASSERT_TRUE(implicit_result.realizable);

  net.set_drop_probability(0.25);
  const auto result = realize::make_explicit_reliable(net, implicit_result);
  ASSERT_TRUE(result.realizable);
  for (ncc::Slot s = 0; s < net.n(); ++s)
    EXPECT_EQ(result.adjacency[s].size(), 6u);
  EXPECT_GT(net.stats().messages_dropped, 0u);
}

TEST(Reliable, UnreliableExchangeWouldLose) {
  // Negative control: the *plain* SendQueue pipeline has no retransmission,
  // so under loss the naive exchange misses messages — motivating the
  // acked protocol. (Bounded rounds: we run the same number of rounds the
  // reliable protocol needed and count what arrived.)
  ncc::Config cfg;
  cfg.seed = 10;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.drop_probability = 0.4;
  ncc::Network net(64, cfg);
  std::atomic<std::size_t> got{0};
  net.round([&](ncc::Ctx& ctx) {
    if (ctx.slot() != 0) ctx.send(net.id_of(0), ncc::make_msg(3));
  });
  for (int r = 0; r < 8; ++r) {
    net.round([&](ncc::Ctx& ctx) {
      if (ctx.slot() == 0) got.fetch_add(ctx.inbox().size());
    });
  }
  EXPECT_LT(got.load(), 63u);  // w.h.p. several of 63 sends were dropped
}

TEST(Reliable, BoundedVariantSurvivesCrashedPeers) {
  // 8 of 64 nodes crash before the exchange; messages to them must be
  // abandoned after max_attempts instead of livelocking, and everything
  // addressed to live nodes must still arrive exactly once.
  ncc::Config cfg;
  cfg.seed = 12;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(64, cfg);
  for (ncc::Slot s = 0; s < 8; ++s) net.crash(s);
  ASSERT_EQ(net.crashed_count(), 8u);

  std::vector<std::vector<prim::DirectSend>> batch(net.n());
  std::size_t to_live = 0, to_dead = 0;
  for (ncc::Slot s = 8; s < net.n(); ++s) {
    for (ncc::Slot t = 0; t < 16; ++t) {
      if (t == s) continue;
      batch[s].push_back({net.id_of(t), 5, t, false});
      (t < 8 ? to_dead : to_live) += 1;
    }
  }
  std::atomic<std::size_t> delivered{0};
  const auto result = prim::reliable_exchange_bounded(
      net, batch,
      [&](prim::Slot, ncc::NodeId, std::uint32_t, std::uint64_t) {
        delivered.fetch_add(1);
      },
      /*retransmit_after=*/3, /*max_attempts=*/4);
  EXPECT_EQ(delivered.load(), to_live);
  EXPECT_EQ(result.delivered, to_live);
  EXPECT_EQ(result.given_up, to_dead);
}

TEST(Reliable, BoundedVariantMatchesUnboundedWhenHealthy) {
  ncc::Config cfg;
  cfg.seed = 13;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.drop_probability = 0.2;
  ncc::Network net(48, cfg);
  std::vector<std::vector<prim::DirectSend>> batch(net.n());
  std::size_t expected = 0;
  for (ncc::Slot s = 1; s < net.n(); ++s) {
    batch[s].push_back({net.id_of(0), 6, s, false});
    ++expected;
  }
  std::atomic<std::size_t> delivered{0};
  const auto result = prim::reliable_exchange_bounded(
      net, batch,
      [&](prim::Slot, ncc::NodeId, std::uint32_t, std::uint64_t) {
        delivered.fetch_add(1);
      },
      /*retransmit_after=*/4, /*max_attempts=*/64);
  EXPECT_EQ(delivered.load(), expected);
  EXPECT_EQ(result.given_up, 0u);
}

TEST(Reliable, CrashedNodesAreSilent) {
  auto net = testing::make_ncc0(16, 14);
  const auto& order = net.path_order();
  net.crash(order[3]);
  // The crashed node neither runs bodies nor receives.
  std::atomic<int> crashed_ran{0};
  net.round([&](ncc::Ctx& ctx) {
    if (ctx.slot() == order[3]) crashed_ran.fetch_add(1);
    const auto s = ctx.initial_successor();
    if (s != ncc::kNoNode) ctx.send(s, ncc::make_msg(1));
  });
  net.round([&](ncc::Ctx& ctx) {
    if (ctx.slot() == order[3]) crashed_ran.fetch_add(1);
  });
  EXPECT_EQ(crashed_ran.load(), 0);
  EXPECT_EQ(net.stats().messages_dropped, 1u);  // the message sent to it
}

TEST(Reliable, EmptyBatchesTerminateImmediately) {
  auto net = testing::make_ncc0(8, 11);
  std::vector<std::vector<DirectSend>> batch(net.n());
  const auto rounds = prim::reliable_exchange(
      net, batch,
      [](prim::Slot, ncc::NodeId, std::uint32_t, std::uint64_t) { FAIL(); });
  EXPECT_LE(rounds, 2u);
}

}  // namespace
}  // namespace dgr
