// Range multicast over the skip overlay (our Theorem 6/7 realization).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/range_cast.h"
#include "primitives/skiplinks.h"
#include "testing.h"
#include "util/math_util.h"

namespace dgr {
namespace {

struct CastFixture {
  explicit CastFixture(std::size_t n, std::uint64_t seed = 1,
                       bool strict = false)
      : net(strict ? dgr::testing::make_strict_ncc0(n, seed)
                   : dgr::testing::make_ncc0(n, seed)),
        path(prim::undirect_initial_path(net)),
        tree(prim::build_bbst(net, path)),
        skip(prim::build_skiplinks(net, path)) {}
  ncc::Network net;
  prim::PathOverlay path;
  prim::TreeOverlay tree;
  prim::SkipOverlay skip;
};

TEST(RangeCast, SingleTaskCoversExactRange) {
  CastFixture f(200, 3, /*strict=*/true);
  // Source at position 10 multicasts to [50, 120].
  const ncc::Slot src = f.path.order[10];
  std::vector<std::vector<prim::RangeCastTask>> tasks(f.net.n());
  tasks[src].push_back({50, 120, 1, f.net.id_of(src), true});

  std::mutex mu;
  std::set<prim::Position> hit;
  const std::uint64_t before = f.net.stats().rounds;
  prim::range_multicast(f.net, f.path, f.skip, tasks,
                        [&](prim::Slot r, std::uint32_t, std::uint64_t p) {
                          EXPECT_EQ(p, f.net.id_of(src));
                          std::scoped_lock lk(mu);
                          hit.insert(f.path.pos[r]);
                        });
  const std::uint64_t rounds = f.net.stats().rounds - before;

  EXPECT_EQ(hit.size(), 71u);
  EXPECT_EQ(*hit.begin(), 50);
  EXPECT_EQ(*hit.rbegin(), 120);
  // Route O(log n) + dissemination O(log range) rounds.
  EXPECT_LE(rounds, 6 * static_cast<std::uint64_t>(ceil_log2(200)) + 10);

  // Receivers learned the source ID (it was an ID payload).
  for (std::size_t p = 50; p <= 120; ++p)
    EXPECT_TRUE(f.net.node_knows(f.path.order[p], f.net.id_of(src)));
}

TEST(RangeCast, SourceInsideItsOwnRange) {
  CastFixture f(64, 4, /*strict=*/true);
  const ncc::Slot src = f.path.order[20];
  std::vector<std::vector<prim::RangeCastTask>> tasks(f.net.n());
  tasks[src].push_back({10, 30, 2, 777, false});
  std::atomic<int> hits{0};
  prim::range_multicast(f.net, f.path, f.skip, tasks,
                        [&](prim::Slot, std::uint32_t, std::uint64_t) {
                          hits.fetch_add(1);
                        });
  EXPECT_EQ(hits.load(), 21);
}

TEST(RangeCast, DisjointParallelGroupsRunUnderStrictCaps) {
  // Algorithm 3's shape: disjoint consecutive groups, source adjacent to
  // its range — deterministic load stays within the strict capacity.
  const std::size_t n = 512;
  CastFixture f(n, 5, /*strict=*/true);
  const std::size_t group = 16;  // source + 15 members
  std::vector<std::vector<prim::RangeCastTask>> tasks(f.net.n());
  std::size_t expected = 0;
  for (std::size_t g = 0; g + group <= n; g += group) {
    const ncc::Slot src = f.path.order[g];
    tasks[src].push_back({static_cast<prim::Position>(g + 1),
                          static_cast<prim::Position>(g + group - 1), 3,
                          f.net.id_of(src), true});
    expected += group - 1;
  }
  std::atomic<std::size_t> hits{0};
  prim::range_multicast(f.net, f.path, f.skip, tasks,
                        [&](prim::Slot, std::uint32_t, std::uint64_t) {
                          hits.fetch_add(1);
                        });
  EXPECT_EQ(hits.load(), expected);
}

TEST(RangeCast, OverlappingGroupsDrainWithBounces) {
  // Algorithm 6 phase 2's shape: heavily overlapping predecessor ranges.
  const std::size_t n = 300;
  CastFixture f(n, 6, /*strict=*/false);
  std::vector<std::vector<prim::RangeCastTask>> tasks(f.net.n());
  std::size_t expected = 0;
  const std::size_t rho = 40;
  for (std::size_t i = 100; i < n; ++i) {
    const ncc::Slot src = f.path.order[i];
    tasks[src].push_back({static_cast<prim::Position>(i - rho),
                          static_cast<prim::Position>(i - 1), 4,
                          f.net.id_of(src), true});
    expected += rho;
  }
  std::atomic<std::size_t> hits{0};
  prim::range_multicast(f.net, f.path, f.skip, tasks,
                        [&](prim::Slot, std::uint32_t, std::uint64_t) {
                          hits.fetch_add(1);
                        });
  EXPECT_EQ(hits.load(), expected);
}

TEST(RangeCast, SingletonRange) {
  CastFixture f(32, 7, /*strict=*/true);
  const ncc::Slot src = f.path.order[0];
  std::vector<std::vector<prim::RangeCastTask>> tasks(f.net.n());
  tasks[src].push_back({31, 31, 5, 123, false});
  std::atomic<int> hits{0};
  prim::range_multicast(f.net, f.path, f.skip, tasks,
                        [&](prim::Slot r, std::uint32_t, std::uint64_t v) {
                          EXPECT_EQ(f.path.pos[r], 31);
                          EXPECT_EQ(v, 123u);
                          hits.fetch_add(1);
                        });
  EXPECT_EQ(hits.load(), 1);
}

class RangeCastFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeCastFuzz, RandomOverlappingTasksDeliverExactly) {
  const std::size_t n = 160;
  CastFixture f(n, GetParam() + 40, /*strict=*/false);
  Rng rng(GetParam() * 97 + 13);

  // Random sources with random ranges; track the exact expected multiset.
  std::vector<std::vector<prim::RangeCastTask>> tasks(f.net.n());
  // expected[receiver position] -> list of payloads
  std::vector<std::multiset<std::uint64_t>> expected(n);
  const int task_count = 30;
  for (int t = 0; t < task_count; ++t) {
    const std::size_t src_pos = rng.below(n);
    std::size_t a = rng.below(n), b = rng.below(n);
    if (a > b) std::swap(a, b);
    const ncc::Slot src = f.path.order[src_pos];
    const std::uint64_t payload = 100000 + static_cast<std::uint64_t>(t);
    tasks[src].push_back({static_cast<prim::Position>(a),
                          static_cast<prim::Position>(b),
                          static_cast<std::uint32_t>(t), payload, false});
    for (std::size_t p = a; p <= b; ++p) expected[p].insert(payload);
  }

  std::mutex mu;
  std::vector<std::multiset<std::uint64_t>> got(n);
  prim::range_multicast(f.net, f.path, f.skip, tasks,
                        [&](prim::Slot r, std::uint32_t, std::uint64_t v) {
                          std::scoped_lock lk(mu);
                          got[static_cast<std::size_t>(f.path.pos[r])]
                              .insert(v);
                        });
  for (std::size_t p = 0; p < n; ++p)
    EXPECT_EQ(got[p], expected[p]) << "position " << p;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeCastFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(RangeCast, NoTasksTerminatesImmediately) {
  CastFixture f(16, 8, /*strict=*/true);
  std::vector<std::vector<prim::RangeCastTask>> tasks(f.net.n());
  const std::uint64_t rounds = prim::range_multicast(
      f.net, f.path, f.skip, tasks,
      [](prim::Slot, std::uint32_t, std::uint64_t) { FAIL(); });
  EXPECT_LE(rounds, 2u);
}

}  // namespace
}  // namespace dgr
