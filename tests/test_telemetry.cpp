// Engine telemetry samples (ncc/telemetry.h) and the interval-folding
// collector (scenario/telemetry.h).
#include <gtest/gtest.h>

#include <vector>

#include "ncc/network.h"
#include "ncc/telemetry.h"
#include "scenario/telemetry.h"
#include "testing.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::Network;
using ncc::RoundSample;

struct Recorder : ncc::TelemetrySink {
  std::vector<RoundSample> samples;
  void on_round(const RoundSample& s) override { samples.push_back(s); }
};

TEST(Telemetry, SamplesAreDeltasThatSumToNetStats) {
  ncc::Config cfg;
  cfg.seed = 7;
  cfg.min_capacity = 4;
  cfg.capacity_factor = 1;  // tiny capacity: force bounces too
  cfg.initial = ncc::InitialKnowledge::kClique;  // everyone knows the hot id
  Network net(32, cfg);
  Recorder rec;
  net.set_telemetry(&rec);
  net.set_drop_probability(0.2);
  for (int r = 0; r < 12; ++r) {
    net.round([&](Ctx& ctx) {
      // Everyone floods one hot slot (bounces) plus the successor.
      const ncc::NodeId hot = net.id_of(0);
      if (ctx.knows(hot) && ctx.slot() != 0)
        ctx.send(hot, ncc::make_msg(1).push(2));
      const ncc::NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode) ctx.send(succ, ncc::make_msg(1).push(3));
    });
  }
  net.set_telemetry(nullptr);
  ASSERT_EQ(rec.samples.size(), 12u);
  RoundSample sum;
  std::uint64_t max_send = 0;
  std::uint64_t max_recv = 0;
  for (const auto& s : rec.samples) {
    sum.sent += s.sent;
    sum.delivered += s.delivered;
    sum.bounced += s.bounced;
    sum.dropped += s.dropped;
    max_send = std::max<std::uint64_t>(max_send, s.max_send);
    max_recv = std::max<std::uint64_t>(max_recv, s.max_recv);
  }
  const ncc::NetStats& st = net.stats();
  EXPECT_EQ(sum.sent, st.messages_sent);
  EXPECT_EQ(sum.delivered, st.messages_delivered);
  EXPECT_EQ(sum.bounced, st.messages_bounced);
  EXPECT_EQ(sum.dropped, st.messages_dropped);
  EXPECT_EQ(max_send, st.max_send_in_round);
  EXPECT_EQ(max_recv, st.max_recv_in_round);
  EXPECT_GT(sum.bounced, 0u);
  EXPECT_GT(sum.dropped, 0u);
  // Round indices are consecutive.
  for (std::size_t i = 0; i < rec.samples.size(); ++i)
    EXPECT_EQ(rec.samples[i].round, i);
}

TEST(Telemetry, FrontierFieldTracksActiveSet) {
  Network net = testing::make_ncc0(16, 5);
  Recorder rec;
  net.set_telemetry(&rec);
  net.clear_active();
  net.wake(3);
  net.round_active([&](Ctx& ctx) {
    const ncc::NodeId succ = ctx.initial_successor();
    if (succ != ncc::kNoNode) ctx.send(succ, ncc::make_msg(2).push(1));
  });
  net.set_telemetry(nullptr);
  ASSERT_EQ(rec.samples.size(), 1u);
  EXPECT_TRUE(rec.samples[0].frontier_tracked);
  // Exactly the woken slot ran; its successor (if any) is the frontier.
  EXPECT_EQ(rec.samples[0].frontier, net.active_count());
}

TEST(Telemetry, DetachStopsSampling) {
  Network net = testing::make_ncc0(8);
  Recorder rec;
  net.set_telemetry(&rec);
  net.round([](Ctx&) {});
  net.set_telemetry(nullptr);
  net.round([](Ctx&) {});
  EXPECT_EQ(rec.samples.size(), 1u);
  EXPECT_EQ(net.stats().rounds, 2u);
}

TEST(Telemetry, IntervalFoldingMatchesTotals) {
  Network net = testing::make_ncc0(24, 9);
  scenario::Telemetry tel(/*interval_rounds=*/4, /*ring_capacity=*/64);
  net.set_telemetry(&tel);
  for (int r = 0; r < 10; ++r) {
    net.round([](Ctx& ctx) {
      const ncc::NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode) ctx.send(succ, ncc::make_msg(1).push(1));
    });
  }
  net.set_telemetry(nullptr);
  tel.flush();
  // 10 rounds at interval 4: records of 4, 4, and a flushed tail of 2.
  ASSERT_EQ(tel.intervals(), 3u);
  EXPECT_EQ(tel.interval(0).rounds, 4u);
  EXPECT_EQ(tel.interval(1).rounds, 4u);
  EXPECT_EQ(tel.interval(2).rounds, 2u);
  EXPECT_EQ(tel.interval(0).first_round, 0u);
  EXPECT_EQ(tel.interval(1).first_round, 4u);
  EXPECT_EQ(tel.interval(2).first_round, 8u);
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < tel.intervals(); ++i)
    sent += tel.interval(i).sent;
  EXPECT_EQ(sent, tel.totals().sent);
  EXPECT_EQ(sent, net.stats().messages_sent);
  EXPECT_EQ(tel.totals().rounds, 10u);
  EXPECT_EQ(tel.evicted(), 0u);
}

TEST(Telemetry, RingEvictsOldestButTotalsSurvive) {
  Network net = testing::make_ncc0(8, 2);
  scenario::Telemetry tel(/*interval_rounds=*/2, /*ring_capacity=*/3);
  net.set_telemetry(&tel);
  for (int r = 0; r < 14; ++r) net.round([](Ctx&) {});
  net.set_telemetry(nullptr);
  tel.flush();
  // 7 closed intervals, ring keeps the newest 3.
  EXPECT_EQ(tel.intervals(), 3u);
  EXPECT_EQ(tel.evicted(), 4u);
  EXPECT_EQ(tel.interval(0).first_round, 8u);
  EXPECT_EQ(tel.interval(1).first_round, 10u);
  EXPECT_EQ(tel.interval(2).first_round, 12u);
  EXPECT_EQ(tel.totals().rounds, 14u);
}

TEST(Telemetry, CrashedCountFoldsAsEndOfInterval) {
  Network net = testing::make_ncc0(8, 3);
  scenario::Telemetry tel(/*interval_rounds=*/2, /*ring_capacity=*/8);
  net.set_telemetry(&tel);
  net.round([](Ctx&) {});
  net.crash(1);
  net.crash(1);  // idempotent under telemetry too
  net.round([](Ctx&) {});
  net.round([](Ctx&) {});
  net.crash(2);
  net.round([](Ctx&) {});
  net.set_telemetry(nullptr);
  tel.flush();
  ASSERT_EQ(tel.intervals(), 2u);
  EXPECT_EQ(tel.interval(0).crashed_end, 1u);
  EXPECT_EQ(tel.interval(1).crashed_end, 2u);
  EXPECT_EQ(tel.totals().crashed_end, 2u);
}

}  // namespace
}  // namespace dgr
