// The process-wide executor: task-claiming semantics, caller
// participation, exception draining, nested submission, and — the load-
// bearing property of the whole extraction — concurrent Networks sharing
// one executor with transcripts bit-identical to solo runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ncc/executor.h"
#include "ncc/message.h"
#include "ncc/network.h"
#include "testing.h"
#include "util/check.h"

namespace dgr {
namespace {

using ncc::Executor;

TEST(Executor, RunsEveryTaskExactlyOnce) {
  Executor exec;  // private pool, not the process-wide instance
  const auto lease = exec.lease(4);
  constexpr std::size_t kCount = 300;
  std::vector<std::atomic<int>> hits(kCount);
  exec.parallel_for(lease, kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
  const auto st = exec.stats();
  EXPECT_EQ(st.tasks, kCount);
  // Every task ran on the caller or a pooled worker — no other split is
  // guaranteed: on a loaded single-core machine the workers can drain the
  // whole queue before the caller re-acquires the mutex, so asserting a
  // nonzero caller share here would be a scheduling-luck flake.
  EXPECT_EQ(st.caller_tasks + st.worker_tasks, kCount);
  // Pool sized by the lease: width 4 => at most 3 pooled workers.
  EXPECT_LE(st.workers, 3u);
}

TEST(Executor, CallerDrivesJobAloneWhenPoolEmpty) {
  // Caller participation, deterministically: a width-1 lease spawns no
  // pooled workers, so the submitting thread must claim every task itself
  // (the forward-progress guarantee behind deadlock-free nested runs).
  Executor exec;
  const auto lease = exec.lease(1);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  exec.parallel_for(lease, kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
  const auto st = exec.stats();
  EXPECT_EQ(st.caller_tasks, kCount);
  EXPECT_EQ(st.worker_tasks, 0u);
  EXPECT_EQ(st.workers, 0u);
}

TEST(Executor, ChunkedClaimRunsEveryTaskExactlyOnce) {
  Executor exec;
  const auto lease = exec.lease(4);
  constexpr std::size_t kCount = 301;  // deliberately not a chunk multiple
  for (const std::size_t chunk : {2ul, 7ul, 64ul}) {
    std::vector<std::atomic<int>> hits(kCount);
    exec.parallel_for(
        lease, kCount,
        [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
        chunk);
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "chunk " << chunk << " task " << i;
    }
  }
}

TEST(Executor, ChunkCoveringWholeJobRunsInlineInOrder) {
  // count <= chunk degenerates to the inline path: ascending order on the
  // calling thread, no pooled workers.
  Executor exec;
  const auto lease = exec.lease(8);
  std::vector<std::size_t> order;
  exec.parallel_for(
      lease, 5, [&](std::size_t i) { order.push_back(i); }, 8);
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(exec.stats().workers, 0u);
  EXPECT_EQ(exec.stats().jobs, 0u);
}

TEST(Executor, ChunkedExceptionRethrownAfterEveryTaskExecuted) {
  Executor exec;
  const auto lease = exec.lease(4);
  constexpr std::size_t kCount = 96;
  std::vector<std::atomic<int>> hits(kCount);
  EXPECT_THROW(
      exec.parallel_for(
          lease, kCount,
          [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
            if (i == 40) throw std::runtime_error("task");
          },
          5),
      std::runtime_error);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(Executor, SingleTaskAndEmptyJobRunInline) {
  Executor exec;
  const auto lease = exec.lease(8);
  int ran = 0;
  exec.parallel_for(lease, 1, [&](std::size_t) { ++ran; });
  exec.parallel_for(lease, 0, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
  // Neither call needed the pool.
  EXPECT_EQ(exec.stats().workers, 0u);
  EXPECT_EQ(exec.stats().jobs, 0u);
}

TEST(Executor, LeaseWidthZeroClampsToOneAndReleases) {
  Executor exec;
  {
    auto lease = exec.lease(0);
    EXPECT_EQ(lease.width(), 1u);
    EXPECT_TRUE(static_cast<bool>(lease));
    EXPECT_EQ(exec.stats().clients, 1u);
    auto moved = std::move(lease);
    EXPECT_FALSE(static_cast<bool>(lease));
    EXPECT_EQ(exec.stats().clients, 1u);
  }
  EXPECT_EQ(exec.stats().clients, 0u);
}

TEST(Executor, ExceptionRethrownAfterEveryTaskExecuted) {
  Executor exec;
  const auto lease = exec.lease(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  EXPECT_THROW(
      exec.parallel_for(lease, kCount,
                        [&](std::size_t i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                          if (i % 7 == 3) throw std::runtime_error("task");
                        }),
      std::runtime_error);
  // The failure did not abandon the rest of the job: every task ran.
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(Executor, NestedSubmissionCompletes) {
  // A task of an outer job submits an inner job to the same executor;
  // caller participation guarantees progress even with every pooled
  // worker busy. This is the Runner-drives-multithreaded-Network shape.
  Executor exec;
  const auto outer_lease = exec.lease(4);
  const auto inner_lease = exec.lease(4);
  std::atomic<int> inner_total{0};
  exec.parallel_for(outer_lease, 4, [&](std::size_t) {
    exec.parallel_for(inner_lease, 8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(Executor, ConcurrentJobsFromSeparateThreadsAllComplete) {
  Executor exec;
  constexpr int kClients = 4;
  constexpr std::size_t kCount = 128;
  std::vector<std::atomic<int>> totals(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto lease = exec.lease(3);
      exec.parallel_for(lease, kCount, [&, c](std::size_t) {
        totals[c].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& th : clients) th.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(totals[c].load(), static_cast<int>(kCount)) << "client " << c;
  }
}

// ---- Concurrent networks: the determinism acceptance criterion ----------

/// A messaging-heavy dense workload on the shared process-wide executor:
/// every node floods random targets and folds its inbox each round, so the
/// fingerprint covers sends, delivery order, bounces, and RNG streams.
testing::NetFingerprint run_flood(unsigned threads, bool sparse,
                                  std::uint64_t seed) {
  constexpr std::size_t kN = 160;
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.sparse_rounds = sparse;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(kN, cfg);
  const std::size_t burst = static_cast<std::size_t>(net.capacity()) / 2;
  for (int r = 0; r < 12; ++r) {
    net.round([&](ncc::Ctx& ctx) {
      std::uint64_t acc = 0;
      for (const auto m : ctx.inbox_view()) acc += m.word(0);
      const auto ids = ctx.all_ids();
      for (std::size_t i = 0; i < burst; ++i) {
        ctx.send1(ids[ctx.rng().below(ids.size())], 7, acc + i);
      }
    });
  }
  return testing::net_fingerprint(net);
}

/// A sparse active-set wave (inactive-silent body), the other scheduler.
testing::NetFingerprint run_wave(unsigned threads, bool sparse,
                                 std::uint64_t seed) {
  constexpr std::size_t kN = 160;
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.sparse_rounds = sparse;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(kN, cfg);
  net.wake(3);
  for (int r = 0; r < 20 && net.has_active(); ++r) {
    net.round_active([&](ncc::Ctx& ctx) {
      bool token = ctx.slot() == 3 && r == 0;
      for (const auto m : ctx.inbox_view()) token |= m.tag() == 9;
      if (!token) return;
      const auto ids = ctx.all_ids();
      for (int k = 0; k < 2; ++k) {
        ctx.send1(ids[ctx.rng().below(ids.size())], 9,
                  ctx.rng().below(1u << 16));
      }
    });
  }
  return testing::net_fingerprint(net);
}

TEST(ExecutorConcurrentNetworks, SharedExecutorBitIdenticalToSoloRuns) {
  // Solo references across the full threads x scheduler grid.
  const auto ref_flood = run_flood(1, true, 11);
  const auto ref_wave = run_wave(1, true, 22);
  for (const unsigned threads : {1u, 4u, 8u}) {
    for (const bool sparse : {true, false}) {
      EXPECT_TRUE(ref_flood == run_flood(threads, sparse, 11))
          << "solo flood threads=" << threads << " sparse=" << sparse;
      EXPECT_TRUE(ref_wave == run_wave(threads, sparse, 22))
          << "solo wave threads=" << threads << " sparse=" << sparse;
    }
  }

  // Now the same simulations racing on the shared executor: three client
  // threads running flood and wave concurrently, every combination of
  // thread widths and schedulers. Transcripts must not notice.
  for (const unsigned threads : {1u, 4u, 8u}) {
    for (const bool sparse : {true, false}) {
      testing::NetFingerprint a, b, c;
      std::thread t1([&] { a = run_flood(threads, sparse, 11); });
      std::thread t2([&] { b = run_wave(threads, sparse, 22); });
      std::thread t3([&] { c = run_flood(8, !sparse, 11); });
      t1.join();
      t2.join();
      t3.join();
      EXPECT_TRUE(ref_flood == a)
          << "concurrent flood threads=" << threads << " sparse=" << sparse;
      EXPECT_TRUE(ref_wave == b)
          << "concurrent wave threads=" << threads << " sparse=" << sparse;
      EXPECT_TRUE(ref_flood == c) << "concurrent cross-config flood";
    }
  }
}

}  // namespace
}  // namespace dgr
