// Theorem 4 (broadcast/aggregation) and Theorem 5 (collection).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "primitives/bbst.h"
#include "primitives/broadcast.h"
#include "primitives/collection.h"
#include "primitives/path.h"
#include "testing.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 1)
      : net(dgr::testing::make_strict_ncc0(n, seed)),
        path(prim::undirect_initial_path(net)),
        tree(prim::build_bbst(net, path)) {}
  ncc::Network net;
  prim::PathOverlay path;
  prim::TreeOverlay tree;
};

class BroadcastSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BroadcastSweep, RootValueReachesEveryone) {
  Fixture f(GetParam(), GetParam() + 7);
  const std::uint64_t before = f.net.stats().rounds;
  const auto got = prim::broadcast_from_root(f.net, f.tree, 4242);
  const std::uint64_t rounds = f.net.stats().rounds - before;
  for (ncc::Slot s = 0; s < f.net.n(); ++s) EXPECT_EQ(got[s], 4242u);
  EXPECT_LE(rounds, static_cast<std::uint64_t>(f.tree.height) + 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastSweep,
                         ::testing::Values(1, 2, 3, 10, 64, 100, 511, 1000));

TEST(Broadcast, LeaderBroadcastTeachesId) {
  Fixture f(200, 5);
  // Pick the path tail as leader — maximally far from the root.
  const ncc::Slot leader = f.path.order.back();
  const auto got = prim::broadcast_from_leader(f.net, f.tree, leader,
                                               f.net.id_of(leader),
                                               /*value_is_id=*/true);
  for (ncc::Slot s = 0; s < f.net.n(); ++s) {
    EXPECT_EQ(got[s], f.net.id_of(leader));
    EXPECT_TRUE(f.net.node_knows(s, f.net.id_of(leader)));
  }
}

TEST(Aggregate, SumMaxMinOr) {
  Fixture f(300, 6);
  const std::size_t n = f.net.n();
  Rng rng(99);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.below(10000);

  EXPECT_EQ(prim::aggregate_to_root(f.net, f.tree, v, prim::comb_sum),
            std::accumulate(v.begin(), v.end(), std::uint64_t{0}));
  EXPECT_EQ(prim::aggregate_to_root(f.net, f.tree, v, prim::comb_max),
            *std::max_element(v.begin(), v.end()));
  EXPECT_EQ(prim::aggregate_to_root(f.net, f.tree, v, prim::comb_min),
            *std::min_element(v.begin(), v.end()));
  std::uint64_t all_or = 0;
  for (const auto x : v) all_or |= x;
  EXPECT_EQ(prim::aggregate_to_root(f.net, f.tree, v, prim::comb_or), all_or);
}

TEST(Aggregate, AndBroadcastInformsAll) {
  Fixture f(128, 8);
  std::vector<std::uint64_t> v(f.net.n(), 1);
  const std::uint64_t before = f.net.stats().rounds;
  const std::uint64_t total = prim::aggregate_and_broadcast(
      f.net, f.tree, v, prim::comb_sum);
  EXPECT_EQ(total, 128u);
  EXPECT_LE(f.net.stats().rounds - before,
            4 * static_cast<std::uint64_t>(f.tree.height) + 8);
}

TEST(Aggregate, ArgmaxFindsWinnerAndTeachesId) {
  Fixture f(150, 9);
  Rng rng(1234);
  std::vector<std::uint64_t> key(f.net.n());
  for (auto& k : key) k = rng.below(1000);
  key[37] = 5000;  // unique maximum
  const auto result = prim::aggregate_argmax(f.net, f.tree, key);
  EXPECT_EQ(result.key, 5000u);
  EXPECT_EQ(result.id, f.net.id_of(37));
  for (ncc::Slot s = 0; s < f.net.n(); ++s)
    EXPECT_TRUE(f.net.node_knows(s, result.id));
}

TEST(Aggregate, ArgmaxTieBreaksBySmallestId) {
  Fixture f(64, 10);
  std::vector<std::uint64_t> key(f.net.n(), 7);  // all tied
  const auto result = prim::aggregate_argmax(f.net, f.tree, key);
  ncc::NodeId smallest = ~ncc::NodeId{0};
  for (ncc::Slot s = 0; s < f.net.n(); ++s)
    smallest = std::min(smallest, f.net.id_of(s));
  EXPECT_EQ(result.id, smallest);
}

class MedianSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MedianSweep, MedianBecomesCommonKnowledge) {
  const std::size_t n = GetParam();
  Fixture f(n, n + 99);
  const std::uint64_t before = f.net.stats().rounds;
  const ncc::NodeId median = prim::announce_median(f.net, f.tree, f.path);
  const std::uint64_t rounds = f.net.stats().rounds - before;

  // Corollary 2: the right node, known to everybody, in O(log n).
  EXPECT_EQ(median, f.net.id_of(f.path.order[(n - 1) / 2]));
  for (ncc::Slot s = 0; s < f.net.n(); ++s)
    EXPECT_TRUE(f.net.node_knows(s, median));
  EXPECT_LE(rounds, 6 * static_cast<std::uint64_t>(ceil_log2(n)) + 10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MedianSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 64, 100, 513));

class CollectSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollectSweep, LeaderGetsEveryToken) {
  const std::size_t k = GetParam();
  // Bounce mode: collection is Las-Vegas under contention.
  auto net = dgr::testing::make_ncc0(256, k + 3);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::TreeOverlay tree = prim::build_bbst(net, path);

  std::vector<std::uint8_t> has(net.n(), 0);
  std::vector<std::uint64_t> token(net.n(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    has[i] = 1;
    token[i] = 10'000 + i;
  }
  const ncc::Slot leader = path.order.back();
  const std::uint64_t before = net.stats().rounds;
  auto collected = prim::global_collect(net, tree, leader, has, token);
  const std::uint64_t rounds = net.stats().rounds - before;

  ASSERT_EQ(collected.size(), k);
  std::sort(collected.begin(), collected.end());
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(collected[i], 10'000 + i);
  // Theorem 5: O(k + log n) — our direct variant: O(k/log n + log n).
  EXPECT_LE(rounds, k + 12 * static_cast<std::uint64_t>(
                            ceil_log2(net.n()) + 2));
}

INSTANTIATE_TEST_SUITE_P(TokenCounts, CollectSweep,
                         ::testing::Values(0, 1, 5, 32, 100, 256));

TEST(DirectExchange, AllNotesDelivered) {
  auto net = dgr::testing::make_ncc0(100, 17);
  prim::PathOverlay path = prim::undirect_initial_path(net);

  // Everyone tells its path successor and predecessor a number.
  std::vector<std::vector<prim::DirectSend>> batch(net.n());
  std::size_t expected = 0;
  for (ncc::Slot s = 0; s < net.n(); ++s) {
    if (path.succ[s] != ncc::kNoNode) {
      batch[s].push_back({path.succ[s], 1, s, false});
      ++expected;
    }
    if (path.pred[s] != ncc::kNoNode) {
      batch[s].push_back({path.pred[s], 1, s, false});
      ++expected;
    }
  }
  std::atomic<std::size_t> delivered{0};
  prim::direct_exchange(net, batch,
                        [&](prim::Slot, ncc::NodeId, std::uint32_t tag,
                            std::uint64_t) {
                          if (tag == 1) delivered.fetch_add(1);
                        });
  EXPECT_EQ(delivered.load(), expected);
}

}  // namespace
}  // namespace dgr
