// Arena-pool reuse: bit-identical transcripts and bounded, reclaimable
// memory.
//
// Config::arena_pool recycles the whole per-Network round scratch bundle
// (wire arenas, sparse histograms, inbox tables, overflow/bounce/trace
// tables) across Networks. The contract under test:
//   (i)   a pooled run's transcript is bit-for-bit identical to a fresh
//         Network's, for any thread count, either scheduler, and across
//         the overflow/bounce, lossy, crash and traced delivery paths;
//   (ii)  reuse really happens (pool stats), including across Networks of
//         DIFFERENT sizes — the bundle regrows or partially re-primes;
//   (iii) pool memory is bounded (max_free) and reclaimable (trim()).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ncc/arena.h"
#include "ncc/trace.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::Slot;

struct RunFingerprint {
  testing::NetFingerprint net;
  std::vector<std::uint64_t> inbox_digest;
  std::vector<std::uint64_t> bounce_digest;

  bool operator==(const RunFingerprint& o) const {
    return net == o.net && inbox_digest == o.inbox_digest &&
           bounce_digest == o.bounce_digest;
  }
};

// Every deliver() branch in one workload: hot-set oversubscription
// (bounce), 15% link loss (lossy streaming pass), two mid-run crashes, and
// flood/trickle oscillation so the dense-round prediction flips both ways.
RunFingerprint run_workload(std::size_t n, unsigned threads, bool sparse,
                            ncc::ArenaPool* pool, bool traced = false) {
  ncc::Config cfg;
  cfg.seed = 909;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  cfg.sparse_rounds = sparse;
  cfg.drop_probability = 0.15;
  cfg.arena_pool = pool;
  ncc::Network net(n, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(n, 0);
  fp.bounce_digest.assign(n, 0);

  for (int r = 0; r < 20; ++r) {
    if (r == 4) net.crash(1);
    if (r == 11) net.crash(static_cast<Slot>(n / 2));
    net.round([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      for (const auto m : ctx.inbox_view())
        in = hash_mix(in, m.src(), m.word(0));
      auto& bo = fp.bounce_digest[ctx.slot()];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);
      const auto ids = ctx.all_ids();
      if (r % 4 < 2) {  // flood rounds: dense prediction, hot-set bounces
        const int sends = ctx.capacity() / 2;
        for (int i = 0; i < sends; ++i) {
          const std::size_t pick = ctx.rng().chance(0.3)
                                       ? ctx.rng().below(3)
                                       : ctx.rng().below(ids.size());
          ctx.send(ids[pick], make_msg(5).push(ctx.rng().below(1u << 18)));
        }
      } else if (ctx.slot() < 4) {  // trickle rounds: sparse prediction
        ctx.send(ids[ctx.rng().below(ids.size())], make_msg(6).push(r));
      }
    });
  }

  fp.net = testing::net_fingerprint(net);
  return fp;
}

TEST(ArenaPool, PooledTranscriptIdenticalToFresh) {
  constexpr std::size_t kN = 160;
  for (const bool sparse : {true, false}) {
    const RunFingerprint fresh = run_workload(kN, 1, sparse, nullptr);
    // Drive every pooled run through ONE pool so later runs consume a
    // bundle dirtied (then sanitized) by earlier runs — including runs at
    // a different thread count and, below, a different n.
    ncc::ArenaPool pool;
    for (const unsigned threads : {1u, 4u, 8u}) {
      EXPECT_TRUE(fresh == run_workload(kN, threads, sparse, &pool))
          << "pooled transcript diverged (threads=" << threads
          << ", sparse=" << sparse << ")";
    }
    // Sanity: the workload exercised every delivery branch, and the pool
    // really recycled bundles instead of allocating fresh ones.
    EXPECT_GT(fresh.net.stats.messages_bounced, 0u);
    EXPECT_GT(fresh.net.stats.messages_dropped, 0u);
    EXPECT_GT(fresh.net.stats.messages_delivered, 0u);
    EXPECT_EQ(pool.stats().acquires, 3u);
    EXPECT_EQ(pool.stats().reuses, 2u);
  }
}

TEST(ArenaPool, TracedPooledTranscriptIdenticalToFresh) {
  constexpr std::size_t kN = 96;
  const RunFingerprint fresh =
      run_workload(kN, 1, true, nullptr, /*traced=*/true);
  ncc::ArenaPool pool;
  // First run materializes the lazy trace tables in the bundle; the second
  // reuses them after a sanitize.
  EXPECT_TRUE(fresh == run_workload(kN, 1, true, &pool, true));
  EXPECT_TRUE(fresh == run_workload(kN, 4, true, &pool, true));
  EXPECT_EQ(pool.stats().reuses, 1u);
}

// A bundle released by a big Network and re-acquired by a smaller one (and
// vice versa) must behave exactly like fresh scratch: prepare() is
// grow-only, sanitize() restores the between-round invariants, and the
// stale high-slot state of the larger run is unreachable to the smaller.
TEST(ArenaPool, ReuseAcrossDifferentSizes) {
  ncc::ArenaPool pool;
  const RunFingerprint big_fresh = run_workload(224, 1, true, nullptr);
  const RunFingerprint small_fresh = run_workload(72, 1, true, nullptr);
  EXPECT_TRUE(big_fresh == run_workload(224, 1, true, &pool));
  EXPECT_TRUE(small_fresh == run_workload(72, 1, true, &pool));   // shrink
  EXPECT_TRUE(big_fresh == run_workload(224, 4, true, &pool));    // regrow
  EXPECT_EQ(pool.stats().acquires, 3u);
  EXPECT_EQ(pool.stats().reuses, 2u);
}

TEST(ArenaPool, FreeListIsBoundedByMaxFree) {
  ncc::ArenaPool pool(/*max_free=*/2);
  std::vector<std::unique_ptr<ncc::RoundScratch>> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.free_count(), 0u);
  for (auto& b : held) pool.release(std::move(b));
  EXPECT_EQ(pool.free_count(), 2u);  // releases beyond the bound are freed
  EXPECT_EQ(pool.stats().dropped, 3u);
}

TEST(ArenaPool, ShrinkAfterHugeRunReclaimsEverything) {
  ncc::ArenaPool pool;
  // A big traced run materializes every lazy table in the bundle, so the
  // retained footprint is the full worst case for this n.
  run_workload(1 << 12, 1, true, &pool, /*traced=*/true);
  const std::size_t retained = pool.retained_bytes();
  EXPECT_GT(retained, 0u);
  EXPECT_EQ(pool.free_count(), 1u);
  // The retained bundle is bounded by the largest run, not the sum of all
  // runs: a second, smaller run reuses it without meaningfully growing the
  // pool (its different traffic may still nudge a small sparse table up a
  // doubling, hence the slack — what must NOT happen is another O(n)).
  run_workload(256, 1, true, &pool);
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_LE(pool.retained_bytes(), retained + (1u << 16));
  // trim() is the reclaim knob: afterwards the pool holds nothing.
  pool.trim();
  EXPECT_EQ(pool.retained_bytes(), 0u);
  EXPECT_EQ(pool.free_count(), 0u);
}

}  // namespace
}  // namespace dgr
