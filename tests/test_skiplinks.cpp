// Skip overlay (pointer doubling) construction.
#include <gtest/gtest.h>

#include "primitives/bbst.h"
#include "primitives/path.h"
#include "primitives/skiplinks.h"
#include "testing.h"
#include "util/math_util.h"

namespace dgr {
namespace {

class SkipSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SkipSweep, LinksPointExactly2kAway) {
  const std::size_t n = GetParam();
  auto net = testing::make_strict_ncc0(n, 500 + n);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::TreeOverlay tree = prim::build_bbst(net, path);
  (void)tree;
  const std::uint64_t before = net.stats().rounds;
  const prim::SkipOverlay skip = prim::build_skiplinks(net, path);
  const std::uint64_t rounds = net.stats().rounds - before;

  EXPECT_TRUE(prim::validate_skiplinks(net, path, skip));
  EXPECT_LE(rounds, 2 * static_cast<std::uint64_t>(ceil_log2(n)) + 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkipSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 16, 31, 64,
                                           100, 333, 1024));

TEST(SkipLinks, SubPathLinksStayInside) {
  auto net = testing::make_strict_ncc0(64, 3);
  prim::PathOverlay full = prim::undirect_initial_path(net);
  prim::build_bbst(net, full);

  prim::PathOverlay sub;
  const std::size_t keep = 24;
  sub.pred.assign(64, ncc::kNoNode);
  sub.succ.assign(64, ncc::kNoNode);
  sub.pos = full.pos;
  sub.is_member.assign(64, 0);
  sub.order.assign(full.order.begin(), full.order.begin() + keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const ncc::Slot s = sub.order[i];
    sub.is_member[s] = 1;
    sub.pred[s] = full.pred[s];
    sub.succ[s] = i + 1 < keep ? full.succ[s] : ncc::kNoNode;
  }
  const prim::SkipOverlay skip = prim::build_skiplinks(net, sub);
  EXPECT_TRUE(prim::validate_skiplinks(net, sub, skip));
}

}  // namespace
}  // namespace dgr
