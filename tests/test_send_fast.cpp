// The one-word wire-level fast path (Ctx::send1 / send1_id): transcript
// equivalence with the Message path, learning semantics, and failure
// diagnostics.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "ncc/network.h"
#include "testing.h"
#include "util/check.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::Network;

/// Runs `rounds` rounds of `body` on a fresh net and fingerprints the end
/// state plus every delivered (tag, word, src) triple.
struct RunResult {
  testing::NetFingerprint fp;
  std::vector<std::uint64_t> seen;
};

RunResult drive(std::size_t n, unsigned threads, bool clique, int rounds,
                const std::function<void(Ctx&)>& body) {
  ncc::Config cfg;
  cfg.seed = 21;
  cfg.threads = threads;
  if (clique) cfg.initial = ncc::InitialKnowledge::kClique;
  Network net(n, cfg);
  RunResult out;
  out.seen.assign(n, 0);
  for (int r = 0; r < rounds; ++r) {
    net.round([&](Ctx& ctx) {
      for (const auto m : ctx.inbox_view()) {
        out.seen[ctx.slot()] ^=
            (m.tag() * 0x9E3779B9u) + m.word(0) + m.src();
      }
      body(ctx);
    });
  }
  out.fp = testing::net_fingerprint(net);
  return out;
}

TEST(SendFast, Send1MatchesMessagePathTranscript) {
  for (const unsigned threads : {1u, 4u}) {
    const auto slow = drive(64, threads, /*clique=*/false, 6, [](Ctx& ctx) {
      const ncc::NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode)
        ctx.send(succ, ncc::make_msg(5).push(ctx.slot() * 3 + 1));
    });
    const auto fast = drive(64, threads, /*clique=*/false, 6, [](Ctx& ctx) {
      const ncc::NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode) ctx.send1(succ, 5, ctx.slot() * 3 + 1);
    });
    EXPECT_TRUE(slow.fp == fast.fp) << "threads=" << threads;
    EXPECT_EQ(slow.seen, fast.seen) << "threads=" << threads;
  }
}

TEST(SendFast, Send1IdMatchesPushIdPathAndLearns) {
  for (const bool clique : {false, true}) {
    const auto slow = drive(48, 1, clique, 6, [](Ctx& ctx) {
      const ncc::NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode)
        ctx.send(succ, ncc::make_msg(6).push_id(ctx.id()));
    });
    const auto fast = drive(48, 1, clique, 6, [](Ctx& ctx) {
      const ncc::NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode) ctx.send1_id(succ, 6, ctx.id());
    });
    EXPECT_TRUE(slow.fp == fast.fp) << "clique=" << clique;
    EXPECT_EQ(slow.seen, fast.seen) << "clique=" << clique;
  }
}

TEST(SendFast, Send1IdTeachesReceiverTheId) {
  ncc::Config cfg;
  cfg.seed = 4;
  cfg.shuffle_path = false;  // slot s's successor is slot s+1
  Network net(8, cfg);
  // Slot 0 forwards its own ID to slot 1; slot 1 then knows it and can
  // send back — pure KT0 mechanics over the fast path.
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0) ctx.send1_id(ctx.initial_successor(), 1, ctx.id());
  });
  bool replied = false;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 1) return;
    for (const auto m : ctx.inbox_view()) {
      EXPECT_TRUE(ctx.knows(m.id_word(0)));
      ctx.send1(m.id_word(0), 2, 99);
      replied = true;
    }
  });
  EXPECT_TRUE(replied);
  EXPECT_EQ(net.stats().messages_sent, 2u);
}

TEST(SendFast, Send1DiagnosticsMatchSendChecks) {
  ncc::Config cfg;
  cfg.seed = 4;
  cfg.shuffle_path = false;
  Network net(8, cfg);
  // KT0 violation: slot 0 does not know slot 5's ID.
  EXPECT_THROW(net.round([&](Ctx& ctx) {
                 if (ctx.slot() == 0) ctx.send1(net.id_of(5), 1, 0);
               }),
               CheckError);
  // Unknown forwarded ID.
  EXPECT_THROW(net.round([&](Ctx& ctx) {
                 if (ctx.slot() == 0)
                   ctx.send1_id(ctx.initial_successor(), 1, net.id_of(6));
               }),
               CheckError);
  // Null destination.
  EXPECT_THROW(net.round([&](Ctx& ctx) {
                 if (ctx.slot() == 0) ctx.send1(ncc::kNoNode, 1, 0);
               }),
               CheckError);
  // Capacity exhaustion, with the same diagnostic as the Message path.
  try {
    net.round([&](Ctx& ctx) {
      if (ctx.slot() != 0) return;
      for (int i = 0; i <= net.capacity(); ++i)
        ctx.send1(ctx.initial_successor(), 1, i);
    });
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("send capacity exceeded"),
              std::string::npos);
  }
  // A caught failure leaves no transcript trace: the next round is clean.
  net.round([](Ctx&) {});
}

TEST(SendFast, Send1IdRejectsNullIdOnCliqueLikeSend) {
  // On a clique, common knowledge covers every real ID — but kNoNode is
  // rejected by send()'s forwarded-ID loop, and send1_id must match.
  ncc::Config cfg;
  cfg.seed = 8;
  cfg.initial = ncc::InitialKnowledge::kClique;
  Network net(8, cfg);
  const ncc::NodeId peer = net.id_of(1);
  EXPECT_THROW(net.round([&](Ctx& ctx) {
                 if (ctx.slot() == 0)
                   ctx.send(peer, ncc::make_msg(1).push_id(ncc::kNoNode));
               }),
               CheckError);
  EXPECT_THROW(net.round([&](Ctx& ctx) {
                 if (ctx.slot() == 0) ctx.send1_id(peer, 1, ncc::kNoNode);
               }),
               CheckError);
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(SendFast, RejectedSend1LeavesNoTrace) {
  ncc::Config cfg;
  cfg.seed = 4;
  cfg.shuffle_path = false;
  Network net(8, cfg);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) return;
    try {
      ctx.send1(net.id_of(5), 3, 1);  // KT0 violation, caught in-body
    } catch (const CheckError&) {
    }
    ctx.send1(ctx.initial_successor(), 4, 2);  // the only surviving send
  });
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

}  // namespace
}  // namespace dgr
