// Instance generators: everything claimed graphic/realizable must be.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr::graph {
namespace {

TEST(Generators, RegularIsGraphic) {
  for (const std::size_t n : {2u, 5u, 16u, 101u}) {
    for (const std::uint64_t d : {0u, 1u, 2u, 3u}) {
      if (d + 1 > n) continue;
      const auto seq = regular_sequence(n, d);
      EXPECT_TRUE(erdos_gallai_graphic(seq)) << "n=" << n << " d=" << d;
    }
  }
}

TEST(Generators, GnpIsGraphicByConstruction) {
  Rng rng(3);
  for (const double p : {0.01, 0.1, 0.5}) {
    const auto seq = gnp_sequence(200, p, rng);
    EXPECT_TRUE(erdos_gallai_graphic(seq)) << "p=" << p;
  }
}

TEST(Generators, GnpDensityRoughlyMatches) {
  Rng rng(4);
  const auto seq = gnp_sequence(500, 0.1, rng);
  const double avg =
      static_cast<double>(degree_sum(seq)) / static_cast<double>(seq.size());
  EXPECT_NEAR(avg, 0.1 * 499, 8.0);
}

class PowerlawSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PowerlawSweep, RepairedToGraphic) {
  Rng rng(GetParam());
  const auto seq = powerlaw_sequence(300, 60, 2.2, rng);
  EXPECT_TRUE(erdos_gallai_graphic(seq));
  EXPECT_EQ(seq.size(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerlawSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Generators, BimodalIsGraphic) {
  const auto seq = bimodal_sequence(100, 2, 20);
  EXPECT_TRUE(erdos_gallai_graphic(seq));
}

TEST(Generators, StarHeavyConcentratesDegrees) {
  const std::uint64_t m = 2000;
  const auto seq = star_heavy_sequence(500, m);
  EXPECT_TRUE(erdos_gallai_graphic(seq));
  // Non-zero degrees confined to Θ(√m) nodes.
  const auto nonzero = static_cast<std::uint64_t>(
      std::count_if(seq.begin(), seq.end(),
                    [](std::uint64_t d) { return d > 0; }));
  EXPECT_LE(nonzero, 4 * isqrt(2 * m) + 4);
  // Edge count near target.
  EXPECT_GE(degree_sum(seq) / 2, m * 9 / 10);
}

TEST(Generators, RandomTreeSequenceIsTreeRealizable) {
  Rng rng(5);
  for (const std::size_t n : {2u, 3u, 10u, 100u, 999u}) {
    const auto seq = random_tree_sequence(n, rng);
    EXPECT_TRUE(tree_realizable(seq)) << "n=" << n;
  }
}

TEST(Generators, MakeGraphicRepairsAnything) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.below(50);
    DegreeSequence d(n);
    for (auto& x : d) x = rng.below(2 * n);  // wildly infeasible
    const auto fixed = make_graphic(d);
    EXPECT_TRUE(erdos_gallai_graphic(fixed));
    for (std::size_t i = 0; i < n; ++i) EXPECT_LE(fixed[i], d[i]);
  }
}

TEST(Generators, ThresholdsWithinRange) {
  Rng rng(7);
  const auto u = uniform_thresholds(100, 20, rng);
  for (const auto r : u) {
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 20u);
  }
  const auto z = zipf_thresholds(100, 30, 2.0, rng);
  for (const auto r : z) {
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 30u);
  }
  const auto t = tiered_thresholds(100, 5, 20, 15, 8, 2);
  EXPECT_EQ(std::count(t.begin(), t.end(), 20u), 5);
  EXPECT_EQ(std::count(t.begin(), t.end(), 8u), 15);
  EXPECT_EQ(std::count(t.begin(), t.end(), 2u), 80);
}

}  // namespace
}  // namespace dgr::graph
