// Active-set (sparse) round scheduling: transcript equivalence and wake-set
// semantics.
//
// The engine contract (network.h): a primitive driven through round_active
// produces a bit-for-bit identical transcript whether the scheduler
// dispatches only the active slots (Config::sparse_rounds = true, the
// default) or every slot (false, the dense reference mode), for any worker
// thread count. These tests pin that equivalence for every frontier-driven
// primitive — broadcast, aggregation, argmax, both sorting networks, BBST
// construction, range multicast, and the collection utilities — across
// thread counts and seeds, plus the wake-set edge cases (wake with an empty
// inbox, wake of an already-active slot, bounce-driven reactivation).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "primitives/bbst.h"
#include "primitives/broadcast.h"
#include "primitives/collection.h"
#include "primitives/path.h"
#include "primitives/range_cast.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::NodeId;
using ncc::Slot;

constexpr std::size_t kN = 193;  // odd, non-power-of-two on purpose

ncc::Network make_net(bool sparse, unsigned threads, std::uint64_t seed) {
  ncc::Config cfg;
  cfg.seed = seed;
  cfg.sparse_rounds = sparse;
  cfg.threads = threads;
  return ncc::Network(kN, cfg);
}

/// Full observable state of a finished run: the shared engine fingerprint
/// (testing.h) plus an order-sensitive digest the workload accumulates.
struct Fingerprint {
  testing::NetFingerprint net;
  std::uint64_t digest = 0;

  bool operator==(const Fingerprint& o) const {
    return net == o.net && digest == o.digest;
  }
};

Fingerprint seal(const ncc::Network& net, std::uint64_t digest) {
  return {testing::net_fingerprint(net), digest};
}

std::uint64_t digest_words(std::uint64_t acc,
                           const std::vector<std::uint64_t>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) acc = hash_mix(acc, i, v[i]);
  return acc;
}

// Each workload runs a primitive end to end and folds everything a referee
// can observe into the digest.
using Workload = std::uint64_t (*)(ncc::Network&);

std::uint64_t wl_broadcast(ncc::Network& net) {
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::TreeOverlay tree = prim::build_bbst(net, path);
  std::uint64_t acc = digest_words(1, prim::broadcast_from_root(
                                          net, tree, 0xB00Cu));
  const Slot leader = path.order[path.order.size() / 3];
  acc = digest_words(acc, prim::broadcast_from_leader(
                              net, tree, leader, net.id_of(leader), true));
  acc = hash_mix(acc, prim::announce_median(net, tree, path), 0);
  return acc;
}

std::uint64_t wl_aggregate(ncc::Network& net) {
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::TreeOverlay tree = prim::build_bbst(net, path);
  std::vector<std::uint64_t> v(net.n());
  for (Slot s = 0; s < net.n(); ++s) v[s] = (s * 37u) % 101u;
  std::uint64_t acc = 1;
  acc = hash_mix(acc, prim::aggregate_and_broadcast(net, tree, v,
                                                    prim::comb_sum), 0);
  acc = hash_mix(acc, prim::aggregate_to_root(net, tree, v, prim::comb_max),
                 1);
  const prim::ArgmaxResult am = prim::aggregate_argmax(net, tree, v);
  acc = hash_mix(acc, am.key, am.id);
  const prim::PrefixSums ps = prim::tree_prefix_sum(net, tree, v);
  acc = digest_words(acc, ps.exclusive);
  acc = digest_words(acc, ps.subtree);
  return acc;
}

std::uint64_t wl_bbst(ncc::Network& net) {
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::TreeOverlay tree = prim::build_bbst(net, path);
  EXPECT_TRUE(prim::validate_tree(net, tree, path, true));
  prim::TreeOverlay warm = prim::build_warmup_tree(net, path);
  EXPECT_TRUE(prim::validate_tree(net, warm, path, false));
  std::uint64_t acc = 1;
  for (Slot s = 0; s < net.n(); ++s) {
    acc = hash_mix(acc, tree.nodes[s].parent, tree.nodes[s].left);
    acc = hash_mix(acc, tree.nodes[s].right,
                   static_cast<std::uint64_t>(tree.nodes[s].inorder));
    acc = hash_mix(acc, warm.nodes[s].parent, warm.nodes[s].left);
  }
  return acc;
}

template <bool kTransposition>
std::uint64_t wl_sort(ncc::Network& net) {
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::build_bbst(net, path);
  const prim::SkipOverlay skip = prim::build_skiplinks(net, path);
  EXPECT_TRUE(prim::validate_skiplinks(net, path, skip));
  std::vector<std::uint64_t> key(net.n());
  Rng rng(99);
  for (auto& k : key) k = rng.below(64);  // many ties
  const prim::SortResult res =
      kTransposition ? prim::transposition_sort(net, path, key, false)
                     : prim::distributed_sort(net, path, skip, key, true);
  EXPECT_TRUE(prim::validate_path(net, res.path));
  std::uint64_t acc = 1;
  for (const Slot s : res.path.order) acc = hash_mix(acc, s, key[s]);
  return acc;
}

std::uint64_t wl_range_cast(ncc::Network& net) {
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::build_bbst(net, path);
  const prim::SkipOverlay skip = prim::build_skiplinks(net, path);
  const auto members = static_cast<prim::Position>(path.order.size());
  std::vector<std::vector<prim::RangeCastTask>> tasks(net.n());
  // A handful of overlapping ranges from scattered initiators.
  for (int i = 0; i < 5; ++i) {
    const Slot s = path.order[static_cast<std::size_t>(i) * 31 % kN];
    prim::RangeCastTask t;
    t.lo = (i * 17) % (members / 2);
    t.hi = t.lo + members / 3;
    if (t.hi >= members) t.hi = members - 1;
    t.user_tag = 0x600u + static_cast<std::uint32_t>(i);
    t.payload = net.id_of(s);
    t.payload_is_id = true;
    tasks[s].push_back(t);
  }
  // on_deliver runs inside round bodies, which may execute on pool workers;
  // accumulate per receiver (each slot's body is serial) and fold after.
  std::vector<std::uint64_t> per_slot(net.n(), 0);
  prim::range_multicast(net, path, skip, tasks,
                        [&](prim::Slot receiver, std::uint32_t tag,
                            std::uint64_t payload) {
                          per_slot[receiver] =
                              hash_mix(per_slot[receiver], tag, payload);
                        });
  return digest_words(1, per_slot);
}

std::uint64_t wl_collection(ncc::Network& net) {
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::TreeOverlay tree = prim::build_bbst(net, path);
  std::vector<std::uint8_t> has(net.n(), 0);
  std::vector<std::uint64_t> token(net.n(), 0);
  for (Slot s = 0; s < net.n(); s += 3) {
    has[s] = 1;
    token[s] = s * 7u;
  }
  const Slot leader = path.order.back();
  std::uint64_t acc = 1;
  // global_collect may interleave arrivals differently only if transcripts
  // differ; digest order-sensitively.
  for (const std::uint64_t t :
       prim::global_collect(net, tree, leader, has, token))
    acc = hash_mix(acc, t, 0);
  // KT0: a node may only address IDs it knows — its tree parent qualifies.
  std::vector<std::vector<prim::DirectSend>> batch(net.n());
  for (Slot s = 0; s < net.n(); s += 5) {
    const NodeId parent = tree.nodes[s].parent;
    if (parent != ncc::kNoNode) batch[s].push_back({parent, 0x61u, s, false});
  }
  std::vector<std::uint64_t> per_slot(net.n(), 0);
  prim::direct_exchange(net, batch,
                        [&](prim::Slot receiver, NodeId src,
                            std::uint32_t tag, std::uint64_t payload) {
                          per_slot[receiver] = hash_mix(per_slot[receiver],
                                                        src ^ tag, payload);
                        });
  return digest_words(acc, per_slot);
}

struct Named {
  const char* name;
  Workload fn;
};
const Named kWorkloads[] = {
    {"broadcast", &wl_broadcast},       {"aggregate", &wl_aggregate},
    {"bbst", &wl_bbst},                 {"batcher_sort", &wl_sort<false>},
    {"transposition", &wl_sort<true>},  {"range_cast", &wl_range_cast},
    {"collection", &wl_collection},
};

// The matrix: for every primitive workload and seed, the sparse run with
// one thread is the reference; dense reference mode and every thread count
// must reproduce it bit for bit.
TEST(ActiveSetEquivalence, SparseMatchesDenseForEveryPrimitive) {
  for (const auto& wl : kWorkloads) {
    for (const std::uint64_t seed : {11ull, 2026ull}) {
      Fingerprint ref;
      {
        auto net = make_net(/*sparse=*/true, /*threads=*/1, seed);
        ref = seal(net, wl.fn(net));
      }
      for (const unsigned threads : {1u, 4u, 8u}) {
        for (const bool sparse : {true, false}) {
          if (sparse && threads == 1) continue;  // the reference itself
          auto net = make_net(sparse, threads, seed);
          const Fingerprint got = seal(net, wl.fn(net));
          EXPECT_TRUE(ref == got)
              << wl.name << " seed=" << seed << " threads=" << threads
              << " sparse=" << sparse << ": transcript diverged (rounds "
              << got.net.stats.rounds << " vs " << ref.net.stats.rounds
              << ", delivered " << got.net.stats.messages_delivered
              << " vs " << ref.net.stats.messages_delivered << ")";
        }
      }
    }
  }
}

// Primitives must stay inside the capacity budget under sparse scheduling
// exactly as they did densely: the strict-overflow network throws on any
// violation.
TEST(ActiveSetEquivalence, DeterministicPrimitivesStayStrictUnderSparse) {
  ncc::Config cfg;
  cfg.seed = 7;
  cfg.overflow = ncc::OverflowPolicy::kStrict;
  ncc::Network net(kN, cfg);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  prim::TreeOverlay tree = prim::build_bbst(net, path);
  const prim::SkipOverlay skip = prim::build_skiplinks(net, path);
  std::vector<std::uint64_t> v(net.n(), 2);
  prim::aggregate_and_broadcast(net, tree, v, prim::comb_sum);
  prim::distributed_sort(net, path, skip, v, true);
}

// --- wake-set edge cases -------------------------------------------------

TEST(ActiveSetWake, WokenSlotRunsWithEmptyInbox) {
  auto net = testing::make_ncc0(16, 5);
  net.wake(3);
  EXPECT_EQ(net.active_count(), 1u);
  std::vector<Slot> ran;
  std::size_t inbox_seen = 99;
  net.round_active([&](Ctx& ctx) {
    ran.push_back(ctx.slot());
    inbox_seen = ctx.inbox().size();
  });
  EXPECT_EQ(ran, std::vector<Slot>{3});
  EXPECT_EQ(inbox_seen, 0u);
  EXPECT_FALSE(net.has_active());  // no traffic, no wake: frontier drained
}

TEST(ActiveSetWake, MessagedSlotAlreadyWokenRunsOnce) {
  auto net = testing::make_ncc1(16, 6);
  const NodeId target = net.id_of(4);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0) ctx.send(target, make_msg(1).push(42));
  });
  // Slot 4 is active by receipt; waking it again must not double-run it.
  net.wake(4);
  net.wake(4);
  EXPECT_EQ(net.active_count(), 1u);
  int runs = 0;
  std::size_t got = 0;
  net.round_active([&](Ctx& ctx) {
    ASSERT_EQ(ctx.slot(), 4u);
    ++runs;
    got = ctx.inbox().size();
  });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(got, 1u);
}

TEST(ActiveSetWake, SelfWakeCarriesSlotToNextRoundOnly) {
  auto net = testing::make_ncc0(8, 7);
  net.wake(2);
  int runs = 0;
  net.round_active([&](Ctx& ctx) {
    ++runs;
    if (ctx.round() == 0) ctx.wake();  // stay active exactly one more round
  });
  EXPECT_TRUE(net.has_active());
  net.round_active([&](Ctx& ctx) {
    EXPECT_EQ(ctx.slot(), 2u);
    ++runs;
  });
  EXPECT_EQ(runs, 2);
  EXPECT_FALSE(net.has_active());
}

TEST(ActiveSetWake, BounceHoldsSenderOnFrontier) {
  ncc::Config cfg;
  cfg.seed = 9;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(64, cfg);
  const auto cap = static_cast<std::size_t>(net.capacity());
  const NodeId hot = net.id_of(0);
  // Every other node sends one message to slot 0: arrivals exceed capacity,
  // so some senders get bounces and must come back to retry.
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 0) ctx.send(hot, make_msg(2));
  });
  ASSERT_EQ(net.stats().messages_bounced, 63 - cap);
  std::size_t bounced_seen = 0;
  std::vector<Slot> ran;
  net.round_active([&](Ctx& ctx) {
    ran.push_back(ctx.slot());
    bounced_seen += ctx.bounced().size();
  });
  // Frontier = the receiver (slot 0) plus every bounced sender.
  EXPECT_EQ(ran.size(), 1 + (63 - cap));
  EXPECT_EQ(bounced_seen, 63 - cap);
}

TEST(ActiveSetWake, RefereeWakeSurvivesDenseRoundAndClearActiveDropsIt) {
  auto net = testing::make_ncc0(8, 8);
  net.wake(5);
  net.round([](Ctx&) {});  // a dense round must not eat the pending wake
  EXPECT_TRUE(net.has_active());
  net.clear_active();
  EXPECT_FALSE(net.has_active());
  net.wake_all();
  EXPECT_EQ(net.active_count(), 8u);
  net.clear_active();
}

TEST(ActiveSetWake, CrashedSlotIsSkippedEvenIfWoken) {
  auto net = testing::make_ncc0(8, 10);
  net.crash(3);
  net.wake(3);
  net.wake(4);
  std::vector<Slot> ran;
  net.round_active([&](Ctx& ctx) { ran.push_back(ctx.slot()); });
  EXPECT_EQ(ran, std::vector<Slot>{4});
}

}  // namespace
}  // namespace dgr
