// The zero-copy inbox API: InboxView / MessageRef semantics, equivalence
// with the legacy Ctx::inbox() span (the compat shim), and the debug-mode
// stale-view diagnostic (a view aliases engine-owned arenas that the next
// round repacks; dereferencing one after its round must fail loudly in
// debug builds instead of silently reading repacked memory).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "ncc/message.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::InboxView;
using ncc::make_msg;
using ncc::NodeId;
using ncc::Slot;

// Random mixed traffic (all sizes, mixed id masks, some oversubscription):
// for every slot and round, the view and the legacy span must agree on
// every field of every message, in the same order.
TEST(InboxView, MatchesLegacyInboxFieldForField) {
  constexpr std::size_t kN = 64;
  ncc::Config cfg;
  cfg.seed = 11;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(kN, cfg);
  std::uint64_t messages_checked = 0;
  for (int r = 0; r < 8; ++r) {
    net.round([&](Ctx& ctx) {
      const auto view = ctx.inbox_view();
      const auto legacy = ctx.inbox();
      ASSERT_EQ(view.size(), legacy.size());
      ASSERT_EQ(view.empty(), legacy.empty());
      std::size_t i = 0;
      for (const auto m : view) {
        const ncc::Message& ref = legacy[i++];
        ASSERT_EQ(m.tag(), ref.tag);
        ASSERT_EQ(m.size(), ref.size);
        ASSERT_EQ(m.id_mask(), ref.id_mask);
        ASSERT_EQ(m.src(), ref.src);
        for (std::size_t w = 0; w < ref.size; ++w) {
          ASSERT_EQ(m.word(w), ref.word(w));
          ASSERT_EQ(m.sword(w), ref.sword(w));
        }
        const ncc::Message mat = m.materialize();
        ASSERT_EQ(mat.tag, ref.tag);
        ASSERT_EQ(mat.src, ref.src);
        ++messages_checked;
      }
      ASSERT_EQ(i, legacy.size());

      // Traffic for next round: variable sizes and id masks, with a hot
      // destination so the overflow/bounce layout is exercised too.
      const auto ids = ctx.all_ids();
      const int sends = 1 + static_cast<int>(ctx.rng().below(4));
      for (int k = 0; k < sends; ++k) {
        const std::size_t pick = ctx.rng().chance(0.3)
                                     ? 0
                                     : ctx.rng().below(ids.size());
        auto m = make_msg(static_cast<std::uint32_t>(ctx.rng().below(1000)));
        const auto words = ctx.rng().below(ncc::kMaxWords + 1);
        for (std::uint64_t w = 0; w < words; ++w) {
          if (ctx.rng().chance(0.5)) m.push_id(ids[ctx.rng().below(kN)]);
          else m.push(ctx.rng().below(1u << 30));
        }
        ctx.send(ids[pick], m);
      }
    });
  }
  EXPECT_GT(messages_checked, 100u);
}

// The view must also agree on a learning (NCC0) network, where records
// carry ID-slot trailers that the iterator's stride must step over.
TEST(InboxView, MatchesLegacyInboxOnLearningNetwork) {
  auto net = testing::make_ncc0(32, 5);
  std::uint64_t checked = 0;
  for (int r = 0; r < 6; ++r) {
    net.round([&](Ctx& ctx) {
      const auto legacy = ctx.inbox();
      std::size_t i = 0;
      for (const auto m : ctx.inbox_view()) {
        const ncc::Message& ref = legacy[i++];
        ASSERT_EQ(m.tag(), ref.tag);
        ASSERT_EQ(m.id_mask(), ref.id_mask);
        ASSERT_EQ(m.src(), ref.src);
        for (std::size_t w = 0; w < ref.size; ++w)
          ASSERT_EQ(m.word(w), ref.word(w));
        ++checked;
      }
      // Forward my successor's ID back to it (it knows itself already) and
      // onward: mixed id-word + plain-word records with trailers.
      const NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode) {
        auto m = make_msg(7).push_id(succ).push(ctx.slot());
        ctx.send(succ, m);
      }
    });
  }
  EXPECT_GT(checked, 0u);
}

TEST(InboxView, EmptyInboxYieldsEmptyView) {
  auto net = testing::make_ncc1(4, 9);
  bool checked = false;
  net.round([&](Ctx& ctx) {
    const auto view = ctx.inbox_view();
    EXPECT_EQ(view.size(), 0u);
    EXPECT_TRUE(view.empty());
    EXPECT_TRUE(view.begin() == view.end());
    checked = true;
  });
  EXPECT_TRUE(checked);
}

#ifndef NDEBUG
// Debug builds stamp views with the delivery generation: holding a view
// across the end of its round and dereferencing it must fail a DGR_CHECK
// with the stale-view diagnostic instead of reading repacked memory.
TEST(InboxView, StaleViewDereferenceFiresDiagnostic) {
  auto net = testing::make_ncc1(8, 13);
  const NodeId dst = net.id_of(1);
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0) ctx.send(dst, make_msg(3).push(42));
  });
  std::optional<InboxView> leaked;
  net.round([&](Ctx& ctx) {
    if (ctx.slot() != 1) return;
    leaked = ctx.inbox_view();
    // In-round use is fine.
    EXPECT_EQ((*leaked->begin()).tag(), 3u);
  });
  ASSERT_TRUE(leaked.has_value());
  // The round ended and the next delivery repacked the arena: the stale
  // view must now refuse dereference (begin() surfaces it immediately).
  net.round([](Ctx&) {});
  EXPECT_THROW((void)*leaked->begin(), CheckError);
}
#else
TEST(InboxView, StaleViewDereferenceFiresDiagnostic) {
  GTEST_SKIP() << "stale-view stamps are compiled out in NDEBUG builds";
}
#endif

}  // namespace
}  // namespace dgr
