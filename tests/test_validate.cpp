// Negative testing of the referee validators: corrupted realizations must
// be rejected with a useful message.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "realization/explicit_degree.h"
#include "realization/implicit_degree.h"
#include "realization/validate.h"
#include "testing.h"

namespace dgr::realize {
namespace {

struct Fixture {
  Fixture()
      : net(testing::make_ncc0(24, 7)),
        degree(graph::regular_sequence(24, 4)),
        implicit_result(realize_degrees_implicit(net, degree)) {
    EXPECT_TRUE(implicit_result.realizable);
  }
  ncc::Network net;
  std::vector<std::uint64_t> degree;
  ImplicitDegreeResult implicit_result;
};

TEST(Validate, AcceptsHonestRealization) {
  Fixture f;
  EXPECT_TRUE(
      validate_degree_realization(f.net, f.degree, f.implicit_result.stored)
          .ok);
}

TEST(Validate, DetectsMissingEdge) {
  Fixture f;
  auto stored = f.implicit_result.stored;
  for (auto& lst : stored) {
    if (!lst.empty()) {
      lst.pop_back();
      break;
    }
  }
  const auto v = validate_degree_realization(f.net, f.degree, stored);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("degree"), std::string::npos);
}

TEST(Validate, DetectsDuplicateEdge) {
  Fixture f;
  auto stored = f.implicit_result.stored;
  for (auto& lst : stored) {
    if (!lst.empty()) {
      lst.push_back(lst.front());  // store the same edge twice
      break;
    }
  }
  const auto v = validate_degree_realization(f.net, f.degree, stored);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("duplicate"), std::string::npos);
}

TEST(Validate, DetectsSelfLoop) {
  Fixture f;
  auto stored = f.implicit_result.stored;
  stored[0].push_back(f.net.id_of(0));
  EXPECT_FALSE(validate_degree_realization(f.net, f.degree, stored).ok);
}

TEST(Validate, DetectsAsymmetricExplicitAdjacency) {
  Fixture f;
  const auto explicit_result = make_explicit(f.net, f.implicit_result);
  // Honest passes.
  EXPECT_TRUE(validate_explicit_adjacency(f.net, f.implicit_result.stored,
                                          explicit_result.adjacency)
                  .ok);
  // Remove one side of one edge.
  auto adjacency = explicit_result.adjacency;
  for (auto& lst : adjacency) {
    if (!lst.empty()) {
      lst.pop_back();
      break;
    }
  }
  EXPECT_FALSE(validate_explicit_adjacency(f.net, f.implicit_result.stored,
                                           adjacency)
                   .ok);
}

TEST(Validate, DetectsForeignEdgeInExplicitAdjacency) {
  Fixture f;
  const auto explicit_result = make_explicit(f.net, f.implicit_result);
  auto adjacency = explicit_result.adjacency;
  // Insert an edge that was never realized: find a non-neighbour pair.
  const auto g = graph_from_stored(f.net, f.implicit_result.stored);
  for (graph::Vertex a = 0; a < g.n(); ++a) {
    for (graph::Vertex b = 0; b < g.n(); ++b) {
      if (a == b || g.has_edge(a, b)) continue;
      // Replace one honest entry so the length check stays silent and the
      // membership check has to fire.
      ASSERT_FALSE(adjacency[a].empty());
      adjacency[a].back() = f.net.id_of(b);
      const auto v = validate_explicit_adjacency(
          f.net, f.implicit_result.stored, adjacency);
      EXPECT_FALSE(v.ok);
      return;
    }
  }
  FAIL() << "graph unexpectedly complete";
}

TEST(Validate, EnvelopeDetectsDeficit) {
  Fixture f;
  auto stored = f.implicit_result.stored;
  // Remove edges from one node until it is under its requested degree.
  const auto g = graph_from_stored(f.net, stored);
  (void)g;
  for (auto& lst : stored) lst.clear();  // realize nothing
  const auto v = validate_upper_envelope(f.net, f.degree, stored);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("envelope"), std::string::npos);
}

TEST(Validate, EnvelopeDetectsOvershoot) {
  // sum(D') > 2 sum(D): request degree 0 everywhere but realize a matching.
  auto net = testing::make_ncc0(4, 9);
  std::vector<std::uint64_t> degree(4, 0);
  std::vector<std::vector<ncc::NodeId>> stored(4);
  stored[0].push_back(net.id_of(1));
  const auto v = validate_upper_envelope(net, degree, stored);
  EXPECT_FALSE(v.ok);
}

}  // namespace
}  // namespace dgr::realize
