// SendQueue: pacing, retry-on-bounce, and drain guarantees.
#include <gtest/gtest.h>

#include <atomic>

#include "ncc/send_queue.h"
#include "testing.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::NodeId;
using ncc::SendQueue;
using ncc::Slot;

TEST(SendQueue, PacesWithinCapacity) {
  auto net = testing::make_strict_ncc0(16, 1);
  const auto& order = net.path_order();
  const Slot head = order.front();
  const NodeId succ = net.id_of(order[1]);

  SendQueue q;
  for (int i = 0; i < 100; ++i) q.push(succ, make_msg(7).push(i));

  std::atomic<int> received{0};
  while (!q.idle()) {
    net.round([&](Ctx& ctx) {
      received += static_cast<int>(ctx.inbox().size());
      if (ctx.slot() == head) q.pump(ctx);
    });
  }
  net.round([&](Ctx& ctx) {
    received += static_cast<int>(ctx.inbox().size());
  });
  EXPECT_EQ(received.load(), 100);
  // 100 messages at `capacity` per round.
  EXPECT_LE(net.stats().max_send_in_round,
            static_cast<std::uint64_t>(net.capacity()));
}

TEST(SendQueue, DrainsUnderHeavyContention) {
  // Everyone floods one target; bounces must eventually all land.
  ncc::Config cfg;
  cfg.seed = 3;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(128, cfg);
  const NodeId target = net.id_of(0);
  const int per_node = 5;

  std::vector<SendQueue> queues(net.n());
  for (Slot s = 1; s < net.n(); ++s)
    for (int i = 0; i < per_node; ++i)
      queues[s].push(target, make_msg(9).push(i));

  std::atomic<int> received{0};
  std::atomic<int> busy{1};
  while (busy.load() != 0) {
    busy.store(0);
    net.round([&](Ctx& ctx) {
      if (ctx.slot() == 0) {
        for (const auto& m : ctx.inbox())
          if (m.tag == 9) ++received;
      }
      queues[ctx.slot()].pump(ctx);
      if (!queues[ctx.slot()].idle()) ++busy;
    });
  }
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0)
      for (const auto& m : ctx.inbox())
        if (m.tag == 9) ++received;
  });
  EXPECT_EQ(received.load(), 127 * per_node);
  EXPECT_GT(net.stats().messages_bounced, 0u);  // contention actually hit
  // Drain time ~ total/capacity + slack.
  EXPECT_LE(net.stats().rounds,
            static_cast<std::uint64_t>(127 * per_node / net.capacity() + 32));
}

TEST(SendQueue, TagFilterIgnoresForeignBounces) {
  ncc::Config cfg;
  cfg.seed = 5;
  cfg.initial = ncc::InitialKnowledge::kClique;
  ncc::Network net(64, cfg);
  const NodeId target = net.id_of(0);

  // Two queues at the same node with different tags; flood via raw sends of
  // a third tag so bounces of tag 0xAA must not enter queue 0xBB.
  SendQueue qa(0xAA), qb(0xBB);
  for (int i = 0; i < 40; ++i) qa.push(target, make_msg(0xAA).push(i));

  std::atomic<int> got_a{0};
  std::atomic<int> rounds_left{200};
  while (!qa.idle() && rounds_left.load() > 0) {
    --rounds_left;
    net.round([&](Ctx& ctx) {
      if (ctx.slot() == 0) {
        for (const auto& m : ctx.inbox())
          if (m.tag == 0xAA) ++got_a;
      }
      if (ctx.slot() == 1) {
        qa.pump(ctx);
        qb.pump(ctx);
        EXPECT_EQ(qb.backlog(), 0u);
      }
      // Other nodes flood the target to provoke bounces at node 1's traffic.
      if (ctx.slot() > 1 && ctx.sends_left() > 0) {
        ctx.send(target, make_msg(0xCC));
      }
    });
  }
  net.round([&](Ctx& ctx) {
    if (ctx.slot() == 0)
      for (const auto& m : ctx.inbox())
        if (m.tag == 0xAA) ++got_a;
  });
  EXPECT_EQ(got_a.load(), 40);
}

}  // namespace
}  // namespace dgr
