// Sequential baselines: greedy tree (min diameter), caterpillar, the
// connectivity hub construction, and the Prüfer brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "graph/generators.h"
#include "graph/prufer.h"
#include "graph/tree_metrics.h"
#include "seq/caterpillar.h"
#include "seq/connectivity_baseline.h"
#include "seq/greedy_tree.h"
#include "util/rng.h"

namespace dgr::seq {
namespace {

using graph::DegreeSequence;

TEST(GreedyTree, RealizesSortedSequence) {
  DegreeSequence d{3, 3, 2, 1, 1, 1, 1};  // sum 12 = 2*(7-1)
  const auto t = greedy_tree(d);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->is_tree());
  auto realized = t->degree_sequence();
  std::sort(realized.begin(), realized.end(), std::greater<>());
  std::sort(d.begin(), d.end(), std::greater<>());
  EXPECT_EQ(realized, d);
}

TEST(GreedyTree, RejectsNonTreeSequences) {
  EXPECT_FALSE(greedy_tree({2, 2, 2}).has_value());
  EXPECT_FALSE(greedy_tree({3, 1, 1}).has_value());
}

TEST(Caterpillar, RealizesAndMaximizesDiameter) {
  const DegreeSequence d{3, 3, 2, 1, 1, 1, 1};
  const auto cat = caterpillar_tree(d);
  const auto greedy = greedy_tree(d);
  ASSERT_TRUE(cat && greedy);
  EXPECT_TRUE(cat->is_tree());
  EXPECT_GE(graph::tree_diameter(*cat), graph::tree_diameter(*greedy));
}

TEST(Prufer, DecodeStar) {
  // Prüfer sequence (0, 0, 0) -> star centered at 0 on 5 vertices.
  const auto t = graph::prufer_decode({0, 0, 0});
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.degree(0), 4u);
}

class GreedyIsOptimal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyIsOptimal, MatchesBruteForceMinDiameter) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 2 + rng.below(7);  // n in [2, 8]
    const auto d = graph::random_tree_sequence(n, rng);
    const auto brute = graph::min_tree_diameter_bruteforce(d);
    const auto greedy = min_tree_diameter(d);
    ASSERT_TRUE(brute && greedy);
    EXPECT_EQ(*greedy, *brute) << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyIsOptimal,
                         ::testing::Range<std::uint64_t>(1, 8));

// Counts n_l(T) = |{v : ecc(v, T) <= l}| for every l; the Smith–Székely–
// Wang dominance (paper Lemma 15's engine) says the greedy tree maximizes
// every n_l simultaneously over all realizations.
std::vector<std::uint64_t> ecc_histogram(const graph::Graph& t,
                                         std::size_t n) {
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (const auto e : graph::eccentricities(t)) ++counts[e];
  // prefix: counts[l] = #nodes with ecc <= l
  for (std::size_t l = 1; l <= n; ++l) counts[l] += counts[l - 1];
  return counts;
}

class EccDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EccDominance, GreedyTreeDominatesEveryRealization) {
  Rng rng(GetParam() + 70);
  const std::size_t n = 2 + rng.below(6);  // [2, 7]
  const auto d = graph::random_tree_sequence(n, rng);
  auto sorted = d;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  const auto greedy = greedy_tree(d);
  ASSERT_TRUE(greedy.has_value());
  const auto greedy_hist = ecc_histogram(*greedy, n);

  // Enumerate all trees with this degree multiset via Prüfer sequences.
  std::vector<std::uint32_t> pool;
  for (std::uint32_t v = 0; v < n; ++v)
    for (std::uint64_t k = 1; k < sorted[v]; ++k) pool.push_back(v);
  std::sort(pool.begin(), pool.end());
  std::vector<std::uint32_t> seq = pool;
  do {
    const auto t = graph::prufer_decode(seq);
    const auto hist = ecc_histogram(t, n);
    for (std::size_t l = 0; l <= n; ++l)
      EXPECT_GE(greedy_hist[l], hist[l]) << "l=" << l << " n=" << n;
  } while (std::next_permutation(seq.begin(), seq.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EccDominance,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ConnectivityBaseline, LowerBound) {
  EXPECT_EQ(connectivity_edge_lower_bound({3, 2, 2, 1}), 4u);
  EXPECT_EQ(connectivity_edge_lower_bound({1, 1, 1}), 2u);
}

class HubConstruction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HubConstruction, SatisfiesThresholdsWithin2x) {
  Rng rng(GetParam());
  const std::size_t n = 24;
  const auto rho = graph::uniform_thresholds(n, 8, rng);
  const auto g = connectivity_baseline(rho);
  EXPECT_LE(g.m(), 2 * connectivity_edge_lower_bound(rho));
  const auto violation = find_threshold_violation(g, rho, rng);
  EXPECT_FALSE(violation.has_value())
      << "pair (" << violation->first << "," << violation->second << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, HubConstruction,
                         ::testing::Range<std::uint64_t>(1, 8));

TEST(FindThresholdViolation, DetectsInsufficientGraph) {
  // A path cannot give connectivity 2.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  graph::ThresholdVector rho{2, 2, 2, 2};
  Rng rng(1);
  EXPECT_TRUE(find_threshold_violation(g, rho, rng).has_value());
}

}  // namespace
}  // namespace dgr::seq
