// §5: distributed tree realizations (Algorithms 4 and 5).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "graph/prufer.h"
#include "graph/tree_metrics.h"
#include "realization/tree_realization.h"
#include "realization/validate.h"
#include "seq/caterpillar.h"
#include "seq/greedy_tree.h"
#include "testing.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr::realize {
namespace {

graph::Graph realized_graph(const ncc::Network& net,
                            const TreeRealizationResult& result) {
  return graph_from_stored(net, result.stored);
}

void expect_tree_with_degrees(const ncc::Network& net,
                              const std::vector<std::uint64_t>& d,
                              const TreeRealizationResult& result) {
  ASSERT_TRUE(result.realizable);
  const auto v = validate_degree_realization(net, d, result.stored);
  EXPECT_TRUE(v.ok) << v.message;
  EXPECT_TRUE(realized_graph(net, result).is_tree());
}

class TreeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TreeSweep, BothAlgorithmsRealizeTrees) {
  const auto [n, seed] = GetParam();
  Rng rng(seed * 17 + n);
  const auto d = graph::random_tree_sequence(n, rng);

  auto net1 = testing::make_ncc0(n, seed);
  const auto cat = realize_tree_caterpillar(net1, d);
  expect_tree_with_degrees(net1, d, cat);

  auto net2 = testing::make_ncc0(n, seed + 1);
  const auto greedy = realize_tree_greedy(net2, d);
  expect_tree_with_degrees(net2, d, greedy);

  // Lemma 15: the greedy tree's diameter is minimum; the caterpillar's is
  // at least as large.
  const auto d_cat = graph::tree_diameter(realized_graph(net1, cat));
  const auto d_greedy = graph::tree_diameter(realized_graph(net2, greedy));
  EXPECT_LE(d_greedy, d_cat);

  const auto seq_min = seq::min_tree_diameter(d);
  ASSERT_TRUE(seq_min.has_value());
  EXPECT_EQ(d_greedy, *seq_min);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TreeSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4, 5, 8, 16, 33,
                                                      100, 257),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

class BruteForceCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForceCheck, GreedyDiameterIsGloballyMinimal) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.below(6);  // [2, 7]
  const auto d = graph::random_tree_sequence(n, rng);
  auto net = testing::make_ncc0(n, GetParam());
  const auto greedy = realize_tree_greedy(net, d);
  ASSERT_TRUE(greedy.realizable);
  const auto diam = graph::tree_diameter(realized_graph(net, greedy));
  const auto brute = graph::min_tree_diameter_bruteforce(d);
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(diam, *brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceCheck,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(TreeRealization, PathSequence) {
  // (1, 2, 2, ..., 2, 1): both algorithms must produce the path itself.
  const std::size_t n = 20;
  std::vector<std::uint64_t> d(n, 2);
  d[0] = d[1] = 1;
  auto net = testing::make_ncc0(n, 5);
  const auto cat = realize_tree_caterpillar(net, d);
  expect_tree_with_degrees(net, d, cat);
  EXPECT_EQ(graph::tree_diameter(realized_graph(net, cat)), n - 1);
}

TEST(TreeRealization, StarSequence) {
  const std::size_t n = 12;
  std::vector<std::uint64_t> d(n, 1);
  d[3] = n - 1;
  auto net = testing::make_ncc0(n, 6);
  const auto greedy = realize_tree_greedy(net, d);
  expect_tree_with_degrees(net, d, greedy);
  EXPECT_EQ(graph::tree_diameter(realized_graph(net, greedy)), 2u);
}

TEST(TreeRealization, TwoNodes) {
  auto net = testing::make_ncc0(2, 7);
  const std::vector<std::uint64_t> d{1, 1};
  const auto cat = realize_tree_caterpillar(net, d);
  expect_tree_with_degrees(net, d, cat);
}

TEST(TreeRealization, SingleNode) {
  auto net = testing::make_ncc0(1, 8);
  const auto r = realize_tree_greedy(net, {0});
  EXPECT_TRUE(r.realizable);
}

TEST(TreeRealization, UnrealizableDetected) {
  // Wrong sum.
  {
    auto net = testing::make_ncc0(4, 9);
    const auto r = realize_tree_caterpillar(net, {2, 2, 2, 2});
    EXPECT_FALSE(r.realizable);
  }
  // Zero degree with n > 1.
  {
    auto net = testing::make_ncc0(3, 10);
    const auto r = realize_tree_greedy(net, {2, 2, 0});
    EXPECT_FALSE(r.realizable);
  }
}

TEST(TreeRealization, RoundsArePolylog) {
  const std::size_t n = 512;
  Rng rng(11);
  const auto d = graph::random_tree_sequence(n, rng);
  auto net = testing::make_ncc0(n, 11);
  const auto r = realize_tree_greedy(net, d);
  ASSERT_TRUE(r.realizable);
  const std::uint64_t lg = ceil_log2(n);
  EXPECT_LE(r.rounds, 6 * lg * lg + 40 * lg + 60);
}

}  // namespace
}  // namespace dgr::realize
