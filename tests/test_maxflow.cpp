// Dinic edge-connectivity vs. known topologies and a brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.h"
#include "graph/maxflow.h"
#include "util/rng.h"

namespace dgr::graph {
namespace {

// Brute-force oracle: minimum s-t cut by enumerating edge subsets (tiny
// graphs only). Conn(s,t) = min #edges whose removal disconnects s from t.
std::uint64_t brute_force_conn(const Graph& g, Vertex s, Vertex t) {
  const auto& edges = g.edges();
  const std::size_t m = edges.size();
  for (std::uint64_t cut_size = 0; cut_size <= m; ++cut_size) {
    // Try all subsets of exactly cut_size edges.
    std::vector<bool> pick(m, false);
    std::fill(pick.end() - static_cast<std::ptrdiff_t>(cut_size), pick.end(),
              true);
    do {
      Graph h(g.n());
      for (std::size_t i = 0; i < m; ++i)
        if (!pick[i]) h.add_edge(edges[i].first, edges[i].second);
      const auto dist = h.bfs_distances(s);
      if (dist[t] < 0) return cut_size;
    } while (std::next_permutation(pick.begin(), pick.end()));
  }
  return m + 1;  // unreachable
}

TEST(MaxFlow, CompleteGraph) {
  const std::size_t n = 7;
  Graph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  EdgeConnectivity solver(g);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) EXPECT_EQ(solver.query(u, v), n - 1);
}

TEST(MaxFlow, Cycle) {
  Graph g(8);
  for (Vertex v = 0; v < 8; ++v) g.add_edge(v, (v + 1) % 8);
  EXPECT_EQ(edge_connectivity(g, 0, 4), 2u);
  EXPECT_EQ(edge_connectivity(g, 1, 2), 2u);
}

TEST(MaxFlow, Tree) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  g.add_edge(4, 5);
  EXPECT_EQ(edge_connectivity(g, 1, 5), 1u);
}

TEST(MaxFlow, DisconnectedPairs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(edge_connectivity(g, 0, 3), 0u);
}

TEST(MaxFlow, TwoCliquesJoinedByBridgeBundle) {
  // K5 + K5 joined by 3 edges: cross connectivity = 3.
  Graph g(10);
  for (Vertex u = 0; u < 5; ++u)
    for (Vertex v = u + 1; v < 5; ++v) g.add_edge(u, v);
  for (Vertex u = 5; u < 10; ++u)
    for (Vertex v = u + 1; v < 10; ++v) g.add_edge(u, v);
  g.add_edge(0, 5);
  g.add_edge(1, 6);
  g.add_edge(2, 7);
  EXPECT_EQ(edge_connectivity(g, 3, 8), 3u);
  EXPECT_EQ(edge_connectivity(g, 0, 4), 4u);  // within-clique
}

class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  const std::size_t n = 6;
  Graph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      if (rng.chance(0.5)) g.add_edge(u, v);
  EdgeConnectivity solver(g);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      EXPECT_EQ(solver.query(u, v), brute_force_conn(g, u, v))
          << "pair (" << u << "," << v << ") seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(MaxFlow, ReusableSolverResets) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  EdgeConnectivity solver(g);
  EXPECT_EQ(solver.query(0, 2), 2u);
  EXPECT_EQ(solver.query(0, 2), 2u);  // second query must match
  EXPECT_EQ(solver.query(1, 3), 2u);
}

}  // namespace
}  // namespace dgr::graph
