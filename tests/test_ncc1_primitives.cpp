// Zero-communication NCC1 structures and the σ-matrix interface.
#include <gtest/gtest.h>

#include "graph/maxflow.h"
#include "primitives/broadcast.h"
#include "primitives/ncc1.h"
#include "primitives/skiplinks.h"
#include "primitives/sort.h"
#include "realization/connectivity.h"
#include "realization/validate.h"
#include "testing.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr {
namespace {

TEST(Ncc1Tree, ZeroRoundsAndAggregates) {
  auto net = testing::make_ncc1(100, 3);
  const std::uint64_t before = net.stats().rounds;
  const auto tree = prim::common_knowledge_tree(net);
  EXPECT_EQ(net.stats().rounds, before);  // built for free
  EXPECT_EQ(tree.size(), 100u);

  std::vector<std::uint64_t> v(net.n(), 2);
  EXPECT_EQ(prim::aggregate_to_root(net, tree, v, prim::comb_sum), 200u);
}

TEST(Ncc1Tree, RejectsNcc0) {
  auto net = testing::make_ncc0(8, 4);
  EXPECT_THROW(prim::common_knowledge_tree(net), CheckError);
}

TEST(Ncc1Path, SupportsSkipLinksAndSort) {
  auto net = testing::make_ncc1(64, 5);
  const std::uint64_t before = net.stats().rounds;
  prim::PathOverlay path = prim::common_knowledge_path(net);
  EXPECT_EQ(net.stats().rounds, before);
  EXPECT_TRUE(prim::validate_path(net, path));

  const auto skip = prim::build_skiplinks(net, path);
  EXPECT_TRUE(prim::validate_skiplinks(net, path, skip));

  Rng rng(6);
  std::vector<std::uint64_t> key(net.n());
  for (auto& k : key) k = rng.below(30);
  const auto sorted = prim::distributed_sort(net, path, skip, key, true);
  ASSERT_TRUE(prim::validate_path(net, sorted.path));
  for (std::size_t i = 0; i + 1 < sorted.path.order.size(); ++i) {
    const auto a = sorted.path.order[i];
    const auto b = sorted.path.order[i + 1];
    EXPECT_TRUE(key[a] > key[b] ||
                (key[a] == key[b] && net.id_of(a) < net.id_of(b)));
  }
}

std::vector<std::vector<std::uint64_t>> random_sigma(std::size_t n,
                                                     std::uint64_t smax,
                                                     Rng& rng) {
  std::vector<std::vector<std::uint64_t>> sigma(
      n, std::vector<std::uint64_t>(n, 0));
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u = v + 1; u < n; ++u) {
      sigma[v][u] = sigma[u][v] = 1 + rng.below(smax);
    }
  }
  return sigma;
}

TEST(SigmaMatrix, RhoReduction) {
  std::vector<std::vector<std::uint64_t>> sigma{
      {0, 3, 1}, {3, 0, 2}, {1, 2, 0}};
  EXPECT_EQ(realize::rho_from_sigma(sigma),
            (std::vector<std::uint64_t>{3, 3, 2}));
}

TEST(SigmaMatrix, AsymmetricRejected) {
  std::vector<std::vector<std::uint64_t>> sigma{{0, 1}, {2, 0}};
  EXPECT_THROW(realize::rho_from_sigma(sigma), CheckError);
}

class SigmaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SigmaSweep, FullMatrixThresholdsSatisfied) {
  Rng rng(GetParam());
  const std::size_t n = 20;
  const auto sigma = random_sigma(n, 6, rng);

  auto net = testing::make_ncc0(n, GetParam());
  const auto result = realize::realize_connectivity_matrix_ncc0(net, sigma);
  ASSERT_TRUE(result.realizable);

  // Verify every pair against σ itself (not just the ρ reduction).
  const auto g = realize::graph_from_stored(net, result.stored);
  graph::EdgeConnectivity solver(g);
  for (graph::Vertex a = 0; a < n; ++a)
    for (graph::Vertex b = a + 1; b < n; ++b)
      EXPECT_GE(solver.query(a, b), sigma[a][b])
          << "pair (" << a << "," << b << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SigmaSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(SigmaMatrix, Ncc1VariantSatisfiesSigma) {
  Rng rng(9);
  const std::size_t n = 16;
  const auto sigma = random_sigma(n, 5, rng);
  auto net = testing::make_ncc1(n, 9);
  const auto result = realize::realize_connectivity_matrix_ncc1(net, sigma);
  ASSERT_TRUE(result.realizable);
  const auto g = realize::graph_from_stored(net, result.stored);
  graph::EdgeConnectivity solver(g);
  for (graph::Vertex a = 0; a < n; ++a)
    for (graph::Vertex b = a + 1; b < n; ++b)
      EXPECT_GE(solver.query(a, b), sigma[a][b]);
}

}  // namespace
}  // namespace dgr
