// The parallel delivery tail (PR 8): placement, the knowledge learn pass,
// and the overflow-acceptance pre-draw all fan out across the process-wide
// executor once a round's traffic clears the parallelism grains — and the
// transcript contract says nobody may be able to tell. These tests drive
// workloads heavy enough to take every parallel path (the grains are ~2048
// inbox words / ~512 oversubscribed arrivals) and pin the full observable
// state bit-identical across thread counts {1,2,4,8}, sparse/dense
// scheduling, traced/untraced delivery, and overflow policies — including
// a skewed fan-in where one destination draws ~90% of all traffic. The
// per-phase timing satellite is covered at the bottom: populated while
// timing is on, all-zero (no clocks read) when detached.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ncc/telemetry.h"
#include "ncc/trace.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;
using ncc::NodeId;
using ncc::Slot;

// Same full-fidelity shape as test_engine_determinism.cpp: engine
// fingerprint plus order-sensitive inbox/bounce checksums per node.
struct RunFingerprint {
  testing::NetFingerprint net;
  std::vector<std::uint64_t> inbox_digest;
  std::vector<std::uint64_t> bounce_digest;

  const ncc::NetStats& stats() const { return net.stats; }

  bool operator==(const RunFingerprint& o) const {
    return net == o.net && inbox_digest == o.inbox_digest &&
           bounce_digest == o.bounce_digest;
  }
};

// Heavy clique flood with a 4-node hot set: every round moves ~n*cap/2
// messages (far past the placement grain) and the hot destinations
// oversubscribe by an order of magnitude (past the pre-draw grain), so the
// parallel placement AND parallel RNG-replay paths both run at threads>1.
RunFingerprint run_flood_overflow(unsigned threads, bool traced) {
  constexpr std::size_t kN = 512;
  ncc::Config cfg;
  cfg.seed = 814;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  ncc::Network net(kN, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);
  const int sends = net.capacity() / 2;
  for (int r = 0; r < 6; ++r) {
    net.round([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      for (const auto m : ctx.inbox_view()) in = hash_mix(in, m.src(), m.word(0));
      auto& bo = fp.bounce_digest[ctx.slot()];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);
      const auto ids = ctx.all_ids();
      for (int i = 0; i < sends; ++i) {
        const std::size_t pick = ctx.rng().chance(0.25)
                                     ? ctx.rng().below(4)
                                     : ctx.rng().below(ids.size());
        ctx.send1(ids[pick], 5, ctx.rng().below(1u << 20));
      }
    });
  }
  fp.net = testing::net_fingerprint(net);
  return fp;
}

// Skewed fan-in: ~90% of every round's traffic lands on one destination.
// The word-balanced placement partition degenerates (one range holds
// nearly all the words), the hot destination's overflow draw dominates the
// pre-draw, and the chunked learn claim has one fat task — the exact
// shapes the dynamic claiming exists for.
RunFingerprint run_skewed_fan_in(unsigned threads, bool traced) {
  constexpr std::size_t kN = 384;
  ncc::Config cfg;
  cfg.seed = 4242;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  ncc::Network net(kN, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);
  const int sends = net.capacity() / 2;
  for (int r = 0; r < 6; ++r) {
    net.round([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      for (const auto m : ctx.inbox_view()) in = hash_mix(in, m.src(), m.word(0));
      auto& bo = fp.bounce_digest[ctx.slot()];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);
      const auto ids = ctx.all_ids();
      for (int i = 0; i < sends; ++i) {
        const std::size_t pick = ctx.rng().chance(0.9)
                                     ? 0
                                     : ctx.rng().below(ids.size());
        ctx.send1(ids[pick], 3, ctx.rng().below(1u << 18));
      }
    });
  }
  fp.net = testing::net_fingerprint(net);
  return fp;
}

// Path-relay gossip on NCC0 knowledge (the learn pass actually runs):
// every node relays to its path successor its own ID plus everything it
// heard last round, batched 4 IDs to a trailer. IDs accumulate down the
// path, so per-round trailered traffic grows past the learn-pass parallel
// grain within a few rounds while knowledge spreads node by node. The body
// is inactive-silent (a node with an empty inbox after round 0 sends
// nothing), so it runs identically under both schedulers.
RunFingerprint run_gossip_relay(unsigned threads, bool sparse, bool traced) {
  constexpr std::size_t kN = 256;
  ncc::Config cfg;
  cfg.seed = 99;
  cfg.threads = threads;
  cfg.sparse_rounds = sparse;
  ncc::Network net(kN, cfg);
  ncc::Trace trace;
  if (traced) net.set_trace(&trace);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);
  for (Slot s = 0; s < static_cast<Slot>(kN); ++s) net.wake(s);
  for (int r = 0; r < 16 && net.has_active(); ++r) {
    net.round_active([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      auto& bo = fp.bounce_digest[ctx.slot()];
      for (const auto& b : ctx.bounced()) bo = hash_mix(bo, b.dst, b.msg.tag);
      // Collect the ID words delivered this round (learned by last round's
      // learn pass, so forwarding them is KT0-legal now).
      std::vector<NodeId> heard;
      bool active = r == 0;
      for (const auto m : ctx.inbox_view()) {
        active = true;
        in = hash_mix(in, m.src(), m.tag());
        for (std::size_t w = 0; w < m.size(); ++w) {
          if (m.id_mask() & (1u << w)) heard.push_back(m.word(w));
          in = hash_mix(in, m.id_mask(), m.word(w));
        }
      }
      const NodeId succ = ctx.initial_successor();
      if (!active || succ == ncc::kNoNode) return;
      int budget = ctx.capacity() - 1;
      ctx.send(succ, make_msg(2).push_id(ctx.id()));
      // Relay the heard IDs onward in batches of up to 4 per message.
      for (std::size_t i = 0; i < heard.size() && budget > 0; --budget) {
        auto m = make_msg(7).push_id(heard[i++]);
        for (std::size_t k = 1; k < 4 && i < heard.size(); ++k)
          m.push_id(heard[i++]);
        ctx.send(succ, m);
      }
    });
  }
  fp.net = testing::net_fingerprint(net);
  return fp;
}

// Light successor ring that never oversubscribes anyone: legal under the
// strict overflow policy, and its transcript must match the bounce-policy
// run exactly (a policy that never fires is unobservable).
RunFingerprint run_ring(unsigned threads, ncc::OverflowPolicy policy) {
  constexpr std::size_t kN = 128;
  ncc::Config cfg;
  cfg.seed = 31;
  cfg.threads = threads;
  cfg.overflow = policy;
  ncc::Network net(kN, cfg);

  RunFingerprint fp;
  fp.inbox_digest.assign(kN, 0);
  fp.bounce_digest.assign(kN, 0);
  for (int r = 0; r < 10; ++r) {
    net.round([&](Ctx& ctx) {
      auto& in = fp.inbox_digest[ctx.slot()];
      for (const auto m : ctx.inbox_view()) in = hash_mix(in, m.src(), m.word(0));
      const NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode)
        ctx.send(succ, make_msg(1).push_id(ctx.id()).push(r));
    });
  }
  fp.net = testing::net_fingerprint(net);
  return fp;
}

TEST(ParallelDeliver, FloodOverflowTranscriptInvariant) {
  const RunFingerprint ref = run_flood_overflow(1, /*traced=*/false);
  // Sanity: the workload really oversubscribes (parallel pre-draw ran).
  EXPECT_GT(ref.stats().messages_bounced, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_TRUE(ref == run_flood_overflow(threads, false))
        << "threads=" << threads;
  }
  // Traced runs take the serial reference-sorted compat path; same story.
  for (const unsigned threads : {1u, 4u}) {
    EXPECT_TRUE(ref == run_flood_overflow(threads, true))
        << "traced threads=" << threads;
  }
}

TEST(ParallelDeliver, SkewedFanInTranscriptInvariant) {
  const RunFingerprint ref = run_skewed_fan_in(1, /*traced=*/false);
  EXPECT_GT(ref.stats().messages_bounced, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_TRUE(ref == run_skewed_fan_in(threads, false))
        << "threads=" << threads;
  }
  EXPECT_TRUE(ref == run_skewed_fan_in(8, true)) << "traced";
}

TEST(ParallelDeliver, GossipWaveLearnPassInvariant) {
  const RunFingerprint ref = run_gossip_relay(1, /*sparse=*/true, false);
  // Sanity: knowledge actually spread beyond the initial path hints, so
  // the (parallel) learn pass did real work.
  std::size_t total_known = 0;
  for (const std::size_t k : ref.net.knowledge) total_known += k;
  EXPECT_GT(total_known, 3 * 256u);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const bool sparse : {true, false}) {
      EXPECT_TRUE(ref == run_gossip_relay(threads, sparse, false))
          << "threads=" << threads << " sparse=" << sparse;
    }
  }
  EXPECT_TRUE(ref == run_gossip_relay(4, true, true)) << "traced sparse";
  EXPECT_TRUE(ref == run_gossip_relay(4, false, true)) << "traced dense";
}

TEST(ParallelDeliver, StrictPolicyTranscriptMatchesBounceAcrossThreads) {
  const RunFingerprint ref = run_ring(1, ncc::OverflowPolicy::kBounce);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    EXPECT_TRUE(ref == run_ring(threads, ncc::OverflowPolicy::kStrict))
        << "strict threads=" << threads;
    EXPECT_TRUE(ref == run_ring(threads, ncc::OverflowPolicy::kBounce))
        << "bounce threads=" << threads;
  }
}

// ---- Per-phase timing ---------------------------------------------------

TEST(PhaseTiming, PopulatedWhenOnAndZeroWhenDetached) {
  constexpr std::size_t kN = 512;
  ncc::Config cfg;
  cfg.seed = 814;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = 2;
  for (const bool timing : {false, true}) {
    ncc::Network net(kN, cfg);
    net.set_phase_timing(timing);
    EXPECT_EQ(net.phase_timing(), timing);
    const int sends = net.capacity() / 2;
    for (int r = 0; r < 4; ++r) {
      net.round([&](Ctx& ctx) {
        const auto ids = ctx.all_ids();
        for (int i = 0; i < sends; ++i) {
          const std::size_t pick = ctx.rng().chance(0.25)
                                       ? ctx.rng().below(4)
                                       : ctx.rng().below(ids.size());
          ctx.send1(ids[pick], 5, i);
        }
      });
    }
    const ncc::PhaseNanos& ph = net.stats().phase_ns;
    if (!timing) {
      // Detached rounds read no clocks: every accumulator stays zero.
      EXPECT_EQ(ph.total(), 0u);
    } else {
      EXPECT_GT(ph.body, 0u);
      EXPECT_GT(ph.sort, 0u);
      EXPECT_GT(ph.placement, 0u);
      EXPECT_GT(ph.rng, 0u);  // the hot set oversubscribes every round
      EXPECT_EQ(ph.learn, 0u);  // clique: the learn pass is skipped
    }
  }
}

TEST(PhaseTiming, LearnPhaseMeasuredOnNcc0AndSampleCarriesPhases) {
  struct Collector final : ncc::TelemetrySink {
    ncc::PhaseNanos sum;
    void on_round(const ncc::RoundSample& s) override {
      sum.body += s.phase_ns.body;
      sum.sort += s.phase_ns.sort;
      sum.rng += s.phase_ns.rng;
      sum.placement += s.phase_ns.placement;
      sum.learn += s.phase_ns.learn;
    }
  } sink;
  constexpr std::size_t kN = 128;
  ncc::Config cfg;
  cfg.seed = 7;
  cfg.threads = 2;
  ncc::Network net(kN, cfg);
  // A telemetry sink alone turns timing on — no set_phase_timing needed.
  net.set_telemetry(&sink);
  for (int r = 0; r < 6; ++r) {
    net.round([&](Ctx& ctx) {
      for (const auto m : ctx.inbox_view()) (void)m;
      const NodeId succ = ctx.initial_successor();
      if (succ != ncc::kNoNode)
        ctx.send(succ, make_msg(2).push_id(ctx.id()));
    });
  }
  EXPECT_GT(sink.sum.body, 0u);
  EXPECT_GT(sink.sum.sort, 0u);
  EXPECT_GT(sink.sum.placement, 0u);
  EXPECT_GT(sink.sum.learn, 0u);  // NCC0: trailered records teach IDs
  // The sink's per-round deltas are exactly the engine's accumulator.
  const ncc::PhaseNanos& ph = net.stats().phase_ns;
  EXPECT_EQ(sink.sum.body, ph.body);
  EXPECT_EQ(sink.sum.learn, ph.learn);
  EXPECT_EQ(sink.sum.total(), ph.total());
}

}  // namespace
}  // namespace dgr
