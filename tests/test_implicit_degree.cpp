// Algorithm 3 / Theorem 11: implicit degree realization.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "realization/implicit_degree.h"
#include "realization/validate.h"
#include "testing.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr::realize {
namespace {

void expect_valid_realization(ncc::Network& net,
                              const std::vector<std::uint64_t>& degree,
                              const ImplicitDegreeResult& result) {
  ASSERT_TRUE(result.realizable);
  const auto v = validate_degree_realization(net, degree, result.stored);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(ImplicitDegree, TinyHandWorked) {
  // (2,2,2) — a triangle.
  auto net = testing::make_ncc0(3, 1);
  const std::vector<std::uint64_t> d{2, 2, 2};
  const auto result = realize_degrees_implicit(net, d);
  expect_valid_realization(net, d, result);
}

TEST(ImplicitDegree, AllZeros) {
  auto net = testing::make_ncc0(10, 2);
  const std::vector<std::uint64_t> d(10, 0);
  const auto result = realize_degrees_implicit(net, d);
  expect_valid_realization(net, d, result);
  EXPECT_EQ(result.phases, 1u);  // single probe phase, nothing to do
}

TEST(ImplicitDegree, SingleNode) {
  auto net = testing::make_ncc0(1, 3);
  const auto result =
      realize_degrees_implicit(net, std::vector<std::uint64_t>{0});
  EXPECT_TRUE(result.realizable);
}

TEST(ImplicitDegree, StarK1n) {
  auto net = testing::make_ncc0(8, 4);
  std::vector<std::uint64_t> d(8, 1);
  d[5] = 7;
  const auto result = realize_degrees_implicit(net, d);
  expect_valid_realization(net, d, result);
}

TEST(ImplicitDegree, UnrealizableDetected) {
  auto net = testing::make_ncc0(4, 5);
  const std::vector<std::uint64_t> d{3, 1, 1, 0};  // EG fails
  ASSERT_FALSE(graph::erdos_gallai_graphic(d));
  const auto result = realize_degrees_implicit(net, d);
  EXPECT_FALSE(result.realizable);
}

TEST(ImplicitDegree, DegreeAboveNMinus1Rejected) {
  auto net = testing::make_ncc0(4, 6);
  const std::vector<std::uint64_t> d{5, 1, 1, 1};
  const auto result = realize_degrees_implicit(net, d);
  EXPECT_FALSE(result.realizable);
}

struct FamilyCase {
  const char* name;
  std::size_t n;
  std::function<graph::DegreeSequence(std::size_t, Rng&)> make;
};

class FamilySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 public:
  static const std::vector<FamilyCase>& families() {
    static const std::vector<FamilyCase> kFamilies{
        {"regular4", 128,
         [](std::size_t n, Rng&) { return graph::regular_sequence(n, 4); }},
        {"regular9", 100,
         [](std::size_t n, Rng&) { return graph::regular_sequence(n, 9); }},
        {"gnp", 150,
         [](std::size_t n, Rng& r) { return graph::gnp_sequence(n, 0.06, r); }},
        {"powerlaw", 120,
         [](std::size_t n, Rng& r) {
           return graph::powerlaw_sequence(n, 24, 2.3, r);
         }},
        {"star_heavy", 160,
         [](std::size_t n, Rng&) {
           return graph::star_heavy_sequence(n, 300);
         }},
        {"bimodal", 96,
         [](std::size_t n, Rng&) { return graph::bimodal_sequence(n, 2, 12); }},
    };
    return kFamilies;
  }
};

TEST_P(FamilySweep, RealizesExactlyAndWithinPhaseBound) {
  const auto [family_idx, seed] = GetParam();
  const FamilyCase& fam = families()[static_cast<std::size_t>(family_idx)];
  Rng rng(seed * 1000 + family_idx);
  const auto d = fam.make(fam.n, rng);
  ASSERT_TRUE(graph::erdos_gallai_graphic(d)) << fam.name;

  auto net = testing::make_ncc0(fam.n, seed + family_idx);
  const auto result = realize_degrees_implicit(net, d);
  expect_valid_realization(net, d, result);

  // Lemma 10 phase bound: min(2Δ + 2, O(√m)).
  const std::uint64_t max_d = *std::max_element(d.begin(), d.end());
  const std::uint64_t m = graph::degree_sum(d) / 2;
  const std::uint64_t bound =
      std::min<std::uint64_t>(2 * max_d + 2, 3 * isqrt(m) + 6);
  EXPECT_LE(result.phases, bound + 1) << fam.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilySweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

class RandomGraphicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphicSweep, MatchesErdosGallaiVerdict) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.below(40);
    graph::DegreeSequence d(n);
    for (auto& x : d) x = rng.below(n);  // may or may not be graphic
    const bool graphic = graph::erdos_gallai_graphic(d);

    auto net = testing::make_ncc0(n, GetParam() * 100 + trial);
    const auto result = realize_degrees_implicit(net, d);
    EXPECT_EQ(result.realizable, graphic)
        << "n=" << n << " trial=" << trial;
    if (graphic) {
      const auto v = validate_degree_realization(net, d, result.stored);
      EXPECT_TRUE(v.ok) << v.message;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphicSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ImplicitDegree, RoundsArePolylogPerPhase) {
  const std::size_t n = 256;
  auto net = testing::make_ncc0(n, 9);
  const auto d = graph::regular_sequence(n, 8);
  const auto result = realize_degrees_implicit(net, d);
  ASSERT_TRUE(result.realizable);
  const std::uint64_t lg = ceil_log2(n);
  // Each phase is O(log^2 n) (sort-dominated) plus setup.
  EXPECT_LE(result.rounds,
            result.phases * (4 * lg * lg + 20 * lg + 40) + 20 * lg + 40);
}

}  // namespace
}  // namespace dgr::realize
