// Path overlay construction (§3.1).
#include <gtest/gtest.h>

#include "primitives/path.h"
#include "testing.h"

namespace dgr {
namespace {

class PathSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PathSweep, UndirectedPathIsConsistent) {
  const std::size_t n = GetParam();
  auto net = testing::make_strict_ncc0(n, 42 + n);
  const prim::PathOverlay path = prim::undirect_initial_path(net);
  EXPECT_TRUE(prim::validate_path(net, path));
  EXPECT_EQ(path.order.size(), n);
  // Exactly one head and one tail.
  std::size_t heads = 0, tails = 0;
  for (ncc::Slot s = 0; s < n; ++s) {
    heads += path.pred[s] == ncc::kNoNode ? 1 : 0;
    tails += path.succ[s] == ncc::kNoNode ? 1 : 0;
  }
  EXPECT_EQ(heads, 1u);
  EXPECT_EQ(tails, 1u);
  // Cost: exactly 2 rounds.
  EXPECT_EQ(net.stats().rounds, 2u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 17, 64, 100,
                                           257, 1000));

TEST(Path, RefereePathMarksMembership) {
  auto net = testing::make_ncc0(10, 1);
  std::vector<ncc::Slot> order{3, 1, 4};
  const prim::PathOverlay p = prim::referee_path(net, order);
  EXPECT_TRUE(p.member(3));
  EXPECT_TRUE(p.member(1));
  EXPECT_TRUE(p.member(4));
  EXPECT_FALSE(p.member(0));
  EXPECT_EQ(p.length(), 3u);
}

}  // namespace
}  // namespace dgr
