// Message-level tracing facility.
#include <gtest/gtest.h>

#include <sstream>

#include "ncc/trace.h"
#include "primitives/bbst.h"
#include "primitives/path.h"
#include "testing.h"

namespace dgr {
namespace {

TEST(Trace, CountsDeliveriesExactly) {
  auto net = testing::make_ncc0(32, 4);
  ncc::Trace trace;
  net.set_trace(&trace);
  prim::PathOverlay path = prim::undirect_initial_path(net);
  (void)prim::build_bbst(net, path);
  net.set_trace(nullptr);

  EXPECT_EQ(trace.delivered(), net.stats().messages_delivered);
  EXPECT_EQ(trace.bounced(), net.stats().messages_bounced);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.total_recorded(),
            trace.delivered() + trace.bounced() + trace.dropped());
  // The undirect tag (0x10) must appear exactly n-1 times.
  EXPECT_EQ(trace.per_tag().at(0x10), 31u);
}

TEST(Trace, RecordsDropsUnderLoss) {
  ncc::Config cfg;
  cfg.seed = 5;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.drop_probability = 0.5;
  ncc::Network net(64, cfg);
  ncc::Trace trace;
  net.set_trace(&trace);
  for (int r = 0; r < 10; ++r) {
    net.round([&](ncc::Ctx& ctx) {
      ctx.send(net.id_of((ctx.slot() + 1) % net.n()), ncc::make_msg(0xAB));
    });
  }
  net.round([](ncc::Ctx&) {});
  EXPECT_GT(trace.dropped(), 0u);
  EXPECT_GT(trace.delivered(), 0u);
  EXPECT_EQ(trace.dropped() + trace.delivered(), 640u);
}

TEST(Trace, CsvAndBusiestRound) {
  auto net = testing::make_ncc0(8, 6);
  ncc::Trace trace;
  net.set_trace(&trace);
  net.round([&](ncc::Ctx& ctx) {
    const auto s = ctx.initial_successor();
    if (s != ncc::kNoNode) ctx.send(s, ncc::make_msg(7).push(1));
  });
  net.round([](ncc::Ctx&) {});
  const auto [round, count] = trace.busiest_round();
  EXPECT_EQ(round, 0u);
  EXPECT_EQ(count, 7u);

  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_NE(os.str().find("round,src,dst,tag,outcome"), std::string::npos);
  EXPECT_NE(os.str().find("delivered"), std::string::npos);

  trace.clear();
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(Trace, BoundedRawEventRetention) {
  ncc::Trace trace(/*max_events=*/5);
  for (std::uint64_t i = 0; i < 20; ++i) {
    trace.record({i, 0, 1, 1, ncc::MessageOutcome::kDelivered});
  }
  EXPECT_EQ(trace.events().size(), 5u);
  EXPECT_EQ(trace.total_recorded(), 20u);
}

}  // namespace
}  // namespace dgr
