// Message wire-format invariants.
#include <gtest/gtest.h>

#include "ncc/message.h"
#include "util/check.h"

namespace dgr::ncc {
namespace {

TEST(Message, PushAndRead) {
  auto m = make_msg(42);
  m.push(7).push_id(1234).push(9);
  EXPECT_EQ(m.tag, 42u);
  EXPECT_EQ(m.size, 3);
  EXPECT_EQ(m.word(0), 7u);
  EXPECT_EQ(m.word(1), 1234u);
  EXPECT_EQ(m.word(2), 9u);
  EXPECT_EQ(m.id_word(1), 1234u);
  EXPECT_EQ(m.id_mask, 0b010);
}

TEST(Message, PayloadCapEnforced) {
  auto m = make_msg(1);
  for (std::size_t i = 0; i < kMaxWords; ++i) m.push(i);
  EXPECT_THROW(m.push(99), CheckError);
  EXPECT_THROW(m.push_id(99), CheckError);
}

TEST(Message, OutOfRangeReadThrows) {
  auto m = make_msg(1);
  m.push(5);
  EXPECT_THROW(m.word(1), CheckError);
}

TEST(Message, IdWordRequiresIdFlag) {
  auto m = make_msg(1);
  m.push(5);  // plain word
  EXPECT_THROW(m.id_word(0), CheckError);
}

TEST(Message, SignedWordRoundTrip) {
  auto m = make_msg(1);
  m.push(static_cast<std::uint64_t>(std::int64_t{-1}));
  EXPECT_EQ(m.sword(0), -1);
}

TEST(Message, ChainingPreservesOrder) {
  const auto m = make_msg(3).push(1).push(2).push(3).push(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(m.word(i), i + 1);
}

TEST(CheckMacros, FireAndCarryContext) {
  EXPECT_THROW(DGR_CHECK(false), dgr::CheckError);
  try {
    DGR_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL();
  } catch (const dgr::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
  }
  // Passing checks are silent.
  DGR_CHECK(true);
  DGR_CHECK_MSG(true, "unused");
}

}  // namespace
}  // namespace dgr::ncc
