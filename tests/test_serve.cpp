// The serving stack: canonicalization, the LRU result cache, and the
// RealizationService pipeline — including the headline guarantee that a
// cache hit is byte-identical to a cold run at the same seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "graph/degree_sequence.h"
#include "graph/generators.h"
#include "serve/cache.h"
#include "serve/request.h"
#include "serve/service.h"
#include "util/check.h"
#include "util/rng.h"

namespace dgr::serve {
namespace {

std::vector<std::uint64_t> gnp_degrees(std::size_t n, double p,
                                       std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0x5E4E));
  return graph::gnp_sequence(n, p, rng);
}

// ---- Canonicalization --------------------------------------------------

TEST(ServeCanonical, CanonicalDegreesSortsDescending) {
  EXPECT_EQ(canonical_degrees({1, 4, 2, 4, 0, 3}),
            (std::vector<std::uint64_t>{4, 4, 3, 2, 1, 0}));
  EXPECT_EQ(canonical_degrees({}), std::vector<std::uint64_t>{});
  EXPECT_EQ(canonical_degrees({7}), std::vector<std::uint64_t>{7});
}

TEST(ServeCanonical, PermutedSequencesShareOneKey) {
  Request a;
  a.degrees = {3, 1, 2, 2, 1, 3};
  a.seed = 42;
  Request b = a;
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    rng.shuffle(b.degrees);
    EXPECT_EQ(key_of(a), key_of(b)) << "trial " << trial;
    EXPECT_EQ(CacheKeyHash{}(key_of(a)), CacheKeyHash{}(key_of(b)));
  }
}

TEST(ServeCanonical, SeedModeAndMultiplicityAreKeyMaterial) {
  Request base;
  base.degrees = {3, 1, 2, 2};
  base.seed = 42;

  Request other_seed = base;
  other_seed.seed = 43;
  EXPECT_NE(key_of(base), key_of(other_seed));

  Request other_mode = base;
  other_mode.mode = Mode::kEnvelope;
  EXPECT_NE(key_of(base), key_of(other_mode));

  // Same support, different multiplicity: distinct multisets.
  Request other_multiset = base;
  other_multiset.degrees = {3, 1, 2, 1};
  EXPECT_NE(key_of(base), key_of(other_multiset));
}

// ---- ResultCache -------------------------------------------------------

CacheKey key_n(std::uint64_t tag) {
  CacheKey k;
  k.degrees = {tag, 1};
  return k;
}

std::shared_ptr<const Realization> value_n(std::uint64_t tag) {
  auto r = std::make_shared<Realization>();
  r->rounds = tag;
  return r;
}

TEST(ServeCache, HitMissAndEvictionCountersTrackLru) {
  ResultCache cache(2);
  EXPECT_EQ(cache.get(key_n(1)), nullptr);  // miss
  cache.put(key_n(1), value_n(1));
  cache.put(key_n(2), value_n(2));
  const auto hit = cache.get(key_n(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rounds, 1u);

  // Key 1 was just touched, so inserting key 3 must evict key 2.
  cache.put(key_n(3), value_n(3));
  EXPECT_EQ(cache.get(key_n(2)), nullptr);
  EXPECT_NE(cache.get(key_n(1)), nullptr);
  EXPECT_NE(cache.get(key_n(3)), nullptr);

  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.size, 2u);
  EXPECT_EQ(st.capacity, 2u);
}

TEST(ServeCache, PutRefreshKeepsNewestValueAndLruPosition) {
  ResultCache cache(2);
  cache.put(key_n(1), value_n(1));
  cache.put(key_n(2), value_n(2));
  // Refreshing key 1 makes it most-recent AND replaces its value.
  cache.put(key_n(1), value_n(10));
  cache.put(key_n(3), value_n(3));  // evicts key 2, not key 1
  EXPECT_EQ(cache.get(key_n(2)), nullptr);
  const auto v = cache.get(key_n(1));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->rounds, 10u);
}

TEST(ServeCache, CapacityZeroDisablesCaching) {
  ResultCache cache(0);
  cache.put(key_n(1), value_n(1));
  EXPECT_EQ(cache.get(key_n(1)), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

std::shared_ptr<const Realization> big_value(std::size_t edges) {
  auto r = std::make_shared<Realization>();
  r->edges.resize(edges);
  return r;
}

TEST(ServeCache, ByteBudgetEvictsLruTailIndependentlyOfEntryCount) {
  // Generous entry capacity, tight byte budget: the byte accounting alone
  // must do the evicting. Each big entry charges >= edges * sizeof(Edge).
  const std::size_t per = ResultCache::entry_bytes(key_n(0), *big_value(1000));
  ResultCache cache(/*capacity=*/64, /*byte_budget=*/per * 2);
  cache.put(key_n(1), big_value(1000));
  cache.put(key_n(2), big_value(1000));
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_LE(cache.stats().bytes, per * 2);

  cache.put(key_n(3), big_value(1000));  // over budget: evicts LRU key 1
  const auto st = cache.stats();
  EXPECT_EQ(st.size, 2u);
  EXPECT_GE(st.evictions, 1u);
  EXPECT_LE(st.bytes, st.byte_budget);
  EXPECT_EQ(cache.get(key_n(1)), nullptr);
  EXPECT_NE(cache.get(key_n(3)), nullptr);
}

TEST(ServeCache, OversizedSingleEntrySurvivesItsOwnInsert) {
  // One result bigger than the whole budget is retained (and served)
  // rather than thrashed; it goes as soon as anything newer lands.
  ResultCache cache(/*capacity=*/8, /*byte_budget=*/1024);
  cache.put(key_n(1), big_value(4000));
  EXPECT_NE(cache.get(key_n(1)), nullptr);
  EXPECT_GT(cache.stats().bytes, cache.stats().byte_budget);
  cache.put(key_n(2), big_value(1));
  EXPECT_EQ(cache.get(key_n(1)), nullptr);
  EXPECT_NE(cache.get(key_n(2)), nullptr);
}

// ---- RealizationService ------------------------------------------------

TEST(ServeService, HitIsByteIdenticalToColdRun) {
  ServiceConfig cfg;
  cfg.drivers = 2;
  RealizationService service(cfg);

  Request req;
  req.degrees = gnp_degrees(48, 0.3, 1);
  req.seed = 7;
  const CacheKey key = key_of(req);

  Request again = req;
  Rng(3).shuffle(again.degrees);  // permuted twin of the same multiset

  const auto first = service.submit(Request(req)).get();
  const auto second = service.submit(std::move(again)).get();
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(first->validated) << first->message;
  EXPECT_TRUE(first->realizable);

  // The hit must be THE cached object, and equal to an independent cold
  // run of the same canonical request, field for field.
  EXPECT_EQ(first.get(), second.get());
  const Realization cold = RealizationService::cold_run(key, 1);
  EXPECT_TRUE(*first == cold);

  const auto st = service.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.cold_runs, 1u);
  EXPECT_EQ(st.submit_hits + st.run_hits, 1u);
}

TEST(ServeService, ColdRunIsAPureFunctionOfTheKey) {
  CacheKey key;
  key.degrees = canonical_degrees(gnp_degrees(40, 0.4, 2));
  key.seed = 11;
  const Realization a = RealizationService::cold_run(key, 1);
  const Realization b = RealizationService::cold_run(key, 1);
  const Realization c = RealizationService::cold_run(key, 4);
  EXPECT_TRUE(a.validated) << a.message;
  EXPECT_TRUE(a == b);
  // net_threads is transcript-neutral (the Executor contract).
  EXPECT_TRUE(a == c);

  CacheKey other = key;
  other.seed = 12;
  const Realization d = RealizationService::cold_run(other, 1);
  EXPECT_TRUE(d.validated) << d.message;
  // Different seed => a differently-randomized (but still valid) answer.
  EXPECT_FALSE(a == d);
}

TEST(ServeService, EnvelopeModeValidates) {
  RealizationService service;
  Request req;
  req.degrees = gnp_degrees(40, 0.5, 3);
  req.mode = Mode::kEnvelope;
  const auto r = service.submit(std::move(req)).get();
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->validated) << r->message;
  EXPECT_FALSE(r->edges.empty());
}

TEST(ServeService, NonGraphicSequenceIsAValidatedNegative) {
  // n-1 copies of (n-1) plus a lone 0: the isolated node can't meet the
  // full-degree nodes, so the sequence is non-graphic (Erdős–Gallai).
  std::vector<std::uint64_t> degrees(8, 7);
  degrees.back() = 0;
  ASSERT_FALSE(graph::erdos_gallai_graphic(degrees));

  RealizationService service;
  Request req;
  req.degrees = degrees;
  const auto r = service.submit(std::move(req)).get();
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->realizable);
  EXPECT_TRUE(r->validated) << r->message;
  EXPECT_TRUE(r->edges.empty());
}

TEST(ServeService, EmptyRequestThrowsAtSubmit) {
  RealizationService service;
  EXPECT_THROW(service.submit(Request{}), CheckError);
}

TEST(ServeService, BatchingAndCoalescingAreObservable) {
  ServiceConfig cfg;
  cfg.drivers = 1;  // single driver => the queue depth becomes batches
  cfg.batch_max = 8;
  RealizationService service(cfg);

  const auto degrees = gnp_degrees(32, 0.3, 4);
  std::vector<std::future<RealizationService::Result>> waves;
  // Distinct seeds so nothing is a submit-time hit; several duplicates of
  // seed 100 so intra-batch coalescing has twins to fold.
  for (int i = 0; i < 6; ++i) {
    Request req;
    req.degrees = degrees;
    req.seed = 100 + static_cast<std::uint64_t>(i % 3);
    waves.push_back(service.submit(std::move(req)));
  }
  for (auto& f : waves) {
    const auto r = f.get();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->validated) << r->message;
  }

  const auto st = service.stats();
  EXPECT_EQ(st.submitted, 6u);
  EXPECT_EQ(st.completed, 6u);
  EXPECT_GE(st.batches, 1u);
  EXPECT_EQ(st.batched_requests, 6u);
  EXPECT_GE(st.max_batch, 1u);
  EXPECT_LE(st.max_batch, cfg.batch_max);
  // Every request was answered exactly once, by some path.
  EXPECT_EQ(st.cold_runs + st.submit_hits + st.run_hits + st.coalesced,
            6u);
  // Only 3 distinct keys existed, so at most 3 simulations were necessary —
  // but racing claims may cold-run a duplicate; duplicates are
  // deterministic-identical, so correctness never depends on this.
  EXPECT_GE(st.cold_runs, 3u);
}

TEST(ServeService, ManyConcurrentClientsEachGetTheirOwnAnswer) {
  ServiceConfig cfg;
  cfg.drivers = 4;
  cfg.queue_capacity = 4;  // small bound so admission backpressure engages
  RealizationService service(cfg);

  constexpr int kFamilies = 5;
  constexpr int kPerFamily = 6;
  std::vector<std::vector<std::uint64_t>> family;
  for (int k = 0; k < kFamilies; ++k)
    family.push_back(gnp_degrees(36, 0.15 + 0.15 * k, 10 + k));

  Rng rng(99);
  std::vector<std::future<RealizationService::Result>> futures;
  for (int i = 0; i < kFamilies * kPerFamily; ++i) {
    Request req;
    req.degrees = family[i % kFamilies];
    rng.shuffle(req.degrees);
    req.seed = 5;
    futures.push_back(service.submit(std::move(req)));
  }

  std::vector<RealizationService::Result> first(kFamilies);
  for (int i = 0; i < kFamilies * kPerFamily; ++i) {
    const auto r = futures[i].get();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->validated) << r->message;
    auto& ref = first[i % kFamilies];
    if (!ref) {
      ref = r;
    } else {
      // Every permuted repeat of a family resolves to the same bytes.
      EXPECT_TRUE(*ref == *r) << "family " << i % kFamilies;
    }
  }

  const auto st = service.stats();
  EXPECT_EQ(st.submitted,
            static_cast<std::uint64_t>(kFamilies * kPerFamily));
  EXPECT_EQ(st.completed, st.submitted);
  // 5 distinct keys, 30 requests: the cache and coalescer carried most of
  // the load.
  EXPECT_GE(st.submit_hits + st.run_hits + st.coalesced,
            st.submitted - 3 * kFamilies);
}

}  // namespace
}  // namespace dgr::serve
