// §6: connectivity-threshold realizations (Theorems 17 and 18).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/maxflow.h"
#include "realization/connectivity.h"
#include "realization/validate.h"
#include "seq/connectivity_baseline.h"
#include "testing.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace dgr::realize {
namespace {

void expect_thresholds_met(const ncc::Network& net,
                           const std::vector<std::uint64_t>& rho,
                           const std::vector<std::vector<ncc::NodeId>>& stored,
                           std::uint64_t seed) {
  const graph::Graph g = graph_from_stored(net, stored);
  // 2-approximation in edge count.
  EXPECT_LE(g.m(), 2 * seq::connectivity_edge_lower_bound(rho));
  Rng rng(seed);
  const auto violation = seq::find_threshold_violation(g, rho, rng);
  EXPECT_FALSE(violation.has_value())
      << "Conn(" << violation->first << "," << violation->second
      << ") below min-threshold";
}

class Ncc1Sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(Ncc1Sweep, ImplicitRealizationMeetsThresholds) {
  const auto [n, seed] = GetParam();
  Rng rng(seed * 7 + n);
  const auto rho =
      graph::uniform_thresholds(n, std::min<std::uint64_t>(n - 1, 10), rng);
  auto net = testing::make_ncc1(n, seed);
  const auto result = realize_connectivity_ncc1(net, rho);
  ASSERT_TRUE(result.realizable);
  expect_thresholds_met(net, rho, result.stored, seed);

  // Theorem 17: O~(1) rounds (a couple of tree traversals).
  EXPECT_LE(result.rounds, 8 * static_cast<std::uint64_t>(ceil_log2(n)) + 16);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ncc1Sweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 8, 24, 48),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

class Ncc0Sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(Ncc0Sweep, ExplicitRealizationMeetsThresholds) {
  const auto [n, seed] = GetParam();
  Rng rng(seed * 13 + n);
  const auto rho =
      graph::uniform_thresholds(n, std::min<std::uint64_t>(n - 1, 8), rng);
  auto net = testing::make_ncc0(n, seed);
  const auto result = realize_connectivity_ncc0(net, rho);
  ASSERT_TRUE(result.realizable);
  expect_thresholds_met(net, rho, result.stored, seed);

  // Explicit adjacency must be symmetric and match the implicit edges.
  const auto v =
      validate_explicit_adjacency(net, result.stored, result.adjacency);
  EXPECT_TRUE(v.ok) << v.message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ncc0Sweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 8, 24, 48),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Connectivity, TieredNetworkNcc0) {
  const std::size_t n = 40;
  const auto rho = graph::tiered_thresholds(n, 4, 12, 8, 5, 2);
  auto net = testing::make_ncc0(n, 5);
  const auto result = realize_connectivity_ncc0(net, rho);
  ASSERT_TRUE(result.realizable);
  expect_thresholds_met(net, rho, result.stored, 5);
}

TEST(Connectivity, UniformThresholdOne) {
  // ρ ≡ 1: any connected overlay works; ours must still be 2-approx.
  const std::size_t n = 30;
  const std::vector<std::uint64_t> rho(n, 1);
  auto net = testing::make_ncc0(n, 6);
  const auto result = realize_connectivity_ncc0(net, rho);
  ASSERT_TRUE(result.realizable);
  expect_thresholds_met(net, rho, result.stored, 6);
}

TEST(Connectivity, MaximalThresholds) {
  // ρ ≡ n-1 forces (a 2-approx of) the complete graph.
  const std::size_t n = 12;
  const std::vector<std::uint64_t> rho(n, n - 1);
  auto net = testing::make_ncc1(n, 7);
  const auto result = realize_connectivity_ncc1(net, rho);
  ASSERT_TRUE(result.realizable);
  expect_thresholds_met(net, rho, result.stored, 7);
}

TEST(Connectivity, InfeasibleThresholdRejected) {
  const std::size_t n = 6;
  std::vector<std::uint64_t> rho(n, 2);
  rho[0] = n;  // > n-1
  auto net0 = testing::make_ncc0(n, 8);
  EXPECT_FALSE(realize_connectivity_ncc0(net0, rho).realizable);
  auto net1 = testing::make_ncc1(n, 8);
  EXPECT_FALSE(realize_connectivity_ncc1(net1, rho).realizable);
}

TEST(Connectivity, HubIsMaxRho) {
  const std::size_t n = 20;
  std::vector<std::uint64_t> rho(n, 3);
  rho[11] = 15;
  auto net = testing::make_ncc1(n, 9);
  const auto result = realize_connectivity_ncc1(net, rho);
  ASSERT_TRUE(result.realizable);
  EXPECT_EQ(result.hub, net.id_of(11));
}

TEST(Connectivity, ZipfThresholdsNcc0) {
  const std::size_t n = 36;
  Rng rng(10);
  const auto rho = graph::zipf_thresholds(n, 12, 2.0, rng);
  auto net = testing::make_ncc0(n, 10);
  const auto result = realize_connectivity_ncc0(net, rho);
  ASSERT_TRUE(result.realizable);
  expect_thresholds_met(net, rho, result.stored, 10);
}

}  // namespace
}  // namespace dgr::realize
