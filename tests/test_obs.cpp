// The observability plane: sharded metric primitives under racing
// writers, histogram bucket edges, byte-stable exposition formats, the
// unix-socket exporter protocol, and — the load-bearing contract — engine
// transcripts bit-identical with the whole plane attached or detached at
// any thread count, including a stream subscriber connecting and
// disconnecting mid-run.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ncc/executor.h"
#include "ncc/telemetry.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/net_metrics.h"
#include "obs/rows.h"
#include "testing.h"
#include "util/rng.h"

namespace dgr {
namespace {

using ncc::Ctx;
using ncc::make_msg;

// ---------------------------------------------------------------------------
// Sharded primitives under concurrency.
// ---------------------------------------------------------------------------

TEST(ObsCounter, NoLostUpdatesUnderRacingParallelFor) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("t_hits_total", "hits");
  obs::Gauge& g = reg.gauge("t_live", "live");
  ncc::Executor exec;  // private pool, racing pooled workers + caller
  const auto lease = exec.lease(8);
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  exec.parallel_for(lease, kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) {
      c.add(1);
      g.add(3);
      g.sub(2);
    }
  });
  EXPECT_EQ(c.value(), kTasks * kPerTask);
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kTasks * kPerTask));
}

TEST(ObsCounter, OverflowShardIsSharedAndExact) {
  // More live threads than exclusive shards: the surplus lands on the
  // shared overflow shard, whose fetch_add path must stay exact. Every
  // thread claims its shard (first add), then waits until ALL threads hold
  // one, so the overflow shard is guaranteed multi-writer.
  obs::Registry reg;
  obs::Counter& c = reg.counter("t_over_total", "overflow");
  constexpr std::size_t kThreads = obs::kShards + 8;
  constexpr std::uint64_t kPerThread = 500;
  std::atomic<std::size_t> arrived{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      c.add(1);  // claims this thread's shard
      arrived.fetch_add(1);
      while (arrived.load() < kThreads) std::this_thread::yield();
      for (std::uint64_t i = 1; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsHistogram, BucketUpperEdgesAreInclusive) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("t_lat", "latency", {10, 20});
  for (std::uint64_t v : {5u, 10u, 15u, 20u, 25u}) h.observe(v);
  // A value lands in the first bucket whose upper bound is >= it.
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 2, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 75u);
}

TEST(ObsHistogram, NonIncreasingBoundsThrow) {
  obs::Registry reg;
  EXPECT_THROW(reg.histogram("t_bad", "x", {10, 10}), std::invalid_argument);
}

TEST(ObsRegistry, NameKeepsItsTypeAndInstance) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("t_c", "a counter");
  EXPECT_EQ(&c, &reg.counter("t_c", "different help is ignored"));
  EXPECT_THROW(reg.gauge("t_c", "not a gauge"), std::logic_error);
  reg.gauge_callback("t_cb", "polled", [] { return 42; });
  EXPECT_THROW(reg.gauge("t_cb", "stored"), std::logic_error);
}

// ---------------------------------------------------------------------------
// Exposition formats (golden bytes; snapshot order is lexicographic).
// ---------------------------------------------------------------------------

obs::Registry& golden_registry(obs::Registry& reg) {
  reg.counter("t_jobs_total", "Jobs entered").add(3);
  obs::Gauge& g = reg.gauge("t_depth", "Queue depth");
  g.add(7);
  g.sub(2);
  obs::Histogram& h = reg.histogram("t_wait_ns", "Wait", {10, 100});
  for (std::uint64_t v : {5u, 10u, 50u, 1000u}) h.observe(v);
  return reg;
}

TEST(ObsExposition, PrometheusGolden) {
  obs::Registry reg;
  const auto snap = golden_registry(reg).snapshot();
  EXPECT_EQ(obs::to_prometheus(snap),
            "# HELP t_depth Queue depth\n"
            "# TYPE t_depth gauge\n"
            "t_depth 5\n"
            "# HELP t_jobs_total Jobs entered\n"
            "# TYPE t_jobs_total counter\n"
            "t_jobs_total 3\n"
            "# HELP t_wait_ns Wait\n"
            "# TYPE t_wait_ns histogram\n"
            "t_wait_ns_bucket{le=\"10\"} 2\n"
            "t_wait_ns_bucket{le=\"100\"} 3\n"
            "t_wait_ns_bucket{le=\"+Inf\"} 4\n"
            "t_wait_ns_sum 1065\n"
            "t_wait_ns_count 4\n");
}

TEST(ObsExposition, JsonGolden) {
  obs::Registry reg;
  const auto snap = golden_registry(reg).snapshot();
  EXPECT_EQ(obs::to_json(snap),
            "{\"t_depth\":5,\"t_jobs_total\":3,"
            "\"t_wait_ns\":{\"bounds\":[10,100],\"buckets\":[2,1,1],"
            "\"sum\":1065,\"count\":4}}");
}

TEST(ObsRows, TextAndJsonAgreeOnNames) {
  const std::vector<obs::Row> rows{{"alpha", 1}, {"beta_longer", -2}};
  EXPECT_EQ(obs::rows_to_json(rows), "{\"alpha\":1,\"beta_longer\":-2}");
  const std::string text = obs::rows_to_text(rows);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// NetMetrics folding.
// ---------------------------------------------------------------------------

ncc::RoundSample sample(std::uint64_t round, std::uint64_t sent,
                        std::uint64_t delivered, std::uint64_t dropped) {
  ncc::RoundSample s;
  s.round = round;
  s.sent = sent;
  s.delivered = delivered;
  s.dropped = dropped;
  s.frontier = 10;
  s.frontier_tracked = true;
  return s;
}

TEST(ObsNetMetrics, FoldsCountersAndWithdrawsGaugesOnTeardown) {
  obs::Registry reg;
  obs::Gauge& ewma =
      reg.gauge("dgr_net_delivered_per_round_ewma_x1000", "");
  {
    obs::NetMetrics m(reg);
    m.on_round(sample(0, 100, 80, 20));
    // First round primes the EWMA with the raw observation.
    EXPECT_EQ(m.delivered_per_round_ewma_x1000(), 80'000u);
    EXPECT_EQ(m.delivery_ratio_ewma_ppm(), 800'000u);
    m.on_round(sample(1, 100, 80, 20));
    EXPECT_EQ(m.delivered_per_round_ewma_x1000(), 80'000u);
    EXPECT_EQ(ewma.value(), 80'000);
    EXPECT_EQ(reg.counter("dgr_net_messages_sent_total", "").value(), 200u);
    EXPECT_EQ(reg.counter("dgr_net_rounds_total", "").value(), 2u);
    EXPECT_EQ(reg.counter("dgr_net_drop_events_total", "").value(), 2u);
  }
  // Teardown withdrew the instance's gauge contribution.
  EXPECT_EQ(ewma.value(), 0);
}

// ---------------------------------------------------------------------------
// Exporter socket protocol.
// ---------------------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/dgr_test_obs_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

int dial(const std::string& path, const char* request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::send(fd, request, std::strlen(request), 0) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string drain(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ObsExporter, ServesSnapshotsInBothFormats) {
  obs::Registry reg;
  golden_registry(reg);
  obs::Exporter exp(test_socket_path("snap"), reg);
  const std::string prom = drain(dial(exp.path(), "metrics\n"));
  EXPECT_NE(prom.find("# TYPE t_jobs_total counter"), std::string::npos);
  EXPECT_NE(prom.find("t_jobs_total 3\n"), std::string::npos);
  const std::string json = drain(dial(exp.path(), "json\n"));
  EXPECT_NE(json.find("\"t_jobs_total\":3"), std::string::npos);
  // Unknown verbs fall back to Prometheus (curl-over-unix-socket shape).
  const std::string dflt = drain(dial(exp.path(), "GET / HTTP/1.1\n"));
  EXPECT_NE(dflt.find("t_jobs_total 3\n"), std::string::npos);
}

TEST(ObsExporter, StreamsPublishedLinesAndSurvivesDisconnect) {
  obs::Registry reg;
  obs::Exporter exp(test_socket_path("stream"), reg);
  const int fd = dial(exp.path(), "stream\n");
  ASSERT_GE(fd, 0);
  // The subscription registers on the exporter's accept thread; publish
  // until the first line arrives (pre-subscription publishes drop on the
  // floor by design).
  std::string got;
  for (int attempt = 0; attempt < 200 && got.empty(); ++attempt) {
    exp.publish("{\"event\":\"tick\"}");
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 10) == 1 && (p.revents & POLLIN) != 0) {
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      ASSERT_GT(n, 0);
      got.assign(buf, static_cast<std::size_t>(n));
    }
  }
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.substr(0, got.find('\n')), "{\"event\":\"tick\"}");
  // Abrupt disconnect: the next publishes must drop the dead subscriber
  // without blocking or crashing the publisher.
  ::close(fd);
  for (int i = 0; i < 64; ++i) exp.publish("{\"event\":\"after-close\"}");
  // The socket still answers scrapes afterwards.
  EXPECT_NE(drain(dial(exp.path(), "metrics\n"))
                .find("dgr_obs_scrapes_total"),
            std::string::npos);
}

TEST(ObsExporter, UnbindableSocketPathThrows) {
  obs::Registry reg;
  EXPECT_THROW(obs::Exporter("/nonexistent-dir/x.sock", reg),
               std::system_error);
}

// ---------------------------------------------------------------------------
// The transcript contract: attaching the observability plane — metrics
// sink, exporter, live subscriber churn — must not change one bit of the
// engine's transcript, at any thread count.
// ---------------------------------------------------------------------------

/// Lossy flood with crash-churn; `plane` attaches NetMetrics (+ exporter
/// with a mid-run connect/disconnect subscriber when `churn`).
testing::NetFingerprint run_flood(unsigned threads, bool plane,
                                  bool churn = false) {
  constexpr std::size_t kN = 96;
  constexpr int kRounds = 20;
  ncc::Config cfg;
  cfg.seed = 77;
  cfg.initial = ncc::InitialKnowledge::kClique;
  cfg.threads = threads;
  cfg.drop_probability = 0.15;
  ncc::Network net(kN, cfg);

  obs::Registry reg;
  std::unique_ptr<obs::NetMetrics> metrics;
  std::unique_ptr<obs::Exporter> exporter;
  if (plane) {
    metrics = std::make_unique<obs::NetMetrics>(reg);
    net.set_metrics(metrics.get());
    if (churn) {
      exporter = std::make_unique<obs::Exporter>(
          test_socket_path("churn"), reg);
    }
  }

  int sub = -1;
  for (int r = 0; r < kRounds; ++r) {
    if (r == 4) net.crash(9);
    if (r == 11) net.crash(40);
    if (churn && r == 5) sub = dial(exporter->path(), "stream\n");
    if (churn && r == 12 && sub >= 0) {
      ::close(sub);  // abrupt mid-run disconnect
      sub = -1;
    }
    net.round([&](Ctx& ctx) {
      const auto ids = ctx.all_ids();
      const int sends = ctx.capacity() / 2;
      for (int i = 0; i < sends; ++i) {
        const std::size_t pick = ctx.rng().chance(0.25)
                                     ? ctx.rng().below(4)
                                     : ctx.rng().below(ids.size());
        ctx.send(ids[pick], make_msg(7).push(ctx.rng().below(1u << 20)));
      }
    });
    if (churn && exporter) exporter->publish("{\"event\":\"round\"}");
  }
  if (sub >= 0) ::close(sub);
  net.set_metrics(nullptr);
  return testing::net_fingerprint(net);
}

TEST(ObsTranscript, IdenticalAttachedVsDetachedAcrossThreadCounts) {
  const testing::NetFingerprint detached = run_flood(1, /*plane=*/false);
  for (unsigned threads : {1u, 4u, 8u}) {
    EXPECT_TRUE(detached == run_flood(threads, /*plane=*/false))
        << "detached, threads=" << threads;
    EXPECT_TRUE(detached == run_flood(threads, /*plane=*/true))
        << "attached, threads=" << threads;
  }
  // Workload sanity: the lossy + bouncy branches actually ran.
  EXPECT_GT(detached.stats.messages_dropped, 0u);
  EXPECT_GT(detached.stats.messages_bounced, 0u);
}

TEST(ObsTranscript, SubscriberChurnMidRunDoesNotPerturbTranscript) {
  const testing::NetFingerprint detached = run_flood(1, /*plane=*/false);
  EXPECT_TRUE(detached == run_flood(1, /*plane=*/true, /*churn=*/true));
  EXPECT_TRUE(detached == run_flood(4, /*plane=*/true, /*churn=*/true));
}

}  // namespace
}  // namespace dgr
